//! The qualitative capability matrix of Sections 6–7.
//!
//! Each claim the paper makes when comparing TrustLite with SMART and
//! Sancus is encoded here as data; the tests pin the claims, and the
//! differential suite in `tests/` demonstrates the mechanical ones
//! against the models.

/// Architectural capabilities relevant to the paper's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchCapabilities {
    /// Architecture name.
    pub name: &'static str,
    /// Trusted tasks can be interrupted without losing protection.
    pub interruptible_trusted_tasks: bool,
    /// Protected code/keys/policy can be updated in the field.
    pub field_updates: bool,
    /// A protected task may own several code/data/MMIO regions.
    pub multi_region_modules: bool,
    /// Platform reset requires hardware to wipe all volatile memory.
    pub reset_requires_memory_wipe: bool,
    /// Protection rules persist until reset, so one inspection of a peer
    /// suffices for trusted IPC.
    pub persistent_protection_for_ipc: bool,
    /// Exclusive peripheral (MMIO) assignment to trusted tasks.
    pub secure_peripherals: bool,
    /// Number of concurrent trusted execution environments supported
    /// (`None` = bounded only by region registers).
    pub max_trusted_services: Option<u32>,
    /// Trusted-task state survives across invocations.
    pub protected_state: bool,
}

/// TrustLite (this paper).
pub const TRUSTLITE: ArchCapabilities = ArchCapabilities {
    name: "TrustLite",
    interruptible_trusted_tasks: true,
    field_updates: true,
    multi_region_modules: true,
    reset_requires_memory_wipe: false,
    persistent_protection_for_ipc: true,
    secure_peripherals: true,
    max_trusted_services: None,
    protected_state: true,
};

/// SMART (NDSS 2012).
pub const SMART: ArchCapabilities = ArchCapabilities {
    name: "SMART",
    interruptible_trusted_tasks: false,
    field_updates: false,
    multi_region_modules: false,
    reset_requires_memory_wipe: true,
    persistent_protection_for_ipc: false,
    secure_peripherals: false,
    max_trusted_services: Some(1),
    protected_state: false,
};

/// Sancus (USENIX Security 2013).
pub const SANCUS: ArchCapabilities = ArchCapabilities {
    name: "Sancus",
    interruptible_trusted_tasks: false,
    field_updates: true,
    multi_region_modules: false,
    reset_requires_memory_wipe: true,
    persistent_protection_for_ipc: true,
    secure_peripherals: false,
    max_trusted_services: None,
    protected_state: true,
};

/// Renders the comparison matrix as a text table.
pub fn comparison_table() -> String {
    let archs = [TRUSTLITE, SMART, SANCUS];
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34}{:>10}{:>10}{:>10}\n",
        "capability", "TrustLite", "SMART", "Sancus"
    ));
    type RowGetter = fn(&ArchCapabilities) -> String;
    let rows: [(&str, RowGetter); 8] = [
        ("interruptible trusted tasks", |a| {
            yn(a.interruptible_trusted_tasks)
        }),
        ("field updates", |a| yn(a.field_updates)),
        ("multi-region modules", |a| yn(a.multi_region_modules)),
        ("reset requires memory wipe", |a| {
            yn(a.reset_requires_memory_wipe)
        }),
        ("persistent rules for IPC", |a| {
            yn(a.persistent_protection_for_ipc)
        }),
        ("secure peripherals (MMIO)", |a| yn(a.secure_peripherals)),
        ("max trusted services", |a| {
            a.max_trusted_services
                .map(|n| n.to_string())
                .unwrap_or_else(|| "regs".into())
        }),
        ("protected state across calls", |a| yn(a.protected_state)),
    ];
    for (label, get) in rows {
        out.push_str(&format!(
            "{:<34}{:>10}{:>10}{:>10}\n",
            label,
            get(&archs[0]),
            get(&archs[1]),
            get(&archs[2])
        ));
    }
    out
}

fn yn(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "no".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // pins constant capability claims
    fn trustlite_strictly_dominates_on_paper_claims() {
        // The claims of Section 6: interruption, fast startup (no wipe),
        // secure peripherals, field updates.
        assert!(TRUSTLITE.interruptible_trusted_tasks && !SMART.interruptible_trusted_tasks);
        assert!(!SANCUS.interruptible_trusted_tasks);
        assert!(!TRUSTLITE.reset_requires_memory_wipe);
        assert!(SMART.reset_requires_memory_wipe && SANCUS.reset_requires_memory_wipe);
        assert!(TRUSTLITE.secure_peripherals && !SANCUS.secure_peripherals);
        assert!(TRUSTLITE.field_updates && !SMART.field_updates);
        assert!(TRUSTLITE.multi_region_modules && !SANCUS.multi_region_modules);
    }

    #[test]
    fn table_renders_all_architectures() {
        let t = comparison_table();
        for needle in ["TrustLite", "SMART", "Sancus", "secure peripherals"] {
            assert!(t.contains(needle), "missing {needle}:\n{t}");
        }
    }
}
