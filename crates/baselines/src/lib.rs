//! Baseline security architectures the paper compares against.
//!
//! * [`smart`] — SMART (El Defrawy et al., NDSS 2012): a fixed attestation
//!   routine in ROM whose secret key is released by the memory bus only
//!   while the instruction pointer is inside the ROM routine; no
//!   interrupts, no updates, platform reset wipes memory.
//! * [`sancus`] — Sancus (Noorman et al., USENIX Security 2013):
//!   software-protected modules with one contiguous text and one
//!   contiguous data section, created/attested via ISA extensions, with
//!   per-module keys derived in hardware; protected modules are
//!   non-interruptible and reset implies a full memory wipe.
//! * [`capabilities`] — the qualitative capability matrix the paper's
//!   Sections 6–7 argue from, encoded as data with tests pinning each
//!   claim.
//!
//! The Sancus model runs on the same SP32 simulator via the extension
//! opcodes (`0xE0..`), with its protection table mapped onto EA-MPU rules
//! — which is precisely the paper's observation that the EA-MPU
//! *generalizes* these schemes.

pub mod capabilities;
pub mod sancus;
pub mod smart;

pub use capabilities::{ArchCapabilities, SANCUS, SMART, TRUSTLITE};
pub use sancus::{SancusConfig, SancusUnit};
pub use smart::SmartDevice;
