//! The Sancus baseline (USENIX Security 2013), modelled on the SP32 core.
//!
//! Sancus extends the openMSP430 with *software-protected modules*: a
//! module has exactly one contiguous text section and one contiguous data
//! section; the data section is accessible only while the program counter
//! is inside the text section, which may only be entered at its first
//! address. New instructions create modules, derive per-module keys in
//! hardware (from a hash of the text section) and compute MACs.
//!
//! Model mapping:
//!
//! * the protection semantics are expressed as EA-MPU rules — the paper's
//!   point that execution-aware memory protection generalizes Sancus;
//! * the ISA extensions use SP32's extension opcodes through an
//!   [`ExtUnit`];
//! * the restrictions the paper contrasts with are enforced: one text +
//!   one data region per module (no MMIO flexibility beyond what fits in
//!   the single data region), no interrupts while a module runs
//!   ([`SancusUnit::interrupt_policy_violated`]), and reset wipes memory.
//!
//! Extension instructions (descriptor pointers in `rs1`):
//!
//! ```text
//! ext0 rd, rs1   SPROTECT  descriptor {text_start, text_end, data_start,
//!                          data_end}; creates the module, derives its
//!                          key, returns the module id in rd
//! ext1 rd, rs1   SUNPROTECT module id in rs1; tears the module down
//! ext2 rd, rs1   SMAC      descriptor {start, end, out}; MACs memory
//!                          with the *calling module's* key; rd = 1/ok
//! ext3 rd, rs1   SGETID    rd = id of the module covering address rs1
//! ```

use trustlite_cpu::{ExcRecord, ExtUnit, Fault, RegFile, SystemBus};
use trustlite_crypto::{hmac_sha256, sponge_hash};
use trustlite_isa::Reg;
use trustlite_mem::BusError;
use trustlite_mpu::{Perms, RuleSlot, Subject};

/// A live protected module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SancusModule {
    /// Module id (1-based; 0 means "no module").
    pub id: u32,
    /// Text section `[start, end)`.
    pub text: (u32, u32),
    /// Data section `[start, end)`.
    pub data: (u32, u32),
    /// Measurement of the text section at protection time.
    pub measurement: [u8; 32],
    /// The hardware-derived module key (node key ⊕ measurement KDF).
    pub key: [u8; 32],
    /// MPU rule slots backing this module (text rule, data rule, entry).
    rule_slots: [usize; 3],
}

/// Configuration of the Sancus protection unit.
#[derive(Debug, Clone)]
pub struct SancusConfig {
    /// The node master key fused at manufacture.
    pub node_key: [u8; 32],
    /// Maximum number of protected modules (hardware instantiation).
    pub max_modules: usize,
    /// First EA-MPU rule slot the unit may use (3 slots per module).
    pub first_rule_slot: usize,
}

impl Default for SancusConfig {
    fn default() -> Self {
        SancusConfig {
            node_key: [0x5a; 32],
            max_modules: 4,
            first_rule_slot: 8,
        }
    }
}

/// The Sancus protection unit (plugs into [`trustlite_cpu::Machine::ext`]).
pub struct SancusUnit {
    cfg: SancusConfig,
    modules: Vec<SancusModule>,
    next_id: u32,
}

impl SancusUnit {
    /// Creates the unit.
    pub fn new(cfg: SancusConfig) -> Self {
        SancusUnit {
            cfg,
            modules: Vec::new(),
            next_id: 1,
        }
    }

    /// Live modules.
    pub fn modules(&self) -> &[SancusModule] {
        &self.modules
    }

    /// Returns the module whose text section contains `ip`.
    pub fn module_by_ip(&self, ip: u32) -> Option<&SancusModule> {
        self.modules
            .iter()
            .find(|m| ip >= m.text.0 && ip < m.text.1)
    }

    /// Sancus forbids interrupting a protected module: returns true if
    /// the exception record violates that policy (the caller must then
    /// model a platform reset). TrustLite's secure exception engine is
    /// exactly what removes this restriction.
    pub fn interrupt_policy_violated(&self, rec: &ExcRecord) -> bool {
        self.module_by_ip(rec.interrupted_ip).is_some()
    }

    /// Hardware key derivation: `K_module = HMAC(K_node, measurement)`.
    pub fn derive_key(node_key: &[u8; 32], measurement: &[u8; 32]) -> [u8; 32] {
        hmac_sha256(node_key, measurement)
    }

    fn read_words<const N: usize>(
        sys: &mut SystemBus,
        ip: u32,
        ptr: u32,
    ) -> Result<[u32; N], Fault> {
        let mut out = [0u32; N];
        for (i, w) in out.iter_mut().enumerate() {
            *w = sys.load32(ip, ptr + 4 * i as u32)?;
        }
        Ok(out)
    }

    fn protect(
        &mut self,
        sys: &mut SystemBus,
        ip: u32,
        desc_ptr: u32,
    ) -> Result<(u32, u64), Fault> {
        if self.modules.len() == self.cfg.max_modules {
            return Ok((0, 2));
        }
        let [text_start, text_end, data_start, data_end] =
            Self::read_words::<4>(sys, ip, desc_ptr)?;
        if text_start >= text_end || data_start > data_end {
            return Ok((0, 2));
        }
        // Measure the text section (hardware hash).
        let mut text = Vec::with_capacity((text_end - text_start) as usize);
        for addr in (text_start..text_end).step_by(4) {
            let w = sys.hw_read32(addr).map_err(|err| Fault::Bus { ip, err })?;
            text.extend_from_slice(&w.to_le_bytes());
        }
        let measurement = sponge_hash(&text);
        let key = Self::derive_key(&self.cfg.node_key, &measurement);
        let id = self.next_id;
        self.next_id += 1;

        // Express the module's protection as EA-MPU rules: text is rx for
        // itself, entry word executable by anyone, data rw only while the
        // PC is in text. One text + one data region — the Sancus shape.
        let base = self.cfg.first_rule_slot + self.modules.len() * 3;
        let text_slot = base;
        let rules = [
            RuleSlot {
                start: text_start,
                end: text_end,
                perms: Perms::RX,
                subject: Subject::Region(text_slot as u8),
                enabled: true,
                locked: false,
            },
            RuleSlot {
                start: data_start,
                end: data_end,
                perms: Perms::RW,
                subject: Subject::Region(text_slot as u8),
                enabled: true,
                locked: false,
            },
            RuleSlot {
                start: text_start,
                end: text_start + 4,
                perms: Perms::X,
                subject: Subject::Any,
                enabled: true,
                locked: false,
            },
        ];
        for (i, r) in rules.iter().enumerate() {
            sys.mpu.set_rule(base + i, *r).map_err(|_| Fault::Bus {
                ip,
                err: BusError::Unmapped { addr: desc_ptr },
            })?;
        }
        self.modules.push(SancusModule {
            id,
            text: (text_start, text_end),
            data: (data_start, data_end),
            measurement,
            key,
            rule_slots: [base, base + 1, base + 2],
        });
        // Cost: hardware hash of the text section plus bookkeeping.
        let cycles = 50 + (text.len() as u64 / 4);
        Ok((id, cycles))
    }

    fn unprotect(&mut self, sys: &mut SystemBus, id: u32) -> (u32, u64) {
        if let Some(pos) = self.modules.iter().position(|m| m.id == id) {
            let m = self.modules.remove(pos);
            for slot in m.rule_slots {
                let _ = sys.mpu.set_rule(slot, RuleSlot::EMPTY);
            }
            (1, 10)
        } else {
            (0, 2)
        }
    }

    fn mac(&mut self, sys: &mut SystemBus, ip: u32, desc_ptr: u32) -> Result<(u32, u64), Fault> {
        let module = match self.module_by_ip(ip) {
            Some(m) => m.clone(),
            None => return Ok((0, 2)), // only module code may use its key
        };
        let [start, end, out] = Self::read_words::<3>(sys, ip, desc_ptr)?;
        if start > end {
            return Ok((0, 2));
        }
        let mut data = Vec::with_capacity((end - start) as usize);
        for addr in (start..end).step_by(4) {
            let w = sys.load32(ip, addr)?;
            data.extend_from_slice(&w.to_le_bytes());
        }
        let tag = hmac_sha256(&module.key, &data);
        for (i, chunk) in tag.chunks(4).enumerate() {
            let w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            sys.store32(ip, out + 4 * i as u32, w)?;
        }
        Ok((1, 64 + data.len() as u64 / 4))
    }
}

impl ExtUnit for SancusUnit {
    fn exec(
        &mut self,
        regs: &mut RegFile,
        sys: &mut SystemBus,
        ip: u32,
        op: u8,
        rd: Reg,
        rs1: Reg,
        _imm: u16,
    ) -> Result<u64, Fault> {
        let arg = regs.get(rs1);
        let (value, cycles) = match op {
            0 => self.protect(sys, ip, arg)?,
            1 => self.unprotect(sys, arg),
            2 => self.mac(sys, ip, arg)?,
            3 => (self.module_by_ip(arg).map(|m| m.id).unwrap_or(0), 2),
            _ => {
                return Err(Fault::Illegal {
                    ip,
                    word: 0,
                    err: trustlite_isa::DecodeError::UnknownOpcode(0xe0 | op),
                })
            }
        };
        regs.set(rd, value);
        Ok(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlite_cpu::{HaltReason, Machine, RunExit};
    use trustlite_isa::Asm;
    use trustlite_mem::{Bus, Ram, Rom};
    use trustlite_mpu::{AccessKind, EaMpu};

    const PROM: u32 = 0;
    const SRAM: u32 = 0x1000_0000;
    const MOD_TEXT: u32 = SRAM + 0x1000;
    const MOD_DATA: u32 = SRAM + 0x2000;

    /// An unprotected supervisor program that protects a module and pokes
    /// at it.
    fn machine_with(build: impl FnOnce(&mut Asm)) -> Machine {
        let mut a = Asm::new(PROM);
        build(&mut a);
        let img = a.assemble().unwrap();

        // The module's text: entry jump + a body returning 7 in r0.
        let mut m = Asm::new(MOD_TEXT);
        m.label("entry");
        m.li(Reg::R0, MOD_DATA);
        m.li(Reg::R1, 7);
        m.sw(Reg::R0, 0, Reg::R1);
        m.jr(Reg::R7); // return through the caller-provided continuation
        let mod_img = m.assemble().unwrap();

        let mut bus = Bus::new();
        bus.map(PROM, Box::new(Rom::new(0x4000))).unwrap();
        bus.map(SRAM, Box::new(Ram::new("sram", 0x4000))).unwrap();
        bus.host_load(PROM, &img.bytes);
        bus.host_load(MOD_TEXT, &mod_img.bytes);
        let mut mpu = EaMpu::new(16);
        // Supervisor world: PROM executable/readable, SRAM rw, all open
        // until modules carve out their islands.
        mpu.set_rule(
            0,
            RuleSlot {
                start: PROM,
                end: PROM + 0x4000,
                perms: Perms::RX,
                subject: Subject::Any,
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        mpu.set_rule(
            1,
            RuleSlot {
                start: SRAM,
                end: SRAM + 0x4000,
                perms: Perms::RWX,
                subject: Subject::Any,
                enabled: true,
                locked: false,
            },
        )
        .unwrap();
        let sys = trustlite_cpu::SystemBus::new(bus, mpu, None);
        let mut machine = Machine::new(sys, PROM);
        machine.ext = Some(Box::new(SancusUnit::new(SancusConfig {
            first_rule_slot: 4,
            ..Default::default()
        })));
        machine
    }

    fn emit_descriptor(a: &mut Asm, at: u32) {
        // Store {text_start, text_end, data_start, data_end} at `at`.
        a.li(Reg::R1, at);
        for (i, v) in [MOD_TEXT, MOD_TEXT + 0x100, MOD_DATA, MOD_DATA + 0x100]
            .iter()
            .enumerate()
        {
            a.li(Reg::R2, *v);
            a.sw(Reg::R1, (4 * i) as i16, Reg::R2);
        }
    }

    #[test]
    fn sprotect_creates_module_and_isolates_data() {
        let desc = SRAM + 0x3000;
        let mut m = machine_with(|a| {
            a.li(Reg::Sp, SRAM + 0x3f00);
            emit_descriptor(a, desc);
            a.ext(0, Reg::R3, Reg::R1, 0); // SPROTECT -> r3 = id
            a.halt();
        });
        let exit = m.run(1000);
        assert!(
            matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
            "{exit:?}"
        );
        assert_eq!(m.regs.get(Reg::R3), 1, "module id");
        // Verify via the unit's own bookkeeping (downcast through Any).
        let unit = (m.ext.as_mut().unwrap().as_mut() as &mut dyn std::any::Any)
            .downcast_mut::<SancusUnit>()
            .expect("sancus unit installed");
        assert_eq!(unit.modules().len(), 1);
        assert_eq!(unit.modules()[0].text, (MOD_TEXT, MOD_TEXT + 0x100));
    }

    #[test]
    fn sancus_rules_are_execution_aware() {
        let desc = SRAM + 0x3000;
        let mut m = machine_with(|a| {
            a.li(Reg::Sp, SRAM + 0x3f00);
            emit_descriptor(a, desc);
            a.ext(0, Reg::R3, Reg::R1, 0);
            a.halt();
        });
        m.run(1000);
        // With the module rules installed, the module's text may write
        // its data region, foreign code may not (checking the MPU rules
        // the unit installed, ignoring the open-world blanket rule by
        // querying the specific slots).
        let slots = m.sys.mpu.slots();
        let data_rule = slots[5];
        assert_eq!(data_rule.start, MOD_DATA);
        assert_eq!(data_rule.subject, Subject::Region(4));
        assert!(data_rule.perms.allows(AccessKind::Write));
    }

    #[test]
    fn sgetid_and_unprotect() {
        let desc = SRAM + 0x3000;
        let mut m = machine_with(|a| {
            a.li(Reg::Sp, SRAM + 0x3f00);
            emit_descriptor(a, desc);
            a.ext(0, Reg::R3, Reg::R1, 0);
            a.li(Reg::R4, MOD_TEXT + 8);
            a.ext(3, Reg::R5, Reg::R4, 0); // SGETID(text addr) -> r5
            a.ext(1, Reg::R6, Reg::R3, 0); // SUNPROTECT(id) -> r6
            a.ext(3, Reg::R7, Reg::R4, 0); // SGETID again -> r7 (0)
            a.halt();
        });
        m.run(1000);
        assert_eq!(m.regs.get(Reg::R5), 1);
        assert_eq!(m.regs.get(Reg::R6), 1);
        assert_eq!(m.regs.get(Reg::R7), 0, "module gone");
    }

    #[test]
    fn module_key_binds_text_content() {
        let node_key = [0x5a; 32];
        let m1 = sponge_hash(b"text-a");
        let m2 = sponge_hash(b"text-b");
        assert_ne!(
            SancusUnit::derive_key(&node_key, &m1),
            SancusUnit::derive_key(&node_key, &m2)
        );
    }

    #[test]
    fn smac_requires_module_context() {
        // MACing from outside any module fails (no key available).
        let desc = SRAM + 0x3000;
        let mut m = machine_with(|a| {
            a.li(Reg::Sp, SRAM + 0x3f00);
            a.li(Reg::R1, desc);
            a.ext(2, Reg::R3, Reg::R1, 0); // SMAC from supervisor code
            a.halt();
        });
        m.run(1000);
        assert_eq!(m.regs.get(Reg::R3), 0, "no module key outside a module");
    }

    #[test]
    fn interrupt_policy_flags_module_interrupts() {
        let unit = {
            let mut u = SancusUnit::new(SancusConfig::default());
            u.modules.push(SancusModule {
                id: 1,
                text: (0x100, 0x200),
                data: (0x300, 0x400),
                measurement: [0; 32],
                key: [0; 32],
                rule_slots: [8, 9, 10],
            });
            u
        };
        let inside = ExcRecord {
            vector: 8,
            interrupted_ip: 0x150,
            trustlet: None,
            entry_cycles: 21,
            at_cycle: 0,
        };
        let outside = ExcRecord {
            interrupted_ip: 0x500,
            ..inside
        };
        assert!(unit.interrupt_policy_violated(&inside), "reset required");
        assert!(!unit.interrupt_policy_violated(&outside));
    }

    #[test]
    fn module_limit_enforced() {
        let mut u = SancusUnit::new(SancusConfig {
            max_modules: 0,
            ..Default::default()
        });
        let mut bus = Bus::new();
        bus.map(0, Box::new(Ram::new("sram", 0x100))).unwrap();
        let mut sys = trustlite_cpu::SystemBus::new(bus, EaMpu::new(4), None);
        sys.enforce = false;
        let (id, _) = u.protect(&mut sys, 0, 0).unwrap();
        assert_eq!(id, 0, "no capacity");
    }
}
