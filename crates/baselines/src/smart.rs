//! The SMART baseline (NDSS 2012).
//!
//! SMART adds a custom access-control rule on the memory bus of a
//! low-end MCU: a secret key `K` is readable only while the program
//! counter is inside a fixed attestation routine in ROM, and the routine
//! may only be entered at its first instruction. The routine computes
//! `HMAC(K, nonce || memory[region])` for remote attestation / trusted
//! execution.
//!
//! The paper's criticisms, which this model makes testable:
//!
//! * the routine and key are fixed at manufacture (no field update),
//! * execution is atomic — interrupts must be disabled; any violation
//!   resets the platform and *wipes all memory*,
//! * only a single trusted service is supported, and interaction between
//!   protected modules is "very slow" (every invocation re-runs the whole
//!   ROM routine; no persistent protected state).

use trustlite_crypto::{hmac_sha256, Hmac};

/// Outcome of attempting to interrupt or re-enter the SMART routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmartViolation {
    /// An interrupt fired while the routine was executing.
    InterruptDuringRoutine,
    /// A jump targeted the middle of the routine.
    MidRoutineEntry,
    /// A key read was attempted with the PC outside the routine.
    KeyReadOutsideRoutine,
}

/// A device implementing the SMART memory-access rule and ROM routine.
///
/// The model is host-level: the properties under comparison (atomicity,
/// updateability, reset semantics, invocation cost) are architectural,
/// not microarchitectural. `memory` stands for the device's RAM contents
/// an attestation request covers.
#[derive(Debug, Clone)]
pub struct SmartDevice {
    key: [u8; 32],
    /// Device memory (attestation target).
    pub memory: Vec<u8>,
    /// Number of platform resets (each implies a full memory wipe).
    pub resets: u64,
    /// True while the ROM routine is executing (atomic section).
    in_routine: bool,
}

impl SmartDevice {
    /// Manufactures a device with key `key` and `mem_size` bytes of RAM.
    pub fn new(key: [u8; 32], mem_size: usize) -> Self {
        SmartDevice {
            key,
            memory: vec![0; mem_size],
            resets: 0,
            in_routine: false,
        }
    }

    /// The verifier's reference computation.
    pub fn expected_report(key: &[u8; 32], nonce: &[u8], region: &[u8]) -> [u8; 32] {
        let mut mac = Hmac::new(key);
        mac.update(nonce);
        mac.update(region);
        mac.finish()
    }

    /// Runs the ROM attestation routine over `region` (byte range of
    /// device memory). Returns the report and the modelled cycle cost.
    ///
    /// Cost model: SMART disables interrupts and hashes the region with a
    /// software HMAC in ROM — one word per ~10 cycles on the MSP430-class
    /// core, plus fixed entry/exit overhead. The routine also has no
    /// persistent state: *every* invocation pays the full pass.
    pub fn attest(&mut self, nonce: &[u8], start: usize, len: usize) -> ([u8; 32], u64) {
        self.in_routine = true;
        let region = &self.memory[start..start + len];
        let report = Self::expected_report(&self.key, nonce, region);
        self.in_routine = false;
        let cycles = 200 + (len as u64 / 4) * 10;
        (report, cycles)
    }

    /// Models an interrupt arriving while the routine runs: SMART cannot
    /// tolerate it — the platform resets and memory is wiped.
    pub fn interrupt_during_routine(&mut self) -> SmartViolation {
        self.reset();
        SmartViolation::InterruptDuringRoutine
    }

    /// Models a key read with the PC outside the ROM routine: denied and
    /// the platform resets.
    pub fn rogue_key_read(&mut self) -> SmartViolation {
        self.reset();
        SmartViolation::KeyReadOutsideRoutine
    }

    /// SMART's reset: hardware wipes *all* volatile memory before any
    /// code runs again (the cost TrustLite's Secure Loader avoids).
    pub fn reset(&mut self) {
        self.memory.fill(0);
        self.in_routine = false;
        self.resets += 1;
    }

    /// Cycle cost of the reset memory wipe (one word per cycle).
    pub fn reset_wipe_cycles(&self) -> u64 {
        self.memory.len() as u64 / 4
    }

    /// Field update of the attestation routine or key: impossible — both
    /// are in mask ROM. Returns the error message the comparison tests
    /// pin.
    pub fn try_update_routine(&self) -> Result<(), &'static str> {
        Err("SMART routine and key are fixed in ROM; no field update")
    }

    /// Verifies a report (verifier side).
    pub fn verify(key: &[u8; 32], nonce: &[u8], region: &[u8], report: &[u8; 32]) -> bool {
        trustlite_crypto::ct_eq(&hmac_sha256(key, &[nonce, region].concat()), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attestation_round_trip() {
        let key = [3u8; 32];
        let mut d = SmartDevice::new(key, 1024);
        d.memory[100..104].copy_from_slice(&[1, 2, 3, 4]);
        let (report, cycles) = d.attest(b"nonce", 0, 512);
        assert!(SmartDevice::verify(
            &key,
            b"nonce",
            &d.memory[0..512],
            &report
        ));
        assert!(cycles > 200);
    }

    #[test]
    fn report_detects_memory_change() {
        let key = [3u8; 32];
        let mut d = SmartDevice::new(key, 256);
        let (r1, _) = d.attest(b"n", 0, 256);
        d.memory[7] ^= 0xff;
        let (r2, _) = d.attest(b"n", 0, 256);
        assert_ne!(r1, r2);
    }

    #[test]
    fn interrupt_wipes_memory() {
        let mut d = SmartDevice::new([0u8; 32], 128);
        d.memory.fill(0xaa);
        let v = d.interrupt_during_routine();
        assert_eq!(v, SmartViolation::InterruptDuringRoutine);
        assert!(d.memory.iter().all(|&b| b == 0), "memory wiped");
        assert_eq!(d.resets, 1);
    }

    #[test]
    fn no_field_update() {
        let d = SmartDevice::new([0u8; 32], 16);
        assert!(d.try_update_routine().is_err());
    }

    #[test]
    fn every_invocation_pays_full_cost() {
        let mut d = SmartDevice::new([0u8; 32], 4096);
        let (_, c1) = d.attest(b"a", 0, 4096);
        let (_, c2) = d.attest(b"b", 0, 4096);
        assert_eq!(c1, c2, "no state carries over between invocations");
    }
}
