//! End-to-end Sancus scenario on the simulator: a supervisor protects a
//! module, the module MACs a message with its hardware-derived key, and
//! the host verifier reproduces the tag from the node key and the text
//! measurement — Sancus's remote-attestation chain, executed as real
//! simulated code through the extension ISA.

use trustlite_baselines::sancus::{SancusConfig, SancusUnit};
use trustlite_cpu::{HaltReason, Machine, RunExit, SystemBus};
use trustlite_crypto::{hmac_sha256, sponge_hash};
use trustlite_isa::{Asm, Reg};
use trustlite_mem::{Bus, Ram, Rom};
use trustlite_mpu::{EaMpu, Perms, RuleSlot, Subject};

const PROM: u32 = 0;
const SRAM: u32 = 0x1000_0000;
const MOD_TEXT: u32 = SRAM + 0x1000;
const MOD_TEXT_END: u32 = MOD_TEXT + 0x100;
const MOD_DATA: u32 = SRAM + 0x2000;
const MOD_DATA_END: u32 = MOD_DATA + 0x100;
const SCRATCH: u32 = SRAM + 0x3000; // open world: descriptor, message, tag
const NODE_KEY: [u8; 32] = [0x5a; 32];

const MSG: &[u8; 8] = b"transfer";

fn build() -> (Machine, Vec<u8>) {
    // The module: entry point MACs the message at SCRATCH+0x40 into
    // SCRATCH+0x80 using ITS key (only module code can), then returns.
    let mut m = Asm::new(MOD_TEXT);
    m.label("entry");
    // SMAC descriptor {start, end, out} prepared at SCRATCH.
    m.li(Reg::R1, SCRATCH);
    m.ext(2, Reg::R0, Reg::R1, 0); // SMAC -> r0 = ok
    m.jr(Reg::R7); // return to the supervisor
    let mod_img = m.assemble().unwrap();
    let text_bytes = {
        // The measured text is the whole protected region (zero-padded).
        let mut t = mod_img.bytes.clone();
        t.resize((MOD_TEXT_END - MOD_TEXT) as usize, 0);
        t
    };

    // The supervisor: writes the descriptor + message, protects the
    // module, calls it, halts.
    let mut a = Asm::new(PROM);
    a.li(Reg::Sp, SRAM + 0x3f00);
    // SMAC descriptor at SCRATCH: {msg start, msg end, tag out}.
    a.li(Reg::R1, SCRATCH);
    for (i, v) in [
        SCRATCH + 0x40,
        SCRATCH + 0x40 + MSG.len() as u32,
        SCRATCH + 0x80,
    ]
    .iter()
    .enumerate()
    {
        a.li(Reg::R2, *v);
        a.sw(Reg::R1, (4 * i) as i16, Reg::R2);
    }
    // The message itself.
    for (i, chunk) in MSG.chunks(4).enumerate() {
        let w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        a.li(Reg::R2, w);
        a.li(Reg::R3, SCRATCH + 0x40 + 4 * i as u32);
        a.sw(Reg::R3, 0, Reg::R2);
    }
    // SPROTECT descriptor at SCRATCH+0xc0.
    a.li(Reg::R1, SCRATCH + 0xc0);
    for (i, v) in [MOD_TEXT, MOD_TEXT_END, MOD_DATA, MOD_DATA_END]
        .iter()
        .enumerate()
    {
        a.li(Reg::R2, *v);
        a.sw(Reg::R1, (4 * i) as i16, Reg::R2);
    }
    a.ext(0, Reg::R4, Reg::R1, 0); // SPROTECT -> r4 = module id
                                   // Call the module with the return address in r7.
    a.la(Reg::R7, "returned");
    a.li(Reg::R5, MOD_TEXT);
    a.jr(Reg::R5);
    a.label("returned");
    a.halt();
    let sup_img = a.assemble().unwrap();

    let mut bus = Bus::new();
    bus.map(PROM, Box::new(Rom::new(0x4000))).unwrap();
    bus.map(SRAM, Box::new(Ram::new("sram", 0x4000))).unwrap();
    bus.host_load(PROM, &sup_img.bytes);
    bus.host_load(MOD_TEXT, &mod_img.bytes);
    let mut mpu = EaMpu::new(16);
    // Open world before modules carve out their islands.
    mpu.set_rule(
        0,
        RuleSlot {
            start: PROM,
            end: PROM + 0x4000,
            perms: Perms::RX,
            subject: Subject::Any,
            enabled: true,
            locked: false,
        },
    )
    .unwrap();
    mpu.set_rule(
        1,
        RuleSlot {
            start: SRAM,
            end: SRAM + 0x4000,
            perms: Perms::RWX,
            subject: Subject::Any,
            enabled: true,
            locked: false,
        },
    )
    .unwrap();
    let sys = SystemBus::new(bus, mpu, None);
    let mut machine = Machine::new(sys, PROM);
    machine.ext = Some(Box::new(SancusUnit::new(SancusConfig {
        node_key: NODE_KEY,
        first_rule_slot: 4,
        ..Default::default()
    })));
    (machine, text_bytes)
}

#[test]
fn module_mac_verifies_against_host_derivation() {
    let (mut m, text_bytes) = build();
    let exit = m.run(10_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    assert_eq!(m.regs.get(Reg::R4), 1, "module protected");
    assert_eq!(m.regs.get(Reg::R0), 1, "SMAC succeeded");

    // Read the tag the module produced.
    let mut tag = [0u8; 32];
    for i in 0..8 {
        let w = m.sys.hw_read32(SCRATCH + 0x80 + 4 * i).unwrap();
        tag[4 * i as usize..4 * i as usize + 4].copy_from_slice(&w.to_le_bytes());
    }
    // Verifier side: K_module = HMAC(K_node, measurement(text)).
    let key = SancusUnit::derive_key(&NODE_KEY, &sponge_hash(&text_bytes));
    let expected = hmac_sha256(&key, MSG);
    assert_eq!(tag, expected, "in-simulator MAC chain matches the verifier");
}

#[test]
fn smac_cycle_cost_matches_the_ipc_model() {
    // The EIPC harness models the per-message Sancus MAC at 64 + len/4
    // cycles; confirm the measured extension cost agrees.
    let (mut m, _) = build();
    // Run until just before the module's SMAC instruction (module entry:
    // two li words + ext at MOD_TEXT + 12... measure around the call).
    assert!(
        m.run_until(10_000, |mm| mm.regs.ip == MOD_TEXT),
        "module entered"
    );
    let c0 = m.cycles;
    // Step li (2 instrs) then the ext itself.
    m.step();
    m.step();
    let before_ext = m.cycles;
    m.step(); // SMAC
    let smac_cost = m.cycles - before_ext;
    assert_eq!(
        smac_cost,
        1 + 64 + MSG.len() as u64 / 4,
        "base + MAC latency + absorb"
    );
    let _ = c0;
}

#[test]
fn after_protection_supervisor_cannot_touch_module_data() {
    let (mut m, _) = build();
    m.run(10_000);
    // The module rules exist on top of the open-world blanket rule, so
    // the specific slots (4..7) enforce the Sancus shape; verify the
    // rules are as Sancus defines them.
    let slots = m.sys.mpu.slots();
    assert_eq!(slots[4].start, MOD_TEXT);
    assert_eq!(slots[4].subject, Subject::Region(4), "text self-subject");
    assert_eq!(slots[5].start, MOD_DATA);
    assert_eq!(slots[5].subject, Subject::Region(4), "data bound to text");
    assert_eq!(slots[6].end, MOD_TEXT + 4, "single-word entry");
}
