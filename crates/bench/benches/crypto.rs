//! Criterion benches: the from-scratch crypto primitives.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use trustlite_crypto::{hmac_sha256, sha256, sponge_hash};

fn bench_hashes(c: &mut Criterion) {
    let data = vec![0xa5u8; 4096];
    let mut g = c.benchmark_group("crypto");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("sha256_4k", |b| b.iter(|| sha256(&data)));
    g.bench_function("sponge_4k", |b| b.iter(|| sponge_hash(&data)));
    g.bench_function("hmac_sha256_4k", |b| b.iter(|| hmac_sha256(b"key", &data)));
    g.finish();
}

fn bench_token(c: &mut Criterion) {
    c.bench_function("session_token", |b| {
        b.iter(|| trustlite::ipc::session_token(0xA0, 0xA1, 0x1234_5678, 0x9abc_def0))
    });
}

criterion_group!(benches, bench_hashes, bench_token);
criterion_main!(benches);
