//! Criterion benches: EA-MPU checks, Secure Loader boot, trusted IPC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trustlite_mpu::{AccessKind, EaMpu, Perms, RuleSlot, Subject};

fn filled_mpu(slots: usize) -> EaMpu {
    let mut mpu = EaMpu::new(slots);
    for i in 0..slots {
        mpu.set_rule(
            i,
            RuleSlot {
                start: (i as u32) * 0x1000,
                end: (i as u32) * 0x1000 + 0x800,
                perms: Perms::RW,
                subject: Subject::Any,
                enabled: true,
                locked: false,
            },
        )
        .expect("rule fits");
    }
    mpu
}

fn bench_mpu_checks(c: &mut Criterion) {
    let mut g = c.benchmark_group("eampu_check");
    for slots in [8usize, 16, 32] {
        let mpu = filled_mpu(slots);
        g.bench_with_input(BenchmarkId::new("hit_first", slots), &mpu, |b, mpu| {
            b.iter(|| mpu.allows(0, 0x400, AccessKind::Read))
        });
        g.bench_with_input(BenchmarkId::new("hit_last", slots), &mpu, |b, mpu| {
            b.iter(|| mpu.allows(0, (slots as u32 - 1) * 0x1000 + 0x400, AccessKind::Read))
        });
        g.bench_with_input(BenchmarkId::new("miss", slots), &mpu, |b, mpu| {
            b.iter(|| mpu.allows(0, 0xffff_0000, AccessKind::Read))
        });
    }
    g.finish();
}

fn bench_boot(c: &mut Criterion) {
    let mut g = c.benchmark_group("secure_loader");
    for n in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("boot_trustlets", n), &n, |b, &n| {
            b.iter(|| {
                trustlite_bench::boot_platform_with(n, true)
                    .report
                    .mpu_writes
            })
        });
    }
    g.finish();
}

fn bench_handshake(c: &mut Criterion) {
    c.bench_function("trusted_ipc_handshake", |b| {
        b.iter(|| {
            let mut hp = trustlite_bench::build_handshake_platform(7).expect("builds");
            let r = trustlite_bench::run_handshake(&mut hp).expect("runs");
            assert!(r.success);
            r.total_cycles
        })
    });
}

criterion_group!(benches, bench_mpu_checks, bench_boot, bench_handshake);
criterion_main!(benches);
