//! Criterion benches: simulator core throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use trustlite_cpu::{Machine, SystemBus};
use trustlite_isa::{Asm, Reg};
use trustlite_mem::{Bus, Ram, Rom};
use trustlite_mpu::{EaMpu, Perms, RuleSlot, Subject};

fn make_machine(enforce: bool) -> Machine {
    let mut a = Asm::new(0);
    a.li(Reg::R1, 0x1000_0000);
    a.li(Reg::R2, 0);
    a.li(Reg::R3, 100_000);
    a.label("loop");
    a.bge(Reg::R2, Reg::R3, "done");
    a.sw(Reg::R1, 0, Reg::R2);
    a.lw(Reg::R4, Reg::R1, 0);
    a.addi(Reg::R2, Reg::R2, 1);
    a.jmp("loop");
    a.label("done");
    a.halt();
    let img = a.assemble().expect("assembles");
    let mut bus = Bus::new();
    bus.map(0, Box::new(Rom::new(0x1000))).expect("maps");
    bus.map(0x1000_0000, Box::new(Ram::new("sram", 0x1000)))
        .expect("maps");
    bus.host_load(0, &img.bytes);
    let mut mpu = EaMpu::new(16);
    mpu.set_rule(
        0,
        RuleSlot {
            start: 0,
            end: 0x1000,
            perms: Perms::RX,
            subject: Subject::Any,
            enabled: true,
            locked: false,
        },
    )
    .expect("rule fits");
    mpu.set_rule(
        1,
        RuleSlot {
            start: 0x1000_0000,
            end: 0x1000_1000,
            perms: Perms::RW,
            subject: Subject::Any,
            enabled: true,
            locked: false,
        },
    )
    .expect("rule fits");
    let mut sys = SystemBus::new(bus, mpu, None);
    sys.enforce = enforce;
    Machine::new(sys, 0)
}

fn bench_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    // ~500k retired instructions per iteration.
    g.throughput(Throughput::Elements(500_000));
    g.bench_function("run_500k_instr_mpu_on", |b| {
        b.iter(|| {
            let mut m = make_machine(true);
            m.run(1_000_000);
            assert!(m.halted.is_some());
            m.instret
        })
    });
    g.bench_function("run_500k_instr_mpu_off", |b| {
        b.iter(|| {
            let mut m = make_machine(false);
            m.run(1_000_000);
            m.instret
        })
    });
    g.finish();
}

fn bench_exceptions(c: &mut Criterion) {
    c.bench_function("exception_entry_measurement", |b| {
        b.iter(trustlite_bench::measure_exception_entry)
    });
}

criterion_group!(benches, bench_core, bench_exceptions);
criterion_main!(benches);
