//! An in-simulator remote-attestation service trustlet.
//!
//! This is the paper's SMART-like instantiation (Section 3.6/5.2) built
//! *as software* on TrustLite primitives: a trustlet with exclusive read
//! access to the platform key (key store MMIO) and to the crypto
//! accelerator answers challenges with
//! `HMAC(K, nonce || measurement table)`. Unlike SMART's mask-ROM
//! routine it is field-updatable, and unlike SMART it keeps no special
//! bus logic — the EA-MPU rule *is* the key-access control.

use trustlite::layout;
use trustlite::platform::{Platform, PlatformBuilder};
use trustlite::spec::{PeriphGrant, TrustletOptions, TrustletPlan};
use trustlite::TrustliteError;
use trustlite_crypto::Hmac;
use trustlite_isa::Reg;
use trustlite_mem::map;
use trustlite_mpu::Perms;
use trustlite_periph::crypto_accel;

/// Offsets in the service's data region.
pub mod svc_data {
    /// 1 when a report is ready.
    pub const DONE: u32 = 0;
    /// Report word (digest word 0).
    pub const REPORT: u32 = 4;
}

/// A platform hosting the attestation service plus `n_apps` application
/// trustlets whose measurements the service reports over.
pub struct AttestServicePlatform {
    /// The booted platform.
    pub platform: Platform,
    /// The service's plan.
    pub service: TrustletPlan,
    /// The application trustlets' plans.
    pub apps: Vec<TrustletPlan>,
    /// Number of measurement rows the service covers (apps + itself).
    pub covered_rows: u32,
}

/// Builds the platform. The service is loaded first (Trustlet Table row
/// 0) and reports over all `1 + n_apps` measurement rows.
pub fn build_attest_service(
    key: [u8; 32],
    n_apps: usize,
) -> Result<AttestServicePlatform, TrustliteError> {
    let mut b = PlatformBuilder::new();
    b.platform_key(key);
    let service = b.plan_trustlet("attest-svc", 0x400, 0x100, 0x200);
    let covered_rows = (1 + n_apps) as u32;

    let mut t = service.begin_program();
    {
        let plan = service.clone();
        let a = &mut t.asm;
        a.label("main");
        a.halt(); // purely reactive
                  // call(type = DATA, nonce) -> writes the report to the data region.
        a.label("call_entry");
        a.li(Reg::R6, plan.sp_slot);
        a.lw(Reg::Sp, Reg::R6, 0);
        // Load the platform key from the key store into the accelerator.
        a.li(Reg::R6, map::KEYSTORE_MMIO_BASE);
        a.li(Reg::R7, map::CRYPTO_MMIO_BASE);
        for i in 0..8 {
            a.lw(Reg::R2, Reg::R6, (4 * i) as i16);
            a.sw(Reg::R7, (crypto_accel::regs::KEY0 + 4 * i) as i16, Reg::R2);
        }
        a.li(Reg::R2, crypto_accel::cmd::INIT_HMAC);
        a.sw(Reg::R7, crypto_accel::regs::CTRL as i16, Reg::R2);
        // Absorb the challenge nonce (r1).
        a.sw(Reg::R7, crypto_accel::regs::DATA as i16, Reg::R1);
        // Absorb the measurement table (covered_rows * 32 bytes).
        a.li(Reg::R2, layout::measure_base());
        a.li(
            Reg::R3,
            layout::measure_base() + covered_rows * layout::MEASURE_ROW_BYTES,
        );
        a.label("absorb");
        a.bgeu(Reg::R2, Reg::R3, "absorbed");
        a.lw(Reg::R4, Reg::R2, 0);
        a.sw(Reg::R7, crypto_accel::regs::DATA as i16, Reg::R4);
        a.addi(Reg::R2, Reg::R2, 4);
        a.jmp("absorb");
        a.label("absorbed");
        a.li(Reg::R2, crypto_accel::cmd::FINALIZE);
        a.sw(Reg::R7, crypto_accel::regs::CTRL as i16, Reg::R2);
        a.label("wait");
        a.lw(Reg::R2, Reg::R7, crypto_accel::regs::CTRL as i16);
        a.li(Reg::R3, 0);
        a.bne(Reg::R2, Reg::R3, "wait");
        a.lw(Reg::R0, Reg::R7, crypto_accel::regs::DIGEST0 as i16);
        // Publish the report.
        a.li(Reg::R1, plan.data_base + svc_data::REPORT);
        a.sw(Reg::R1, 0, Reg::R0);
        a.li(Reg::R0, 1);
        a.li(Reg::R1, plan.data_base + svc_data::DONE);
        a.sw(Reg::R1, 0, Reg::R0);
        a.halt();
    }
    b.add_trustlet(
        &service,
        t.finish()?,
        TrustletOptions {
            peripherals: vec![
                PeriphGrant {
                    base: map::KEYSTORE_MMIO_BASE,
                    size: map::PERIPH_MMIO_SIZE,
                    perms: Perms::R,
                },
                PeriphGrant {
                    base: map::CRYPTO_MMIO_BASE,
                    size: map::PERIPH_MMIO_SIZE,
                    perms: Perms::RW,
                },
            ],
            ..Default::default()
        },
    )?;

    let mut apps = Vec::new();
    for i in 0..n_apps {
        let plan = b.plan_trustlet(&format!("app{i}"), 0x200, 0x80, 0x80);
        let mut t = plan.begin_program();
        t.asm.label("main");
        t.asm.li(Reg::R0, 0x100 + i as u32);
        t.asm.halt();
        b.add_trustlet(&plan, t.finish()?, TrustletOptions::default())?;
        apps.push(plan);
    }

    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    os.asm.label("main");
    os.asm.li(Reg::Sp, stack_top);
    os.asm.halt();
    let os_img = os.finish()?;
    b.set_os(os_img, &[]);
    Ok(AttestServicePlatform {
        platform: b.build()?,
        service,
        apps,
        covered_rows,
    })
}

/// Delivers a challenge to the service (modelling the OS forwarding a
/// network request into the `call()` entry) and returns the report word.
pub fn challenge_device(
    asp: &mut AttestServicePlatform,
    nonce: u32,
) -> Result<u32, TrustliteError> {
    let p = &mut asp.platform;
    // Reset the done flag.
    p.machine
        .sys
        .hw_write32(asp.service.data_base + svc_data::DONE, 0)
        .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
    p.machine.halted = None;
    // RPC into the call() entry with (type, nonce) in registers — what
    // the untrusted OS does after receiving the network challenge.
    p.machine.regs.set(Reg::R0, trustlite::ipc::msg_type::DATA);
    p.machine.regs.set(Reg::R1, nonce);
    p.machine.regs.ip = asp.service.call_entry();
    p.machine.prev_ip = asp.service.call_entry();
    p.machine.run(1_000_000);
    let done = p
        .machine
        .sys
        .hw_read32(asp.service.data_base + svc_data::DONE)
        .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
    if done != 1 {
        return Err(TrustliteError::BadFirmware(
            "service did not complete".to_string(),
        ));
    }
    p.machine
        .sys
        .hw_read32(asp.service.data_base + svc_data::REPORT)
        .map_err(|e| TrustliteError::BadFirmware(e.to_string()))
}

/// Verifier-side reference computation of the report word.
pub fn expected_report(asp: &mut AttestServicePlatform, key: &[u8; 32], nonce: u32) -> u32 {
    let mut mac = Hmac::new(key);
    mac.update(&nonce.to_le_bytes());
    for i in 0..asp.covered_rows * layout::MEASURE_ROW_BYTES / 4 {
        let w = asp
            .platform
            .machine
            .sys
            .hw_read32(layout::measure_base() + 4 * i)
            .expect("table readable");
        mac.update(&w.to_le_bytes());
    }
    let tag = mac.finish();
    u32::from_le_bytes([tag[0], tag[1], tag[2], tag[3]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlite_mpu::AccessKind;

    #[test]
    fn service_reports_and_verifier_accepts() {
        let key = [0x21u8; 32];
        let mut asp = build_attest_service(key, 2).expect("builds");
        let report = challenge_device(&mut asp, 0xfeed_beef).expect("responds");
        let expected = expected_report(&mut asp, &key, 0xfeed_beef);
        assert_eq!(report, expected, "in-sim HMAC matches verifier");
    }

    #[test]
    fn nonce_binds_the_report() {
        let key = [0x21u8; 32];
        let mut asp = build_attest_service(key, 1).expect("builds");
        let r1 = challenge_device(&mut asp, 1).expect("responds");
        let r2 = challenge_device(&mut asp, 2).expect("responds");
        assert_ne!(r1, r2, "replay detection");
    }

    #[test]
    fn tampered_app_changes_report() {
        let key = [0x21u8; 32];
        let mut asp = build_attest_service(key, 1).expect("builds");
        let before = challenge_device(&mut asp, 7).expect("responds");
        // Physical tamper with the app's measurement row is impossible
        // for software (write-protected); simulate a rebooted platform
        // with a different app image by host-editing the row.
        let row = asp.apps[0].measure_slot;
        let w = asp.platform.machine.sys.hw_read32(row).unwrap();
        asp.platform.machine.sys.hw_write32(row, w ^ 1).unwrap();
        let after = challenge_device(&mut asp, 7).expect("responds");
        assert_ne!(before, after);
    }

    #[test]
    fn only_the_service_reads_the_key() {
        let key = [0x21u8; 32];
        let asp = build_attest_service(key, 1).expect("builds");
        let mpu = &asp.platform.machine.sys.mpu;
        let svc_ip = asp.service.code_base + 0x40;
        assert!(mpu.allows(svc_ip, map::KEYSTORE_MMIO_BASE, AccessKind::Read));
        // Neither the OS nor the app trustlet can reach the key store.
        assert!(!mpu.allows(
            asp.platform.os.entry,
            map::KEYSTORE_MMIO_BASE,
            AccessKind::Read
        ));
        let app_ip = asp.apps[0].code_base + 0x40;
        assert!(!mpu.allows(app_ip, map::KEYSTORE_MMIO_BASE, AccessKind::Read));
    }
}
