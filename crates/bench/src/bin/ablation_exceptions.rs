//! Ablation — what breaks without the secure exception engine?
//!
//! DESIGN.md calls out the secure exception engine as the design choice
//! that makes trustlets preemptible. This harness runs the identical
//! preemptive workload (a busy counter scheduled by the untrusted OS
//! under a timer quantum) with the engine instantiated and without it:
//!
//! * **with** the engine, the interrupted trustlet's state is saved to
//!   its own stack, registers are scrubbed, and the counter finishes at
//!   exactly its target;
//! * **without** it, nothing saves the trustlet's registers, `continue()`
//!   pops the stale initial frame, the task restarts from `main` on every
//!   preemption, and its register contents leak to the OS handler.
//!
//! Run: `cargo run -p trustlite-bench --bin ablation_exceptions`

use trustlite::platform::PlatformBuilder;
use trustlite::spec::{PeriphGrant, TrustletOptions};
use trustlite_mem::map;
use trustlite_mpu::Perms;
use trustlite_os::scheduler::{build_scheduler_os, ScheduledTask, SchedulerConfig, SCHED_IDT};
use trustlite_os::trustlet_lib;

struct Outcome {
    counter: u32,
    target: u32,
    preemptions: usize,
    trustlet_flagged: usize,
    cycles: u64,
}

fn run(secure: bool) -> Outcome {
    let target = 100;
    let mut b = PlatformBuilder::new();
    b.secure_exceptions(secure);
    let plan = b.plan_trustlet("worker", 0x200, 0x80, 0x100);
    let mut t = plan.begin_program();
    trustlet_lib::emit_preemptible_counter(&mut t.asm, plan.data_base, target);
    b.add_trustlet(
        &plan,
        t.finish().expect("assembles"),
        TrustletOptions::default(),
    )
    .expect("registers");
    b.grant_os_peripheral(PeriphGrant {
        base: map::TIMER_MMIO_BASE,
        size: map::PERIPH_MMIO_SIZE,
        perms: Perms::RW,
    });
    let mut os = b.begin_os();
    build_scheduler_os(
        &mut os,
        &SchedulerConfig {
            timer_period: 500,
            tasks: vec![ScheduledTask {
                name: "worker".into(),
                entry: plan.continue_entry(),
            }],
        },
    );
    let os_img = os.finish().expect("assembles");
    b.set_os(os_img, SCHED_IDT);
    let mut p = b.build().expect("boots");
    p.run(400_000);
    Outcome {
        counter: p.machine.sys.hw_read32(plan.data_base).expect("readable"),
        target,
        preemptions: p.machine.exc_log.iter().filter(|r| r.vector == 8).count(),
        trustlet_flagged: p
            .machine
            .exc_log
            .iter()
            .filter(|r| r.trustlet.is_some())
            .count(),
        cycles: p.machine.cycles,
    }
}

fn main() {
    println!("Ablation: preemptive trustlet scheduling with/without the secure");
    println!("exception engine (100-increment busy counter, 500-cycle quantum)");
    println!("=================================================================");
    println!(
        "{:<26}{:>10}{:>10}{:>14}{:>16}",
        "configuration", "counter", "target", "preemptions", "state saved"
    );
    let with = run(true);
    let without = run(false);
    println!(
        "{:<26}{:>10}{:>10}{:>14}{:>16}",
        "secure exceptions ON", with.counter, with.target, with.preemptions, with.trustlet_flagged
    );
    println!(
        "{:<26}{:>10}{:>10}{:>14}{:>16}",
        "secure exceptions OFF",
        without.counter,
        without.target,
        without.preemptions,
        without.trustlet_flagged
    );
    println!();
    assert_eq!(with.counter, with.target, "engine preserves state exactly");
    assert_ne!(
        without.counter, without.target,
        "ablated run corrupts the computation"
    );
    println!("with the engine the task completes exactly; without it, every");
    println!("preemption discards the live registers and continue() replays the");
    println!(
        "stale initial frame — the task livelocks and the counter runs away \
         ({} after {} preemptions).",
        without.counter, without.preemptions
    );
    println!();
    println!(
        "the engine's entire price was {} x 21 extra cycles inside a {}-cycle run \
         (Section 5.4); the ablated configuration burned {} cycles without ever \
         finishing",
        with.trustlet_flagged, with.cycles, without.cycles
    );
}
