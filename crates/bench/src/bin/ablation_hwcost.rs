//! Ablation — the EA-MPU hardware design space.
//!
//! The paper fixes one design point (32-bit addresses, byte-exact
//! regions folded to a 32-byte granule in our model). This harness
//! sweeps the two structural knobs of the cost model — region
//! granularity and datapath width — to show where the published numbers
//! sit and what the paper's Section 5.2 scaling remarks amount to across
//! the whole space.
//!
//! Run: `cargo run -p trustlite-bench --bin ablation_hwcost`

use trustlite_hwcost::{CostPoint, EaMpuModel};

fn per_module(width: u32, gran: u32, exceptions: bool) -> CostPoint {
    EaMpuModel {
        addr_width: width,
        granularity_bits: gran,
        secure_exceptions: exceptions,
    }
    .per_module()
}

fn main() {
    println!("EA-MPU design-space ablation (per-module cost, regs/LUTs)");
    println!("==========================================================");
    println!("region granularity sweep at 32-bit addresses:");
    println!(
        "{:>14}{:>12}{:>12}{:>16}",
        "granule", "regs", "LUTs", "with exceptions"
    );
    for gran in [0u32, 2, 4, 5, 6, 8] {
        let base = per_module(32, gran, false);
        let exc = per_module(32, gran, true);
        let marker = if gran == 5 {
            "  <- published design point"
        } else {
            ""
        };
        println!(
            "{:>11} B {:>12}{:>12}{:>9}/{:<6}{}",
            1u32 << gran,
            base.regs,
            base.luts,
            exc.regs,
            exc.luts,
            marker
        );
    }
    println!();
    println!("datapath width sweep at 32-byte granules:");
    println!(
        "{:>10}{:>12}{:>12}{:>14}",
        "width", "regs", "LUTs", "vs 32-bit"
    );
    let wide = per_module(32, 5, false);
    for width in [16u32, 20, 24, 32] {
        let c = per_module(width, 5, false);
        println!(
            "{:>10}{:>12}{:>12}{:>13.0}%",
            width,
            c.regs,
            c.luts,
            c.slices() as f64 / wide.slices() as f64 * 100.0
        );
    }
    println!();
    println!("observations:");
    println!("- coarser granules shave comparator bits: halving precision costs");
    println!("  nothing in policy expressiveness for page-sized regions but saves");
    println!("  ~4 regs + 6 LUTs per dropped bit per module;");
    println!("- the 16-bit point reproduces the paper's 'roughly 50% saving' for");
    println!("  an MSP430-class datapath;");
    println!("- the secure-exception engine adds a constant 32 regs (the secure");
    println!("  stack pointer) per module regardless of granularity.");
}
