//! Experiment ECAP — renders the qualitative comparison running through
//! Sections 6 and 7: which architectural capabilities TrustLite, SMART
//! and Sancus provide. The mechanical claims are demonstrated against the
//! executable models in `tests/differential_baselines.rs`.
//!
//! Run: `cargo run -p trustlite-bench --bin capability_matrix`

use trustlite_baselines::capabilities::comparison_table;

fn main() {
    println!("Architectural capability comparison (Sections 6-7)");
    println!("===================================================");
    print!("{}", comparison_table());
    println!();
    println!("notes:");
    println!("- \"regs\" = bounded only by the number of region registers instantiated");
    println!("- SMART/Sancus reset semantics force a full memory wipe; TrustLite's");
    println!("  Secure Loader re-establishes protection instead (Section 3.5)");
    println!("- Sancus modules are one contiguous text + one contiguous data region,");
    println!("  which rules out the MMIO flexibility TrustLite uses for secure");
    println!("  peripherals (Section 3.3)");
}
