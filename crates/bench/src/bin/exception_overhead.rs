//! Experiment E54 — reproduces **Section 5.4**, runtime overhead of
//! exception handling: the regular engine needs 21 cycles from exception
//! recognition to the first ISR instruction; the secure engine adds
//! 2 + 10 + 9 = 21 cycles (100%) when a trustlet is interrupted and
//! 2 cycles otherwise. All numbers below are *measured* on the simulator
//! by taking real exceptions, not recomputed from the constants.
//!
//! Run: `cargo run -p trustlite-bench --bin exception_overhead`

use trustlite_bench::{exception_metrics_report, measure_exception_entry};
use trustlite_cpu::costs;

fn main() {
    let m = measure_exception_entry();
    println!("Section 5.4: exception-engine entry cost (measured in-simulator)");
    println!("=================================================================");
    println!("{:<44}{:>10}{:>10}", "configuration", "measured", "paper");
    println!(
        "{:<44}{:>10}{:>10}",
        "regular engine, any interrupt", m.regular_os, 21
    );
    println!(
        "{:<44}{:>10}{:>10}",
        "secure engine, non-trustlet interrupted", m.secure_os, 23
    );
    println!(
        "{:<44}{:>10}{:>10}",
        "secure engine, trustlet interrupted", m.secure_trustlet, 42
    );
    println!();
    println!("secure-engine overhead decomposition (trustlet case):");
    println!(
        "  {:>2} cycles  recognize trustlet (TT region match)",
        costs::SEC_DETECT
    );
    println!(
        "  {:>2} cycles  store all but ESP ({} words: r0..r7, flags, ip)",
        costs::SEC_SAVED_WORDS * costs::SEC_SAVE_WORD,
        costs::SEC_SAVED_WORDS
    );
    println!(
        "  {:>2} cycles  clear {} GPRs + store ESP into the Trustlet Table",
        costs::SEC_CLEARED_REGS * costs::SEC_CLEAR_REG + costs::SEC_TT_WRITE,
        costs::SEC_CLEARED_REGS
    );
    let overhead = (m.secure_trustlet - m.regular_os) as f64 / m.regular_os as f64 * 100.0;
    println!();
    println!("relative overhead when interrupting a trustlet: {overhead:.0}% (paper: 100%)");
    println!(
        "non-trustlet overhead: {} cycles (paper: 2)",
        m.secure_os - m.regular_os
    );
    println!();
    println!(
        "context-switch comparison: a 32-bit i486 needs >= {} cycles (paper citation); \
         the full secure trustlet switch here costs {} cycles",
        costs::I486_CONTEXT_SWITCH,
        m.secure_trustlet
    );
    println!();
    println!("metrics (trustlet-interrupt scenario, MetricsReport JSON):");
    println!("{}", exception_metrics_report().to_json());
}
