//! Experiment F7 — reproduces **Figure 7**: hardware overhead of
//! TrustLite and Sancus in total FPGA slices (regs + LUTs) as a function
//! of the number of protected modules.
//!
//! Run: `cargo run -p trustlite-bench --bin fig7`

use trustlite_hwcost::{figure7, modules_at_budget, sancus_cost, trustlite_ext_cost, MSP430_BASE};

fn main() {
    println!("Figure 7: hardware overhead vs number of protected modules");
    println!("(cost in FPGA slices proxy = regs + LUTs, as in the paper's y-axis)");
    println!();
    println!(
        "{:>8}{:>12}{:>14}{:>10}{:>10}{:>10}{:>10}",
        "modules", "TrustLite", "TL+except.", "Sancus", "base", "200%", "400%"
    );
    for row in figure7(32) {
        // Print the paper's x-axis ticks plus a few extras.
        if ![0, 2, 4, 8, 9, 12, 16, 20, 24, 32].contains(&row.modules) {
            continue;
        }
        println!(
            "{:>8}{:>12}{:>14}{:>10}{:>10}{:>10}{:>10}",
            row.modules,
            row.trustlite,
            row.trustlite_exc,
            row.sancus,
            row.msp430_base,
            row.msp430_200,
            row.msp430_400
        );
    }
    println!();

    let budget200 = MSP430_BASE.slices() * 2;
    let sancus_fit = modules_at_budget(|n| sancus_cost(n).slices(), budget200);
    let tl_fit = modules_at_budget(|n| trustlite_ext_cost(n, false).slices(), budget200);
    println!("crossover at 200% of the openMSP430 core ({budget200} slices):");
    println!("  Sancus fits    {sancus_fit:>3} modules   (paper: 9)");
    println!(
        "  TrustLite fits {tl_fit:>3} modules   (paper: 20; model puts 20 modules at {} \
         slices, within 0.3% of the line)",
        trustlite_ext_cost(20, false).slices()
    );
    let n = 12;
    let ratio = trustlite_ext_cost(n, false).slices() as f64 / sancus_cost(n).slices() as f64;
    println!();
    println!(
        "at {n} modules TrustLite costs {:.0}% of Sancus (paper: \"about half the hardware \
         overhead\")",
        ratio * 100.0
    );
}
