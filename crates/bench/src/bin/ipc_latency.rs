//! Experiment EIPC — quantifies the Section 4.2 / Section 6 IPC claims:
//! untrusted IPC is an RPC-style jump with register arguments; trusted
//! IPC needs a *single* round trip (local attestation + syn/ack) after
//! which the channel persists until platform reset, because the MPU rules
//! cannot change underneath it. Baselines pay per interaction instead.
//!
//! Run: `cargo run -p trustlite-bench --bin ipc_latency`

use trustlite_baselines::SmartDevice;
use trustlite_bench::{build_handshake_platform, measure_untrusted_ipc, run_handshake};

fn main() {
    println!("Trusted and untrusted IPC costs (measured in-simulator)");
    println!("=======================================================");

    let u = measure_untrusted_ipc();
    println!("untrusted IPC (OS -> trustlet call() entry, Section 4.2.1):");
    println!(
        "  jump to callee entry  : {:>6} cycles",
        u.call_entry_cycles
    );
    println!(
        "  full round trip       : {:>6} cycles (enter, enqueue msg, return)",
        u.roundtrip_cycles
    );
    println!();

    let mut hp = build_handshake_platform(2026).expect("handshake platform builds");
    let h = run_handshake(&mut hp).expect("handshake runs");
    assert!(h.success, "handshake failed");
    assert_eq!(h.token_a, h.token_b);
    assert_eq!(h.token_a, h.expected_token);
    println!("trusted IPC establishment (Section 4.2.2, one round trip):");
    println!(
        "  local attestation of the peer : {:>6} cycles",
        h.attest_cycles
    );
    println!(
        "  syn/ack + token derivation    : {:>6} cycles",
        h.total_cycles - h.attest_cycles
    );
    println!(
        "  total one-time establishment  : {:>6} cycles",
        h.total_cycles
    );
    println!(
        "  (both sides derived token {:#010x}, matching the host protocol model)",
        h.token_a
    );
    println!();

    println!("per-message cost after establishment:");
    println!(
        "  TrustLite: {:>6} cycles   (a jump; receiver identity enforced by the CPU)",
        u.roundtrip_cycles
    );
    let sancus_mac = 64 + 2; // hardware-MAC latency + absorb, per direction
    println!(
        "  Sancus   : {:>6} cycles   (+{sancus_mac} per MAC per direction: every message \
         is authenticated with module keys)",
        u.roundtrip_cycles + 2 * sancus_mac
    );
    let mut smart = SmartDevice::new([0; 32], 4096);
    let (_, smart_cycles) = smart.attest(b"nonce", 0, 4096);
    println!(
        "  SMART    : {:>6} cycles   (no protected state: each interaction re-runs the \
         ROM attestation of a 4 KiB region)",
        smart_cycles
    );
    println!();
    println!("paper: \"interaction between multiple protected modules is very slow\"");
    println!("under SMART; TrustLite amortizes one inspection across the session.");
    println!();
    println!("metrics (handshake run, MetricsReport JSON):");
    println!("{}", hp.platform.machine.metrics_report().to_json());
}
