//! Experiment E53a — reproduces the **Section 5.3** Secure Loader
//! overhead results: initializing trustlets requires only three MPU
//! register writes per protection region, and — unlike SMART/Sancus —
//! platform reset re-establishes the rules instead of wiping all volatile
//! memory.
//!
//! Run: `cargo run -p trustlite-bench --bin loader_overhead`

use trustlite_baselines::SmartDevice;
use trustlite_bench::boot_platform_with;
use trustlite_mem::map;

fn main() {
    println!("Section 5.3: Secure Loader boot overhead (measured)");
    println!("====================================================");
    println!(
        "{:>10}{:>10}{:>12}{:>14}{:>14}{:>14}",
        "trustlets", "regions", "MPU writes", "writes/region", "words copied", "est. cycles"
    );
    for n in [0usize, 1, 2, 4, 8] {
        let p = boot_platform_with(n, true);
        let r = &p.report;
        println!(
            "{:>10}{:>10}{:>12}{:>14.1}{:>14}{:>14}",
            n,
            r.regions_programmed,
            r.mpu_writes,
            r.mpu_writes as f64 / r.regions_programmed as f64,
            r.words_copied,
            r.estimated_cycles
        );
    }
    println!();
    println!("paper: \"only three additional writes to MPU registers for each");
    println!("protection region to define the start, end and permission\"");
    println!();

    // Reset-cost comparison: SMART/Sancus must wipe all volatile memory
    // on reset; the Secure Loader only re-programs the rules.
    let mut p = boot_platform_with(4, true);
    let loader_cycles = p.report.estimated_cycles;
    let smart = SmartDevice::new([0; 32], map::SRAM_SIZE as usize);
    println!(
        "reset/startup comparison (4 trustlets, {} KiB SRAM):",
        map::SRAM_SIZE / 1024
    );
    println!(
        "  TrustLite Secure Loader re-protect : ~{loader_cycles} cycles \
         (copies + 3 writes/region + measurement)"
    );
    println!(
        "  SMART/Sancus hardware memory wipe  : ~{} cycles (one word per cycle)",
        smart.reset_wipe_cycles()
    );
    println!(
        "  -> the wipe alone costs {:.1}x the entire TrustLite boot flow",
        smart.reset_wipe_cycles() as f64 / loader_cycles as f64
    );
    println!();
    println!("metrics (4-trustlet boot, MetricsReport JSON):");
    println!("{}", p.machine.metrics_report().to_json());
}
