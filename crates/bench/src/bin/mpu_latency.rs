//! Experiment E53b — reproduces **Section 5.3**, runtime overhead of
//! memory protection: the EA-MPU's range checks run in parallel with the
//! access and add zero cycles to the memory path; only the
//! fault-aggregation logic deepens logarithmically with the number of
//! region registers (timing closure was met up to 32 regions).
//!
//! Run: `cargo run -p trustlite-bench --bin mpu_latency`

use trustlite_cpu::{Machine, SystemBus};
use trustlite_hwcost::{fault_tree_depth, fmax_mhz, meets_timing, timing::TARGET_CLOCK_MHZ};
use trustlite_isa::{Asm, Reg};
use trustlite_mem::{Bus, Ram, Rom};
use trustlite_mpu::{EaMpu, Perms, RuleSlot, Subject};

/// Runs a load/store-heavy loop and returns total cycles.
fn run_workload(enforce: bool, regions: usize) -> u64 {
    let mut a = Asm::new(0);
    a.li(Reg::R1, 0x1000_0000);
    a.li(Reg::R2, 0); // i
    a.li(Reg::R3, 1000);
    a.label("loop");
    a.bge(Reg::R2, Reg::R3, "done");
    a.sw(Reg::R1, 0, Reg::R2);
    a.lw(Reg::R4, Reg::R1, 0);
    a.sw(Reg::R1, 4, Reg::R4);
    a.lw(Reg::R5, Reg::R1, 4);
    a.addi(Reg::R2, Reg::R2, 1);
    a.jmp("loop");
    a.label("done");
    a.halt();
    let img = a.assemble().expect("assembles");

    let mut bus = Bus::new();
    bus.map(0, Box::new(Rom::new(0x1000))).expect("prom maps");
    bus.map(0x1000_0000, Box::new(Ram::new("sram", 0x1000)))
        .expect("sram maps");
    bus.host_load(0, &img.bytes);
    let mut mpu = EaMpu::new(regions);
    // Fill every region register so all comparators are exercised; the
    // last two rules grant what the workload needs.
    for i in 0..regions.saturating_sub(2) {
        mpu.set_rule(
            i,
            RuleSlot {
                start: 0x9000_0000 + (i as u32) * 0x100,
                end: 0x9000_0000 + (i as u32) * 0x100 + 0x100,
                perms: Perms::R,
                subject: Subject::Any,
                enabled: true,
                locked: false,
            },
        )
        .expect("rule fits");
    }
    mpu.set_rule(
        regions - 2,
        RuleSlot {
            start: 0,
            end: 0x1000,
            perms: Perms::RX,
            subject: Subject::Any,
            enabled: true,
            locked: false,
        },
    )
    .expect("rule fits");
    mpu.set_rule(
        regions - 1,
        RuleSlot {
            start: 0x1000_0000,
            end: 0x1000_1000,
            perms: Perms::RW,
            subject: Subject::Any,
            enabled: true,
            locked: false,
        },
    )
    .expect("rule fits");
    let mut sys = SystemBus::new(bus, mpu, None);
    sys.enforce = enforce;
    let mut m = Machine::new(sys, 0);
    m.run(100_000);
    m.cycles
}

fn main() {
    println!("Section 5.3: runtime overhead of memory protection (measured)");
    println!("==============================================================");
    println!("4000-access load/store workload, cycles:");
    println!(
        "{:>10}{:>16}{:>16}{:>10}",
        "regions", "MPU disabled", "MPU enforcing", "delta"
    );
    for regions in [4usize, 8, 16, 32] {
        let off = run_workload(false, regions);
        let on = run_workload(true, regions);
        println!(
            "{:>10}{:>16}{:>16}{:>10}",
            regions,
            off,
            on,
            on as i64 - off as i64
        );
    }
    println!();
    println!("paper: \"memory region range checks can be parallelized such that");
    println!("they do not increase memory access time\" — delta is zero by design;");
    println!("the checks are combinational and off the critical path.");
    println!();
    println!("fault-aggregation logic depth (4-input LUT OR-tree levels):");
    println!("{:>10}{:>8}", "regions", "depth");
    for n in [1u32, 2, 4, 8, 12, 16, 24, 32, 64] {
        println!("{:>10}{:>8}", n, fault_tree_depth(n));
    }
    println!();
    println!(
        "paper: depth grows logarithmically; no timing-closure problems up to \
         32 regions (depth {} here)",
        fault_tree_depth(32)
    );
    println!();
    println!("timing-closure model (fault-aggregation path, {TARGET_CLOCK_MHZ:.0} MHz target):");
    println!("{:>10}{:>12}{:>10}", "regions", "fmax (MHz)", "closes");
    for n in [8u32, 16, 32, 64, 128, 1024] {
        println!(
            "{:>10}{:>12.0}{:>10}",
            n,
            fmax_mhz(n),
            if meets_timing(n, TARGET_CLOCK_MHZ) {
                "yes"
            } else {
                "no"
            }
        );
    }
}
