//! Experiment ETPT — interpreter throughput (simulated MIPS) across the
//! telemetry capture levels, on three execution paths:
//!
//! * **baseline** — every cache off (`set_fast_path(false)`): fetch,
//!   decode and a full EA-MPU scan per instruction;
//! * **fast** — the PR 3 fast path (predecode table, EA-MPU grant
//!   cache, batched device ticks) with the superblock cache disabled;
//! * **block** — the full fast path plus the superblock trace engine:
//!   straight-line runs execute as cached micro-op vectors through the
//!   const-generic block loop.
//!
//! For each (workload, capture level) the same platform is run for an
//! identical step budget on all three paths, and the harness asserts
//! they retire the same instruction count, cycle count and
//! architectural-state digest before reporting speedups: each layer
//! must be an observably-pure optimisation. Each configuration is timed
//! several times interleaved and the best run is kept (the usual
//! defence against scheduler noise on a shared machine; the simulation
//! itself is deterministic, so repetition only de-noises the wall
//! clock).
//!
//! Run: `cargo run -p trustlite-bench --release --bin sim_throughput`
//! (pass `-- --smoke` for a seconds-long CI-sized run, plus
//! `--gate-block` to assert the block path beats the predecode path at
//! capture Off even on smoke budgets).
//!
//! Writes `BENCH_sim_throughput.json` into the current directory.

use std::fmt::Write as _;
use std::time::Instant;

use trustlite::ObsLevel;
use trustlite_bench::state_digest;
use trustlite_bench::throughput::{build_workload, WORKLOADS};
use trustlite_bench::timing::{is_noisy, thread_cpu_ns, wall_cpu_ratio};
use trustlite_cpu::RunExit;

const LEVELS: [(ObsLevel, &str); 4] = [
    (ObsLevel::Off, "Off"),
    (ObsLevel::Metrics, "Metrics"),
    (ObsLevel::Events, "Events"),
    (ObsLevel::Full, "Full"),
];

/// The three execution paths, in reporting order.
#[derive(Clone, Copy, PartialEq)]
enum Path {
    Baseline,
    Fast,
    Block,
}

const PATHS: [Path; 3] = [Path::Baseline, Path::Fast, Path::Block];

/// Timed repetitions per configuration; the fastest is reported. The
/// three paths are interleaved so a noisy stretch of host time cannot
/// bias one side of the comparison.
const REPS: usize = 4;

struct RunStats {
    instret: u64,
    cycles: u64,
    digest: [u8; 32],
    mips: f64,
    wall_ms: f64,
    cpu_ms: f64,
}

fn run_single(workload: &str, level: ObsLevel, path: Path, steps: u64) -> RunStats {
    let mut p = build_workload(workload, level);
    p.machine.sys.set_fast_path(path != Path::Baseline);
    p.machine.sys.set_superblocks(path == Path::Block);
    let t0 = Instant::now();
    let c0 = thread_cpu_ns();
    let exit = p.run(steps);
    let cpu_ns = thread_cpu_ns() - c0;
    let wall = t0.elapsed();
    assert_eq!(
        exit,
        RunExit::StepLimit,
        "{workload} must loop for the whole budget"
    );
    let wall_secs = wall.as_secs_f64();
    let secs = if cpu_ns > 0 {
        cpu_ns as f64 / 1e9
    } else {
        wall_secs
    };
    RunStats {
        instret: p.machine.instret,
        cycles: p.machine.cycles,
        digest: state_digest(&mut p),
        mips: p.machine.instret as f64 / secs / 1e6,
        wall_ms: wall_secs * 1e3,
        cpu_ms: secs * 1e3,
    }
}

/// Keeps the faster of two repetitions, asserting they simulated the
/// same machine history.
fn fold_best(best: &mut Option<RunStats>, stats: RunStats, workload: &str) {
    if let Some(ref b) = best {
        assert_eq!(
            (stats.instret, stats.cycles, stats.digest),
            (b.instret, b.cycles, b.digest),
            "{workload}: repetition diverged — the simulation must be deterministic"
        );
    }
    if best.as_ref().is_none_or(|b| stats.mips > b.mips) {
        *best = Some(stats);
    }
}

/// Best-of-[`REPS`] measurements for all three paths, interleaved.
fn measure(workload: &str, level: ObsLevel, steps: u64) -> [RunStats; 3] {
    let mut best: [Option<RunStats>; 3] = [None, None, None];
    for _ in 0..REPS {
        for (slot, path) in best.iter_mut().zip(PATHS) {
            fold_best(slot, run_single(workload, level, path, steps), workload);
        }
    }
    best.map(Option::unwrap)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let gate_block = std::env::args().any(|a| a == "--gate-block");
    let steps: u64 = if smoke { 20_000 } else { 4_000_000 };

    println!("Interpreter throughput, {steps} steps per run (smoke: {smoke})");
    println!(
        "{:<14}{:<9}{:>14}{:>11}{:>12}{:>9}{:>10}",
        "workload", "level", "baseline MIPS", "fast MIPS", "block MIPS", "speedup", "blk/fast"
    );

    let mut rows = String::new();
    let mut min_speedup_off = f64::INFINITY; // fast-path acceptance gate
    let mut min_speedup_hot = f64::INFINITY; // across Off + Metrics
    let mut max_block_vs_fast_off = 0.0f64; // superblock acceptance gate
    let mut noisy_runs = 0usize;
    for workload in WORKLOADS {
        for (level, level_name) in LEVELS {
            let [slow, fast, block] = measure(workload, level, steps);
            // Wall/CPU divergence: a best-of-REPS run whose wall time
            // still exceeds its CPU time means the host was contended
            // for the *whole* measurement — flag it instead of letting
            // a quietly distorted number into the record.
            let noisy = [&slow, &fast, &block]
                .iter()
                .any(|s| is_noisy(s.wall_ms, s.cpu_ms));
            if noisy {
                noisy_runs += 1;
                eprintln!(
                    "warning: {workload}/{level_name} wall/cpu divergence \
                     (baseline {:.0}/{:.0} ms, fast {:.0}/{:.0} ms, \
                     block {:.0}/{:.0} ms) — host was contended, treat \
                     MIPS with suspicion",
                    slow.wall_ms,
                    slow.cpu_ms,
                    fast.wall_ms,
                    fast.cpu_ms,
                    block.wall_ms,
                    block.cpu_ms
                );
            }
            // Every acceleration layer must be invisible to the
            // architecture: counters and the state digest agree across
            // all three paths.
            for (s, name) in [(&fast, "fast"), (&block, "block")] {
                assert_eq!(
                    (s.instret, s.cycles),
                    (slow.instret, slow.cycles),
                    "{workload}/{level_name}: {name} path changed observable counts"
                );
                assert_eq!(
                    s.digest, slow.digest,
                    "{workload}/{level_name}: {name} path changed architectural state"
                );
            }
            let speedup = block.mips / slow.mips;
            let block_vs_fast = block.mips / fast.mips;
            if matches!(level, ObsLevel::Off) {
                min_speedup_off = min_speedup_off.min(fast.mips / slow.mips);
                max_block_vs_fast_off = max_block_vs_fast_off.max(block_vs_fast);
            }
            if matches!(level, ObsLevel::Off | ObsLevel::Metrics) {
                min_speedup_hot = min_speedup_hot.min(fast.mips / slow.mips);
            }
            println!(
                "{workload:<14}{level_name:<9}{:>14.1}{:>11.1}{:>12.1}{:>8.2}x{:>9.2}x",
                slow.mips, fast.mips, block.mips, speedup, block_vs_fast
            );
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            write!(
                rows,
                "    {{\"workload\": \"{workload}\", \"level\": \"{level_name}\", \
                 \"instret\": {}, \"cycles\": {}, \
                 \"baseline_mips\": {:.2}, \"baseline_cpu_ms\": {:.2}, \
                 \"baseline_wall_ms\": {:.2}, \
                 \"fast_mips\": {:.2}, \"fast_cpu_ms\": {:.2}, \
                 \"fast_wall_ms\": {:.2}, \
                 \"block_mips\": {:.2}, \"block_cpu_ms\": {:.2}, \
                 \"block_wall_ms\": {:.2}, \"wall_cpu_ratio\": {:.3}, \
                 \"noisy\": {}, \"speedup\": {:.3}, \
                 \"block_vs_fast\": {:.3}}}",
                block.instret,
                block.cycles,
                slow.mips,
                slow.cpu_ms,
                slow.wall_ms,
                fast.mips,
                fast.cpu_ms,
                fast.wall_ms,
                block.mips,
                block.cpu_ms,
                block.wall_ms,
                wall_cpu_ratio(block.wall_ms, block.cpu_ms),
                noisy,
                speedup,
                block_vs_fast
            )
            .unwrap();
        }
    }

    println!();
    println!(
        "min fast speedup at Off: {min_speedup_off:.2}x (Off/Metrics: {min_speedup_hot:.2}x); \
         max block-vs-fast at Off: {max_block_vs_fast_off:.2}x"
    );
    // Wall-clock assertions are for the real run only; a smoke run's
    // per-run time is dominated by noise and exists to prove the
    // harness and the equality invariants, not the numbers.
    if !smoke {
        assert!(
            min_speedup_off >= 3.0,
            "fast path must be >= 3x at capture level Off (got {min_speedup_off:.2}x)"
        );
        assert!(
            max_block_vs_fast_off >= 2.5,
            "superblock path must be >= 2.5x over the predecode path at \
             capture Off on at least one workload (got {max_block_vs_fast_off:.2}x)"
        );
    } else if gate_block {
        assert!(
            max_block_vs_fast_off >= 1.0,
            "superblock path must not lose to the predecode path at \
             capture Off (got {max_block_vs_fast_off:.2}x)"
        );
    }

    if noisy_runs > 0 {
        eprintln!("warning: {noisy_runs} configuration(s) showed wall/cpu divergence");
    }

    let json = format!(
        "{{\n  \"experiment\": \"sim_throughput\",\n  \"smoke\": {smoke},\n  \
         \"steps_per_run\": {steps},\n  \"min_speedup_off\": {min_speedup_off:.3},\n  \
         \"min_speedup_off_metrics\": {min_speedup_hot:.3},\n  \
         \"max_block_vs_fast_off\": {max_block_vs_fast_off:.3},\n  \
         \"noisy_runs\": {noisy_runs},\n  \
         \"runs\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_sim_throughput.json", &json).expect("write BENCH_sim_throughput.json");
    println!("wrote BENCH_sim_throughput.json");
}
