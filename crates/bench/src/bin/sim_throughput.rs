//! Experiment ETPT — interpreter throughput (simulated MIPS) across the
//! telemetry capture levels, with the fast-path caches (predecode table,
//! EA-MPU grant cache, batched device ticks) off and on.
//!
//! For each (workload, capture level) the same platform is run for an
//! identical step budget — with `set_fast_path(false)` and with the
//! caches enabled — and the harness asserts the two configurations
//! retire the same instruction count and cycle count before reporting
//! speedup: the fast path must be an observably-pure optimisation.
//! Each configuration is timed several times and the best run is kept
//! (the usual defence against scheduler noise on a shared machine; the
//! simulation itself is deterministic, so repetition only de-noises the
//! wall clock).
//!
//! Run: `cargo run -p trustlite-bench --release --bin sim_throughput`
//! (pass `-- --smoke` for a seconds-long CI-sized run).
//!
//! Writes `BENCH_sim_throughput.json` into the current directory.

use std::fmt::Write as _;
use std::time::Instant;

use trustlite::ObsLevel;
use trustlite_bench::throughput::{build_workload, WORKLOADS};
use trustlite_bench::timing::{is_noisy, thread_cpu_ns, wall_cpu_ratio};
use trustlite_cpu::RunExit;

const LEVELS: [(ObsLevel, &str); 4] = [
    (ObsLevel::Off, "Off"),
    (ObsLevel::Metrics, "Metrics"),
    (ObsLevel::Events, "Events"),
    (ObsLevel::Full, "Full"),
];

/// Timed repetitions per configuration; the fastest is reported.
/// Baseline and fast runs are interleaved so a noisy stretch of host
/// time cannot bias one side of the comparison.
const REPS: usize = 4;

struct RunStats {
    instret: u64,
    cycles: u64,
    mips: f64,
    wall_ms: f64,
    cpu_ms: f64,
}

fn run_single(workload: &str, level: ObsLevel, fast_path: bool, steps: u64) -> RunStats {
    let mut p = build_workload(workload, level);
    p.machine.sys.set_fast_path(fast_path);
    let t0 = Instant::now();
    let c0 = thread_cpu_ns();
    let exit = p.run(steps);
    let cpu_ns = thread_cpu_ns() - c0;
    let wall = t0.elapsed();
    assert_eq!(
        exit,
        RunExit::StepLimit,
        "{workload} must loop for the whole budget"
    );
    let wall_secs = wall.as_secs_f64();
    let secs = if cpu_ns > 0 {
        cpu_ns as f64 / 1e9
    } else {
        wall_secs
    };
    RunStats {
        instret: p.machine.instret,
        cycles: p.machine.cycles,
        mips: p.machine.instret as f64 / secs / 1e6,
        wall_ms: wall_secs * 1e3,
        cpu_ms: secs * 1e3,
    }
}

/// Keeps the faster of two repetitions, asserting they simulated the
/// same machine history.
fn fold_best(best: &mut Option<RunStats>, stats: RunStats, workload: &str) {
    if let Some(ref b) = best {
        assert_eq!(
            (stats.instret, stats.cycles),
            (b.instret, b.cycles),
            "{workload}: repetition diverged — the simulation must be deterministic"
        );
    }
    if best.as_ref().is_none_or(|b| stats.mips > b.mips) {
        *best = Some(stats);
    }
}

/// Best-of-[`REPS`] baseline and fast-path measurements, interleaved.
fn measure(workload: &str, level: ObsLevel, steps: u64) -> (RunStats, RunStats) {
    let mut slow: Option<RunStats> = None;
    let mut fast: Option<RunStats> = None;
    for _ in 0..REPS {
        fold_best(
            &mut slow,
            run_single(workload, level, false, steps),
            workload,
        );
        fold_best(
            &mut fast,
            run_single(workload, level, true, steps),
            workload,
        );
    }
    (slow.unwrap(), fast.unwrap())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let steps: u64 = if smoke { 20_000 } else { 4_000_000 };

    println!("Interpreter throughput, {steps} steps per run (smoke: {smoke})");
    println!(
        "{:<14}{:<9}{:>14}{:>12}{:>9}",
        "workload", "level", "baseline MIPS", "fast MIPS", "speedup"
    );

    let mut rows = String::new();
    let mut min_speedup_off = f64::INFINITY; // the acceptance gate
    let mut min_speedup_hot = f64::INFINITY; // across Off + Metrics
    let mut noisy_runs = 0usize;
    for workload in WORKLOADS {
        for (level, level_name) in LEVELS {
            let (slow, fast) = measure(workload, level, steps);
            // Wall/CPU divergence: a best-of-REPS run whose wall time
            // still exceeds its CPU time means the host was contended
            // for the *whole* measurement — flag it instead of letting
            // a quietly distorted number into the record.
            let noisy = is_noisy(slow.wall_ms, slow.cpu_ms) || is_noisy(fast.wall_ms, fast.cpu_ms);
            if noisy {
                noisy_runs += 1;
                eprintln!(
                    "warning: {workload}/{level_name} wall/cpu divergence \
                     (baseline {:.0}/{:.0} ms, fast {:.0}/{:.0} ms) — \
                     host was contended, treat MIPS with suspicion",
                    slow.wall_ms, slow.cpu_ms, fast.wall_ms, fast.cpu_ms
                );
            }
            // The caches must be invisible to the architecture.
            assert_eq!(
                (fast.instret, fast.cycles),
                (slow.instret, slow.cycles),
                "{workload}/{level_name}: fast path changed observable counts"
            );
            let speedup = fast.mips / slow.mips;
            if matches!(level, ObsLevel::Off) {
                min_speedup_off = min_speedup_off.min(speedup);
            }
            if matches!(level, ObsLevel::Off | ObsLevel::Metrics) {
                min_speedup_hot = min_speedup_hot.min(speedup);
            }
            println!(
                "{workload:<14}{level_name:<9}{:>14.1}{:>12.1}{:>8.2}x",
                slow.mips, fast.mips, speedup
            );
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            write!(
                rows,
                "    {{\"workload\": \"{workload}\", \"level\": \"{level_name}\", \
                 \"instret\": {}, \"cycles\": {}, \
                 \"baseline_mips\": {:.2}, \"baseline_cpu_ms\": {:.2}, \
                 \"baseline_wall_ms\": {:.2}, \
                 \"fast_mips\": {:.2}, \"fast_cpu_ms\": {:.2}, \
                 \"fast_wall_ms\": {:.2}, \"wall_cpu_ratio\": {:.3}, \
                 \"noisy\": {}, \"speedup\": {:.3}}}",
                fast.instret,
                fast.cycles,
                slow.mips,
                slow.cpu_ms,
                slow.wall_ms,
                fast.mips,
                fast.cpu_ms,
                fast.wall_ms,
                wall_cpu_ratio(fast.wall_ms, fast.cpu_ms),
                noisy,
                speedup
            )
            .unwrap();
        }
    }

    println!();
    println!("min speedup at Off: {min_speedup_off:.2}x (Off/Metrics: {min_speedup_hot:.2}x)");
    // Wall-clock assertions are for the real run only; a smoke run's
    // per-run time is dominated by noise and exists to prove the
    // harness and the equality invariants, not the numbers.
    if !smoke {
        assert!(
            min_speedup_off >= 3.0,
            "fast path must be >= 3x at capture level Off (got {min_speedup_off:.2}x)"
        );
    }

    if noisy_runs > 0 {
        eprintln!("warning: {noisy_runs} configuration(s) showed wall/cpu divergence");
    }

    let json = format!(
        "{{\n  \"experiment\": \"sim_throughput\",\n  \"smoke\": {smoke},\n  \
         \"steps_per_run\": {steps},\n  \"min_speedup_off\": {min_speedup_off:.3},\n  \"min_speedup_off_metrics\": {min_speedup_hot:.3},\n  \
         \"noisy_runs\": {noisy_runs},\n  \
         \"runs\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_sim_throughput.json", &json).expect("write BENCH_sim_throughput.json");
    println!("wrote BENCH_sim_throughput.json");
}
