//! Experiment E52s — reproduces the **Section 5.2** secondary results:
//! the SMART-like single-module instantiation costs 394 slice registers
//! and 599 LUTs; a Spongent-class hash (~22 slices) fits in the base-cost
//! margin; scaling the EA-MPU to a 16-bit datapath saves roughly half the
//! resources; Sancus can trade its 128-bit key cache for on-the-fly
//! derivation.
//!
//! Run: `cargo run -p trustlite-bench --bin smart_instantiation`

use trustlite_hwcost::{smart_like_cost, EaMpuModel, SancusModel, SPONGENT_SLICES};

fn main() {
    println!("Section 5.2: instantiation studies");
    println!("==================================");

    let s = smart_like_cost();
    println!("SMART-like instantiation (extension base + 1 module, no exceptions):");
    println!(
        "  model: {} regs, {} LUTs   (paper: 394 regs, 599 LUTs)",
        s.regs, s.luts
    );
    println!("  vs the original SMART: no extra 4 KiB ROM, software updatable");
    println!();

    let tl = EaMpuModel::trustlite();
    let sc = SancusModel::published();
    let margin = sc
        .base_cost()
        .slices()
        .saturating_sub(tl.base_cost().slices());
    println!("hash-accelerator margin:");
    println!(
        "  TrustLite base ({} slices proxy) vs Sancus base ({}): margin {}",
        tl.base_cost().slices(),
        sc.base_cost().slices(),
        margin
    );
    println!("  a Spongent-class hash is ~{SPONGENT_SLICES} Spartan-6 slices — easily absorbed");
    println!();

    let wide = tl.per_module();
    let narrow = EaMpuModel::narrow16().per_module();
    println!("datapath scaling (per module):");
    println!("  32-bit: {} regs, {} LUTs", wide.regs, wide.luts);
    println!(
        "  16-bit: {} regs, {} LUTs  ({:.0}%/{:.0}% saved; paper: \"roughly a further 50%\")",
        narrow.regs,
        narrow.luts,
        (1.0 - narrow.regs as f64 / wide.regs as f64) * 100.0,
        (1.0 - narrow.luts as f64 / wide.luts as f64) * 100.0
    );
    println!();

    let cached = sc.per_module();
    let otf = sc.with_on_the_fly_keys().per_module();
    println!("Sancus key-cache trade-off (per module):");
    println!("  cached 128-bit key: {} regs", cached.regs);
    println!(
        "  on-the-fly keys:    {} regs  (saves {} registers, at a performance cost)",
        otf.regs,
        cached.regs - otf.regs
    );
}
