//! Experiment T1 — reproduces **Table 1**: FPGA resource utilization of
//! execution-aware memory protection per security module, TrustLite vs
//! Sancus.
//!
//! Run: `cargo run -p trustlite-bench --bin table1`

use trustlite_hwcost::{table1, CostPoint};

fn main() {
    let t = table1();
    println!("Table 1: FPGA resource utilization (model-reproduced)");
    println!("======================================================");
    println!("{}", t.render());

    println!("paper vs model:");
    let rows: [(&str, CostPoint, (u32, u32)); 6] = [
        ("TrustLite base core", t.base_core.0, (5528, 14361)),
        ("TrustLite ext base", t.ext_base.0, (278, 417)),
        ("TrustLite per module", t.per_module.0, (116, 182)),
        ("TrustLite exc base", t.exceptions_base, (34, 22)),
        ("Sancus ext base", t.ext_base.1, (586, 1138)),
        ("Sancus per module", t.per_module.1, (213, 307)),
    ];
    println!(
        "{:<24}{:>12}{:>12}{:>10}",
        "row", "model r/l", "paper r/l", "match"
    );
    for (label, model, paper) in rows {
        let ok = model.regs == paper.0 && model.luts == paper.1;
        println!(
            "{:<24}{:>6}/{:<6}{:>6}/{:<6}{:>8}",
            label,
            model.regs,
            model.luts,
            paper.0,
            paper.1,
            if ok { "yes" } else { "NO" }
        );
    }
    println!();
    println!(
        "exceptions per module (model; not printed in the paper's table): {}/{} regs/LUTs",
        t.exceptions_per_module.regs, t.exceptions_per_module.luts
    );
    println!("(one 32-bit secure stack pointer register per code region, Section 5.1)");
}
