//! Architectural-state digest shared by the determinism regression and
//! the throughput harness.
//!
//! Both need the same notion of "the machine ended in the same place":
//! cycle and instruction counters, the full register file, and the first
//! pages of SRAM (where every macro workload keeps its mutable state).
//! Anything the fast paths could corrupt without tripping a counter
//! comparison — a stale predecoded word, a mis-replayed store — shows up
//! here as a digest mismatch.

use trustlite::platform::Platform;
use trustlite_crypto::sha256;

/// Digest of the architectural state plus the first pages of SRAM.
pub fn state_digest(p: &mut Platform) -> [u8; 32] {
    let mut blob = Vec::new();
    blob.extend_from_slice(&p.machine.cycles.to_le_bytes());
    blob.extend_from_slice(&p.machine.instret.to_le_bytes());
    for g in p.machine.regs.gprs {
        blob.extend_from_slice(&g.to_le_bytes());
    }
    blob.extend_from_slice(&p.machine.regs.sp.to_le_bytes());
    blob.extend_from_slice(&p.machine.regs.ip.to_le_bytes());
    let sram = p
        .machine
        .sys
        .bus
        .read_bytes(trustlite_mem::map::SRAM_BASE, 0x4000)
        .expect("sram readable");
    blob.extend_from_slice(&sram);
    sha256(&blob)
}
