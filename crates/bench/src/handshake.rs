//! The full in-simulator trusted-IPC handshake (Section 4.2.2, Figure 6).
//!
//! Trustlet *alice* establishes a mutually derivable session token with
//! trustlet *bob* in a single round trip, entirely in SP32 code:
//!
//! 1. alice performs a **local attestation** of bob: she looks bob up in
//!    the Trustlet Table, scans the EA-MPU register bank for the rule that
//!    isolates bob's code region, and hashes bob's live code region
//!    through the crypto accelerator, comparing against the Secure
//!    Loader's load-time measurement;
//! 2. alice draws a nonce from the RNG peripheral, saves her state
//!    (publishing her stack pointer in her Trustlet Table slot) and jumps
//!    to bob's `call()` entry with `syn = (SYN, id_A, N_A, reply-to)` in
//!    registers;
//! 3. bob attests alice's code region the same way, draws `N_B`, derives
//!    `token = hash(id_A, id_B, N_A, N_B)` on the accelerator and replies
//!    through alice's `call()` entry with `ack = (ACK, N_B)`;
//! 4. alice derives the same token.
//!
//! The host verifies that both in-simulator tokens equal the host-side
//! [`trustlite::ipc::session_token`] — the protocol model and the
//! simulated implementation cross-validate each other.

use trustlite::layout;
use trustlite::platform::{Platform, PlatformBuilder};
use trustlite::runtime::emit_hash_region;
use trustlite::spec::{PeriphGrant, TrustletOptions, TrustletPlan};
use trustlite::TrustliteError;
use trustlite_isa::{Asm, Reg};
use trustlite_mem::map;
use trustlite_mpu::Perms;
use trustlite_periph::crypto_accel;

/// Message type word for `syn`.
pub const MSG_SYN: u32 = trustlite::ipc::msg_type::SYN;
/// Message type word for `ack`.
pub const MSG_ACK: u32 = trustlite::ipc::msg_type::ACK;

/// Grants needed by a handshake participant.
fn participant_grants() -> Vec<PeriphGrant> {
    vec![
        PeriphGrant {
            base: map::CRYPTO_MMIO_BASE,
            size: map::PERIPH_MMIO_SIZE,
            perms: Perms::RW,
        },
        PeriphGrant {
            base: map::RNG_MMIO_BASE,
            size: map::PERIPH_MMIO_SIZE,
            perms: Perms::R,
        },
    ]
}

/// Emits code verifying that some enabled EA-MPU rule isolates
/// `code_base` as a self-subject rx region (the Figure 6 `verifyMPU`
/// step). Scans all `slot_count` rule slots; falls through on success,
/// jumps to `fail` otherwise. Clobbers `r1..r6`.
fn emit_verify_mpu(a: &mut Asm, code_base: u32, slot_count: u32, fail: &str) {
    let u = a.here();
    let loop_l = format!("__vm_loop_{u}");
    let next_l = format!("__vm_next_{u}");
    let done_l = format!("__vm_done_{u}");
    a.li(Reg::R1, map::MPU_MMIO_BASE);
    a.li(Reg::R2, 0); // slot index
    a.li(Reg::R3, 0); // found flag
    a.label(&loop_l);
    a.li(Reg::R4, slot_count);
    a.bge(Reg::R2, Reg::R4, &done_l);
    // Slot address = base + 12 * i.
    a.shli(Reg::R4, Reg::R2, 3);
    a.add(Reg::R4, Reg::R4, Reg::R1);
    a.shli(Reg::R5, Reg::R2, 2);
    a.add(Reg::R4, Reg::R4, Reg::R5);
    a.lw(Reg::R5, Reg::R4, 0); // START
    a.li(Reg::R6, code_base);
    a.bne(Reg::R5, Reg::R6, &next_l);
    // FLAGS must be: perms rx (0b101), enabled (bit 3), subject = own
    // slot index — i.e. (i << 8) | 0x0d.
    a.lw(Reg::R5, Reg::R4, 8);
    a.shli(Reg::R6, Reg::R2, 8);
    a.ori(Reg::R6, Reg::R6, 0x0d);
    a.bne(Reg::R5, Reg::R6, &next_l);
    a.li(Reg::R3, 1);
    a.label(&next_l);
    a.addi(Reg::R2, Reg::R2, 1);
    a.jmp(&loop_l);
    a.label(&done_l);
    a.li(Reg::R4, 1);
    a.bne(Reg::R3, Reg::R4, fail);
}

/// Emits code hashing `[code_base, code_base + size)` on the accelerator
/// and comparing the first two digest words against the measurement row
/// at `measure_slot`. Jumps to `fail` on mismatch. Clobbers `r0..r3`,
/// `r6`, `r7`.
fn emit_attest_peer(a: &mut Asm, code_base: u32, size: u32, measure_slot: u32, fail: &str) {
    a.li(Reg::R1, code_base);
    a.li(Reg::R2, size);
    emit_hash_region(a); // r0 = digest word 0, r6 = crypto base
    a.li(Reg::R1, measure_slot);
    a.lw(Reg::R2, Reg::R1, 0);
    a.bne(Reg::R0, Reg::R2, fail);
    a.lw(Reg::R3, Reg::R6, (crypto_accel::regs::DIGEST0 + 4) as i16);
    a.lw(Reg::R2, Reg::R1, 4);
    a.bne(Reg::R3, Reg::R2, fail);
}

/// Emits the token derivation `sponge(id_a, id_b, n_a, n_b)` where the
/// four inputs are provided by `feed` (which stores each word to the
/// accelerator DATA register at `[r6 + DATA]`). Leaves digest word 0 in
/// `r0`; `r6` holds the accelerator base. Clobbers `r0`, `r6`, `r7`.
fn emit_token(a: &mut Asm, feed: impl FnOnce(&mut Asm)) {
    let u = a.here();
    let wait_l = format!("__tok_wait_{u}");
    a.li(Reg::R6, map::CRYPTO_MMIO_BASE);
    a.li(Reg::R7, crypto_accel::cmd::INIT_SPONGE);
    a.sw(Reg::R6, crypto_accel::regs::CTRL as i16, Reg::R7);
    feed(a);
    a.li(Reg::R7, crypto_accel::cmd::FINALIZE);
    a.sw(Reg::R6, crypto_accel::regs::CTRL as i16, Reg::R7);
    a.label(&wait_l);
    a.lw(Reg::R7, Reg::R6, crypto_accel::regs::CTRL as i16);
    a.li(Reg::R0, 0);
    a.bne(Reg::R7, Reg::R0, &wait_l);
    a.lw(Reg::R0, Reg::R6, crypto_accel::regs::DIGEST0 as i16);
}

fn feed_const(a: &mut Asm, v: u32) {
    a.li(Reg::R7, v);
    a.sw(Reg::R6, crypto_accel::regs::DATA as i16, Reg::R7);
}

fn feed_reg(a: &mut Asm, r: Reg) {
    a.sw(Reg::R6, crypto_accel::regs::DATA as i16, r);
}

fn feed_mem(a: &mut Asm, addr: u32) {
    a.li(Reg::R7, addr);
    a.lw(Reg::R7, Reg::R7, 0);
    a.sw(Reg::R6, crypto_accel::regs::DATA as i16, Reg::R7);
}

/// The two participants and their platform.
pub struct HandshakePlatform {
    /// The booted platform.
    pub platform: Platform,
    /// Initiator plan.
    pub alice: TrustletPlan,
    /// Responder plan.
    pub bob: TrustletPlan,
}

/// Data-region layout offsets (alice).
pub mod alice_data {
    /// Outcome flag: 0 = running, 1 = success, 0xdead = attestation fail.
    pub const DONE: u32 = 0;
    /// Derived session token (digest word 0).
    pub const TOKEN: u32 = 4;
    /// Stored nonce `N_A`.
    pub const NONCE: u32 = 8;
}

/// Data-region layout offsets (bob).
pub mod bob_data {
    /// Derived session token (digest word 0).
    pub const TOKEN: u32 = 0;
    /// Stored nonce `N_B`.
    pub const NONCE: u32 = 4;
}

/// Builds the two-trustlet handshake platform.
pub fn build_handshake_platform(seed: u64) -> Result<HandshakePlatform, TrustliteError> {
    let mut b = PlatformBuilder::new();
    b.rng_seed(seed);
    b.telemetry(trustlite::ObsLevel::Metrics);
    let alice = b.plan_trustlet("alice", 0x400, 0x100, 0x200);
    let bob = b.plan_trustlet("bob", 0x400, 0x100, 0x200);
    let slot_count = 32;

    // --- alice ---
    let mut t = alice.begin_program();
    {
        let plan = alice.clone();
        let peer = bob.clone();
        t.asm.label("main");
        // Local attestation of bob: Trustlet Table lookup...
        let tt_row = layout::tt_base() + 16 * peer.tt_index;
        t.asm.li(Reg::R1, tt_row);
        t.asm.lw(Reg::R2, Reg::R1, 0);
        t.asm.li(Reg::R3, peer.id);
        t.asm.bne(Reg::R2, Reg::R3, "fail");
        t.asm.lw(Reg::R2, Reg::R1, 4);
        t.asm.li(Reg::R3, peer.code_base);
        t.asm.bne(Reg::R2, Reg::R3, "fail");
        // ...MPU-rule validation...
        emit_verify_mpu(&mut t.asm, peer.code_base, slot_count, "fail");
        // ...and code measurement.
        emit_attest_peer(
            &mut t.asm,
            peer.code_base,
            peer.code_size,
            peer.measure_slot,
            "fail",
        );
        t.asm.label("attest_done");
        // Draw and store N_A.
        t.asm.li(Reg::R1, map::RNG_MMIO_BASE);
        t.asm.lw(Reg::R2, Reg::R1, 0);
        t.asm.li(Reg::R1, plan.data_base + alice_data::NONCE);
        t.asm.sw(Reg::R1, 0, Reg::R2);
        // syn(A, B, N_A) with the reply entry in r3.
        t.asm.li(Reg::R0, MSG_SYN);
        t.asm.li(Reg::R1, plan.id);
        // r2 already holds N_A.
        t.asm.li(Reg::R3, plan.call_entry());
        t.emit_save_and_invoke(&plan, "resumed", peer.call_entry());
        t.asm.label("resumed");
        t.asm.halt(); // not used in this protocol run
        t.asm.label("fail");
        t.asm.li(Reg::R1, plan.data_base + alice_data::DONE);
        t.asm.li(Reg::R0, 0xdead);
        t.asm.sw(Reg::R1, 0, Reg::R0);
        t.asm.halt();
        // call(): receives ack(ACK, N_B).
        t.asm.label("call_entry");
        t.asm.li(Reg::R6, plan.sp_slot);
        t.asm.lw(Reg::Sp, Reg::R6, 0);
        t.asm.li(Reg::R2, MSG_ACK);
        t.asm.bne(Reg::R0, Reg::R2, "fail");
        // token = sponge(id_A, id_B, N_A, N_B); N_B arrived in r1.
        t.asm.mov(Reg::R4, Reg::R1);
        let (ida, idb) = (plan.id, peer.id);
        let nonce_addr = plan.data_base + alice_data::NONCE;
        emit_token(&mut t.asm, move |a| {
            feed_const(a, ida);
            feed_const(a, idb);
            feed_mem(a, nonce_addr);
            feed_reg(a, Reg::R4);
        });
        t.asm.li(Reg::R1, plan.data_base + alice_data::TOKEN);
        t.asm.sw(Reg::R1, 0, Reg::R0);
        t.asm.li(Reg::R0, 1);
        t.asm.li(Reg::R1, plan.data_base + alice_data::DONE);
        t.asm.sw(Reg::R1, 0, Reg::R0);
        t.asm.halt();
    }
    let alice_img = t.finish()?;
    b.add_trustlet(
        &alice,
        alice_img,
        TrustletOptions {
            peripherals: participant_grants(),
            ..Default::default()
        },
    )?;

    // --- bob ---
    let mut t = bob.begin_program();
    {
        let plan = bob.clone();
        let peer = alice.clone();
        t.asm.label("main");
        t.asm.halt(); // bob is purely reactive
        t.asm.label("call_entry");
        t.asm.li(Reg::R6, plan.sp_slot);
        t.asm.lw(Reg::Sp, Reg::R6, 0);
        t.asm.li(Reg::R4, MSG_SYN);
        t.asm.bne(Reg::R0, Reg::R4, "b_fail");
        // Responder-side attestation of the initiator.
        t.asm.push(Reg::R1);
        t.asm.push(Reg::R2);
        t.asm.push(Reg::R3);
        emit_attest_peer(
            &mut t.asm,
            peer.code_base,
            peer.code_size,
            peer.measure_slot,
            "b_fail",
        );
        t.asm.pop(Reg::R3);
        t.asm.pop(Reg::R2);
        t.asm.pop(Reg::R1);
        // Draw and store N_B.
        t.asm.li(Reg::R6, map::RNG_MMIO_BASE);
        t.asm.lw(Reg::R4, Reg::R6, 0);
        t.asm.li(Reg::R6, plan.data_base + bob_data::NONCE);
        t.asm.sw(Reg::R6, 0, Reg::R4);
        // token = sponge(id_A (r1), id_B, N_A (r2), N_B (r4)).
        let idb = plan.id;
        emit_token(&mut t.asm, move |a| {
            feed_reg(a, Reg::R1);
            feed_const(a, idb);
            feed_reg(a, Reg::R2);
            feed_reg(a, Reg::R4);
        });
        t.asm.li(Reg::R5, plan.data_base + bob_data::TOKEN);
        t.asm.sw(Reg::R5, 0, Reg::R0);
        // ack(ACK, N_B) to the reply entry the initiator provided (r3).
        t.asm.li(Reg::R0, MSG_ACK);
        t.asm.mov(Reg::R1, Reg::R4);
        t.asm.jr(Reg::R3);
        t.asm.label("b_fail");
        t.asm.halt();
    }
    let bob_img = t.finish()?;
    b.add_trustlet(
        &bob,
        bob_img,
        TrustletOptions {
            peripherals: participant_grants(),
            ..Default::default()
        },
    )?;

    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    os.asm.label("main");
    os.asm.li(Reg::Sp, stack_top);
    os.asm.halt();
    let os_img = os.finish()?;
    b.set_os(os_img, &[]);
    let platform = b.build()?;
    Ok(HandshakePlatform {
        platform,
        alice,
        bob,
    })
}

/// Measured outcome of one handshake run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeResult {
    /// True if alice completed the protocol (done flag = 1).
    pub success: bool,
    /// Cycles alice spent on local attestation of bob.
    pub attest_cycles: u64,
    /// Total cycles from alice's activation to token agreement.
    pub total_cycles: u64,
    /// Alice's derived token word.
    pub token_a: u32,
    /// Bob's derived token word.
    pub token_b: u32,
    /// Host-computed expected token word (protocol cross-validation).
    pub expected_token: u32,
    /// The nonces drawn in-simulator.
    pub nonces: (u32, u32),
}

/// Runs the handshake to completion and collects the measurements.
pub fn run_handshake(hp: &mut HandshakePlatform) -> Result<HandshakeResult, TrustliteError> {
    let p = &mut hp.platform;
    let attest_done = p.image("alice")?.expect_symbol("attest_done");
    p.start_trustlet("alice")?;
    let c0 = p.machine.cycles;
    let reached = p.machine.run_until(1_000_000, |m| m.regs.ip == attest_done);
    let attest_cycles = p.machine.cycles - c0;
    let done_addr = hp.alice.data_base + alice_data::DONE;
    let ok = reached
        && p.machine.run_until(1_000_000, |m| {
            // Poll the done flag through the hardware path.
            m.halted.is_some()
        });
    let _ = ok;
    let total_cycles = p.machine.cycles - c0;

    let done = p.machine.sys.hw_read32(done_addr).unwrap_or(0);
    let token_a = p
        .machine
        .sys
        .hw_read32(hp.alice.data_base + alice_data::TOKEN)
        .unwrap_or(0);
    let token_b = p
        .machine
        .sys
        .hw_read32(hp.bob.data_base + bob_data::TOKEN)
        .unwrap_or(0);
    let nonce_a = p
        .machine
        .sys
        .hw_read32(hp.alice.data_base + alice_data::NONCE)
        .unwrap_or(0);
    let nonce_b = p
        .machine
        .sys
        .hw_read32(hp.bob.data_base + bob_data::NONCE)
        .unwrap_or(0);
    let expected = trustlite::ipc::session_token(hp.alice.id, hp.bob.id, nonce_a, nonce_b);
    let expected_token = u32::from_le_bytes([expected[0], expected[1], expected[2], expected[3]]);

    Ok(HandshakeResult {
        success: done == 1,
        attest_cycles,
        total_cycles,
        token_a,
        token_b,
        expected_token,
        nonces: (nonce_a, nonce_b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_succeeds_and_tokens_agree() {
        let mut hp = build_handshake_platform(42).expect("builds");
        let r = run_handshake(&mut hp).expect("runs");
        assert!(r.success, "handshake failed: {r:?}");
        assert_eq!(r.token_a, r.token_b, "both sides derive the same token");
        assert_eq!(
            r.token_a, r.expected_token,
            "in-sim token matches the host protocol model"
        );
        assert_ne!(r.nonces.0, r.nonces.1);
        assert!(r.attest_cycles > 0 && r.attest_cycles < r.total_cycles);
    }

    #[test]
    fn different_seeds_give_different_sessions() {
        let mut h1 = build_handshake_platform(1).expect("builds");
        let mut h2 = build_handshake_platform(2).expect("builds");
        let r1 = run_handshake(&mut h1).expect("runs");
        let r2 = run_handshake(&mut h2).expect("runs");
        assert!(r1.success && r2.success);
        assert_ne!(r1.token_a, r2.token_a, "session freshness");
    }

    #[test]
    fn tampered_peer_fails_attestation() {
        let mut hp = build_handshake_platform(7).expect("builds");
        // Flip a word in bob's live code region (host-level tamper).
        let addr = hp.bob.code_base + 0x40;
        let word = hp.platform.machine.sys.hw_read32(addr).unwrap();
        assert!(hp
            .platform
            .machine
            .sys
            .bus
            .host_load(addr, &(word ^ 0xff).to_le_bytes()));
        let r = run_handshake(&mut hp).expect("runs");
        assert!(!r.success, "attestation must fail after tamper");
        let done = hp
            .platform
            .machine
            .sys
            .hw_read32(hp.alice.data_base + alice_data::DONE)
            .unwrap();
        assert_eq!(done, 0xdead, "alice recorded the failure");
    }
}
