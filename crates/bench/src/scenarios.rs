//! In-simulator measurement scenarios.

use trustlite::platform::{Platform, PlatformBuilder};
use trustlite::spec::TrustletOptions;
use trustlite_cpu::vectors;
use trustlite_isa::Reg;

/// Exception-entry cycle measurements (Section 5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExcMeasurement {
    /// Regular engine, OS interrupted.
    pub regular_os: u64,
    /// Secure engine, OS (non-trustlet) interrupted.
    pub secure_os: u64,
    /// Secure engine, trustlet interrupted.
    pub secure_trustlet: u64,
}

/// Builds a platform with `n` trivial trustlets and a halting OS.
/// Metrics telemetry is enabled so the bench bins can emit a
/// `MetricsReport` (including the Secure Loader's boot counters)
/// alongside their timing output.
pub fn boot_platform_with(n: usize, secure_exceptions: bool) -> Platform {
    let mut b = PlatformBuilder::new();
    b.secure_exceptions(secure_exceptions);
    b.telemetry(trustlite::ObsLevel::Metrics);
    // Size the MPU instantiation to the workload (the paper scales its
    // prototypes the same way; timing closure was met up to 32 regions,
    // larger counts are a cost question handled by `trustlite-hwcost`).
    b.mpu_slots(16 + 6 * n);
    let mut plans = Vec::new();
    for i in 0..n {
        let plan = b.plan_trustlet(&format!("t{i}"), 0x100, 0x80, 0x80);
        let mut t = plan.begin_program();
        t.asm.label("main");
        t.asm.halt();
        b.add_trustlet(&plan, t.finish().unwrap(), TrustletOptions::default())
            .unwrap();
        plans.push(plan);
    }
    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    os.asm.label("main");
    os.asm.li(Reg::Sp, stack_top);
    os.asm.halt();
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[]);
    b.build().expect("platform builds")
}

/// Runs one swi-triggered exception and returns the finished platform.
fn exception_platform(secure: bool, from_trustlet: bool) -> Platform {
    let mut b = PlatformBuilder::new();
    b.secure_exceptions(secure);
    b.telemetry(trustlite::ObsLevel::Metrics);
    let plan = b.plan_trustlet("probe", 0x100, 0x80, 0x80);
    let mut t = plan.begin_program();
    t.asm.label("main");
    t.asm.swi(5);
    t.asm.halt();
    b.add_trustlet(&plan, t.finish().unwrap(), TrustletOptions::default())
        .unwrap();
    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    os.asm.label("main");
    os.asm.li(Reg::Sp, stack_top);
    if !from_trustlet {
        os.asm.swi(5);
    }
    os.asm.halt();
    os.asm.label("handler");
    os.asm.halt();
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[(vectors::swi_vector(5), "handler")]);
    let mut p = b.build().expect("platform builds");
    if from_trustlet {
        p.start_trustlet("probe").expect("trustlet exists");
    }
    p.run(10_000);
    p
}

/// Runs one swi-triggered exception and returns the engine's entry cost.
fn one_exception(secure: bool, from_trustlet: bool) -> u64 {
    let p = exception_platform(secure, from_trustlet);
    p.machine
        .exc_log
        .last()
        .expect("exception recorded")
        .entry_cycles
}

/// Runs the secure-engine, trustlet-interrupted scenario with metrics
/// telemetry on and returns the snapshot (for the bench bins' JSON
/// output).
pub fn exception_metrics_report() -> trustlite::MetricsReport {
    let mut p = exception_platform(true, true);
    p.machine.metrics_report()
}

/// Measures the three exception-entry configurations of Section 5.4.
pub fn measure_exception_entry() -> ExcMeasurement {
    ExcMeasurement {
        regular_os: one_exception(false, false),
        secure_os: one_exception(true, false),
        secure_trustlet: one_exception(true, true),
    }
}

/// Untrusted-IPC cycle measurements (Section 4.2.1: an RPC-style jump
/// into a trustlet `call()` entry with arguments in registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UntrustedIpcMeasurement {
    /// Cycles from the caller's jump to the first instruction of the
    /// callee's `call()` handler body.
    pub call_entry_cycles: u64,
    /// Cycles for the full round trip: jump in, enqueue the message,
    /// return to the caller's continuation.
    pub roundtrip_cycles: u64,
}

/// Measures an OS→trustlet `call(type, msg, sender)` round trip.
pub fn measure_untrusted_ipc() -> UntrustedIpcMeasurement {
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("server", 0x300, 0x100, 0x100);
    let queue_base = plan.data_base;
    let mut t = plan.begin_program();
    t.asm.label("main");
    t.asm.halt();
    trustlite_os::trustlet_lib::emit_call_queue_handler(&mut t.asm, &plan, queue_base, 8);
    b.add_trustlet(&plan, t.finish().unwrap(), TrustletOptions::default())
        .unwrap();

    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    {
        let a = &mut os.asm;
        a.label("main");
        a.li(Reg::Sp, stack_top);
        a.li(Reg::R0, trustlite::ipc::msg_type::DATA);
        a.li(Reg::R1, 0x1234); // message word
        a.la(Reg::R2, "continuation"); // sender continuation
        a.li(Reg::R5, plan.call_entry());
        a.label("send");
        a.jr(Reg::R5);
        a.label("continuation");
        a.halt();
    }
    let os_img = os.finish().unwrap();
    let send_ip = os_img.expect_symbol("send");
    let cont_ip = os_img.expect_symbol("continuation");
    b.set_os(os_img, &[]);
    let mut p = b.build().expect("platform builds");

    assert!(
        p.machine.run_until(10_000, |m| m.regs.ip == send_ip),
        "reached send"
    );
    let c0 = p.machine.cycles;
    let call_entry = p.plans["server"].call_entry();
    assert!(
        p.machine.run_until(10_000, |m| m.regs.ip == call_entry),
        "entered callee"
    );
    let c1 = p.machine.cycles;
    assert!(
        p.machine.run_until(10_000, |m| m.regs.ip == cont_ip),
        "returned"
    );
    let c2 = p.machine.cycles;
    // The message actually arrived.
    let tail = p.machine.sys.hw_read32(queue_base + 4).expect("queue tail");
    assert_eq!(tail, 1, "one message enqueued");
    UntrustedIpcMeasurement {
        call_entry_cycles: c1 - c0,
        roundtrip_cycles: c2 - c0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlite_cpu::costs;

    #[test]
    fn exception_measurements_match_paper() {
        let m = measure_exception_entry();
        assert_eq!(m.regular_os, costs::EXC_REGULAR_TOTAL);
        assert_eq!(
            m.secure_os,
            costs::EXC_REGULAR_TOTAL + costs::SEC_MISS_EXTRA
        );
        assert_eq!(
            m.secure_trustlet,
            costs::EXC_REGULAR_TOTAL + costs::SEC_TRUSTLET_EXTRA
        );
    }

    #[test]
    fn untrusted_ipc_is_cheap() {
        let m = measure_untrusted_ipc();
        assert!(
            m.call_entry_cycles <= 4,
            "jump + entry dispatch: {}",
            m.call_entry_cycles
        );
        assert!(
            m.roundtrip_cycles < 120,
            "round trip: {}",
            m.roundtrip_cycles
        );
    }

    #[test]
    fn boot_scales_with_trustlets() {
        let p1 = boot_platform_with(1, true);
        let p4 = boot_platform_with(4, true);
        assert!(p4.report.mpu_writes > p1.report.mpu_writes);
        assert_eq!(p1.report.mpu_writes % 3, 0);
        assert_eq!(p4.report.mpu_writes % 3, 0);
    }
}
