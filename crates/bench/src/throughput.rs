//! Long-running macro workloads for the `sim_throughput` harness.
//!
//! Each builder returns a booted [`Platform`] whose guest program loops
//! indefinitely (no halt within any realistic step budget), so the
//! harness can run it for exactly N steps and convert wall-clock time
//! into simulated MIPS. The three workloads stress the three fast-path
//! caches differently:
//!
//! * `quickstart` — a tight OS load/add/store loop: pure fetch/decode and
//!   EA-MPU check pressure, no interrupts (the batched-tick deadline is
//!   unbounded, so device polling vanishes entirely);
//! * `preemptive_os` — three busy trustlets preempted by a 400-cycle
//!   timer quantum through the secure exception engine: exercises the
//!   batched-tick deadline math and context-switch-heavy subject churn;
//! * `trusted_ipc` — an OS looping RPC-style `call()` jumps into a
//!   trustlet message-queue handler: cross-region control transfer, so
//!   the grant cache's subject window is re-derived constantly.
//!
//! The same builders back the determinism regression in
//! `tests/determinism.rs`: a fast-path run must be bit-identical (cycles,
//! instret, memory digest) to a cache-disabled run.

use trustlite::platform::{Platform, PlatformBuilder};
use trustlite::spec::{PeriphGrant, TrustletOptions};
use trustlite::ObsLevel;
use trustlite_isa::Reg;
use trustlite_mem::map;
use trustlite_mpu::Perms;
use trustlite_os::scheduler::{build_scheduler_os, ScheduledTask, SchedulerConfig, SCHED_IDT};
use trustlite_os::trustlet_lib;

/// The workload names understood by [`build_workload`].
pub const WORKLOADS: [&str; 4] = ["quickstart", "checksum", "preemptive_os", "trusted_ipc"];

/// Builds the named throughput workload at the given capture level.
///
/// Panics on an unknown name (the set is [`WORKLOADS`]).
pub fn build_workload(name: &str, level: ObsLevel) -> Platform {
    match name {
        "quickstart" => quickstart(level),
        "checksum" => checksum(level),
        "preemptive_os" => preemptive_os(level),
        "trusted_ipc" => trusted_ipc(level),
        other => panic!("unknown throughput workload {other:?}"),
    }
}

/// One registered trustlet (so the loader programs a realistic rule set)
/// and an OS that increments a word in its own data region forever.
fn quickstart(level: ObsLevel) -> Platform {
    let mut b = PlatformBuilder::new();
    b.telemetry(level);
    let plan = b.plan_trustlet("vault", 0x100, 0x80, 0x80);
    let mut t = plan.begin_program();
    t.asm.label("main");
    t.asm.halt();
    b.add_trustlet(&plan, t.finish().unwrap(), TrustletOptions::default())
        .unwrap();
    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    {
        let a = &mut os.asm;
        a.label("main");
        a.li(Reg::Sp, stack_top);
        // Counter word well below the (empty) stack, inside the OS
        // data/stack region.
        a.li(Reg::R1, stack_top - 0x100);
        a.label("loop");
        a.lw(Reg::R2, Reg::R1, 0);
        a.addi(Reg::R2, Reg::R2, 1);
        a.sw(Reg::R1, 0, Reg::R2);
        a.jmp("loop");
    }
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[]);
    b.build().expect("quickstart workload builds")
}

/// A packet-checksum kernel: a Fletcher-style sum with an unrolled
/// mixing round over a 64-word buffer, restarted forever. The loop body
/// is 27 straight-line instructions (one load, twenty-four ALU ops, the
/// pointer bump and the backward branch) — the ALU-dominated profile of
/// real embedded MAC/checksum inner loops, and the shape the superblock
/// cache is built for: one resident block retires 26 register-only ops
/// per memory access.
fn checksum(level: ObsLevel) -> Platform {
    let mut b = PlatformBuilder::new();
    b.telemetry(level);
    let plan = b.plan_trustlet("vault", 0x100, 0x80, 0x80);
    let mut t = plan.begin_program();
    t.asm.label("main");
    t.asm.halt();
    b.add_trustlet(&plan, t.finish().unwrap(), TrustletOptions::default())
        .unwrap();
    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    {
        let a = &mut os.asm;
        let buf = stack_top - 0x300;
        let buf_end = buf + 0x100; // 64 words
        a.label("main");
        a.li(Reg::Sp, stack_top);
        a.li(Reg::R1, buf); // cursor
        a.li(Reg::R6, buf_end); // limit
        a.li(Reg::R2, 0); // sum1
        a.li(Reg::R3, 0); // sum2
        a.label("loop");
        a.lw(Reg::R4, Reg::R1, 0);
        a.add(Reg::R2, Reg::R2, Reg::R4);
        a.add(Reg::R3, Reg::R3, Reg::R2);
        for (dst, sh, left) in [
            (Reg::R2, 5, true),
            (Reg::R2, 7, false),
            (Reg::R3, 3, true),
            (Reg::R3, 11, false),
            (Reg::R2, 9, true),
            (Reg::R3, 6, false),
            (Reg::R3, 2, true),
            (Reg::R2, 13, false),
        ] {
            if left {
                a.shli(Reg::R5, dst, sh);
            } else {
                a.shri(Reg::R5, dst, sh);
            }
            a.xor(dst, dst, Reg::R5);
        }
        a.add(Reg::R2, Reg::R2, Reg::R3);
        a.xor(Reg::R3, Reg::R3, Reg::R2);
        a.add(Reg::R3, Reg::R3, Reg::R2);
        a.xor(Reg::R2, Reg::R2, Reg::R3);
        a.add(Reg::R2, Reg::R2, Reg::R3);
        a.add(Reg::R3, Reg::R3, Reg::R2);
        a.addi(Reg::R1, Reg::R1, 4);
        a.bltu(Reg::R1, Reg::R6, "loop");
        // Buffer exhausted: fold the running sums into the buffer head
        // (so the kernel has an architecturally visible result) and
        // restart.
        a.li(Reg::R1, buf);
        a.xor(Reg::R4, Reg::R2, Reg::R3);
        a.sw(Reg::R1, 0, Reg::R4);
        a.jmp("loop");
    }
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[]);
    b.build().expect("checksum workload builds")
}

/// `examples/preemptive_os.rs` with effectively-unbounded counters: three
/// busy trustlets round-robined by the scheduler OS on a 400-cycle timer
/// quantum. The iteration targets are far beyond any harness step budget,
/// so preemption never stops.
fn preemptive_os(level: ObsLevel) -> Platform {
    // Large but positive under the signed `bge` loop bound.
    const ITERS: u32 = 0x3fff_ffff;
    let mut b = PlatformBuilder::new();
    b.telemetry(level);
    let mut plans = Vec::new();
    for name in ["sensor", "filter", "logger"] {
        let plan = b.plan_trustlet(name, 0x200, 0x80, 0x100);
        let mut t = plan.begin_program();
        trustlet_lib::emit_preemptible_counter(&mut t.asm, plan.data_base, ITERS);
        b.add_trustlet(&plan, t.finish().unwrap(), TrustletOptions::default())
            .unwrap();
        plans.push(plan);
    }
    b.grant_os_peripheral(PeriphGrant {
        base: map::TIMER_MMIO_BASE,
        size: map::PERIPH_MMIO_SIZE,
        perms: Perms::RW,
    });
    let mut os = b.begin_os();
    build_scheduler_os(
        &mut os,
        &SchedulerConfig {
            timer_period: 400,
            tasks: plans
                .iter()
                .map(|p| ScheduledTask {
                    name: p.name.clone(),
                    entry: p.continue_entry(),
                })
                .collect(),
        },
    );
    let os_img = os.finish().unwrap();
    b.set_os(os_img, SCHED_IDT);
    b.build().expect("preemptive_os workload builds")
}

/// An OS looping untrusted-IPC `call()` jumps into a trustlet message
/// queue (Section 4.2.1 shape). Once the 8-slot queue fills the handler
/// takes its graceful full-queue return path; the control transfer —
/// the part the caches must handle — repeats forever.
fn trusted_ipc(level: ObsLevel) -> Platform {
    let mut b = PlatformBuilder::new();
    b.telemetry(level);
    let plan = b.plan_trustlet("server", 0x300, 0x100, 0x100);
    let queue_base = plan.data_base;
    let mut t = plan.begin_program();
    t.asm.label("main");
    t.asm.halt();
    trustlite_os::trustlet_lib::emit_call_queue_handler(&mut t.asm, &plan, queue_base, 8);
    b.add_trustlet(&plan, t.finish().unwrap(), TrustletOptions::default())
        .unwrap();

    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    {
        let a = &mut os.asm;
        a.label("main");
        a.li(Reg::Sp, stack_top);
        // Re-arm the argument registers every iteration: the callee is
        // free to clobber them before jumping back to the continuation.
        a.label("again");
        a.li(Reg::R0, trustlite::ipc::msg_type::DATA);
        a.li(Reg::R1, 0x1234);
        a.la(Reg::R2, "continuation");
        a.li(Reg::R5, plan.call_entry());
        a.jr(Reg::R5);
        a.label("continuation");
        a.jmp("again");
    }
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[]);
    b.build().expect("trusted_ipc workload builds")
}
