//! Host-side timing helpers shared by the benchmark harnesses and the
//! fleet engine.

/// Nanoseconds of CPU time consumed by the calling thread.
///
/// Throughput is computed from thread CPU time rather than wall time:
/// benchmarks share their host with arbitrary other load, and
/// `CLOCK_THREAD_CPUTIME_ID` does not advance while the thread is
/// preempted, which removes the dominant noise source. Declared
/// directly against libc (which every Rust binary already links) to
/// avoid a dependency.
#[cfg(target_os = "linux")]
pub fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }
    extern "C" {
        fn clock_gettime(id: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec { sec: 0, nsec: 0 };
    // SAFETY: clock_gettime writes one Timespec through a valid pointer.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
    ts.sec as u64 * 1_000_000_000 + ts.nsec as u64
}

#[cfg(not(target_os = "linux"))]
pub fn thread_cpu_ns() -> u64 {
    0 // Callers fall back to wall time.
}

/// Nanoseconds of CPU time consumed by the whole process, all threads
/// summed.
///
/// The multi-threaded analogue of [`thread_cpu_ns`]: a fleet run on N
/// workers legitimately accumulates up to N× its wall time in process
/// CPU, so noise detection for parallel phases compares wall time
/// against `process_cpu_ns / workers`, not against one thread's clock.
#[cfg(target_os = "linux")]
pub fn process_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }
    extern "C" {
        fn clock_gettime(id: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_PROCESS_CPUTIME_ID: i32 = 2;
    let mut ts = Timespec { sec: 0, nsec: 0 };
    // SAFETY: clock_gettime writes one Timespec through a valid pointer.
    let rc = unsafe { clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &mut ts) };
    assert_eq!(rc, 0, "clock_gettime(CLOCK_PROCESS_CPUTIME_ID) failed");
    ts.sec as u64 * 1_000_000_000 + ts.nsec as u64
}

#[cfg(not(target_os = "linux"))]
pub fn process_cpu_ns() -> u64 {
    0 // Callers fall back to wall time.
}

/// Wall time divided by CPU time for one measured run. A ratio well
/// above 1 means the thread spent real time preempted or blocked — the
/// run was noisy and its wall-clock figures should not be trusted.
pub fn wall_cpu_ratio(wall_ms: f64, cpu_ms: f64) -> f64 {
    if cpu_ms > 0.0 {
        wall_ms / cpu_ms
    } else {
        1.0
    }
}

/// Divergence threshold above which a run is flagged as noisy. The
/// historical `trusted_ipc`/`Metrics` row that motivated the check sat
/// at 228 ms wall vs 152 ms CPU — a ratio of 1.5.
pub const NOISY_WALL_CPU_RATIO: f64 = 1.25;

/// True when wall/CPU divergence says the run was disturbed by host
/// load. Sub-millisecond runs are exempt: their ratio is all jitter.
pub fn is_noisy(wall_ms: f64, cpu_ms: f64) -> bool {
    wall_ms >= 1.0 && wall_cpu_ratio(wall_ms, cpu_ms) > NOISY_WALL_CPU_RATIO
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_time_is_monotonic() {
        let a = thread_cpu_ns();
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let b = thread_cpu_ns();
        assert!(b >= a);
    }

    #[test]
    fn process_cpu_time_is_monotonic_and_covers_threads() {
        let a = process_cpu_ns();
        let handle = std::thread::spawn(|| {
            let mut x = 0u64;
            for i in 0..100_000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x)
        });
        handle.join().unwrap();
        let b = process_cpu_ns();
        assert!(b >= a, "process CPU clock must be monotonic");
    }

    #[test]
    fn noise_flagging() {
        assert!(!is_noisy(100.0, 99.0));
        assert!(is_noisy(228.0, 152.0), "the motivating case must flag");
        assert!(!is_noisy(0.5, 0.1), "sub-ms runs are exempt");
        assert_eq!(wall_cpu_ratio(3.0, 0.0), 1.0, "no CPU clock: neutral");
    }
}
