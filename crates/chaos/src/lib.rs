//! Deterministic fault injection for the TrustLite fleet engine.
//!
//! The paper's threat model (Section 2.2) assumes software adversaries
//! that tamper with memory and protocol messages; MVAM-style memory
//! attacks and interrupted/disrupted attestation are exactly what a
//! trust architecture must survive. This crate derives every injected
//! fault from a *plan* that is a pure function of
//! `(fleet_seed, device_id, round)` — no RNG state, no wall clock — so
//! a chaos run is bit-identical for any worker count and across
//! repeated runs, and a failing fleet run can be replayed from its
//! seeds alone.
//!
//! The crate is deliberately memory-map-agnostic: it emits abstract
//! fault *selectors* ([`RoundFault::BitFlip`] carries a raw `select`
//! word, [`RoundFault::CrashReset`] a raw step offset) and the fleet
//! engine maps them onto concrete trustlet regions and quanta.

/// Per-mille denominator used by all fault-rate knobs.
pub const PER_MILLE: u64 = 1000;

/// What kind of adversary a device is for the whole run (decided once,
/// at fork/diverge time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceRole {
    /// Faithful device: reports only what the Secure Loader measured.
    Honest,
    /// The device's measurement table was tampered with after load —
    /// the verifier must reject on measurement mismatch.
    TamperedMeasurement,
    /// The device was provisioned with a corrupted HMAC key — reports
    /// carry correct measurements but an unverifiable tag.
    WrongKey,
}

/// One transient fault scheduled for a `(device, round)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundFault {
    /// Flip one bit of RAM inside a trustlet code/data region. `select`
    /// is an abstract selector the engine reduces onto its region list;
    /// `bit` is the bit index within the chosen byte.
    BitFlip {
        /// Raw region/offset selector (engine maps it into an address).
        select: u64,
        /// Bit position within the byte (0..8).
        bit: u8,
    },
    /// The device's attestation response is lost in transit.
    DropResponse,
    /// One bit of the response's HMAC tag is flipped in transit. `bit`
    /// indexes the 256 tag bits.
    CorruptResponse {
        /// Tag bit index (0..256).
        bit: u8,
    },
    /// The response arrives `rounds` round boundaries late.
    DelayResponse {
        /// Delivery delay in rounds (>= 1).
        rounds: u64,
    },
    /// The device crashes mid-round and warm-resets: the Secure Loader
    /// runs again on this device only. `at` is an abstract step
    /// selector the engine reduces modulo the quantum.
    CrashReset {
        /// Raw step-offset selector.
        at: u64,
    },
}

/// One fault scheduled inside a device's firmware-update window. The
/// plan emits these for every `(device, round)` cell, but the fleet
/// engine consults them only in rounds where the update campaign
/// actually performs the matching action on that device — faults land in
/// the adversarial window between staging and commit (the MVAM-style
/// "tamper during a trust operation" scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateFault {
    /// Flip one bit of the *staged* image after it is written (staging
    /// lives in untrusted bulk memory). `select` is an abstract byte
    /// selector the engine reduces modulo the staged length.
    StagedBitFlip {
        /// Raw byte selector (engine maps it into the staged image).
        select: u64,
        /// Bit position within the byte (0..8).
        bit: u8,
    },
    /// The device crashes (warm reset) after the staged image is written
    /// but before the commit gate runs — the retained boot log is all
    /// the next boot has to go on.
    CrashBeforeCommit,
    /// The device crashes while the Secure Loader is re-measuring the
    /// staged image, burning one boot attempt.
    CrashDuringRemeasure,
    /// The staged version word is replayed to the last committed version
    /// (a stale-update replay) — anti-rollback must reject it.
    StaleVersionReplay,
}

/// Fault-plan knobs. `ChaosConfig::off()` (the default) disables every
/// injection; the fleet engine's honest path must be byte-identical
/// with chaos compiled in but off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Plan seed, mixed with the fleet seed. Two chaos seeds give two
    /// unrelated fault schedules over the same fleet.
    pub seed: u64,
    /// Probability (per mille) that any `(device, round)` cell carries
    /// a transient [`RoundFault`].
    pub fault_rate_pm: u64,
    /// Probability (per mille) that a device is malicious for the whole
    /// run (tampered measurement or wrong key, split evenly).
    pub malicious_pm: u64,
}

impl ChaosConfig {
    /// No injection at all (the default).
    pub fn off() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            fault_rate_pm: 0,
            malicious_pm: 0,
        }
    }

    /// Enables injection at the default rates (150‰ transient faults,
    /// 150‰ malicious devices) under `seed`.
    pub fn with_seed(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            fault_rate_pm: 150,
            malicious_pm: 150,
        }
    }

    /// True when any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.fault_rate_pm > 0 || self.malicious_pm > 0
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::off()
    }
}

/// A fully deterministic fault plan.
///
/// Every query is a pure function of `(fleet_seed, device, round)` and
/// the config — the plan holds no mutable state, so workers may query
/// it concurrently and in any order without changing the schedule.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    cfg: ChaosConfig,
}

/// Domain-separation salts (arbitrary odd constants; distinct per
/// decision so the role draw never correlates with the fault draws).
const SALT_ROLE: u64 = 0x524f_4c45_0000_0001;
const SALT_FAULT: u64 = 0x4641_554c_0000_0003;
const SALT_KIND: u64 = 0x4b49_4e44_0000_0005;
const SALT_ARG: u64 = 0x4152_4755_0000_0007;
const SALT_UPD_FAULT: u64 = 0x5550_4446_0000_0009;
const SALT_UPD_KIND: u64 = 0x5550_444b_0000_000b;
const SALT_UPD_ARG: u64 = 0x5550_4441_0000_000d;

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes an arbitrary tuple of words into one well-distributed word by
/// folding each through a splitmix64 step.
fn mix(parts: &[u64]) -> u64 {
    let mut acc = 0x243f_6a88_85a3_08d3; // pi fraction; any fixed IV works
    for &p in parts {
        acc = splitmix(acc ^ p);
    }
    acc
}

impl FaultPlan {
    /// Builds the plan for a config (cheap: the plan is just the config).
    pub fn new(cfg: ChaosConfig) -> FaultPlan {
        FaultPlan { cfg }
    }

    /// The config this plan was built from.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// True when any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// The device's run-long role. Malicious devices split evenly
    /// between tampered measurements and wrong keys.
    pub fn role(&self, fleet_seed: u64, device: u32) -> DeviceRole {
        if self.cfg.malicious_pm == 0 {
            return DeviceRole::Honest;
        }
        let draw = mix(&[SALT_ROLE, self.cfg.seed, fleet_seed, u64::from(device)]);
        if draw % PER_MILLE >= self.cfg.malicious_pm {
            return DeviceRole::Honest;
        }
        if (draw >> 32) & 1 == 0 {
            DeviceRole::TamperedMeasurement
        } else {
            DeviceRole::WrongKey
        }
    }

    /// The transient fault (if any) scheduled for `(device, round)`.
    pub fn round_fault(&self, fleet_seed: u64, device: u32, round: u64) -> Option<RoundFault> {
        if self.cfg.fault_rate_pm == 0 {
            return None;
        }
        let cell = [
            SALT_FAULT,
            self.cfg.seed,
            fleet_seed,
            u64::from(device),
            round,
        ];
        if mix(&cell) % PER_MILLE >= self.cfg.fault_rate_pm {
            return None;
        }
        let kind = mix(&[
            SALT_KIND,
            self.cfg.seed,
            fleet_seed,
            u64::from(device),
            round,
        ]);
        let arg = mix(&[
            SALT_ARG,
            self.cfg.seed,
            fleet_seed,
            u64::from(device),
            round,
        ]);
        Some(match kind % 5 {
            0 => RoundFault::BitFlip {
                select: arg,
                bit: (arg >> 56) as u8 & 7,
            },
            1 => RoundFault::DropResponse,
            2 => RoundFault::CorruptResponse {
                bit: (arg & 0xff) as u8,
            },
            3 => RoundFault::DelayResponse {
                rounds: 1 + arg % 2,
            },
            _ => RoundFault::CrashReset { at: arg },
        })
    }

    /// The update-window fault (if any) scheduled for `(device, round)`.
    /// Gated by the same `fault_rate_pm` knob as [`FaultPlan::round_fault`]
    /// but drawn under independent salts, so the update schedule never
    /// correlates with the transient-fault schedule. Only meaningful in
    /// rounds where the campaign acts on the device; the engine ignores
    /// the rest.
    pub fn update_fault(&self, fleet_seed: u64, device: u32, round: u64) -> Option<UpdateFault> {
        if self.cfg.fault_rate_pm == 0 {
            return None;
        }
        let cell = [
            SALT_UPD_FAULT,
            self.cfg.seed,
            fleet_seed,
            u64::from(device),
            round,
        ];
        if mix(&cell) % PER_MILLE >= self.cfg.fault_rate_pm {
            return None;
        }
        let kind = mix(&[
            SALT_UPD_KIND,
            self.cfg.seed,
            fleet_seed,
            u64::from(device),
            round,
        ]);
        let arg = mix(&[
            SALT_UPD_ARG,
            self.cfg.seed,
            fleet_seed,
            u64::from(device),
            round,
        ]);
        Some(match kind % 4 {
            0 => UpdateFault::StagedBitFlip {
                select: arg,
                bit: (arg >> 56) as u8 & 7,
            },
            1 => UpdateFault::CrashBeforeCommit,
            2 => UpdateFault::CrashDuringRemeasure,
            _ => UpdateFault::StaleVersionReplay,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_is_inert() {
        let plan = FaultPlan::new(ChaosConfig::off());
        assert!(!plan.enabled());
        for device in 0..64 {
            assert_eq!(plan.role(7, device), DeviceRole::Honest);
            for round in 0..16 {
                assert_eq!(plan.round_fault(7, device, round), None);
                assert_eq!(plan.update_fault(7, device, round), None);
            }
        }
    }

    #[test]
    fn plan_is_a_pure_function_of_its_inputs() {
        let a = FaultPlan::new(ChaosConfig::with_seed(42));
        let b = FaultPlan::new(ChaosConfig::with_seed(42));
        for device in 0..32 {
            assert_eq!(a.role(9, device), b.role(9, device));
            for round in 0..8 {
                assert_eq!(
                    a.round_fault(9, device, round),
                    b.round_fault(9, device, round)
                );
                assert_eq!(
                    a.update_fault(9, device, round),
                    b.update_fault(9, device, round)
                );
            }
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_schedules() {
        let a = FaultPlan::new(ChaosConfig {
            seed: 1,
            fault_rate_pm: 500,
            malicious_pm: 500,
        });
        let b = FaultPlan::new(ChaosConfig {
            seed: 2,
            fault_rate_pm: 500,
            malicious_pm: 500,
        });
        let differs = (0..64).any(|d| {
            a.role(3, d) != b.role(3, d)
                || (0..8).any(|r| a.round_fault(3, d, r) != b.round_fault(3, d, r))
        });
        assert!(differs, "two chaos seeds must not share a schedule");
    }

    #[test]
    fn fleet_seed_is_part_of_the_domain() {
        let plan = FaultPlan::new(ChaosConfig {
            seed: 5,
            fault_rate_pm: 500,
            malicious_pm: 500,
        });
        let differs =
            (0..64).any(|d| (0..8).any(|r| plan.round_fault(1, d, r) != plan.round_fault(2, d, r)));
        assert!(differs, "the fleet seed must reshuffle the schedule");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan::new(ChaosConfig {
            seed: 11,
            fault_rate_pm: 250,
            malicious_pm: 250,
        });
        let cells = 4000u64;
        let mut faults = 0u64;
        for d in 0..200u32 {
            for r in 0..20u64 {
                if plan.round_fault(77, d, r).is_some() {
                    faults += 1;
                }
            }
        }
        let rate = faults * PER_MILLE / cells;
        assert!(
            (150..350).contains(&rate),
            "observed fault rate {rate}‰, expected ~250‰"
        );
        let malicious = (0..1000u32)
            .filter(|&d| plan.role(77, d) != DeviceRole::Honest)
            .count();
        assert!(
            (150..350).contains(&malicious),
            "observed {malicious}‰ malicious, expected ~250‰"
        );
    }

    #[test]
    fn every_fault_kind_is_reachable() {
        let plan = FaultPlan::new(ChaosConfig {
            seed: 3,
            fault_rate_pm: 1000,
            malicious_pm: 0,
        });
        let mut kinds = [false; 5];
        for d in 0..32u32 {
            for r in 0..32u64 {
                match plan.round_fault(1, d, r) {
                    Some(RoundFault::BitFlip { bit, .. }) => {
                        assert!(bit < 8);
                        kinds[0] = true;
                    }
                    Some(RoundFault::DropResponse) => kinds[1] = true,
                    Some(RoundFault::CorruptResponse { .. }) => kinds[2] = true,
                    Some(RoundFault::DelayResponse { rounds }) => {
                        assert!(rounds >= 1);
                        kinds[3] = true;
                    }
                    Some(RoundFault::CrashReset { .. }) => kinds[4] = true,
                    None => {}
                }
            }
        }
        assert_eq!(kinds, [true; 5], "all five fault kinds must occur");
    }

    #[test]
    fn every_update_fault_kind_is_reachable() {
        let plan = FaultPlan::new(ChaosConfig {
            seed: 3,
            fault_rate_pm: 1000,
            malicious_pm: 0,
        });
        let mut kinds = [false; 4];
        for d in 0..32u32 {
            for r in 0..32u64 {
                match plan.update_fault(1, d, r) {
                    Some(UpdateFault::StagedBitFlip { bit, .. }) => {
                        assert!(bit < 8);
                        kinds[0] = true;
                    }
                    Some(UpdateFault::CrashBeforeCommit) => kinds[1] = true,
                    Some(UpdateFault::CrashDuringRemeasure) => kinds[2] = true,
                    Some(UpdateFault::StaleVersionReplay) => kinds[3] = true,
                    None => {}
                }
            }
        }
        assert_eq!(kinds, [true; 4], "all four update-fault kinds must occur");
    }

    #[test]
    fn update_schedule_is_independent_of_the_transient_schedule() {
        let plan = FaultPlan::new(ChaosConfig {
            seed: 5,
            fault_rate_pm: 500,
            malicious_pm: 0,
        });
        // At 500‰ each, a correlated pair of draws would agree on
        // presence everywhere; independent ones must disagree somewhere.
        let differs = (0..64).any(|d| {
            (0..8).any(|r| {
                plan.round_fault(1, d, r).is_some() != plan.update_fault(1, d, r).is_some()
            })
        });
        assert!(differs, "update faults must be drawn under their own salt");
    }

    #[test]
    fn both_malicious_roles_are_reachable() {
        let plan = FaultPlan::new(ChaosConfig {
            seed: 3,
            fault_rate_pm: 0,
            malicious_pm: 1000,
        });
        let roles: Vec<DeviceRole> = (0..32).map(|d| plan.role(1, d)).collect();
        assert!(roles.contains(&DeviceRole::TamperedMeasurement));
        assert!(roles.contains(&DeviceRole::WrongKey));
        assert!(!roles.contains(&DeviceRole::Honest), "1000‰ is everyone");
    }
}
