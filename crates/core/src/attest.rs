//! Local and remote attestation (Sections 3.6, 4.2.2, 6).
//!
//! *Local attestation*: before trusting a peer, a trustlet inspects the
//! platform state — the Trustlet Table entry, the EA-MPU rules protecting
//! the peer, and (optionally) a hash of the peer's code region, either
//! computed directly or taken from the Secure Loader's load-time
//! measurement. All of these reads are tamper-proof by construction:
//! physical addressing plus persistent MPU rules mean nothing can remap
//! or intercept the inspection (Section 4.2.2).
//!
//! *Remote attestation*: the Secure Loader acts as a root of trust for
//! measurement; an attestation trustlet with exclusive access to the
//! platform key answers challenges with
//! `HMAC(key, nonce || measurements)`.

use core::fmt;

use trustlite_crypto::{hmac_sha256, sponge_hash, Hmac};
use trustlite_mpu::{AccessKind, Subject};
use trustlite_periph::KeyStore;

use crate::error::TrustliteError;
use crate::platform::Platform;

/// Computes the reference measurement of a code image (what the Secure
/// Loader stores in the measurement table).
pub fn measure_code(code: &[u8]) -> [u8; 32] {
    sponge_hash(code)
}

/// Measurement of a whole protection region: the image zero-padded to the
/// region size. The Secure Loader measures regions (not raw images) so
/// that any verifier — including another trustlet hashing the live region
/// — reproduces the digest without knowing the image length.
pub fn measure_region(code: &[u8], region_size: u32) -> [u8; 32] {
    let mut padded = code.to_vec();
    padded.resize(region_size as usize, 0);
    sponge_hash(&padded)
}

/// The result of a local attestation of one trustlet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAttestation {
    /// The Trustlet Table row exists and matches the plan.
    pub table_ok: bool,
    /// MPU rules isolate the trustlet (own rx code, private rw data, no
    /// foreign write path to either).
    pub isolation_ok: bool,
    /// The code in memory hashes to the loader's recorded measurement.
    pub measurement_ok: bool,
}

impl LocalAttestation {
    /// True when every check passed.
    pub fn trusted(&self) -> bool {
        self.table_ok && self.isolation_ok && self.measurement_ok
    }
}

impl fmt::Display for LocalAttestation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "table:{} isolation:{} measurement:{}",
            self.table_ok, self.isolation_ok, self.measurement_ok
        )
    }
}

/// Performs a local attestation of trustlet `name` — the host-side model
/// of the inspection sequence in Figure 6 (`findTask`, `verifyMPU`,
/// `attest`).
pub fn local_attest(
    platform: &mut Platform,
    name: &str,
) -> Result<LocalAttestation, TrustliteError> {
    let plan = platform.plan(name)?.clone();

    // (1) Trustlet Table lookup by identifier.
    let row = trustlite_cpu::ttable::read_row(
        &mut platform.machine.sys,
        platform.machine.hw.tt_base,
        plan.tt_index,
    )
    .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
    let table_ok =
        row.id == plan.id && row.code_start == plan.code_base && row.code_end == plan.code_end();

    // (2) MPU-rule validation: reads of the MPU register window are secure
    // from manipulation, so the checks below reflect ground truth.
    let mpu = &platform.machine.sys.mpu;
    let foreign_ip = 0xdead_0000; // an address provably outside any region
    let code_mid = plan.code_base + plan.entry_len;
    let data_mid = plan.data_base;
    let own_exec = mpu.allows(code_mid, code_mid + 4, AccessKind::Execute);
    let own_data = mpu.allows(code_mid, data_mid, AccessKind::Read)
        && mpu.allows(code_mid, data_mid, AccessKind::Write);
    let foreign_cant_write_code = !mpu.allows(foreign_ip, code_mid, AccessKind::Write);
    let foreign_cant_touch_data = !mpu.allows(foreign_ip, data_mid, AccessKind::Read)
        && !mpu.allows(foreign_ip, data_mid, AccessKind::Write);
    let foreign_cant_exec_body = !mpu.allows(foreign_ip, code_mid, AccessKind::Execute);
    let isolation_ok = own_exec
        && own_data
        && foreign_cant_write_code
        && foreign_cant_touch_data
        && foreign_cant_exec_body;

    // (3) Code-hash check against the loader's measurement: hash the
    // live region and compare with the recorded digest.
    let mut live_code = Vec::with_capacity(plan.code_size as usize);
    for i in 0..plan.code_size {
        let b = platform
            .machine
            .sys
            .bus
            .read8(plan.code_base + i)
            .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
        live_code.push(b);
    }
    let recorded = platform.measurement(name)?;
    let measurement_ok = measure_code(&live_code) == recorded;

    Ok(LocalAttestation {
        table_ok,
        isolation_ok,
        measurement_ok,
    })
}

/// Checks whether *any* EA-MPU rule grants a foreign subject write access
/// into `[start, end)` other than the listed allowed subject slots. Used
/// by tests to reason about policy strength.
pub fn foreign_write_paths(
    platform: &Platform,
    start: u32,
    end: u32,
    allowed_subject_slots: &[usize],
) -> Vec<usize> {
    platform
        .machine
        .sys
        .mpu
        .slots()
        .iter()
        .enumerate()
        .filter(|(i, s)| {
            s.enabled
                && s.perms.allows(AccessKind::Write)
                && s.start < end
                && start < s.end
                && match s.subject {
                    Subject::Any => true,
                    Subject::Region(r) => !allowed_subject_slots.contains(&(r as usize)),
                }
                && !allowed_subject_slots.contains(i)
        })
        .map(|(i, _)| i)
        .collect()
}

// --- Remote attestation ---

/// A remote verifier's challenge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Challenge {
    /// Fresh verifier nonce.
    pub nonce: [u8; 16],
}

/// The device's attestation response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Measurements included in the report (one per trustlet, in table
    /// order).
    pub measurements: Vec<[u8; 32]>,
    /// `HMAC(platform key, nonce || measurements)`.
    pub tag: [u8; 32],
}

/// Device side: produces an attestation report over the measurement
/// table. This is the host-side model of the attestation trustlet (the
/// in-simulator version lives in the `remote_attestation` example).
pub fn respond(platform: &mut Platform, challenge: &Challenge) -> Result<Response, TrustliteError> {
    let names: Vec<String> = platform.plans.keys().cloned().collect();
    let mut ordered: Vec<(u32, String)> = names
        .iter()
        .map(|n| (platform.plans[n].tt_index, n.clone()))
        .collect();
    ordered.sort();
    let mut measurements = Vec::new();
    for (_, name) in &ordered {
        measurements.push(platform.measurement(name)?);
    }
    let key = platform
        .machine
        .sys
        .bus
        .device_mut::<KeyStore>("keystore")
        .and_then(|ks| ks.key(0))
        .ok_or_else(|| TrustliteError::BadFirmware("no platform key".to_string()))?;
    let mut mac = Hmac::new(&key);
    mac.update(&challenge.nonce);
    for m in &measurements {
        mac.update(m);
    }
    Ok(Response {
        measurements,
        tag: mac.finish(),
    })
}

/// Why the verifier rejected an attestation response. The variants map
/// one-to-one onto the fleet's `attest.reject.*` reason counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The reported measurements differ from the enrolment reference —
    /// loaded code is not what the verifier expects.
    BadMeasurement,
    /// Measurements match but the HMAC tag does not verify: wrong or
    /// corrupted key, tampered report, or a transit-corrupted tag.
    BadTag,
}

impl RejectReason {
    /// The `attest.reject.*` counter this reason increments.
    pub fn counter_name(&self) -> &'static str {
        match self {
            RejectReason::BadMeasurement => "attest.reject.bad_measurement",
            RejectReason::BadTag => "attest.reject.bad_tag",
        }
    }
}

/// Verifier side: checks a response against the expected measurements,
/// reporting *why* a rejection happened. Measurement comparison comes
/// first (it is public data); the tag check is constant-time.
pub fn verify_detailed(
    key: &[u8; 32],
    challenge: &Challenge,
    response: &Response,
    expected: &[[u8; 32]],
) -> Result<(), RejectReason> {
    if response.measurements != expected {
        return Err(RejectReason::BadMeasurement);
    }
    let mut msg = Vec::new();
    msg.extend_from_slice(&challenge.nonce);
    for m in &response.measurements {
        msg.extend_from_slice(m);
    }
    if trustlite_crypto::ct_eq(&hmac_sha256(key, &msg), &response.tag) {
        Ok(())
    } else {
        Err(RejectReason::BadTag)
    }
}

/// Verifier side: checks a response against the expected measurements.
pub fn verify(
    key: &[u8; 32],
    challenge: &Challenge,
    response: &Response,
    expected: &[[u8; 32]],
) -> bool {
    verify_detailed(key, challenge, response, expected).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_is_deterministic_and_content_sensitive() {
        assert_eq!(measure_code(b"abc"), measure_code(b"abc"));
        assert_ne!(measure_code(b"abc"), measure_code(b"abd"));
    }

    #[test]
    fn verify_rejects_wrong_measurements_and_tags() {
        let key = [7u8; 32];
        let challenge = Challenge { nonce: [1; 16] };
        let m = [measure_code(b"tl-a"), measure_code(b"tl-b")];
        let mut msg = Vec::new();
        msg.extend_from_slice(&challenge.nonce);
        for x in &m {
            msg.extend_from_slice(x);
        }
        let response = Response {
            measurements: m.to_vec(),
            tag: hmac_sha256(&key, &msg),
        };
        assert!(verify(&key, &challenge, &response, &m));
        // Wrong expectation.
        let other = [measure_code(b"evil"), m[1]];
        assert!(!verify(&key, &challenge, &response, &other));
        // Tampered tag.
        let mut bad = response.clone();
        bad.tag[0] ^= 1;
        assert!(!verify(&key, &challenge, &bad, &m));
        // Wrong key.
        assert!(!verify(&[8u8; 32], &challenge, &response, &m));
    }

    #[test]
    fn verify_detailed_names_the_reject_reason() {
        let key = [7u8; 32];
        let challenge = Challenge { nonce: [1; 16] };
        let m = [measure_code(b"tl-a")];
        let mut msg = Vec::new();
        msg.extend_from_slice(&challenge.nonce);
        msg.extend_from_slice(&m[0]);
        let response = Response {
            measurements: m.to_vec(),
            tag: hmac_sha256(&key, &msg),
        };
        assert_eq!(verify_detailed(&key, &challenge, &response, &m), Ok(()));
        // A device reporting unexpected code fails on the measurement.
        let other = [measure_code(b"evil")];
        assert_eq!(
            verify_detailed(&key, &challenge, &response, &other),
            Err(RejectReason::BadMeasurement)
        );
        // A wrong key fails on the tag, not the measurement.
        assert_eq!(
            verify_detailed(&[8u8; 32], &challenge, &response, &m),
            Err(RejectReason::BadTag)
        );
        assert_eq!(
            RejectReason::BadMeasurement.counter_name(),
            "attest.reject.bad_measurement"
        );
        assert_eq!(RejectReason::BadTag.counter_name(), "attest.reject.bad_tag");
    }

    #[test]
    fn response_binds_nonce() {
        let key = [7u8; 32];
        let m = [measure_code(b"x")];
        let make = |nonce: [u8; 16]| {
            let mut msg = Vec::new();
            msg.extend_from_slice(&nonce);
            msg.extend_from_slice(&m[0]);
            Response {
                measurements: m.to_vec(),
                tag: hmac_sha256(&key, &msg),
            }
        };
        let r1 = make([1; 16]);
        assert!(
            !verify(&key, &Challenge { nonce: [2; 16] }, &r1, &m),
            "replay rejected"
        );
    }
}
