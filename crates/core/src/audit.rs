//! Static policy audit of a booted platform.
//!
//! Because EA-MPU rules are purely additive grants, rule-level analysis
//! is sound and complete: an access path exists if and only if some
//! enabled rule grants it. The auditor checks the loaded rule set against
//! the intended isolation policy — exactly the inspection a careful
//! trustlet (or platform integrator) performs in Section 4.2.2, made
//! exhaustive. Downstream users run it after boot or after any policy
//! update; the test suite runs it on every scenario platform.

use core::fmt;

use trustlite_mem::map;
use trustlite_mpu::{AccessKind, RuleSlot, Subject};

use crate::layout;
use crate::platform::Platform;
use crate::spec::TrustletSpec;

/// A policy violation discovered by the audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// A rule grants write access to the MPU's own register window: the
    /// protection could be reconfigured at runtime.
    MpuWindowWritable { slot: usize },
    /// A rule grants write access to the loader's system tables (IDT,
    /// OS stack cell, Trustlet Table, measurements).
    SystemTablesWritable { slot: usize },
    /// A foreign subject can write a trustlet's code region.
    ForeignCodeWrite { trustlet: String, slot: usize },
    /// A foreign subject can read or write a trustlet's data/stack.
    ForeignDataAccess {
        trustlet: String,
        slot: usize,
        kind: AccessKind,
    },
    /// A foreign subject can execute the trustlet's code *body* (beyond
    /// the entry vector).
    ForeignBodyExecute { trustlet: String, slot: usize },
    /// The trustlet lacks an executable entry vector (it could never be
    /// invoked).
    EntryNotExecutable { trustlet: String },
    /// The trustlet cannot execute or access its own regions (dead
    /// configuration).
    OwnerAccessMissing {
        trustlet: String,
        what: &'static str,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::MpuWindowWritable { slot } => {
                write!(f, "rule {slot} leaves the MPU register window writable")
            }
            Finding::SystemTablesWritable { slot } => {
                write!(f, "rule {slot} leaves the system tables writable")
            }
            Finding::ForeignCodeWrite { trustlet, slot } => {
                write!(f, "rule {slot} lets foreign code write `{trustlet}`'s code")
            }
            Finding::ForeignDataAccess {
                trustlet,
                slot,
                kind,
            } => {
                write!(
                    f,
                    "rule {slot} lets foreign code {kind} `{trustlet}`'s data"
                )
            }
            Finding::ForeignBodyExecute { trustlet, slot } => {
                write!(
                    f,
                    "rule {slot} lets foreign code execute `{trustlet}`'s body"
                )
            }
            Finding::EntryNotExecutable { trustlet } => {
                write!(f, "`{trustlet}` has no externally executable entry vector")
            }
            Finding::OwnerAccessMissing { trustlet, what } => {
                write!(f, "`{trustlet}` cannot access its own {what}")
            }
        }
    }
}

/// The audit result.
#[derive(Debug, Clone, Default)]
pub struct PolicyAudit {
    /// All discovered violations.
    pub findings: Vec<Finding>,
}

impl PolicyAudit {
    /// True when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for PolicyAudit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return write!(f, "policy audit: clean");
        }
        writeln!(f, "policy audit: {} finding(s)", self.findings.len())?;
        for x in &self.findings {
            writeln!(f, "  - {x}")?;
        }
        Ok(())
    }
}

fn overlaps(rule: &RuleSlot, start: u32, end: u32) -> bool {
    rule.enabled && rule.start < end && start < rule.end
}

/// True if the rule's subject could be code outside `allowed_slots` (i.e.
/// a *foreign* subject for the region under analysis).
fn foreign_subject(rule: &RuleSlot, allowed_slots: &[usize], slots: &[RuleSlot]) -> bool {
    match rule.subject {
        Subject::Any => true,
        Subject::Region(r) => {
            let r = r as usize;
            // A subject region is foreign unless it is one of the allowed
            // slots or covers the same range as one of them.
            !allowed_slots.iter().any(|&a| {
                a == r
                    || slots
                        .get(r)
                        .zip(slots.get(a))
                        .map(|(x, y)| x.start == y.start && x.end == y.end)
                        .unwrap_or(false)
            })
        }
    }
}

/// Audits the platform's loaded policy against its trustlet specs.
pub fn audit(platform: &Platform) -> PolicyAudit {
    let mut findings = Vec::new();
    let slots = platform.machine.sys.mpu.slots();
    let specs: Vec<&TrustletSpec> = platform.specs().iter().collect();

    // 1. The MPU window must never be writable.
    for (i, rule) in slots.iter().enumerate() {
        if overlaps(
            rule,
            map::MPU_MMIO_BASE,
            map::MPU_MMIO_BASE + map::MPU_MMIO_SIZE,
        ) && rule.perms.allows(AccessKind::Write)
        {
            findings.push(Finding::MpuWindowWritable { slot: i });
        }
    }
    // 2. The system tables must never be writable — except each
    //    trustlet's own 4-byte saved-SP slot (the save-state() path).
    let tables = (map::SRAM_BASE, map::SRAM_BASE + layout::SYS_TABLES_SIZE);
    for (i, rule) in slots.iter().enumerate() {
        if overlaps(rule, tables.0, tables.1) && rule.perms.allows(AccessKind::Write) {
            let is_own_sp_slot = specs.iter().any(|s| {
                rule.start == s.plan.sp_slot
                    && rule.end == s.plan.sp_slot + 4
                    && !foreign_subject(rule, &[platform.report.rule_map[&s.plan.name][0]], slots)
            });
            if !is_own_sp_slot {
                findings.push(Finding::SystemTablesWritable { slot: i });
            }
        }
    }
    // 3. Per-trustlet region checks.
    for spec in &specs {
        let plan = &spec.plan;
        let own = &platform.report.rule_map[&plan.name][..];
        // Allowed writers of the code region: the trustlet itself plus a
        // declared updater.
        let mut code_writers: Vec<usize> = vec![own[0]];
        if let Some(updater) = &spec.options.code_writable_by {
            if let Some(r) = platform.report.rule_map.get(updater) {
                code_writers.push(r[0]);
            }
        }
        for (i, rule) in slots.iter().enumerate() {
            // Code writes.
            if overlaps(rule, plan.code_base, plan.code_end())
                && rule.perms.allows(AccessKind::Write)
                && foreign_subject(rule, &code_writers, slots)
            {
                findings.push(Finding::ForeignCodeWrite {
                    trustlet: plan.name.clone(),
                    slot: i,
                });
            }
            // Body execution by foreign subjects (entry vector excluded).
            if overlaps(rule, plan.code_base + plan.entry_len, plan.code_end())
                && rule.perms.allows(AccessKind::Execute)
                && foreign_subject(rule, &[own[0]], slots)
            {
                findings.push(Finding::ForeignBodyExecute {
                    trustlet: plan.name.clone(),
                    slot: i,
                });
            }
            // Private data/stack access. Shared regions are separate
            // allocations, so any overlap here must be owner-only.
            for kind in [AccessKind::Read, AccessKind::Write] {
                if overlaps(rule, plan.data_base, plan.stack_top())
                    && rule.perms.allows(kind)
                    && foreign_subject(rule, &[own[0]], slots)
                {
                    findings.push(Finding::ForeignDataAccess {
                        trustlet: plan.name.clone(),
                        slot: i,
                        kind,
                    });
                }
            }
        }
        // Liveness: entry executable by anyone; owner can run its body
        // and reach its data.
        let mpu = &platform.machine.sys.mpu;
        if !mpu.allows(0xdead_0000, plan.code_base, AccessKind::Execute) {
            findings.push(Finding::EntryNotExecutable {
                trustlet: plan.name.clone(),
            });
        }
        let own_ip = plan.code_base + plan.entry_len + 4;
        if !mpu.allows(own_ip, own_ip, AccessKind::Execute) {
            findings.push(Finding::OwnerAccessMissing {
                trustlet: plan.name.clone(),
                what: "code",
            });
        }
        if !mpu.allows(own_ip, plan.data_base, AccessKind::Write) {
            findings.push(Finding::OwnerAccessMissing {
                trustlet: plan.name.clone(),
                what: "data",
            });
        }
    }
    PolicyAudit { findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformBuilder;
    use crate::spec::TrustletOptions;
    use trustlite_isa::Reg;
    use trustlite_mpu::Perms;

    fn boot(n: usize) -> Platform {
        let mut b = PlatformBuilder::new();
        for i in 0..n {
            let plan = b.plan_trustlet(&format!("t{i}"), 0x200, 0x80, 0x80);
            let mut t = plan.begin_program();
            t.asm.label("main");
            t.asm.li(Reg::R0, i as u32);
            t.asm.halt();
            b.add_trustlet(&plan, t.finish().unwrap(), TrustletOptions::default())
                .unwrap();
        }
        let mut os = b.begin_os();
        os.asm.label("main");
        os.asm.halt();
        let os_img = os.finish().unwrap();
        b.set_os(os_img, &[]);
        b.build().unwrap()
    }

    #[test]
    fn default_loader_policy_is_clean() {
        for n in [1usize, 2, 4] {
            let p = boot(n);
            let a = audit(&p);
            assert!(a.is_clean(), "n={n}: {a}");
        }
    }

    #[test]
    fn field_update_policy_is_clean_too() {
        let mut b = PlatformBuilder::new();
        let target = b.plan_trustlet("svc", 0x200, 0x80, 0x80);
        let updater = b.plan_trustlet("upd", 0x200, 0x80, 0x80);
        for (plan, opts) in [
            (
                &target,
                TrustletOptions {
                    code_writable_by: Some("upd".into()),
                    ..Default::default()
                },
            ),
            (&updater, TrustletOptions::default()),
        ] {
            let mut t = plan.begin_program();
            t.asm.label("main");
            t.asm.halt();
            b.add_trustlet(plan, t.finish().unwrap(), opts).unwrap();
        }
        let mut os = b.begin_os();
        os.asm.label("main");
        os.asm.halt();
        let os_img = os.finish().unwrap();
        b.set_os(os_img, &[]);
        let p = b.build().unwrap();
        let a = audit(&p);
        assert!(a.is_clean(), "{a}");
    }

    #[test]
    fn injected_backdoor_rules_are_flagged() {
        let mut p = boot(1);
        let plan = p.plan("t0").unwrap().clone();
        let spare = p.machine.sys.mpu.slot_count() - 1;
        // Backdoor 1: world-writable trustlet data.
        p.machine
            .sys
            .mpu
            .set_rule(
                spare,
                RuleSlot {
                    start: plan.data_base,
                    end: plan.stack_top(),
                    perms: Perms::RW,
                    subject: Subject::Any,
                    enabled: true,
                    locked: false,
                },
            )
            .unwrap();
        let a = audit(&p);
        assert!(a
            .findings
            .iter()
            .any(|f| matches!(f, Finding::ForeignDataAccess { slot, .. } if *slot == spare)));

        // Backdoor 2: writable MPU window.
        p.machine
            .sys
            .mpu
            .set_rule(
                spare,
                RuleSlot {
                    start: map::MPU_MMIO_BASE,
                    end: map::MPU_MMIO_BASE + 0x100,
                    perms: Perms::W,
                    subject: Subject::Any,
                    enabled: true,
                    locked: false,
                },
            )
            .unwrap();
        let a = audit(&p);
        assert!(
            a.findings
                .iter()
                .any(|f| matches!(f, Finding::MpuWindowWritable { .. })),
            "{a}"
        );

        // Backdoor 3: foreign body execution.
        p.machine
            .sys
            .mpu
            .set_rule(
                spare,
                RuleSlot {
                    start: plan.code_base,
                    end: plan.code_end(),
                    perms: Perms::X,
                    subject: Subject::Any,
                    enabled: true,
                    locked: false,
                },
            )
            .unwrap();
        let a = audit(&p);
        assert!(
            a.findings
                .iter()
                .any(|f| matches!(f, Finding::ForeignBodyExecute { .. })),
            "{a}"
        );
    }

    #[test]
    fn disabled_trustlet_region_flagged_as_dead() {
        let mut p = boot(1);
        // Disable the trustlet's own code rule.
        let own = p.report.rule_map["t0"][0];
        let mut rule = *p.machine.sys.mpu.slot(own).unwrap();
        rule.enabled = false;
        p.machine.sys.mpu.set_rule(own, rule).unwrap();
        let a = audit(&p);
        assert!(
            a.findings
                .iter()
                .any(|f| matches!(f, Finding::OwnerAccessMissing { .. })),
            "{a}"
        );
    }

    #[test]
    fn audit_renders_readably() {
        let p = boot(1);
        let clean = audit(&p);
        assert_eq!(clean.to_string(), "policy audit: clean");
    }
}
