//! `tlrun` — assemble and run an SP32 text-assembly program.
//!
//! A developer utility for experimenting with the simulator without
//! writing a host program:
//!
//! ```text
//! tlrun program.s [--steps N] [--trace] [--trace-cap N] [--base ADDR]
//!                 [--trace-json FILE] [--trace-jsonl FILE] [--metrics]
//! ```
//!
//! The program is assembled at `--base` (default `0x0`, the PROM) and run
//! on a bare platform (PROM, SRAM at 0x1000_0000, UART at its standard
//! MMIO address, MPU not enforcing). UART output, the register file and
//! cycle counts are printed on exit.
//!
//! Telemetry options:
//!
//! * `--trace` prints the retired-instruction trace to stderr.
//! * `--trace-cap N` bounds the event ring (default 65536 events).
//! * `--trace-json FILE` writes a Chrome `trace_event` file — open it in
//!   `chrome://tracing` or <https://ui.perfetto.dev>.
//! * `--trace-jsonl FILE` writes the raw event stream as JSON Lines.
//! * `--metrics` prints a JSON metrics snapshot (counters, histograms,
//!   per-region cycle attribution) to stdout.
//!
//! Example program:
//!
//! ```text
//!     li   r1, 0x20002000   ; UART TX
//!     li   r2, 72           ; 'H'
//!     sw   [r1], r2
//!     li   r2, 105          ; 'i'
//!     sw   [r1], r2
//!     halt
//! ```

use std::process::ExitCode;

use trustlite::{ObsLevel, Recorder};
use trustlite_cpu::{HaltReason, Machine, RunExit, SystemBus};
use trustlite_isa::{assemble_text, disassemble, Reg};
use trustlite_mem::{map, Bus, Ram, Rom};
use trustlite_mpu::EaMpu;
use trustlite_obs::sink;
use trustlite_periph::Uart;

const USAGE: &str = "usage: tlrun program.s [--steps N] [--trace] [--trace-cap N] \
[--base HEXADDR] [--trace-json FILE] [--trace-jsonl FILE] [--metrics]";

struct Options {
    path: String,
    steps: u64,
    trace: bool,
    trace_cap: usize,
    trace_json: Option<String>,
    trace_jsonl: Option<String>,
    metrics: bool,
    base: u32,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut steps = 1_000_000;
    let mut trace = false;
    let mut trace_cap = trustlite_obs::DEFAULT_RING_CAP;
    let mut trace_json = None;
    let mut trace_jsonl = None;
    let mut metrics = false;
    let mut base = 0u32;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--steps" => {
                let v = args.next().ok_or("--steps needs a value")?;
                steps = v.parse().map_err(|_| format!("bad --steps value `{v}`"))?;
            }
            "--trace" => trace = true,
            "--trace-cap" => {
                let v = args.next().ok_or("--trace-cap needs a value")?;
                trace_cap = v
                    .parse()
                    .map_err(|_| format!("bad --trace-cap value `{v}`"))?;
            }
            "--trace-json" => {
                trace_json = Some(args.next().ok_or("--trace-json needs a file path")?);
            }
            "--trace-jsonl" => {
                trace_jsonl = Some(args.next().ok_or("--trace-jsonl needs a file path")?);
            }
            "--metrics" => metrics = true,
            "--base" => {
                let v = args.next().ok_or("--base needs a value")?;
                let v = v.trim_start_matches("0x");
                base = u32::from_str_radix(v, 16).map_err(|_| format!("bad --base `{v}`"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Options {
        path: path.ok_or("no input file (try --help)")?,
        steps,
        trace,
        trace_cap,
        trace_json,
        trace_jsonl,
        metrics,
        base,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let img = match assemble_text(opts.base, &source) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("{}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };

    let mut bus = Bus::new();
    bus.map(map::PROM_BASE, Box::new(Rom::new(map::PROM_SIZE)))
        .expect("prom maps");
    bus.map(map::SRAM_BASE, Box::new(Ram::new("sram", map::SRAM_SIZE)))
        .expect("sram maps");
    bus.map(map::UART_MMIO_BASE, Box::new(Uart::new()))
        .expect("uart maps");
    if !bus.host_load(img.base, &img.bytes) {
        eprintln!(
            "image at {:#010x} (+{:#x}) does not fit the memory map",
            img.base,
            img.len()
        );
        return ExitCode::FAILURE;
    }
    let mut sys = SystemBus::new(bus, EaMpu::new(8), None);
    sys.enforce = false;

    // Telemetry level: the firehose when any trace output is requested,
    // metrics-only for --metrics alone, off otherwise.
    let want_events = opts.trace || opts.trace_json.is_some() || opts.trace_jsonl.is_some();
    let level = if want_events {
        ObsLevel::Full
    } else if opts.metrics {
        ObsLevel::Metrics
    } else {
        ObsLevel::Off
    };
    let mut obs = Recorder::new(level);
    obs.ring.set_capacity(opts.trace_cap);
    // The whole image is one attribution domain; everything else (there
    // is nothing else on this bare platform) falls into `other`.
    obs.attr
        .register("program", &[(img.base, img.base + img.len())]);
    sys.obs = obs;

    let mut m = Machine::new(sys, img.base);
    let exit = m.run(opts.steps);

    if opts.trace {
        for (cycle, ip, instr) in m.trace() {
            eprintln!("{cycle:>8}  {ip:#010x}  {instr}");
        }
    }
    if let Some(path) = &opts.trace_json {
        let doc = sink::chrome(m.sys.obs.ring.iter(), m.cycles);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("chrome trace written to {path}");
    }
    if let Some(path) = &opts.trace_jsonl {
        let doc = sink::jsonl(m.sys.obs.ring.iter());
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("event stream written to {path}");
    }

    let uart: &mut Uart = m.sys.bus.device_mut("uart").expect("uart present");
    let out = uart.take_output();
    if !out.is_empty() {
        print!("{}", String::from_utf8_lossy(&out));
        if out.last() != Some(&b'\n') {
            println!();
        }
    }
    if opts.metrics {
        println!("{}", m.metrics_report().to_json());
    }

    eprintln!("--");
    match exit {
        RunExit::Halted(HaltReason::Halt { ip }) => eprintln!("halted at {ip:#010x}"),
        RunExit::Halted(HaltReason::DoubleFault(f)) => {
            eprintln!("double fault: {f}");
            let word = m.sys.hw_read32(f.ip()).unwrap_or(0);
            eprintln!("  at: {}", disassemble(word));
        }
        RunExit::StepLimit => eprintln!("step limit ({}) reached", opts.steps),
    }
    eprintln!("cycles: {}  instructions: {}", m.cycles, m.instret);
    for r in Reg::GPRS {
        eprint!("{r}={:#010x} ", m.regs.get(r));
    }
    eprintln!("sp={:#010x} ip={:#010x}", m.regs.sp, m.regs.ip);
    match exit {
        RunExit::Halted(HaltReason::Halt { .. }) => ExitCode::SUCCESS,
        _ => ExitCode::FAILURE,
    }
}
