//! `tlstats` — summarize a recorded telemetry stream.
//!
//! Reads a JSON Lines event trace (as written by `tlrun --trace-jsonl`
//! or any program using `trustlite_obs::sink::jsonl`) and prints a
//! summary: event counts by kind, the cycle span, per-domain residency
//! derived from context switches, exception and fault activity, and IPC
//! traffic.
//!
//! ```text
//! tlstats trace.jsonl
//! tlrun prog.s --trace-jsonl /dev/stdout 2>/dev/null | tlstats -
//! ```

use std::collections::BTreeMap;
use std::io::Read as _;
use std::process::ExitCode;

use trustlite_obs::sink;
use trustlite_obs::Event;

const USAGE: &str = "usage: tlstats TRACE.jsonl   (use `-` for stdin)";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = match (args.next(), args.next()) {
        (Some(p), None) if p != "--help" && p != "-h" => p,
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let doc = if path == "-" {
        let mut s = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut s) {
            eprintln!("cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let events = match sink::parse_jsonl(&doc) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if events.is_empty() {
        println!("no events");
        return ExitCode::SUCCESS;
    }

    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut first = u64::MAX;
    let mut last = 0u64;
    // Domain residency reconstructed from the context-switch sequence.
    let mut residency: BTreeMap<String, u64> = BTreeMap::new();
    let mut open: Option<(String, u64)> = None;
    let mut instr_cycles = 0u64;
    let mut exc_entry_cycles = 0u64;
    let mut exc_exit_cycles = 0u64;
    let mut mpu_grants = 0u64;
    let mut mpu_denials = 0u64;
    let mut ipc_by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();

    for e in &events {
        *by_kind.entry(e.kind_name()).or_insert(0) += 1;
        first = first.min(e.cycle());
        last = last.max(e.cycle());
        match e {
            Event::InstrRetired { cost, .. } => instr_cycles += cost,
            Event::MpuCheck { verdict, .. } => match verdict {
                trustlite_obs::Verdict::Allow => mpu_grants += 1,
                trustlite_obs::Verdict::Deny => mpu_denials += 1,
            },
            Event::ExceptionEnter { frame, .. } => exc_entry_cycles += frame.cycles,
            Event::ExceptionExit { cycles, .. } => exc_exit_cycles += cycles,
            Event::ContextSwitch { cycle, edge, .. } => {
                let (name, start) = open.take().unwrap_or_else(|| (edge.from.clone(), first));
                *residency.entry(name).or_insert(0) += cycle.saturating_sub(start);
                open = Some((edge.to.clone(), *cycle));
            }
            Event::IpcSend { kind, .. } | Event::IpcRecv { kind, .. } => {
                *ipc_by_kind.entry(kind.name()).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    if let Some((name, start)) = open {
        *residency.entry(name).or_insert(0) += last.saturating_sub(start);
    }

    println!("{} events over cycles {first}..{last}", events.len());
    println!();
    println!("events by kind:");
    for (kind, n) in &by_kind {
        println!("  {kind:<18} {n:>10}");
    }
    if instr_cycles > 0 {
        println!();
        println!("retired-instruction cycles: {instr_cycles}");
    }
    if mpu_grants + mpu_denials > 0 {
        println!();
        println!("mpu checks: {} granted, {} denied", mpu_grants, mpu_denials);
    }
    if exc_entry_cycles + exc_exit_cycles > 0 {
        println!();
        println!(
            "exception engine: {} cycles on entry, {} on return",
            exc_entry_cycles, exc_exit_cycles
        );
    }
    if !residency.is_empty() {
        println!();
        println!("domain residency (from context switches):");
        let total: u64 = residency.values().sum();
        for (name, cycles) in &residency {
            let pct = if total > 0 {
                *cycles as f64 * 100.0 / total as f64
            } else {
                0.0
            };
            println!("  {name:<18} {cycles:>10} cycles ({pct:5.1}%)");
        }
    }
    if !ipc_by_kind.is_empty() {
        println!();
        println!("ipc messages:");
        for (kind, n) in &ipc_by_kind {
            println!("  {kind:<18} {n:>10}");
        }
    }
    ExitCode::SUCCESS
}
