//! `tlstats` — summarize a recorded telemetry stream.
//!
//! Reads a JSON Lines trace and prints a summary. Two stream shapes are
//! understood, and may be mixed in one file:
//!
//! * **device event traces** (as written by `tlrun --trace-jsonl` or
//!   `trustlite_obs::sink::jsonl`): event counts by kind, the cycle
//!   span, per-domain residency derived from context switches,
//!   exception and fault activity, and IPC traffic;
//! * **fleet traces** (as written by `tlfleet --trace-jsonl`): run
//!   metadata, span counts by kind, deterministic latency histograms
//!   with p50/p90/p99/max (`fleet.rounds_to_detect`,
//!   `fleet.retries_per_device`, `fleet.response_latency_rounds`, ...)
//!   and the quarantine/crash flight-recorder dumps.
//!
//! Any malformed or unknown line is a hard error (nonzero exit) — CI
//! uses `tlstats` as the trace schema gate.
//!
//! ```text
//! tlstats trace.jsonl
//! tlfleet --trace-jsonl /dev/stdout | tlstats -
//! ```

use std::collections::BTreeMap;
use std::io::Read as _;
use std::process::ExitCode;

use trustlite_obs::trace::{self, HistLine, TraceMeta, TraceRecord};
use trustlite_obs::{Event, FlightDump, SpanRecord};

const USAGE: &str = "usage: tlstats TRACE.jsonl   (use `-` for stdin)";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = match (args.next(), args.next()) {
        (Some(p), None) if p != "--help" && p != "-h" => p,
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let doc = if path == "-" {
        let mut s = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut s) {
            eprintln!("cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let records = match trace::parse_trace(&doc) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut meta: Option<TraceMeta> = None;
    let mut spans: Vec<SpanRecord> = Vec::new();
    let mut hists: Vec<HistLine> = Vec::new();
    let mut flights: Vec<FlightDump> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    for r in records {
        match r {
            TraceRecord::Meta(m) => meta = Some(m),
            TraceRecord::Span(s) => spans.push(s),
            TraceRecord::Hist(h) => hists.push(h),
            TraceRecord::Flight(f) => flights.push(f),
            TraceRecord::Event(e) => events.push(e),
        }
    }

    let fleet = meta.is_some() || !spans.is_empty() || !hists.is_empty() || !flights.is_empty();
    if !fleet && events.is_empty() {
        println!("no events");
        return ExitCode::SUCCESS;
    }
    if fleet {
        summarize_fleet(meta.as_ref(), &spans, &hists, &flights);
        if !events.is_empty() {
            println!();
        }
    }
    if !events.is_empty() {
        summarize_events(&events);
    }
    ExitCode::SUCCESS
}

fn summarize_fleet(
    meta: Option<&TraceMeta>,
    spans: &[SpanRecord],
    hists: &[HistLine],
    flights: &[FlightDump],
) {
    if let Some(m) = meta {
        println!(
            "fleet trace: {} devices x {} rounds x {} steps on {} workers, \
             workload {}, seed {}, trace level {}, chaos {}",
            m.devices,
            m.rounds,
            m.quantum,
            m.workers,
            m.workload,
            m.seed,
            m.trace_level,
            if m.chaos { "on" } else { "off" },
        );
    }
    if !spans.is_empty() {
        let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        for s in spans {
            *by_kind.entry(s.kind.name()).or_insert(0) += 1;
        }
        println!();
        println!("{} spans by kind:", spans.len());
        for (kind, n) in &by_kind {
            println!("  {kind:<24} {n:>10}");
        }
    }
    if !hists.is_empty() {
        println!();
        println!("histograms (quantiles from deterministic log2 buckets):");
        for h in hists {
            let s = &h.summary;
            println!(
                "  {:<32} n={:<6} p50={:<8} p90={:<8} p99={:<8} max={}",
                h.name,
                s.count,
                s.p50(),
                s.p90(),
                s.p99(),
                s.max
            );
        }
    }
    if !flights.is_empty() {
        println!();
        println!("flight dumps:");
        for f in flights {
            println!(
                "  device {:<4} round {:<4} {:<28} {} spans, {} events, {} counters, {} dropped",
                f.device,
                f.round,
                f.trigger,
                f.spans.len(),
                f.events.len(),
                f.counters.len(),
                f.dropped
            );
        }
        summarize_code_caches(flights);
    }
}

/// Per-device rollup of the fast-path cache counters (`cpu.predecode.*`
/// hit/miss/flush and `cpu.block.*` hit/miss/flush/instret) carried in
/// the flight dumps. Counters are cumulative snapshots, so when a device
/// dumped more than once only its latest dump (highest round) is
/// reported.
fn summarize_code_caches(flights: &[FlightDump]) {
    let mut latest: BTreeMap<u32, &FlightDump> = BTreeMap::new();
    for f in flights {
        match latest.entry(f.device) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(f);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                if f.round >= e.get().round {
                    e.insert(f);
                }
            }
        }
    }
    let get = |f: &FlightDump, k: &str| f.counters.get(k).copied().unwrap_or(0);
    let mut lines = Vec::new();
    for (device, f) in &latest {
        let pd: u64 = ["cpu.predecode.hit", "cpu.predecode.miss"]
            .iter()
            .map(|k| get(f, k))
            .sum();
        let blk: u64 = ["cpu.block.hit", "cpu.block.miss"]
            .iter()
            .map(|k| get(f, k))
            .sum();
        if pd + blk == 0 {
            continue;
        }
        lines.push(format!(
            "  device {:<4} predecode {}/{} hit/miss ({} flushed); \
             block {}/{} hit/miss ({} flushed, {} instret)",
            device,
            get(f, "cpu.predecode.hit"),
            get(f, "cpu.predecode.miss"),
            get(f, "cpu.predecode.flush"),
            get(f, "cpu.block.hit"),
            get(f, "cpu.block.miss"),
            get(f, "cpu.block.flush"),
            get(f, "cpu.block.instret"),
        ));
    }
    if !lines.is_empty() {
        println!();
        println!("code-cache counters (latest flight dump per device):");
        for l in lines {
            println!("{l}");
        }
    }
}

fn summarize_events(events: &[Event]) {
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut first = u64::MAX;
    let mut last = 0u64;
    // Domain residency reconstructed from the context-switch sequence.
    let mut residency: BTreeMap<String, u64> = BTreeMap::new();
    let mut open: Option<(String, u64)> = None;
    let mut instr_cycles = 0u64;
    let mut exc_entry_cycles = 0u64;
    let mut exc_exit_cycles = 0u64;
    let mut mpu_grants = 0u64;
    let mut mpu_denials = 0u64;
    let mut ipc_by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();

    for e in events {
        *by_kind.entry(e.kind_name()).or_insert(0) += 1;
        first = first.min(e.cycle());
        last = last.max(e.cycle());
        match e {
            Event::InstrRetired { cost, .. } => instr_cycles += cost,
            Event::MpuCheck { verdict, .. } => match verdict {
                trustlite_obs::Verdict::Allow => mpu_grants += 1,
                trustlite_obs::Verdict::Deny => mpu_denials += 1,
            },
            Event::ExceptionEnter { frame, .. } => exc_entry_cycles += frame.cycles,
            Event::ExceptionExit { cycles, .. } => exc_exit_cycles += cycles,
            Event::ContextSwitch { cycle, edge, .. } => {
                let (name, start) = open.take().unwrap_or_else(|| (edge.from.clone(), first));
                *residency.entry(name).or_insert(0) += cycle.saturating_sub(start);
                open = Some((edge.to.clone(), *cycle));
            }
            Event::IpcSend { kind, .. } | Event::IpcRecv { kind, .. } => {
                *ipc_by_kind.entry(kind.name()).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    if let Some((name, start)) = open {
        *residency.entry(name).or_insert(0) += last.saturating_sub(start);
    }

    println!("{} events over cycles {first}..{last}", events.len());
    println!();
    println!("events by kind:");
    for (kind, n) in &by_kind {
        println!("  {kind:<18} {n:>10}");
    }
    if instr_cycles > 0 {
        println!();
        println!("retired-instruction cycles: {instr_cycles}");
    }
    if mpu_grants + mpu_denials > 0 {
        println!();
        println!("mpu checks: {} granted, {} denied", mpu_grants, mpu_denials);
    }
    if exc_entry_cycles + exc_exit_cycles > 0 {
        println!();
        println!(
            "exception engine: {} cycles on entry, {} on return",
            exc_entry_cycles, exc_exit_cycles
        );
    }
    if !residency.is_empty() {
        println!();
        println!("domain residency (from context switches):");
        let total: u64 = residency.values().sum();
        for (name, cycles) in &residency {
            let pct = if total > 0 {
                *cycles as f64 * 100.0 / total as f64
            } else {
                0.0
            };
            println!("  {name:<18} {cycles:>10} cycles ({pct:5.1}%)");
        }
    }
    if !ipc_by_kind.is_empty() {
        println!();
        println!("ipc messages:");
        for (kind, n) in &ipc_by_kind {
            println!("  {kind:<18} {n:>10}");
        }
    }
}
