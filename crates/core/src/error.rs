//! Unified error type for platform construction and loading.

use core::fmt;

use trustlite_isa::builder::AsmError;
use trustlite_mem::MapError;
use trustlite_mpu::ProgramError;

/// Errors raised while building, loading or inspecting a platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrustliteError {
    /// A memory mapping failed.
    Map(MapError),
    /// Assembly of a generated program failed.
    Asm(AsmError),
    /// MPU programming failed (typically: out of rule slots).
    Mpu(ProgramError),
    /// The platform ran out of MPU rule slots for the requested policy.
    OutOfMpuSlots { needed: usize, available: usize },
    /// The layout allocator ran out of SRAM.
    OutOfSram { requested: u32 },
    /// A named trustlet does not exist.
    UnknownTrustlet(String),
    /// A trustlet name was registered twice.
    DuplicateTrustlet(String),
    /// The PROM firmware table is malformed.
    BadFirmware(String),
    /// Secure-boot authentication of a trustlet failed.
    AuthFailed(String),
    /// The OS image was not provided before `build()`.
    MissingOs,
    /// A code image does not match its reserved plan location.
    PlanMismatch {
        name: String,
        expected: u32,
        actual: u32,
    },
    /// The image is larger than the reserved region.
    ImageTooLarge {
        name: String,
        reserved: u32,
        actual: u32,
    },
    /// Snapshot/fork failed: the named component cannot be deep-copied.
    Snapshot(&'static str),
    /// A fleet configuration is degenerate: the named knob is zero where
    /// a nonzero value is required (e.g. `devices`, `rounds`).
    DegenerateFleet { what: &'static str },
}

impl fmt::Display for TrustliteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrustliteError::Map(e) => write!(f, "mapping error: {e}"),
            TrustliteError::Asm(e) => write!(f, "assembly error: {e}"),
            TrustliteError::Mpu(e) => write!(f, "MPU programming error: {e}"),
            TrustliteError::OutOfMpuSlots { needed, available } => {
                write!(
                    f,
                    "policy needs {needed} MPU slots, only {available} available"
                )
            }
            TrustliteError::OutOfSram { requested } => {
                write!(f, "SRAM exhausted allocating {requested:#x} bytes")
            }
            TrustliteError::UnknownTrustlet(n) => write!(f, "unknown trustlet `{n}`"),
            TrustliteError::DuplicateTrustlet(n) => write!(f, "duplicate trustlet `{n}`"),
            TrustliteError::BadFirmware(m) => write!(f, "malformed PROM firmware: {m}"),
            TrustliteError::AuthFailed(n) => {
                write!(f, "secure-boot authentication failed for `{n}`")
            }
            TrustliteError::MissingOs => write!(f, "no OS image provided"),
            TrustliteError::Snapshot(what) => {
                write!(f, "snapshot unsupported by component `{what}`")
            }
            TrustliteError::DegenerateFleet { what } => {
                write!(
                    f,
                    "degenerate fleet configuration: `{what}` must be nonzero"
                )
            }
            TrustliteError::PlanMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "image for `{name}` assembled at {actual:#010x}, plan reserved {expected:#010x}"
            ),
            TrustliteError::ImageTooLarge {
                name,
                reserved,
                actual,
            } => write!(
                f,
                "image for `{name}` is {actual:#x} bytes, exceeds reserved {reserved:#x}"
            ),
        }
    }
}

impl std::error::Error for TrustliteError {}

impl From<MapError> for TrustliteError {
    fn from(e: MapError) -> Self {
        TrustliteError::Map(e)
    }
}

impl From<AsmError> for TrustliteError {
    fn from(e: AsmError) -> Self {
        TrustliteError::Asm(e)
    }
}

impl From<ProgramError> for TrustliteError {
    fn from(e: ProgramError) -> Self {
        TrustliteError::Mpu(e)
    }
}
