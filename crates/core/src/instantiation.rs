//! The instantiation spectrum of Section 3.6.
//!
//! "The presented hardware architecture allows for several different
//! instantiations, depending on the desired functionality, security level
//! and performance": hardwired regions ("hardware trustlets"),
//! loader-initialized "firmware trustlets", interruptible "usermode
//! trustlets", optional Secure Boot, optional root of trust for
//! measurement. This module captures those design points as presets over
//! the [`PlatformBuilder`] plus option templates for the trustlets they
//! host.

use crate::platform::PlatformBuilder;
use crate::spec::TrustletOptions;

/// A named instantiation of the TrustLite hardware/firmware stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instantiation {
    /// SMART-like minimal instantiation: a single protected attestation
    /// service merged with the Secure Loader's trust domain; no secure
    /// exception engine; rules locked (cooperative execution only). The
    /// Section 5.2 cost point: extension base + one module.
    SmartLike,
    /// Firmware trustlets: loader-initialized protected services that run
    /// to completion (no secure exception engine); software-updatable,
    /// measured for attestation.
    Firmware,
    /// The full architecture: usermode trustlets preemptively scheduled
    /// by an untrusted OS under the secure exception engine.
    Usermode,
}

impl Instantiation {
    /// All instantiations, cheapest first.
    pub const ALL: [Instantiation; 3] = [
        Instantiation::SmartLike,
        Instantiation::Firmware,
        Instantiation::Usermode,
    ];

    /// Applies the instantiation's platform-level configuration.
    pub fn configure(self, b: &mut PlatformBuilder) {
        match self {
            Instantiation::SmartLike => {
                b.secure_exceptions(false);
                b.mpu_slots(12);
            }
            Instantiation::Firmware => {
                b.secure_exceptions(false);
            }
            Instantiation::Usermode => {
                b.secure_exceptions(true);
            }
        }
    }

    /// The trustlet-option template this instantiation implies.
    pub fn trustlet_options(self) -> TrustletOptions {
        match self {
            Instantiation::SmartLike => TrustletOptions {
                interruptible: false,
                lock_rules: true,
                ..Default::default()
            },
            Instantiation::Firmware => TrustletOptions {
                interruptible: false,
                ..Default::default()
            },
            Instantiation::Usermode => TrustletOptions::default(),
        }
    }

    /// Whether trustlets may be preempted and resumed under this
    /// instantiation.
    pub fn supports_preemption(self) -> bool {
        matches!(self, Instantiation::Usermode)
    }

    /// Whether the protection policy can change without a reboot.
    pub fn supports_live_policy_update(self) -> bool {
        !matches!(self, Instantiation::SmartLike)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlite_isa::Reg;

    fn boot(inst: Instantiation) -> crate::Platform {
        let mut b = PlatformBuilder::new();
        inst.configure(&mut b);
        let plan = b.plan_trustlet("svc", 0x200, 0x80, 0x80);
        let mut t = plan.begin_program();
        t.asm.label("main");
        t.asm.li(Reg::R0, 7);
        t.asm.halt();
        b.add_trustlet(&plan, t.finish().unwrap(), inst.trustlet_options())
            .unwrap();
        let mut os = b.begin_os();
        os.asm.label("main");
        os.asm.halt();
        let os_img = os.finish().unwrap();
        b.set_os(os_img, &[]);
        b.build().unwrap()
    }

    #[test]
    fn smart_like_locks_rules_and_disables_exceptions() {
        let p = boot(Instantiation::SmartLike);
        assert!(!p.machine.hw.secure_exceptions);
        let locked: Vec<usize> = p
            .machine
            .sys
            .mpu
            .slots()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.locked)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            &locked, &p.report.rule_map["svc"],
            "exactly the service's slots locked"
        );
    }

    #[test]
    fn firmware_updatable_but_not_preemptible() {
        let p = boot(Instantiation::Firmware);
        assert!(!p.machine.hw.secure_exceptions);
        assert!(p.machine.sys.mpu.slots().iter().all(|s| !s.locked));
        assert!(!Instantiation::Firmware.supports_preemption());
        assert!(Instantiation::Firmware.supports_live_policy_update());
    }

    #[test]
    fn usermode_enables_the_secure_engine() {
        let p = boot(Instantiation::Usermode);
        assert!(p.machine.hw.secure_exceptions);
        assert!(Instantiation::Usermode.supports_preemption());
    }

    #[test]
    fn locked_rules_survive_reprogramming_attempts_until_reset() {
        let mut p = boot(Instantiation::SmartLike);
        let slot = p.report.rule_map["svc"][0];
        let before = *p.machine.sys.mpu.slot(slot).unwrap();
        // Even a hypothetical privileged writer cannot change the slot...
        assert!(p
            .machine
            .sys
            .mpu
            .set_rule(slot, trustlite_mpu::RuleSlot::EMPTY)
            .is_err());
        assert_eq!(*p.machine.sys.mpu.slot(slot).unwrap(), before);
        // ...until a platform reset re-runs the loader.
        p.reset().unwrap();
        assert_eq!(
            *p.machine.sys.mpu.slot(slot).unwrap(),
            before,
            "re-established"
        );
    }
}
