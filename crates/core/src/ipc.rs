//! Trusted inter-process communication (Section 4.2.2).
//!
//! TrustLite establishes a mutually authenticated local channel between
//! two trustlets with a **single round trip** and no trusted kernel:
//!
//! 1. The initiator locally attests the responder (Trustlet Table lookup,
//!    MPU-rule validation, optional code-hash check — see
//!    [`crate::attest`]).
//! 2. `syn(A, B, N_A)` — identifiers of both parties plus a fresh nonce.
//! 3. The responder may attest the initiator, then replies
//!    `ack(A, B, N_A, N_B)`.
//! 4. Both sides derive the session token `hash(A, B, N_A, N_B)` and use
//!    it to authenticate subsequent messages.
//!
//! The security argument is architectural: receiver identity is enforced
//! by the CPU (messages enter only through code entry points), the secure
//! exception engine keeps register contents from the OS, and MPU rules
//! persist until reset, so a single inspection of the peer suffices.
//!
//! This module provides the protocol state machines (used host-side and
//! by tests) plus the register-level message encoding used by the
//! in-simulator trustlet programs.

use core::fmt;

use trustlite_crypto::{hmac_sha256, Sponge, XorShift64};

/// Register-level message type tags (passed in `r0` on a `call()` entry).
pub mod msg_type {
    /// `syn` handshake message.
    pub const SYN: u32 = 1;
    /// `ack` handshake message.
    pub const ACK: u32 = 2;
    /// Authenticated data message.
    pub const DATA: u32 = 3;
}

/// A `syn` handshake message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Syn {
    /// Initiator trustlet identifier.
    pub initiator: u32,
    /// Responder trustlet identifier.
    pub responder: u32,
    /// Initiator nonce.
    pub nonce_a: u32,
}

/// An `ack` handshake message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// Initiator trustlet identifier (echoed).
    pub initiator: u32,
    /// Responder trustlet identifier (echoed).
    pub responder: u32,
    /// Initiator nonce (echoed).
    pub nonce_a: u32,
    /// Responder nonce.
    pub nonce_b: u32,
}

/// A handshake failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpcError {
    /// The `ack` does not echo the `syn` (wrong peer, replay, or forgery).
    AckMismatch,
    /// A message tag failed verification.
    BadTag,
}

impl fmt::Display for IpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpcError::AckMismatch => write!(f, "ack does not match the outstanding syn"),
            IpcError::BadTag => write!(f, "message authentication tag invalid"),
        }
    }
}

impl std::error::Error for IpcError {}

/// Derives the session token `hash(A, B, N_A, N_B)`.
pub fn session_token(initiator: u32, responder: u32, nonce_a: u32, nonce_b: u32) -> [u8; 32] {
    let mut s = Sponge::new();
    for w in [initiator, responder, nonce_a, nonce_b] {
        s.update(&w.to_le_bytes());
    }
    s.finish()
}

/// An established trusted channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    /// Initiator identifier.
    pub initiator: u32,
    /// Responder identifier.
    pub responder: u32,
    token: [u8; 32],
}

impl Channel {
    /// The raw session token (for in-simulator comparison).
    pub fn token(&self) -> [u8; 32] {
        self.token
    }

    /// Authenticates a message under the session token.
    pub fn tag(&self, msg: &[u8]) -> [u8; 32] {
        hmac_sha256(&self.token, msg)
    }

    /// Verifies a message tag in constant time.
    pub fn verify(&self, msg: &[u8], tag: &[u8]) -> Result<(), IpcError> {
        if trustlite_crypto::ct_eq(&self.tag(msg), tag) {
            Ok(())
        } else {
            Err(IpcError::BadTag)
        }
    }
}

/// The initiator's half of the handshake.
#[derive(Debug)]
pub struct Initiator {
    syn: Syn,
}

impl Initiator {
    /// Starts a handshake from `initiator` to `responder`. Local
    /// attestation of the responder is the caller's responsibility
    /// (see [`crate::attest::local_attest`]).
    pub fn start(initiator: u32, responder: u32, rng: &mut XorShift64) -> (Initiator, Syn) {
        let syn = Syn {
            initiator,
            responder,
            nonce_a: rng.next_u32(),
        };
        (Initiator { syn }, syn)
    }

    /// The outstanding `syn`.
    pub fn syn(&self) -> Syn {
        self.syn
    }

    /// Completes the handshake with the responder's `ack`.
    pub fn complete(self, ack: Ack) -> Result<Channel, IpcError> {
        if ack.initiator != self.syn.initiator
            || ack.responder != self.syn.responder
            || ack.nonce_a != self.syn.nonce_a
        {
            return Err(IpcError::AckMismatch);
        }
        Ok(Channel {
            initiator: self.syn.initiator,
            responder: self.syn.responder,
            token: session_token(ack.initiator, ack.responder, ack.nonce_a, ack.nonce_b),
        })
    }
}

/// The responder's half: accepts a `syn`, emits the `ack` and the channel.
pub fn respond(syn: Syn, rng: &mut XorShift64) -> (Channel, Ack) {
    let nonce_b = rng.next_u32();
    let ack = Ack {
        initiator: syn.initiator,
        responder: syn.responder,
        nonce_a: syn.nonce_a,
        nonce_b,
    };
    (
        Channel {
            initiator: syn.initiator,
            responder: syn.responder,
            token: session_token(syn.initiator, syn.responder, syn.nonce_a, nonce_b),
        },
        ack,
    )
}

/// Telemetry-traced wrappers around the handshake: the same protocol
/// state machines, but every message emits an [`Event::IpcSend`] /
/// [`Event::IpcRecv`] pair and the completed handshake records the
/// `ipc.round_trip_cycles` histogram (cycle stamps come from the
/// recorder, i.e. the machine time that elapsed between the steps).
pub mod traced {
    use super::{Ack, Channel, Initiator, IpcError, Syn};
    use trustlite_crypto::XorShift64;
    use trustlite_obs::{Event, IpcKind, Recorder};

    /// An in-flight traced handshake.
    #[derive(Debug)]
    pub struct TracedInitiator {
        inner: Initiator,
        started_at: u64,
    }

    /// Starts a traced handshake; emits the `syn` send.
    pub fn start(
        obs: &mut Recorder,
        initiator: u32,
        responder: u32,
        rng: &mut XorShift64,
    ) -> (TracedInitiator, Syn) {
        let (inner, syn) = Initiator::start(initiator, responder, rng);
        let cycle = obs.now();
        obs.metrics.inc("ipc.syn_sent");
        obs.emit(Event::IpcSend {
            cycle,
            from: initiator,
            to: responder,
            kind: IpcKind::Syn,
        });
        (
            TracedInitiator {
                inner,
                started_at: cycle,
            },
            syn,
        )
    }

    /// Responder side: accepts the `syn`, emits its receive and the `ack`
    /// send, and returns the responder's channel.
    pub fn respond(obs: &mut Recorder, syn: Syn, rng: &mut XorShift64) -> (Channel, Ack) {
        let cycle = obs.now();
        obs.metrics.inc("ipc.syn_received");
        obs.emit(Event::IpcRecv {
            cycle,
            from: syn.initiator,
            to: syn.responder,
            kind: IpcKind::Syn,
        });
        let (chan, ack) = super::respond(syn, rng);
        obs.metrics.inc("ipc.ack_sent");
        obs.emit(Event::IpcSend {
            cycle,
            from: syn.responder,
            to: syn.initiator,
            kind: IpcKind::Ack,
        });
        (chan, ack)
    }

    /// Initiator side: completes with the `ack`, emitting its receive and
    /// the round-trip latency on success.
    pub fn complete(
        obs: &mut Recorder,
        init: TracedInitiator,
        ack: Ack,
    ) -> Result<Channel, IpcError> {
        let cycle = obs.now();
        obs.emit(Event::IpcRecv {
            cycle,
            from: ack.responder,
            to: ack.initiator,
            kind: IpcKind::Ack,
        });
        let started_at = init.started_at;
        let chan = init.inner.complete(ack)?;
        obs.metrics.inc("ipc.established");
        obs.metrics
            .observe("ipc.round_trip_cycles", cycle.saturating_sub(started_at));
        Ok(chan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handshake(seed_a: u64, seed_b: u64) -> (Channel, Channel) {
        let mut rng_a = XorShift64::new(seed_a);
        let mut rng_b = XorShift64::new(seed_b);
        let (init, syn) = Initiator::start(0xA, 0xB, &mut rng_a);
        let (chan_b, ack) = respond(syn, &mut rng_b);
        let chan_a = init.complete(ack).expect("honest handshake completes");
        (chan_a, chan_b)
    }

    #[test]
    fn single_round_trip_agrees_on_token() {
        let (a, b) = handshake(1, 2);
        assert_eq!(a.token(), b.token());
        assert_eq!(a, b);
    }

    #[test]
    fn tokens_differ_across_sessions() {
        let (a1, _) = handshake(1, 2);
        let (a2, _) = handshake(3, 4);
        assert_ne!(a1.token(), a2.token());
    }

    #[test]
    fn token_binds_identities_and_nonces() {
        let t = session_token(1, 2, 3, 4);
        assert_ne!(t, session_token(2, 1, 3, 4), "identities");
        assert_ne!(t, session_token(1, 2, 4, 3), "nonce order");
        assert_ne!(t, session_token(1, 2, 3, 5), "responder nonce");
    }

    #[test]
    fn forged_ack_rejected() {
        let mut rng = XorShift64::new(7);
        let (init, syn) = Initiator::start(0xA, 0xB, &mut rng);
        // Wrong nonce echo.
        let forged = Ack {
            initiator: syn.initiator,
            responder: syn.responder,
            nonce_a: syn.nonce_a ^ 1,
            nonce_b: 9,
        };
        assert_eq!(init.complete(forged).unwrap_err(), IpcError::AckMismatch);
    }

    #[test]
    fn wrong_peer_ack_rejected() {
        let mut rng = XorShift64::new(7);
        let (init, syn) = Initiator::start(0xA, 0xB, &mut rng);
        let forged = Ack {
            initiator: syn.initiator,
            responder: 0xC,
            nonce_a: syn.nonce_a,
            nonce_b: 9,
        };
        assert!(init.complete(forged).is_err());
    }

    #[test]
    fn message_authentication() {
        let (a, b) = handshake(5, 6);
        let tag = a.tag(b"transfer 100");
        assert!(b.verify(b"transfer 100", &tag).is_ok());
        assert_eq!(
            b.verify(b"transfer 999", &tag).unwrap_err(),
            IpcError::BadTag
        );
        let mut bad = tag;
        bad[5] ^= 0x80;
        assert!(b.verify(b"transfer 100", &bad).is_err());
    }

    #[test]
    fn traced_handshake_emits_events_and_round_trip() {
        use trustlite_obs::{ObsLevel, Recorder};
        let mut obs = Recorder::new(ObsLevel::Events);
        let mut rng_a = XorShift64::new(1);
        let mut rng_b = XorShift64::new(2);
        obs.set_now(100);
        let (init, syn) = traced::start(&mut obs, 0xA, 0xB, &mut rng_a);
        obs.set_now(150);
        let (chan_b, ack) = traced::respond(&mut obs, syn, &mut rng_b);
        obs.set_now(220);
        let chan_a = traced::complete(&mut obs, init, ack).unwrap();
        assert_eq!(chan_a.token(), chan_b.token());
        // syn send, syn recv, ack send, ack recv.
        assert_eq!(obs.ring.len(), 4);
        assert_eq!(obs.metrics.counter("ipc.established"), 1);
        let h = obs.metrics.histogram("ipc.round_trip_cycles").unwrap();
        assert_eq!(h.sum(), 120, "completed at 220, started at 100");
    }

    #[test]
    fn replayed_ack_from_other_session_rejected() {
        let mut rng_a = XorShift64::new(10);
        let mut rng_b = XorShift64::new(11);
        let (init1, syn1) = Initiator::start(0xA, 0xB, &mut rng_a);
        let (_, ack1) = respond(syn1, &mut rng_b);
        let _ = init1.complete(ack1).unwrap();
        // A second handshake must not accept the first session's ack.
        let (init2, _) = Initiator::start(0xA, 0xB, &mut rng_a);
        assert!(init2.complete(ack1).is_err(), "nonce freshness");
    }
}
