//! The standard SRAM layout and the region allocator.
//!
//! The Secure Loader owns the first page of SRAM for the system tables it
//! creates and write-protects (Figure 5): the interrupt descriptor table,
//! the OS stack-pointer cell, the Trustlet Table and the measurement
//! table. Everything after [`SYS_TABLES_SIZE`] is allocated bottom-up to
//! OS, app and trustlet regions.

use trustlite_cpu::TT_ROW_BYTES;
use trustlite_mem::map;

use crate::error::TrustliteError;

/// Maximum number of trustlets a platform instance supports (bounded by
/// the loader-reserved table space, not the architecture).
pub const MAX_TRUSTLETS: u32 = 16;

/// Offset of the IDT within SRAM.
pub const IDT_OFF: u32 = 0x000;
/// Offset of the OS stack-pointer cell within SRAM.
pub const OS_SP_CELL_OFF: u32 = 0x080;
/// Offset of the Trustlet Table within SRAM.
pub const TT_OFF: u32 = 0x100;
/// Offset of the measurement table within SRAM (32 bytes per trustlet).
pub const MEASURE_OFF: u32 = 0x300;
/// Bytes per measurement-table row.
pub const MEASURE_ROW_BYTES: u32 = 32;
/// Total size of the loader-owned system-table region.
pub const SYS_TABLES_SIZE: u32 = 0x800;

/// Absolute address of the IDT.
pub fn idt_base() -> u32 {
    map::SRAM_BASE + IDT_OFF
}

/// Absolute address of the OS stack-pointer cell.
pub fn os_sp_cell() -> u32 {
    map::SRAM_BASE + OS_SP_CELL_OFF
}

/// Absolute address of the Trustlet Table.
pub fn tt_base() -> u32 {
    map::SRAM_BASE + TT_OFF
}

/// Absolute address of the measurement table.
pub fn measure_base() -> u32 {
    map::SRAM_BASE + MEASURE_OFF
}

/// Absolute address of trustlet `index`'s measurement row.
pub fn measure_row(index: u32) -> u32 {
    measure_base() + index * MEASURE_ROW_BYTES
}

/// Absolute address of the `saved_sp` field of Trustlet Table row `index`.
pub fn tt_sp_slot(index: u32) -> u32 {
    tt_base() + index * TT_ROW_BYTES + 12
}

/// A bump allocator over SRAM (above the system tables).
#[derive(Debug, Clone)]
pub struct Layout {
    cursor: u32,
    end: u32,
}

impl Layout {
    /// Creates the allocator for an SRAM of `sram_size` bytes.
    pub fn new(sram_size: u32) -> Self {
        Layout {
            cursor: map::SRAM_BASE + SYS_TABLES_SIZE,
            end: map::SRAM_BASE + sram_size,
        }
    }

    /// Allocates `size` bytes aligned to `align` (a power of two).
    pub fn alloc(&mut self, size: u32, align: u32) -> Result<u32, TrustliteError> {
        debug_assert!(align.is_power_of_two());
        let base = (self.cursor + align - 1) & !(align - 1);
        let new_cursor = base
            .checked_add(size)
            .ok_or(TrustliteError::OutOfSram { requested: size })?;
        if new_cursor > self.end {
            return Err(TrustliteError::OutOfSram { requested: size });
        }
        self.cursor = new_cursor;
        Ok(base)
    }

    /// Bytes still available.
    pub fn remaining(&self) -> u32 {
        self.end - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // compile-time layout checks
    fn system_tables_fit_reserved_region() {
        assert!(IDT_OFF + trustlite_cpu::vectors::IDT_BYTES <= OS_SP_CELL_OFF);
        assert!(TT_OFF + MAX_TRUSTLETS * TT_ROW_BYTES <= MEASURE_OFF);
        assert!(MEASURE_OFF + MAX_TRUSTLETS * MEASURE_ROW_BYTES <= SYS_TABLES_SIZE);
    }

    #[test]
    fn alloc_respects_alignment_and_bounds() {
        let mut l = Layout::new(SYS_TABLES_SIZE + 0x100);
        let a = l.alloc(5, 4).unwrap();
        assert_eq!(a % 4, 0);
        let b = l.alloc(8, 16).unwrap();
        assert_eq!(b % 16, 0);
        assert!(b > a);
        assert!(l.alloc(0x1000, 4).is_err(), "over capacity");
    }

    #[test]
    fn tt_slots_match_cpu_layout() {
        assert_eq!(tt_sp_slot(0), tt_base() + 12);
        assert_eq!(tt_sp_slot(2), tt_base() + 2 * TT_ROW_BYTES + 12);
    }

    #[test]
    fn remaining_shrinks() {
        let mut l = Layout::new(SYS_TABLES_SIZE + 0x40);
        let before = l.remaining();
        l.alloc(0x10, 4).unwrap();
        assert_eq!(l.remaining(), before - 0x10);
    }
}
