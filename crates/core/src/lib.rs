//! TrustLite: a security architecture for tiny embedded devices.
//!
//! This crate is the reproduction of the EuroSys 2014 paper's primary
//! contribution, assembled from the substrate crates:
//!
//! * **Platform** ([`platform`]) — builds the simulated SoC of Figure 1:
//!   SP32 core, PROM, SRAM, external DRAM, EA-MPU, timer, UART, crypto
//!   accelerator and key store on one bus.
//! * **Secure Loader** ([`loader`]) — the Figure 5 boot flow: clear the
//!   MPU, parse trustlet meta-data from PROM, copy images into SRAM,
//!   measure (or authenticate) them, populate the Trustlet Table, program
//!   three MPU register writes per protection region, lock the MPU and
//!   launch the untrusted OS.
//! * **Trustlet model** ([`spec`], [`runtime`]) — code regions with entry
//!   vectors, `continue()`/`call()` entries, private data and stack
//!   regions, shared-memory windows and exclusive peripheral grants.
//! * **Trusted IPC** ([`ipc`]) — the Section 4.2.2 one-round handshake:
//!   local attestation of the peer, `syn`/`ack` with nonces and the
//!   session token `hash(A, B, N_A, N_B)`.
//! * **Attestation** ([`attest`]) — load-time measurement, local platform
//!   inspection and a remote challenge-response built on the key store.
//!
//! # Examples
//!
//! ```
//! use trustlite::platform::PlatformBuilder;
//! use trustlite_isa::Reg;
//!
//! // A minimal platform: one trustlet that increments a counter in its
//! // private data region, and an OS that just halts.
//! let mut b = PlatformBuilder::new();
//! let plan = b.plan_trustlet("counter", 0x100, 0x100, 0x100);
//! let mut t = plan.begin_program();
//! t.asm.label("main");
//! t.asm.li(Reg::R1, plan.data_base);
//! t.asm.lw(Reg::R0, Reg::R1, 0);
//! t.asm.addi(Reg::R0, Reg::R0, 1);
//! t.asm.sw(Reg::R1, 0, Reg::R0);
//! t.asm.halt();
//! let img = t.finish().unwrap();
//! b.add_trustlet(&plan, img, Default::default());
//!
//! let mut os = b.begin_os();
//! os.asm.label("main");
//! os.asm.halt();
//! let os_img = os.finish().unwrap();
//! b.set_os(os_img, &[]);
//!
//! let mut platform = b.build().unwrap();
//! platform.start_trustlet("counter").unwrap();
//! platform.machine.run(1000);
//! ```

pub mod attest;
pub mod audit;
pub mod error;
pub mod instantiation;
pub mod ipc;
pub mod layout;
pub mod loader;
pub mod platform;
pub mod prom;
pub mod runtime;
pub mod spec;
pub mod update;

pub use audit::{audit, PolicyAudit};
pub use error::TrustliteError;
pub use instantiation::Instantiation;
pub use platform::{Platform, PlatformBuilder};
pub use spec::{OsSpec, PeriphGrant, SharedSpec, TrustletOptions, TrustletPlan, TrustletSpec};
pub use trustlite_obs::{Event, MetricsReport, ObsLevel, Recorder};
