//! The Secure Loader (Section 3.5, Figure 5).
//!
//! The Secure Loader is the first code to run at platform reset. It
//! protects itself via the MPU, loads trustlets from PROM into SRAM, sets
//! up the memory protection rules, populates the Trustlet Table and only
//! then launches the untrusted OS. Because it runs again on every reset,
//! it can *re-establish* protection instead of requiring the hardware to
//! wipe all volatile memory, which is the paper's answer to SMART's and
//! Sancus's reset-sanitization requirement.
//!
//! This module is the host-side reference model of that PROM routine: it
//! performs exactly the observable state transitions (every MPU register
//! write goes through the real register interface and is counted; every
//! image word is copied from the PROM device to the SRAM device; the
//! tables land in write-protected SRAM) while its control logic runs in
//! host Rust. The substitution is recorded in DESIGN.md.

use std::collections::BTreeMap;

use trustlite_cpu::{vectors, Machine, TrustletRow};
use trustlite_crypto::hmac_sha256;
use trustlite_mem::map;
use trustlite_mpu::{Perms, RuleSlot, Subject};
use trustlite_periph::KeyStore;

use crate::error::TrustliteError;
use crate::layout;
use crate::prom;
use crate::spec::{OsSpec, SharedSpec, TrustletSpec};

/// Offset of the firmware table inside PROM.
pub const FW_TABLE_OFF: u32 = 0x1000;

/// Loader-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoaderConfig {
    /// Instantiate the secure exception engine.
    pub secure_exceptions: bool,
    /// Verify `auth_tag`s (secure boot) against the platform key.
    pub verify_auth: bool,
    /// Key-store slot holding the platform key.
    pub platform_key_slot: usize,
}

impl Default for LoaderConfig {
    fn default() -> Self {
        LoaderConfig {
            secure_exceptions: true,
            verify_auth: true,
            platform_key_slot: 0,
        }
    }
}

/// What the loader did — the Section 5.3 measurement record.
#[derive(Debug, Clone, Default)]
pub struct LoaderReport {
    /// MPU register writes performed (three per protection region).
    pub mpu_writes: u64,
    /// Protection regions programmed.
    pub regions_programmed: usize,
    /// Words copied from PROM to SRAM.
    pub words_copied: u64,
    /// Bytes hashed for load-time measurement.
    pub measured_bytes: u64,
    /// Names of loaded trustlets, in Trustlet Table order.
    pub trustlets: Vec<String>,
    /// MPU rule slots used per trustlet (for inspection/diagnostics).
    pub rule_map: BTreeMap<String, Vec<usize>>,
    /// Rough cycle estimate of the boot flow (copies + register writes +
    /// measurement absorption at one word per cycle).
    pub estimated_cycles: u64,
    /// Trustlets booted from the staged (B) slot this run.
    pub staged_boots: Vec<String>,
    /// Rollback verdicts recorded this run (trustlet name, verdict):
    /// the retained update block rejected the staged image and the
    /// loader fell back to the PROM (A) slot.
    pub rollbacks: Vec<(String, crate::update::BootVerdict)>,
}

/// The number of words in the fabricated initial resume frame (mirrors
/// the secure exception engine's save format).
pub const INITIAL_FRAME_WORDS: u32 = 10;

/// Runs the Secure Loader boot flow against `machine`.
///
/// `trustlet` specs must match the firmware entries staged in PROM (the
/// platform builder guarantees this); `shared` lists the platform's
/// shared-memory regions.
pub fn run(
    machine: &mut Machine,
    os: &OsSpec,
    trustlets: &[TrustletSpec],
    shared: &[SharedSpec],
    cfg: LoaderConfig,
) -> Result<LoaderReport, TrustliteError> {
    let mut report = LoaderReport::default();
    let mut auth_words = 0u64;

    // Step 1 (Figure 5): clear the MPU access-control registers.
    machine.sys.mpu.reset();

    // Read the platform key for secure boot.
    let platform_key = machine
        .sys
        .bus
        .device_mut::<KeyStore>("keystore")
        .and_then(|ks| ks.key(cfg.platform_key_slot));

    // Step 2: parse the firmware table out of PROM and load each trustlet.
    let prom_window = machine
        .sys
        .bus
        .read_bytes(map::PROM_BASE + FW_TABLE_OFF, map::PROM_SIZE - FW_TABLE_OFF)
        .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
    let entries = prom::parse(&prom_window)?;

    for entry in &entries {
        let spec = trustlets
            .iter()
            .find(|t| t.plan.id == entry.id)
            .ok_or_else(|| TrustliteError::BadFirmware(format!("unknown id {}", entry.id)))?;
        let plan = &spec.plan;

        // Step 2a: authenticate (secure boot) before anything is copied.
        if cfg.verify_auth {
            if let Some(tag) = entry.auth_tag {
                let key =
                    platform_key.ok_or_else(|| TrustliteError::AuthFailed(plan.name.clone()))?;
                let expected = hmac_sha256(&key, &entry.code);
                if !trustlite_crypto::ct_eq(&expected, &tag) {
                    return Err(TrustliteError::AuthFailed(plan.name.clone()));
                }
                auth_words += entry.code.len().div_ceil(4) as u64;
            }
        }

        // Step 2a': A/B slot decision — consult the retained update
        // block (if any) and validate the staged image; any doubt falls
        // back to the PROM image authenticated above, so a device can
        // never end up without a bootable slot.
        let choice = crate::update::boot_decision(
            &mut machine.sys,
            plan.tt_index,
            &entry.code,
            plan.code_size,
        );
        if choice.staged {
            report.staged_boots.push(plan.name.clone());
        }
        if let Some(v) = choice.rollback {
            report.rollbacks.push((plan.name.clone(), v));
        }

        // Step 2b: copy the chosen image into its SRAM region. With an
        // update block in play the rest of the region is zero-filled so
        // a slot switch never leaves bytes of the other image behind
        // (the measurement covers the zero-padded region).
        let copy_words = if choice.update_active {
            plan.code_size.div_ceil(4) as usize
        } else {
            choice.code.len().div_ceil(4)
        };
        for i in 0..copy_words {
            let mut w = [0u8; 4];
            let at = 4 * i;
            if at < choice.code.len() {
                let chunk = &choice.code[at..choice.code.len().min(at + 4)];
                w[..chunk.len()].copy_from_slice(chunk);
            }
            machine
                .sys
                .hw_write32(entry.dst_base + at as u32, u32::from_le_bytes(w))
                .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
            report.words_copied += 1;
        }

        // Step 2c: static initialization — fabricate the initial resume
        // frame so the first continue() lands in `main` with a clean
        // register file (the paper's "setting up its stack, instruction
        // pointer"). Frame top-down: r7..r0, flags (IE set), main.
        let stack_top = plan.stack_top();
        let saved_sp = stack_top - 4 * INITIAL_FRAME_WORDS;
        let mut frame = [0u32; INITIAL_FRAME_WORDS as usize];
        frame[8] = 1; // flags word at saved_sp + 32: IE = 1
        frame[9] = entry.main; // return ip at saved_sp + 36
        for (i, w) in frame.iter().enumerate() {
            machine
                .sys
                .hw_write32(saved_sp + 4 * i as u32, *w)
                .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
        }

        // Step 2d: measurement (root of trust for attestation). The
        // whole protection region is measured (image zero-padded), so any
        // party that can read the region can recompute the digest.
        if entry.measured {
            let digest = crate::attest::measure_region(&choice.code, plan.code_size);
            for (i, chunk) in digest.chunks(4).enumerate() {
                let w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                machine
                    .sys
                    .hw_write32(plan.measure_slot + 4 * i as u32, w)
                    .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
            }
            report.measured_bytes += choice.code.len() as u64;
        }

        // Populate the Trustlet Table row.
        trustlite_cpu::ttable::write_row(
            &mut machine.sys,
            layout::tt_base(),
            plan.tt_index,
            &TrustletRow {
                id: plan.id,
                code_start: plan.code_base,
                code_end: plan.code_end(),
                saved_sp,
            },
        )
        .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;

        report.trustlets.push(plan.name.clone());
    }

    // Step 4 begins here with the OS load (Figure 5: "load&launch OS"):
    // copy the OS image into its SRAM region.
    for (i, chunk) in os.image.bytes.chunks(4).enumerate() {
        let mut w = [0u8; 4];
        w[..chunk.len()].copy_from_slice(chunk);
        machine
            .sys
            .hw_write32(os.image.base + 4 * i as u32, u32::from_le_bytes(w))
            .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
        report.words_copied += 1;
    }

    // Step 3: program the MPU.
    program_mpu(machine, os, trustlets, shared, &mut report)?;

    // Interrupt descriptor table and OS stack cell.
    for &(vector, handler) in &os.idt {
        machine
            .sys
            .hw_write32(
                layout::idt_base() + 4 * (vector as u32 % vectors::IDT_ENTRIES),
                handler,
            )
            .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
    }
    machine
        .sys
        .hw_write32(layout::os_sp_cell(), os.stack_top)
        .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;

    // Hardware configuration (CSRs the loader programs and locks).
    machine.hw.secure_exceptions = cfg.secure_exceptions;
    machine.hw.idt_base = layout::idt_base();
    machine.hw.os_sp_cell = layout::os_sp_cell();
    machine.hw.os_region = (os.image.base, os.image.base + os.image.len());
    machine.hw.tt_base = layout::tt_base();
    machine.hw.tt_count = trustlets.len() as u32;

    // Step 4: launch the OS.
    machine.regs.ip = os.entry;
    machine.prev_ip = os.entry;
    machine.regs.sp = os.stack_top;

    report.mpu_writes = machine.sys.mpu.write_count();
    report.regions_programmed = (report.mpu_writes / 3) as usize;
    report.estimated_cycles = report.words_copied
        + report.mpu_writes
        + report.measured_bytes / 4
        + 2 * entries.len() as u64;

    // Telemetry: one event per Figure 5 phase on the estimated-cycle
    // timeline (loader work is host-side, so operation counts stand in
    // for cycles), plus the loader metrics.
    let obs = &mut machine.sys.obs;
    if obs.active() {
        let n = entries.len() as u64;
        use trustlite_obs::LoaderStage;
        let phases: [(LoaderStage, u64); 7] = [
            (LoaderStage::Reset, 1),
            (LoaderStage::Authenticate, auth_words),
            (
                LoaderStage::CopyImages,
                report.words_copied + u64::from(INITIAL_FRAME_WORDS) * n,
            ),
            (LoaderStage::Measure, report.measured_bytes / 4),
            (LoaderStage::ProgramMpu, report.mpu_writes),
            (LoaderStage::ConfigTables, n + os.idt.len() as u64 + 1),
            (LoaderStage::Launch, 1),
        ];
        let mut t = 0u64;
        for (phase, ops) in phases {
            obs.emit(crate::Event::LoaderPhase {
                start: t,
                phase,
                ops,
            });
            obs.metrics
                .add(&format!("loader.{}.ops", phase.name()), ops);
            t += ops.max(1);
        }
        obs.metrics.inc("loader.runs");
        // Update-slot accounting (emitted only when an update was in
        // play, so plain boots keep their exact counter set).
        if !report.staged_boots.is_empty() {
            obs.metrics
                .add("loader.staged_boots", report.staged_boots.len() as u64);
        }
        if !report.rollbacks.is_empty() {
            obs.metrics
                .add("loader.rollbacks", report.rollbacks.len() as u64);
            for (_, v) in &report.rollbacks {
                obs.metrics.inc(&format!("loader.rollback.{}", v.label()));
            }
        }
        obs.metrics
            .observe("loader.estimated_cycles", report.estimated_cycles);
    }
    Ok(report)
}

/// Builds and programs the complete EA-MPU rule set for the platform
/// policy (the executable form of the paper's Figure 3 matrix).
fn program_mpu(
    machine: &mut Machine,
    os: &OsSpec,
    trustlets: &[TrustletSpec],
    shared: &[SharedSpec],
    report: &mut LoaderReport,
) -> Result<(), TrustliteError> {
    let mut rules: Vec<(Option<String>, RuleSlot)> = Vec::new();
    let enabled = |start: u32, end: u32, perms: Perms, subject: Subject| RuleSlot {
        start,
        end,
        perms,
        subject,
        enabled: true,
        locked: false,
    };

    // Slot 0: OS code — executable and readable by anyone (the OS is
    // untrusted; its entry discipline protects nothing). This slot also
    // *defines* the OS subject region.
    let os_slot = rules.len();
    rules.push((
        None,
        enabled(
            os.image.base,
            os.image.base + os.image.len(),
            Perms::RX,
            Subject::Any,
        ),
    ));
    // OS data + stack: rw for OS code only.
    rules.push((
        None,
        enabled(
            os.data_base,
            os.data_base + os.data_size,
            Perms::RW,
            Subject::Region(os_slot as u8),
        ),
    ));
    // System tables (IDT, SP cell, Trustlet Table, measurements): readable
    // by everyone, writable by no one (hardware updates bypass the MPU).
    rules.push((
        None,
        enabled(
            map::SRAM_BASE,
            map::SRAM_BASE + layout::SYS_TABLES_SIZE,
            Perms::R,
            Subject::Any,
        ),
    ));
    // The MPU's own register window: readable so tasks can inspect the
    // policy (local attestation), never writable — this is the lock of
    // Section 3.3/3.5.
    rules.push((
        None,
        enabled(
            map::MPU_MMIO_BASE,
            map::MPU_MMIO_BASE + map::MPU_MMIO_SIZE,
            Perms::R,
            Subject::Any,
        ),
    ));
    // External DRAM: untrusted bulk memory, rwx for everyone.
    rules.push((
        None,
        enabled(
            map::DRAM_BASE,
            map::DRAM_BASE + map::DRAM_SIZE,
            Perms::RWX,
            Subject::Any,
        ),
    ));
    // Peripherals the OS drives.
    for g in &os.peripherals {
        rules.push((
            None,
            enabled(
                g.base,
                g.base + g.size,
                g.perms,
                Subject::Region(os_slot as u8),
            ),
        ));
    }

    // Per-trustlet rules. First pass: code-region (subject) slots.
    let mut code_slot: BTreeMap<&str, usize> = BTreeMap::new();
    for spec in trustlets {
        let plan = &spec.plan;
        let slot = rules.len();
        code_slot.insert(plan.name.as_str(), slot);
        rules.push((
            Some(plan.name.clone()),
            enabled(
                plan.code_base,
                plan.code_end(),
                Perms::RX,
                Subject::Region(slot as u8),
            ),
        ));
    }
    // Second pass: object rules referencing the subject slots.
    for spec in trustlets {
        let plan = &spec.plan;
        let me = Subject::Region(code_slot[plan.name.as_str()] as u8);
        let mut my_rules = vec![code_slot[plan.name.as_str()]];
        let mut push = |rules: &mut Vec<(Option<String>, RuleSlot)>, r: RuleSlot| {
            my_rules.push(rules.len());
            rules.push((Some(plan.name.clone()), r));
        };
        // Entry vector: executable by anyone.
        push(
            &mut rules,
            enabled(
                plan.code_base,
                plan.code_base + plan.entry_len,
                Perms::X,
                Subject::Any,
            ),
        );
        // Public code: readable by anyone (peer inspection).
        if spec.options.public_code {
            push(
                &mut rules,
                enabled(plan.code_base, plan.code_end(), Perms::R, Subject::Any),
            );
        }
        // Private data + stack (allocated adjacently): rw for self.
        push(
            &mut rules,
            enabled(plan.data_base, plan.stack_top(), Perms::RW, me),
        );
        // The trustlet's own Trustlet Table saved-SP slot: writable by the
        // trustlet itself so it can publish its stack pointer before a
        // voluntary IPC transfer (Figure 6's save-state()); everyone else
        // only reads the table.
        push(
            &mut rules,
            enabled(plan.sp_slot, plan.sp_slot + 4, Perms::W, me),
        );
        // Peripheral grants.
        for g in &spec.options.peripherals {
            push(&mut rules, enabled(g.base, g.base + g.size, g.perms, me));
        }
        // Shared regions.
        for (name, perms) in &spec.options.shared {
            let region = shared
                .iter()
                .find(|s| &s.name == name)
                .ok_or_else(|| TrustliteError::UnknownTrustlet(name.clone()))?;
            push(
                &mut rules,
                enabled(region.base, region.base + region.size, *perms, me),
            );
        }
        // Field update: another trustlet may write this code region.
        if let Some(updater) = &spec.options.code_writable_by {
            let slot = *code_slot
                .get(updater.as_str())
                .ok_or_else(|| TrustliteError::UnknownTrustlet(updater.clone()))?;
            push(
                &mut rules,
                enabled(
                    plan.code_base,
                    plan.code_end(),
                    Perms::W,
                    Subject::Region(slot as u8),
                ),
            );
        }
        report.rule_map.insert(plan.name.clone(), my_rules);
    }

    if rules.len() > machine.sys.mpu.slot_count() {
        return Err(TrustliteError::OutOfMpuSlots {
            needed: rules.len(),
            available: machine.sys.mpu.slot_count(),
        });
    }
    for (i, (_, rule)) in rules.iter().enumerate() {
        machine.sys.mpu.set_rule(i, *rule)?;
    }
    // Hardware trustlets: lock their slots until reset (Section 3.6).
    for spec in trustlets {
        if spec.options.lock_rules {
            for &slot in &report.rule_map[&spec.plan.name] {
                machine.sys.mpu.lock_slot(slot)?;
            }
        }
    }
    Ok(())
}
