//! The simulated TrustLite platform (Figure 1) and its builder.

use std::collections::BTreeMap;

use trustlite_cpu::{Machine, RunExit, SystemBus};
use trustlite_isa::{Asm, Image};
use trustlite_mem::{map, Bus, Ram, Rom};
use trustlite_mpu::EaMpu;
use trustlite_periph::{CryptoAccel, KeyStore, Rng, Timer, Uart};

use crate::error::TrustliteError;
use crate::layout::{self, Layout, MAX_TRUSTLETS};
use crate::loader::{self, LoaderConfig, LoaderReport};
use crate::prom::{self, PromEntry};
use crate::runtime::TrustletProgram;
use crate::spec::{OsSpec, SharedSpec, TrustletOptions, TrustletPlan, TrustletSpec};

/// Interrupt line assigned to the platform timer.
pub const TIMER_IRQ_LINE: u8 = 0;

/// An OS program under construction (data/stack addresses pre-assigned).
pub struct OsProgram {
    /// The underlying assembler (positioned at the OS code base).
    pub asm: Asm,
    /// The OS data region base.
    pub data_base: u32,
    /// The OS data region size.
    pub data_size: u32,
    /// The OS stack top.
    pub stack_top: u32,
    reserved: u32,
}

impl OsProgram {
    /// Finalizes the OS image. User code must define the label `main`.
    pub fn finish(self) -> Result<Image, TrustliteError> {
        let img = self.asm.assemble()?;
        if img.len() > self.reserved {
            return Err(TrustliteError::ImageTooLarge {
                name: "os".to_string(),
                reserved: self.reserved,
                actual: img.len(),
            });
        }
        if img.symbol("main").is_none() {
            return Err(TrustliteError::Asm(
                trustlite_isa::builder::AsmError::UndefinedLabel("main".to_string()),
            ));
        }
        Ok(img)
    }
}

/// Builds a complete TrustLite platform.
pub struct PlatformBuilder {
    sram_size: u32,
    mpu_slots: usize,
    secure_exceptions: bool,
    verify_auth: bool,
    platform_key: Option<[u8; 32]>,
    layout: Layout,
    trustlets: Vec<TrustletSpec>,
    shared: Vec<SharedSpec>,
    os: Option<OsSpec>,
    os_reserved: Option<(u32, u32)>,  // (code_base, code_size)
    os_geom: Option<(u32, u32, u32)>, // (data_base, data_size, stack_top)
    os_periphs: Vec<crate::spec::PeriphGrant>,
    uart_irq_line: Option<u8>,
    rng_seed: u64,
    telemetry: trustlite_obs::ObsLevel,
    next_tt: u32,
}

impl Default for PlatformBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PlatformBuilder {
    /// Creates a builder with the reference memory map.
    pub fn new() -> Self {
        PlatformBuilder {
            sram_size: map::SRAM_SIZE,
            mpu_slots: 32,
            secure_exceptions: true,
            verify_auth: true,
            platform_key: None,
            layout: Layout::new(map::SRAM_SIZE),
            trustlets: Vec::new(),
            shared: Vec::new(),
            os: None,
            os_reserved: None,
            os_geom: None,
            os_periphs: Vec::new(),
            uart_irq_line: None,
            rng_seed: 0x7457_117e,
            telemetry: trustlite_obs::ObsLevel::Off,
            next_tt: 0,
        }
    }

    /// Sets the telemetry capture level (default off). Setting it here
    /// rather than on the built machine also captures the Secure Loader's
    /// boot-phase events and metrics.
    pub fn telemetry(&mut self, level: trustlite_obs::ObsLevel) -> &mut Self {
        self.telemetry = level;
        self
    }

    /// Sets the number of EA-MPU rule slots (hardware instantiation
    /// choice; the paper reports timing closure up to 32 regions).
    pub fn mpu_slots(&mut self, slots: usize) -> &mut Self {
        self.mpu_slots = slots;
        self
    }

    /// Enables or disables the secure exception engine (minimal vs. full
    /// instantiation, Section 3.6).
    pub fn secure_exceptions(&mut self, on: bool) -> &mut Self {
        self.secure_exceptions = on;
        self
    }

    /// Provisions the platform key (key-store slot 0) used for secure
    /// boot and remote attestation.
    pub fn platform_key(&mut self, key: [u8; 32]) -> &mut Self {
        self.platform_key = Some(key);
        self
    }

    /// Disables secure-boot tag verification (for experiments).
    pub fn verify_auth(&mut self, on: bool) -> &mut Self {
        self.verify_auth = on;
        self
    }

    /// Makes the UART raise a receive interrupt on `line` (default:
    /// polled only).
    pub fn uart_irq(&mut self, line: u8) -> &mut Self {
        self.uart_irq_line = Some(line);
        self
    }

    /// Seeds the RNG peripheral (determinism knob for tests/benches).
    pub fn rng_seed(&mut self, seed: u64) -> &mut Self {
        self.rng_seed = seed;
        self
    }

    /// Grants the OS a peripheral MMIO window (the untrusted peripherals
    /// it is allowed to drive).
    pub fn grant_os_peripheral(&mut self, grant: crate::spec::PeriphGrant) -> &mut Self {
        self.os_periphs.push(grant);
        self
    }

    /// Reserves memory for a trustlet and returns its plan. Programs are
    /// assembled *against* the plan (it fixes all absolute addresses).
    pub fn plan_trustlet(
        &mut self,
        name: &str,
        code_size: u32,
        data_size: u32,
        stack_size: u32,
    ) -> TrustletPlan {
        assert!(self.next_tt < MAX_TRUSTLETS, "too many trustlets");
        let code_base = self.layout.alloc(code_size, 16).expect("SRAM exhausted");
        // Data and stack are allocated adjacently so one MPU rule covers
        // both (the paper's trick for conserving region registers).
        let data_base = self
            .layout
            .alloc(data_size + stack_size, 16)
            .expect("SRAM exhausted");
        let tt_index = self.next_tt;
        self.next_tt += 1;
        TrustletPlan {
            name: name.to_string(),
            id: 0xA0 + tt_index,
            tt_index,
            code_base,
            code_size,
            data_base,
            data_size,
            stack_base: data_base + data_size,
            stack_size,
            entry_len: 8,
            sp_slot: layout::tt_sp_slot(tt_index),
            measure_slot: layout::measure_row(tt_index),
        }
    }

    /// Allocates a named shared-memory region.
    pub fn plan_shared(&mut self, name: &str, size: u32) -> SharedSpec {
        let base = self.layout.alloc(size, 16).expect("SRAM exhausted");
        let spec = SharedSpec {
            name: name.to_string(),
            base,
            size,
        };
        self.shared.push(spec.clone());
        spec
    }

    /// Registers an assembled trustlet. The image must sit exactly at the
    /// plan's code base and define a `main` symbol.
    pub fn add_trustlet(
        &mut self,
        plan: &TrustletPlan,
        image: Image,
        options: TrustletOptions,
    ) -> Result<(), TrustliteError> {
        if self.trustlets.iter().any(|t| t.plan.name == plan.name) {
            return Err(TrustliteError::DuplicateTrustlet(plan.name.clone()));
        }
        if image.base != plan.code_base {
            return Err(TrustliteError::PlanMismatch {
                name: plan.name.clone(),
                expected: plan.code_base,
                actual: image.base,
            });
        }
        if image.len() > plan.code_size {
            return Err(TrustliteError::ImageTooLarge {
                name: plan.name.clone(),
                reserved: plan.code_size,
                actual: image.len(),
            });
        }
        let main = image.symbol("main").ok_or_else(|| {
            TrustliteError::Asm(trustlite_isa::builder::AsmError::UndefinedLabel(
                "main".to_string(),
            ))
        })?;
        self.trustlets.push(TrustletSpec {
            plan: plan.clone(),
            image,
            main,
            options,
        });
        Ok(())
    }

    /// Starts the OS program, reserving `code_size` bytes of code and the
    /// given data/stack sizes.
    pub fn begin_os_sized(&mut self, code_size: u32, data_size: u32, stack_size: u32) -> OsProgram {
        let code_base = self.layout.alloc(code_size, 16).expect("SRAM exhausted");
        let data_base = self
            .layout
            .alloc(data_size + stack_size, 16)
            .expect("SRAM exhausted");
        self.os_reserved = Some((code_base, code_size));
        self.os_geom = Some((data_base, data_size, data_base + data_size + stack_size));
        OsProgram {
            asm: Asm::new(code_base),
            data_base,
            data_size,
            stack_top: data_base + data_size + stack_size,
            reserved: code_size,
        }
    }

    /// Starts the OS program with default sizes (4 KiB code, 2 KiB data,
    /// 2 KiB stack).
    pub fn begin_os(&mut self) -> OsProgram {
        self.begin_os_sized(0x1000, 0x800, 0x800)
    }

    /// Registers the finished OS image. `idt` maps vectors to symbol
    /// names defined in the image. The data/stack geometry recorded by
    /// [`PlatformBuilder::begin_os`] is attached automatically.
    pub fn set_os(&mut self, image: Image, idt: &[(u8, &str)]) -> &mut Self {
        let entry = image.expect_symbol("main");
        if let Some((code_base, _)) = self.os_reserved {
            debug_assert_eq!(image.base, code_base);
        }
        let handlers: Vec<(u8, u32)> = idt
            .iter()
            .map(|(v, sym)| (*v, image.expect_symbol(sym)))
            .collect();
        let (data_base, data_size, stack_top) =
            self.os_geom.unwrap_or((image.base + image.len(), 0, 0));
        self.os = Some(OsSpec {
            entry,
            idt: handlers,
            data_base,
            data_size: stack_top.saturating_sub(data_base).max(data_size),
            stack_top,
            image,
            peripherals: self.os_periphs.clone(),
        });
        self
    }

    /// Builds the SoC, stages PROM, runs the Secure Loader and returns the
    /// ready platform with the OS about to execute.
    pub fn build(&mut self) -> Result<Platform, TrustliteError> {
        let os = self.os.clone().ok_or(TrustliteError::MissingOs)?;

        // Assemble the SoC (Figure 1).
        let mut bus = Bus::new();
        bus.map(map::PROM_BASE, Box::new(Rom::new(map::PROM_SIZE)))?;
        bus.map(map::SRAM_BASE, Box::new(Ram::new("sram", self.sram_size)))?;
        // Retained RAM: survives warm resets (Platform::reset never
        // touches memory), zeroed only here at cold boot. No MPU rule is
        // ever programmed for it, so software cannot reach it — only the
        // Secure Loader and the host, via the hardware access paths.
        bus.map(
            map::RETRAM_BASE,
            Box::new(Ram::new("retram", map::RETRAM_SIZE)),
        )?;
        bus.map(map::DRAM_BASE, Box::new(Ram::new("dram", map::DRAM_SIZE)))?;
        bus.map(map::TIMER_MMIO_BASE, Box::new(Timer::new(TIMER_IRQ_LINE)))?;
        let uart = match self.uart_irq_line {
            Some(line) => Uart::with_irq(line),
            None => Uart::new(),
        };
        bus.map(map::UART_MMIO_BASE, Box::new(uart))?;
        bus.map(map::CRYPTO_MMIO_BASE, Box::new(CryptoAccel::new()))?;
        bus.map(map::RNG_MMIO_BASE, Box::new(Rng::new(self.rng_seed)))?;
        let mut keystore = KeyStore::new(4);
        if let Some(key) = self.platform_key {
            keystore.provision(0, key).expect("slot 0 exists");
        }
        bus.map(map::KEYSTORE_MMIO_BASE, Box::new(keystore))?;

        // Stage the firmware table into PROM ("factory programming").
        let entries: Vec<PromEntry> = self
            .trustlets
            .iter()
            .map(|t| PromEntry {
                id: t.plan.id,
                dst_base: t.plan.code_base,
                code: t.image.bytes.clone(),
                entry_len: t.plan.entry_len,
                measured: t.options.measured,
                auth_tag: t.options.auth_tag,
                main: t.main,
            })
            .collect();
        let blob = prom::stage(&entries);
        if !bus.host_load(map::PROM_BASE + loader::FW_TABLE_OFF, &blob) {
            return Err(TrustliteError::BadFirmware(
                "firmware exceeds PROM".to_string(),
            ));
        }

        let mpu = EaMpu::new(self.mpu_slots);
        let mut sys = SystemBus::new(bus, mpu, Some(map::MPU_MMIO_BASE));
        sys.obs.set_level(self.telemetry);
        let mut machine = Machine::new(sys, os.entry);

        let report = loader::run(
            &mut machine,
            &os,
            &self.trustlets,
            &self.shared,
            LoaderConfig {
                secure_exceptions: self.secure_exceptions,
                verify_auth: self.verify_auth,
                platform_key_slot: 0,
            },
        )?;

        // Register cycle-attribution domains: the OS code region and each
        // trustlet's code region. Attribution is keyed on the retiring
        // instruction pointer, so code ranges are all that is needed.
        let obs = &mut machine.sys.obs;
        obs.attr
            .register("os", &[(os.image.base, os.image.base + os.image.len())]);
        for t in &self.trustlets {
            obs.attr.register(
                &t.plan.name,
                &[(t.plan.code_base, t.plan.code_base + t.plan.code_size)],
            );
        }

        let plans = self
            .trustlets
            .iter()
            .map(|t| (t.plan.name.clone(), t.plan.clone()))
            .collect();
        Ok(Platform {
            machine,
            plans,
            shared: self.shared.clone(),
            os,
            report,
            trustlet_images: self
                .trustlets
                .iter()
                .map(|t| (t.plan.name.clone(), t.image.clone()))
                .collect(),
            specs: self.trustlets.clone(),
            loader_cfg: LoaderConfig {
                secure_exceptions: self.secure_exceptions,
                verify_auth: self.verify_auth,
                platform_key_slot: 0,
            },
        })
    }
}

/// A booted platform: the machine is stopped at the OS entry point.
pub struct Platform {
    /// The simulated machine.
    pub machine: Machine,
    /// Trustlet plans by name.
    pub plans: BTreeMap<String, TrustletPlan>,
    /// Shared regions.
    pub shared: Vec<SharedSpec>,
    /// The OS spec.
    pub os: OsSpec,
    /// What the Secure Loader did.
    pub report: LoaderReport,
    trustlet_images: BTreeMap<String, Image>,
    specs: Vec<TrustletSpec>,
    loader_cfg: LoaderConfig,
}

impl Platform {
    /// Performs a warm platform reset (Section 3.5): the register file is
    /// cleared and the Secure Loader runs again from PROM, re-copying
    /// images and *re-establishing* the protection rules. Volatile memory
    /// is deliberately **not** wiped — that is the paper's fast-startup
    /// point: stale secrets stay in SRAM but become unreachable the
    /// moment the rules are back, before any untrusted code runs.
    pub fn reset(&mut self) -> Result<&LoaderReport, TrustliteError> {
        self.machine.halted = None;
        self.machine.exc_log.clear();
        self.machine.cycles = 0;
        self.machine.instret = 0;
        self.machine.regs = trustlite_cpu::RegFile::default();
        // Telemetry survives the reset warm: level, ring capacity and
        // attribution domains stay; captured data is dropped.
        self.machine.sys.obs.clear();
        self.report = loader::run(
            &mut self.machine,
            &self.os,
            &self.specs,
            &self.shared,
            self.loader_cfg,
        )?;
        Ok(&self.report)
    }

    /// Deep-copies the booted platform for fleet fan-out. The Secure
    /// Loader does **not** run again: the child starts from the parent's
    /// exact post-boot state (registers, SRAM/DRAM contents, MPU rules
    /// with their lock bits *and* epoch counters, pending interrupts,
    /// trustlet table). Apply [`Platform::diverge`] afterwards to give
    /// the clone its own identity.
    pub fn fork(&self) -> Result<Platform, TrustliteError> {
        Ok(Platform {
            machine: self.machine.snapshot().map_err(TrustliteError::Snapshot)?,
            plans: self.plans.clone(),
            shared: self.shared.clone(),
            os: self.os.clone(),
            report: self.report.clone(),
            trustlet_images: self.trustlet_images.clone(),
            specs: self.specs.clone(),
            loader_cfg: self.loader_cfg,
        })
    }

    /// Gives a forked platform its own identity: reseeds the RNG
    /// peripheral, reprovisions the platform key (key-store slot 0, the
    /// secure-boot/attestation key) and publishes `device_id` in the
    /// top word of DRAM ([`Platform::DEVICE_ID_ADDR`]) where device
    /// software can read it. Telemetry captured before the fork (the
    /// shared boot trace) is dropped so per-device metrics count only
    /// post-fork work; capture level and attribution domains survive.
    pub fn diverge(
        &mut self,
        device_id: u32,
        rng_seed: u64,
        device_key: [u8; 32],
    ) -> Result<(), TrustliteError> {
        let bus = &mut self.machine.sys.bus;
        bus.device_mut::<Rng>("rng")
            .ok_or(TrustliteError::Snapshot("rng"))?
            .reseed(rng_seed);
        bus.device_mut::<KeyStore>("keystore")
            .ok_or(TrustliteError::Snapshot("keystore"))?
            .provision(0, device_key)
            .map_err(|_| TrustliteError::Snapshot("keystore"))?;
        self.machine
            .sys
            .hw_write32(Self::DEVICE_ID_ADDR, device_id)
            .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
        self.machine.sys.obs.clear();
        Ok(())
    }

    /// Where [`Platform::diverge`] publishes the device id: the last
    /// word of DRAM, outside every allocator-managed SRAM region.
    pub const DEVICE_ID_ADDR: u32 = map::DRAM_BASE + map::DRAM_SIZE - 4;

    /// Switches the memory devices (PROM, SRAM, DRAM) between sparse
    /// copy-on-write backing (the default) and dense reference backing
    /// (every page materialized, deep-copy snapshots — the pre-sparse
    /// behaviour). Contents are unchanged; the switch is architecturally
    /// invisible (it goes through `device_mut`, so `host_gen` bumps and
    /// derived caches re-validate, exactly like any host-side touch).
    /// Dense/sparse fleets must produce byte-identical digests — CI's
    /// `fork-identity` job holds this line.
    pub fn set_dense_memory(&mut self, dense: bool) -> Result<(), TrustliteError> {
        let bus = &mut self.machine.sys.bus;
        bus.device_mut::<Rom>("prom")
            .ok_or(TrustliteError::Snapshot("prom"))?
            .set_dense(dense);
        bus.device_mut::<Ram>("sram")
            .ok_or(TrustliteError::Snapshot("sram"))?
            .set_dense(dense);
        bus.device_mut::<Ram>("retram")
            .ok_or(TrustliteError::Snapshot("retram"))?
            .set_dense(dense);
        bus.device_mut::<Ram>("dram")
            .ok_or(TrustliteError::Snapshot("dram"))?
            .set_dense(dense);
        Ok(())
    }

    /// Switches the CPU's predecode and superblock tables between
    /// `Arc`-shared snapshots (the default: fork is an Arc bump over
    /// resident chunks, mutation clones only the touched chunk) and the
    /// private reference mode (snapshots deep-copy every resident
    /// chunk — the pre-sharing behaviour). Architecturally invisible
    /// either way; shared/private fleets must produce byte-identical
    /// digests — CI's `fork-identity` job holds this line.
    pub fn set_private_code_caches(&mut self, private: bool) {
        self.machine.sys.set_private_code_caches(private);
    }

    /// Host-side materialized bytes across the platform's devices (see
    /// `trustlite_mem::Device::resident_bytes`). Diagnostic only.
    pub fn resident_bytes(&self) -> u64 {
        self.machine.sys.resident_bytes()
    }

    /// Host-side bytes backing the CPU's predecode and superblock
    /// tables, amortized over snapshot sharers (see
    /// `SystemBus::code_cache_bytes`). Diagnostic only.
    pub fn code_cache_bytes(&self) -> u64 {
        self.machine.sys.code_cache_bytes()
    }

    /// Total addressable bytes across the platform's devices.
    pub fn addressable_bytes(&self) -> u64 {
        self.machine.sys.addressable_bytes()
    }

    /// The full trustlet specs the platform was built from (used by the
    /// policy auditor).
    pub fn specs(&self) -> &[crate::spec::TrustletSpec] {
        &self.specs
    }

    /// Looks up a trustlet's plan.
    pub fn plan(&self, name: &str) -> Result<&TrustletPlan, TrustliteError> {
        self.plans
            .get(name)
            .ok_or_else(|| TrustliteError::UnknownTrustlet(name.to_string()))
    }

    /// Looks up a trustlet's loaded image.
    pub fn image(&self, name: &str) -> Result<&Image, TrustliteError> {
        self.trustlet_images
            .get(name)
            .ok_or_else(|| TrustliteError::UnknownTrustlet(name.to_string()))
    }

    /// Host-side analogue of the OS invoking a trustlet's `continue()`
    /// entry (a hardware-style control transfer; tests and examples use
    /// it to activate a trustlet without scripting the OS).
    pub fn start_trustlet(&mut self, name: &str) -> Result<(), TrustliteError> {
        let entry = self.plan(name)?.continue_entry();
        self.machine.regs.ip = entry;
        self.machine.prev_ip = entry;
        Ok(())
    }

    /// Runs the machine for at most `max_steps`.
    pub fn run(&mut self, max_steps: u64) -> RunExit {
        self.machine.run(max_steps)
    }

    /// Drains the UART output.
    pub fn uart_output(&mut self) -> Vec<u8> {
        self.machine
            .sys
            .bus
            .device_mut::<Uart>("uart")
            .map(|u| u.take_output())
            .unwrap_or_default()
    }

    /// Reads the loader-recorded measurement of a trustlet.
    pub fn measurement(&mut self, name: &str) -> Result<[u8; 32], TrustliteError> {
        let slot = self.plan(name)?.measure_slot;
        let mut out = [0u8; 32];
        for i in 0..8 {
            let w = self
                .machine
                .sys
                .hw_read32(slot + 4 * i)
                .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
            out[4 * i as usize..4 * i as usize + 4].copy_from_slice(&w.to_le_bytes());
        }
        Ok(out)
    }

    /// Fault-injection hook: flips the low bit of the first word of
    /// `name`'s row in the measurement table, modeling an adversary that
    /// altered the recorded measurement (or the code it summarizes)
    /// after load. The verifier must reject this device's reports on
    /// measurement mismatch. A warm [`Platform::reset`] heals the
    /// tampering — the Secure Loader re-measures from PROM, which is
    /// the paper's point about re-establishing trust from ROM.
    pub fn tamper_measurement(&mut self, name: &str) -> Result<(), TrustliteError> {
        let slot = self.plan(name)?.measure_slot;
        let word = self
            .machine
            .sys
            .hw_read32(slot)
            .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
        self.machine
            .sys
            .hw_write32(slot, word ^ 1)
            .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
        Ok(())
    }

    /// Stages a new image (slot B) for trustlet `name`: writes the
    /// bytes into the trustlet's DRAM staging area and arms the
    /// retained update block (state `Written`, CRC-32 guard, monotonic
    /// version word, attempt counter cleared). Takes effect at the next
    /// warm reset, when the Secure Loader consults the block; the
    /// anti-rollback floor and retained boot log survive restaging.
    pub fn stage_update(
        &mut self,
        name: &str,
        code: &[u8],
        version: u32,
    ) -> Result<(), TrustliteError> {
        let plan = self.plan(name)?;
        let (tt, code_size) = (plan.tt_index, plan.code_size);
        if code.is_empty() {
            return Err(TrustliteError::BadFirmware(format!(
                "empty staged image for `{name}`"
            )));
        }
        if code.len() as u32 > code_size || code.len() as u32 > crate::update::STAGING_STRIDE {
            return Err(TrustliteError::ImageTooLarge {
                name: name.to_string(),
                reserved: code_size,
                actual: code.len() as u32,
            });
        }
        crate::update::write_staged(&mut self.machine.sys, tt, code);
        let mut block = crate::update::read_block(&mut self.machine.sys, tt).unwrap_or_default();
        block.state = crate::update::SlotState::Written;
        block.version = version;
        block.staged_len = code.len() as u32;
        block.staged_crc = trustlite_crypto::crc32(code);
        block.attempts = 0;
        crate::update::write_block(&mut self.machine.sys, tt, &block);
        Ok(())
    }

    /// Commits the staged image: state `Confirmed`, the anti-rollback
    /// floor raised to its version (monotonic — never lowered), the
    /// attempt counter cleared, and a `committed` entry retained in the
    /// boot log. The orchestrator calls this only after the commit gate
    /// (an *attested* re-measurement of the rebooted device) passed.
    pub fn confirm_update(&mut self, name: &str) -> Result<(), TrustliteError> {
        let tt = self.plan(name)?.tt_index;
        let mut block = crate::update::read_block(&mut self.machine.sys, tt)
            .ok_or_else(|| TrustliteError::BadFirmware(format!("no update block for `{name}`")))?;
        block.state = crate::update::SlotState::Confirmed;
        block.rollback_min = block.rollback_min.max(block.version);
        let attempts = block.attempts;
        block.attempts = 0;
        block.push_log(1, crate::update::BootVerdict::Committed, attempts);
        crate::update::write_block(&mut self.machine.sys, tt, &block);
        Ok(())
    }

    /// Abandons an in-flight update: state `RolledBack` with a
    /// `forced_rollback` log entry, so the next reset boots slot A. The
    /// orchestrator uses this when the commit gate keeps failing.
    pub fn abandon_update(&mut self, name: &str) -> Result<(), TrustliteError> {
        let tt = self.plan(name)?.tt_index;
        let mut block = crate::update::read_block(&mut self.machine.sys, tt)
            .ok_or_else(|| TrustliteError::BadFirmware(format!("no update block for `{name}`")))?;
        block.state = crate::update::SlotState::RolledBack;
        let attempts = block.attempts;
        block.push_log(0, crate::update::BootVerdict::ForcedRollback, attempts);
        crate::update::write_block(&mut self.machine.sys, tt, &block);
        Ok(())
    }

    /// Reads trustlet `name`'s retained update block (`None` when no
    /// valid block exists — cold state or guard-CRC failure).
    pub fn update_block(
        &mut self,
        name: &str,
    ) -> Result<Option<crate::update::UpdateBlock>, TrustliteError> {
        let tt = self.plan(name)?.tt_index;
        Ok(crate::update::read_block(&mut self.machine.sys, tt))
    }

    /// Fault-injection hook: flips bit `bit` of byte `offset` of the
    /// *staged* image in DRAM without touching the recorded CRC —
    /// modeling decay or an attack on untrusted bulk memory during the
    /// update window. The next boot's CRC check must reject the slot.
    pub fn corrupt_staged(
        &mut self,
        name: &str,
        offset: u32,
        bit: u8,
    ) -> Result<(), TrustliteError> {
        let tt = self.plan(name)?.tt_index;
        let addr = crate::update::staging_base(tt) + (offset & !3);
        let word = self
            .machine
            .sys
            .hw_read32(addr)
            .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
        let flipped = word ^ (1u32 << (8 * (offset & 3) + u32::from(bit & 7)));
        self.machine
            .sys
            .hw_write32(addr, flipped)
            .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
        Ok(())
    }

    /// Fault-injection hook: replays the staged version word back to
    /// the anti-rollback floor (a well-formed but stale update blob, as
    /// a replay adversary would ship). The block's guard CRC is
    /// recomputed — the *content* is valid; only anti-rollback can
    /// reject it at the next boot.
    pub fn replay_stale_version(&mut self, name: &str) -> Result<(), TrustliteError> {
        let tt = self.plan(name)?.tt_index;
        let mut block = crate::update::read_block(&mut self.machine.sys, tt)
            .ok_or_else(|| TrustliteError::BadFirmware(format!("no update block for `{name}`")))?;
        block.version = block.rollback_min;
        crate::update::write_block(&mut self.machine.sys, tt, &block);
        Ok(())
    }

    /// Renders the programmed MPU policy as a Figure 3-style table.
    pub fn access_matrix(&self) -> String {
        let mut out = String::from("slot  object              perms  subject\n");
        for (i, s) in self.machine.sys.mpu.slots().iter().enumerate() {
            if !s.enabled {
                continue;
            }
            let subject = match s.subject {
                trustlite_mpu::Subject::Any => "any".to_string(),
                trustlite_mpu::Subject::Region(r) => format!("region {r}"),
            };
            out.push_str(&format!(
                "{i:>4}  {:#010x}-{:#010x}  {}  {}\n",
                s.start, s.end, s.perms, subject
            ));
        }
        out
    }
}

/// Convenience: a [`TrustletProgram`] pre-positioned for `plan`.
impl TrustletPlan {
    /// Starts assembling this trustlet's program.
    pub fn begin_program(&self) -> TrustletProgram {
        TrustletProgram::new(self)
    }
}
