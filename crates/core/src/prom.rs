//! The PROM firmware table: how trustlets are stored in boot memory.
//!
//! Figure 5 of the paper shows trustlets residing in PROM as meta-data +
//! program code + entries vector, which the Secure Loader parses and loads
//! into SRAM at boot. This module defines that on-flash format:
//!
//! ```text
//! +0   magic "TLFW"
//! +4   entry count
//! +8   first entry
//!
//! entry (32-byte header, then payload):
//!   +0   id
//!   +4   dst_base     (SRAM load address)
//!   +8   code_len     (bytes; payload is padded to a word multiple)
//!   +12  entry_len    (entry vector bytes)
//!   +16  flags        (bit0 measured, bit1 authenticated)
//!   +20  main         (initial entry point, absolute)
//!   +24  reserved
//!   +28  reserved
//!   code bytes [code_len, padded to 4]
//!   auth tag [32 bytes, only if flags bit1]
//! ```

use crate::error::TrustliteError;

/// Magic number at the start of the firmware table ("TLFW", little-endian).
pub const MAGIC: u32 = u32::from_le_bytes(*b"TLFW");

/// Header flag: measure the code at load time.
pub const FLAG_MEASURED: u32 = 1;
/// Header flag: a 32-byte HMAC tag follows the code.
pub const FLAG_AUTHENTICATED: u32 = 2;

/// Size of one entry header in bytes.
pub const HEADER_BYTES: u32 = 32;

/// A parsed firmware entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromEntry {
    /// Trustlet identifier.
    pub id: u32,
    /// SRAM destination base.
    pub dst_base: u32,
    /// Code bytes (unpadded length preserved).
    pub code: Vec<u8>,
    /// Entry vector length in bytes.
    pub entry_len: u32,
    /// Whether the loader must measure this entry.
    pub measured: bool,
    /// Secure-boot tag, if present.
    pub auth_tag: Option<[u8; 32]>,
    /// Initial entry point.
    pub main: u32,
}

fn pad4(n: usize) -> usize {
    (n + 3) & !3
}

/// Serializes firmware entries into the PROM table format.
pub fn stage(entries: &[PromEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        let mut flags = 0u32;
        if e.measured {
            flags |= FLAG_MEASURED;
        }
        if e.auth_tag.is_some() {
            flags |= FLAG_AUTHENTICATED;
        }
        for w in [
            e.id,
            e.dst_base,
            e.code.len() as u32,
            e.entry_len,
            flags,
            e.main,
            0,
            0,
        ] {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&e.code);
        out.resize(pad4(out.len()), 0);
        if let Some(tag) = e.auth_tag {
            out.extend_from_slice(&tag);
        }
    }
    out
}

/// Parses a firmware table from raw PROM bytes.
pub fn parse(bytes: &[u8]) -> Result<Vec<PromEntry>, TrustliteError> {
    let bad = |m: &str| TrustliteError::BadFirmware(m.to_string());
    let word = |off: usize| -> Result<u32, TrustliteError> {
        let s = bytes
            .get(off..off + 4)
            .ok_or_else(|| bad("truncated word"))?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    };
    if word(0)? != MAGIC {
        return Err(bad("bad magic"));
    }
    let count = word(4)? as usize;
    if count > 1024 {
        return Err(bad("implausible entry count"));
    }
    let mut entries = Vec::with_capacity(count);
    let mut off = 8usize;
    for _ in 0..count {
        let id = word(off)?;
        let dst_base = word(off + 4)?;
        let code_len = word(off + 8)? as usize;
        let entry_len = word(off + 12)?;
        let flags = word(off + 16)?;
        let main = word(off + 20)?;
        off += HEADER_BYTES as usize;
        let code = bytes
            .get(off..off + code_len)
            .ok_or_else(|| bad("truncated code payload"))?
            .to_vec();
        off += pad4(code_len);
        let auth_tag = if flags & FLAG_AUTHENTICATED != 0 {
            let tag = bytes
                .get(off..off + 32)
                .ok_or_else(|| bad("truncated auth tag"))?;
            off += 32;
            let mut t = [0u8; 32];
            t.copy_from_slice(tag);
            Some(t)
        } else {
            None
        };
        entries.push(PromEntry {
            id,
            dst_base,
            code,
            entry_len,
            measured: flags & FLAG_MEASURED != 0,
            auth_tag,
            main,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<PromEntry> {
        vec![
            PromEntry {
                id: 0xA,
                dst_base: 0x1000_1000,
                code: vec![1, 2, 3, 4, 5],
                entry_len: 8,
                measured: true,
                auth_tag: None,
                main: 0x1000_1010,
            },
            PromEntry {
                id: 0xB,
                dst_base: 0x1000_2000,
                code: vec![9; 16],
                entry_len: 8,
                measured: false,
                auth_tag: Some([0x77; 32]),
                main: 0x1000_2008,
            },
        ]
    }

    #[test]
    fn stage_parse_roundtrip() {
        let entries = sample();
        let blob = stage(&entries);
        assert_eq!(parse(&blob).unwrap(), entries);
    }

    #[test]
    fn empty_table_roundtrips() {
        let blob = stage(&[]);
        assert_eq!(parse(&blob).unwrap(), Vec::new());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut blob = stage(&sample());
        blob[0] ^= 0xff;
        assert!(matches!(parse(&blob), Err(TrustliteError::BadFirmware(_))));
    }

    #[test]
    fn truncation_rejected() {
        let blob = stage(&sample());
        for cut in [6, 12, 40, blob.len() - 1] {
            assert!(
                matches!(parse(&blob[..cut]), Err(TrustliteError::BadFirmware(_))),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn implausible_count_rejected() {
        let mut blob = stage(&[]);
        blob[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(parse(&blob), Err(TrustliteError::BadFirmware(_))));
    }

    #[test]
    fn odd_length_code_padded_but_preserved() {
        let entries = vec![PromEntry {
            id: 1,
            dst_base: 0,
            code: vec![0xaa; 7],
            entry_len: 4,
            measured: false,
            auth_tag: Some([1; 32]),
            main: 0,
        }];
        let parsed = parse(&stage(&entries)).unwrap();
        assert_eq!(parsed[0].code.len(), 7);
        assert_eq!(parsed[0].auth_tag, Some([1; 32]));
    }
}
