//! Trustlet program scaffolding: entry vectors and the `continue()` /
//! `call()` runtime conventions of Section 4.1.
//!
//! A trustlet's code region starts with its **entry vector** — the only
//! words other tasks are allowed to execute. Slot 0 is the `continue()`
//! entry (resume after preemption), slot 1 the `call()` IPC entry:
//!
//! ```text
//! code_base + 0   jmp __tl_continue
//! code_base + 4   jmp call_entry
//! ```
//!
//! `__tl_continue` restores the stack pointer from the trustlet's
//! Trustlet Table slot as its very first action (the paper notes the
//! window before the restore is closed by the MPU: a nested exception
//! would try to save state through a wrong stack pointer and fault,
//! terminating the trustlet rather than leaking), then pops the state the
//! secure exception engine pushed: `r7..r0`, flags, and finally the
//! return address.
//!
//! IPC is continuation-passing (Figure 6): the *caller* saves its own
//! state in the same frame format and publishes its stack pointer in its
//! table slot, so that the callee — or the OS — can later resume it via
//! its `continue()` entry.

use trustlite_isa::{Asm, Image, Reg};
use trustlite_mem::map;
use trustlite_periph::{crypto_accel, uart};

use crate::error::TrustliteError;
use crate::spec::TrustletPlan;

/// A trustlet program under construction.
///
/// Created from a [`TrustletPlan`]; the entry vector and `continue()`
/// implementation are emitted automatically. User code must define the
/// label `main` (first activation) and may define `call_entry` (IPC
/// entry); an undefined `call_entry` is stubbed with `halt`.
pub struct TrustletProgram {
    /// The underlying assembler, positioned after the runtime prologue.
    pub asm: Asm,
    reserved_size: u32,
    name: String,
}

impl TrustletProgram {
    /// Starts a program for `plan`, emitting the runtime prologue.
    pub fn new(plan: &TrustletPlan) -> Self {
        let mut asm = Asm::new(plan.code_base);
        // Entry vector (the only externally executable words).
        asm.jmp("__tl_continue"); // +0: continue()
        asm.jmp("call_entry"); // +4: call()
        debug_assert_eq!(plan.entry_len, 8);
        // continue(): restore SP from the Trustlet Table slot, then unwind
        // the engine-format frame.
        asm.label("__tl_continue");
        asm.li(Reg::R0, plan.sp_slot);
        asm.lw(Reg::Sp, Reg::R0, 0);
        for r in [
            Reg::R7,
            Reg::R6,
            Reg::R5,
            Reg::R4,
            Reg::R3,
            Reg::R2,
            Reg::R1,
            Reg::R0,
        ] {
            asm.pop(r);
        }
        asm.popf();
        asm.ret();
        TrustletProgram {
            asm,
            reserved_size: plan.code_size,
            name: plan.name.clone(),
        }
    }

    /// Emits a "save state and transfer" sequence (Figure 6's
    /// `save-state()` + jump): builds a `continue()`-compatible frame on
    /// the own stack, publishes the stack pointer in the Trustlet Table
    /// slot, and jumps to `target_abs`.
    ///
    /// Execution resumes at `continuation` (with `r0..r5` restored to
    /// their values at the save; `r6`/`r7` are clobbered by this helper)
    /// when someone invokes this trustlet's `continue()` entry.
    pub fn emit_save_and_invoke(
        &mut self,
        plan: &TrustletPlan,
        continuation: &str,
        target_abs: u32,
    ) {
        let a = &mut self.asm;
        a.la(Reg::R6, continuation);
        a.push(Reg::R6); // return ip
        a.pushf(); // flags
        for r in [
            Reg::R0,
            Reg::R1,
            Reg::R2,
            Reg::R3,
            Reg::R4,
            Reg::R5,
            Reg::R6,
            Reg::R7,
        ] {
            a.push(r); // r7 ends on top, matching the engine frame
        }
        a.li(Reg::R6, plan.sp_slot);
        a.sw(Reg::R6, 0, Reg::Sp);
        a.li(Reg::R6, target_abs);
        a.jr(Reg::R6);
    }

    /// Finalizes the program. Fails if `main` is missing; stubs
    /// `call_entry` with `halt` if the trustlet exposes no IPC entry.
    pub fn finish(mut self) -> Result<Image, TrustliteError> {
        if !self.asm.label_defined("call_entry") {
            self.asm.label("call_entry");
            self.asm.halt();
        }
        if !self.asm.label_defined("main") {
            return Err(TrustliteError::Asm(
                trustlite_isa::builder::AsmError::UndefinedLabel("main".to_string()),
            ));
        }
        let img = self.asm.assemble()?;
        if img.len() > self.reserved_size {
            return Err(TrustliteError::ImageTooLarge {
                name: self.name,
                reserved: self.reserved_size,
                actual: img.len(),
            });
        }
        Ok(img)
    }
}

/// Emits code printing the literal string `s` over the UART.
///
/// Clobbers `r6` and `r7`.
pub fn emit_uart_print(asm: &mut Asm, s: &str) {
    asm.li(Reg::R6, map::UART_MMIO_BASE + uart::regs::TX);
    for b in s.bytes() {
        asm.li(Reg::R7, b as u32);
        asm.sw(Reg::R6, 0, Reg::R7);
    }
}

/// Emits code printing the low byte of `reg` as two hex digits over the
/// UART. Clobbers `r5`, `r6`, `r7`; preserves `reg` unless it is one of
/// those.
pub fn emit_uart_print_hex_byte(asm: &mut Asm, reg: Reg) {
    let nibble = |asm: &mut Asm, shift: u8| {
        asm.shri(Reg::R5, reg, shift);
        asm.andi(Reg::R5, Reg::R5, 0xf);
        // r5 < 10 ? '0' + r5 : 'a' + r5 - 10, branch-free:
        // add '0'; if > '9' add ('a'-'9'-1).
        asm.addi(Reg::R5, Reg::R5, b'0' as i16);
        asm.li(Reg::R7, b'9' as u32 + 1);
        let skip = format!("__hex_skip_{}", asm.here());
        asm.blt(Reg::R5, Reg::R7, &skip);
        asm.addi(Reg::R5, Reg::R5, (b'a' as i16) - (b'9' as i16) - 1);
        asm.label(&skip);
        asm.li(Reg::R6, map::UART_MMIO_BASE + uart::regs::TX);
        asm.sw(Reg::R6, 0, Reg::R5);
    };
    nibble(asm, 4);
    nibble(asm, 0);
}

/// Emits code that hashes a memory region through the crypto accelerator:
/// initializes a sponge computation, absorbs `[r1, r1 + r2)` word-wise
/// (r2 = byte length, word multiple), finalizes, and leaves the first
/// digest word in `r0`. Clobbers `r0..r3`, `r6`, `r7`.
///
/// This is the in-simulator measurement primitive trustlets use for local
/// attestation of a peer's code region (Section 4.2.2).
pub fn emit_hash_region(asm: &mut Asm) {
    let unique = asm.here();
    let loop_l = format!("__hash_loop_{unique}");
    let done_l = format!("__hash_done_{unique}");
    let wait_l = format!("__hash_wait_{unique}");
    asm.li(Reg::R6, map::CRYPTO_MMIO_BASE);
    // CTRL = INIT_SPONGE.
    asm.li(Reg::R7, crypto_accel::cmd::INIT_SPONGE);
    asm.sw(Reg::R6, crypto_accel::regs::CTRL as i16, Reg::R7);
    // r3 = end = r1 + r2.
    asm.add(Reg::R3, Reg::R1, Reg::R2);
    asm.label(&loop_l);
    asm.bgeu(Reg::R1, Reg::R3, &done_l);
    asm.lw(Reg::R7, Reg::R1, 0);
    asm.sw(Reg::R6, crypto_accel::regs::DATA as i16, Reg::R7);
    asm.addi(Reg::R1, Reg::R1, 4);
    asm.jmp(&loop_l);
    asm.label(&done_l);
    asm.li(Reg::R7, crypto_accel::cmd::FINALIZE);
    asm.sw(Reg::R6, crypto_accel::regs::CTRL as i16, Reg::R7);
    // Poll CTRL until idle.
    asm.label(&wait_l);
    asm.lw(Reg::R7, Reg::R6, crypto_accel::regs::CTRL as i16);
    asm.li(Reg::R0, 0);
    asm.bne(Reg::R7, Reg::R0, &wait_l);
    asm.lw(Reg::R0, Reg::R6, crypto_accel::regs::DIGEST0 as i16);
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlite_isa::{decode, Instr};

    fn plan() -> TrustletPlan {
        TrustletPlan {
            name: "t".into(),
            id: 7,
            tt_index: 0,
            code_base: 0x1000_1000,
            code_size: 0x400,
            data_base: 0x1000_2000,
            data_size: 0x100,
            stack_base: 0x1000_2100,
            stack_size: 0x100,
            entry_len: 8,
            sp_slot: 0x1000_010c,
            measure_slot: 0x1000_0300,
        }
    }

    #[test]
    fn prologue_layout() {
        let p = plan();
        let mut t = TrustletProgram::new(&p);
        t.asm.label("main");
        t.asm.halt();
        let img = t.finish().unwrap();
        // Entry vector: two jumps.
        let w0 = decode(img.word_at(p.code_base).unwrap()).unwrap();
        let w1 = decode(img.word_at(p.code_base + 4).unwrap()).unwrap();
        assert!(matches!(w0, Instr::Jmp { .. }));
        assert!(matches!(w1, Instr::Jmp { .. }));
        // continue() starts right after and loads the SP slot.
        assert_eq!(img.expect_symbol("__tl_continue"), p.code_base + 8);
        assert!(img.symbol("call_entry").is_some(), "stubbed");
    }

    #[test]
    fn missing_main_rejected() {
        let t = TrustletProgram::new(&plan());
        assert!(matches!(t.finish(), Err(TrustliteError::Asm(_))));
    }

    #[test]
    fn oversize_image_rejected() {
        let mut p = plan();
        p.code_size = 0x40; // smaller than the prologue + body
        let mut t = TrustletProgram::new(&p);
        t.asm.label("main");
        for _ in 0..32 {
            t.asm.nop();
        }
        assert!(matches!(
            t.finish(),
            Err(TrustliteError::ImageTooLarge { .. })
        ));
    }

    #[test]
    fn save_and_invoke_emits_frame_builder() {
        let p = plan();
        let mut t = TrustletProgram::new(&p);
        t.asm.label("main");
        t.emit_save_and_invoke(&p.clone(), "after", 0xdead_0000);
        t.asm.label("after");
        t.asm.halt();
        let img = t.finish().unwrap();
        // 10 pushes present in the emitted body.
        let pushes = img
            .words()
            .filter_map(|w| decode(w).ok())
            .filter(|i| matches!(i, Instr::Push { .. } | Instr::Pushf))
            .count();
        assert_eq!(pushes, 10);
    }
}
