//! Trustlet, OS and shared-region specifications.

use trustlite_isa::Image;
use trustlite_mpu::Perms;

/// A peripheral MMIO window granted to a trustlet.
///
/// Per Section 3.3, peripheral access is just another EA-MPU data region:
/// the Secure Loader defines the peripheral's MMIO address space as an
/// additional read/write data region of the trustlet, usually exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriphGrant {
    /// MMIO window base.
    pub base: u32,
    /// MMIO window size.
    pub size: u32,
    /// Permissions (typically `RW`).
    pub perms: Perms,
}

/// A shared-memory region declared at the platform level.
///
/// Section 4.2.1: a trustlet's meta-data indicates the size and
/// participating tasks of desired shared regions, and the Secure Loader
/// configures the appropriate MPU rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedSpec {
    /// Region name, referenced from [`TrustletOptions::shared`].
    pub name: String,
    /// Assigned base address.
    pub base: u32,
    /// Region size in bytes.
    pub size: u32,
}

/// Per-trustlet policy options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrustletOptions {
    /// Measure the code region at load time into the measurement table.
    pub measured: bool,
    /// Make the code region readable by everyone (enables peer code
    /// inspection for local attestation, Section 4.2.2).
    pub public_code: bool,
    /// Declares whether the trustlet is designed to be preempted and
    /// resumed ("usermode trustlet") or to run to completion ("firmware
    /// trustlet", Section 3.6). The flag drives instantiation presets and
    /// OS integration; the secure exception engine protects *every*
    /// loaded trustlet defensively either way.
    pub interruptible: bool,
    /// Exclusive peripheral grants.
    pub peripherals: Vec<PeriphGrant>,
    /// Shared regions: `(region name, permissions)`.
    pub shared: Vec<(String, Perms)>,
    /// Secure boot: expected HMAC tag over the code bytes, keyed with the
    /// platform key (key-store slot 0). Loading fails on mismatch.
    pub auth_tag: Option<[u8; 32]>,
    /// Name of another trustlet allowed to *write* this trustlet's code
    /// region (the Section 5.3 field-update service pattern).
    pub code_writable_by: Option<String>,
    /// Lock this trustlet's MPU rule slots until reset — the "hardware
    /// trustlet" instantiation of Section 3.6 (hardwired regions provide
    /// additional assurance; updates then require a reboot).
    pub lock_rules: bool,
}

impl Default for TrustletOptions {
    fn default() -> Self {
        TrustletOptions {
            measured: true,
            public_code: true,
            interruptible: true,
            peripherals: Vec::new(),
            shared: Vec::new(),
            auth_tag: None,
            code_writable_by: None,
            lock_rules: false,
        }
    }
}

/// The reserved memory plan of a trustlet, fixed before its program is
/// assembled (so the program can embed absolute addresses: its own data
/// region, its Trustlet Table stack slot, peer entry points).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrustletPlan {
    /// Trustlet name (host-side handle).
    pub name: String,
    /// Numeric identifier stored in the Trustlet Table.
    pub id: u32,
    /// Trustlet Table row index.
    pub tt_index: u32,
    /// Code region base (= entry vector address).
    pub code_base: u32,
    /// Reserved code region size.
    pub code_size: u32,
    /// Private data region base.
    pub data_base: u32,
    /// Private data region size.
    pub data_size: u32,
    /// Stack region base.
    pub stack_base: u32,
    /// Stack region size.
    pub stack_size: u32,
    /// Size of the entry vector in bytes (two jump slots).
    pub entry_len: u32,
    /// Absolute address of this trustlet's `saved_sp` slot in the
    /// Trustlet Table.
    pub sp_slot: u32,
    /// Absolute address of this trustlet's measurement-table row.
    pub measure_slot: u32,
}

impl TrustletPlan {
    /// Initial stack top (stacks grow down from here).
    pub fn stack_top(&self) -> u32 {
        self.stack_base + self.stack_size
    }

    /// Address of the `continue()` entry (entry vector slot 0).
    pub fn continue_entry(&self) -> u32 {
        self.code_base
    }

    /// Address of the `call()` IPC entry (entry vector slot 1).
    pub fn call_entry(&self) -> u32 {
        self.code_base + 4
    }

    /// One past the end of the code region.
    pub fn code_end(&self) -> u32 {
        self.code_base + self.code_size
    }
}

/// A complete trustlet ready for the Secure Loader.
#[derive(Debug, Clone)]
pub struct TrustletSpec {
    /// The reserved plan.
    pub plan: TrustletPlan,
    /// The assembled program (based at `plan.code_base`).
    pub image: Image,
    /// Address of the initial entry point (`main`); the loader fabricates
    /// the initial resume frame so that the first `continue()` lands here.
    pub main: u32,
    /// Policy options.
    pub options: TrustletOptions,
}

/// The (untrusted) OS.
#[derive(Debug, Clone)]
pub struct OsSpec {
    /// The assembled OS image.
    pub image: Image,
    /// OS data region base.
    pub data_base: u32,
    /// OS data region size.
    pub data_size: u32,
    /// OS stack top.
    pub stack_top: u32,
    /// Entry point.
    pub entry: u32,
    /// IDT entries `(vector, handler address)`.
    pub idt: Vec<(u8, u32)>,
    /// Peripheral MMIO windows the OS may drive ("untrusted platform
    /// peripherals", Section 3.5 step 4).
    pub peripherals: Vec<PeriphGrant>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> TrustletPlan {
        TrustletPlan {
            name: "t".into(),
            id: 1,
            tt_index: 0,
            code_base: 0x1000_1000,
            code_size: 0x200,
            data_base: 0x1000_2000,
            data_size: 0x100,
            stack_base: 0x1000_3000,
            stack_size: 0x100,
            entry_len: 8,
            sp_slot: 0x1000_010c,
            measure_slot: 0x1000_0300,
        }
    }

    #[test]
    fn derived_addresses() {
        let p = plan();
        assert_eq!(p.stack_top(), 0x1000_3100);
        assert_eq!(p.continue_entry(), 0x1000_1000);
        assert_eq!(p.call_entry(), 0x1000_1004);
        assert_eq!(p.code_end(), 0x1000_1200);
    }

    #[test]
    fn default_options_are_full_featured() {
        let o = TrustletOptions::default();
        assert!(o.measured && o.public_code && o.interruptible);
        assert!(o.peripherals.is_empty() && o.shared.is_empty());
        assert!(o.auth_tag.is_none() && o.code_writable_by.is_none());
        assert!(!o.lock_rules);
    }
}
