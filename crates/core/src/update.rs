//! A/B firmware slots, anti-rollback protection and the retained boot
//! log.
//!
//! TrustLite's field-update story (Sections 2.3, 5.3) is *programmable*
//! protection: a designated updater may rewrite another trustlet's code
//! while the OS cannot. This module adds the fleet-operations half of
//! that story — the part that makes an update survivable:
//!
//! * **Slot A** is the factory image in PROM, always bootable (so a
//!   device can never brick: the Secure Loader's fallback path needs no
//!   writable state at all).
//! * **Slot B** is a staged image in untrusted bulk DRAM
//!   ([`staging_base`]), guarded by a CRC-32 and a monotonic version
//!   word. Authenticity is *not* established at staging time — the
//!   commit gate is an attested re-measurement after the first boot of
//!   the new image.
//! * The **update block** lives in retained RAM (`map::RETRAM_BASE`):
//!   a tiny always-on region that survives warm resets and is cleared
//!   only on cold boot. It records the slot state machine
//!   ([`SlotState`]), the anti-rollback floor (`rollback_min`), the
//!   boot-attempt counter, and a CRC-guarded ring of boot-log entries
//!   ([`BootLogEntry`]) — the trail an operator reads after a bad
//!   campaign. No MPU rule covers retained RAM, so software (trusted or
//!   not) can never touch it; only the Secure Loader and the host use
//!   it via the hardware access paths.
//!
//! At every reset the Secure Loader consults the block
//! ([`boot_decision`]): a `Written` slot boots iff its CRC holds, its
//! version is strictly above the anti-rollback floor, and fewer than
//! [`MAX_BOOT_ATTEMPTS`] boots have already been burned on it — anything
//! else rolls back to slot A and records the verdict. A `Confirmed`
//! slot keeps booting as long as its CRC holds. The decision is a pure
//! function of PROM, DRAM and the retained block, so fleet replays are
//! deterministic.

use trustlite_cpu::SystemBus;
use trustlite_crypto::crc32;
use trustlite_mem::map;

/// Magic word marking an initialized update block ("UPD1").
pub const UPDATE_MAGIC: u32 = 0x5550_4431;

/// Bytes reserved per trustlet inside retained RAM.
pub const BLOCK_STRIDE: u32 = 0x100;

/// Boot-log ring capacity (entries retained per trustlet).
pub const LOG_CAP: usize = 16;

/// Words per serialized boot-log entry.
const LOG_ENTRY_WORDS: u32 = 3;

/// Header words before the log ring (magic, state, version,
/// rollback_min, staged_len, staged_crc, attempts, log_total).
const HEADER_WORDS: u32 = 8;

/// Total serialized words excluding the guard CRC.
const BODY_WORDS: u32 = HEADER_WORDS + LOG_ENTRY_WORDS * LOG_CAP as u32;

/// Staged images (slot B) live in the upper half of untrusted DRAM.
pub const STAGING_BASE: u32 = map::DRAM_BASE + map::DRAM_SIZE / 2;

/// Bytes reserved per trustlet in the staging area.
pub const STAGING_STRIDE: u32 = 0x4000;

/// Boot attempts allowed on a `Written` slot before the loader falls
/// back to slot A for good.
pub const MAX_BOOT_ATTEMPTS: u32 = 3;

/// The retained slot state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// No update in flight; slot A (PROM) boots.
    Idle,
    /// A staged image is written and awaiting its confirmation boots.
    Written,
    /// The staged image passed the commit gate; slot B is the running
    /// image and `rollback_min` was raised to its version.
    Confirmed,
    /// The staged image was abandoned; slot A boots until a fresh stage.
    RolledBack,
}

impl SlotState {
    fn code(self) -> u32 {
        match self {
            SlotState::Idle => 0,
            SlotState::Written => 1,
            SlotState::Confirmed => 2,
            SlotState::RolledBack => 3,
        }
    }

    fn from_code(code: u32) -> Option<SlotState> {
        Some(match code {
            0 => SlotState::Idle,
            1 => SlotState::Written,
            2 => SlotState::Confirmed,
            3 => SlotState::RolledBack,
            _ => return None,
        })
    }
}

/// Why a boot went the way it did — the log's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootVerdict {
    /// Slot B was tried (attempt counter recorded).
    StagedBoot,
    /// The commit gate passed and the slot was confirmed.
    Committed,
    /// The staged image failed its CRC check.
    CrcReject,
    /// The staged version did not exceed the anti-rollback floor.
    StaleReject,
    /// Too many boots were burned without a confirmation.
    AttemptsExhausted,
    /// The orchestrator abandoned the update (commit gate kept failing).
    ForcedRollback,
}

impl BootVerdict {
    fn code(self) -> u32 {
        match self {
            BootVerdict::StagedBoot => 1,
            BootVerdict::Committed => 2,
            BootVerdict::CrcReject => 3,
            BootVerdict::StaleReject => 4,
            BootVerdict::AttemptsExhausted => 5,
            BootVerdict::ForcedRollback => 6,
        }
    }

    fn from_code(code: u32) -> Option<BootVerdict> {
        Some(match code {
            1 => BootVerdict::StagedBoot,
            2 => BootVerdict::Committed,
            3 => BootVerdict::CrcReject,
            4 => BootVerdict::StaleReject,
            5 => BootVerdict::AttemptsExhausted,
            6 => BootVerdict::ForcedRollback,
            _ => return None,
        })
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BootVerdict::StagedBoot => "staged_boot",
            BootVerdict::Committed => "committed",
            BootVerdict::CrcReject => "crc_reject",
            BootVerdict::StaleReject => "stale_reject",
            BootVerdict::AttemptsExhausted => "attempts_exhausted",
            BootVerdict::ForcedRollback => "forced_rollback",
        }
    }
}

/// One retained boot-log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootLogEntry {
    /// Which slot the record concerns (0 = A/PROM, 1 = B/staged).
    pub slot: u8,
    /// What happened.
    pub verdict: BootVerdict,
    /// The boot-attempt counter at the time.
    pub attempt: u32,
}

/// The deserialized retained update block for one trustlet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateBlock {
    /// Slot state machine position.
    pub state: SlotState,
    /// Version of the staged image.
    pub version: u32,
    /// Anti-rollback floor: a `Written` image boots only if its version
    /// is strictly greater. Raised (never lowered) on confirmation.
    pub rollback_min: u32,
    /// Staged image length in bytes.
    pub staged_len: u32,
    /// CRC-32 the staged image must match at every boot.
    pub staged_crc: u32,
    /// Boots burned on the `Written` image so far.
    pub attempts: u32,
    /// Total log entries ever appended (the ring keeps the last
    /// [`LOG_CAP`]).
    pub log_total: u32,
    /// Retained log entries, oldest first (at most [`LOG_CAP`]).
    pub log: Vec<BootLogEntry>,
}

impl UpdateBlock {
    /// A fresh block with no history.
    pub fn new() -> UpdateBlock {
        UpdateBlock {
            state: SlotState::Idle,
            version: 0,
            rollback_min: 0,
            staged_len: 0,
            staged_crc: 0,
            attempts: 0,
            log_total: 0,
            log: Vec::new(),
        }
    }

    /// Appends a log entry, letting the ring drop the oldest when full.
    pub fn push_log(&mut self, slot: u8, verdict: BootVerdict, attempt: u32) {
        if self.log.len() == LOG_CAP {
            self.log.remove(0);
        }
        self.log.push(BootLogEntry {
            slot,
            verdict,
            attempt,
        });
        self.log_total += 1;
    }
}

impl Default for UpdateBlock {
    fn default() -> Self {
        UpdateBlock::new()
    }
}

/// Base address of trustlet `tt_index`'s update block in retained RAM.
pub fn block_base(tt_index: u32) -> u32 {
    debug_assert!((tt_index + 1) * BLOCK_STRIDE <= map::RETRAM_SIZE);
    map::RETRAM_BASE + tt_index * BLOCK_STRIDE
}

/// Base address of trustlet `tt_index`'s staging area in DRAM.
pub fn staging_base(tt_index: u32) -> u32 {
    STAGING_BASE + tt_index * STAGING_STRIDE
}

fn read_words(sys: &mut SystemBus, base: u32, n: u32) -> Option<Vec<u32>> {
    (0..n).map(|i| sys.hw_read32(base + 4 * i).ok()).collect()
}

/// Reads and validates trustlet `tt_index`'s update block. Returns
/// `None` when the block was never written (cold boot), the magic is
/// wrong, or the guard CRC does not hold — all treated by callers as
/// "no update in flight".
pub fn read_block(sys: &mut SystemBus, tt_index: u32) -> Option<UpdateBlock> {
    let base = block_base(tt_index);
    let words = read_words(sys, base, BODY_WORDS + 1)?;
    if words[0] != UPDATE_MAGIC {
        return None;
    }
    let mut body = Vec::with_capacity(4 * BODY_WORDS as usize);
    for w in &words[..BODY_WORDS as usize] {
        body.extend_from_slice(&w.to_le_bytes());
    }
    if crc32(&body) != words[BODY_WORDS as usize] {
        return None;
    }
    let state = SlotState::from_code(words[1])?;
    let log_total = words[7];
    let kept = (log_total as usize).min(LOG_CAP);
    let mut log = Vec::with_capacity(kept);
    // Ring: entry i (0-based, global) lives at slot i % LOG_CAP; rebuild
    // oldest-first.
    let first = log_total as usize - kept;
    for i in first..log_total as usize {
        let at = HEADER_WORDS as usize + LOG_ENTRY_WORDS as usize * (i % LOG_CAP);
        let verdict = BootVerdict::from_code(words[at + 1])?;
        log.push(BootLogEntry {
            slot: words[at] as u8,
            verdict,
            attempt: words[at + 2],
        });
    }
    Some(UpdateBlock {
        state,
        version: words[2],
        rollback_min: words[3],
        staged_len: words[4],
        staged_crc: words[5],
        attempts: words[6],
        log_total,
        log,
    })
}

/// Serializes `block` into trustlet `tt_index`'s retained slot,
/// recomputing the guard CRC. Returns false if retained RAM is not
/// mapped (never the case on a built platform).
pub fn write_block(sys: &mut SystemBus, tt_index: u32, block: &UpdateBlock) -> bool {
    let base = block_base(tt_index);
    let mut words = vec![0u32; BODY_WORDS as usize + 1];
    words[0] = UPDATE_MAGIC;
    words[1] = block.state.code();
    words[2] = block.version;
    words[3] = block.rollback_min;
    words[4] = block.staged_len;
    words[5] = block.staged_crc;
    words[6] = block.attempts;
    words[7] = block.log_total;
    let kept = block.log.len().min(LOG_CAP);
    let first = block.log_total as usize - kept;
    for (k, e) in block.log.iter().enumerate() {
        let i = first + k;
        let at = HEADER_WORDS as usize + LOG_ENTRY_WORDS as usize * (i % LOG_CAP);
        words[at] = u32::from(e.slot);
        words[at + 1] = e.verdict.code();
        words[at + 2] = e.attempt;
    }
    let mut body = Vec::with_capacity(4 * BODY_WORDS as usize);
    for w in &words[..BODY_WORDS as usize] {
        body.extend_from_slice(&w.to_le_bytes());
    }
    words[BODY_WORDS as usize] = crc32(&body);
    for (i, w) in words.iter().enumerate() {
        if sys.hw_write32(base + 4 * i as u32, *w).is_err() {
            return false;
        }
    }
    true
}

/// Reads `len` staged bytes for trustlet `tt_index` out of DRAM.
pub fn read_staged(sys: &mut SystemBus, tt_index: u32, len: u32) -> Option<Vec<u8>> {
    let base = staging_base(tt_index);
    let mut out = Vec::with_capacity(len as usize);
    let mut addr = base;
    while out.len() < len as usize {
        let w = sys.hw_read32(addr).ok()?;
        out.extend_from_slice(&w.to_le_bytes());
        addr += 4;
    }
    out.truncate(len as usize);
    Some(out)
}

/// Writes `code` into trustlet `tt_index`'s staging area.
pub fn write_staged(sys: &mut SystemBus, tt_index: u32, code: &[u8]) -> bool {
    let base = staging_base(tt_index);
    for (i, chunk) in code.chunks(4).enumerate() {
        let mut w = [0u8; 4];
        w[..chunk.len()].copy_from_slice(chunk);
        if sys
            .hw_write32(base + 4 * i as u32, u32::from_le_bytes(w))
            .is_err()
        {
            return false;
        }
    }
    true
}

/// What the Secure Loader decided for one trustlet at this boot.
#[derive(Debug, Clone)]
pub struct BootChoice {
    /// The image bytes to copy and measure (slot B when `staged`).
    pub code: Vec<u8>,
    /// True when slot B (the staged image) was chosen.
    pub staged: bool,
    /// The rollback verdict recorded at this boot, if the staged image
    /// was rejected.
    pub rollback: Option<BootVerdict>,
    /// True when a valid update block was found — the loader then
    /// zero-fills the code region past the image so slot switches never
    /// leave bytes of the other image behind in SRAM (the measurement is
    /// over the zero-padded region).
    pub update_active: bool,
}

/// The Secure Loader's A/B decision for trustlet `tt_index`: consult
/// the retained block, validate the staged image, fall back to the
/// always-bootable PROM image (`primary`) on any doubt, and record what
/// happened in the retained log. Pure in the device's memory state.
pub fn boot_decision(
    sys: &mut SystemBus,
    tt_index: u32,
    primary: &[u8],
    code_size: u32,
) -> BootChoice {
    let Some(mut block) = read_block(sys, tt_index) else {
        return BootChoice {
            code: primary.to_vec(),
            staged: false,
            rollback: None,
            update_active: false,
        };
    };
    let primary_choice = |rollback| BootChoice {
        code: primary.to_vec(),
        staged: false,
        rollback,
        update_active: true,
    };
    match block.state {
        SlotState::Idle | SlotState::RolledBack => primary_choice(None),
        SlotState::Written => {
            let staged = (block.staged_len > 0 && block.staged_len <= code_size)
                .then(|| read_staged(sys, tt_index, block.staged_len))
                .flatten();
            let verdict = match &staged {
                None => Some(BootVerdict::CrcReject),
                Some(bytes) if crc32(bytes) != block.staged_crc => Some(BootVerdict::CrcReject),
                Some(_) if block.version <= block.rollback_min => Some(BootVerdict::StaleReject),
                Some(_) if block.attempts >= MAX_BOOT_ATTEMPTS => {
                    Some(BootVerdict::AttemptsExhausted)
                }
                Some(_) => None,
            };
            match verdict {
                Some(v) => {
                    block.state = SlotState::RolledBack;
                    block.push_log(0, v, block.attempts);
                    write_block(sys, tt_index, &block);
                    primary_choice(Some(v))
                }
                None => {
                    block.attempts += 1;
                    block.push_log(1, BootVerdict::StagedBoot, block.attempts);
                    write_block(sys, tt_index, &block);
                    BootChoice {
                        code: staged.expect("validated above"),
                        staged: true,
                        rollback: None,
                        update_active: true,
                    }
                }
            }
        }
        SlotState::Confirmed => {
            let staged = (block.staged_len > 0 && block.staged_len <= code_size)
                .then(|| read_staged(sys, tt_index, block.staged_len))
                .flatten();
            match staged {
                Some(bytes) if crc32(&bytes) == block.staged_crc => BootChoice {
                    code: bytes,
                    staged: true,
                    rollback: None,
                    update_active: true,
                },
                // A confirmed image that no longer passes its CRC (bulk
                // memory decayed or was attacked) rolls back too: slot A
                // is the only image with a trust anchor left.
                _ => {
                    block.state = SlotState::RolledBack;
                    block.push_log(0, BootVerdict::CrcReject, block.attempts);
                    write_block(sys, tt_index, &block);
                    primary_choice(Some(BootVerdict::CrcReject))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_state_and_verdict_roundtrip() {
        for s in [
            SlotState::Idle,
            SlotState::Written,
            SlotState::Confirmed,
            SlotState::RolledBack,
        ] {
            assert_eq!(SlotState::from_code(s.code()), Some(s));
        }
        assert_eq!(SlotState::from_code(17), None);
        for v in [
            BootVerdict::StagedBoot,
            BootVerdict::Committed,
            BootVerdict::CrcReject,
            BootVerdict::StaleReject,
            BootVerdict::AttemptsExhausted,
            BootVerdict::ForcedRollback,
        ] {
            assert_eq!(BootVerdict::from_code(v.code()), Some(v));
            assert!(!v.label().is_empty());
        }
        assert_eq!(BootVerdict::from_code(0), None);
    }

    #[test]
    fn log_ring_keeps_the_most_recent_entries() {
        let mut b = UpdateBlock::new();
        for i in 0..(LOG_CAP as u32 + 5) {
            b.push_log(1, BootVerdict::StagedBoot, i);
        }
        assert_eq!(b.log.len(), LOG_CAP);
        assert_eq!(b.log_total, LOG_CAP as u32 + 5);
        assert_eq!(b.log[0].attempt, 5, "oldest surviving entry");
        assert_eq!(b.log.last().unwrap().attempt, LOG_CAP as u32 + 4);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn blocks_fit_retained_ram() {
        assert!(4 * (BODY_WORDS + 1) <= BLOCK_STRIDE);
        assert!(crate::layout::MAX_TRUSTLETS * BLOCK_STRIDE <= map::RETRAM_SIZE);
    }
}
