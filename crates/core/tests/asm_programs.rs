//! Runs the `examples/asm/*.s` sample programs end to end: the text
//! assembler, the ISA semantics and the peripherals, exercised by real
//! programs rather than synthetic snippets.

use trustlite_cpu::{HaltReason, Machine, RunExit, SystemBus};
use trustlite_isa::assemble_text;
use trustlite_mem::{map, Bus, Ram, Rom};
use trustlite_mpu::EaMpu;
use trustlite_periph::Uart;

fn run_program(source: &str, input: &[u8]) -> Machine {
    let img = assemble_text(0, source).expect("assembles");
    let mut bus = Bus::new();
    bus.map(map::PROM_BASE, Box::new(Rom::new(0x4000))).unwrap();
    bus.map(map::SRAM_BASE, Box::new(Ram::new("sram", 0x4000)))
        .unwrap();
    let mut uart = Uart::new();
    uart.inject_input(input);
    bus.map(map::UART_MMIO_BASE, Box::new(uart)).unwrap();
    assert!(bus.host_load(0, &img.bytes));
    let mut sys = SystemBus::new(bus, EaMpu::new(4), None);
    sys.enforce = false;
    let mut m = Machine::new(sys, 0);
    let exit = m.run(1_000_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    m
}

fn uart_out(m: &mut Machine) -> Vec<u8> {
    m.sys
        .bus
        .device_mut::<Uart>("uart")
        .expect("uart")
        .take_output()
}

#[test]
fn hello_prints_greeting() {
    let mut m = run_program(include_str!("../../../examples/asm/hello.s"), b"");
    assert_eq!(uart_out(&mut m), b"Hello, SP32!\n");
}

#[test]
fn fibonacci_computes_fib_24() {
    let mut m = run_program(include_str!("../../../examples/asm/fibonacci.s"), b"");
    // fib(0)=0, fib(1)=1 ... fib(24) = 46368.
    assert_eq!(m.regs.gprs[0], 46_368);
    assert_eq!(m.sys.hw_read32(map::SRAM_BASE).unwrap(), 46_368);
}

#[test]
fn echo_copies_input_to_output() {
    let mut m = run_program(include_str!("../../../examples/asm/echo.s"), b"ping pong");
    assert_eq!(uart_out(&mut m), b"ping pong");
}

#[test]
fn echo_with_no_input_is_silent() {
    let mut m = run_program(include_str!("../../../examples/asm/echo.s"), b"");
    assert!(uart_out(&mut m).is_empty());
}

#[test]
fn sieve_counts_primes_below_100() {
    let mut m = run_program(include_str!("../../../examples/asm/sieve.s"), b"");
    assert_eq!(m.regs.gprs[0], 25, "there are 25 primes below 100");
    assert_eq!(m.sys.hw_read32(map::SRAM_BASE + 0x100).unwrap(), 25);
}

#[test]
fn strrev_reverses_via_the_stack() {
    let mut m = run_program(include_str!("../../../examples/asm/strrev.s"), b"");
    assert_eq!(uart_out(&mut m), b"desserts");
}

#[test]
fn gcd_computes_via_division() {
    let mut m = run_program(include_str!("../../../examples/asm/gcd.s"), b"");
    assert_eq!(m.regs.gprs[0], 21, "gcd(1071, 462) = 21");
    assert_eq!(m.sys.hw_read32(map::SRAM_BASE).unwrap(), 21);
}

#[test]
fn crc32_matches_reference_vector() {
    // The canonical CRC-32 check value: crc32("123456789") = 0xcbf43926.
    let mut m = run_program(include_str!("../../../examples/asm/crc32.s"), b"");
    assert_eq!(m.regs.gprs[0], 0xcbf4_3926);
    assert_eq!(m.sys.hw_read32(map::SRAM_BASE).unwrap(), 0xcbf4_3926);
}
