//! Error-path coverage for the platform builder and the Secure Loader:
//! every misconfiguration is rejected with a specific, actionable error.

use trustlite::platform::PlatformBuilder;
use trustlite::spec::TrustletOptions;
use trustlite::TrustliteError;
use trustlite_isa::{Asm, Reg};
use trustlite_mpu::Perms;

fn trivial_image(plan: &trustlite::TrustletPlan) -> trustlite_isa::Image {
    let mut t = plan.begin_program();
    t.asm.label("main");
    t.asm.halt();
    t.finish().unwrap()
}

fn trivial_os(b: &mut PlatformBuilder) {
    let mut os = b.begin_os();
    os.asm.label("main");
    os.asm.halt();
    let img = os.finish().unwrap();
    b.set_os(img, &[]);
}

#[test]
fn missing_os_rejected() {
    let mut b = PlatformBuilder::new();
    assert!(matches!(b.build(), Err(TrustliteError::MissingOs)));
}

#[test]
fn duplicate_trustlet_rejected() {
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("dup", 0x100, 0x80, 0x80);
    b.add_trustlet(&plan, trivial_image(&plan), TrustletOptions::default())
        .unwrap();
    let err = b.add_trustlet(&plan, trivial_image(&plan), TrustletOptions::default());
    assert!(matches!(err, Err(TrustliteError::DuplicateTrustlet(n)) if n == "dup"));
}

#[test]
fn plan_mismatch_rejected() {
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("t", 0x100, 0x80, 0x80);
    // An image assembled at the wrong base.
    let mut a = Asm::new(plan.code_base + 0x10);
    a.label("main");
    a.halt();
    let img = a.assemble().unwrap();
    let err = b.add_trustlet(&plan, img, TrustletOptions::default());
    assert!(
        matches!(err, Err(TrustliteError::PlanMismatch { .. })),
        "{err:?}"
    );
}

#[test]
fn oversize_image_rejected_at_registration() {
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("t", 0x40, 0x80, 0x80);
    let mut a = Asm::new(plan.code_base);
    a.label("main");
    for _ in 0..64 {
        a.nop();
    }
    let img = a.assemble().unwrap();
    let err = b.add_trustlet(&plan, img, TrustletOptions::default());
    assert!(
        matches!(err, Err(TrustliteError::ImageTooLarge { .. })),
        "{err:?}"
    );
}

#[test]
fn missing_main_symbol_rejected() {
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("t", 0x100, 0x80, 0x80);
    let mut a = Asm::new(plan.code_base);
    a.halt();
    let img = a.assemble().unwrap();
    let err = b.add_trustlet(&plan, img, TrustletOptions::default());
    assert!(matches!(err, Err(TrustliteError::Asm(_))), "{err:?}");
}

#[test]
fn out_of_mpu_slots_rejected_with_counts() {
    let mut b = PlatformBuilder::new();
    b.mpu_slots(8); // far too few for two trustlets
    for name in ["a", "b"] {
        let plan = b.plan_trustlet(name, 0x100, 0x80, 0x80);
        let img = trivial_image(&plan);
        b.add_trustlet(&plan, img, TrustletOptions::default())
            .unwrap();
    }
    trivial_os(&mut b);
    match b.build() {
        Err(TrustliteError::OutOfMpuSlots { needed, available }) => {
            assert_eq!(available, 8);
            assert!(needed > 8);
        }
        other => panic!("expected OutOfMpuSlots, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn unknown_shared_region_rejected() {
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("t", 0x100, 0x80, 0x80);
    let img = trivial_image(&plan);
    b.add_trustlet(
        &plan,
        img,
        TrustletOptions {
            shared: vec![("nope".into(), Perms::R)],
            ..Default::default()
        },
    )
    .unwrap();
    trivial_os(&mut b);
    assert!(matches!(b.build(), Err(TrustliteError::UnknownTrustlet(n)) if n == "nope"));
}

#[test]
fn unknown_updater_rejected() {
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("t", 0x100, 0x80, 0x80);
    let img = trivial_image(&plan);
    b.add_trustlet(
        &plan,
        img,
        TrustletOptions {
            code_writable_by: Some("ghost".into()),
            ..Default::default()
        },
    )
    .unwrap();
    trivial_os(&mut b);
    assert!(matches!(b.build(), Err(TrustliteError::UnknownTrustlet(n)) if n == "ghost"));
}

#[test]
fn auth_without_platform_key_rejected() {
    let mut b = PlatformBuilder::new();
    // No platform_key() call: the key store is empty.
    let plan = b.plan_trustlet("signed", 0x100, 0x80, 0x80);
    let img = trivial_image(&plan);
    b.add_trustlet(
        &plan,
        img,
        TrustletOptions {
            auth_tag: Some([0u8; 32]),
            ..Default::default()
        },
    )
    .unwrap();
    trivial_os(&mut b);
    // A zero key exists in slot 0 by default (all-zero), so the tag is
    // simply wrong rather than the key missing; either way: AuthFailed.
    assert!(matches!(b.build(), Err(TrustliteError::AuthFailed(n)) if n == "signed"));
}

#[test]
fn error_messages_are_actionable() {
    let errors: Vec<TrustliteError> = vec![
        TrustliteError::MissingOs,
        TrustliteError::DuplicateTrustlet("x".into()),
        TrustliteError::UnknownTrustlet("y".into()),
        TrustliteError::OutOfMpuSlots {
            needed: 12,
            available: 8,
        },
        TrustliteError::OutOfSram { requested: 0x1000 },
        TrustliteError::AuthFailed("z".into()),
        TrustliteError::BadFirmware("bad magic".into()),
        TrustliteError::PlanMismatch {
            name: "p".into(),
            expected: 0x100,
            actual: 0x200,
        },
        TrustliteError::ImageTooLarge {
            name: "q".into(),
            reserved: 0x40,
            actual: 0x80,
        },
    ];
    for e in errors {
        let msg = e.to_string();
        assert!(!msg.is_empty());
        // Each message names the offending entity or quantity.
        assert!(msg.chars().any(|c| c.is_ascii_alphanumeric()), "{msg}");
    }
}

#[test]
fn oversize_runtime_program_rejected_by_finish() {
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("tiny", 0x40, 0x80, 0x80);
    let mut t = plan.begin_program();
    t.asm.label("main");
    for _ in 0..32 {
        t.asm.li(Reg::R0, 0x12345678);
    }
    assert!(matches!(
        t.finish(),
        Err(TrustliteError::ImageTooLarge { .. })
    ));
}
