//! The paper's Figure 3 as an executable artifact: two trustlets A and B
//! plus an OS, with the example access-control matrix — including the
//! MPU's own registers and the timer peripheral as objects — verified
//! cell by cell against the loaded platform.

use trustlite::platform::PlatformBuilder;
use trustlite::spec::{PeriphGrant, TrustletOptions, TrustletPlan};
use trustlite_mem::map;
use trustlite_mpu::{AccessKind, Perms};

struct Fixture {
    platform: trustlite::Platform,
    a: TrustletPlan,
    b: TrustletPlan,
}

/// Builds the Figure 3 platform: the OS owns the timer; A and B are
/// plain trustlets with entry vectors, code, data and stacks.
fn figure3() -> Fixture {
    let mut b = PlatformBuilder::new();
    let plan_a = b.plan_trustlet("tl-a", 0x200, 0x80, 0x80);
    let plan_b = b.plan_trustlet("tl-b", 0x200, 0x80, 0x80);
    for plan in [&plan_a, &plan_b] {
        let mut t = plan.begin_program();
        t.asm.label("main");
        t.asm.halt();
        b.add_trustlet(plan, t.finish().unwrap(), TrustletOptions::default())
            .unwrap();
    }
    b.grant_os_peripheral(PeriphGrant {
        base: map::TIMER_MMIO_BASE,
        size: map::PERIPH_MMIO_SIZE,
        perms: Perms::RW,
    });
    let mut os = b.begin_os();
    os.asm.label("main");
    // Pad the OS body so representative probe addresses (+0x04, +0x20)
    // fall inside its code region.
    for _ in 0..16 {
        os.asm.nop();
    }
    os.asm.halt();
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[]);
    Fixture {
        platform: b.build().unwrap(),
        a: plan_a,
        b: plan_b,
    }
}

/// A subject's representative instruction pointer.
fn ip_of(f: &Fixture, who: &str) -> u32 {
    match who {
        "A" => f.a.code_base + 0x20,
        "B" => f.b.code_base + 0x20,
        "OS" => f.platform.os.entry + 0x20,
        _ => unreachable!(),
    }
}

/// Figure 3's permission strings for (subject, object) pairs.
/// Objects: entries/code/data/stack of each party, MPU regs, timer.
fn expected_matrix(f: &Fixture) -> Vec<(&'static str, String, u32, &'static str)> {
    let mut m = Vec::new();
    // Rows follow the paper's figure: for each subject (A, B, OS) the
    // permissions on each object. The concrete policy here is the
    // default loader policy, which matches Figure 3's flavour:
    //   - entry vectors: executable (and readable: code is public) by all
    //   - code bodies: readable by all, executable only by the owner
    //   - data+stack: rw by owner only
    //   - MPU regs: read-only for everyone
    //   - timer: rw for the OS only
    for who in ["A", "B", "OS"] {
        let (own, a, b) = (who, "A", "B");
        let perm_code = |owner: &str| if owner == own { "rx" } else { "r-" };
        let perm_data = |owner: &str| if owner == own { "rw" } else { "--" };
        // Entry vectors are rx for everyone (public code + executable).
        m.push((who, format!("{a} entry"), f.a.code_base, "rx"));
        m.push((who, format!("{a} code"), f.a.code_base + 0x40, perm_code(a)));
        m.push((who, format!("{a} data"), f.a.data_base, perm_data(a)));
        m.push((who, format!("{a} stack"), f.a.stack_base, perm_data(a)));
        m.push((who, format!("{b} entry"), f.b.code_base, "rx"));
        m.push((who, format!("{b} code"), f.b.code_base + 0x40, perm_code(b)));
        m.push((who, format!("{b} data"), f.b.data_base, perm_data(b)));
        m.push((who, format!("{b} stack"), f.b.stack_base, perm_data(b)));
        // The OS is untrusted: everyone may read and execute its code.
        m.push((who, "OS code".to_string(), f.platform.os.entry + 0x4, "rx"));
        m.push((who, "MPU regions".to_string(), map::MPU_MMIO_BASE, "r-"));
        m.push((
            who,
            "Timer period".to_string(),
            map::TIMER_MMIO_BASE + 4,
            if own == "OS" { "rw" } else { "--" },
        ));
    }
    m
}

#[test]
fn figure3_matrix_cell_by_cell() {
    let f = figure3();
    let mpu = &f.platform.machine.sys.mpu;
    for (subject, object, addr, perms) in expected_matrix(&f) {
        let ip = ip_of(&f, subject);
        let want_r = perms.contains('r');
        let want_w = perms.contains('w');
        let want_x = perms.contains('x');
        assert_eq!(
            mpu.allows(ip, addr, AccessKind::Read),
            want_r,
            "{subject} read {object} ({addr:#010x}): want `{perms}`"
        );
        assert_eq!(
            mpu.allows(ip, addr, AccessKind::Write),
            want_w,
            "{subject} write {object} ({addr:#010x}): want `{perms}`"
        );
        assert_eq!(
            mpu.allows(ip, addr, AccessKind::Execute),
            want_x,
            "{subject} execute {object} ({addr:#010x}): want `{perms}`"
        );
    }
}

#[test]
fn matrix_renders_like_figure3() {
    let f = figure3();
    let rendered = f.platform.access_matrix();
    // Every region family appears in the rendered policy.
    for needle in ["r-x", "rw-", "r--"] {
        assert!(rendered.contains(needle), "missing {needle} in\n{rendered}");
    }
}

#[test]
fn subjects_are_disjoint() {
    // Sanity: the three subjects' code regions do not overlap, so the
    // matrix rows are meaningful.
    let f = figure3();
    let spans = [
        (f.a.code_base, f.a.code_end()),
        (f.b.code_base, f.b.code_end()),
        (
            f.platform.os.image.base,
            f.platform.os.image.base + f.platform.os.image.len(),
        ),
    ];
    for (i, &(s1, e1)) in spans.iter().enumerate() {
        for &(s2, e2) in spans.iter().skip(i + 1) {
            assert!(
                e1 <= s2 || e2 <= s1,
                "overlap {s1:#x}..{e1:#x} vs {s2:#x}..{e2:#x}"
            );
        }
    }
}
