//! The paper's footnote 1 (Section 3.4.2): "the trustlet must take care
//! to restore its stack pointer as the very first instruction, since that
//! instruction may already be followed by another exception leading the
//! exception engine to store the CPU state to the wrong stack. Since the
//! MPU will typically not be configured to allow such accesses, this
//! misbehavior leads to a memory protection fault, effectively
//! terminating the trustlet."
//!
//! We drive the machine step by step and inject a timer interrupt at
//! *every* point inside the continue() restore sequence, verifying that
//! each outcome is safe: either the engine saves to the (already
//! restored) trustlet stack and the trustlet later resumes correctly, or
//! — if the stack pointer still holds the OS handler's value — the
//! engine's save faults against the trustlet's permissions and the
//! platform terminates it, leaking nothing.

use trustlite::platform::PlatformBuilder;
use trustlite::spec::TrustletOptions;
use trustlite_cpu::{vectors, HaltReason, StepOutcome};
use trustlite_isa::Reg;
use trustlite_mem::IrqRequest;

const SECRET: u32 = 0x5ec3_e75a;

fn build() -> (trustlite::Platform, trustlite::TrustletPlan) {
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("victim", 0x300, 0x80, 0x100);
    let mut t = plan.begin_program();
    t.asm.label("main");
    t.asm.li(Reg::R0, SECRET);
    t.asm.swi(1); // get preempted with the secret live
    t.asm.li(Reg::R1, plan.data_base);
    t.asm.sw(Reg::R1, 0, Reg::R0); // prove the secret survived
    t.asm.halt();
    b.add_trustlet(&plan, t.finish().unwrap(), TrustletOptions::default())
        .unwrap();

    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    {
        let a = &mut os.asm;
        a.label("main");
        a.li(Reg::Sp, stack_top);
        a.halt();
        a.label("resume");
        // Resume the trustlet via its entry vector.
        a.li(Reg::R1, plan.continue_entry());
        a.jr(Reg::R1);
        a.label("irq_handler");
        // The interrupt injected into the restore window lands here; try
        // to resume again.
        a.jmp("resume");
    }
    let os_img = os.finish().unwrap();
    b.set_os(
        os_img,
        &[
            (vectors::swi_vector(1), "resume"),
            (vectors::irq_vector(3), "irq_handler"),
        ],
    );
    (b.build().unwrap(), plan)
}

#[test]
fn interrupts_in_the_restore_window_never_leak_or_corrupt() {
    // The continue() sequence is: li(2) + lw sp + 8 pops + popf + ret =
    // 13 instructions. Inject an interrupt after each of the first N
    // steps following re-entry.
    for inject_after in 0..16u32 {
        let (mut p, plan) = build();
        p.start_trustlet("victim").unwrap();
        // Run until the OS "resume" jump lands back on the entry vector.
        let entry = plan.continue_entry();
        assert!(
            p.machine
                .run_until(10_000, |m| m.regs.ip == entry && m.instret > 4),
            "reached re-entry (inject_after={inject_after})"
        );
        // Step `inject_after` instructions into the restore, then inject.
        for _ in 0..inject_after {
            p.machine.step();
        }
        p.machine.raise_irq(IrqRequest {
            line: 3,
            handler: None,
        });
        // Run to completion (bounded).
        for _ in 0..50_000 {
            if let StepOutcome::Halted = p.machine.step() {
                break;
            }
        }
        match p.machine.halted {
            Some(HaltReason::Halt { .. }) => {
                // The trustlet eventually completed: the secret must have
                // survived the double preemption intact.
                let v = p.machine.sys.hw_read32(plan.data_base).unwrap();
                assert_eq!(v, SECRET, "state corrupted (inject_after={inject_after})");
            }
            Some(HaltReason::DoubleFault(f)) => {
                // The footnote-1 outcome: the engine's save hit memory the
                // trustlet may not touch, and the platform terminated it.
                // The secret must not have landed anywhere the OS can
                // read: verify no OS-readable copy exists in the OS
                // data/stack region.
                let os_data = p.os.data_base;
                let os_span = p.os.stack_top - os_data;
                let bytes = p.machine.sys.bus.read_bytes(os_data, os_span).unwrap();
                let leak = bytes
                    .windows(4)
                    .any(|w| u32::from_le_bytes([w[0], w[1], w[2], w[3]]) == SECRET);
                assert!(
                    !leak,
                    "secret leaked into OS memory (inject_after={inject_after}, {f})"
                );
            }
            None => panic!("run did not converge (inject_after={inject_after})"),
        }
    }
}
