//! Interrupt-driven console I/O: the UART raises a receive interrupt and
//! an OS ISR echoes the input — the conventional driver pattern the
//! paper's Section 3.3 contrasts with trustlet-owned peripherals.

use trustlite::platform::PlatformBuilder;
use trustlite::spec::PeriphGrant;
use trustlite_cpu::{vectors, HaltReason, RunExit};
use trustlite_isa::Reg;
use trustlite_mem::map;
use trustlite_mpu::Perms;
use trustlite_periph::{uart, Uart};

const UART_IRQ_LINE: u8 = 2;

fn build() -> trustlite::Platform {
    let mut b = PlatformBuilder::new();
    b.uart_irq(UART_IRQ_LINE);
    b.grant_os_peripheral(PeriphGrant {
        base: map::UART_MMIO_BASE,
        size: map::PERIPH_MMIO_SIZE,
        perms: Perms::RW,
    });
    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    {
        let a = &mut os.asm;
        a.label("main");
        a.li(Reg::Sp, stack_top);
        a.ei();
        // Idle until the ISR has echoed a '\n'-terminated line.
        a.label("idle");
        a.li(Reg::R1, b'\n' as u32);
        a.bne(Reg::R7, Reg::R1, "idle");
        a.halt();
        // Receive ISR: drain the queue, echo every byte, remember the
        // last one in r7.
        a.label("isr_rx");
        a.li(Reg::R1, map::UART_MMIO_BASE);
        a.label("drain");
        a.lw(Reg::R2, Reg::R1, uart::regs::STATUS as i16);
        a.andi(Reg::R2, Reg::R2, 1);
        a.li(Reg::R3, 0);
        a.beq(Reg::R2, Reg::R3, "drained");
        a.lw(Reg::R7, Reg::R1, uart::regs::RX as i16);
        a.sw(Reg::R1, uart::regs::TX as i16, Reg::R7);
        a.jmp("drain");
        a.label("drained");
        a.iret();
    }
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[(vectors::irq_vector(UART_IRQ_LINE), "isr_rx")]);
    b.build().unwrap()
}

#[test]
fn isr_echoes_injected_input() {
    let mut p = build();
    p.machine
        .sys
        .bus
        .device_mut::<Uart>("uart")
        .unwrap()
        .inject_input(b"echo me\n");
    let exit = p.run(100_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    assert_eq!(p.uart_output(), b"echo me\n");
    // The interrupt really drove it (at least one UART-line exception).
    assert!(p
        .machine
        .exc_log
        .iter()
        .any(|r| r.vector == vectors::irq_vector(UART_IRQ_LINE)));
}

#[test]
fn multiple_bursts_each_raise_an_interrupt() {
    let mut p = build();
    p.machine
        .sys
        .bus
        .device_mut::<Uart>("uart")
        .unwrap()
        .inject_input(b"ab");
    // Let the first burst drain.
    p.machine.run_until(50_000, |m| {
        m.exc_log
            .iter()
            .any(|r| r.vector == vectors::irq_vector(UART_IRQ_LINE))
    });
    p.machine.run(2_000);
    p.machine
        .sys
        .bus
        .device_mut::<Uart>("uart")
        .unwrap()
        .inject_input(b"c\n");
    let exit = p.run(100_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    assert_eq!(p.uart_output(), b"abc\n");
    let irqs = p
        .machine
        .exc_log
        .iter()
        .filter(|r| r.vector == vectors::irq_vector(UART_IRQ_LINE))
        .count();
    assert!(irqs >= 2, "one interrupt per burst, got {irqs}");
}
