//! Property tests on the PROM firmware format and the exception engine's
//! save/restore path.

use proptest::prelude::*;
use trustlite::prom::{parse, stage, PromEntry};
use trustlite::spec::TrustletOptions;
use trustlite_cpu::{HaltReason, RunExit};
use trustlite_isa::Reg;

fn any_entry() -> impl Strategy<Value = PromEntry> {
    (
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..64),
        any::<bool>(),
        proptest::option::of(any::<[u8; 32]>()),
        any::<u32>(),
    )
        .prop_map(|(id, dst_base, code, measured, auth_tag, main)| PromEntry {
            id,
            dst_base,
            code,
            entry_len: 8,
            measured,
            auth_tag,
            main,
        })
}

proptest! {
    /// The firmware table round-trips arbitrary entry lists.
    #[test]
    fn prom_stage_parse_roundtrip(entries in proptest::collection::vec(any_entry(), 0..6)) {
        let blob = stage(&entries);
        prop_assert_eq!(parse(&blob).expect("parses"), entries);
    }

    /// Any truncation of a non-empty table is rejected, never panics.
    #[test]
    fn prom_truncation_never_panics(
        entries in proptest::collection::vec(any_entry(), 1..4),
        cut_frac in 0.0f64..1.0,
    ) {
        let blob = stage(&entries);
        let cut = ((blob.len() as f64) * cut_frac) as usize;
        if cut < blob.len() {
            let _ = parse(&blob[..cut]);
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The secure exception engine's save + the continue() restore is
    /// lossless for arbitrary register contents: a trustlet loads eight
    /// arbitrary values, is interrupted via swi, resumed via its entry
    /// vector, and must observe exactly the same values. (Each case boots
    /// a full platform; the case count is reduced accordingly.)
    #[test]
    fn exception_save_restore_is_lossless(values in any::<[u32; 8]>()) {
        use trustlite::platform::PlatformBuilder;
        use trustlite_cpu::vectors;

        let mut b = PlatformBuilder::new();
        let plan = b.plan_trustlet("probe", 0x400, 0x200, 0x100);
        let mut t = plan.begin_program();
        {
            let a = &mut t.asm;
            a.label("main");
            for (i, r) in Reg::GPRS.iter().enumerate() {
                a.li(*r, values[i]);
            }
            a.swi(3); // interrupted with the values live
            // After resumption, store every register to the data region.
            a.push(Reg::R6);
            a.li(Reg::R6, plan.data_base);
            for (i, r) in Reg::GPRS.iter().enumerate() {
                if *r == Reg::R6 {
                    continue;
                }
                a.sw(Reg::R6, (4 * i) as i16, *r);
            }
            // r6 itself was saved on the stack.
            a.pop(Reg::R7);
            a.sw(Reg::R6, 4 * 6, Reg::R7);
            a.halt();
        }
        b.add_trustlet(&plan, t.finish().expect("assembles"), TrustletOptions::default())
            .expect("registers");
        let mut os = b.begin_os();
        let stack_top = os.stack_top;
        os.asm.label("main");
        os.asm.li(Reg::Sp, stack_top);
        os.asm.halt();
        os.asm.label("resume");
        // The OS resumes the trustlet through its entry vector.
        os.asm.li(Reg::R1, plan.continue_entry());
        os.asm.jr(Reg::R1);
        let os_img = os.finish().expect("assembles");
        b.set_os(os_img, &[(vectors::swi_vector(3), "resume")]);
        let mut p = b.build().expect("boots");

        p.start_trustlet("probe").expect("starts");
        let exit = p.run(100_000);
        prop_assert!(
            matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
            "{exit:?}"
        );
        for (i, expected) in values.iter().enumerate() {
            // r7 is clobbered by the final bookkeeping; every other GPR
            // must round-trip exactly.
            if i == 7 {
                continue;
            }
            let got = p.machine.sys.hw_read32(plan.data_base + 4 * i as u32).expect("read");
            prop_assert_eq!(got, *expected, "r{} corrupted across preemption", i);
        }
    }
}
