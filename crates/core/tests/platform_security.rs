//! End-to-end security tests: the Section 6 requirements exercised with
//! adversarial in-simulator programs.

use trustlite::attest::{self, Challenge};
use trustlite::platform::PlatformBuilder;
use trustlite::spec::{PeriphGrant, TrustletOptions};
use trustlite::TrustliteError;
use trustlite_cpu::{vectors, HaltReason, RunExit};
use trustlite_crypto::hmac_sha256;
use trustlite_isa::Reg;
use trustlite_mem::map;
use trustlite_mpu::{AccessKind, Perms};

const SECRET: u32 = 0x5ec2_e700;

/// Builds a platform with trustlet A (writes a secret into its data
/// region, then halts) and an OS whose `main` is provided by the caller.
/// The OS gets a fault handler that stores the MPU fault address in `r7`
/// and halts.
fn build_two_party(
    os_body: impl FnOnce(&mut trustlite_isa::Asm, &trustlite::TrustletPlan),
) -> trustlite::Platform {
    let mut b = PlatformBuilder::new();
    let plan_a = b.plan_trustlet("alpha", 0x200, 0x100, 0x100);
    let mut t = plan_a.begin_program();
    t.asm.label("main");
    t.asm.li(Reg::R1, plan_a.data_base);
    t.asm.li(Reg::R0, SECRET);
    t.asm.sw(Reg::R1, 0, Reg::R0);
    t.asm.halt();
    let img = t.finish().unwrap();
    b.add_trustlet(&plan_a, img, TrustletOptions::default())
        .unwrap();

    let mut os = b.begin_os();
    os.asm.label("main");
    os.asm.li(Reg::Sp, os.stack_top);
    os_body(&mut os.asm, &plan_a);
    os.asm.label("fault_handler");
    // Frame: [sp+0] = fault address.
    os.asm.lw(Reg::R7, Reg::Sp, 0);
    os.asm.halt();
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[(vectors::VEC_MPU_FAULT, "fault_handler")]);
    b.build().unwrap()
}

#[test]
fn trustlet_writes_its_private_data() {
    let mut p = build_two_party(|asm, _| {
        asm.halt();
    });
    p.start_trustlet("alpha").unwrap();
    let exit = p.run(1000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    let data_base = p.plan("alpha").unwrap().data_base;
    assert_eq!(p.machine.sys.hw_read32(data_base).unwrap(), SECRET);
}

#[test]
fn os_cannot_read_trustlet_data() {
    let mut p = build_two_party(|asm, plan| {
        asm.li(Reg::R1, plan.data_base);
        asm.lw(Reg::R0, Reg::R1, 0); // must fault
        asm.halt(); // not reached
    });
    let exit = p.run(1000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    let rec = p.machine.exc_log.last().expect("fault recorded");
    assert_eq!(rec.vector, vectors::VEC_MPU_FAULT);
    let data_base = p.plan("alpha").unwrap().data_base;
    assert_eq!(
        p.machine.regs.get(Reg::R7),
        data_base,
        "handler saw the fault address"
    );
    assert_eq!(p.machine.regs.get(Reg::R0), 0, "no data leaked into r0");
}

#[test]
fn os_cannot_write_trustlet_code() {
    let mut p = build_two_party(|asm, plan| {
        asm.li(Reg::R1, plan.code_base + 16);
        asm.li(Reg::R0, 0x0bad_c0de);
        asm.sw(Reg::R1, 0, Reg::R0);
        asm.halt();
    });
    let code_addr = p.plan("alpha").unwrap().code_base + 16;
    let before = p.machine.sys.hw_read32(code_addr).unwrap();
    p.run(1000);
    assert_eq!(p.machine.regs.get(Reg::R7), code_addr);
    assert_eq!(
        p.machine.sys.hw_read32(code_addr).unwrap(),
        before,
        "code intact"
    );
}

#[test]
fn os_cannot_jump_into_trustlet_body() {
    // Jumping to `main` directly (past the entry vector) must fault.
    let mut p = build_two_party(|asm, plan| {
        asm.li(Reg::R1, plan.code_base + plan.entry_len + 24);
        asm.jr(Reg::R1);
    });
    p.run(1000);
    let rec = p.machine.exc_log.last().expect("fault recorded");
    assert_eq!(rec.vector, vectors::VEC_MPU_FAULT);
    // The trustlet never ran: its data region holds no secret.
    let data_base = p.plan("alpha").unwrap().data_base;
    assert_eq!(p.machine.sys.hw_read32(data_base).unwrap(), 0);
}

#[test]
fn os_can_enter_via_entry_vector() {
    let mut p = build_two_party(|asm, plan| {
        asm.li(Reg::R1, plan.continue_entry());
        asm.jr(Reg::R1);
    });
    let exit = p.run(2000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    let data_base = p.plan("alpha").unwrap().data_base;
    assert_eq!(
        p.machine.sys.hw_read32(data_base).unwrap(),
        SECRET,
        "trustlet ran"
    );
}

#[test]
fn os_cannot_reprogram_the_mpu() {
    let mut p = build_two_party(|asm, _| {
        asm.li(Reg::R1, map::MPU_MMIO_BASE);
        asm.li(Reg::R0, 0);
        asm.sw(Reg::R1, 0, Reg::R0); // attempt to clear slot 0 START
        asm.halt();
    });
    let writes_before = p.machine.sys.mpu.write_count();
    let slots_before: Vec<_> = p.machine.sys.mpu.slots().to_vec();
    p.run(1000);
    assert_eq!(
        p.machine.regs.get(Reg::R7),
        map::MPU_MMIO_BASE,
        "write faulted"
    );
    assert_eq!(p.machine.sys.mpu.write_count(), writes_before);
    assert_eq!(
        p.machine.sys.mpu.slots(),
        slots_before.as_slice(),
        "policy unchanged"
    );
}

#[test]
fn os_can_read_mpu_policy() {
    // Reading the MPU registers is allowed (local attestation needs it).
    let mut p = build_two_party(|asm, _| {
        asm.li(Reg::R1, map::MPU_MMIO_BASE);
        asm.lw(Reg::R2, Reg::R1, 0); // slot 0 START
        asm.halt();
    });
    let exit = p.run(1000);
    assert!(matches!(exit, RunExit::Halted(HaltReason::Halt { .. })));
    let os_base = p.os.image.base;
    assert_eq!(
        p.machine.regs.get(Reg::R2),
        os_base,
        "slot 0 is the OS code rule"
    );
}

#[test]
fn trustlet_table_read_only_for_software() {
    let tt = trustlite::layout::tt_base();
    let mut p = build_two_party(move |asm, _| {
        asm.li(Reg::R1, tt);
        asm.lw(Reg::R2, Reg::R1, 0); // read OK
        asm.li(Reg::R0, 0xffff_ffff);
        asm.sw(Reg::R1, 0, Reg::R0); // write must fault
        asm.halt();
    });
    p.run(1000);
    let rec = p.machine.exc_log.last().expect("fault recorded");
    assert_eq!(rec.vector, vectors::VEC_MPU_FAULT);
    assert_eq!(p.machine.regs.get(Reg::R7), tt);
    assert_eq!(
        p.machine.regs.get(Reg::R2),
        0xA0,
        "read of trustlet id succeeded"
    );
}

#[test]
fn loader_report_counts_three_writes_per_region() {
    let p = build_two_party(|asm, _| {
        asm.halt();
    });
    let r = &p.report;
    assert_eq!(r.mpu_writes, 3 * r.regions_programmed as u64);
    assert!(r.regions_programmed >= 8, "OS + tables + trustlet rules");
    assert_eq!(r.trustlets, vec!["alpha".to_string()]);
    assert!(r.words_copied > 0);
}

#[test]
fn measurement_matches_host_hash() {
    let mut p = build_two_party(|asm, _| {
        asm.halt();
    });
    let img = p.image("alpha").unwrap().clone();
    let code_size = p.plan("alpha").unwrap().code_size;
    let expected = attest::measure_region(&img.bytes, code_size);
    assert_eq!(p.measurement("alpha").unwrap(), expected);
}

#[test]
fn local_attestation_passes_then_detects_tamper() {
    let mut p = build_two_party(|asm, _| {
        asm.halt();
    });
    let a = attest::local_attest(&mut p, "alpha").unwrap();
    assert!(a.trusted(), "{a}");

    // A physical-level tamper (outside the adversary model, injected via
    // the host load path) must be caught by the measurement check.
    let code_base = p.plan("alpha").unwrap().code_base;
    assert!(p
        .machine
        .sys
        .bus
        .host_load(code_base + 20, &[0xff, 0xff, 0xff, 0xff]));
    let a = attest::local_attest(&mut p, "alpha").unwrap();
    assert!(!a.measurement_ok);
    assert!(!a.trusted());
}

#[test]
fn no_foreign_write_paths_into_trustlet_regions() {
    let p = build_two_party(|asm, _| {
        asm.halt();
    });
    let plan = p.plan("alpha").unwrap().clone();
    let my_slots = p.report.rule_map["alpha"].clone();
    assert!(attest::foreign_write_paths(&p, plan.code_base, plan.code_end(), &my_slots).is_empty());
    assert!(
        attest::foreign_write_paths(&p, plan.data_base, plan.stack_top(), &my_slots).is_empty()
    );
}

#[test]
fn secure_boot_accepts_valid_tag_and_rejects_tampered() {
    let key = [0x11u8; 32];

    let build = |tamper: bool| -> Result<trustlite::Platform, TrustliteError> {
        let mut b = PlatformBuilder::new();
        b.platform_key(key);
        let plan = b.plan_trustlet("signed", 0x200, 0x100, 0x100);
        let mut t = plan.begin_program();
        t.asm.label("main");
        t.asm.halt();
        let img = t.finish().unwrap();
        let mut tag = hmac_sha256(&key, &img.bytes);
        if tamper {
            tag[0] ^= 1;
        }
        b.add_trustlet(
            &plan,
            img,
            TrustletOptions {
                auth_tag: Some(tag),
                ..Default::default()
            },
        )?;
        let mut os = b.begin_os();
        os.asm.label("main");
        os.asm.halt();
        let os_img = os.finish().unwrap();
        b.set_os(os_img, &[]);
        b.build()
    };

    assert!(build(false).is_ok());
    match build(true) {
        Err(TrustliteError::AuthFailed(name)) => assert_eq!(name, "signed"),
        other => panic!("expected AuthFailed, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn exclusive_peripheral_blocks_the_os() {
    // The trustlet owns the UART; the OS's attempt to print must fault.
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("console", 0x300, 0x100, 0x100);
    let mut t = plan.begin_program();
    t.asm.label("main");
    trustlite::runtime::emit_uart_print(&mut t.asm, "tl");
    t.asm.halt();
    let img = t.finish().unwrap();
    b.add_trustlet(
        &plan,
        img,
        TrustletOptions {
            peripherals: vec![PeriphGrant {
                base: map::UART_MMIO_BASE,
                size: map::PERIPH_MMIO_SIZE,
                perms: Perms::RW,
            }],
            ..Default::default()
        },
    )
    .unwrap();
    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    os.asm.label("main");
    os.asm.li(Reg::Sp, stack_top);
    os.asm.li(Reg::R1, map::UART_MMIO_BASE);
    os.asm.li(Reg::R0, b'X' as u32);
    os.asm.sw(Reg::R1, 0, Reg::R0); // must fault
    os.asm.halt();
    os.asm.label("fault_handler");
    os.asm.halt();
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[(vectors::VEC_MPU_FAULT, "fault_handler")]);
    let mut p = b.build().unwrap();

    // OS runs first and faults on the UART.
    p.run(1000);
    assert_eq!(
        p.machine.exc_log.last().unwrap().vector,
        vectors::VEC_MPU_FAULT
    );
    assert!(p.uart_output().is_empty(), "nothing leaked to the UART");

    // The trustlet prints fine.
    p.machine.halted = None;
    p.start_trustlet("console").unwrap();
    p.run(2000);
    assert_eq!(p.uart_output(), b"tl");
}

#[test]
fn shared_region_visible_to_both_parties_only() {
    let mut b = PlatformBuilder::new();
    let shared = b.plan_shared("mailbox", 0x100);
    let plan_a = b.plan_trustlet("writer", 0x200, 0x80, 0x80);
    let plan_b = b.plan_trustlet("reader", 0x200, 0x80, 0x80);

    let mut a = plan_a.begin_program();
    a.asm.label("main");
    a.asm.li(Reg::R1, shared.base);
    a.asm.li(Reg::R0, 0x1234);
    a.asm.sw(Reg::R1, 0, Reg::R0);
    a.asm.halt();
    b.add_trustlet(
        &plan_a,
        a.finish().unwrap(),
        TrustletOptions {
            shared: vec![("mailbox".into(), Perms::RW)],
            ..Default::default()
        },
    )
    .unwrap();

    let mut t = plan_b.begin_program();
    t.asm.label("main");
    t.asm.li(Reg::R1, shared.base);
    t.asm.lw(Reg::R2, Reg::R1, 0);
    t.asm.halt();
    b.add_trustlet(
        &plan_b,
        t.finish().unwrap(),
        TrustletOptions {
            shared: vec![("mailbox".into(), Perms::R)],
            ..Default::default()
        },
    )
    .unwrap();

    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    os.asm.label("main");
    os.asm.li(Reg::Sp, stack_top);
    os.asm.li(Reg::R1, shared.base);
    os.asm.lw(Reg::R2, Reg::R1, 0); // OS is not a participant: fault
    os.asm.halt();
    os.asm.label("fault_handler");
    os.asm.halt();
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[(vectors::VEC_MPU_FAULT, "fault_handler")]);
    let mut p = b.build().unwrap();

    p.start_trustlet("writer").unwrap();
    p.run(1000);
    assert_eq!(p.machine.sys.hw_read32(shared.base).unwrap(), 0x1234);

    p.machine.halted = None;
    p.start_trustlet("reader").unwrap();
    p.run(1000);
    assert_eq!(
        p.machine.regs.get(Reg::R2),
        0x1234,
        "reader sees the mailbox"
    );

    // Reader may not write.
    assert!(!p.machine.sys.mpu.allows(
        p.plan("reader").unwrap().code_base + 32,
        shared.base,
        AccessKind::Write
    ));

    // OS access faults.
    p.machine.halted = None;
    p.machine.regs.ip = p.os.entry;
    p.machine.prev_ip = p.os.entry;
    p.run(1000);
    assert_eq!(
        p.machine.exc_log.last().unwrap().vector,
        vectors::VEC_MPU_FAULT
    );
}

#[test]
fn field_update_allows_designated_updater_only() {
    let mut b = PlatformBuilder::new();
    let plan_target = b.plan_trustlet("target", 0x200, 0x80, 0x80);
    let plan_updater = b.plan_trustlet("updater", 0x200, 0x80, 0x80);

    let mut t = plan_target.begin_program();
    t.asm.label("main");
    t.asm.halt();
    b.add_trustlet(
        &plan_target,
        t.finish().unwrap(),
        TrustletOptions {
            code_writable_by: Some("updater".into()),
            ..Default::default()
        },
    )
    .unwrap();

    // The updater patches a word near the end of the target's region.
    let patch_addr = plan_target.code_end() - 4;
    let mut u = plan_updater.begin_program();
    u.asm.label("main");
    u.asm.li(Reg::R1, patch_addr);
    u.asm.li(Reg::R0, 0x0000_0000); // write a nop
    u.asm.sw(Reg::R1, 0, Reg::R0);
    u.asm.halt();
    b.add_trustlet(
        &plan_updater,
        u.finish().unwrap(),
        TrustletOptions::default(),
    )
    .unwrap();

    let mut os = b.begin_os();
    os.asm.label("main");
    os.asm.halt();
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[]);
    let mut p = b.build().unwrap();

    p.start_trustlet("updater").unwrap();
    let exit = p.run(1000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );

    // The OS still cannot write the target's code.
    assert!(!p
        .machine
        .sys
        .mpu
        .allows(p.os.entry, patch_addr, AccessKind::Write));
    // And the updater could (policy check).
    let updater_ip = p.plan("updater").unwrap().code_base + 32;
    assert!(p
        .machine
        .sys
        .mpu
        .allows(updater_ip, patch_addr, AccessKind::Write));
}

#[test]
fn code_writable_grant_stops_exactly_at_the_region_end() {
    let mut b = PlatformBuilder::new();
    let plan_target = b.plan_trustlet("target", 0x200, 0x80, 0x80);
    let plan_updater = b.plan_trustlet("updater", 0x200, 0x80, 0x80);

    let mut t = plan_target.begin_program();
    t.asm.label("main");
    t.asm.halt();
    b.add_trustlet(
        &plan_target,
        t.finish().unwrap(),
        TrustletOptions {
            code_writable_by: Some("updater".into()),
            ..Default::default()
        },
    )
    .unwrap();

    // The updater writes the LAST word of the grant, then the word one
    // past the end. The first store must land; the second must fault.
    let last_word = plan_target.code_end() - 4;
    let one_past = plan_target.code_end();
    let mut u = plan_updater.begin_program();
    u.asm.label("main");
    u.asm.li(Reg::R1, last_word);
    u.asm.li(Reg::R0, 0xfeed_beef);
    u.asm.sw(Reg::R1, 0, Reg::R0);
    u.asm.li(Reg::R1, one_past);
    u.asm.sw(Reg::R1, 0, Reg::R0); // MPU fault
    u.asm.halt();
    b.add_trustlet(
        &plan_updater,
        u.finish().unwrap(),
        TrustletOptions::default(),
    )
    .unwrap();

    let mut os = b.begin_os();
    os.asm.label("main");
    os.asm.halt();
    os.asm.label("fault_handler");
    os.asm.halt();
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[(vectors::VEC_MPU_FAULT, "fault_handler")]);
    let mut p = b.build().unwrap();

    let updater_ip = p.plan("updater").unwrap().code_base + 32;
    let updater_slot = p
        .machine
        .sys
        .mpu
        .find_exec_region(updater_ip)
        .expect("updater code region programmed");
    let denials_before = p.machine.sys.mpu.slot_denials().to_vec();
    let deny_before = p.machine.sys.mpu.deny_count();

    p.start_trustlet("updater").unwrap();
    let exit = p.run(1000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );

    // The in-bounds patch landed; the out-of-bounds one faulted.
    assert_eq!(p.machine.sys.hw_read32(last_word).unwrap(), 0xfeed_beef);
    assert_eq!(
        p.machine.exc_log.last().unwrap().vector,
        vectors::VEC_MPU_FAULT
    );
    let fault = p.machine.sys.mpu.last_fault().expect("fault latched");
    assert_eq!(fault.addr, one_past);

    // Policy view agrees with what executed.
    assert!(p
        .machine
        .sys
        .mpu
        .allows(updater_ip, last_word, AccessKind::Write));
    assert!(!p
        .machine
        .sys
        .mpu
        .allows(updater_ip, one_past, AccessKind::Write));

    // Exactly one denial, attributed to the updater's code slot.
    assert_eq!(p.machine.sys.mpu.deny_count(), deny_before + 1);
    let denials_after = p.machine.sys.mpu.slot_denials();
    for (i, after) in denials_after.iter().enumerate() {
        let expect = denials_before[i] + u64::from(i == updater_slot);
        assert_eq!(
            *after, expect,
            "slot {i} denial counter (updater slot is {updater_slot})"
        );
    }
}

#[test]
fn remote_attestation_round_trip() {
    let key = [0x42u8; 32];
    let mut b = PlatformBuilder::new();
    b.platform_key(key);
    let plan = b.plan_trustlet("app", 0x200, 0x80, 0x80);
    let mut t = plan.begin_program();
    t.asm.label("main");
    t.asm.halt();
    let img = t.finish().unwrap();
    let expected = attest::measure_region(&img.bytes, plan.code_size);
    b.add_trustlet(&plan, img, TrustletOptions::default())
        .unwrap();
    let mut os = b.begin_os();
    os.asm.label("main");
    os.asm.halt();
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[]);
    let mut p = b.build().unwrap();

    let challenge = Challenge { nonce: [9u8; 16] };
    let response = attest::respond(&mut p, &challenge).unwrap();
    assert!(attest::verify(&key, &challenge, &response, &[expected]));
    assert!(!attest::verify(
        &key,
        &Challenge { nonce: [8u8; 16] },
        &response,
        &[expected]
    ));
}

#[test]
fn stale_memory_cleared_by_protection_not_wiping() {
    // The paper's fast-startup argument: the loader re-establishes rules
    // instead of wiping memory. Simulate stale secrets in SRAM before
    // boot, then show the OS cannot read the trustlet region where they
    // now live.
    let mut p = build_two_party(|asm, plan| {
        asm.li(Reg::R1, plan.data_base);
        asm.lw(Reg::R0, Reg::R1, 0); // fault: stale region is protected
        asm.halt();
    });
    // (Platform is already booted here; the point is the access check.)
    p.run(1000);
    assert_eq!(
        p.machine.exc_log.last().unwrap().vector,
        vectors::VEC_MPU_FAULT
    );
}
