//! Warm-reset behaviour (Section 3.5 / "Fast Startup" in Section 6):
//! reset re-runs the Secure Loader, which re-establishes the protection
//! rules instead of wiping memory. Stale secrets survive physically but
//! are unreachable before any untrusted code executes.

use trustlite::platform::PlatformBuilder;
use trustlite::spec::TrustletOptions;
use trustlite::update::{BootVerdict, SlotState, MAX_BOOT_ATTEMPTS};
use trustlite_cpu::{vectors, HaltReason, RunExit};
use trustlite_isa::Reg;
use trustlite_mem::map;
use trustlite_mpu::AccessKind;

const SECRET: u32 = 0x0dd5_ecee;

fn build() -> (trustlite::Platform, trustlite::TrustletPlan) {
    let mut b = PlatformBuilder::new();
    let plan = b.plan_trustlet("keeper", 0x200, 0x80, 0x80);
    let mut t = plan.begin_program();
    t.asm.label("main");
    t.asm.li(Reg::R1, plan.data_base);
    t.asm.li(Reg::R0, SECRET);
    t.asm.sw(Reg::R1, 0, Reg::R0);
    t.asm.halt();
    b.add_trustlet(&plan, t.finish().unwrap(), TrustletOptions::default())
        .unwrap();
    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    os.asm.label("main");
    os.asm.li(Reg::Sp, stack_top);
    os.asm.li(Reg::R1, plan.data_base);
    os.asm.lw(Reg::R2, Reg::R1, 0); // OS probe of the trustlet's data
    os.asm.halt();
    os.asm.label("fault_handler");
    os.asm.halt();
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[(vectors::VEC_MPU_FAULT, "fault_handler")]);
    (b.build().unwrap(), plan)
}

#[test]
fn stale_secret_survives_reset_but_stays_protected() {
    let (mut p, plan) = build();
    // Run the trustlet so a secret lands in SRAM.
    p.start_trustlet("keeper").unwrap();
    p.run(10_000);
    assert_eq!(p.machine.sys.hw_read32(plan.data_base).unwrap(), SECRET);

    // Warm reset: loader runs again; memory is NOT wiped.
    p.reset().unwrap();
    assert_eq!(
        p.machine.sys.hw_read32(plan.data_base).unwrap(),
        SECRET,
        "no memory wipe happened"
    );
    // But the rules are back before the OS runs: the probe faults.
    let exit = p.run(10_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    let rec = p.machine.exc_log.last().expect("fault recorded");
    assert_eq!(rec.vector, vectors::VEC_MPU_FAULT);
    assert_eq!(p.machine.regs.get(Reg::R2), 0, "stale secret not readable");
}

#[test]
fn reset_reprograms_the_same_policy() {
    let (mut p, plan) = build();
    let before: Vec<_> = p.machine.sys.mpu.slots().to_vec();
    let writes_first_boot = p.report.mpu_writes;
    p.reset().unwrap();
    assert_eq!(
        p.machine.sys.mpu.slots(),
        before.as_slice(),
        "identical rules"
    );
    assert_eq!(
        p.report.mpu_writes, writes_first_boot,
        "same loader work each boot"
    );
    // The trustlet is fully operational again after reset.
    p.machine.sys.hw_write32(plan.data_base, 0).unwrap();
    p.start_trustlet("keeper").unwrap();
    p.run(10_000);
    assert_eq!(p.machine.sys.hw_read32(plan.data_base).unwrap(), SECRET);
}

#[test]
fn reset_restores_clobbered_trustlet_state_tables() {
    let (mut p, plan) = build();
    // Host-level corruption of the Trustlet Table row and the trustlet's
    // image in SRAM (models arbitrary pre-reset machine state).
    p.machine.sys.hw_write32(plan.sp_slot, 0xdead_0000).unwrap();
    assert!(p.machine.sys.bus.host_load(plan.code_base + 12, &[0xff; 4]));
    p.reset().unwrap();
    // The loader re-copied the image and rebuilt the table.
    let row = trustlite_cpu::ttable::read_row(&mut p.machine.sys, p.machine.hw.tt_base, 0).unwrap();
    assert_eq!(row.code_start, plan.code_base);
    assert_ne!(row.saved_sp, 0xdead_0000);
    let a = trustlite::attest::local_attest(&mut p, "keeper").unwrap();
    assert!(a.trusted(), "{a}");
}

#[test]
fn exception_state_cleared_by_reset() {
    let (mut p, _) = build();
    p.run(10_000); // the OS probe faults once
    assert!(!p.machine.exc_log.is_empty());
    p.reset().unwrap();
    assert!(p.machine.exc_log.is_empty());
    assert_eq!(p.machine.cycles, 0);
    assert_eq!(p.machine.regs.ip, p.os.entry);
    // MPU write counter restarted (performance counters are per boot).
    assert_eq!(p.machine.sys.mpu.write_count(), p.report.mpu_writes);
}

/// The trustlet's factory image as the Secure Loader sees it in PROM.
fn prom_image(p: &mut trustlite::Platform, id: u32) -> Vec<u8> {
    let raw = p
        .machine
        .sys
        .bus
        .read_bytes(
            map::PROM_BASE + trustlite::loader::FW_TABLE_OFF,
            map::PROM_SIZE - trustlite::loader::FW_TABLE_OFF,
        )
        .unwrap();
    trustlite::prom::parse(&raw)
        .unwrap()
        .into_iter()
        .find(|e| e.id == id)
        .expect("trustlet present in PROM")
        .code
}

#[test]
fn retained_boot_log_survives_warm_resets() {
    let (mut p, plan) = build();
    let baseline = p.measurement("keeper").unwrap();

    // Stage a behaviour-identical patch: the factory image plus one
    // appended, never-executed word — measurement-distinct, so slot
    // switches are visible in the measurement table.
    let mut patched = prom_image(&mut p, plan.id);
    patched.extend_from_slice(&0x5542_00ed_u32.to_le_bytes());
    p.stage_update("keeper", &patched, 7).unwrap();
    let armed = p.update_block("keeper").unwrap().expect("block armed");
    assert_eq!(armed.state, SlotState::Written);
    assert_eq!(armed.attempts, 0, "no boot consumed the slot yet");

    // First warm reset: the loader boots slot B, burns an attempt and
    // records it in the retained log.
    p.reset().unwrap();
    let b1 = p
        .update_block("keeper")
        .unwrap()
        .expect("retained block survives the warm reset");
    assert_eq!(b1.state, SlotState::Written);
    assert_eq!(b1.attempts, 1);
    let last = *b1.log.last().unwrap();
    assert_eq!(last.verdict, BootVerdict::StagedBoot);
    assert_eq!(last.slot, 1, "slot B was tried");
    assert_eq!(last.attempt, 1);
    assert_eq!(
        p.measurement("keeper").unwrap(),
        trustlite::attest::measure_region(&patched, plan.code_size),
        "the staged image is what got measured"
    );
    assert_ne!(p.measurement("keeper").unwrap(), baseline);

    // The staged image is fully operational.
    p.start_trustlet("keeper").unwrap();
    p.run(10_000);
    assert_eq!(p.machine.sys.hw_read32(plan.data_base).unwrap(), SECRET);

    // Nobody confirms; the counter and the log keep counting across
    // resets (continuity is the whole point of retained memory).
    p.reset().unwrap();
    let b2 = p.update_block("keeper").unwrap().unwrap();
    assert_eq!(b2.attempts, 2);
    assert_eq!(b2.log_total, b1.log_total + 1);

    p.reset().unwrap();
    assert_eq!(
        p.update_block("keeper").unwrap().unwrap().attempts,
        MAX_BOOT_ATTEMPTS
    );

    // The next boot finds the budget spent: rollback to slot A, with
    // the verdict retained for the operator.
    p.reset().unwrap();
    let rolled = p.update_block("keeper").unwrap().unwrap();
    assert_eq!(rolled.state, SlotState::RolledBack);
    let verdict = *rolled.log.last().unwrap();
    assert_eq!(verdict.verdict, BootVerdict::AttemptsExhausted);
    assert_eq!(verdict.slot, 0, "slot A is what boots now");
    assert_eq!(
        p.measurement("keeper").unwrap(),
        baseline,
        "factory image measured again after rollback"
    );
    // The full trail survived every reset: 3 staged boots + rollback.
    assert_eq!(rolled.log_total, 4);
}

#[test]
fn policy_checks_hold_after_many_resets() {
    let (mut p, plan) = build();
    for cycle in 0..5 {
        p.reset().unwrap();
        assert!(
            !p.machine
                .sys
                .mpu
                .allows(p.os.entry + 8, plan.data_base, AccessKind::Read),
            "isolation lost after reset {cycle}"
        );
    }
}
