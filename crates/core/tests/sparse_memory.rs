//! Sparse-memory footprint pins: a freshly booted platform must hold
//! almost nothing resident (DRAM in particular stays near-empty), and
//! the dense/sparse switch must be architecturally invisible.

use trustlite::platform::{Platform, PlatformBuilder};
use trustlite_isa::Reg;
use trustlite_mem::{Ram, PAGE_SIZE};

fn build() -> Platform {
    let mut b = PlatformBuilder::new();
    let mut os = b.begin_os();
    let stack_top = os.stack_top;
    os.asm.label("main");
    os.asm.li(Reg::Sp, stack_top);
    os.asm.li(Reg::R1, 7);
    os.asm.halt();
    let os_img = os.finish().unwrap();
    b.set_os(os_img, &[]);
    b.build().unwrap()
}

#[test]
fn freshly_booted_platform_is_mostly_sparse() {
    let mut p = build();
    let resident = p.resident_bytes();
    let addressable = p.addressable_bytes();
    assert!(addressable >= 1 << 20, "DRAM alone is 1 MiB");
    assert!(
        resident < addressable / 8,
        "boot must not materialize the address space: {resident} of {addressable} bytes resident"
    );
    // DRAM specifically: nothing boots out of it, so it holds ~0 pages
    // (diverge later touches exactly one for the device-id word).
    let dram = p
        .machine
        .sys
        .bus
        .device_mut::<Ram>("dram")
        .expect("dram mapped");
    assert!(
        dram.resident_pages() <= 1,
        "zeroed DRAM must stay sparse, got {} pages",
        dram.resident_pages()
    );
}

#[test]
fn diverge_materializes_one_dram_page() {
    let mut p = build().fork().unwrap();
    p.diverge(42, 1234, [9; 32]).unwrap();
    let dram = p
        .machine
        .sys
        .bus
        .device_mut::<Ram>("dram")
        .expect("dram mapped");
    assert_eq!(dram.resident_pages(), 1, "device-id word costs one page");
    assert_eq!(
        p.machine.sys.hw_read32(Platform::DEVICE_ID_ADDR).unwrap(),
        42
    );
}

#[test]
fn dense_switch_is_architecturally_invisible() {
    let mut sparse = build();
    let mut dense = build();
    dense.set_dense_memory(true).unwrap();
    assert_eq!(dense.resident_bytes(), dense.addressable_bytes());

    sparse.run(10_000);
    dense.run(10_000);
    assert_eq!(sparse.machine.cycles, dense.machine.cycles);
    assert_eq!(sparse.machine.instret, dense.machine.instret);
    assert_eq!(sparse.machine.regs.get(Reg::R1), 7);
    assert_eq!(dense.machine.regs.get(Reg::R1), 7);
    // Full SRAM images identical after running.
    let a = sparse
        .machine
        .sys
        .bus
        .read_bytes(0x1000_0000, 0x4000)
        .unwrap();
    let b = dense
        .machine
        .sys
        .bus
        .read_bytes(0x1000_0000, 0x4000)
        .unwrap();
    assert_eq!(a, b);

    // Round-trip back to sparse drops the zero pages again.
    dense.set_dense_memory(false).unwrap();
    assert!(dense.resident_bytes() < dense.addressable_bytes() / 8);
}

#[test]
fn fork_cost_is_resident_pages_not_address_space() {
    let p = build();
    let before = p.resident_bytes();
    let child = p.fork().unwrap();
    assert_eq!(child.resident_bytes(), before, "fork shares, never copies");
    // A dense platform's fork deep-copies the whole address space; the
    // sparse one carries only what boot actually touched.
    assert!(u64::from(PAGE_SIZE) * 4 < p.addressable_bytes());
}
