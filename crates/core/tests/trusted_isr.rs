//! Trusted interrupt service routines (paper Sections 3.3 and 6, "Fault
//! Tolerance"): a trustlet owns the alarm timer exclusively and points
//! the peripheral's `handler(ISR)` register at its *own* code. The
//! hardware vectors the interrupt directly into the trustlet — the OS
//! can neither suppress the alarm (no write access to the timer) nor
//! observe the ISR's work. The ISR then `iret`s back into whatever was
//! running. This is the paper's "trustlets ... may also implement ISRs
//! and hardware drivers on their own, thus preventing trivial
//! denial-of-service attacks".

use trustlite::platform::PlatformBuilder;
use trustlite::spec::{PeriphGrant, TrustletOptions};
use trustlite_cpu::{HaltReason, RunExit};
use trustlite_isa::Reg;
use trustlite_mem::map;
use trustlite_mpu::{AccessKind, Perms};
use trustlite_periph::timer;

/// Builds: a watchdog trustlet owning the timer with a private tick
/// counter, an OS that busy-works. The watchdog's ISR lives inside its
/// protected code region (not the entry vector); it is reached only via
/// hardware vectoring.
fn build() -> (trustlite::Platform, trustlite::TrustletPlan, u32) {
    let mut b = PlatformBuilder::new();

    // The OS is created first so its exception-frame stack region is
    // known; the watchdog needs read access to the frame for `iret`.
    let mut os = b.begin_os();
    let os_data = os.data_base;
    let os_stack_top = os.stack_top;
    let stack_top = os.stack_top;
    {
        let a = &mut os.asm;
        a.label("main");
        a.li(Reg::Sp, stack_top);
        a.ei();
        // Busy-work: increment r2 until it reaches a bound, then halt.
        a.li(Reg::R2, 0);
        a.li(Reg::R3, 2000);
        a.label("work");
        a.bge(Reg::R2, Reg::R3, "works_done");
        a.addi(Reg::R2, Reg::R2, 1);
        a.jmp("work");
        a.label("works_done");
        a.halt();
    }
    let os_img = os.finish().unwrap();

    let plan = b.plan_trustlet("watchdog", 0x200, 0x80, 0x80);
    let mut t = plan.begin_program();
    {
        let a = &mut t.asm;
        a.label("main");
        // Configure the timer: auto-reload, ISR = our own handler.
        a.li(Reg::R1, map::TIMER_MMIO_BASE);
        a.la(Reg::R2, "isr");
        a.sw(Reg::R1, timer::regs::HANDLER as i16, Reg::R2);
        a.li(Reg::R2, 150);
        a.sw(Reg::R1, timer::regs::PERIOD as i16, Reg::R2);
        a.li(Reg::R2, timer::CTRL_ENABLE | timer::CTRL_AUTO_RELOAD);
        a.sw(Reg::R1, timer::regs::CTRL as i16, Reg::R2);
        // Hand control to the OS entry (the loader launched us first via
        // start_trustlet in this test).
        a.li(Reg::R1, 0); // patched by the test via register
        a.halt();
        // The trusted ISR: runs on the OS exception frame; bumps the
        // private tick counter, then returns to the interrupted code.
        a.label("isr");
        a.li(Reg::R6, plan.data_base);
        a.lw(Reg::R7, Reg::R6, 0);
        a.addi(Reg::R7, Reg::R7, 1);
        a.sw(Reg::R6, 0, Reg::R7);
        a.iret();
    }
    let img = t.finish().unwrap();
    let isr = img.expect_symbol("isr");
    b.add_trustlet(
        &plan,
        img,
        TrustletOptions {
            peripherals: vec![
                PeriphGrant {
                    base: map::TIMER_MMIO_BASE,
                    size: map::PERIPH_MMIO_SIZE,
                    perms: Perms::RW,
                },
                // Read access to the OS data/stack region so `iret` can
                // pop the exception frame (an explicit policy choice for
                // ISR-implementing trustlets).
                PeriphGrant {
                    base: os_data,
                    size: os_stack_top - os_data,
                    perms: Perms::R,
                },
            ],
            ..Default::default()
        },
    )
    .unwrap();

    b.set_os(os_img, &[]);
    (b.build().unwrap(), plan, isr)
}

#[test]
fn trustlet_isr_ticks_while_the_os_runs() {
    let (mut p, plan, _) = build();
    // Let the watchdog configure its timer first.
    p.start_trustlet("watchdog").unwrap();
    p.run(10_000);
    assert!(matches!(p.machine.halted, Some(HaltReason::Halt { .. })));

    // Now run the OS; the timer fires into the trustlet ISR repeatedly.
    p.machine.halted = None;
    p.machine.regs.ip = p.os.entry;
    p.machine.prev_ip = p.os.entry;
    let exit = p.run(100_000);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );

    let ticks = p.machine.sys.hw_read32(plan.data_base).unwrap();
    assert!(
        ticks >= 5,
        "watchdog ticked {ticks} times during OS execution"
    );
    // The OS finished its work despite the interruptions.
    assert_eq!(p.machine.regs.get(Reg::R2), 2000);
}

#[test]
fn os_cannot_suppress_or_retarget_the_watchdog() {
    let (p, _, isr) = build();
    let mpu = &p.machine.sys.mpu;
    let os_ip = p.os.entry + 8;
    // The OS can neither disable the timer nor redirect its handler.
    assert!(!mpu.allows(
        os_ip,
        map::TIMER_MMIO_BASE + timer::regs::CTRL,
        AccessKind::Write
    ));
    assert!(!mpu.allows(
        os_ip,
        map::TIMER_MMIO_BASE + timer::regs::HANDLER,
        AccessKind::Write
    ));
    // Nor execute or tamper with the ISR itself.
    assert!(!mpu.allows(os_ip, isr, AccessKind::Execute));
    assert!(!mpu.allows(os_ip, isr, AccessKind::Write));
}

#[test]
fn isr_work_is_invisible_to_the_os() {
    let (mut p, plan, _) = build();
    p.start_trustlet("watchdog").unwrap();
    p.run(10_000);
    p.machine.halted = None;
    p.machine.regs.ip = p.os.entry;
    p.machine.prev_ip = p.os.entry;
    p.run(100_000);
    // The tick counter lives in the watchdog's private data region.
    assert!(!p
        .machine
        .sys
        .mpu
        .allows(p.os.entry + 8, plan.data_base, AccessKind::Read));
}
