//! The cycle-cost model of the simulated core.
//!
//! The values are chosen so the exception-entry totals match the
//! Siskiyou-Peak measurements reported in the paper (Section 5.4): the
//! unmodified engine needs **21 cycles** from recognizing an exception to
//! the first ISR instruction, and the secure flow adds **2** (trustlet
//! region match), **10** (store all state but the stack pointer) and **9**
//! (clear eight GPRs + store the stack pointer into the Trustlet Table)
//! cycles when a trustlet is interrupted, and 2 cycles otherwise.
//!
//! Instruction costs are deliberately simple (single-issue in-order core,
//! on-chip single-cycle memories): they matter for *relative* comparisons
//! between code paths, not absolute wall-clock claims.

/// Base cost of any retired instruction.
pub const BASE: u64 = 1;
/// Extra cycles for a data-memory access (load/store/push/pop).
pub const MEM_EXTRA: u64 = 1;
/// Extra cycles for a multiply.
pub const MUL_EXTRA: u64 = 2;
/// Extra cycles for a divide/remainder (iterative divider).
pub const DIV_EXTRA: u64 = 16;
/// Extra cycles when a control transfer is taken (pipeline refill).
pub const TAKEN_CF: u64 = 1;

// --- Regular exception engine (totals 21) ---

/// Recognize the exception and flush the 5-stage pipeline.
pub const EXC_FLUSH: u64 = 4;
/// Read the OS stack pointer from its well-known location (TSS analogue).
pub const EXC_LOAD_OS_SP: u64 = 3;
/// Store interrupted SP, IP and FLAGS onto the OS stack (3 words).
pub const EXC_SAVE_MIN_CTX: u64 = 6;
/// Store the error code and faulting address (2 words).
pub const EXC_ERROR_PARAMS: u64 = 4;
/// Look up the handler (IDT or peripheral vector) and redirect fetch.
pub const EXC_VECTOR: u64 = 4;

/// Total cycles of the regular exception entry flow.
pub const EXC_REGULAR_TOTAL: u64 =
    EXC_FLUSH + EXC_LOAD_OS_SP + EXC_SAVE_MIN_CTX + EXC_ERROR_PARAMS + EXC_VECTOR;

// --- Secure exception engine additions (Section 3.4 / 5.4) ---

/// Match the interrupted IP against the Trustlet Table code regions.
pub const SEC_DETECT: u64 = 2;
/// Store one word of trustlet state onto the trustlet stack.
pub const SEC_SAVE_WORD: u64 = 1;
/// Number of words saved: r0..r7, FLAGS, return IP — "all but the ESP".
pub const SEC_SAVED_WORDS: u64 = 10;
/// Clear one general-purpose register.
pub const SEC_CLEAR_REG: u64 = 1;
/// Number of cleared GPRs.
pub const SEC_CLEARED_REGS: u64 = 8;
/// Store the trustlet's SP into its Trustlet Table row.
pub const SEC_TT_WRITE: u64 = 1;

/// Extra cycles the secure engine spends when a trustlet was interrupted.
pub const SEC_TRUSTLET_EXTRA: u64 =
    SEC_DETECT + SEC_SAVED_WORDS * SEC_SAVE_WORD + SEC_CLEARED_REGS * SEC_CLEAR_REG + SEC_TT_WRITE;

/// Extra cycles when the secure engine finds no trustlet match.
pub const SEC_MISS_EXTRA: u64 = SEC_DETECT;

/// Cycles to return from an interrupt (`iret`: pop 5 words + redirect).
pub const IRET_TOTAL: u64 = 8;

/// Context-switch cost of a 32-bit i486 the paper cites for comparison
/// ("at least 107 cycles", Section 5.4).
pub const I486_CONTEXT_SWITCH: u64 = 107;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_total_matches_paper() {
        assert_eq!(EXC_REGULAR_TOTAL, 21);
    }

    #[test]
    fn secure_extra_matches_paper_decomposition() {
        // 2 (detect) + 10 (save all but ESP) + 9 (clear GPRs + TT write).
        assert_eq!(SEC_DETECT, 2);
        assert_eq!(SEC_SAVED_WORDS * SEC_SAVE_WORD, 10);
        assert_eq!(SEC_CLEARED_REGS * SEC_CLEAR_REG + SEC_TT_WRITE, 9);
        assert_eq!(
            SEC_TRUSTLET_EXTRA, 21,
            "100% overhead over the regular flow"
        );
        assert_eq!(SEC_MISS_EXTRA, 2);
    }
}
