//! Synchronous fault types raised during execution.

use core::fmt;

use trustlite_isa::DecodeError;
use trustlite_mem::BusError;
use trustlite_mpu::MpuFault;

/// A synchronous fault raised by instruction execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The MPU denied the access (paper Section 3.2.2).
    Mpu(MpuFault),
    /// The bus rejected the access (unmapped, misaligned, read-only).
    Bus { ip: u32, err: BusError },
    /// The fetched word is not a valid instruction.
    Illegal {
        ip: u32,
        word: u32,
        err: DecodeError,
    },
}

impl Fault {
    /// The instruction pointer at which the fault occurred.
    pub fn ip(&self) -> u32 {
        match *self {
            Fault::Mpu(f) => f.ip,
            Fault::Bus { ip, .. } => ip,
            Fault::Illegal { ip, .. } => ip,
        }
    }

    /// The faulting data address, where applicable (the second exception
    /// argument pushed by the engine; zero for illegal instructions).
    pub fn fault_addr(&self) -> u32 {
        match *self {
            Fault::Mpu(f) => f.addr,
            Fault::Bus { err, .. } => err.addr(),
            Fault::Illegal { .. } => 0,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Mpu(e) => write!(f, "{e}"),
            Fault::Bus { ip, err } => write!(f, "bus fault at ip {ip:#010x}: {err}"),
            Fault::Illegal { ip, word, err } => {
                write!(f, "illegal instruction {word:#010x} at {ip:#010x}: {err}")
            }
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlite_mpu::AccessKind;

    #[test]
    fn accessors() {
        let f = Fault::Mpu(MpuFault {
            ip: 1,
            addr: 2,
            kind: AccessKind::Read,
        });
        assert_eq!(f.ip(), 1);
        assert_eq!(f.fault_addr(), 2);
        let b = Fault::Bus {
            ip: 3,
            err: BusError::Unmapped { addr: 4 },
        };
        assert_eq!(b.ip(), 3);
        assert_eq!(b.fault_addr(), 4);
    }
}
