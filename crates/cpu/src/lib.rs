//! The SP32 CPU core simulator.
//!
//! Models the class of core the TrustLite prototype extends (Intel
//! Siskiyou Peak: 32-bit, single-issue, 5-stage, Harvard-style), with the
//! paper's two hardware additions wired in:
//!
//! * every access is validated by the **EA-MPU** before it reaches the
//!   bus, with the current instruction pointer as the subject
//!   (`trustlite-mpu`, paper Figure 2);
//! * the exception engine optionally implements the **secure exception
//!   flow** of Section 3.4: on interrupting a trustlet it saves the
//!   complete CPU state to the *trustlet's* stack, records the stack
//!   pointer in the Trustlet Table, clears the general-purpose registers,
//!   and only then switches to the OS stack and invokes the (untrusted)
//!   handler.
//!
//! Cycle accounting follows the paper's Section 5.4 numbers structurally:
//! the regular exception entry takes [`costs::EXC_REGULAR_TOTAL`] = 21
//! cycles; the secure flow adds 2 cycles of trustlet detection, one cycle
//! per saved word (10: eight GPRs, flags, return IP — "all but the ESP"),
//! and one cycle per cleared register plus the Trustlet Table write (9).
//! The totals *emerge from operation counts*, they are not asserted.

pub mod costs;
pub mod fault;
pub mod machine;
pub mod predecode;
pub mod regs;
pub mod sysbus;
pub mod ttable;
pub mod vectors;

pub use fault::Fault;
pub use machine::{ExcRecord, ExtUnit, HaltReason, HwConfig, Machine, RunExit, StepOutcome};
pub use predecode::{BlockStats, PredecodeStats};
pub use regs::{Flags, RegFile};
pub use sysbus::SystemBus;
pub use ttable::{TrustletRow, TT_ROW_BYTES};
