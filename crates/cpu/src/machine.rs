//! The simulated machine: core state, execution loop and exception engine.

use std::collections::VecDeque;

use trustlite_isa::{decode, Instr, Reg};
use trustlite_mem::BusError;
use trustlite_obs::{Event, MetricsReport, ObsLevel};

use crate::costs;
use crate::fault::Fault;
use crate::regs::{Flags, RegFile};
use crate::sysbus::SystemBus;
use crate::ttable::{self, TrustletRow};
use crate::vectors;

/// Hardware configuration pins and loader-programmed CSRs.
///
/// On real hardware these are MMIO/CSR values the Secure Loader programs
/// during boot and then locks; the host-side loader model writes them
/// directly. `os_region` is the code range treated as "already executing
/// from the OS region" for the stack-switch decision in Figure 4 step (3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HwConfig {
    /// Whether the TrustLite secure exception engine is instantiated.
    pub secure_exceptions: bool,
    /// Base address of the 32-entry interrupt descriptor table.
    pub idt_base: u32,
    /// Address of the memory cell holding the OS stack top (TSS analogue).
    pub os_sp_cell: u32,
    /// The OS code region `(start, end)`; interrupts from inside do not
    /// switch stacks.
    pub os_region: (u32, u32),
    /// Base address of the Trustlet Table.
    pub tt_base: u32,
    /// Number of valid Trustlet Table rows.
    pub tt_count: u32,
}

/// Why the machine stopped executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// A `halt` instruction retired.
    Halt { ip: u32 },
    /// An unrecoverable fault inside the exception engine itself (e.g.
    /// the trustlet stack save faulted — the paper's footnote-1 situation
    /// — or the IDT entry is unconfigured).
    DoubleFault(Fault),
}

/// The result of one [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired normally.
    Retired,
    /// An exception or interrupt was taken.
    ExceptionTaken {
        /// The resolved vector.
        vector: u8,
        /// Trustlet Table row index if a trustlet was interrupted.
        trustlet: Option<u32>,
    },
    /// The machine is halted.
    Halted,
}

/// The result of a bounded [`Machine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// The machine halted.
    Halted(HaltReason),
    /// The step budget was exhausted first.
    StepLimit,
}

/// One entry of the exception log (the Section 5.4 measurement record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExcRecord {
    /// Resolved vector number.
    pub vector: u8,
    /// Instruction pointer that was interrupted.
    pub interrupted_ip: u32,
    /// Trustlet Table row index, if a trustlet was interrupted.
    pub trustlet: Option<u32>,
    /// Cycles spent by the engine from recognition to the first ISR
    /// instruction.
    pub entry_cycles: u64,
    /// Cycle counter value when the exception was recognized.
    pub at_cycle: u64,
}

/// A platform extension unit giving meaning to the `0xE0..=0xEF` opcodes
/// (used by the Sancus baseline model). The `Any` supertrait lets hosts
/// downcast the installed unit for inspection. `Send` lets a machine
/// carrying an extension unit migrate to a fleet worker thread.
pub trait ExtUnit: std::any::Any + Send {
    /// Executes extension instruction `op` with operands `rd`, `rs1`,
    /// `imm`; returns the cycle cost.
    #[allow(clippy::too_many_arguments)] // mirrors the hardware interface
    fn exec(
        &mut self,
        regs: &mut RegFile,
        sys: &mut SystemBus,
        ip: u32,
        op: u8,
        rd: Reg,
        rs1: Reg,
        imm: u16,
    ) -> Result<u64, Fault>;
}

enum Exec {
    Done(u64),
    Halt,
    Swi(u8),
}

/// The simulated machine.
pub struct Machine {
    /// Architectural registers.
    pub regs: RegFile,
    /// The memory system (EA-MPU + bus).
    pub sys: SystemBus,
    /// Loader-programmed hardware configuration.
    pub hw: HwConfig,
    /// Cycle counter.
    pub cycles: u64,
    /// Retired-instruction counter.
    pub instret: u64,
    /// Halt state, if halted.
    pub halted: Option<HaltReason>,
    /// Exception log for measurements.
    pub exc_log: Vec<ExcRecord>,
    /// Optional extension unit (Sancus baseline).
    pub ext: Option<Box<dyn ExtUnit>>,
    /// Address of the most recently executed instruction; the EA-MPU
    /// subject of the next instruction fetch (see [`SystemBus::fetch`]).
    pub prev_ip: u32,
    pending_irqs: VecDeque<trustlite_mem::IrqRequest>,
    /// Bit `line` set iff an IRQ for that line is queued — O(1) dedup in
    /// [`Machine::raise_irq`].
    pending_irq_mask: [u64; 4],
    /// Cached `mpu.slot{i}.grants` metric names, built once per slot
    /// count instead of being formatted on every snapshot.
    slot_metric_names: Vec<String>,
}

impl Machine {
    /// Creates a machine around `sys` with the reset IP at `reset_vector`.
    pub fn new(sys: SystemBus, reset_vector: u32) -> Self {
        let regs = RegFile {
            ip: reset_vector,
            ..RegFile::default()
        };
        Machine {
            regs,
            sys,
            hw: HwConfig::default(),
            cycles: 0,
            instret: 0,
            halted: None,
            exc_log: Vec::new(),
            ext: None,
            prev_ip: reset_vector,
            pending_irqs: VecDeque::new(),
            pending_irq_mask: [0; 4],
            slot_metric_names: Vec::new(),
        }
    }

    /// Deep-copies the whole machine for snapshot/fork: registers,
    /// counters, pending interrupts, the full memory system (bus devices,
    /// EA-MPU with its epoch counters, telemetry recorder, predecode
    /// table). Fails with a diagnostic name if a mapped device does not
    /// support snapshotting, or with `"ext"` if an extension unit is
    /// installed — extension units hold opaque host state and the
    /// baselines that use them never fork.
    pub fn snapshot(&self) -> Result<Machine, &'static str> {
        if self.ext.is_some() {
            return Err("ext");
        }
        Ok(Machine {
            regs: self.regs,
            sys: self.sys.snapshot()?,
            hw: self.hw,
            cycles: self.cycles,
            instret: self.instret,
            halted: self.halted,
            exc_log: self.exc_log.clone(),
            ext: None,
            prev_ip: self.prev_ip,
            pending_irqs: self.pending_irqs.clone(),
            pending_irq_mask: self.pending_irq_mask,
            slot_metric_names: self.slot_metric_names.clone(),
        })
    }

    /// Enables or disables the per-instruction trace: a shorthand for
    /// raising the telemetry level to [`ObsLevel::Full`] (the firehose
    /// that replaced the legacy `(cycle, ip, instr)` ring) or dropping it
    /// back to [`ObsLevel::Off`].
    pub fn set_trace(&mut self, enabled: bool) {
        self.sys.obs.set_level(if enabled {
            ObsLevel::Full
        } else {
            ObsLevel::Off
        });
    }

    /// The retired-instruction trace reconstructed from the event ring,
    /// oldest first (requires [`ObsLevel::Full`] while running).
    pub fn trace(&self) -> Vec<(u64, u32, Instr)> {
        self.sys
            .obs
            .ring
            .iter()
            .filter_map(|e| match e {
                Event::InstrRetired {
                    cycle, ip, word, ..
                } => decode(*word).ok().map(|i| (*cycle, *ip, i)),
                _ => None,
            })
            .collect()
    }

    /// Snapshots the metrics registry, folding in the EA-MPU hardware
    /// counters, the machine counters and the cycle attribution table.
    pub fn metrics_report(&mut self) -> MetricsReport {
        let checks = self.sys.mpu.check_count();
        let denials = self.sys.mpu.deny_count();
        let writes = self.sys.mpu.write_count();
        let hits: Vec<u64> = self.sys.mpu.slot_hits().to_vec();
        if self.slot_metric_names.len() != hits.len() {
            self.slot_metric_names = (0..hits.len())
                .map(|i| format!("mpu.slot{i}.grants"))
                .collect();
        }
        let obs = &mut self.sys.obs;
        obs.metrics.set("cpu.cycles", self.cycles);
        obs.metrics.set("cpu.instret", self.instret);
        obs.metrics.set("mpu.checks", checks);
        obs.metrics.set("mpu.denials", denials);
        obs.metrics.set("mpu.reg_writes", writes);
        for (i, h) in hits.iter().enumerate() {
            if *h > 0 {
                obs.metrics.set(&self.slot_metric_names[i], *h);
            }
        }
        obs.metrics.set("obs.events_dropped", obs.ring.dropped());
        if obs.attr.switch_count() > 0 {
            obs.metrics
                .set("sched.context_switches", obs.attr.switch_count());
        }
        let mut report = obs.metrics.snapshot();
        report.attribution = obs.attr.report();
        report
    }

    /// Queues an external interrupt request (test/diagnostic injection;
    /// peripherals raise theirs through the bus tick). Requests for a
    /// line that is already pending are coalesced, tracked by a per-line
    /// bitmask rather than a queue scan.
    pub fn raise_irq(&mut self, irq: trustlite_mem::IrqRequest) {
        let (w, b) = (usize::from(irq.line >> 6), irq.line & 63);
        if self.pending_irq_mask[w] & (1 << b) == 0 {
            self.pending_irq_mask[w] |= 1 << b;
            self.pending_irqs.push_back(irq);
        }
    }

    /// Returns true if any interrupt is pending delivery.
    pub fn irq_pending(&self) -> bool {
        !self.pending_irqs.is_empty()
    }

    /// Executes one instruction (or delivers one exception/interrupt).
    pub fn step(&mut self) -> StepOutcome {
        if self.halted.is_some() {
            return StepOutcome::Halted;
        }
        // Event/metric stamps read `obs.now()` only behind level gates,
        // and the architectural exc_log stamps from `self.cycles`
        // directly, so the clock mirror can be skipped while telemetry
        // is off.
        if self.sys.obs.active() {
            self.sys.obs.set_now(self.cycles);
        }
        // Deliver a pending maskable interrupt first.
        if self.regs.flags.ie {
            if let Some(irq) = self.pending_irqs.pop_front() {
                self.pending_irq_mask[usize::from(irq.line >> 6)] &= !(1 << (irq.line & 63));
                let vector = vectors::irq_vector(irq.line);
                let ip = self.regs.ip;
                return self.take_exception(vector, irq.handler, ip, irq.line as u32, 0);
            }
        }
        let ip = self.regs.ip;
        let (word, instr) = match self.sys.fetch_instr(self.prev_ip, ip) {
            Ok(wi) => wi,
            Err(f) => return self.take_fault(f),
        };
        match self.exec(ip, instr) {
            Ok(Exec::Done(cost)) => {
                self.prev_ip = ip;
                self.observe_retired(ip, word, cost);
                self.retire(cost);
                StepOutcome::Retired
            }
            Ok(Exec::Halt) => {
                self.prev_ip = ip;
                self.observe_retired(ip, word, costs::BASE);
                self.retire(costs::BASE);
                self.halted = Some(HaltReason::Halt { ip });
                StepOutcome::Halted
            }
            Ok(Exec::Swi(arg)) => {
                self.prev_ip = ip;
                // The swi itself retires (and costs a cycle) before the
                // exception engine takes over.
                self.observe_retired(ip, word, costs::BASE);
                self.cycles += costs::BASE;
                self.instret += 1;
                let vector = vectors::swi_vector(arg);
                self.take_exception(vector, None, ip + 4, arg as u32, 0)
            }
            Err(f) => self.take_fault(f),
        }
    }

    /// Telemetry hook for one retired instruction: the firehose event plus
    /// cycle attribution to the region owning `ip`.
    #[inline(always)]
    fn observe_retired(&mut self, ip: u32, word: u32, cost: u64) {
        if self.sys.obs.active() {
            if self.sys.obs.firehose_on() {
                let cycle = self.cycles;
                self.sys.obs.emit_fine(Event::InstrRetired {
                    cycle,
                    ip,
                    word,
                    cost,
                });
            }
            self.sys.obs.charge(ip, cost);
        }
    }

    #[inline(always)]
    fn retire(&mut self, cost: u64) {
        self.cycles += cost;
        self.instret += 1;
        if self.sys.tick_quick(cost) {
            return;
        }
        for irq in self.sys.tick_slow() {
            self.raise_irq(irq);
        }
    }

    /// The single loop body shared by [`Machine::run`] and
    /// [`Machine::run_until`]: steps until `pred` holds, the machine
    /// halts, or the budget runs out, evaluating `pred` exactly once per
    /// machine state.
    fn run_inner(&mut self, max_steps: u64, pred: impl Fn(&Machine) -> bool) -> bool {
        if pred(self) {
            return true;
        }
        for _ in 0..max_steps {
            let halted = matches!(self.step(), StepOutcome::Halted);
            if pred(self) {
                return true;
            }
            if halted {
                return false;
            }
        }
        false
    }

    /// Runs until `pred` holds, the machine halts, or `max_steps` step
    /// events elapse. Returns true if `pred` became true.
    pub fn run_until(&mut self, max_steps: u64, pred: impl Fn(&Machine) -> bool) -> bool {
        self.run_inner(max_steps, pred)
    }

    /// Runs until halt or `max_steps` step events.
    pub fn run(&mut self, max_steps: u64) -> RunExit {
        self.run_inner(max_steps, |m| m.halted.is_some());
        match self.halted {
            Some(r) => RunExit::Halted(r),
            None => RunExit::StepLimit,
        }
    }

    fn take_fault(&mut self, f: Fault) -> StepOutcome {
        if self.sys.obs.active() {
            let name = match f {
                Fault::Mpu(_) => "fault.mpu",
                Fault::Bus { .. } => "fault.bus",
                Fault::Illegal { .. } => "fault.illegal",
            };
            self.sys.obs.metrics.inc(name);
        }
        let vector = vectors::fault_vector(&f);
        let err_code = match f {
            Fault::Mpu(m) => m.kind.code(),
            Fault::Bus { .. } => 0x100,
            Fault::Illegal { word, .. } => word,
        };
        self.take_exception(vector, None, f.ip(), err_code, f.fault_addr())
    }

    /// The exception engine (Figure 4). `handler_override` is the
    /// peripheral-programmed ISR address, if any.
    fn take_exception(
        &mut self,
        vector: u8,
        handler_override: Option<u32>,
        interrupted_ip: u32,
        err_code: u32,
        fault_addr: u32,
    ) -> StepOutcome {
        let at_cycle = self.cycles;
        let mut entry_cycles = costs::EXC_FLUSH;
        let mut trustlet: Option<u32> = None;
        let mut pushed_ip = interrupted_ip;
        let mut pushed_sp = self.regs.sp;
        let mut saved_sp = 0u32;

        if self.hw.secure_exceptions && self.hw.tt_count > 0 {
            entry_cycles += costs::SEC_DETECT;
            let hit = match ttable::find_by_ip(
                &mut self.sys,
                self.hw.tt_base,
                self.hw.tt_count,
                interrupted_ip,
            ) {
                Ok(h) => h,
                Err(err) => {
                    return self.double_fault(Fault::Bus {
                        ip: interrupted_ip,
                        err,
                    });
                }
            };
            if let Some((idx, row)) = hit {
                trustlet = Some(idx);
                // (1) Store the CPU state to the current (trustlet) stack:
                // return IP, FLAGS, r0..r7 — all but the stack pointer.
                // These stores are validated with the *trustlet* as the
                // subject; if its stack is broken, this faults and the
                // platform double-faults (paper footnote 1).
                let mut words = [0u32; 10];
                words[0] = interrupted_ip;
                words[1] = self.regs.flags.to_word();
                words[2..].copy_from_slice(&self.regs.gprs);
                for w in words {
                    let new_sp = self.regs.sp.wrapping_sub(4);
                    if let Err(f) = self.sys.store32(interrupted_ip, new_sp, w) {
                        return self.double_fault(f);
                    }
                    self.regs.sp = new_sp;
                    entry_cycles += costs::SEC_SAVE_WORD;
                }
                // (2) Store SP into the Trustlet Table row and clear GPRs.
                let sp_addr = TrustletRow::saved_sp_addr(self.hw.tt_base, idx);
                if let Err(err) = self.sys.hw_write32(sp_addr, self.regs.sp) {
                    return self.double_fault(Fault::Bus {
                        ip: interrupted_ip,
                        err,
                    });
                }
                entry_cycles += costs::SEC_TT_WRITE;
                saved_sp = self.regs.sp;
                self.regs.clear_gprs();
                entry_cycles += costs::SEC_CLEARED_REGS * costs::SEC_CLEAR_REG;
                if self.sys.obs.active() {
                    self.sys.obs.emit(Event::RegsCleared {
                        cycle: at_cycle,
                        count: costs::SEC_CLEARED_REGS as u32,
                    });
                }
                // Sanitize what the untrusted handler will see: the
                // reported IP is the trustlet's entry vector and the saved
                // SP slot is zeroed (the real one lives in the table).
                pushed_ip = row.code_start;
                pushed_sp = 0;
            }
        }

        // (3) Switch to the OS stack unless already executing from the OS
        // region.
        entry_cycles += costs::EXC_LOAD_OS_SP;
        let (os_start, os_end) = self.hw.os_region;
        let in_os = interrupted_ip >= os_start && interrupted_ip < os_end;
        if !in_os {
            match self.sys.hw_read32(self.hw.os_sp_cell) {
                Ok(sp) => self.regs.sp = sp,
                Err(err) => {
                    return self.double_fault(Fault::Bus {
                        ip: interrupted_ip,
                        err,
                    })
                }
            }
        }

        // Push the exception frame: SP, IP, FLAGS, error code, fault
        // address (top of stack = fault address).
        let frame = [
            pushed_sp,
            pushed_ip,
            self.regs.flags.to_word(),
            err_code,
            fault_addr,
        ];
        for w in frame {
            self.regs.sp = self.regs.sp.wrapping_sub(4);
            if let Err(err) = self.sys.hw_write32(self.regs.sp, w) {
                return self.double_fault(Fault::Bus {
                    ip: interrupted_ip,
                    err,
                });
            }
        }
        entry_cycles += costs::EXC_SAVE_MIN_CTX + costs::EXC_ERROR_PARAMS;

        // (4) Resolve and enter the handler with interrupts masked.
        self.regs.flags.ie = false;
        entry_cycles += costs::EXC_VECTOR;
        let handler = match handler_override {
            Some(h) => h,
            None => {
                let slot = self.hw.idt_base + 4 * (vector as u32 % vectors::IDT_ENTRIES);
                match self.sys.hw_read32(slot) {
                    Ok(h) => h,
                    Err(err) => {
                        return self.double_fault(Fault::Bus {
                            ip: interrupted_ip,
                            err,
                        })
                    }
                }
            }
        };
        if handler == 0 {
            // Unconfigured vector: architectural dead end.
            return self.double_fault(Fault::Bus {
                ip: interrupted_ip,
                err: BusError::Unmapped {
                    addr: self.hw.idt_base + 4 * vector as u32,
                },
            });
        }
        // Hardware vectoring is a legitimate control transfer by
        // construction (the IDT and peripheral handler registers are
        // loader-governed): the handler becomes its own fetch subject.
        self.regs.ip = handler;
        self.prev_ip = handler;
        self.cycles += entry_cycles;
        self.exc_log.push(ExcRecord {
            vector,
            interrupted_ip,
            trustlet,
            entry_cycles,
            at_cycle,
        });
        if self.sys.obs.active() {
            self.sys.obs.charge_engine(entry_cycles);
            self.sys.obs.metrics.inc("exc.taken");
            if trustlet.is_some() {
                self.sys.obs.metrics.inc("exc.trustlet_interrupts");
            }
            self.sys
                .obs
                .metrics
                .observe("exc.entry_cycles", entry_cycles);
            self.sys.obs.emit(Event::ExceptionEnter {
                cycle: at_cycle,
                frame: Box::new(trustlite_obs::ExcFrame {
                    vector,
                    trustlet,
                    interrupted_ip,
                    saved_sp,
                    cycles: entry_cycles,
                }),
            });
        }
        StepOutcome::ExceptionTaken { vector, trustlet }
    }

    fn double_fault(&mut self, f: Fault) -> StepOutcome {
        self.halted = Some(HaltReason::DoubleFault(f));
        StepOutcome::Halted
    }

    fn exec(&mut self, ip: u32, i: Instr) -> Result<Exec, Fault> {
        let next = ip.wrapping_add(4);
        let r = &mut self.regs;
        match i {
            Instr::Nop => {
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Halt => Ok(Exec::Halt),
            Instr::Swi(v) => Ok(Exec::Swi(v)),
            Instr::Di => {
                r.flags.ie = false;
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Ei => {
                r.flags.ie = true;
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Iret => {
                // Pop: fault addr, error code, FLAGS, IP, SP (reverse of
                // the push order). Read all words before committing.
                let sp = r.sp;
                let mut vals = [0u32; 5];
                for (k, v) in vals.iter_mut().enumerate() {
                    *v = self.sys.load32(ip, sp.wrapping_add(4 * k as u32))?;
                }
                let [_fault_addr, _err_code, flags, new_ip, new_sp] = vals;
                self.regs.flags = Flags::from_word(flags);
                self.regs.ip = new_ip;
                self.regs.sp = new_sp;
                if self.sys.obs.active() {
                    self.sys.obs.metrics.inc("exc.returns");
                    self.sys
                        .obs
                        .metrics
                        .observe("exc.exit_cycles", costs::IRET_TOTAL);
                    let cycle = self.sys.obs.now();
                    self.sys.obs.emit(Event::ExceptionExit {
                        cycle,
                        resumed_ip: new_ip,
                        cycles: costs::IRET_TOTAL,
                    });
                }
                Ok(Exec::Done(costs::IRET_TOTAL))
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                use trustlite_isa::instr::AluOp;
                let v = op.apply(r.get(rs1), r.get(rs2));
                r.set(rd, v);
                r.ip = next;
                let extra = match op {
                    AluOp::Mul => costs::MUL_EXTRA,
                    AluOp::Divu | AluOp::Remu => costs::DIV_EXTRA,
                    _ => 0,
                };
                Ok(Exec::Done(costs::BASE + extra))
            }
            Instr::Mov { rd, rs1 } => {
                let v = r.get(rs1);
                r.set(rd, v);
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Not { rd, rs1 } => {
                let v = !r.get(rs1);
                r.set(rd, v);
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Addi { rd, rs1, imm } => {
                let v = r.get(rs1).wrapping_add(imm as i32 as u32);
                r.set(rd, v);
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Andi { rd, rs1, imm } => {
                let v = r.get(rs1) & imm as u32;
                r.set(rd, v);
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Ori { rd, rs1, imm } => {
                let v = r.get(rs1) | imm as u32;
                r.set(rd, v);
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Xori { rd, rs1, imm } => {
                let v = r.get(rs1) ^ imm as u32;
                r.set(rd, v);
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Shli { rd, rs1, imm } => {
                let v = r.get(rs1).wrapping_shl(imm as u32);
                r.set(rd, v);
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Shri { rd, rs1, imm } => {
                let v = r.get(rs1).wrapping_shr(imm as u32);
                r.set(rd, v);
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Srai { rd, rs1, imm } => {
                let v = ((r.get(rs1) as i32) >> imm) as u32;
                r.set(rd, v);
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Movi { rd, imm } => {
                r.set(rd, imm as i32 as u32);
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Lui { rd, imm } => {
                r.set(rd, (imm as u32) << 16);
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Lw { rd, rs1, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = self.sys.load32(ip, addr)?;
                self.regs.set(rd, v);
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Sw { rs1, rs2, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = r.get(rs2);
                self.sys.store32(ip, addr, v)?;
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Lb { rd, rs1, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = self.sys.load8(ip, addr)?;
                self.regs.set(rd, v as u32);
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Lbs { rd, rs1, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = self.sys.load8(ip, addr)?;
                self.regs.set(rd, v as i8 as i32 as u32);
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Lh { rd, rs1, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = self.sys.load16(ip, addr)?;
                self.regs.set(rd, v as u32);
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Lhs { rd, rs1, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = self.sys.load16(ip, addr)?;
                self.regs.set(rd, v as i16 as i32 as u32);
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Sh { rs1, rs2, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = r.get(rs2) as u16;
                self.sys.store16(ip, addr, v)?;
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Sb { rs1, rs2, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = r.get(rs2) as u8;
                self.sys.store8(ip, addr, v)?;
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Push { rs } => {
                let v = r.get(rs);
                let new_sp = r.sp.wrapping_sub(4);
                self.sys.store32(ip, new_sp, v)?;
                self.regs.sp = new_sp;
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Pop { rd } => {
                let v = self.sys.load32(ip, r.sp)?;
                self.regs.sp = self.regs.sp.wrapping_add(4);
                self.regs.set(rd, v);
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Pushf => {
                let v = r.flags.to_word();
                let new_sp = r.sp.wrapping_sub(4);
                self.sys.store32(ip, new_sp, v)?;
                self.regs.sp = new_sp;
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Popf => {
                let v = self.sys.load32(ip, r.sp)?;
                self.regs.sp = self.regs.sp.wrapping_add(4);
                self.regs.flags = Flags::from_word(v);
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Jmp { off } => {
                r.ip = next.wrapping_add(off as i32 as u32);
                Ok(Exec::Done(costs::BASE + costs::TAKEN_CF))
            }
            Instr::Jr { rs1 } => {
                r.ip = r.get(rs1);
                Ok(Exec::Done(costs::BASE + costs::TAKEN_CF))
            }
            Instr::Call { off } => {
                let new_sp = r.sp.wrapping_sub(4);
                self.sys.store32(ip, new_sp, next)?;
                self.regs.sp = new_sp;
                self.regs.ip = next.wrapping_add(off as i32 as u32);
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA + costs::TAKEN_CF))
            }
            Instr::Callr { rs1 } => {
                let target = r.get(rs1);
                let new_sp = r.sp.wrapping_sub(4);
                self.sys.store32(ip, new_sp, next)?;
                self.regs.sp = new_sp;
                self.regs.ip = target;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA + costs::TAKEN_CF))
            }
            Instr::Ret => {
                let target = self.sys.load32(ip, r.sp)?;
                self.regs.sp = self.regs.sp.wrapping_add(4);
                self.regs.ip = target;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA + costs::TAKEN_CF))
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                off,
            } => {
                if cond.eval(r.get(rs1), r.get(rs2)) {
                    r.ip = next.wrapping_add(off as i32 as u32);
                    Ok(Exec::Done(costs::BASE + costs::TAKEN_CF))
                } else {
                    r.ip = next;
                    Ok(Exec::Done(costs::BASE))
                }
            }
            Instr::Ext { op, rd, rs1, imm } => {
                let mut ext = match self.ext.take() {
                    Some(e) => e,
                    None => {
                        return Err(Fault::Illegal {
                            ip,
                            word: trustlite_isa::encode(i),
                            err: trustlite_isa::DecodeError::UnknownOpcode(0xe0 | op),
                        })
                    }
                };
                let result = ext.exec(&mut self.regs, &mut self.sys, ip, op, rd, rs1, imm);
                self.ext = Some(ext);
                let cost = result?;
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + cost))
            }
        }
    }
}
