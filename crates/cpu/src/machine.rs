//! The simulated machine: core state, execution loop and exception engine.

use std::collections::VecDeque;

use trustlite_isa::{decode, Instr, Reg};
use trustlite_mem::BusError;
use trustlite_obs::{Event, MetricsReport, ObsLevel};

use crate::costs;
use crate::fault::Fault;
use crate::predecode::{DataMemo, MicroOp};
use crate::regs::{Flags, RegFile};
use crate::sysbus::SystemBus;
use crate::ttable::{self, TrustletRow};
use crate::vectors;

/// Hardware configuration pins and loader-programmed CSRs.
///
/// On real hardware these are MMIO/CSR values the Secure Loader programs
/// during boot and then locks; the host-side loader model writes them
/// directly. `os_region` is the code range treated as "already executing
/// from the OS region" for the stack-switch decision in Figure 4 step (3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HwConfig {
    /// Whether the TrustLite secure exception engine is instantiated.
    pub secure_exceptions: bool,
    /// Base address of the 32-entry interrupt descriptor table.
    pub idt_base: u32,
    /// Address of the memory cell holding the OS stack top (TSS analogue).
    pub os_sp_cell: u32,
    /// The OS code region `(start, end)`; interrupts from inside do not
    /// switch stacks.
    pub os_region: (u32, u32),
    /// Base address of the Trustlet Table.
    pub tt_base: u32,
    /// Number of valid Trustlet Table rows.
    pub tt_count: u32,
}

/// Why the machine stopped executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// A `halt` instruction retired.
    Halt { ip: u32 },
    /// An unrecoverable fault inside the exception engine itself (e.g.
    /// the trustlet stack save faulted — the paper's footnote-1 situation
    /// — or the IDT entry is unconfigured).
    DoubleFault(Fault),
}

/// The result of one [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired normally.
    Retired,
    /// An exception or interrupt was taken.
    ExceptionTaken {
        /// The resolved vector.
        vector: u8,
        /// Trustlet Table row index if a trustlet was interrupted.
        trustlet: Option<u32>,
    },
    /// The machine is halted.
    Halted,
}

/// The result of a bounded [`Machine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// The machine halted.
    Halted(HaltReason),
    /// The step budget was exhausted first.
    StepLimit,
}

/// One entry of the exception log (the Section 5.4 measurement record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExcRecord {
    /// Resolved vector number.
    pub vector: u8,
    /// Instruction pointer that was interrupted.
    pub interrupted_ip: u32,
    /// Trustlet Table row index, if a trustlet was interrupted.
    pub trustlet: Option<u32>,
    /// Cycles spent by the engine from recognition to the first ISR
    /// instruction.
    pub entry_cycles: u64,
    /// Cycle counter value when the exception was recognized.
    pub at_cycle: u64,
}

/// A platform extension unit giving meaning to the `0xE0..=0xEF` opcodes
/// (used by the Sancus baseline model). The `Any` supertrait lets hosts
/// downcast the installed unit for inspection. `Send` lets a machine
/// carrying an extension unit migrate to a fleet worker thread.
pub trait ExtUnit: std::any::Any + Send {
    /// Executes extension instruction `op` with operands `rd`, `rs1`,
    /// `imm`; returns the cycle cost.
    #[allow(clippy::too_many_arguments)] // mirrors the hardware interface
    fn exec(
        &mut self,
        regs: &mut RegFile,
        sys: &mut SystemBus,
        ip: u32,
        op: u8,
        rd: Reg,
        rs1: Reg,
        imm: u16,
    ) -> Result<u64, Fault>;
}

enum Exec {
    Done(u64),
    Halt,
    Swi(u8),
}

/// Capture levels as const-generic parameters for the monomorphized
/// block loops ([`Machine::exec_block`]): each value of `CAP` compiles a
/// loop whose instrumentation below that level is statically absent —
/// the Off loop contains zero emit-site code, not skipped emit-site
/// code.
pub(crate) const CAP_OFF: u8 = 0;
pub(crate) const CAP_METRICS: u8 = 1;
pub(crate) const CAP_EVENTS: u8 = 2;
pub(crate) const CAP_FULL: u8 = 3;

/// The simulated machine.
pub struct Machine {
    /// Architectural registers.
    pub regs: RegFile,
    /// The memory system (EA-MPU + bus).
    pub sys: SystemBus,
    /// Loader-programmed hardware configuration.
    pub hw: HwConfig,
    /// Cycle counter.
    pub cycles: u64,
    /// Retired-instruction counter.
    pub instret: u64,
    /// Halt state, if halted.
    pub halted: Option<HaltReason>,
    /// Exception log for measurements.
    pub exc_log: Vec<ExcRecord>,
    /// Optional extension unit (Sancus baseline).
    pub ext: Option<Box<dyn ExtUnit>>,
    /// Address of the most recently executed instruction; the EA-MPU
    /// subject of the next instruction fetch (see [`SystemBus::fetch`]).
    pub prev_ip: u32,
    pending_irqs: VecDeque<trustlite_mem::IrqRequest>,
    /// Bit `line` set iff an IRQ for that line is queued — O(1) dedup in
    /// [`Machine::raise_irq`].
    pending_irq_mask: [u64; 4],
    /// Cached `mpu.slot{i}.grants` metric names, built once per slot
    /// count instead of being formatted on every snapshot.
    slot_metric_names: Vec<String>,
    /// Cached `mpu.slot{i}.denials` metric names, same lifecycle.
    slot_denial_names: Vec<String>,
}

impl Machine {
    /// Creates a machine around `sys` with the reset IP at `reset_vector`.
    pub fn new(sys: SystemBus, reset_vector: u32) -> Self {
        let regs = RegFile {
            ip: reset_vector,
            ..RegFile::default()
        };
        Machine {
            regs,
            sys,
            hw: HwConfig::default(),
            cycles: 0,
            instret: 0,
            halted: None,
            exc_log: Vec::new(),
            ext: None,
            prev_ip: reset_vector,
            pending_irqs: VecDeque::new(),
            pending_irq_mask: [0; 4],
            slot_metric_names: Vec::new(),
            slot_denial_names: Vec::new(),
        }
    }

    /// Deep-copies the whole machine for snapshot/fork: registers,
    /// counters, pending interrupts, the full memory system (bus devices,
    /// EA-MPU with its epoch counters, telemetry recorder, predecode
    /// table). Fails with a diagnostic name if a mapped device does not
    /// support snapshotting, or with `"ext"` if an extension unit is
    /// installed — extension units hold opaque host state and the
    /// baselines that use them never fork.
    pub fn snapshot(&self) -> Result<Machine, &'static str> {
        if self.ext.is_some() {
            return Err("ext");
        }
        Ok(Machine {
            regs: self.regs,
            sys: self.sys.snapshot()?,
            hw: self.hw,
            cycles: self.cycles,
            instret: self.instret,
            halted: self.halted,
            exc_log: self.exc_log.clone(),
            ext: None,
            prev_ip: self.prev_ip,
            pending_irqs: self.pending_irqs.clone(),
            pending_irq_mask: self.pending_irq_mask,
            slot_metric_names: self.slot_metric_names.clone(),
            slot_denial_names: self.slot_denial_names.clone(),
        })
    }

    /// Enables or disables the per-instruction trace: a shorthand for
    /// raising the telemetry level to [`ObsLevel::Full`] (the firehose
    /// that replaced the legacy `(cycle, ip, instr)` ring) or dropping it
    /// back to [`ObsLevel::Off`].
    pub fn set_trace(&mut self, enabled: bool) {
        self.sys.obs.set_level(if enabled {
            ObsLevel::Full
        } else {
            ObsLevel::Off
        });
    }

    /// The retired-instruction trace reconstructed from the event ring,
    /// oldest first (requires [`ObsLevel::Full`] while running).
    pub fn trace(&self) -> Vec<(u64, u32, Instr)> {
        self.sys
            .obs
            .ring
            .iter()
            .filter_map(|e| match e {
                Event::InstrRetired {
                    cycle, ip, word, ..
                } => decode(*word).ok().map(|i| (*cycle, *ip, i)),
                _ => None,
            })
            .collect()
    }

    /// Snapshots the metrics registry, folding in the EA-MPU hardware
    /// counters, the machine counters and the cycle attribution table.
    pub fn metrics_report(&mut self) -> MetricsReport {
        let checks = self.sys.mpu.check_count();
        let denials = self.sys.mpu.deny_count();
        let writes = self.sys.mpu.write_count();
        let hits: Vec<u64> = self.sys.mpu.slot_hits().to_vec();
        let slot_denials: Vec<u64> = self.sys.mpu.slot_denials().to_vec();
        if self.slot_metric_names.len() != hits.len() {
            self.slot_metric_names = (0..hits.len())
                .map(|i| format!("mpu.slot{i}.grants"))
                .collect();
            self.slot_denial_names = (0..hits.len())
                .map(|i| format!("mpu.slot{i}.denials"))
                .collect();
        }
        let obs = &mut self.sys.obs;
        obs.metrics.set("cpu.cycles", self.cycles);
        obs.metrics.set("cpu.instret", self.instret);
        obs.metrics.set("mpu.checks", checks);
        obs.metrics.set("mpu.denials", denials);
        obs.metrics.set("mpu.reg_writes", writes);
        for (i, h) in hits.iter().enumerate() {
            if *h > 0 {
                obs.metrics.set(&self.slot_metric_names[i], *h);
            }
        }
        for (i, d) in slot_denials.iter().enumerate() {
            if *d > 0 {
                obs.metrics.set(&self.slot_denial_names[i], *d);
            }
        }
        obs.metrics.set("obs.events_dropped", obs.ring.dropped());
        let pd = self.sys.predecode_stats();
        if pd.hits + pd.misses > 0 {
            let obs = &mut self.sys.obs;
            obs.metrics.set("cpu.predecode.hit", pd.hits);
            obs.metrics.set("cpu.predecode.miss", pd.misses);
            obs.metrics.set("cpu.predecode.flush", pd.flushes);
        }
        let blocks = self.sys.block_stats();
        if blocks.hits + blocks.misses > 0 {
            let hist = self.sys.block_len_histogram().clone();
            let obs = &mut self.sys.obs;
            obs.metrics.set("cpu.block.hit", blocks.hits);
            obs.metrics.set("cpu.block.miss", blocks.misses);
            obs.metrics.set("cpu.block.flush", blocks.flushes);
            obs.metrics.set("cpu.block.instret", blocks.instret);
            obs.metrics.set_histogram("cpu.block.len", hist);
        }
        let obs = &mut self.sys.obs;
        if obs.attr.switch_count() > 0 {
            obs.metrics
                .set("sched.context_switches", obs.attr.switch_count());
        }
        let mut report = obs.metrics.snapshot();
        report.attribution = obs.attr.report();
        report
    }

    /// Queues an external interrupt request (test/diagnostic injection;
    /// peripherals raise theirs through the bus tick). Requests for a
    /// line that is already pending are coalesced, tracked by a per-line
    /// bitmask rather than a queue scan.
    pub fn raise_irq(&mut self, irq: trustlite_mem::IrqRequest) {
        let (w, b) = (usize::from(irq.line >> 6), irq.line & 63);
        if self.pending_irq_mask[w] & (1 << b) == 0 {
            self.pending_irq_mask[w] |= 1 << b;
            self.pending_irqs.push_back(irq);
        }
    }

    /// Returns true if any interrupt is pending delivery.
    pub fn irq_pending(&self) -> bool {
        !self.pending_irqs.is_empty()
    }

    /// Executes one instruction (or delivers one exception/interrupt).
    pub fn step(&mut self) -> StepOutcome {
        if self.halted.is_some() {
            return StepOutcome::Halted;
        }
        // Event/metric stamps read `obs.now()` only behind level gates,
        // and the architectural exc_log stamps from `self.cycles`
        // directly, so the clock mirror can be skipped while telemetry
        // is off.
        if self.sys.obs.active() {
            self.sys.obs.set_now(self.cycles);
        }
        // Deliver a pending maskable interrupt first.
        if self.regs.flags.ie {
            if let Some(irq) = self.pending_irqs.pop_front() {
                self.pending_irq_mask[usize::from(irq.line >> 6)] &= !(1 << (irq.line & 63));
                let vector = vectors::irq_vector(irq.line);
                let ip = self.regs.ip;
                return self.take_exception(vector, irq.handler, ip, irq.line as u32, 0);
            }
        }
        let ip = self.regs.ip;
        let (word, instr) = match self.sys.fetch_instr(self.prev_ip, ip) {
            Ok(wi) => wi,
            Err(f) => return self.take_fault(f),
        };
        match self.exec(ip, instr) {
            Ok(Exec::Done(cost)) => {
                self.prev_ip = ip;
                self.observe_retired(ip, word, cost);
                self.retire(cost);
                StepOutcome::Retired
            }
            Ok(Exec::Halt) => {
                self.prev_ip = ip;
                self.observe_retired(ip, word, costs::BASE);
                self.retire(costs::BASE);
                self.halted = Some(HaltReason::Halt { ip });
                StepOutcome::Halted
            }
            Ok(Exec::Swi(arg)) => {
                self.prev_ip = ip;
                // The swi itself retires (and costs a cycle) before the
                // exception engine takes over.
                self.observe_retired(ip, word, costs::BASE);
                self.cycles += costs::BASE;
                self.instret += 1;
                let vector = vectors::swi_vector(arg);
                self.take_exception(vector, None, ip + 4, arg as u32, 0)
            }
            Err(f) => self.take_fault(f),
        }
    }

    /// Telemetry hook for one retired instruction: the firehose event plus
    /// cycle attribution to the region owning `ip`.
    #[inline(always)]
    fn observe_retired(&mut self, ip: u32, word: u32, cost: u64) {
        if self.sys.obs.active() {
            if self.sys.obs.firehose_on() {
                let cycle = self.cycles;
                self.sys.obs.emit_fine(Event::InstrRetired {
                    cycle,
                    ip,
                    word,
                    cost,
                });
            }
            self.sys.obs.charge(ip, cost);
        }
    }

    #[inline(always)]
    fn retire(&mut self, cost: u64) {
        self.cycles += cost;
        self.instret += 1;
        if self.sys.tick_quick(cost) {
            return;
        }
        for irq in self.sys.tick_slow() {
            self.raise_irq(irq);
        }
    }

    /// The single loop body shared by [`Machine::run`] and
    /// [`Machine::run_until`]: steps until `pred` holds, the machine
    /// halts, or the budget runs out, evaluating `pred` exactly once per
    /// machine state.
    fn run_inner(&mut self, max_steps: u64, pred: impl Fn(&Machine) -> bool) -> bool {
        if pred(self) {
            return true;
        }
        for _ in 0..max_steps {
            let halted = matches!(self.step(), StepOutcome::Halted);
            if pred(self) {
                return true;
            }
            if halted {
                return false;
            }
        }
        false
    }

    /// Runs until `pred` holds, the machine halts, or `max_steps` step
    /// events elapse. Returns true if `pred` became true.
    pub fn run_until(&mut self, max_steps: u64, pred: impl Fn(&Machine) -> bool) -> bool {
        self.run_inner(max_steps, pred)
    }

    /// Runs until halt or `max_steps` step events.
    ///
    /// When the superblock cache is enabled this dispatches whole cached
    /// blocks per iteration ([`Machine::step_block`]); the step budget is
    /// still accounted per step event, so `run(n)` stops the machine in
    /// exactly the state `n` calls to [`Machine::step`] would.
    /// [`Machine::run_until`] deliberately stays on the per-instruction
    /// path: its predicate is specified to be evaluated after every step
    /// event.
    pub fn run(&mut self, max_steps: u64) -> RunExit {
        if self.sys.superblocks_on() {
            self.run_blocks(max_steps);
        } else {
            self.run_inner(max_steps, |m| m.halted.is_some());
        }
        match self.halted {
            Some(r) => RunExit::Halted(r),
            None => RunExit::StepLimit,
        }
    }

    /// The block-dispatch run loop: consume cached superblocks while
    /// possible, fall back to one [`Machine::step`] whenever the block
    /// path cannot make progress (pending interrupt, unbuildable pc,
    /// system instruction, halt).
    fn run_blocks(&mut self, max_steps: u64) {
        let mut remaining = max_steps;
        while remaining > 0 && self.halted.is_none() {
            let consumed = self.step_block(remaining);
            if consumed == 0 {
                self.step();
                remaining -= 1;
            } else {
                remaining -= consumed;
            }
        }
    }

    /// Executes at most `budget` step events through the superblock
    /// cache, returning how many were consumed (0 = the caller must
    /// single-step). Dispatches to one of eight loops monomorphized over
    /// the capture level and whether MPU enforcement is off
    /// (`TRUSTED`) — the airbender-style const-generic machine
    /// configuration, so the Off/Metrics loops carry no emit-site code.
    fn step_block(&mut self, budget: u64) -> u64 {
        if self.halted.is_some() || (self.regs.flags.ie && !self.pending_irqs.is_empty()) {
            return 0;
        }
        let Some(idx) = self.sys.block_lookup_or_build(self.regs.ip) else {
            return 0;
        };
        match (self.sys.obs.level(), self.sys.enforce) {
            (ObsLevel::Off, true) => self.exec_block::<CAP_OFF, false>(idx, budget),
            (ObsLevel::Off, false) => self.exec_block::<CAP_OFF, true>(idx, budget),
            (ObsLevel::Metrics, true) => self.exec_block::<CAP_METRICS, false>(idx, budget),
            (ObsLevel::Metrics, false) => self.exec_block::<CAP_METRICS, true>(idx, budget),
            (ObsLevel::Events, true) => self.exec_block::<CAP_EVENTS, false>(idx, budget),
            (ObsLevel::Events, false) => self.exec_block::<CAP_EVENTS, true>(idx, budget),
            (ObsLevel::Full, true) => self.exec_block::<CAP_FULL, false>(idx, budget),
            (ObsLevel::Full, false) => self.exec_block::<CAP_FULL, true>(idx, budget),
        }
    }

    /// The monomorphized superblock loop. Per micro-op it reproduces the
    /// exact [`Machine::step`] sequence — clock mirror, fetch check (memo
    /// replay or full check), execute, retire events, cycle/instret
    /// bump, peripheral tick — so cycles, counters, faults and the Full
    /// event stream are bit-identical to single-stepping. Exits exactly
    /// on: budget exhaustion, a deliverable interrupt becoming pending
    /// (tick-raised IRQs included — the tick runs per op), any block
    /// flush (self-modifying code), a fault, or the end of the block. A
    /// block whose final control transfer targets its own start restarts
    /// in place, which keeps tight loops resident.
    fn exec_block<const CAP: u8, const TRUSTED: bool>(&mut self, idx: usize, budget: u64) -> u64 {
        let gen = self.sys.blocks_gen();
        let (start, len, last_cf) = self.sys.block_head(idx);
        // The micro-op vector is checked *out* of the table for the
        // pass: the loop indexes a plain local `Vec` (no per-op table
        // probe, and lazily learned grant memos are written straight
        // into the ops), and the epilogue returns it — unless the entry
        // was flushed meanwhile, in which case it is dropped.
        let mut ops = self.sys.block_take_ops(idx);
        let ie = self.regs.flags.ie;
        // The architectural counters and the fetch subject live in
        // locals for the whole quantum so the loop body keeps them in
        // registers; every exit flushes them back, and the fault paths
        // (whose exception entry reads and charges `self.cycles`) flush
        // before and reload after.
        let mut cycles = self.cycles;
        let mut instret = self.instret;
        let mut prev_ip = self.prev_ip;
        // Nonzero when the current subject window covers the whole
        // block: memos carrying exactly this epoch replay with a single
        // compare plus a batched counter bump (`EaMpu::replay_hit`) —
        // the per-op subject refresh is provably a no-op. Any op that
        // touches memory may reprogram the MPU, so the epoch is
        // re-checked after every non-pure op, and recomputed on
        // self-loop restart once the subject is in-block.
        let mut hot_epoch = if TRUSTED {
            0
        } else {
            self.sys.mpu.block_epoch(prev_ip, start, len)
        };
        // Clean-pass fetch batching: one slow pass validates that every
        // fetch memo replays under `hot_epoch` via a single slot; from
        // the next self-loop restart on, the per-op fetch check is one
        // register increment (`fetch_hits`), folded into the MPU
        // counters at exit. Any cold fetch, mixed slot, or epoch
        // retirement drops back to the per-op path.
        let mut fast_fetch = false;
        let mut fetch_hits = 0u64;
        let mut fetch_slot = 0u16;
        let mut seen_slot = false;
        let mut slots_mixed = false;
        let mut pass_cold = false;
        // Pure ops never touch the bus, so their cycles accumulate in a
        // local register against the precomputed tick headroom:
        // `tick_acc >= tick_slack` holds at exactly the op boundary
        // where per-op ticking would find `pending >= armed`. The
        // balance is flushed into the bus before anything that can read
        // `pending` — a memory op (catch-up delivers cycles to
        // devices), a fault (exception entry stores to the stack), or
        // the epilogue — and the slack is re-read after any op that can
        // move `armed`.
        let mut tick_acc = 0u64;
        let mut tick_slack = self.sys.tick_slack();
        let mut consumed = 0u64;
        let mut retired = 0u64;
        let mut i = 0usize;
        let mut pc = start;
        loop {
            // Only the budget needs a per-op test here: a deliverable
            // interrupt can appear solely in the tick path below (and
            // the entry precondition rules one out at the top), and the
            // flush generation can move solely under a store — both are
            // re-checked exactly where they can change.
            if consumed >= budget {
                break;
            }
            if i >= ops.len() {
                break;
            }
            // Straight-pure run batching (Off loop only): the run is
            // register-only, fixed-cost, cannot fault, branch, store,
            // or reprogram the MPU, and its fetch checks are already
            // reduced to a counter (`fast_fetch`, or enforcement off).
            // If the whole run fits the remaining budget and stays
            // strictly inside the tick headroom, no per-op check could
            // fire anywhere in it — execute it back-to-back and settle
            // every counter once. Boundary cases (budget edge, tick
            // edge, validation pass) fall through to the per-op path.
            if CAP < CAP_METRICS && (TRUSTED || fast_fetch) && ops[i].run > 1 {
                let n = ops[i].run as usize;
                let rc = ops[i].run_cost as u64;
                if consumed + n as u64 <= budget && tick_acc + rc < tick_slack {
                    for o in &ops[i..i + n] {
                        Self::exec_pure_straight(&mut self.regs, o.instr);
                    }
                    i += n;
                    pc = start.wrapping_add(4 * i as u32);
                    self.regs.ip = pc;
                    prev_ip = pc.wrapping_sub(4);
                    cycles += rc;
                    instret += n as u64;
                    consumed += n as u64;
                    retired += n as u64;
                    tick_acc += rc;
                    if !TRUSTED {
                        fetch_hits += n as u64;
                    }
                    if i as u32 == len {
                        // A run can only end the block when it fell
                        // through the op cap (`last_cf` blocks end on a
                        // control transfer, which is never in a run).
                        break;
                    }
                    continue;
                }
            }
            let op = &mut ops[i];
            if CAP >= CAP_METRICS {
                self.sys.obs.set_now(cycles);
            }
            let subject = prev_ip;
            let mut deferred_fetch_event = false;
            if !TRUSTED {
                let replayed = if fast_fetch {
                    fetch_hits += 1;
                    true
                } else {
                    match op.fetch {
                        Some((epoch, slot)) if hot_epoch != 0 && epoch == hot_epoch => {
                            self.sys.mpu.replay_hit(slot);
                            if !seen_slot {
                                seen_slot = true;
                                fetch_slot = slot;
                            } else if slot != fetch_slot {
                                slots_mixed = true;
                            }
                            true
                        }
                        Some((epoch, slot)) => {
                            pass_cold = true;
                            self.sys.mpu.exec_check_cached(subject, epoch, slot)
                        }
                        None => {
                            pass_cold = true;
                            false
                        }
                    }
                };
                if replayed {
                    if CAP >= CAP_FULL {
                        if op.pure {
                            deferred_fetch_event = true;
                        } else {
                            self.sys.obs.emit_fine(Event::MpuCheck {
                                cycle: cycles,
                                subject,
                                addr: pc,
                                kind: trustlite_obs::AccessClass::Execute,
                                verdict: trustlite_obs::Verdict::Allow,
                            });
                        }
                    }
                } else {
                    match self.sys.block_fetch_cold(subject, pc) {
                        Ok(memo) => op.fetch = memo,
                        Err(f) => {
                            let _ = self.sys.tick_quick(std::mem::take(&mut tick_acc));
                            self.cycles = cycles;
                            self.instret = instret;
                            self.prev_ip = prev_ip;
                            self.take_fault(f);
                            cycles = self.cycles;
                            instret = self.instret;
                            consumed += 1;
                            break;
                        }
                    }
                }
            }
            if !op.pure && tick_acc != 0 {
                // The op is about to reach the bus: settle the locally
                // accounted cycles first so catch-up sees exact timing.
                // `tick_acc < tick_slack` here (the pure path flushes on
                // crossing), so no interrupt can be due yet.
                let _ = self.sys.tick_quick(std::mem::take(&mut tick_acc));
            }
            match self.exec_op::<CAP, TRUSTED>(op, pc, hot_epoch) {
                Ok(cost) => {
                    prev_ip = pc;
                    if CAP >= CAP_METRICS {
                        if CAP >= CAP_FULL {
                            let event = Event::InstrRetired {
                                cycle: cycles,
                                ip: pc,
                                word: op.word,
                                cost,
                            };
                            if deferred_fetch_event {
                                // Pure op whose fetch check was a memo
                                // replay: nothing was emitted in between,
                                // so the pair lands as one ring batch in
                                // the slow path's order.
                                self.sys.obs.emit_fine_pair(
                                    Event::MpuCheck {
                                        cycle: cycles,
                                        subject,
                                        addr: pc,
                                        kind: trustlite_obs::AccessClass::Execute,
                                        verdict: trustlite_obs::Verdict::Allow,
                                    },
                                    event,
                                );
                            } else {
                                self.sys.obs.emit_fine(event);
                            }
                        }
                        self.sys.obs.charge(pc, cost);
                    }
                    cycles += cost;
                    instret += 1;
                    consumed += 1;
                    retired += 1;
                    if op.pure {
                        tick_acc += cost;
                        if tick_acc >= tick_slack {
                            if !self.sys.tick_quick(std::mem::take(&mut tick_acc)) {
                                for irq in self.sys.tick_slow() {
                                    self.raise_irq(irq);
                                }
                                tick_slack = self.sys.tick_slack();
                                if ie && !self.pending_irqs.is_empty() {
                                    // The tick raised a deliverable
                                    // interrupt: stop on this op
                                    // boundary, exactly where
                                    // single-stepping would recognise
                                    // it.
                                    break;
                                }
                            } else {
                                tick_slack = self.sys.tick_slack();
                            }
                        }
                    } else {
                        if !self.sys.tick_quick(cost) {
                            for irq in self.sys.tick_slow() {
                                self.raise_irq(irq);
                            }
                            if ie && !self.pending_irqs.is_empty() {
                                break;
                            }
                        }
                        // The op (or its tick) may have moved the timer
                        // arming through a device access.
                        tick_slack = self.sys.tick_slack();
                    }
                    if !op.pure {
                        if self.sys.blocks_gen() != gen {
                            // The store invalidated cached blocks —
                            // possibly this one (self-modifying code):
                            // stop before the next op fetch.
                            break;
                        }
                        if !TRUSTED && hot_epoch != 0 && self.sys.mpu.cache_epoch() != hot_epoch {
                            // The store/load may have reprogrammed the
                            // MPU (the grant cache retired the epoch):
                            // fall back to per-op replay validation.
                            hot_epoch = 0;
                            fast_fetch = false;
                        }
                    }
                    i += 1;
                    pc = pc.wrapping_add(4);
                    if i as u32 == len {
                        if last_cf && self.regs.ip == start {
                            // Self-loop: restart the resident block.
                            if !TRUSTED {
                                if hot_epoch == 0 {
                                    // The subject is now in-block, so
                                    // the window test that failed
                                    // against the outside predecessor
                                    // may succeed; the memos still need
                                    // one slow validation pass.
                                    hot_epoch = self.sys.mpu.block_epoch(prev_ip, start, len);
                                    seen_slot = false;
                                    slots_mixed = false;
                                } else if !fast_fetch {
                                    // The pass just completed replayed
                                    // every fetch memo under the hot
                                    // epoch through one slot: from here
                                    // on a fetch check is one register
                                    // increment.
                                    fast_fetch = seen_slot && !slots_mixed && !pass_cold;
                                }
                                pass_cold = false;
                            }
                            i = 0;
                            pc = start;
                            continue;
                        }
                        break;
                    }
                }
                Err(f) => {
                    if CAP >= CAP_FULL && deferred_fetch_event {
                        // Flush the deferred fetch event before the
                        // exception events so the stream order matches
                        // the slow path.
                        self.sys.obs.emit_fine(Event::MpuCheck {
                            cycle: cycles,
                            subject,
                            addr: pc,
                            kind: trustlite_obs::AccessClass::Execute,
                            verdict: trustlite_obs::Verdict::Allow,
                        });
                    }
                    let _ = self.sys.tick_quick(std::mem::take(&mut tick_acc));
                    self.cycles = cycles;
                    self.instret = instret;
                    self.prev_ip = prev_ip;
                    self.take_fault(f);
                    cycles = self.cycles;
                    instret = self.instret;
                    consumed += 1;
                    break;
                }
            }
        }
        if tick_acc != 0 {
            let _ = self.sys.tick_quick(tick_acc);
        }
        self.cycles = cycles;
        self.instret = instret;
        self.prev_ip = prev_ip;
        if !TRUSTED {
            self.sys.mpu.add_replay_hits(fetch_slot, fetch_hits);
            self.sys.mpu.flush_replays();
        }
        self.sys.block_put_ops(idx, start, ops);
        self.sys.note_block_exec(retired);
        consumed
    }

    /// Data-memo replay for a memoised block load: same counter effects
    /// as the full check (see `EaMpu::check_cached_window`), falling
    /// back to the cold path when the memo is absent, stale, or the
    /// address left the memoised window.
    #[inline(always)]
    fn block_read32(
        &mut self,
        data: &mut DataMemo,
        pc: u32,
        addr: u32,
        hot_epoch: u64,
    ) -> Result<u32, Fault> {
        if let Some((epoch, slot, lo, len)) = *data {
            if hot_epoch != 0 && epoch == hot_epoch && addr.wrapping_sub(lo) < len {
                self.sys.mpu.replay_hit(slot);
                return self.sys.read32_routed(pc, addr);
            }
            if self
                .sys
                .mpu
                .check_cached_window(pc, epoch, slot, lo, len, addr)
            {
                return self.sys.read32_routed(pc, addr);
            }
        }
        let (v, memo) = self.sys.block_load32_cold(pc, addr)?;
        if memo.is_some() {
            *data = memo;
        }
        Ok(v)
    }

    /// Data-memo replay for a memoised block store; see
    /// [`Machine::block_read32`].
    #[inline(always)]
    fn block_write32(
        &mut self,
        data: &mut DataMemo,
        pc: u32,
        addr: u32,
        value: u32,
        hot_epoch: u64,
    ) -> Result<(), Fault> {
        if let Some((epoch, slot, lo, len)) = *data {
            if hot_epoch != 0 && epoch == hot_epoch && addr.wrapping_sub(lo) < len {
                self.sys.mpu.replay_hit(slot);
                return self.sys.write32_routed(pc, addr, value);
            }
            if self
                .sys
                .mpu
                .check_cached_window(pc, epoch, slot, lo, len, addr)
            {
                return self.sys.write32_routed(pc, addr, value);
            }
        }
        let memo = self.sys.block_store32_cold(pc, addr, value)?;
        if memo.is_some() {
            *data = memo;
        }
        Ok(())
    }

    /// Executes one superblock micro-op. Register-only instructions run
    /// through [`Machine::exec_pure`] (shared with the per-step
    /// interpreter); word-sized memory ops — `Lw`, `Sw`, `Push`, `Pop`,
    /// `Pushf`, `Call`, `Callr`, `Ret` — replay the op's data-grant
    /// memo when enforcement is on and the firehose is off (the
    /// memoized path produces no `MpuCheck` events, so it is statically
    /// absent from the `CAP_FULL` loop); everything else runs the
    /// ordinary [`Machine::exec`] arm. The block builder excludes
    /// `Halt`/`Swi`, so `Done` is the only reachable outcome.
    #[inline(always)]
    fn exec_op<const CAP: u8, const TRUSTED: bool>(
        &mut self,
        op: &mut MicroOp,
        pc: u32,
        hot_epoch: u64,
    ) -> Result<u64, Fault> {
        // `pure` (build-time) is exactly "exec_pure handles it": the
        // builder rejects system terminators and flags every
        // memory-touching op impure, so this single predictable branch
        // picks the right decoder without a second discriminant match.
        if op.pure {
            return Ok(Self::exec_pure(&mut self.regs, pc, op.instr)
                .expect("pure micro-ops are register-only"));
        }
        if !TRUSTED && CAP < CAP_FULL {
            let next = pc.wrapping_add(4);
            match op.instr {
                Instr::Lw { rd, rs1, disp } => {
                    let addr = self.regs.get(rs1).wrapping_add(disp as i32 as u32);
                    let v = self.block_read32(&mut op.data, pc, addr, hot_epoch)?;
                    self.regs.set(rd, v);
                    self.regs.ip = next;
                    return Ok(costs::BASE + costs::MEM_EXTRA);
                }
                Instr::Sw { rs1, rs2, disp } => {
                    let addr = self.regs.get(rs1).wrapping_add(disp as i32 as u32);
                    let v = self.regs.get(rs2);
                    self.block_write32(&mut op.data, pc, addr, v, hot_epoch)?;
                    self.regs.ip = next;
                    return Ok(costs::BASE + costs::MEM_EXTRA);
                }
                Instr::Push { rs } => {
                    let v = self.regs.get(rs);
                    let new_sp = self.regs.sp.wrapping_sub(4);
                    self.block_write32(&mut op.data, pc, new_sp, v, hot_epoch)?;
                    self.regs.sp = new_sp;
                    self.regs.ip = next;
                    return Ok(costs::BASE + costs::MEM_EXTRA);
                }
                Instr::Pop { rd } => {
                    let v = self.block_read32(&mut op.data, pc, self.regs.sp, hot_epoch)?;
                    self.regs.sp = self.regs.sp.wrapping_add(4);
                    self.regs.set(rd, v);
                    self.regs.ip = next;
                    return Ok(costs::BASE + costs::MEM_EXTRA);
                }
                Instr::Pushf => {
                    let v = self.regs.flags.to_word();
                    let new_sp = self.regs.sp.wrapping_sub(4);
                    self.block_write32(&mut op.data, pc, new_sp, v, hot_epoch)?;
                    self.regs.sp = new_sp;
                    self.regs.ip = next;
                    return Ok(costs::BASE + costs::MEM_EXTRA);
                }
                Instr::Call { off } => {
                    let new_sp = self.regs.sp.wrapping_sub(4);
                    self.block_write32(&mut op.data, pc, new_sp, next, hot_epoch)?;
                    self.regs.sp = new_sp;
                    self.regs.ip = next.wrapping_add(off as i32 as u32);
                    return Ok(costs::BASE + costs::MEM_EXTRA + costs::TAKEN_CF);
                }
                Instr::Callr { rs1 } => {
                    let target = self.regs.get(rs1);
                    let new_sp = self.regs.sp.wrapping_sub(4);
                    self.block_write32(&mut op.data, pc, new_sp, next, hot_epoch)?;
                    self.regs.sp = new_sp;
                    self.regs.ip = target;
                    return Ok(costs::BASE + costs::MEM_EXTRA + costs::TAKEN_CF);
                }
                Instr::Ret => {
                    let target = self.block_read32(&mut op.data, pc, self.regs.sp, hot_epoch)?;
                    self.regs.sp = self.regs.sp.wrapping_add(4);
                    self.regs.ip = target;
                    return Ok(costs::BASE + costs::MEM_EXTRA + costs::TAKEN_CF);
                }
                _ => {}
            }
        }
        match self.exec(pc, op.instr)? {
            Exec::Done(cost) => Ok(cost),
            Exec::Halt | Exec::Swi(_) => {
                unreachable!("system instructions are never block micro-ops")
            }
        }
    }

    fn take_fault(&mut self, f: Fault) -> StepOutcome {
        if self.sys.obs.active() {
            let name = match f {
                Fault::Mpu(_) => "fault.mpu",
                Fault::Bus { .. } => "fault.bus",
                Fault::Illegal { .. } => "fault.illegal",
            };
            self.sys.obs.metrics.inc(name);
        }
        let vector = vectors::fault_vector(&f);
        let err_code = match f {
            Fault::Mpu(m) => m.kind.code(),
            Fault::Bus { .. } => 0x100,
            Fault::Illegal { word, .. } => word,
        };
        self.take_exception(vector, None, f.ip(), err_code, f.fault_addr())
    }

    /// The exception engine (Figure 4). `handler_override` is the
    /// peripheral-programmed ISR address, if any.
    fn take_exception(
        &mut self,
        vector: u8,
        handler_override: Option<u32>,
        interrupted_ip: u32,
        err_code: u32,
        fault_addr: u32,
    ) -> StepOutcome {
        let at_cycle = self.cycles;
        let mut entry_cycles = costs::EXC_FLUSH;
        let mut trustlet: Option<u32> = None;
        let mut pushed_ip = interrupted_ip;
        let mut pushed_sp = self.regs.sp;
        let mut saved_sp = 0u32;

        if self.hw.secure_exceptions && self.hw.tt_count > 0 {
            entry_cycles += costs::SEC_DETECT;
            let hit = match ttable::find_by_ip(
                &mut self.sys,
                self.hw.tt_base,
                self.hw.tt_count,
                interrupted_ip,
            ) {
                Ok(h) => h,
                Err(err) => {
                    return self.double_fault(Fault::Bus {
                        ip: interrupted_ip,
                        err,
                    });
                }
            };
            if let Some((idx, row)) = hit {
                trustlet = Some(idx);
                // (1) Store the CPU state to the current (trustlet) stack:
                // return IP, FLAGS, r0..r7 — all but the stack pointer.
                // These stores are validated with the *trustlet* as the
                // subject; if its stack is broken, this faults and the
                // platform double-faults (paper footnote 1).
                let mut words = [0u32; 10];
                words[0] = interrupted_ip;
                words[1] = self.regs.flags.to_word();
                words[2..].copy_from_slice(&self.regs.gprs);
                for w in words {
                    let new_sp = self.regs.sp.wrapping_sub(4);
                    if let Err(f) = self.sys.store32(interrupted_ip, new_sp, w) {
                        return self.double_fault(f);
                    }
                    self.regs.sp = new_sp;
                    entry_cycles += costs::SEC_SAVE_WORD;
                }
                // (2) Store SP into the Trustlet Table row and clear GPRs.
                let sp_addr = TrustletRow::saved_sp_addr(self.hw.tt_base, idx);
                if let Err(err) = self.sys.hw_write32(sp_addr, self.regs.sp) {
                    return self.double_fault(Fault::Bus {
                        ip: interrupted_ip,
                        err,
                    });
                }
                entry_cycles += costs::SEC_TT_WRITE;
                saved_sp = self.regs.sp;
                self.regs.clear_gprs();
                entry_cycles += costs::SEC_CLEARED_REGS * costs::SEC_CLEAR_REG;
                if self.sys.obs.active() {
                    self.sys.obs.emit(Event::RegsCleared {
                        cycle: at_cycle,
                        count: costs::SEC_CLEARED_REGS as u32,
                    });
                }
                // Sanitize what the untrusted handler will see: the
                // reported IP is the trustlet's entry vector and the saved
                // SP slot is zeroed (the real one lives in the table).
                pushed_ip = row.code_start;
                pushed_sp = 0;
            }
        }

        // (3) Switch to the OS stack unless already executing from the OS
        // region.
        entry_cycles += costs::EXC_LOAD_OS_SP;
        let (os_start, os_end) = self.hw.os_region;
        let in_os = interrupted_ip >= os_start && interrupted_ip < os_end;
        if !in_os {
            match self.sys.hw_read32(self.hw.os_sp_cell) {
                Ok(sp) => self.regs.sp = sp,
                Err(err) => {
                    return self.double_fault(Fault::Bus {
                        ip: interrupted_ip,
                        err,
                    })
                }
            }
        }

        // Push the exception frame: SP, IP, FLAGS, error code, fault
        // address (top of stack = fault address).
        let frame = [
            pushed_sp,
            pushed_ip,
            self.regs.flags.to_word(),
            err_code,
            fault_addr,
        ];
        for w in frame {
            self.regs.sp = self.regs.sp.wrapping_sub(4);
            if let Err(err) = self.sys.hw_write32(self.regs.sp, w) {
                return self.double_fault(Fault::Bus {
                    ip: interrupted_ip,
                    err,
                });
            }
        }
        entry_cycles += costs::EXC_SAVE_MIN_CTX + costs::EXC_ERROR_PARAMS;

        // (4) Resolve and enter the handler with interrupts masked.
        self.regs.flags.ie = false;
        entry_cycles += costs::EXC_VECTOR;
        let handler = match handler_override {
            Some(h) => h,
            None => {
                let slot = self.hw.idt_base + 4 * (vector as u32 % vectors::IDT_ENTRIES);
                match self.sys.hw_read32(slot) {
                    Ok(h) => h,
                    Err(err) => {
                        return self.double_fault(Fault::Bus {
                            ip: interrupted_ip,
                            err,
                        })
                    }
                }
            }
        };
        if handler == 0 {
            // Unconfigured vector: architectural dead end.
            return self.double_fault(Fault::Bus {
                ip: interrupted_ip,
                err: BusError::Unmapped {
                    addr: self.hw.idt_base + 4 * vector as u32,
                },
            });
        }
        // Hardware vectoring is a legitimate control transfer by
        // construction (the IDT and peripheral handler registers are
        // loader-governed): the handler becomes its own fetch subject.
        self.regs.ip = handler;
        self.prev_ip = handler;
        self.cycles += entry_cycles;
        self.exc_log.push(ExcRecord {
            vector,
            interrupted_ip,
            trustlet,
            entry_cycles,
            at_cycle,
        });
        if self.sys.obs.active() {
            self.sys.obs.charge_engine(entry_cycles);
            self.sys.obs.metrics.inc("exc.taken");
            if trustlet.is_some() {
                self.sys.obs.metrics.inc("exc.trustlet_interrupts");
            }
            self.sys
                .obs
                .metrics
                .observe("exc.entry_cycles", entry_cycles);
            self.sys.obs.emit(Event::ExceptionEnter {
                cycle: at_cycle,
                frame: Box::new(trustlite_obs::ExcFrame {
                    vector,
                    trustlet,
                    interrupted_ip,
                    saved_sp,
                    cycles: entry_cycles,
                }),
            });
        }
        StepOutcome::ExceptionTaken { vector, trustlet }
    }

    fn double_fault(&mut self, f: Fault) -> StepOutcome {
        self.halted = Some(HaltReason::DoubleFault(f));
        StepOutcome::Halted
    }

    /// Executes a register-only instruction — no bus, MPU, flag or
    /// telemetry traffic, no way to fault — returning its cost, or
    /// `None` when the instruction needs a full [`Machine::exec`] arm.
    /// Shared by the per-step interpreter and the superblock loop
    /// Executes one op of a straight-pure run (see `MicroOp::run`):
    /// register file only — the caller advances `ip` once for the whole
    /// run and charges the precomputed `run_cost`, so nothing here can
    /// fault, branch, or touch a counter.
    #[inline(always)]
    fn exec_pure_straight(r: &mut RegFile, i: Instr) {
        match i {
            Instr::Nop => {}
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = op.apply(r.get(rs1), r.get(rs2));
                r.set(rd, v);
            }
            Instr::Mov { rd, rs1 } => {
                let v = r.get(rs1);
                r.set(rd, v);
            }
            Instr::Not { rd, rs1 } => {
                let v = !r.get(rs1);
                r.set(rd, v);
            }
            Instr::Addi { rd, rs1, imm } => {
                let v = r.get(rs1).wrapping_add(imm as i32 as u32);
                r.set(rd, v);
            }
            Instr::Andi { rd, rs1, imm } => {
                let v = r.get(rs1) & imm as u32;
                r.set(rd, v);
            }
            Instr::Ori { rd, rs1, imm } => {
                let v = r.get(rs1) | imm as u32;
                r.set(rd, v);
            }
            Instr::Xori { rd, rs1, imm } => {
                let v = r.get(rs1) ^ imm as u32;
                r.set(rd, v);
            }
            Instr::Shli { rd, rs1, imm } => {
                let v = r.get(rs1).wrapping_shl(imm as u32);
                r.set(rd, v);
            }
            Instr::Shri { rd, rs1, imm } => {
                let v = r.get(rs1).wrapping_shr(imm as u32);
                r.set(rd, v);
            }
            Instr::Srai { rd, rs1, imm } => {
                let v = ((r.get(rs1) as i32) >> imm) as u32;
                r.set(rd, v);
            }
            Instr::Movi { rd, imm } => {
                r.set(rd, imm as i32 as u32);
            }
            Instr::Lui { rd, imm } => {
                r.set(rd, (imm as u32) << 16);
            }
            _ => unreachable!("straight-pure runs hold register-only ops"),
        }
    }

    /// Executes a register-only instruction — no bus, MPU, flag or
    /// telemetry traffic, no way to fault — returning its cost, or
    /// `None` when the instruction needs a full [`Machine::exec`] arm.
    /// Shared by the per-step interpreter and the superblock loop
    /// (where it inlines, keeping the monomorphized hot path call-free
    /// for the ALU/branch ops that dominate real instruction mixes).
    #[inline(always)]
    fn exec_pure(r: &mut RegFile, ip: u32, i: Instr) -> Option<u64> {
        let next = ip.wrapping_add(4);
        let cost = match i {
            Instr::Nop => {
                r.ip = next;
                costs::BASE
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                use trustlite_isa::instr::AluOp;
                let v = op.apply(r.get(rs1), r.get(rs2));
                r.set(rd, v);
                r.ip = next;
                let extra = match op {
                    AluOp::Mul => costs::MUL_EXTRA,
                    AluOp::Divu | AluOp::Remu => costs::DIV_EXTRA,
                    _ => 0,
                };
                costs::BASE + extra
            }
            Instr::Mov { rd, rs1 } => {
                let v = r.get(rs1);
                r.set(rd, v);
                r.ip = next;
                costs::BASE
            }
            Instr::Not { rd, rs1 } => {
                let v = !r.get(rs1);
                r.set(rd, v);
                r.ip = next;
                costs::BASE
            }
            Instr::Addi { rd, rs1, imm } => {
                let v = r.get(rs1).wrapping_add(imm as i32 as u32);
                r.set(rd, v);
                r.ip = next;
                costs::BASE
            }
            Instr::Andi { rd, rs1, imm } => {
                let v = r.get(rs1) & imm as u32;
                r.set(rd, v);
                r.ip = next;
                costs::BASE
            }
            Instr::Ori { rd, rs1, imm } => {
                let v = r.get(rs1) | imm as u32;
                r.set(rd, v);
                r.ip = next;
                costs::BASE
            }
            Instr::Xori { rd, rs1, imm } => {
                let v = r.get(rs1) ^ imm as u32;
                r.set(rd, v);
                r.ip = next;
                costs::BASE
            }
            Instr::Shli { rd, rs1, imm } => {
                let v = r.get(rs1).wrapping_shl(imm as u32);
                r.set(rd, v);
                r.ip = next;
                costs::BASE
            }
            Instr::Shri { rd, rs1, imm } => {
                let v = r.get(rs1).wrapping_shr(imm as u32);
                r.set(rd, v);
                r.ip = next;
                costs::BASE
            }
            Instr::Srai { rd, rs1, imm } => {
                let v = ((r.get(rs1) as i32) >> imm) as u32;
                r.set(rd, v);
                r.ip = next;
                costs::BASE
            }
            Instr::Movi { rd, imm } => {
                r.set(rd, imm as i32 as u32);
                r.ip = next;
                costs::BASE
            }
            Instr::Lui { rd, imm } => {
                r.set(rd, (imm as u32) << 16);
                r.ip = next;
                costs::BASE
            }
            Instr::Jmp { off } => {
                r.ip = next.wrapping_add(off as i32 as u32);
                costs::BASE + costs::TAKEN_CF
            }
            Instr::Jr { rs1 } => {
                r.ip = r.get(rs1);
                costs::BASE + costs::TAKEN_CF
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                off,
            } => {
                if cond.eval(r.get(rs1), r.get(rs2)) {
                    r.ip = next.wrapping_add(off as i32 as u32);
                    costs::BASE + costs::TAKEN_CF
                } else {
                    r.ip = next;
                    costs::BASE
                }
            }
            _ => return None,
        };
        Some(cost)
    }

    fn exec(&mut self, ip: u32, i: Instr) -> Result<Exec, Fault> {
        if let Some(cost) = Self::exec_pure(&mut self.regs, ip, i) {
            return Ok(Exec::Done(cost));
        }
        let next = ip.wrapping_add(4);
        let r = &mut self.regs;
        match i {
            Instr::Halt => Ok(Exec::Halt),
            Instr::Swi(v) => Ok(Exec::Swi(v)),
            Instr::Di => {
                r.flags.ie = false;
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Ei => {
                r.flags.ie = true;
                r.ip = next;
                Ok(Exec::Done(costs::BASE))
            }
            Instr::Iret => {
                // Pop: fault addr, error code, FLAGS, IP, SP (reverse of
                // the push order). Read all words before committing.
                let sp = r.sp;
                let mut vals = [0u32; 5];
                for (k, v) in vals.iter_mut().enumerate() {
                    *v = self.sys.load32(ip, sp.wrapping_add(4 * k as u32))?;
                }
                let [_fault_addr, _err_code, flags, new_ip, new_sp] = vals;
                self.regs.flags = Flags::from_word(flags);
                self.regs.ip = new_ip;
                self.regs.sp = new_sp;
                if self.sys.obs.active() {
                    self.sys.obs.metrics.inc("exc.returns");
                    self.sys
                        .obs
                        .metrics
                        .observe("exc.exit_cycles", costs::IRET_TOTAL);
                    let cycle = self.sys.obs.now();
                    self.sys.obs.emit(Event::ExceptionExit {
                        cycle,
                        resumed_ip: new_ip,
                        cycles: costs::IRET_TOTAL,
                    });
                }
                Ok(Exec::Done(costs::IRET_TOTAL))
            }
            Instr::Lw { rd, rs1, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = self.sys.load32(ip, addr)?;
                self.regs.set(rd, v);
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Sw { rs1, rs2, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = r.get(rs2);
                self.sys.store32(ip, addr, v)?;
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Lb { rd, rs1, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = self.sys.load8(ip, addr)?;
                self.regs.set(rd, v as u32);
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Lbs { rd, rs1, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = self.sys.load8(ip, addr)?;
                self.regs.set(rd, v as i8 as i32 as u32);
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Lh { rd, rs1, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = self.sys.load16(ip, addr)?;
                self.regs.set(rd, v as u32);
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Lhs { rd, rs1, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = self.sys.load16(ip, addr)?;
                self.regs.set(rd, v as i16 as i32 as u32);
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Sh { rs1, rs2, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = r.get(rs2) as u16;
                self.sys.store16(ip, addr, v)?;
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Sb { rs1, rs2, disp } => {
                let addr = r.get(rs1).wrapping_add(disp as i32 as u32);
                let v = r.get(rs2) as u8;
                self.sys.store8(ip, addr, v)?;
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Push { rs } => {
                let v = r.get(rs);
                let new_sp = r.sp.wrapping_sub(4);
                self.sys.store32(ip, new_sp, v)?;
                self.regs.sp = new_sp;
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Pop { rd } => {
                let v = self.sys.load32(ip, r.sp)?;
                self.regs.sp = self.regs.sp.wrapping_add(4);
                self.regs.set(rd, v);
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Pushf => {
                let v = r.flags.to_word();
                let new_sp = r.sp.wrapping_sub(4);
                self.sys.store32(ip, new_sp, v)?;
                self.regs.sp = new_sp;
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Popf => {
                let v = self.sys.load32(ip, r.sp)?;
                self.regs.sp = self.regs.sp.wrapping_add(4);
                self.regs.flags = Flags::from_word(v);
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA))
            }
            Instr::Call { off } => {
                let new_sp = r.sp.wrapping_sub(4);
                self.sys.store32(ip, new_sp, next)?;
                self.regs.sp = new_sp;
                self.regs.ip = next.wrapping_add(off as i32 as u32);
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA + costs::TAKEN_CF))
            }
            Instr::Callr { rs1 } => {
                let target = r.get(rs1);
                let new_sp = r.sp.wrapping_sub(4);
                self.sys.store32(ip, new_sp, next)?;
                self.regs.sp = new_sp;
                self.regs.ip = target;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA + costs::TAKEN_CF))
            }
            Instr::Ret => {
                let target = self.sys.load32(ip, r.sp)?;
                self.regs.sp = self.regs.sp.wrapping_add(4);
                self.regs.ip = target;
                Ok(Exec::Done(costs::BASE + costs::MEM_EXTRA + costs::TAKEN_CF))
            }
            Instr::Ext { op, rd, rs1, imm } => {
                let mut ext = match self.ext.take() {
                    Some(e) => e,
                    None => {
                        return Err(Fault::Illegal {
                            ip,
                            word: trustlite_isa::encode(i),
                            err: trustlite_isa::DecodeError::UnknownOpcode(0xe0 | op),
                        })
                    }
                };
                let result = ext.exec(&mut self.regs, &mut self.sys, ip, op, rd, rs1, imm);
                self.ext = Some(ext);
                let cost = result?;
                self.regs.ip = next;
                Ok(Exec::Done(costs::BASE + cost))
            }
            Instr::Nop
            | Instr::Alu { .. }
            | Instr::Mov { .. }
            | Instr::Not { .. }
            | Instr::Addi { .. }
            | Instr::Andi { .. }
            | Instr::Ori { .. }
            | Instr::Xori { .. }
            | Instr::Shli { .. }
            | Instr::Shri { .. }
            | Instr::Srai { .. }
            | Instr::Movi { .. }
            | Instr::Lui { .. }
            | Instr::Jmp { .. }
            | Instr::Jr { .. }
            | Instr::Branch { .. } => unreachable!("register-only ops are handled by exec_pure"),
        }
    }
}
