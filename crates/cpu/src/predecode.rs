//! The predecode cache: a decoded-instruction side-table.
//!
//! `Machine::step` used to re-run the SP32 decoder on every fetched word.
//! This module caches `(word, Instr)` pairs keyed by fetch address in a
//! direct-mapped table, the software analogue of an I-cache holding
//! predecoded micro-ops. Correctness rests on precise invalidation:
//!
//! * CPU stores ([`crate::SystemBus::store32`]/`store8`/`store16`) and
//!   hardware-internal writes (`hw_write32`, which the Secure Loader's
//!   copy loops use) invalidate the written word's entry — self-modifying
//!   code and field updates re-decode on next fetch;
//! * host-side mutation (`host_load`, `device_mut`, remapping) is caught
//!   by comparing [`trustlite_mem::Bus::host_gen`], which flash-clears
//!   the table;
//! * only words fetched from *stable storage*
//!   ([`trustlite_mem::Bus::is_stable_memory`]) are cached — MMIO windows
//!   that happen to be executable are always re-read.

use trustlite_isa::Instr;

/// A fetch-grant memo: the `(epoch, slot)` under which the EA-MPU
/// granted Execute at the cached address (`None` = no memo; the full
/// check runs). See `EaMpu::exec_check_cached`.
pub type FetchMemo = Option<(u64, u16)>;

/// Number of direct-mapped entries. At 4 bytes per instruction this
/// covers 32 KiB of code without conflict misses — larger than any
/// simulated image in the tree — while keeping the table allocation
/// trivial (~128 KiB).
const ENTRIES: usize = 8192;

/// Tag value that can never match a fetch address: instruction fetches
/// are word-aligned, so an odd tag is unreachable.
const INVALID_TAG: u32 = 1;

#[derive(Clone, Copy)]
struct Entry {
    tag: u32,
    word: u32,
    instr: Instr,
    /// Fetch-grant memo: the `(epoch, slot)` under which the EA-MPU
    /// granted Execute at `tag`. Validated against the MPU's current
    /// epoch on every use, so it can never outlive a rule change.
    memo: FetchMemo,
}

/// The predecode table.
#[derive(Clone)]
pub struct Predecode {
    entries: Vec<Entry>,
    enabled: bool,
    /// Last observed [`trustlite_mem::Bus::host_gen`] value.
    pub(crate) host_gen: u64,
}

impl Default for Predecode {
    fn default() -> Self {
        Predecode {
            entries: vec![
                Entry {
                    tag: INVALID_TAG,
                    word: 0,
                    instr: Instr::Nop,
                    memo: None,
                };
                ENTRIES
            ],
            enabled: true,
            host_gen: 0,
        }
    }
}

impl Predecode {
    #[inline]
    fn index(addr: u32) -> usize {
        (addr as usize >> 2) & (ENTRIES - 1)
    }

    /// Whether caching is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the cache; disabling clears it.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        self.clear();
    }

    /// Looks up the cached decode of the word at `addr`, along with any
    /// fetch-grant memo stored beside it.
    #[inline]
    pub fn get(&self, addr: u32) -> Option<(u32, Instr, FetchMemo)> {
        let e = &self.entries[Self::index(addr)];
        if e.tag == addr {
            Some((e.word, e.instr, e.memo))
        } else {
            None
        }
    }

    /// Caches the decode of `word` at `addr`.
    #[inline]
    pub fn insert(&mut self, addr: u32, word: u32, instr: Instr, memo: FetchMemo) {
        self.entries[Self::index(addr)] = Entry {
            tag: addr,
            word,
            instr,
            memo,
        };
    }

    /// Drops the entry covering the word containing `addr`, if cached.
    #[inline]
    pub fn invalidate(&mut self, addr: u32) {
        let word_addr = addr & !3;
        let e = &mut self.entries[Self::index(word_addr)];
        if e.tag == word_addr {
            e.tag = INVALID_TAG;
        }
    }

    /// Flash-clears the whole table.
    pub fn clear(&mut self) {
        for e in &mut self.entries {
            e.tag = INVALID_TAG;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_hit_invalidate_cycle() {
        let mut pd = Predecode::default();
        assert_eq!(pd.get(0x100), None);
        pd.insert(0x100, 0xabcd, Instr::Nop, None);
        assert_eq!(pd.get(0x100), Some((0xabcd, Instr::Nop, None)));
        // Byte-granular invalidation covers the containing word.
        pd.invalidate(0x102);
        assert_eq!(pd.get(0x100), None);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut pd = Predecode::default();
        let a = 0x100;
        let b = a + (ENTRIES as u32) * 4; // same index, different tag
        pd.insert(a, 1, Instr::Nop, None);
        pd.insert(b, 2, Instr::Halt, None);
        assert_eq!(pd.get(a), None, "evicted by the conflicting insert");
        assert_eq!(pd.get(b), Some((2, Instr::Halt, None)));
    }

    #[test]
    fn clear_drops_everything() {
        let mut pd = Predecode::default();
        pd.insert(0x0, 7, Instr::Nop, None);
        pd.insert(0x4, 8, Instr::Nop, None);
        pd.clear();
        assert_eq!(pd.get(0x0), None);
        assert_eq!(pd.get(0x4), None);
    }
}
