//! The predecode cache: a decoded-instruction side-table.
//!
//! `Machine::step` used to re-run the SP32 decoder on every fetched word.
//! This module caches `(word, Instr)` pairs keyed by fetch address in a
//! direct-mapped table, the software analogue of an I-cache holding
//! predecoded micro-ops. Correctness rests on precise invalidation:
//!
//! * CPU stores ([`crate::SystemBus::store32`]/`store8`/`store16`) and
//!   hardware-internal writes (`hw_write32`, which the Secure Loader's
//!   copy loops use) invalidate the written word's entry — self-modifying
//!   code and field updates re-decode on next fetch;
//! * host-side mutation (`host_load`, `device_mut`, remapping) is caught
//!   by comparing [`trustlite_mem::Bus::host_gen`], which flash-clears
//!   the table;
//! * only words fetched from *stable storage*
//!   ([`trustlite_mem::Bus::is_stable_memory`]) are cached — MMIO windows
//!   that happen to be executable are always re-read.
//!
//! The same file hosts the superblock layer on top: [`BlockTable`] caches
//! *straight-line runs* of predecoded micro-ops ([`MicroOp`]) so the hot
//! loop in `Machine::run` can retire a whole block per dispatch instead
//! of paying fetch/decode/dispatch per instruction. Blocks obey the same
//! invalidation discipline as single entries (store-granular flushes,
//! `host_gen` flash-clear) plus a generation counter that lets an
//! in-flight block execution notice a flush it caused itself — the
//! self-modifying-code case. See `DESIGN.md` § superblock invariants.
//!
//! # Chunked `Arc` sharing (fork/snapshot)
//!
//! Both tables store their entries in fixed-size chunks behind
//! `Option<Arc<_>>` slots — the same idiom `trustlite_mem::PageStore`
//! uses for device memory. `None` means "every entry in this chunk is
//! invalid"; a chunk is materialized lazily on first insert. A snapshot
//! is then an Arc bump over resident chunks (O(chunks) pointer copies
//! instead of O(table) entry copies), which is what makes fleet fork
//! cost independent of how warm the master's caches are. Any mutation —
//! an insert, a store-granular flush, a block checkout — goes through
//! `Arc::make_mut`, which deep-copies a chunk only while it is still
//! shared with a fork. Fleet devices run identical ROM images, so the
//! boot-warmed chunks stay shared until a device's own self-modifying
//! code or host patch diverges it; divergence is strictly per-device, so
//! sharing is architecturally invisible (enforced differentially by the
//! `shared_cache_props` / `code_cache_props` suites and CI).
//!
//! `set_private(true)` switches a table into the *private* reference
//! mode: snapshots deep-copy every resident chunk instead of Arc-bumping
//! it, reproducing the pre-sharing fork behaviour for differential runs
//! (the fleet's `--private-code` flag).

use std::sync::Arc;

use crate::costs;
use trustlite_isa::Instr;
use trustlite_obs::Histogram;

/// A fetch-grant memo: the `(epoch, slot)` under which the EA-MPU
/// granted Execute at the cached address (`None` = no memo; the full
/// check runs). See `EaMpu::exec_check_cached`.
pub type FetchMemo = Option<(u64, u16)>;

/// Number of direct-mapped entries. At 4 bytes per instruction this
/// covers 32 KiB of code without conflict misses — larger than any
/// simulated image in the tree — while the chunked backing keeps the
/// resident allocation proportional to the code actually executed.
const ENTRIES: usize = 8192;

/// Entries per predecode chunk (the sharing granule): 64 chunks of 128
/// entries, i.e. one chunk covers 512 bytes of code.
const PD_CHUNK: usize = 128;

/// Tag value that can never match a fetch address: instruction fetches
/// are word-aligned, so an odd tag is unreachable.
const INVALID_TAG: u32 = 1;

#[derive(Clone, Copy)]
struct Entry {
    tag: u32,
    word: u32,
    instr: Instr,
    /// Fetch-grant memo: the `(epoch, slot)` under which the EA-MPU
    /// granted Execute at `tag`. Validated against the MPU's current
    /// epoch on every use, so it can never outlive a rule change.
    memo: FetchMemo,
}

const EMPTY_ENTRY: Entry = Entry {
    tag: INVALID_TAG,
    word: 0,
    instr: Instr::Nop,
    memo: None,
};

/// One sharing granule of the predecode table.
type PdChunk = [Entry; PD_CHUNK];

/// Lookup/maintenance counters for the predecode table, mirrored into
/// the metrics registry by `Machine::metrics_report` as
/// `cpu.predecode.*`. Pure functions of the executed instruction stream,
/// so they are identical across backings, worker counts and capture
/// levels (they take part in the fleet digest via the merged counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredecodeStats {
    /// Lookups that served a cached decode.
    pub hits: u64,
    /// Lookups that fell through to the bus read + decoder.
    pub misses: u64,
    /// Entries dropped by precise (store-granular) invalidation.
    pub flushes: u64,
}

/// The predecode table.
pub struct Predecode {
    /// Chunked entry storage; `None` = every entry invalid. Shared with
    /// snapshots via `Arc`, unshared per chunk on first write.
    chunks: Vec<Option<Arc<PdChunk>>>,
    enabled: bool,
    /// Reference mode: snapshots deep-copy resident chunks instead of
    /// sharing them (see the module docs).
    private: bool,
    /// Last observed [`trustlite_mem::Bus::host_gen`] value.
    pub(crate) host_gen: u64,
    stats: PredecodeStats,
}

impl Default for Predecode {
    fn default() -> Self {
        Predecode {
            chunks: vec![None; ENTRIES / PD_CHUNK],
            enabled: true,
            private: false,
            host_gen: 0,
            stats: PredecodeStats::default(),
        }
    }
}

impl Clone for Predecode {
    /// Snapshot semantics: Arc-bumps resident chunks (O(chunks)), or
    /// deep-copies them in the private reference mode.
    fn clone(&self) -> Self {
        let chunks = if self.private {
            self.chunks
                .iter()
                .map(|c| c.as_ref().map(|a| Arc::new(**a)))
                .collect()
        } else {
            self.chunks.clone()
        };
        Predecode {
            chunks,
            enabled: self.enabled,
            private: self.private,
            host_gen: self.host_gen,
            stats: self.stats,
        }
    }
}

impl Predecode {
    #[inline]
    fn index(addr: u32) -> usize {
        (addr as usize >> 2) & (ENTRIES - 1)
    }

    /// Whether caching is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the cache; disabling clears it.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        self.clear();
    }

    /// Switches between shared snapshots (the default) and the private
    /// reference mode. Enabling private mode also unshares every chunk
    /// already resident, so a table forked earlier stops aliasing its
    /// siblings immediately.
    pub fn set_private(&mut self, on: bool) {
        self.private = on;
        if on {
            for c in self.chunks.iter_mut().flatten() {
                Arc::make_mut(c);
            }
        }
    }

    /// Whether the table is in the private reference mode.
    pub fn is_private(&self) -> bool {
        self.private
    }

    /// Looks up the cached decode of the word at `addr`, along with any
    /// fetch-grant memo stored beside it.
    #[inline]
    pub fn get(&mut self, addr: u32) -> Option<(u32, Instr, FetchMemo)> {
        let idx = Self::index(addr);
        if let Some(chunk) = &self.chunks[idx / PD_CHUNK] {
            let e = &chunk[idx % PD_CHUNK];
            if e.tag == addr {
                self.stats.hits += 1;
                return Some((e.word, e.instr, e.memo));
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Caches the decode of `word` at `addr`, materializing (and, if
    /// shared, unsharing) the covering chunk.
    #[inline]
    pub fn insert(&mut self, addr: u32, word: u32, instr: Instr, memo: FetchMemo) {
        let idx = Self::index(addr);
        let chunk =
            self.chunks[idx / PD_CHUNK].get_or_insert_with(|| Arc::new([EMPTY_ENTRY; PD_CHUNK]));
        Arc::make_mut(chunk)[idx % PD_CHUNK] = Entry {
            tag: addr,
            word,
            instr,
            memo,
        };
    }

    /// Drops the entry covering the word containing `addr`, if cached.
    /// The tag test runs on the shared read path; only an actual hit
    /// pays the clone-on-first-write.
    #[inline]
    pub fn invalidate(&mut self, addr: u32) {
        let word_addr = addr & !3;
        let idx = Self::index(word_addr);
        match &self.chunks[idx / PD_CHUNK] {
            Some(chunk) if chunk[idx % PD_CHUNK].tag == word_addr => {}
            _ => return,
        }
        let chunk = self.chunks[idx / PD_CHUNK]
            .as_mut()
            .expect("resident chunk");
        Arc::make_mut(chunk)[idx % PD_CHUNK].tag = INVALID_TAG;
        self.stats.flushes += 1;
    }

    /// Flash-clears the whole table by dropping every chunk (shared
    /// chunks are released, not written).
    pub fn clear(&mut self) {
        for c in &mut self.chunks {
            *c = None;
        }
    }

    /// Lookup/maintenance counters (`cpu.predecode.*`).
    pub fn stats(&self) -> PredecodeStats {
        self.stats
    }

    /// Host-side bytes backing resident chunks, amortized over sharers:
    /// a chunk alive in N snapshots contributes `size / N` to each, so
    /// fleet-wide sums reflect physical allocation. Diagnostic only,
    /// never digested.
    pub fn resident_bytes(&self) -> u64 {
        self.chunks
            .iter()
            .flatten()
            .map(|c| std::mem::size_of::<PdChunk>() as u64 / Arc::strong_count(c).max(1) as u64)
            .sum()
    }
}

/// A data-grant memo: `(epoch, slot, window lo, window len)` under which
/// the EA-MPU granted a load/store issued by a specific micro-op. See
/// `EaMpu::check_cached_window`.
pub type DataMemo = Option<(u64, u16, u32, u32)>;

/// Maximum micro-ops per superblock. Bounds the invalidation probe walk
/// (a store can only land inside a block starting at most
/// `4 * (MAX_BLOCK_OPS - 1)` bytes below it) and keeps per-entry storage
/// small; straight-line runs in the simulated images are far shorter.
pub const MAX_BLOCK_OPS: usize = 32;

/// Number of direct-mapped block entries. Blocks start at control-flow
/// join points, which are much sparser than instructions, so this covers
/// every image in the tree without conflict misses.
const BLOCK_ENTRIES: usize = 2048;

/// Entries per block-table chunk (the sharing granule): 64 chunks of 32
/// entries.
const BLK_CHUNK: usize = 32;

/// One predecoded instruction inside a superblock, carrying its lazily
/// filled fetch-grant and data-grant memos.
#[derive(Clone, Copy)]
pub struct MicroOp {
    pub word: u32,
    pub instr: Instr,
    /// True when the op generates no data-memory traffic (ALU, moves,
    /// register jumps/branches) — decided once at build time so the Full
    /// loop knows it may defer the fetch-replay event and emit it paired
    /// with `InstrRetired` (nothing can be emitted in between).
    pub pure: bool,
    /// Number of consecutive *straight-pure* ops starting here (zero
    /// when this op is not itself straight-pure): register-only,
    /// non-control-flow, fixed-cost ops that cannot fault, touch the
    /// bus, reprogram the MPU, or leave the fall-through path. The Off
    /// loop executes such a run back-to-back with every per-op check
    /// hoisted, once the run provably fits the quantum budget and the
    /// tick headroom.
    pub run: u8,
    /// Total static cycle cost of that run.
    pub run_cost: u16,
    pub fetch: FetchMemo,
    pub data: DataMemo,
}

/// Static cycle cost of a register-only, non-control-flow op — the ops
/// eligible for straight-pure runs — or `None` for anything that can
/// branch, fault, or reach memory.
pub(crate) fn straight_cost(i: &Instr) -> Option<u64> {
    use trustlite_isa::instr::AluOp;
    match i {
        Instr::Alu { op, .. } => Some(match op {
            AluOp::Mul => costs::BASE + costs::MUL_EXTRA,
            AluOp::Divu | AluOp::Remu => costs::BASE + costs::DIV_EXTRA,
            _ => costs::BASE,
        }),
        Instr::Nop
        | Instr::Mov { .. }
        | Instr::Not { .. }
        | Instr::Addi { .. }
        | Instr::Andi { .. }
        | Instr::Ori { .. }
        | Instr::Xori { .. }
        | Instr::Shli { .. }
        | Instr::Shri { .. }
        | Instr::Srai { .. }
        | Instr::Movi { .. }
        | Instr::Lui { .. } => Some(costs::BASE),
        _ => None,
    }
}

#[derive(Clone)]
struct BlockEntry {
    /// Start address; [`INVALID_TAG`] when empty. A valid tag with an
    /// empty `ops` vector *and* `len == 0` is a *negative* entry: "no
    /// block can start here" (unstable storage, undecodable word, or a
    /// leading system instruction), so lookups stop re-probing the
    /// builder.
    tag: u32,
    /// True when the final op is a control transfer (the only way a
    /// block ends anywhere but by falling through / hitting the cap).
    last_cf: bool,
    /// Number of micro-ops in the block (0 = negative entry). Kept
    /// beside `ops` because the execution loop checks the vector out
    /// with [`BlockTable::take_ops`] while it runs; the header — and
    /// with it invalidation coverage — must survive that window.
    len: u32,
    ops: Vec<MicroOp>,
}

const EMPTY_BLOCK: BlockEntry = BlockEntry {
    tag: INVALID_TAG,
    last_cf: false,
    len: 0,
    ops: Vec::new(),
};

/// One sharing granule of the block table.
type BlkChunk = [BlockEntry; BLK_CHUNK];

/// Execution/maintenance counters for the block table, mirrored into the
/// metrics registry by `Machine::metrics_report` as `cpu.block.*`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Positive lookups that dispatched a cached block.
    pub hits: u64,
    /// Lookups that fell through to the builder.
    pub misses: u64,
    /// Entries dropped by precise (store-granular) invalidation.
    pub flushes: u64,
    /// Instructions retired through the block path.
    pub instret: u64,
}

/// Direct-mapped cache of superblock micro-op traces keyed by start pc.
pub struct BlockTable {
    /// Chunked entry storage; `None` = every entry invalid. Shared with
    /// snapshots via `Arc`, unshared per chunk on first write — where
    /// "write" includes the execution loop's ops checkout, so a fork
    /// that actually runs unshares exactly the chunks it executes from.
    chunks: Vec<Option<Arc<BlkChunk>>>,
    enabled: bool,
    /// Reference mode: snapshots deep-copy resident chunks.
    private: bool,
    /// Bumped whenever any entry is flushed or the table is cleared. An
    /// executing block snapshots this at entry and re-checks it per op,
    /// so a store *inside the current block* (self-modifying code) stops
    /// trace execution on exactly the next op boundary.
    gen: u64,
    /// Low/high watermark over all addresses ever covered by a cached
    /// block, so stores to pure data regions skip invalidation entirely.
    cover_lo: u32,
    cover_hi: u32,
    /// Coarse 64-bit presence filter over 128-byte lines within the
    /// watermark (hash-folded), a second rejection layer for data that
    /// sits *between* code regions.
    filter: u64,
    /// Last observed [`trustlite_mem::Bus::host_gen`] value.
    pub(crate) host_gen: u64,
    stats: BlockStats,
    /// Distribution of built block lengths (`cpu.block.len`).
    len_hist: Histogram,
}

impl Default for BlockTable {
    fn default() -> Self {
        BlockTable {
            chunks: vec![None; BLOCK_ENTRIES / BLK_CHUNK],
            enabled: true,
            private: false,
            gen: 0,
            cover_lo: u32::MAX,
            cover_hi: 0,
            filter: 0,
            host_gen: 0,
            stats: BlockStats::default(),
            len_hist: Histogram::default(),
        }
    }
}

impl Clone for BlockTable {
    /// Snapshot semantics: Arc-bumps resident chunks (O(chunks)), or
    /// deep-copies them in the private reference mode.
    fn clone(&self) -> Self {
        let chunks = if self.private {
            self.chunks
                .iter()
                .map(|c| c.as_ref().map(|a| Arc::new((**a).clone())))
                .collect()
        } else {
            self.chunks.clone()
        };
        BlockTable {
            chunks,
            enabled: self.enabled,
            private: self.private,
            gen: self.gen,
            cover_lo: self.cover_lo,
            cover_hi: self.cover_hi,
            filter: self.filter,
            host_gen: self.host_gen,
            stats: self.stats,
            len_hist: self.len_hist.clone(),
        }
    }
}

impl BlockTable {
    #[inline]
    fn index(addr: u32) -> usize {
        (addr as usize >> 2) & (BLOCK_ENTRIES - 1)
    }

    /// Filter bit for the 128-byte line containing `addr`, folded with a
    /// higher stride so adjacent code regions don't alias onto the same
    /// few bits.
    #[inline]
    fn filter_bit(addr: u32) -> u64 {
        1u64 << (((addr >> 7) ^ (addr >> 13)) & 63)
    }

    /// Shared-path read access to the entry at `idx`, if its chunk is
    /// resident.
    #[inline(always)]
    fn entry(&self, idx: usize) -> Option<&BlockEntry> {
        self.chunks[idx / BLK_CHUNK]
            .as_ref()
            .map(|c| &c[idx % BLK_CHUNK])
    }

    /// Mutable access to the entry at `idx`, materializing the chunk and
    /// unsharing it (clone-on-first-write) as needed.
    #[inline]
    fn entry_mut(&mut self, idx: usize) -> &mut BlockEntry {
        let chunk =
            self.chunks[idx / BLK_CHUNK].get_or_insert_with(|| Arc::new([EMPTY_BLOCK; BLK_CHUNK]));
        &mut Arc::make_mut(chunk)[idx % BLK_CHUNK]
    }

    /// Whether block caching is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the table; disabling clears it.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        self.clear();
    }

    /// Switches between shared snapshots (the default) and the private
    /// reference mode; see [`Predecode::set_private`].
    pub fn set_private(&mut self, on: bool) {
        self.private = on;
        if on {
            for c in self.chunks.iter_mut().flatten() {
                Arc::make_mut(c);
            }
        }
    }

    /// Whether the table is in the private reference mode.
    pub fn is_private(&self) -> bool {
        self.private
    }

    /// Current flush generation (see the field docs).
    #[inline(always)]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Looks up the block starting at `start`. `Some(idx)` dispatches a
    /// cached positive block; `Err(true)` is a cached negative ("don't
    /// ask the builder again"); `Err(false)` is a genuine miss.
    #[inline]
    pub fn probe(&mut self, start: u32) -> Result<usize, bool> {
        let idx = Self::index(start);
        match self.entry(idx) {
            Some(e) if e.tag == start => {
                if e.len == 0 {
                    Err(true)
                } else {
                    self.stats.hits += 1;
                    Ok(idx)
                }
            }
            _ => Err(false),
        }
    }

    /// Caches `ops` as the block starting at `start` (empty = negative
    /// entry) and returns its index.
    pub fn insert(&mut self, start: u32, ops: Vec<MicroOp>, last_cf: bool) -> usize {
        self.stats.misses += 1;
        let idx = Self::index(start);
        if !ops.is_empty() {
            self.len_hist.observe(ops.len() as u64);
        }
        // Track covered bytes (including the negative entry's own word,
        // so a later store there revives the builder).
        let end = start.wrapping_add(4 * ops.len().max(1) as u32);
        self.cover_lo = self.cover_lo.min(start);
        self.cover_hi = self.cover_hi.max(end);
        let mut line = start >> 7;
        let last_line = end.wrapping_sub(4) >> 7;
        loop {
            self.filter |= Self::filter_bit(line << 7);
            if line >= last_line {
                break;
            }
            line += 1;
        }
        *self.entry_mut(idx) = BlockEntry {
            tag: start,
            last_cf,
            len: ops.len() as u32,
            ops,
        };
        idx
    }

    /// The `(start, len, last_cf)` header of the block at `idx`.
    #[inline(always)]
    pub fn head(&self, idx: usize) -> (u32, u32, bool) {
        let e = self.entry(idx).expect("block chunk resident");
        (e.tag, e.len, e.last_cf)
    }

    /// Checks the micro-op vector of block `idx` out of the table: the
    /// execution loop owns it for the whole pass (no per-op table
    /// indexing, and lazily-learned grant memos are written straight
    /// into the ops), then returns it with [`BlockTable::put_ops`]. The
    /// entry's header stays live, so precise invalidation keeps working
    /// while the vector is out. The checkout is a table write, so on a
    /// freshly forked device the first dispatch from a shared chunk
    /// unshares it — after which the checkout is a plain `mem::take`.
    pub fn take_ops(&mut self, idx: usize) -> Vec<MicroOp> {
        std::mem::take(&mut self.entry_mut(idx).ops)
    }

    /// Returns a checked-out micro-op vector. Dropped instead if the
    /// entry was flushed (or rebuilt) while it was out — resurrecting
    /// stale ops after an invalidation would defeat precise SMC
    /// flushing.
    pub fn put_ops(&mut self, idx: usize, start: u32, ops: Vec<MicroOp>) {
        match self.entry(idx) {
            Some(e) if e.tag == start && e.len as usize == ops.len() && e.ops.is_empty() => {}
            _ => return,
        }
        self.entry_mut(idx).ops = ops;
    }

    /// Drops every cached block containing the word at `addr` — the
    /// store-path hook. Cheap for data stores: a watermark test plus a
    /// 64-bit filter probe reject addresses no block has ever covered;
    /// only on a filter hit does the bounded walk over the
    /// [`MAX_BLOCK_OPS`] candidate start addresses run.
    #[inline]
    pub fn invalidate(&mut self, addr: u32) {
        if !self.enabled {
            return;
        }
        let a = addr & !3;
        if a.wrapping_sub(self.cover_lo) >= self.cover_hi.wrapping_sub(self.cover_lo)
            || self.filter & Self::filter_bit(a) == 0
        {
            return;
        }
        self.invalidate_slow(a);
    }

    fn invalidate_slow(&mut self, a: u32) {
        let mut flushed = false;
        let mut start = a.wrapping_sub(4 * (MAX_BLOCK_OPS as u32 - 1));
        loop {
            let idx = Self::index(start);
            // Read on the shared path; only a covering hit clones the
            // chunk before flushing in it.
            let covers = match self.entry(idx) {
                Some(e) if e.tag == start => {
                    let end = start.wrapping_add(4 * e.len.max(1));
                    a.wrapping_sub(start) < end.wrapping_sub(start)
                }
                _ => false,
            };
            if covers {
                let e = self.entry_mut(idx);
                e.tag = INVALID_TAG;
                e.len = 0;
                e.ops.clear();
                flushed = true;
                self.stats.flushes += 1;
            }
            if start == a {
                break;
            }
            start = start.wrapping_add(4);
        }
        if flushed {
            self.gen += 1;
        }
    }

    /// Flash-clears the whole table (host-side mutation, toggling) by
    /// dropping every chunk.
    pub fn clear(&mut self) {
        for c in &mut self.chunks {
            *c = None;
        }
        self.cover_lo = u32::MAX;
        self.cover_hi = 0;
        self.filter = 0;
        self.gen += 1;
    }

    /// Adds `retired` instructions to the block-path retirement counter.
    #[inline(always)]
    pub fn note_exec(&mut self, retired: u64) {
        self.stats.instret += retired;
    }

    /// Execution/maintenance counters.
    pub fn stats(&self) -> BlockStats {
        self.stats
    }

    /// Distribution of built block lengths.
    pub fn len_histogram(&self) -> &Histogram {
        &self.len_hist
    }

    /// Host-side bytes backing resident chunks (headers plus the ops
    /// heap), amortized over sharers exactly like
    /// [`Predecode::resident_bytes`]. Diagnostic only, never digested.
    pub fn resident_bytes(&self) -> u64 {
        self.chunks
            .iter()
            .flatten()
            .map(|c| {
                let heap: usize = c
                    .iter()
                    .map(|e| e.ops.capacity() * std::mem::size_of::<MicroOp>())
                    .sum();
                (std::mem::size_of::<BlkChunk>() + heap) as u64 / Arc::strong_count(c).max(1) as u64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_hit_invalidate_cycle() {
        let mut pd = Predecode::default();
        assert_eq!(pd.get(0x100), None);
        pd.insert(0x100, 0xabcd, Instr::Nop, None);
        assert_eq!(pd.get(0x100), Some((0xabcd, Instr::Nop, None)));
        // Byte-granular invalidation covers the containing word.
        pd.invalidate(0x102);
        assert_eq!(pd.get(0x100), None);
        let s = pd.stats();
        assert_eq!((s.hits, s.misses, s.flushes), (1, 2, 1));
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut pd = Predecode::default();
        let a = 0x100;
        let b = a + (ENTRIES as u32) * 4; // same index, different tag
        pd.insert(a, 1, Instr::Nop, None);
        pd.insert(b, 2, Instr::Halt, None);
        assert_eq!(pd.get(a), None, "evicted by the conflicting insert");
        assert_eq!(pd.get(b), Some((2, Instr::Halt, None)));
    }

    #[test]
    fn clear_drops_everything() {
        let mut pd = Predecode::default();
        pd.insert(0x0, 7, Instr::Nop, None);
        pd.insert(0x4, 8, Instr::Nop, None);
        pd.clear();
        assert_eq!(pd.get(0x0), None);
        assert_eq!(pd.get(0x4), None);
        assert_eq!(pd.resident_bytes(), 0, "clear releases every chunk");
    }

    #[test]
    fn snapshot_shares_then_cow_unshares() {
        let mut pd = Predecode::default();
        pd.insert(0x100, 0xabcd, Instr::Nop, None);
        let solo = pd.resident_bytes();
        assert!(solo > 0);
        let mut child = pd.clone();
        // The one resident chunk is shared: each side reports half.
        assert_eq!(pd.resident_bytes(), solo / 2);
        assert_eq!(child.resident_bytes(), solo / 2);
        // A child-side flush clones only the child's chunk; the parent
        // keeps serving its entry from the original.
        child.invalidate(0x100);
        assert_eq!(child.get(0x100), None);
        assert_eq!(pd.get(0x100), Some((0xabcd, Instr::Nop, None)));
        assert_eq!(pd.resident_bytes(), solo, "parent chunk unshared again");
    }

    #[test]
    fn private_mode_snapshots_deep_copy() {
        let mut pd = Predecode::default();
        pd.set_private(true);
        pd.insert(0x100, 0xabcd, Instr::Nop, None);
        let solo = pd.resident_bytes();
        let child = pd.clone();
        // No sharing in reference mode: both report the full chunk.
        assert_eq!(pd.resident_bytes(), solo);
        assert_eq!(child.resident_bytes(), solo);
    }

    fn one_block() -> Vec<MicroOp> {
        vec![MicroOp {
            word: 0,
            instr: Instr::Nop,
            pure: true,
            run: 1,
            run_cost: 1,
            fetch: None,
            data: None,
        }]
    }

    #[test]
    fn block_fork_flush_is_per_device() {
        let mut bt = BlockTable::default();
        let idx = bt.insert(0x100, one_block(), false);
        let mut child = bt.clone();
        assert!(bt.resident_bytes() > 0);
        // Parent-side store flushes the parent's (freshly unshared)
        // chunk only.
        bt.invalidate(0x100);
        assert!(matches!(bt.probe(0x100), Err(false)), "parent flushed");
        assert_eq!(child.probe(0x100), Ok(idx), "child keeps the block");
        assert_eq!(child.stats().flushes, 0);
    }

    #[test]
    fn checkout_survives_sharing() {
        let mut bt = BlockTable::default();
        let idx = bt.insert(0x100, one_block(), false);
        let mut child = bt.clone();
        // Checking ops out of the child unshares its chunk; the parent's
        // entry still holds its own vector afterwards.
        let ops = child.take_ops(idx);
        assert_eq!(ops.len(), 1);
        child.put_ops(idx, 0x100, ops);
        assert_eq!(bt.probe(0x100), Ok(idx));
        assert_eq!(bt.take_ops(idx).len(), 1, "parent ops intact");
    }
}
