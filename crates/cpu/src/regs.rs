//! The architectural register file.

use trustlite_isa::Reg;

/// The flags word. Only the interrupt-enable bit is architecturally
/// visible; the remaining bits read as zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Interrupt enable (maskable interrupts delivered when set).
    pub ie: bool,
}

impl Flags {
    /// Packs into the in-memory/stack representation.
    pub fn to_word(self) -> u32 {
        self.ie as u32
    }

    /// Unpacks from the in-memory representation.
    pub fn from_word(w: u32) -> Flags {
        Flags { ie: w & 1 != 0 }
    }
}

/// The SP32 register file: eight GPRs, a dedicated stack pointer, the
/// instruction pointer and the flags word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegFile {
    /// General-purpose registers `r0..r7`.
    pub gprs: [u32; 8],
    /// Stack pointer.
    pub sp: u32,
    /// Instruction pointer (address of the next instruction to fetch).
    pub ip: u32,
    /// Flags.
    pub flags: Flags,
}

impl RegFile {
    /// Reads an operand register.
    pub fn get(&self, r: Reg) -> u32 {
        match r {
            Reg::Sp => self.sp,
            gpr => self.gprs[gpr.code() as usize],
        }
    }

    /// Writes an operand register.
    pub fn set(&mut self, r: Reg, v: u32) {
        match r {
            Reg::Sp => self.sp = v,
            gpr => self.gprs[gpr.code() as usize] = v,
        }
    }

    /// Clears all general-purpose registers (the secure exception engine's
    /// anti-leak scrub; `sp` is handled separately, Section 3.4.1).
    pub fn clear_gprs(&mut self) {
        self.gprs = [0; 8];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip_all_registers() {
        let mut rf = RegFile::default();
        for (i, r) in Reg::ALL.iter().enumerate() {
            rf.set(*r, 0x100 + i as u32);
        }
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(rf.get(*r), 0x100 + i as u32);
        }
    }

    #[test]
    fn sp_is_separate_from_gprs() {
        let mut rf = RegFile::default();
        rf.set(Reg::Sp, 0xdead);
        assert_eq!(rf.gprs, [0; 8]);
        rf.clear_gprs();
        assert_eq!(rf.sp, 0xdead, "clear_gprs leaves sp intact");
    }

    #[test]
    fn flags_word_roundtrip() {
        assert_eq!(
            Flags::from_word(Flags { ie: true }.to_word()),
            Flags { ie: true }
        );
        assert_eq!(
            Flags::from_word(0xffff_fffe),
            Flags { ie: false },
            "reserved bits ignored"
        );
    }
}
