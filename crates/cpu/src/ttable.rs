//! The Trustlet Table as seen by hardware.
//!
//! Per Figure 4, the Trustlet Table is a write-protected table in on-chip
//! memory holding, for each trustlet, an identifier, its code region and
//! its saved stack pointer. The Secure Loader populates it; the secure
//! exception engine matches the interrupted instruction pointer against
//! the code regions and updates the saved stack pointer (the one table
//! write in the "9 cycles" of Section 5.4). It is the analogue of the x86
//! Task State Segment the paper draws on.
//!
//! In-memory row layout (16 bytes, little-endian words):
//!
//! ```text
//! +0   id          (application-chosen identifier)
//! +4   code_start  (entry vector = first word of the code region)
//! +8   code_end    (one past the region)
//! +12  saved_sp    (updated by the exception engine)
//! ```

use trustlite_mem::BusError;

use crate::sysbus::SystemBus;

/// Size of one Trustlet Table row in bytes.
pub const TT_ROW_BYTES: u32 = 16;

/// A decoded Trustlet Table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrustletRow {
    /// Application-chosen identifier.
    pub id: u32,
    /// Start of the code region (also the entry vector address).
    pub code_start: u32,
    /// One past the end of the code region.
    pub code_end: u32,
    /// Stack pointer saved on last interruption (or initial stack).
    pub saved_sp: u32,
}

impl TrustletRow {
    /// Returns true if `ip` executes inside this trustlet's code.
    pub fn contains_ip(&self, ip: u32) -> bool {
        ip >= self.code_start && ip < self.code_end
    }

    /// Absolute address of the `saved_sp` field of row `index`.
    pub fn saved_sp_addr(tt_base: u32, index: u32) -> u32 {
        tt_base + index * TT_ROW_BYTES + 12
    }
}

/// Reads row `index` of the table at `tt_base` (hardware path).
pub fn read_row(sys: &mut SystemBus, tt_base: u32, index: u32) -> Result<TrustletRow, BusError> {
    let base = tt_base + index * TT_ROW_BYTES;
    Ok(TrustletRow {
        id: sys.hw_read32(base)?,
        code_start: sys.hw_read32(base + 4)?,
        code_end: sys.hw_read32(base + 8)?,
        saved_sp: sys.hw_read32(base + 12)?,
    })
}

/// Writes row `index` of the table (loader/hardware path).
pub fn write_row(
    sys: &mut SystemBus,
    tt_base: u32,
    index: u32,
    row: &TrustletRow,
) -> Result<(), BusError> {
    let base = tt_base + index * TT_ROW_BYTES;
    sys.hw_write32(base, row.id)?;
    sys.hw_write32(base + 4, row.code_start)?;
    sys.hw_write32(base + 8, row.code_end)?;
    sys.hw_write32(base + 12, row.saved_sp)
}

/// Finds the row whose code region contains `ip`, scanning `count` rows.
pub fn find_by_ip(
    sys: &mut SystemBus,
    tt_base: u32,
    count: u32,
    ip: u32,
) -> Result<Option<(u32, TrustletRow)>, BusError> {
    for i in 0..count {
        let row = read_row(sys, tt_base, i)?;
        if row.contains_ip(ip) {
            return Ok(Some((i, row)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlite_mem::{Bus, Ram};
    use trustlite_mpu::EaMpu;

    fn sys() -> SystemBus {
        let mut bus = Bus::new();
        bus.map(0x1000_0000, Box::new(Ram::new("sram", 0x1000)))
            .unwrap();
        SystemBus::new(bus, EaMpu::new(4), None)
    }

    #[test]
    fn row_roundtrip() {
        let mut s = sys();
        let row = TrustletRow {
            id: 0x41,
            code_start: 0x100,
            code_end: 0x200,
            saved_sp: 0x1f00,
        };
        write_row(&mut s, 0x1000_0000, 2, &row).unwrap();
        assert_eq!(read_row(&mut s, 0x1000_0000, 2).unwrap(), row);
    }

    #[test]
    fn find_by_ip_matches_half_open() {
        let mut s = sys();
        let a = TrustletRow {
            id: 1,
            code_start: 0x100,
            code_end: 0x200,
            saved_sp: 0,
        };
        let b = TrustletRow {
            id: 2,
            code_start: 0x200,
            code_end: 0x300,
            saved_sp: 0,
        };
        write_row(&mut s, 0x1000_0000, 0, &a).unwrap();
        write_row(&mut s, 0x1000_0000, 1, &b).unwrap();
        let hit = find_by_ip(&mut s, 0x1000_0000, 2, 0x1fc).unwrap().unwrap();
        assert_eq!(hit.0, 0);
        let hit = find_by_ip(&mut s, 0x1000_0000, 2, 0x200).unwrap().unwrap();
        assert_eq!(hit.1.id, 2, "boundary belongs to the next region");
        assert!(find_by_ip(&mut s, 0x1000_0000, 2, 0x5000)
            .unwrap()
            .is_none());
    }

    #[test]
    fn saved_sp_field_address() {
        assert_eq!(TrustletRow::saved_sp_addr(0x1000, 0), 0x100c);
        assert_eq!(TrustletRow::saved_sp_addr(0x1000, 3), 0x1000 + 48 + 12);
    }
}
