//! Exception vector numbering and IDT conventions.
//!
//! The interrupt descriptor table is an array of 32 handler addresses in
//! memory at a base address configured (and then locked) by the Secure
//! Loader. Vectors:
//!
//! ```text
//! 0..8    hardware faults (0 = MPU, 1 = illegal instruction, 2 = bus)
//! 8..16   peripheral interrupt lines 0..8 (unless peripheral-vectored)
//! 16..32  software interrupts (swi 0..15)
//! ```

use crate::fault::Fault;

/// Number of IDT entries.
pub const IDT_ENTRIES: u32 = 32;
/// Size of the IDT in bytes.
pub const IDT_BYTES: u32 = IDT_ENTRIES * 4;

/// Vector of MPU protection faults.
pub const VEC_MPU_FAULT: u8 = 0;
/// Vector of illegal-instruction faults.
pub const VEC_ILLEGAL: u8 = 1;
/// Vector of bus faults.
pub const VEC_BUS_FAULT: u8 = 2;
/// First vector of hardware interrupt lines.
pub const VEC_IRQ_BASE: u8 = 8;
/// First vector of software interrupts.
pub const VEC_SWI_BASE: u8 = 16;

/// Maps a synchronous fault to its vector.
pub fn fault_vector(f: &Fault) -> u8 {
    match f {
        Fault::Mpu(_) => VEC_MPU_FAULT,
        Fault::Illegal { .. } => VEC_ILLEGAL,
        Fault::Bus { .. } => VEC_BUS_FAULT,
    }
}

/// Maps an interrupt line to its vector.
pub fn irq_vector(line: u8) -> u8 {
    VEC_IRQ_BASE + (line & 7)
}

/// Maps a software-interrupt argument to its vector.
pub fn swi_vector(arg: u8) -> u8 {
    VEC_SWI_BASE + (arg & 15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlite_mem::BusError;
    use trustlite_mpu::{AccessKind, MpuFault};

    #[test]
    fn vector_spaces_disjoint() {
        let mpu = fault_vector(&Fault::Mpu(MpuFault {
            ip: 0,
            addr: 0,
            kind: AccessKind::Read,
        }));
        let bus = fault_vector(&Fault::Bus {
            ip: 0,
            err: BusError::Unmapped { addr: 0 },
        });
        assert!(mpu < VEC_IRQ_BASE && bus < VEC_IRQ_BASE);
        assert!(irq_vector(0) >= VEC_IRQ_BASE && irq_vector(7) < VEC_SWI_BASE);
        assert!(swi_vector(0) >= VEC_SWI_BASE);
        assert!((swi_vector(15) as u32) < IDT_ENTRIES);
    }

    #[test]
    fn wrapping_masks() {
        assert_eq!(irq_vector(8), irq_vector(0));
        assert_eq!(swi_vector(16), swi_vector(0));
    }
}
