//! Fast-path cache correctness: the predecode table must never serve a
//! stale decode. Self-modifying code (CPU stores), loader-style
//! `hw_write32` patches and host-side `host_load` updates all have to be
//! re-decoded, and running with the caches off must produce bit-identical
//! architectural state and cycle counts.

use trustlite_cpu::{HaltReason, Machine, RunExit, SystemBus};
use trustlite_isa::{encode, Asm, Image, Instr, Reg};
use trustlite_mem::{Bus, Ram};
use trustlite_mpu::EaMpu;

const SRAM: u32 = 0x1000_0000;

/// A machine whose code lives in RAM (writable), MPU enforcement off.
fn machine(img: &Image, fast_path: bool) -> Machine {
    let mut bus = Bus::new();
    bus.map(SRAM, Box::new(Ram::new("sram", 0x1_0000))).unwrap();
    assert!(bus.host_load(img.base, &img.bytes));
    let mut sys = SystemBus::new(bus, EaMpu::new(8), None);
    sys.enforce = false;
    sys.set_fast_path(fast_path);
    Machine::new(sys, img.base)
}

/// Executes an instruction once (warming the predecode cache), patches it
/// with an ordinary store, and executes it again: the patched semantics
/// must win.
fn self_modifying_image() -> Image {
    let patch = encode(Instr::Movi {
        rd: Reg::R2,
        imm: 99,
    });
    let mut a = Asm::new(SRAM);
    a.li(Reg::R0, patch);
    a.la(Reg::R1, "target");
    a.li(Reg::R3, 0);
    a.label("target");
    a.movi(Reg::R2, 1); // exactly one word; overwritten on the second pass
    a.bne(Reg::R3, Reg::R4, "done");
    a.li(Reg::R3, 1);
    a.sw(Reg::R1, 0, Reg::R0); // mem[target] <- "movi r2, 99"
    a.jmp("target");
    a.label("done");
    a.halt();
    a.assemble().unwrap()
}

#[test]
fn self_modifying_code_re_decodes() {
    let img = self_modifying_image();
    let mut m = machine(&img, true);
    assert!(matches!(
        m.run(100),
        RunExit::Halted(HaltReason::Halt { .. })
    ));
    assert_eq!(
        m.regs.get(Reg::R2),
        99,
        "second pass must execute the patched instruction"
    );
}

#[test]
fn self_modifying_code_cycles_match_uncached() {
    let img = self_modifying_image();
    let mut fast = machine(&img, true);
    let mut slow = machine(&img, false);
    assert!(matches!(fast.run(100), RunExit::Halted(_)));
    assert!(matches!(slow.run(100), RunExit::Halted(_)));
    assert_eq!(fast.regs.get(Reg::R2), slow.regs.get(Reg::R2));
    assert_eq!(fast.cycles, slow.cycles, "caches must not change timing");
    assert_eq!(fast.instret, slow.instret);
}

#[test]
fn hw_write_patch_re_decodes() {
    // An infinite loop, warmed into the cache, then patched to a halt via
    // the hardware write path the Secure Loader's copy loops use.
    let mut a = Asm::new(SRAM);
    a.label("spin");
    a.jmp("spin");
    let img = a.assemble().unwrap();
    let mut m = machine(&img, true);
    assert_eq!(m.run(10), RunExit::StepLimit, "spinning");
    m.sys.hw_write32(SRAM, encode(Instr::Halt)).unwrap();
    assert!(
        matches!(m.run(10), RunExit::Halted(HaltReason::Halt { .. })),
        "patched word must be re-decoded"
    );
}

#[test]
fn host_load_patch_re_decodes() {
    let mut a = Asm::new(SRAM);
    a.label("spin");
    a.jmp("spin");
    let img = a.assemble().unwrap();
    let mut m = machine(&img, true);
    assert_eq!(m.run(10), RunExit::StepLimit, "spinning");
    // Host-side reprogramming (field update): caught by the bus host
    // generation counter, which flash-clears the predecode table.
    assert!(m
        .sys
        .bus
        .host_load(SRAM, &encode(Instr::Halt).to_le_bytes()));
    assert!(matches!(
        m.run(10),
        RunExit::Halted(HaltReason::Halt { .. })
    ));
}
