//! Fast-path cache correctness: the predecode table must never serve a
//! stale decode. Self-modifying code (CPU stores), loader-style
//! `hw_write32` patches and host-side `host_load` updates all have to be
//! re-decoded, and running with the caches off must produce bit-identical
//! architectural state and cycle counts.

use trustlite_cpu::{HaltReason, Machine, RunExit, SystemBus};
use trustlite_isa::{encode, Asm, Image, Instr, Reg};
use trustlite_mem::{Bus, Ram};
use trustlite_mpu::EaMpu;

const SRAM: u32 = 0x1000_0000;

/// A machine whose code lives in RAM (writable), MPU enforcement off.
fn machine(img: &Image, fast_path: bool) -> Machine {
    let mut bus = Bus::new();
    bus.map(SRAM, Box::new(Ram::new("sram", 0x1_0000))).unwrap();
    assert!(bus.host_load(img.base, &img.bytes));
    let mut sys = SystemBus::new(bus, EaMpu::new(8), None);
    sys.enforce = false;
    sys.set_fast_path(fast_path);
    Machine::new(sys, img.base)
}

/// Executes an instruction once (warming the predecode cache), patches it
/// with an ordinary store, and executes it again: the patched semantics
/// must win.
fn self_modifying_image() -> Image {
    let patch = encode(Instr::Movi {
        rd: Reg::R2,
        imm: 99,
    });
    let mut a = Asm::new(SRAM);
    a.li(Reg::R0, patch);
    a.la(Reg::R1, "target");
    a.li(Reg::R3, 0);
    a.label("target");
    a.movi(Reg::R2, 1); // exactly one word; overwritten on the second pass
    a.bne(Reg::R3, Reg::R4, "done");
    a.li(Reg::R3, 1);
    a.sw(Reg::R1, 0, Reg::R0); // mem[target] <- "movi r2, 99"
    a.jmp("target");
    a.label("done");
    a.halt();
    a.assemble().unwrap()
}

#[test]
fn self_modifying_code_re_decodes() {
    let img = self_modifying_image();
    let mut m = machine(&img, true);
    assert!(matches!(
        m.run(100),
        RunExit::Halted(HaltReason::Halt { .. })
    ));
    assert_eq!(
        m.regs.get(Reg::R2),
        99,
        "second pass must execute the patched instruction"
    );
}

#[test]
fn self_modifying_code_cycles_match_uncached() {
    let img = self_modifying_image();
    let mut fast = machine(&img, true);
    let mut slow = machine(&img, false);
    assert!(matches!(fast.run(100), RunExit::Halted(_)));
    assert!(matches!(slow.run(100), RunExit::Halted(_)));
    assert_eq!(fast.regs.get(Reg::R2), slow.regs.get(Reg::R2));
    assert_eq!(fast.cycles, slow.cycles, "caches must not change timing");
    assert_eq!(fast.instret, slow.instret);
}

#[test]
fn hw_write_patch_re_decodes() {
    // An infinite loop, warmed into the cache, then patched to a halt via
    // the hardware write path the Secure Loader's copy loops use.
    let mut a = Asm::new(SRAM);
    a.label("spin");
    a.jmp("spin");
    let img = a.assemble().unwrap();
    let mut m = machine(&img, true);
    assert_eq!(m.run(10), RunExit::StepLimit, "spinning");
    m.sys.hw_write32(SRAM, encode(Instr::Halt)).unwrap();
    assert!(
        matches!(m.run(10), RunExit::Halted(HaltReason::Halt { .. })),
        "patched word must be re-decoded"
    );
}

#[test]
fn host_load_patch_re_decodes() {
    let mut a = Asm::new(SRAM);
    a.label("spin");
    a.jmp("spin");
    let img = a.assemble().unwrap();
    let mut m = machine(&img, true);
    assert_eq!(m.run(10), RunExit::StepLimit, "spinning");
    // Host-side reprogramming (field update): caught by the bus host
    // generation counter, which flash-clears the predecode table.
    assert!(m
        .sys
        .bus
        .host_load(SRAM, &encode(Instr::Halt).to_le_bytes()));
    assert!(matches!(
        m.run(10),
        RunExit::Halted(HaltReason::Halt { .. })
    ));
}

// ---------------------------------------------------------------------
// Superblock invalidation: a store into a cached block must flush it
// precisely (that block and nothing else) and the next dispatch must
// re-execute the patched code.
// ---------------------------------------------------------------------

/// A resident self-loop: four register ops and a backward jump, cached
/// as one superblock at `SRAM`.
fn loop_block_image() -> Image {
    let mut a = Asm::new(SRAM);
    a.label("top");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 2);
    a.movi(Reg::R4, 3);
    a.movi(Reg::R5, 4);
    a.jmp("top");
    a.assemble().unwrap()
}

/// Warms the block cache on the loop image and returns the machine with
/// exactly one built block.
fn warmed_loop_machine() -> Machine {
    let img = loop_block_image();
    let mut m = machine(&img, true);
    assert_eq!(m.run(50), RunExit::StepLimit);
    let s = m.sys.block_stats();
    assert!(s.misses >= 1, "loop must have built a block");
    assert_eq!(s.flushes, 0, "nothing should be flushed yet");
    m
}

/// Patches the micro-op at word offset `word` of the warmed loop block
/// and asserts a precise flush plus re-execution of the new semantics.
fn patch_and_check(word: u32, patch: Instr, check: impl Fn(&mut Machine)) {
    let mut m = warmed_loop_machine();
    let flushes0 = m.sys.block_stats().flushes;
    m.sys.hw_write32(SRAM + 4 * word, encode(patch)).unwrap();
    assert_eq!(
        m.sys.block_stats().flushes,
        flushes0 + 1,
        "a store into a cached block must flush exactly that block"
    );
    assert_eq!(m.run(50), RunExit::StepLimit);
    check(&mut m);
    assert!(
        m.sys.block_stats().misses >= 2,
        "the patched block must have been rebuilt"
    );
}

#[test]
fn patching_first_micro_op_flushes_and_re_executes() {
    patch_and_check(
        0,
        Instr::Movi {
            rd: Reg::R2,
            imm: 99,
        },
        |m| assert_eq!(m.regs.get(Reg::R2), 99),
    );
}

#[test]
fn patching_middle_micro_op_flushes_and_re_executes() {
    patch_and_check(
        2,
        Instr::Movi {
            rd: Reg::R4,
            imm: 77,
        },
        |m| assert_eq!(m.regs.get(Reg::R4), 77),
    );
}

#[test]
fn patching_last_micro_op_flushes_and_re_executes() {
    // The final micro-op is the control transfer; patch it into a halt
    // so the loop must fall out on the very next pass.
    let mut m = warmed_loop_machine();
    let flushes0 = m.sys.block_stats().flushes;
    m.sys.hw_write32(SRAM + 4 * 4, encode(Instr::Halt)).unwrap();
    assert_eq!(m.sys.block_stats().flushes, flushes0 + 1);
    assert!(
        matches!(m.run(50), RunExit::Halted(HaltReason::Halt { .. })),
        "patched terminator must be re-decoded and re-built"
    );
}

#[test]
fn patch_flushes_only_the_covering_block() {
    // Two ping-ponging blocks; a patch into the second must flush it
    // alone — the first block keeps serving from the cache (exactly one
    // rebuild miss afterwards).
    let mut a = Asm::new(SRAM);
    a.label("a");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 2);
    a.jmp("b");
    a.label("b");
    a.movi(Reg::R4, 3);
    a.movi(Reg::R5, 4);
    a.jmp("a");
    let img = a.assemble().unwrap();
    let mut m = machine(&img, true);
    assert_eq!(m.run(60), RunExit::StepLimit);
    let s0 = m.sys.block_stats();
    assert!(s0.misses >= 2, "both blocks must be cached");
    assert_eq!(s0.flushes, 0);
    // Patch the first micro-op of block `b` (word 3 of the image).
    m.sys
        .hw_write32(
            SRAM + 4 * 3,
            encode(Instr::Movi {
                rd: Reg::R4,
                imm: 55,
            }),
        )
        .unwrap();
    let s1 = m.sys.block_stats();
    assert_eq!(
        s1.flushes,
        s0.flushes + 1,
        "only the covering block is flushed"
    );
    assert_eq!(m.run(60), RunExit::StepLimit);
    assert_eq!(m.regs.get(Reg::R4), 55, "patched op must re-execute");
    let s2 = m.sys.block_stats();
    assert_eq!(
        s2.misses,
        s0.misses + 1,
        "block `a` must still be served from the cache"
    );
}

#[test]
fn store_across_block_boundary_flushes_both_neighbours() {
    // Adjacent blocks: `a` falls into a patchable tail word that sits in
    // block `b`. A 32-bit store exactly on the boundary word must flush
    // `b` (whose first op it is) without touching `a`'s cached ops —
    // then patching `a`'s last word must flush `a` too.
    let mut a = Asm::new(SRAM);
    a.label("a");
    a.movi(Reg::R2, 1);
    a.jmp("b");
    a.label("b");
    a.movi(Reg::R3, 2);
    a.jmp("a");
    let img = a.assemble().unwrap();
    let mut m = machine(&img, true);
    assert_eq!(m.run(40), RunExit::StepLimit);
    let s0 = m.sys.block_stats();
    assert!(s0.misses >= 2);
    // Boundary word = first word of `b` (word 2).
    m.sys
        .hw_write32(
            SRAM + 4 * 2,
            encode(Instr::Movi {
                rd: Reg::R3,
                imm: 66,
            }),
        )
        .unwrap();
    assert_eq!(m.sys.block_stats().flushes, s0.flushes + 1);
    // Last word of `a` (word 1, its jump; the rewritten word still
    // targets `b`) — a separate covering block must flush.
    m.sys
        .hw_write32(SRAM + 4, encode(Instr::Jmp { off: 0 }))
        .unwrap();
    assert_eq!(m.sys.block_stats().flushes, s0.flushes + 2);
    assert_eq!(m.run(40), RunExit::StepLimit);
    assert_eq!(m.regs.get(Reg::R3), 66);
}

// ---------------------------------------------------------------------
// COW-backed forks: sparse RAM shares pages between a machine and its
// snapshot, so the invalidation contract must hold across the fork —
// child patches unshare pages privately (invisible to the parent) and
// both sides re-decode correctly.
// ---------------------------------------------------------------------

#[test]
fn smc_after_fork_is_private_and_re_decoded() {
    let mut a = Asm::new(SRAM);
    a.label("spin");
    a.jmp("spin");
    let img = a.assemble().unwrap();
    let mut parent = Machine::new(
        {
            let mut bus = Bus::new();
            bus.map(SRAM, Box::new(Ram::new("sram", 0x1_0000))).unwrap();
            assert!(bus.host_load(img.base, &img.bytes));
            let mut sys = SystemBus::new(bus, EaMpu::new(8), None);
            sys.enforce = false;
            sys.set_fast_path(true);
            sys
        },
        img.base,
    );
    // Warm the parent's caches on the shared page.
    assert_eq!(parent.run(10), RunExit::StepLimit, "spinning");

    let mut child = parent.snapshot().expect("machine snapshots");
    // Patch the child's code two ways: a host_load (host_gen flash-clear
    // path) writing into a COW page shared with the parent...
    assert!(child
        .sys
        .bus
        .host_load(SRAM, &encode(Instr::Halt).to_le_bytes()));
    assert!(
        matches!(child.run(10), RunExit::Halted(HaltReason::Halt { .. })),
        "child re-decodes its private patched page"
    );
    // ...while the parent still spins on the original shared word.
    assert_eq!(parent.run(10), RunExit::StepLimit, "parent unaffected");

    // And the reverse: a parent-side CPU store (store-granular probe
    // invalidation) must not leak into a fresh child taken before it.
    let mut child2 = parent.snapshot().expect("machine snapshots");
    parent.sys.hw_write32(SRAM, encode(Instr::Halt)).unwrap();
    assert!(matches!(
        parent.run(10),
        RunExit::Halted(HaltReason::Halt { .. })
    ));
    assert_eq!(child2.run(10), RunExit::StepLimit, "fork isolated");
}

// ---------------------------------------------------------------------
// Arc-shared code caches across forks: `snapshot()` Arc-bumps the
// chunked predecode/superblock tables, so a patch on either side must
// clone only the touched chunk. Flush counters stay per-device and the
// other side keeps dispatching its original cached block.
// ---------------------------------------------------------------------

#[test]
fn shared_block_parent_patch_keeps_child_on_original_bytes() {
    let mut parent = warmed_loop_machine();
    let mut child = parent.snapshot().expect("machine snapshots");
    let child0 = child.sys.block_stats();
    // Parent patches its cached loop body: its covering block flushes,
    // rebuilds, and the new semantics win on the parent only.
    let f0 = parent.sys.block_stats().flushes;
    parent
        .sys
        .hw_write32(
            SRAM,
            encode(Instr::Movi {
                rd: Reg::R2,
                imm: 99,
            }),
        )
        .unwrap();
    assert_eq!(parent.sys.block_stats().flushes, f0 + 1);
    assert_eq!(parent.run(50), RunExit::StepLimit);
    assert_eq!(parent.regs.get(Reg::R2), 99);
    // The child's table still holds the original block: no flush leaked
    // across the Arc, and the original semantics keep executing.
    assert_eq!(
        child.sys.block_stats(),
        child0,
        "parent-side flush must stay per-device"
    );
    assert_eq!(child.run(50), RunExit::StepLimit);
    assert_eq!(child.regs.get(Reg::R2), 1, "child executes original bytes");
}

#[test]
fn shared_block_child_patch_keeps_parent_on_original_bytes() {
    let mut parent = warmed_loop_machine();
    let mut child = parent.snapshot().expect("machine snapshots");
    let parent0 = parent.sys.block_stats();
    // Child patches the second loop word; its chunk is cloned on write.
    child
        .sys
        .hw_write32(
            SRAM + 4,
            encode(Instr::Movi {
                rd: Reg::R3,
                imm: 88,
            }),
        )
        .unwrap();
    assert_eq!(child.run(50), RunExit::StepLimit);
    assert_eq!(child.regs.get(Reg::R3), 88);
    assert_eq!(
        parent.sys.block_stats(),
        parent0,
        "child-side flush must stay per-device"
    );
    assert_eq!(parent.run(50), RunExit::StepLimit);
    assert_eq!(
        parent.regs.get(Reg::R3),
        2,
        "parent executes original bytes"
    );
}

#[test]
fn fork_shares_code_cache_footprint() {
    let parent = warmed_loop_machine();
    let before = parent.sys.code_cache_bytes();
    assert!(before > 0, "warm tables must be resident");
    let mut child = parent.snapshot().expect("machine snapshots");
    // Resident accounting amortizes each chunk over its sharers, so the
    // fork adds (almost) nothing to the combined physical footprint.
    let shared = parent.sys.code_cache_bytes() + child.sys.code_cache_bytes();
    assert!(
        shared <= before,
        "fork must not duplicate resident chunks: {shared} > {before}"
    );
    // A child-side patch unshares exactly the touched chunks: the sum
    // grows, but stays well under a full deep copy.
    child
        .sys
        .hw_write32(
            SRAM,
            encode(Instr::Movi {
                rd: Reg::R2,
                imm: 7,
            }),
        )
        .unwrap();
    assert_eq!(child.run(50), RunExit::StepLimit);
    let after = parent.sys.code_cache_bytes() + child.sys.code_cache_bytes();
    assert!(after > shared, "clone-on-write must materialize the chunk");
}

#[test]
fn private_mode_fork_behaves_identically_to_shared() {
    // The `--private-code` reference mode deep-copies on snapshot but
    // must be architecturally indistinguishable: same registers, same
    // timing, same cache counters after an identical SMC sequence.
    let mut parent = warmed_loop_machine();
    let mut shared_child = parent.snapshot().expect("machine snapshots");
    parent.sys.set_private_code_caches(true);
    let mut private_child = parent.snapshot().expect("machine snapshots");
    for c in [&mut shared_child, &mut private_child] {
        c.sys
            .hw_write32(
                SRAM,
                encode(Instr::Movi {
                    rd: Reg::R2,
                    imm: 42,
                }),
            )
            .unwrap();
        assert_eq!(c.run(50), RunExit::StepLimit);
        assert_eq!(c.regs.get(Reg::R2), 42);
    }
    assert_eq!(shared_child.regs.gprs, private_child.regs.gprs);
    assert_eq!(
        (shared_child.cycles, shared_child.instret),
        (private_child.cycles, private_child.instret)
    );
    assert_eq!(
        shared_child.sys.block_stats(),
        private_child.sys.block_stats()
    );
    assert_eq!(
        shared_child.sys.predecode_stats(),
        private_child.sys.predecode_stats()
    );
}
