//! Differential property test: random straight-line ALU programs are
//! executed on the simulator and compared against an independent host
//! evaluation of the same instruction sequence. Any divergence in
//! register-file semantics shows up as a counterexample.

use proptest::prelude::*;
use trustlite_cpu::{Machine, SystemBus};
use trustlite_isa::instr::AluOp;
use trustlite_isa::{encode, Instr, Reg};
use trustlite_mem::{Bus, Rom};
use trustlite_mpu::EaMpu;

#[derive(Debug, Clone, Copy)]
enum Op {
    Alu(AluOp, Reg, Reg, Reg),
    Mov(Reg, Reg),
    Not(Reg, Reg),
    Addi(Reg, Reg, i16),
    Andi(Reg, Reg, u16),
    Ori(Reg, Reg, u16),
    Xori(Reg, Reg, u16),
    Shli(Reg, Reg, u8),
    Shri(Reg, Reg, u8),
    Srai(Reg, Reg, u8),
    Movi(Reg, i16),
    Lui(Reg, u16),
}

fn gpr() -> impl Strategy<Value = Reg> {
    (0u32..8).prop_map(|c| Reg::from_code(c).expect("gpr"))
}

fn any_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0usize..AluOp::ALL.len()), gpr(), gpr(), gpr()).prop_map(|(a, rd, rs1, rs2)| Op::Alu(
            AluOp::ALL[a],
            rd,
            rs1,
            rs2
        )),
        (gpr(), gpr()).prop_map(|(rd, rs1)| Op::Mov(rd, rs1)),
        (gpr(), gpr()).prop_map(|(rd, rs1)| Op::Not(rd, rs1)),
        (gpr(), gpr(), any::<i16>()).prop_map(|(rd, rs1, v)| Op::Addi(rd, rs1, v)),
        (gpr(), gpr(), any::<u16>()).prop_map(|(rd, rs1, v)| Op::Andi(rd, rs1, v)),
        (gpr(), gpr(), any::<u16>()).prop_map(|(rd, rs1, v)| Op::Ori(rd, rs1, v)),
        (gpr(), gpr(), any::<u16>()).prop_map(|(rd, rs1, v)| Op::Xori(rd, rs1, v)),
        (gpr(), gpr(), 0u8..32).prop_map(|(rd, rs1, v)| Op::Shli(rd, rs1, v)),
        (gpr(), gpr(), 0u8..32).prop_map(|(rd, rs1, v)| Op::Shri(rd, rs1, v)),
        (gpr(), gpr(), 0u8..32).prop_map(|(rd, rs1, v)| Op::Srai(rd, rs1, v)),
        (gpr(), any::<i16>()).prop_map(|(rd, v)| Op::Movi(rd, v)),
        (gpr(), any::<u16>()).prop_map(|(rd, v)| Op::Lui(rd, v)),
    ]
}

fn to_instr(op: Op) -> Instr {
    match op {
        Op::Alu(a, rd, rs1, rs2) => Instr::Alu {
            op: a,
            rd,
            rs1,
            rs2,
        },
        Op::Mov(rd, rs1) => Instr::Mov { rd, rs1 },
        Op::Not(rd, rs1) => Instr::Not { rd, rs1 },
        Op::Addi(rd, rs1, imm) => Instr::Addi { rd, rs1, imm },
        Op::Andi(rd, rs1, imm) => Instr::Andi { rd, rs1, imm },
        Op::Ori(rd, rs1, imm) => Instr::Ori { rd, rs1, imm },
        Op::Xori(rd, rs1, imm) => Instr::Xori { rd, rs1, imm },
        Op::Shli(rd, rs1, imm) => Instr::Shli { rd, rs1, imm },
        Op::Shri(rd, rs1, imm) => Instr::Shri { rd, rs1, imm },
        Op::Srai(rd, rs1, imm) => Instr::Srai { rd, rs1, imm },
        Op::Movi(rd, imm) => Instr::Movi { rd, imm },
        Op::Lui(rd, imm) => Instr::Lui { rd, imm },
    }
}

/// Independent (host) evaluation over a register array.
fn golden_step(regs: &mut [u32; 8], op: Op) {
    let g = |r: Reg| regs[r.code() as usize];
    let v = match op {
        Op::Alu(a, _, rs1, rs2) => a.apply(g(rs1), g(rs2)),
        Op::Mov(_, rs1) => g(rs1),
        Op::Not(_, rs1) => !g(rs1),
        Op::Addi(_, rs1, imm) => g(rs1).wrapping_add(imm as i32 as u32),
        Op::Andi(_, rs1, imm) => g(rs1) & imm as u32,
        Op::Ori(_, rs1, imm) => g(rs1) | imm as u32,
        Op::Xori(_, rs1, imm) => g(rs1) ^ imm as u32,
        Op::Shli(_, rs1, imm) => g(rs1).wrapping_shl(imm as u32),
        Op::Shri(_, rs1, imm) => g(rs1).wrapping_shr(imm as u32),
        Op::Srai(_, rs1, imm) => ((g(rs1) as i32) >> imm) as u32,
        Op::Movi(_, imm) => imm as i32 as u32,
        Op::Lui(_, imm) => (imm as u32) << 16,
    };
    let rd = match op {
        Op::Alu(_, rd, _, _)
        | Op::Mov(rd, _)
        | Op::Not(rd, _)
        | Op::Addi(rd, _, _)
        | Op::Andi(rd, _, _)
        | Op::Ori(rd, _, _)
        | Op::Xori(rd, _, _)
        | Op::Shli(rd, _, _)
        | Op::Shri(rd, _, _)
        | Op::Srai(rd, _, _)
        | Op::Movi(rd, _)
        | Op::Lui(rd, _) => rd,
    };
    regs[rd.code() as usize] = v;
}

proptest! {
    #[test]
    fn simulator_matches_golden_model(
        init in any::<[u32; 8]>(),
        ops in proptest::collection::vec(any_op(), 1..64),
    ) {
        // Host evaluation.
        let mut golden = init;
        for &op in &ops {
            golden_step(&mut golden, op);
        }
        // Simulator evaluation.
        let mut words: Vec<u8> = Vec::new();
        for &op in &ops {
            words.extend_from_slice(&encode(to_instr(op)).to_le_bytes());
        }
        words.extend_from_slice(&encode(Instr::Halt).to_le_bytes());
        let mut bus = Bus::new();
        bus.map(0, Box::new(Rom::new(0x2000))).expect("maps");
        bus.host_load(0, &words);
        let mut sys = SystemBus::new(bus, EaMpu::new(2), None);
        sys.enforce = false;
        let mut m = Machine::new(sys, 0);
        m.regs.gprs = init;
        m.run(ops.len() as u64 + 4);
        prop_assert_eq!(m.regs.gprs, golden, "ops: {:?}", ops);
        prop_assert_eq!(m.instret, ops.len() as u64 + 1);
    }
}
