//! Integration tests for the execution loop and the exception engines.

use trustlite_cpu::{costs, vectors};
use trustlite_cpu::{
    ttable, Fault, HaltReason, HwConfig, Machine, RunExit, StepOutcome, SystemBus, TrustletRow,
};
use trustlite_isa::{Asm, Image, Reg};
use trustlite_mem::{Bus, BusError, IrqRequest, Ram, Rom};
use trustlite_mpu::EaMpu;

const PROM: u32 = 0x0000_0000;
const SRAM: u32 = 0x1000_0000;
const IDT: u32 = SRAM;
const OS_SP_CELL: u32 = SRAM + 0x100;
const TT_BASE: u32 = SRAM + 0x200;
const OS_STACK_TOP: u32 = SRAM + 0x8000;
const TL_STACK_TOP: u32 = SRAM + 0x9000;
const TL_CODE: u32 = 0x8000; // trustlet code region inside PROM

/// Builds a machine with PROM and SRAM, MPU enforcement off (these tests
/// target the core and the engine, not the MPU).
fn machine(images: &[&Image]) -> Machine {
    let mut bus = Bus::new();
    bus.map(PROM, Box::new(Rom::new(0x1_0000))).unwrap();
    bus.map(SRAM, Box::new(Ram::new("sram", 0x1_0000))).unwrap();
    for img in images {
        assert!(
            bus.host_load(img.base, &img.bytes),
            "image load at {:#x}",
            img.base
        );
    }
    let mut sys = SystemBus::new(bus, EaMpu::new(8), None);
    sys.enforce = false;
    Machine::new(sys, PROM)
}

/// Installs an IDT entry, the OS stack cell and default hw config.
fn configure_os(m: &mut Machine, vector: u8, handler: u32) {
    m.sys.hw_write32(IDT + 4 * vector as u32, handler).unwrap();
    m.sys.hw_write32(OS_SP_CELL, OS_STACK_TOP).unwrap();
    m.hw = HwConfig {
        secure_exceptions: false,
        idt_base: IDT,
        os_sp_cell: OS_SP_CELL,
        os_region: (PROM, PROM + 0x8000),
        tt_base: TT_BASE,
        tt_count: 0,
    };
}

fn asm(base: u32) -> Asm {
    Asm::new(base)
}

#[test]
fn arithmetic_program_computes() {
    let mut a = asm(PROM);
    a.li(Reg::R0, 6);
    a.li(Reg::R1, 7);
    a.mul(Reg::R2, Reg::R0, Reg::R1);
    a.addi(Reg::R2, Reg::R2, -2);
    a.halt();
    let mut m = machine(&[&a.assemble().unwrap()]);
    assert_eq!(
        m.run(100),
        RunExit::Halted(HaltReason::Halt { ip: PROM + 16 })
    );
    assert_eq!(m.regs.get(Reg::R2), 40);
    assert_eq!(m.instret, 5);
}

#[test]
fn loop_and_branches() {
    let mut a = asm(PROM);
    a.li(Reg::R0, 0); // sum
    a.li(Reg::R1, 0); // i
    a.li(Reg::R2, 10);
    a.label("loop");
    a.add(Reg::R0, Reg::R0, Reg::R1);
    a.addi(Reg::R1, Reg::R1, 1);
    a.blt(Reg::R1, Reg::R2, "loop");
    a.halt();
    let mut m = machine(&[&a.assemble().unwrap()]);
    m.run(1000);
    assert_eq!(m.regs.get(Reg::R0), 45);
}

#[test]
fn memory_and_stack() {
    let mut a = asm(PROM);
    a.li(Reg::Sp, OS_STACK_TOP);
    a.li(Reg::R0, 0xdead_beef);
    a.push(Reg::R0);
    a.li(Reg::R0, 0);
    a.pop(Reg::R1);
    a.li(Reg::R2, SRAM + 0x40);
    a.sw(Reg::R2, 4, Reg::R1);
    a.lw(Reg::R3, Reg::R2, 4);
    a.lb(Reg::R4, Reg::R2, 7);
    a.halt();
    let mut m = machine(&[&a.assemble().unwrap()]);
    m.run(100);
    assert_eq!(m.regs.get(Reg::R1), 0xdead_beef);
    assert_eq!(m.regs.get(Reg::R3), 0xdead_beef);
    assert_eq!(m.regs.get(Reg::R4), 0xde, "byte load zero-extends");
    assert_eq!(m.regs.sp, OS_STACK_TOP);
}

#[test]
fn call_and_ret() {
    let mut a = asm(PROM);
    a.li(Reg::Sp, OS_STACK_TOP);
    a.li(Reg::R0, 1);
    a.call("double");
    a.call("double");
    a.halt();
    a.label("double");
    a.add(Reg::R0, Reg::R0, Reg::R0);
    a.ret();
    let mut m = machine(&[&a.assemble().unwrap()]);
    m.run(100);
    assert_eq!(m.regs.get(Reg::R0), 4);
    assert_eq!(m.regs.sp, OS_STACK_TOP, "stack balanced");
}

#[test]
fn callr_and_jr_absolute() {
    let mut a = asm(PROM);
    a.li(Reg::Sp, OS_STACK_TOP);
    a.la(Reg::R5, "target");
    a.callr(Reg::R5);
    a.halt();
    a.label("target");
    a.li(Reg::R0, 99);
    a.ret();
    let mut m = machine(&[&a.assemble().unwrap()]);
    m.run(100);
    assert_eq!(m.regs.get(Reg::R0), 99);
}

#[test]
fn unmapped_fetch_without_handler_double_faults() {
    let mut a = asm(PROM);
    a.li(Reg::R0, 0x9000_0000);
    a.jr(Reg::R0);
    let mut m = machine(&[&a.assemble().unwrap()]);
    // No IDT configured: the bus fault cannot be delivered.
    let exit = m.run(100);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::DoubleFault(_))),
        "{exit:?}"
    );
}

#[test]
fn regular_exception_entry_costs_21_cycles() {
    // Program triggers swi 0; the handler halts.
    let mut a = asm(PROM);
    a.li(Reg::Sp, OS_STACK_TOP);
    a.nop();
    a.swi(0);
    a.halt(); // not reached
    a.label("handler");
    a.halt();
    let img = a.assemble().unwrap();
    let handler = img.expect_symbol("handler");
    let mut m = machine(&[&img]);
    configure_os(&mut m, vectors::swi_vector(0), handler);
    m.run(100);
    assert_eq!(m.exc_log.len(), 1);
    let rec = m.exc_log[0];
    assert_eq!(rec.entry_cycles, costs::EXC_REGULAR_TOTAL);
    assert_eq!(rec.entry_cycles, 21, "paper section 5.4");
    assert_eq!(rec.trustlet, None);
}

#[test]
fn exception_frame_layout_and_iret() {
    // swi from "task" code outside the OS region; handler inspects the
    // frame then irets back.
    let mut a = asm(PROM);
    a.nop(); // keep the handler off address 0 (the unconfigured-IDT sentinel)
    a.label("handler");
    // Frame: [sp+0]=fault addr, +4=err code, +8=flags, +12=ip, +16=sp.
    a.lw(Reg::R4, Reg::Sp, 4); // err code = swi arg
    a.lw(Reg::R5, Reg::Sp, 12); // return ip
    a.iret();
    let img_os = a.assemble().unwrap();

    let mut t = asm(0x9000); // outside os_region (0..0x8000)
    t.li(Reg::Sp, TL_STACK_TOP);
    t.li(Reg::R0, 5);
    t.swi(7);
    t.addi(Reg::R0, Reg::R0, 1); // resumed here
    t.halt();
    let img_task = t.assemble().unwrap();

    let handler = img_os.expect_symbol("handler");
    let mut m = machine(&[&img_os, &img_task]);
    configure_os(&mut m, vectors::swi_vector(7), handler);
    // Start in the task.
    m.regs.ip = 0x9000;
    m.run(200);
    assert_eq!(m.halted, Some(HaltReason::Halt { ip: 0x9000 + 5 * 4 }));
    assert_eq!(m.regs.get(Reg::R4), 7, "handler saw the swi argument");
    assert_eq!(m.regs.get(Reg::R0), 6, "task resumed after swi");
    assert_eq!(m.regs.sp, TL_STACK_TOP, "task stack restored by iret");
}

#[test]
fn interrupts_masked_until_ei() {
    let mut a = asm(PROM);
    a.li(Reg::Sp, OS_STACK_TOP); // lui + ori
    a.di();
    a.li(Reg::R0, 1);
    a.li(Reg::R0, 2);
    a.ei();
    a.nop();
    a.halt();
    a.label("handler");
    a.li(Reg::R7, 0xaa);
    a.iret();
    let img = a.assemble().unwrap();
    let handler = img.expect_symbol("handler");
    let mut m = machine(&[&img]);
    configure_os(&mut m, vectors::irq_vector(0), handler);
    m.raise_irq(IrqRequest {
        line: 0,
        handler: None,
    });
    // Step li sp (2 words), di, li, li: no delivery while masked.
    for _ in 0..5 {
        assert_eq!(m.step(), StepOutcome::Retired);
    }
    assert!(m.irq_pending());
    // Step ei, then the next step delivers.
    assert_eq!(m.step(), StepOutcome::Retired);
    assert!(matches!(m.step(), StepOutcome::ExceptionTaken { .. }));
    m.run(100);
    assert_eq!(m.regs.get(Reg::R7), 0xaa);
}

#[test]
fn peripheral_vectored_interrupt_skips_idt() {
    let mut a = asm(PROM);
    a.li(Reg::Sp, OS_STACK_TOP);
    a.ei();
    a.label("spin");
    a.jmp("spin");
    a.label("isr");
    a.halt();
    let img = a.assemble().unwrap();
    let isr = img.expect_symbol("isr");
    let mut m = machine(&[&img]);
    configure_os(&mut m, 0, 0); // IDT entry 0 left unset on purpose
    m.raise_irq(IrqRequest {
        line: 3,
        handler: Some(isr),
    });
    let exit = m.run(100);
    assert_eq!(exit, RunExit::Halted(HaltReason::Halt { ip: isr }));
}

// --- Secure exception engine ---

/// Sets up a trustlet at TL_CODE with one TT row, an OS spin loop and a
/// handler that halts; returns the machine with secure exceptions on.
fn secure_setup(trustlet_body: impl FnOnce(&mut Asm)) -> Machine {
    // OS: enables interrupts, jumps into the trustlet.
    let mut os = asm(PROM);
    os.li(Reg::Sp, OS_STACK_TOP);
    os.ei();
    os.li(Reg::R6, TL_CODE);
    os.jr(Reg::R6);
    os.label("handler");
    os.halt();
    let os_img = os.assemble().unwrap();

    let mut t = asm(TL_CODE);
    trustlet_body(&mut t);
    let t_img = t.assemble().unwrap();

    let handler = os_img.expect_symbol("handler");
    let mut m = machine(&[&os_img, &t_img]);
    configure_os(&mut m, vectors::swi_vector(1), handler);
    m.sys
        .hw_write32(IDT + 4 * vectors::irq_vector(0) as u32, handler)
        .unwrap();
    m.hw.secure_exceptions = true;
    m.hw.tt_count = 1;
    ttable::write_row(
        &mut m.sys,
        TT_BASE,
        0,
        &TrustletRow {
            id: 0xA,
            code_start: TL_CODE,
            code_end: TL_CODE + 0x1000,
            saved_sp: TL_STACK_TOP,
        },
    )
    .unwrap();
    m
}

#[test]
fn secure_engine_charges_42_cycles_for_trustlet_interrupt() {
    let mut m = secure_setup(|t| {
        t.li(Reg::Sp, TL_STACK_TOP);
        t.li(Reg::R0, 0x5ec2e7);
        t.swi(1);
        t.halt();
    });
    m.run(200);
    let rec = m.exc_log.last().expect("exception recorded");
    assert_eq!(rec.trustlet, Some(0));
    assert_eq!(
        rec.entry_cycles,
        costs::EXC_REGULAR_TOTAL + costs::SEC_TRUSTLET_EXTRA,
        "21 + 21 cycles"
    );
    assert_eq!(rec.entry_cycles, 42);
}

#[test]
fn secure_engine_charges_2_extra_for_non_trustlet() {
    let mut m = secure_setup(|t| {
        t.halt();
    });
    // Interrupt while still in the OS (before the jump lands).
    // Use a swi directly from the OS region instead: craft a new OS image.
    let mut os = asm(PROM);
    os.li(Reg::Sp, OS_STACK_TOP);
    os.swi(1);
    os.halt();
    os.label("h2");
    os.halt();
    let os_img = os.assemble().unwrap();
    assert!(m.sys.bus.host_load(PROM, &os_img.bytes));
    m.sys
        .hw_write32(
            IDT + 4 * vectors::swi_vector(1) as u32,
            os_img.expect_symbol("h2"),
        )
        .unwrap();
    m.run(100);
    let rec = m.exc_log.last().expect("exception recorded");
    assert_eq!(rec.trustlet, None);
    assert_eq!(
        rec.entry_cycles,
        costs::EXC_REGULAR_TOTAL + costs::SEC_MISS_EXTRA
    );
    assert_eq!(rec.entry_cycles, 23);
}

#[test]
fn secure_engine_clears_registers_and_saves_state() {
    let mut m = secure_setup(|t| {
        t.li(Reg::Sp, TL_STACK_TOP);
        t.li(Reg::R0, 0x1111);
        t.li(Reg::R1, 0x2222);
        t.li(Reg::R7, 0x7777);
        t.swi(1); // interrupted here with secrets in registers
        t.halt();
    });
    m.run(300);
    assert!(
        matches!(m.halted, Some(HaltReason::Halt { .. })),
        "{:?}",
        m.halted
    );
    // The OS handler halted; at that point the GPRs must hold no secrets
    // (the frame pushes happen after clearing).
    for (i, &g) in m.regs.gprs.iter().enumerate() {
        assert_ne!(g, 0x1111, "r{i} leaked");
        assert_ne!(g, 0x2222, "r{i} leaked");
        assert_ne!(g, 0x7777, "r{i} leaked");
    }
    // The trustlet's saved SP was recorded in the Trustlet Table.
    let row = ttable::read_row(&mut m.sys, TT_BASE, 0).unwrap();
    assert_eq!(row.saved_sp, TL_STACK_TOP - 40, "10 words pushed");
    // The saved state sits on the trustlet stack: r7 deepest slot is at
    // saved_sp (pushed last), ret ip at saved_sp + 36.
    assert_eq!(m.sys.hw_read32(row.saved_sp).unwrap(), 0x7777);
    assert_eq!(m.sys.hw_read32(row.saved_sp + 28).unwrap(), 0x1111, "r0");
    // li sp = lui+ori (2 instrs), three movis, then swi at +20; the saved
    // return ip is the instruction after the swi.
    assert_eq!(
        m.sys.hw_read32(row.saved_sp + 36).unwrap(),
        TL_CODE + 24,
        "return ip"
    );
}

#[test]
fn secure_engine_sanitizes_reported_ip_and_sp() {
    let mut m = secure_setup(|t| {
        t.li(Reg::Sp, TL_STACK_TOP);
        t.nop();
        t.nop();
        t.swi(1);
        t.halt();
    });
    m.run(300);
    // Inspect the OS exception frame below OS_STACK_TOP:
    // [top-4]=pushed SP (sanitized 0), [top-8]=pushed IP (entry vector).
    let pushed_sp = m.sys.hw_read32(OS_STACK_TOP - 4).unwrap();
    let pushed_ip = m.sys.hw_read32(OS_STACK_TOP - 8).unwrap();
    assert_eq!(pushed_sp, 0, "trustlet SP hidden from the OS");
    assert_eq!(
        pushed_ip, TL_CODE,
        "faulting IP sanitized to the entry vector"
    );
}

#[test]
fn trustlet_resume_restores_state() {
    // The trustlet's entry contains a continue() stub: reload SP from the
    // Trustlet Table row, pop r7..r0, popf, ret (paper Section 4.1).
    let sp_slot = TrustletRow::saved_sp_addr(TT_BASE, 0);
    let mut m = secure_setup(move |t| {
        // Entry vector: continue().
        t.jmp("continue");
        t.label("main");
        t.li(Reg::Sp, TL_STACK_TOP);
        t.li(Reg::R0, 41);
        t.swi(1); // OS will resume us via the entry vector
        t.addi(Reg::R0, Reg::R0, 1);
        t.halt();
        t.label("continue");
        t.li(Reg::R1, sp_slot);
        t.lw(Reg::Sp, Reg::R1, 0);
        for r in [
            Reg::R7,
            Reg::R6,
            Reg::R5,
            Reg::R4,
            Reg::R3,
            Reg::R2,
            Reg::R1,
            Reg::R0,
        ] {
            t.pop(r);
        }
        t.popf();
        t.ret(); // pops the saved return ip
    });
    // OS handler: instead of halting, jump back to the trustlet entry.
    let mut os = asm(PROM);
    os.li(Reg::Sp, OS_STACK_TOP);
    os.ei();
    os.li(Reg::R6, TL_CODE + 4); // jump to "main", skipping the entry jump
    os.jr(Reg::R6);
    os.label("handler");
    os.li(Reg::R6, TL_CODE); // resume via entry vector = continue()
    os.jr(Reg::R6);
    let os_img = os.assemble().unwrap();
    assert!(m.sys.bus.host_load(PROM, &os_img.bytes));
    m.sys
        .hw_write32(
            IDT + 4 * vectors::swi_vector(1) as u32,
            os_img.expect_symbol("handler"),
        )
        .unwrap();
    let exit = m.run(500);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    assert_eq!(
        m.regs.get(Reg::R0),
        42,
        "trustlet resumed with its state intact"
    );
}

#[test]
fn engine_save_to_bad_trustlet_stack_double_faults() {
    let mut m = secure_setup(|t| {
        t.li(Reg::Sp, 0x9000_0000); // unmapped stack
        t.swi(1);
        t.halt();
    });
    let exit = m.run(200);
    match exit {
        RunExit::Halted(HaltReason::DoubleFault(Fault::Bus { err, .. })) => {
            assert!(matches!(err, BusError::Unmapped { .. }));
        }
        other => panic!("expected double fault, got {other:?}"),
    }
}

#[test]
fn nested_interrupt_inside_handler_uses_current_stack() {
    // Handler (in OS region) triggers swi 2 while handling swi 1; the
    // nested frame must land on the current (OS) stack without reloading
    // the OS SP cell, and both irets unwind correctly.
    let mut os = asm(PROM);
    os.li(Reg::Sp, OS_STACK_TOP);
    os.swi(1);
    os.li(Reg::R0, 0xfe);
    os.halt();
    os.label("h1");
    os.swi(2);
    os.addi(Reg::R1, Reg::R1, 1);
    os.iret();
    os.label("h2");
    os.addi(Reg::R2, Reg::R2, 1);
    os.iret();
    let img = os.assemble().unwrap();
    let mut m = machine(&[&img]);
    configure_os(&mut m, vectors::swi_vector(1), img.expect_symbol("h1"));
    m.sys
        .hw_write32(
            IDT + 4 * vectors::swi_vector(2) as u32,
            img.expect_symbol("h2"),
        )
        .unwrap();
    let exit = m.run(300);
    assert!(
        matches!(exit, RunExit::Halted(HaltReason::Halt { .. })),
        "{exit:?}"
    );
    assert_eq!(m.regs.get(Reg::R0), 0xfe);
    assert_eq!(m.regs.get(Reg::R1), 1);
    assert_eq!(m.regs.get(Reg::R2), 1);
    assert_eq!(m.regs.sp, OS_STACK_TOP, "both frames unwound");
    assert_eq!(m.exc_log.len(), 2);
}

#[test]
fn trace_records_retired_instructions() {
    let mut a = asm(PROM);
    a.li(Reg::R0, 1);
    a.halt();
    let mut m = machine(&[&a.assemble().unwrap()]);
    m.set_trace(true);
    m.run(10);
    let trace = m.trace();
    assert_eq!(trace.len(), 2);
    assert_eq!(trace[0].1, PROM);
}

#[test]
fn swi_charges_a_cycle_even_when_it_double_faults() {
    // Regression (found by fuzzing): a swi with no IDT configured used to
    // retire with instret incremented but zero cycles charged.
    let mut a = asm(PROM);
    a.swi(0);
    let mut m = machine(&[&a.assemble().unwrap()]);
    m.run(10);
    assert!(matches!(m.halted, Some(HaltReason::DoubleFault(_))));
    assert_eq!(m.instret, 1);
    assert!(m.cycles >= m.instret);
}

#[test]
fn cycle_costs_accumulate() {
    let mut a = asm(PROM);
    a.nop(); // 1
    a.li(Reg::R1, SRAM); // 1 (movi? no: lui only = 1)
    a.lw(Reg::R0, Reg::R1, 0); // 2
    a.mul(Reg::R0, Reg::R0, Reg::R0); // 3
    a.jmp("end"); // 2
    a.nop();
    a.label("end");
    a.halt(); // 1
    let mut m = machine(&[&a.assemble().unwrap()]);
    m.run(10);
    assert_eq!(m.cycles, 1 + 1 + 2 + 3 + 2 + 1);
    assert_eq!(m.instret, 6);
}

#[test]
fn halfword_and_signed_loads() {
    let mut a = asm(PROM);
    a.li(Reg::R1, SRAM + 0x40);
    a.li(Reg::R0, 0x8001_80ff);
    a.sw(Reg::R1, 0, Reg::R0);
    a.lb(Reg::R2, Reg::R1, 0); // 0xff zero-extended
    a.lbs(Reg::R3, Reg::R1, 0); // 0xff sign-extended
    a.lh(Reg::R4, Reg::R1, 0); // 0x80ff zero-extended
    a.lhs(Reg::R5, Reg::R1, 2); // 0x8001 sign-extended
    a.li(Reg::R6, 0xabcd);
    a.sh(Reg::R1, 4, Reg::R6);
    a.lh(Reg::R7, Reg::R1, 4);
    a.halt();
    let mut m = machine(&[&a.assemble().unwrap()]);
    m.run(100);
    assert_eq!(m.regs.get(Reg::R2), 0xff);
    assert_eq!(m.regs.get(Reg::R3), 0xffff_ffff);
    assert_eq!(m.regs.get(Reg::R4), 0x80ff);
    assert_eq!(m.regs.get(Reg::R5), 0xffff_8001);
    assert_eq!(m.regs.get(Reg::R7), 0xabcd);
}

#[test]
fn misaligned_halfword_faults() {
    let mut a = asm(PROM);
    a.li(Reg::R1, SRAM + 0x41);
    a.lh(Reg::R0, Reg::R1, 0); // odd address
    a.halt();
    let mut m = machine(&[&a.assemble().unwrap()]);
    let exit = m.run(100);
    assert!(
        matches!(
            exit,
            RunExit::Halted(HaltReason::DoubleFault(Fault::Bus { .. }))
        ),
        "{exit:?}"
    );
}

#[test]
fn division_semantics() {
    let mut a = asm(PROM);
    a.li(Reg::R1, 100);
    a.li(Reg::R2, 7);
    a.divu(Reg::R3, Reg::R1, Reg::R2); // 14
    a.remu(Reg::R4, Reg::R1, Reg::R2); // 2
    a.li(Reg::R2, 0);
    a.divu(Reg::R5, Reg::R1, Reg::R2); // div by zero -> all ones
    a.remu(Reg::R6, Reg::R1, Reg::R2); // rem by zero -> dividend
    a.halt();
    let mut m = machine(&[&a.assemble().unwrap()]);
    m.run(100);
    assert_eq!(m.regs.get(Reg::R3), 14);
    assert_eq!(m.regs.get(Reg::R4), 2);
    assert_eq!(m.regs.get(Reg::R5), u32::MAX);
    assert_eq!(m.regs.get(Reg::R6), 100);
    // Division pays the iterative-divider cost.
    assert!(m.cycles > m.instret + 2 * trustlite_cpu::costs::DIV_EXTRA);
}
