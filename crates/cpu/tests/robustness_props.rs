//! Robustness properties: the simulator must never panic, whatever
//! garbage executes — arbitrary PROM contents, arbitrary register states,
//! arbitrary hardware configuration. Every outcome must be a clean halt,
//! fault delivery, double fault or step-limit.

use proptest::prelude::*;
use trustlite_cpu::{HwConfig, Machine, SystemBus};
use trustlite_mem::{Bus, Ram, Rom};
use trustlite_mpu::{EaMpu, Perms, RuleSlot, Subject};

fn machine_with_prom(words: &[u32], enforce: bool) -> Machine {
    let mut bus = Bus::new();
    bus.map(0, Box::new(Rom::new(0x1000))).expect("maps");
    bus.map(0x1000_0000, Box::new(Ram::new("sram", 0x1000)))
        .expect("maps");
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    bus.host_load(0, &bytes);
    let mut mpu = EaMpu::new(4);
    mpu.set_rule(
        0,
        RuleSlot {
            start: 0,
            end: 0x1000,
            perms: Perms::RX,
            subject: Subject::Any,
            enabled: true,
            locked: false,
        },
    )
    .expect("fits");
    mpu.set_rule(
        1,
        RuleSlot {
            start: 0x1000_0000,
            end: 0x1000_1000,
            perms: Perms::RW,
            subject: Subject::Any,
            enabled: true,
            locked: false,
        },
    )
    .expect("fits");
    let mut sys = SystemBus::new(bus, mpu, None);
    sys.enforce = enforce;
    Machine::new(sys, 0)
}

proptest! {
    /// Arbitrary PROM contents execute without panicking (MPU enforcing).
    #[test]
    fn arbitrary_code_never_panics(words in proptest::collection::vec(any::<u32>(), 1..256)) {
        let mut m = machine_with_prom(&words, true);
        let _ = m.run(2_000);
    }

    /// Same without enforcement (wild loads/stores roam the whole map).
    #[test]
    fn arbitrary_code_never_panics_unenforced(
        words in proptest::collection::vec(any::<u32>(), 1..256)
    ) {
        let mut m = machine_with_prom(&words, false);
        let _ = m.run(2_000);
    }

    /// Arbitrary register/hardware state at arbitrary entry points.
    #[test]
    fn arbitrary_machine_state_never_panics(
        words in proptest::collection::vec(any::<u32>(), 1..64),
        gprs in any::<[u32; 8]>(),
        sp in any::<u32>(),
        ip in any::<u32>(),
        secure in any::<bool>(),
        tt_base in any::<u32>(),
        tt_count in 0u32..8,
        idt_base in any::<u32>(),
    ) {
        let mut m = machine_with_prom(&words, true);
        m.regs.gprs = gprs;
        m.regs.sp = sp;
        m.regs.ip = ip;
        m.prev_ip = ip;
        m.hw = HwConfig {
            secure_exceptions: secure,
            idt_base,
            os_sp_cell: idt_base.wrapping_add(0x80),
            os_region: (0, 0x800),
            tt_base,
            tt_count,
        };
        let _ = m.run(2_000);
    }

    /// The machine's observable counters are consistent after any run:
    /// cycles never decrease below instret (every instruction costs at
    /// least one cycle).
    #[test]
    fn cycle_accounting_is_sane(words in proptest::collection::vec(any::<u32>(), 1..128)) {
        let mut m = machine_with_prom(&words, true);
        let _ = m.run(2_000);
        prop_assert!(m.cycles >= m.instret, "cycles {} < instret {}", m.cycles, m.instret);
    }
}
