//! Differential property test for the `Arc`-shared code caches: random
//! instruction soups run through a fork-then-patch scenario — warm the
//! caches, snapshot, patch parent and child *differently*, run both out
//! — once on the default shared (clone-on-write chunk) tables and once
//! on the private (deep-copied) reference tables, at every capture
//! level. The two modes must agree on registers, cycle/instret
//! counters, a memory digest, event counts, cycle attribution *and* the
//! cache hit/miss/flush counters on both sides of the fork: sharing is
//! a host-side artifact that must never be architecturally visible.

use proptest::prelude::*;
use trustlite_cpu::{Machine, SystemBus};
use trustlite_isa::instr::{AluOp, Cond};
use trustlite_isa::{encode, Instr, Reg};
use trustlite_mem::{Bus, Ram};
use trustlite_mpu::{EaMpu, Perms, RuleSlot, Subject};
use trustlite_obs::ObsLevel;

const CODE: u32 = 0x1000_0000;
const DATA: u32 = 0x1001_0000;
const STEPS: u64 = 300;

#[derive(Debug, Clone, Copy)]
enum Op {
    Alu(AluOp, Reg, Reg, Reg),
    Addi(Reg, Reg, i16),
    Movi(Reg, i16),
    Lw(Reg, u16),
    Sw(Reg, u16),
    Push(Reg),
    Pop(Reg),
    SkipIf(Cond, Reg, Reg, u8),
    LoopIf(Cond, Reg, Reg, u8),
}

/// Destination registers exclude R6 so the memory base stays pinned.
fn dst() -> impl Strategy<Value = Reg> {
    (0u32..6).prop_map(|c| Reg::from_code(c).expect("gpr"))
}

fn src() -> impl Strategy<Value = Reg> {
    (0u32..8).prop_map(|c| Reg::from_code(c).expect("gpr"))
}

fn cond() -> impl Strategy<Value = Cond> {
    (0usize..Cond::ALL.len()).prop_map(|c| Cond::ALL[c])
}

fn any_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0usize..AluOp::ALL.len()), dst(), src(), src()).prop_map(|(a, rd, rs1, rs2)| Op::Alu(
            AluOp::ALL[a],
            rd,
            rs1,
            rs2
        )),
        (dst(), src(), any::<i16>()).prop_map(|(rd, rs1, v)| Op::Addi(rd, rs1, v)),
        (dst(), any::<i16>()).prop_map(|(rd, v)| Op::Movi(rd, v)),
        (dst(), 0u16..0x100).prop_map(|(rd, w)| Op::Lw(rd, w * 4)),
        (src(), 0u16..0x100).prop_map(|(rs, w)| Op::Sw(rs, w * 4)),
        src().prop_map(Op::Push),
        dst().prop_map(Op::Pop),
        (cond(), src(), src(), 1u8..4).prop_map(|(c, a, b, n)| Op::SkipIf(c, a, b, n)),
        (cond(), src(), src(), 1u8..12).prop_map(|(c, a, b, n)| Op::LoopIf(c, a, b, n)),
    ]
}

/// Encodes the soup; branch offsets are clamped to stay inside it.
fn encode_soup(ops: &[Op]) -> Vec<u8> {
    let mut words = Vec::new();
    for (i, &op) in ops.iter().enumerate() {
        let instr = match op {
            Op::Alu(a, rd, rs1, rs2) => Instr::Alu {
                op: a,
                rd,
                rs1,
                rs2,
            },
            Op::Addi(rd, rs1, imm) => Instr::Addi { rd, rs1, imm },
            Op::Movi(rd, imm) => Instr::Movi { rd, imm },
            Op::Lw(rd, off) => Instr::Lw {
                rd,
                rs1: Reg::R6,
                disp: off as i16,
            },
            Op::Sw(rs, off) => Instr::Sw {
                rs1: Reg::R6,
                rs2: rs,
                disp: off as i16,
            },
            Op::Push(rs) => Instr::Push { rs },
            Op::Pop(rd) => Instr::Pop { rd },
            Op::SkipIf(c, rs1, rs2, n) => {
                let n = (n as usize).min(ops.len() - i) as i16;
                Instr::Branch {
                    cond: c,
                    rs1,
                    rs2,
                    off: 4 * n,
                }
            }
            Op::LoopIf(c, rs1, rs2, n) => {
                let n = (n as usize).min(i + 1) as i16;
                Instr::Branch {
                    cond: c,
                    rs1,
                    rs2,
                    off: -4 * n,
                }
            }
        };
        words.extend_from_slice(&encode(instr).to_le_bytes());
    }
    // Pad the skip landing zone, then stop.
    for _ in 0..4 {
        words.extend_from_slice(&encode(Instr::Nop).to_le_bytes());
    }
    words.extend_from_slice(&encode(Instr::Halt).to_le_bytes());
    words
}

#[derive(Debug, PartialEq)]
struct Observed {
    gprs: [u32; 8],
    sp: u32,
    ip: u32,
    cycles: u64,
    instret: u64,
    mem: Vec<u8>,
    events: u64,
    attribution: Vec<(String, u64)>,
    predecode: trustlite_cpu::PredecodeStats,
    blocks: trustlite_cpu::BlockStats,
}

fn observe(m: &mut Machine) -> Observed {
    let mem = m.sys.bus.read_bytes(CODE, 0x2_0000).expect("ram readable");
    Observed {
        gprs: m.regs.gprs,
        sp: m.regs.sp,
        ip: m.regs.ip,
        cycles: m.cycles,
        instret: m.instret,
        mem,
        events: m.sys.obs.ring.len() as u64 + m.sys.obs.ring.dropped(),
        attribution: m.sys.obs.attr.report(),
        predecode: m.sys.predecode_stats(),
        blocks: m.sys.block_stats(),
    }
}

/// Warm → fork → patch parent and child differently → run both out.
/// Returns the parent's and the child's observations.
fn run_fork_scenario(
    image: &[u8],
    init: [u32; 8],
    level: ObsLevel,
    private: bool,
    patch_sel: usize,
    n_ops: usize,
) -> (Observed, Observed) {
    let mut bus = Bus::new();
    bus.map(CODE, Box::new(Ram::new("sram", 0x2_0000))).unwrap();
    assert!(bus.host_load(CODE, image));
    let mut mpu = EaMpu::new(8);
    mpu.set_rule(
        0,
        RuleSlot {
            start: CODE,
            end: CODE + 0x1000,
            perms: Perms::RX,
            subject: Subject::Region(0),
            enabled: true,
            locked: false,
        },
    )
    .unwrap();
    mpu.set_rule(
        1,
        RuleSlot {
            start: DATA,
            end: DATA + 0x1000,
            perms: Perms::RW,
            subject: Subject::Region(0),
            enabled: true,
            locked: false,
        },
    )
    .unwrap();
    let mut sys = SystemBus::new(bus, mpu, None);
    sys.enforce = false;
    sys.obs.set_level(level);
    sys.obs.attr.register("head", &[(CODE, CODE + 0x20)]);
    sys.obs
        .attr
        .register("tail", &[(CODE + 0x20, CODE + 0x1000)]);
    sys.set_fast_path(true);
    sys.set_superblocks(true);
    sys.set_private_code_caches(private);
    let mut parent = Machine::new(sys, CODE);
    parent.regs.gprs = init;
    parent.regs.set(Reg::R6, DATA);
    parent.regs.set(Reg::Sp, DATA + 0x800);

    // Warm the caches, then fork.
    let _ = parent.run(STEPS / 2);
    let mut child = parent.snapshot().expect("machine snapshots");

    // Divergent SMC: parent and child each patch a *different* word of
    // the shared warm image, exercising clone-on-first-write on whoever
    // holds a shared chunk (private mode already deep-copied).
    let w1 = (patch_sel % n_ops) as u32;
    let w2 = ((patch_sel + 1) % n_ops) as u32;
    parent
        .sys
        .hw_write32(
            CODE + 4 * w1,
            encode(Instr::Movi {
                rd: Reg::R2,
                imm: 0x11,
            }),
        )
        .unwrap();
    child
        .sys
        .hw_write32(
            CODE + 4 * w2,
            encode(Instr::Movi {
                rd: Reg::R3,
                imm: 0x22,
            }),
        )
        .unwrap();
    let _ = parent.run(STEPS / 2);
    let _ = child.run(STEPS / 2);
    (observe(&mut parent), observe(&mut child))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn shared_and_private_code_caches_are_indistinguishable(
        init in any::<[u32; 8]>(),
        ops in proptest::collection::vec(any_op(), 1..60),
        patch_sel in 0usize..1000,
    ) {
        let image = encode_soup(&ops);
        for level in [ObsLevel::Off, ObsLevel::Metrics, ObsLevel::Events, ObsLevel::Full] {
            let (sp, sc) = run_fork_scenario(&image, init, level, false, patch_sel, ops.len());
            let (pp, pc) = run_fork_scenario(&image, init, level, true, patch_sel, ops.len());
            prop_assert_eq!(&sp, &pp, "{:?}: parent diverged shared-vs-private", level);
            prop_assert_eq!(&sc, &pc, "{:?}: child diverged shared-vs-private", level);
        }
    }
}
