//! Differential property test for the superblock trace engine: random
//! instruction soups — ALU ops, loads, stores, stack traffic, forward
//! skips and backward loops — run to the same step budget on the
//! interpreted path and the superblock path, at every capture level,
//! with MPU enforcement both off and on. The two paths must agree on
//! registers, cycle/instret counters, a memory digest, the recorded
//! event count and the per-domain cycle attribution: the block engine
//! has to be observably pure even on adversarial code shapes.

use proptest::prelude::*;
use trustlite_cpu::{Machine, SystemBus};
use trustlite_isa::instr::{AluOp, Cond};
use trustlite_isa::{encode, Instr, Reg};
use trustlite_mem::{Bus, Ram};
use trustlite_mpu::{EaMpu, Perms, RuleSlot, Subject};
use trustlite_obs::ObsLevel;

const CODE: u32 = 0x1000_0000;
const DATA: u32 = 0x1001_0000;
const STEPS: u64 = 400;

#[derive(Debug, Clone, Copy)]
enum Op {
    Alu(AluOp, Reg, Reg, Reg),
    Addi(Reg, Reg, i16),
    Movi(Reg, i16),
    Shli(Reg, Reg, u8),
    Xori(Reg, Reg, u16),
    /// Load/store through R6, which is pinned to the data window.
    Lw(Reg, u16),
    Sw(Reg, u16),
    Push(Reg),
    Pop(Reg),
    /// Forward skip over `n` following instructions.
    SkipIf(Cond, Reg, Reg, u8),
    /// Backward branch `n` instructions — a loop seed, bounded by the
    /// step budget.
    LoopIf(Cond, Reg, Reg, u8),
}

/// Destination registers exclude R6 so the memory base stays pinned.
fn dst() -> impl Strategy<Value = Reg> {
    (0u32..6).prop_map(|c| Reg::from_code(c).expect("gpr"))
}

fn src() -> impl Strategy<Value = Reg> {
    (0u32..8).prop_map(|c| Reg::from_code(c).expect("gpr"))
}

fn cond() -> impl Strategy<Value = Cond> {
    (0usize..Cond::ALL.len()).prop_map(|c| Cond::ALL[c])
}

fn any_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0usize..AluOp::ALL.len()), dst(), src(), src()).prop_map(|(a, rd, rs1, rs2)| Op::Alu(
            AluOp::ALL[a],
            rd,
            rs1,
            rs2
        )),
        (dst(), src(), any::<i16>()).prop_map(|(rd, rs1, v)| Op::Addi(rd, rs1, v)),
        (dst(), any::<i16>()).prop_map(|(rd, v)| Op::Movi(rd, v)),
        (dst(), src(), 0u8..32).prop_map(|(rd, rs1, v)| Op::Shli(rd, rs1, v)),
        (dst(), src(), any::<u16>()).prop_map(|(rd, rs1, v)| Op::Xori(rd, rs1, v)),
        (dst(), 0u16..0x100).prop_map(|(rd, w)| Op::Lw(rd, w * 4)),
        (src(), 0u16..0x100).prop_map(|(rs, w)| Op::Sw(rs, w * 4)),
        src().prop_map(Op::Push),
        dst().prop_map(Op::Pop),
        (cond(), src(), src(), 1u8..4).prop_map(|(c, a, b, n)| Op::SkipIf(c, a, b, n)),
        (cond(), src(), src(), 1u8..12).prop_map(|(c, a, b, n)| Op::LoopIf(c, a, b, n)),
    ]
}

/// Encodes the soup; branch offsets are clamped to stay inside it.
fn encode_soup(ops: &[Op]) -> Vec<u8> {
    let mut words = Vec::new();
    for (i, &op) in ops.iter().enumerate() {
        let instr = match op {
            Op::Alu(a, rd, rs1, rs2) => Instr::Alu {
                op: a,
                rd,
                rs1,
                rs2,
            },
            Op::Addi(rd, rs1, imm) => Instr::Addi { rd, rs1, imm },
            Op::Movi(rd, imm) => Instr::Movi { rd, imm },
            Op::Shli(rd, rs1, imm) => Instr::Shli { rd, rs1, imm },
            Op::Xori(rd, rs1, imm) => Instr::Xori { rd, rs1, imm },
            Op::Lw(rd, off) => Instr::Lw {
                rd,
                rs1: Reg::R6,
                disp: off as i16,
            },
            Op::Sw(rs, off) => Instr::Sw {
                rs1: Reg::R6,
                rs2: rs,
                disp: off as i16,
            },
            Op::Push(rs) => Instr::Push { rs },
            Op::Pop(rd) => Instr::Pop { rd },
            Op::SkipIf(c, rs1, rs2, n) => {
                let n = (n as usize).min(ops.len() - i) as i16;
                Instr::Branch {
                    cond: c,
                    rs1,
                    rs2,
                    off: 4 * n,
                }
            }
            Op::LoopIf(c, rs1, rs2, n) => {
                let n = (n as usize).min(i + 1) as i16;
                Instr::Branch {
                    cond: c,
                    rs1,
                    rs2,
                    off: -4 * n,
                }
            }
        };
        words.extend_from_slice(&encode(instr).to_le_bytes());
    }
    // Pad the skip landing zone, then stop.
    for _ in 0..4 {
        words.extend_from_slice(&encode(Instr::Nop).to_le_bytes());
    }
    words.extend_from_slice(&encode(Instr::Halt).to_le_bytes());
    words
}

struct Observed {
    gprs: [u32; 8],
    sp: u32,
    ip: u32,
    cycles: u64,
    instret: u64,
    mem: Vec<u8>,
    events: u64,
    attribution: Vec<(String, u64)>,
}

fn run_soup(
    image: &[u8],
    init: [u32; 8],
    level: ObsLevel,
    enforce: bool,
    blocks: bool,
) -> Observed {
    let mut bus = Bus::new();
    bus.map(CODE, Box::new(Ram::new("sram", 0x2_0000))).unwrap();
    assert!(bus.host_load(CODE, image));
    let mut mpu = EaMpu::new(8);
    // Code may execute and read itself; its data window is RW.
    mpu.set_rule(
        0,
        RuleSlot {
            start: CODE,
            end: CODE + 0x1000,
            perms: Perms::RX,
            subject: Subject::Region(0),
            enabled: true,
            locked: false,
        },
    )
    .unwrap();
    mpu.set_rule(
        1,
        RuleSlot {
            start: DATA,
            end: DATA + 0x1000,
            perms: Perms::RW,
            subject: Subject::Region(0),
            enabled: true,
            locked: false,
        },
    )
    .unwrap();
    let mut sys = SystemBus::new(bus, mpu, None);
    sys.enforce = enforce;
    sys.obs.set_level(level);
    // Two code domains so soups that branch across the split exercise
    // attribution's context-switch edges on both paths.
    sys.obs.attr.register("head", &[(CODE, CODE + 0x20)]);
    sys.obs
        .attr
        .register("tail", &[(CODE + 0x20, CODE + 0x1000)]);
    sys.set_fast_path(blocks);
    sys.set_superblocks(blocks);
    let mut m = Machine::new(sys, CODE);
    m.regs.gprs = init;
    m.regs.set(Reg::R6, DATA); // memory base
    m.regs.set(Reg::Sp, DATA + 0x800);
    let _ = m.run(STEPS);
    let mem = m.sys.bus.read_bytes(CODE, 0x2_0000).expect("ram readable");
    Observed {
        gprs: m.regs.gprs,
        sp: m.regs.sp,
        ip: m.regs.ip,
        cycles: m.cycles,
        instret: m.instret,
        mem,
        events: m.sys.obs.ring.len() as u64 + m.sys.obs.ring.dropped(),
        attribution: m.sys.obs.attr.report(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn superblock_path_is_observably_pure(
        init in any::<[u32; 8]>(),
        ops in proptest::collection::vec(any_op(), 1..80),
        enforce in any::<bool>(),
    ) {
        let image = encode_soup(&ops);
        for level in [ObsLevel::Off, ObsLevel::Metrics, ObsLevel::Events, ObsLevel::Full] {
            let slow = run_soup(&image, init, level, enforce, false);
            let block = run_soup(&image, init, level, enforce, true);
            prop_assert_eq!(block.gprs, slow.gprs, "{:?}/{}: gprs", level, enforce);
            prop_assert_eq!(block.sp, slow.sp, "{:?}/{}: sp", level, enforce);
            prop_assert_eq!(block.ip, slow.ip, "{:?}/{}: ip", level, enforce);
            prop_assert_eq!(
                (block.cycles, block.instret),
                (slow.cycles, slow.instret),
                "{:?}/{}: counters", level, enforce
            );
            prop_assert!(block.mem == slow.mem, "{:?}/{}: memory diverged", level, enforce);
            prop_assert_eq!(block.events, slow.events, "{:?}/{}: event count", level, enforce);
            prop_assert_eq!(
                block.attribution, slow.attribution,
                "{:?}/{}: cycle attribution", level, enforce
            );
        }
    }
}
