//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! Used as the integrity guard on the retained-memory update blocks and
//! the staged firmware images: a CRC is the right tool there — it
//! detects accidental corruption (bit flips in the staged image, torn
//! writes across a crash) cheaply; authenticity is established
//! separately by the Secure Loader's measurement and the attestation
//! commit gate. Bitwise implementation, no tables, no external crates.

/// One-shot CRC-32 over `data` (init `0xFFFF_FFFF`, final XOR-out).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finish()
}

/// Incremental CRC-32.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh computation.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `data` into the running CRC.
    pub fn update(&mut self, data: &[u8]) {
        for &byte in data {
            self.state ^= byte as u32;
            for _ in 0..8 {
                let mask = (self.state & 1).wrapping_neg();
                self.state = (self.state >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }

    /// Finishes and returns the CRC value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"retained boot log guard";
        let mut inc = Crc32::new();
        inc.update(&data[..7]);
        inc.update(&data[7..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"staged image words".to_vec();
        let good = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), good, "missed flip at {byte}:{bit}");
            }
        }
    }
}
