//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Incremental HMAC-SHA-256 context.
///
/// # Examples
///
/// ```
/// use trustlite_crypto::{hmac_sha256, Hmac};
///
/// let mut mac = Hmac::new(b"key");
/// mac.update(b"mess");
/// mac.update(b"age");
/// assert_eq!(mac.finish(), hmac_sha256(b"key", b"message"));
/// ```
#[derive(Debug, Clone)]
pub struct Hmac {
    inner: Sha256,
    opad_key: [u8; BLOCK],
}

impl Hmac {
    /// Creates a MAC context keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            let digest = crate::sha256::sha256(key);
            k[..32].copy_from_slice(&digest);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        Hmac {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finalizes and returns the 32-byte tag.
    pub fn finish(self) -> [u8; 32] {
        let inner_digest = self.inner.finish();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finish()
    }

    /// Verifies a tag in constant time.
    pub fn verify(self, tag: &[u8]) -> bool {
        crate::ct_eq(&self.finish(), tag)
    }
}

/// One-shot HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut mac = Hmac::new(key);
    mac.update(data);
    mac.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    // RFC 4231 test vectors.

    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        let mut mac = Hmac::new(b"k");
        mac.update(b"m");
        assert!(mac.verify(&tag));

        let mut bad = tag;
        bad[0] ^= 1;
        let mut mac = Hmac::new(b"k");
        mac.update(b"m");
        assert!(!mac.verify(&bad));

        let mac = Hmac::new(b"k");
        assert!(!mac.verify(&tag[..31]));
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
