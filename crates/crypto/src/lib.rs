//! Cryptographic primitives for the TrustLite reproduction.
//!
//! The TrustLite paper assumes "any deployed cryptographic mechanisms are
//! secure" (Section 2.2) and optionally instantiates a hardware hash engine
//! (it cites Spongent as an example accelerator that fits in the base-cost
//! margin). This crate provides the software implementations backing the
//! simulated crypto accelerator peripheral and the host-side attestation
//! logic:
//!
//! * [`sha256`](mod@sha256) — FIPS 180-4 SHA-256 (one-shot and
//!   incremental),
//! * [`sponge`] — a Spongent-*style* lightweight sponge hash (an ARX
//!   permutation, not the published SPONGENT; see the module docs),
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104),
//! * [`rng`] — a deterministic, seedable xorshift generator for nonces in a
//!   reproducible simulation,
//! * [`crc`] — CRC-32 (IEEE) integrity guard for retained-memory blocks
//!   and staged firmware images (corruption detection, not authenticity),
//! * [`ct_eq`] — constant-time comparison for MAC verification.
//!
//! Everything is implemented from scratch; no external crates.

pub mod crc;
pub mod hmac;
pub mod rng;
pub mod sha256;
pub mod sponge;

pub use crc::{crc32, Crc32};
pub use hmac::{hmac_sha256, Hmac};
pub use rng::XorShift64;
pub use sha256::{sha256, Sha256};
pub use sponge::{sponge_hash, Sponge};

/// Compares two byte slices in constant time (with respect to content).
///
/// Returns false for length mismatches without inspecting contents.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
