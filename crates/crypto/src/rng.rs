//! Deterministic random number generation for reproducible simulations.

/// A seedable xorshift64* generator.
///
/// Used for nonce generation in the simulated platform. Determinism is a
/// feature here: the whole simulation — including the trusted-IPC
/// handshakes — replays bit-identically for a given seed, which the test
/// suite and benches rely on. It is *not* a cryptographically secure RNG;
/// the paper's adversary model assumes sound cryptographic mechanisms, and
/// the protocol logic is what is under test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a nonzero seed (zero is mapped to a fixed
    /// odd constant, as the all-zero state is a fixed point of xorshift).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Returns the next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice.
    pub fn fill(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Returns a value uniformly distributed in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u32::MAX - (u32::MAX % bound);
        loop {
            let v = self.next_u32();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_replay() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seed_sensitivity() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_does_not_stick() {
        let mut r = XorShift64::new(0);
        let v1 = r.next_u64();
        let v2 = r.next_u64();
        assert_ne!(v1, 0);
        assert_ne!(v1, v2);
    }

    #[test]
    fn no_short_cycles() {
        let mut r = XorShift64::new(7);
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(r.next_u64()), "cycle detected");
        }
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut r = XorShift64::new(3);
        let mut hits = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            hits[v as usize] = true;
        }
        assert!(hits.iter().all(|&h| h), "not all residues hit: {hits:?}");
    }

    #[test]
    fn fill_partial_chunks() {
        let mut r = XorShift64::new(9);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
