//! A lightweight sponge-construction hash.
//!
//! The TrustLite paper points at SPONGENT as a representative low-area
//! hardware hash (22 Spartan-6 slices) that the base-cost margin of the
//! EA-MPU can absorb. This module implements a Spongent-*style* sponge —
//! the same construction (absorb/permute/squeeze over a small state with a
//! small rate) but with a simple ARX permutation instead of SPONGENT's
//! bit-sliced S-box/LFSR round, which keeps the implementation compact and
//! auditable. It is used where the paper would use the hardware hash: as
//! the measurement function of the simulated crypto accelerator.
//!
//! The construction: 256-bit state (eight 32-bit words), 64-bit rate,
//! 192-bit capacity, 12-round ARX permutation per absorb/squeeze step,
//! 10*1 padding, 256-bit output.

/// Number of permutation rounds applied per absorbed/squeezed block.
const ROUNDS: usize = 12;

/// Rate in bytes (two 32-bit words are exposed to input/output).
const RATE: usize = 8;

/// Round constants derived from the SHA-256 constant table (reused as
/// nothing-up-my-sleeve numbers).
const RC: [u32; ROUNDS] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
];

fn permute(s: &mut [u32; 8]) {
    for (r, &rc) in RC.iter().enumerate() {
        s[0] = s[0].wrapping_add(rc).wrapping_add(r as u32);
        // One double-round of an ARX mix across the eight words.
        for i in 0..8 {
            let a = s[i];
            let b = s[(i + 1) % 8];
            let c = s[(i + 5) % 8];
            s[i] = a.wrapping_add(b).rotate_left(7) ^ c;
        }
        for i in (0..8).rev() {
            let a = s[i];
            let b = s[(i + 3) % 8];
            s[i] = a.rotate_left(13).wrapping_add(b ^ 0x9e37_79b9);
        }
    }
}

/// Incremental sponge-hash context.
///
/// # Examples
///
/// ```
/// use trustlite_crypto::{sponge_hash, Sponge};
///
/// let mut ctx = Sponge::new();
/// ctx.update(b"measure");
/// ctx.update(b"ment");
/// assert_eq!(ctx.finish(), sponge_hash(b"measurement"));
/// ```
#[derive(Debug, Clone)]
pub struct Sponge {
    state: [u32; 8],
    buf: [u8; RATE],
    buf_len: usize,
}

impl Default for Sponge {
    fn default() -> Self {
        Self::new()
    }
}

impl Sponge {
    /// Creates a fresh context with a domain-separated initial state.
    pub fn new() -> Self {
        // "TLsponge" in ASCII, repeated with index, as the IV.
        let mut state = [0u32; 8];
        for (i, w) in state.iter_mut().enumerate() {
            *w = u32::from_le_bytes(*b"TLsp") ^ ((i as u32) << 24) ^ u32::from_le_bytes(*b"onge");
        }
        permute(&mut state);
        Sponge {
            state,
            buf: [0; RATE],
            buf_len: 0,
        }
    }

    fn absorb_block(&mut self) {
        self.state[0] ^= u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        self.state[1] ^= u32::from_le_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]);
        permute(&mut self.state);
        self.buf_len = 0;
    }

    /// Absorbs more input.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.buf[self.buf_len] = b;
            self.buf_len += 1;
            if self.buf_len == RATE {
                self.absorb_block();
            }
        }
    }

    /// Finalizes (10*1 padding) and squeezes a 32-byte digest.
    pub fn finish(mut self) -> [u8; 32] {
        // Pad: 0x01, zeros, 0x80 in the last rate byte.
        self.buf[self.buf_len] = 0x01;
        for i in self.buf_len + 1..RATE {
            self.buf[i] = 0;
        }
        self.buf[RATE - 1] |= 0x80;
        self.absorb_block();

        let mut out = [0u8; 32];
        for chunk in out.chunks_mut(RATE) {
            chunk[..4].copy_from_slice(&self.state[0].to_le_bytes());
            chunk[4..].copy_from_slice(&self.state[1].to_le_bytes());
            permute(&mut self.state);
        }
        out
    }
}

/// One-shot sponge hash.
pub fn sponge_hash(data: &[u8]) -> [u8; 32] {
    let mut ctx = Sponge::new();
    ctx.update(data);
    ctx.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(sponge_hash(b"abc"), sponge_hash(b"abc"));
    }

    #[test]
    fn distinct_on_small_perturbations() {
        let mut seen = HashSet::new();
        // Empty, single bytes, length extensions, bit flips.
        assert!(seen.insert(sponge_hash(b"")));
        for b in 0u8..=255 {
            assert!(
                seen.insert(sponge_hash(&[b])),
                "collision on single byte {b}"
            );
        }
        assert!(seen.insert(sponge_hash(b"\x00\x00")));
        assert!(seen.insert(sponge_hash(b"\x01\x00")));
        assert!(seen.insert(sponge_hash(b"\x00\x01")));
    }

    #[test]
    fn padding_not_ambiguous() {
        // Messages that only differ by trailing zeros must hash differently
        // (10*1 padding makes length part of the input).
        assert_ne!(sponge_hash(b"x"), sponge_hash(b"x\x00"));
        assert_ne!(sponge_hash(b""), sponge_hash(b"\x00"));
        assert_ne!(sponge_hash(&[0u8; 7]), sponge_hash(&[0u8; 8]));
        assert_ne!(sponge_hash(&[0u8; 8]), sponge_hash(&[0u8; 9]));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..100u8).collect();
        for split in [0, 1, 7, 8, 9, 50, 100] {
            let mut ctx = Sponge::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finish(), sponge_hash(&data), "split={split}");
        }
    }

    #[test]
    fn avalanche() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = sponge_hash(b"trustlite measurement input!");
        let mut flipped = b"trustlite measurement input!".to_vec();
        flipped[3] ^= 0x10;
        let other = sponge_hash(&flipped);
        let differing: u32 = base
            .iter()
            .zip(other.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!(
            (64..=192).contains(&differing),
            "poor diffusion: {differing}/256 bits differ"
        );
    }
}
