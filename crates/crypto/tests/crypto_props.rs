//! Property tests on the crypto primitives.

use proptest::prelude::*;
use trustlite_crypto::{ct_eq, hmac_sha256, sha256, sponge_hash, Hmac, Sha256, Sponge};

proptest! {
    /// Incremental hashing over arbitrary split points equals one-shot.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        splits in proptest::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        let expected = sha256(&data);
        let mut points: Vec<usize> =
            splits.iter().map(|i| i.index(data.len() + 1)).collect();
        points.sort_unstable();
        let mut ctx = Sha256::new();
        let mut prev = 0;
        for p in points {
            ctx.update(&data[prev..p]);
            prev = p;
        }
        ctx.update(&data[prev..]);
        prop_assert_eq!(ctx.finish(), expected);
    }

    /// Same for the sponge hash.
    #[test]
    fn sponge_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        split in any::<prop::sample::Index>(),
    ) {
        let expected = sponge_hash(&data);
        let p = split.index(data.len() + 1);
        let mut ctx = Sponge::new();
        ctx.update(&data[..p]);
        ctx.update(&data[p..]);
        prop_assert_eq!(ctx.finish(), expected);
    }

    /// HMAC verifies its own tags and rejects any single-bit corruption.
    #[test]
    fn hmac_verify_roundtrip(
        key in proptest::collection::vec(any::<u8>(), 0..80),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
        flip_bit in 0usize..256,
    ) {
        let tag = hmac_sha256(&key, &msg);
        let mut mac = Hmac::new(&key);
        mac.update(&msg);
        prop_assert!(mac.verify(&tag));

        let mut bad = tag;
        bad[flip_bit / 8] ^= 1 << (flip_bit % 8);
        let mut mac = Hmac::new(&key);
        mac.update(&msg);
        prop_assert!(!mac.verify(&bad));
    }

    /// Distinct messages produce distinct digests (collision smoke test).
    #[test]
    fn distinct_inputs_distinct_digests(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b));
            prop_assert_ne!(sponge_hash(&a), sponge_hash(&b));
        }
    }

    /// ct_eq agrees with == on equal-length inputs and rejects length
    /// mismatches.
    #[test]
    fn ct_eq_matches_equality(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
        prop_assert!(ct_eq(&a, &a));
    }
}
