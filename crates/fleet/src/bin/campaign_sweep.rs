//! Experiment ECMP — campaign survival sweep: update-fault rate vs
//! completion rate, rollback rate and rounds-to-converge.
//!
//! For a fixed fleet, one firmware-update campaign is run to completion
//! at each update-fault rate while everything else stays pinned. Each
//! run reports how much of the fleet confirmed the update, how much
//! rolled back to the known-good slot, and how many rounds the campaign
//! needed to resolve every device. Invariants asserted at every rate:
//!
//! * completion + rollback + quarantined accounts for **every** device
//!   (nobody is lost in a non-terminal state);
//! * **zero devices are bricked** — every device still boots (slot A is
//!   the fallback anchor, so unbootable devices are impossible by
//!   construction, and the loader-run attribution proves each reboot
//!   came back up);
//! * `loader.runs == 1 + campaign.reboots + chaos.crash_resets` — the
//!   Secure Loader re-ran exactly once per reboot.
//!
//! The hottest rate is additionally executed at 1 and 4 workers and the
//! aggregate digests asserted identical.
//!
//! Run: `cargo run -p trustlite-fleet --release --bin campaign_sweep`
//! (pass `-- --smoke` for a seconds-long CI-sized run).
//!
//! Writes `BENCH_campaign_sweep.json` into the current directory.

use std::fmt::Write as _;
use std::time::Instant;

use trustlite_bench::timing::{is_noisy, process_cpu_ns, wall_cpu_ratio};
use trustlite_chaos::ChaosConfig;
use trustlite_fleet::{CampaignConfig, Fleet, FleetConfig, UpdateState};

/// Update-fault rates swept (per mille), mildest first.
const RATES: [u64; 5] = [0, 100, 250, 500, 1000];

/// The pinned chaos seed (any value works; pinned so the table in
/// EXPERIMENTS.md is reproducible).
const CHAOS_SEED: u64 = 0xca3b_a161;

struct SweepRow {
    fault_pm: u64,
    completed: usize,
    rolled_back: usize,
    quarantined: usize,
    skipped: usize,
    devices: usize,
    rounds_to_converge: Option<u64>,
    staged: u64,
    reboots: u64,
    forced_rollbacks: u64,
    gate_retries: u64,
    update_bit_flips: u64,
    update_stale_replays: u64,
    update_crash_resets: u64,
    crash_resets: u64,
    loader_runs: u64,
    digest_hex: String,
    wall_ms: f64,
    cpu_ms: f64,
    wall_cpu_ratio: f64,
    noisy: bool,
}

/// Rounds until every device reached a terminal campaign state, judged
/// by rerunning the config at shrinking round counts would be O(n²);
/// instead the campaign's own staging cadence bounds it: a fleet where
/// nothing is skipped converged within the configured rounds, and the
/// retained boot logs date every decision. Here we simply report the
/// configured rounds when converged, `None` when devices were left
/// unresolved.
fn rounds_to_converge(report: &trustlite_fleet::FleetReport) -> Option<u64> {
    (report.campaign_skipped() == 0).then_some(report.rounds)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let base = FleetConfig {
        devices: if smoke { 16 } else { 32 },
        workers: 1,
        rounds: if smoke { 16 } else { 24 },
        quantum: if smoke { 1_000 } else { 2_000 },
        attest_every: 2,
        // Survival is the question; the verifier never writes a device
        // off mid-campaign.
        max_retries: u32::MAX,
        ..FleetConfig::default()
    };
    let campaign = |devices: usize| CampaignConfig {
        canary_pct: 25,
        // No circuit breaking in the sweep: every device must resolve,
        // so the completion/rollback split is purely the fault plan's.
        failure_budget: devices as u32,
        max_confirm_attempts: 3,
        version: 2,
    };

    println!(
        "Campaign sweep: {} devices, {} rounds x {} steps, chaos seed {CHAOS_SEED:#x} \
         (smoke: {smoke})",
        base.devices, base.rounds, base.quantum
    );
    println!(
        "{:>9}{:>12}{:>13}{:>13}{:>10}{:>10}{:>10}",
        "fault ‰", "completed", "rolled back", "quarantined", "reboots", "flips", "stale"
    );

    let mut rows: Vec<SweepRow> = Vec::new();
    for &fault_pm in &RATES {
        let cfg = FleetConfig {
            chaos: ChaosConfig {
                seed: CHAOS_SEED,
                fault_rate_pm: fault_pm,
                malicious_pm: 0,
            },
            campaign: Some(campaign(base.devices)),
            ..base.clone()
        };
        let fleet = Fleet::boot(cfg).expect("boot");
        let t0 = Instant::now();
        let c0 = process_cpu_ns();
        let report = fleet.run();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let cpu_ms = (process_cpu_ns() - c0) as f64 / 1e6;
        let c = |name: &str| report.merged.counters.get(name).copied().unwrap_or(0);
        let row = SweepRow {
            fault_pm,
            completed: report.campaign_completed(),
            rolled_back: report.campaign_rolled_back(),
            quarantined: report.campaign_quarantined(),
            skipped: report.campaign_skipped(),
            devices: report.devices,
            rounds_to_converge: rounds_to_converge(&report),
            staged: c("campaign.staged"),
            reboots: c("campaign.reboots"),
            forced_rollbacks: c("campaign.forced_rollbacks"),
            gate_retries: c("campaign.gate_retries"),
            update_bit_flips: c("chaos.update_bit_flips"),
            update_stale_replays: c("chaos.update_stale_replays"),
            update_crash_resets: c("chaos.update_crash_resets"),
            crash_resets: c("chaos.crash_resets"),
            loader_runs: c("loader.runs"),
            digest_hex: report.digest_hex(),
            wall_ms,
            cpu_ms,
            wall_cpu_ratio: wall_cpu_ratio(wall_ms, cpu_ms),
            noisy: is_noisy(wall_ms, cpu_ms),
        };
        println!(
            "{:>9}{:>9}/{:<2}{:>10}/{:<2}{:>10}/{:<2}{:>10}{:>10}{:>10}",
            row.fault_pm,
            row.completed,
            row.devices,
            row.rolled_back,
            row.devices,
            row.quarantined,
            row.devices,
            row.reboots,
            row.update_bit_flips,
            row.update_stale_replays,
        );
        // Per-rate invariants.
        assert_eq!(
            row.completed + row.rolled_back + row.quarantined + row.skipped,
            row.devices,
            "every device must land in exactly one campaign bucket at {fault_pm}‰"
        );
        assert_eq!(
            row.skipped, 0,
            "with no circuit breaker every device must resolve at {fault_pm}‰"
        );
        assert_eq!(
            row.loader_runs,
            1 + row.reboots + row.crash_resets,
            "every reboot must re-run the Secure Loader exactly once at {fault_pm}‰ \
             — zero bricked devices"
        );
        // Every device that did not complete fell back to the
        // known-good slot or quarantined — nobody is left unbootable.
        assert!(
            report
                .campaign_states
                .iter()
                .all(|s| s.is_terminal() || *s == UpdateState::Idle || row.quarantined > 0),
            "non-terminal states at {fault_pm}‰: {:?}",
            report.campaign_states
        );
        // One greppable survival line per rate (CI's campaign-identity
        // job checks the 500‰ row for rollbacks and bricked count).
        let bricked = row.devices - row.completed - row.rolled_back - row.quarantined - row.skipped;
        println!(
            "rate {fault_pm}: {} rollbacks, {} bricked devices",
            row.rolled_back, bricked
        );
        rows.push(row);
    }

    // At rate 0 the whole fleet must complete.
    assert_eq!(
        rows[0].completed, rows[0].devices,
        "a fault-free campaign must confirm the whole fleet"
    );

    // Sharding must not change a campaign run: repeat the hottest rate
    // at 4 workers and compare digests.
    let hot = RATES[RATES.len() - 1];
    let digest_4w = Fleet::boot(FleetConfig {
        workers: 4,
        chaos: ChaosConfig {
            seed: CHAOS_SEED,
            fault_rate_pm: hot,
            malicious_pm: 0,
        },
        campaign: Some(campaign(base.devices)),
        ..base.clone()
    })
    .expect("boot")
    .run()
    .digest_hex();
    assert_eq!(
        digest_4w,
        rows.last().unwrap().digest_hex,
        "a campaign run must be bit-identical at 1 and 4 workers"
    );
    println!("digest identity at {hot}‰: 1 worker == 4 workers");

    let mut json_rows = String::new();
    for row in &rows {
        if !json_rows.is_empty() {
            json_rows.push_str(",\n");
        }
        let converge = match row.rounds_to_converge {
            Some(r) => r.to_string(),
            None => "null".to_string(),
        };
        write!(
            json_rows,
            "    {{\"fault_rate_pm\": {}, \"completed\": {}, \"rolled_back\": {}, \
             \"quarantined\": {}, \"skipped\": {}, \"devices\": {}, \
             \"rounds_to_converge\": {converge}, \"staged\": {}, \"reboots\": {}, \
             \"forced_rollbacks\": {}, \"gate_retries\": {}, \"update_bit_flips\": {}, \
             \"update_stale_replays\": {}, \"update_crash_resets\": {}, \
             \"crash_resets\": {}, \"loader_runs\": {}, \"wall_ms\": {:.2}, \
             \"cpu_ms\": {:.2}, \"wall_cpu_ratio\": {:.3}, \"noisy\": {}, \
             \"digest\": \"{}\"}}",
            row.fault_pm,
            row.completed,
            row.rolled_back,
            row.quarantined,
            row.skipped,
            row.devices,
            row.staged,
            row.reboots,
            row.forced_rollbacks,
            row.gate_retries,
            row.update_bit_flips,
            row.update_stale_replays,
            row.update_crash_resets,
            row.crash_resets,
            row.loader_runs,
            row.wall_ms,
            row.cpu_ms,
            row.wall_cpu_ratio,
            row.noisy,
            row.digest_hex
        )
        .unwrap();
    }
    let json = format!(
        "{{\n  \"experiment\": \"campaign_sweep\",\n  \"smoke\": {smoke},\n  \
         \"devices\": {},\n  \"rounds\": {},\n  \"quantum\": {},\n  \
         \"chaos_seed\": {CHAOS_SEED},\n  \"worker_digest_identity\": true,\n  \
         \"rows\": [\n{json_rows}\n  ]\n}}\n",
        base.devices, base.rounds, base.quantum
    );
    std::fs::write("BENCH_campaign_sweep.json", &json).expect("write BENCH_campaign_sweep.json");
    println!("wrote BENCH_campaign_sweep.json");
}
