//! Experiment ECHS — chaos sweep: fault rate vs quarantine rate vs
//! rounds-to-detect.
//!
//! For a fixed fleet, the fault-injection rate is swept while everything
//! else stays pinned. Each run reports how much of the fleet ended up
//! quarantined, how many rounds the verifier needed to write off a bad
//! device (mean quarantine round + 1), and the reject-reason counter
//! split. One nonzero-rate configuration is additionally executed at 1
//! and 4 workers and the aggregate digests are asserted identical — the
//! fault plan must not leak scheduling nondeterminism into the run.
//!
//! Run: `cargo run -p trustlite-fleet --release --bin chaos_sweep`
//! (pass `-- --smoke` for a seconds-long CI-sized run).
//!
//! Writes `BENCH_chaos_sweep.json` into the current directory.

use std::fmt::Write as _;
use std::time::Instant;

use trustlite_bench::timing::{is_noisy, process_cpu_ns, wall_cpu_ratio};
use trustlite_chaos::ChaosConfig;
use trustlite_fleet::{Fleet, FleetConfig};

/// `(fault_rate_pm, malicious_pm)` pairs swept, mildest first.
const RATES: [(u64, u64); 5] = [(0, 0), (100, 50), (250, 125), (500, 250), (1000, 500)];

/// The pinned chaos seed (any value works; pinned so the table in
/// EXPERIMENTS.md is reproducible).
const CHAOS_SEED: u64 = 0xc4a0_5eed;

struct SweepRow {
    fault_pm: u64,
    malicious_pm: u64,
    quarantined: usize,
    retrying: usize,
    devices: usize,
    mean_rounds_to_detect: f64,
    attest_ok: u64,
    attest_fail: u64,
    bad_measurement: u64,
    bad_tag: u64,
    timeout: u64,
    crash_resets: u64,
    loader_runs: u64,
    digest_hex: String,
    wall_ms: f64,
    /// Process CPU over the run (the sweep runs 1 worker, so wall and
    /// CPU should track closely on a quiet host).
    cpu_ms: f64,
    /// Wall/CPU divergence; well above 1 means the row's wall-clock
    /// figures were disturbed by host load.
    wall_cpu_ratio: f64,
    /// True when the divergence crosses the shared noise threshold.
    noisy: bool,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let base = FleetConfig {
        devices: if smoke { 16 } else { 32 },
        workers: 1,
        rounds: if smoke { 8 } else { 12 },
        quantum: if smoke { 1_000 } else { 2_000 },
        attest_every: 2,
        ..FleetConfig::default()
    };

    println!(
        "Chaos sweep: {} devices, {} rounds x {} steps, chaos seed {CHAOS_SEED:#x} \
         (smoke: {smoke})",
        base.devices, base.rounds, base.quantum
    );
    println!(
        "{:>9}{:>11}{:>13}{:>10}{:>18}{:>10}{:>10}",
        "fault ‰", "malicious ‰", "quarantined", "retrying", "rounds-to-detect", "ok", "fail"
    );

    let mut rows: Vec<SweepRow> = Vec::new();
    for &(fault_pm, malicious_pm) in &RATES {
        let cfg = FleetConfig {
            chaos: ChaosConfig {
                seed: CHAOS_SEED,
                fault_rate_pm: fault_pm,
                malicious_pm,
            },
            ..base.clone()
        };
        let fleet = Fleet::boot(cfg).expect("boot");
        let t0 = Instant::now();
        let c0 = process_cpu_ns();
        let report = fleet.run();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let cpu_ms = (process_cpu_ns() - c0) as f64 / 1e6;
        let detect_rounds = report.quarantine_rounds();
        let mean_detect = if detect_rounds.is_empty() {
            f64::NAN
        } else {
            detect_rounds.iter().map(|r| (r + 1) as f64).sum::<f64>() / detect_rounds.len() as f64
        };
        let c = |name: &str| report.merged.counters.get(name).copied().unwrap_or(0);
        let row = SweepRow {
            fault_pm,
            malicious_pm,
            quarantined: report.quarantined(),
            retrying: report.retrying(),
            devices: report.devices,
            mean_rounds_to_detect: mean_detect,
            attest_ok: report.attest_ok,
            attest_fail: report.attest_fail,
            bad_measurement: c("attest.reject.bad_measurement"),
            bad_tag: c("attest.reject.bad_tag"),
            timeout: c("attest.reject.timeout"),
            crash_resets: c("chaos.crash_resets"),
            loader_runs: c("loader.runs"),
            digest_hex: report.digest_hex(),
            wall_ms,
            cpu_ms,
            wall_cpu_ratio: wall_cpu_ratio(wall_ms, cpu_ms),
            noisy: is_noisy(wall_ms, cpu_ms),
        };
        println!(
            "{:>9}{:>11}{:>10}/{:<2}{:>10}{:>18.2}{:>10}{:>10}",
            row.fault_pm,
            row.malicious_pm,
            row.quarantined,
            row.devices,
            row.retrying,
            row.mean_rounds_to_detect,
            row.attest_ok,
            row.attest_fail
        );
        // Invariant at every rate: reject reasons sum to attest_fail,
        // and every injected reset re-ran the Secure Loader.
        assert_eq!(
            row.bad_measurement + row.bad_tag + row.timeout,
            row.attest_fail,
            "reject-reason counters must sum to attest_fail at {fault_pm}‰"
        );
        assert_eq!(
            row.loader_runs,
            1 + row.crash_resets,
            "loader.runs must count the injected reset re-runs at {fault_pm}‰"
        );
        rows.push(row);
    }

    // Sharding must not change a chaos run: repeat the hottest rate at
    // 4 workers and compare digests.
    let hot = RATES[RATES.len() - 1];
    let digest_4w = Fleet::boot(FleetConfig {
        workers: 4,
        chaos: ChaosConfig {
            seed: CHAOS_SEED,
            fault_rate_pm: hot.0,
            malicious_pm: hot.1,
        },
        ..base.clone()
    })
    .expect("boot")
    .run()
    .digest_hex();
    assert_eq!(
        digest_4w,
        rows.last().unwrap().digest_hex,
        "a chaos run must be bit-identical at 1 and 4 workers"
    );
    println!("digest identity at {}‰: 1 worker == 4 workers", hot.0);

    let mut json_rows = String::new();
    for row in &rows {
        if !json_rows.is_empty() {
            json_rows.push_str(",\n");
        }
        let detect = if row.mean_rounds_to_detect.is_nan() {
            "null".to_string()
        } else {
            format!("{:.2}", row.mean_rounds_to_detect)
        };
        write!(
            json_rows,
            "    {{\"fault_rate_pm\": {}, \"malicious_pm\": {}, \"quarantined\": {}, \
             \"retrying\": {}, \"mean_rounds_to_detect\": {detect}, \
             \"attest_ok\": {}, \"attest_fail\": {}, \"bad_measurement\": {}, \
             \"bad_tag\": {}, \"timeout\": {}, \"crash_resets\": {}, \
             \"loader_runs\": {}, \"wall_ms\": {:.2}, \"cpu_ms\": {:.2}, \
             \"wall_cpu_ratio\": {:.3}, \"noisy\": {}, \"digest\": \"{}\"}}",
            row.fault_pm,
            row.malicious_pm,
            row.quarantined,
            row.retrying,
            row.attest_ok,
            row.attest_fail,
            row.bad_measurement,
            row.bad_tag,
            row.timeout,
            row.crash_resets,
            row.loader_runs,
            row.wall_ms,
            row.cpu_ms,
            row.wall_cpu_ratio,
            row.noisy,
            row.digest_hex
        )
        .unwrap();
    }
    let json = format!(
        "{{\n  \"experiment\": \"chaos_sweep\",\n  \"smoke\": {smoke},\n  \
         \"devices\": {},\n  \"rounds\": {},\n  \"quantum\": {},\n  \
         \"chaos_seed\": {CHAOS_SEED},\n  \"worker_digest_identity\": true,\n  \
         \"rows\": [\n{json_rows}\n  ]\n}}\n",
        base.devices, base.rounds, base.quantum
    );
    std::fs::write("BENCH_chaos_sweep.json", &json).expect("write BENCH_chaos_sweep.json");
    println!("wrote BENCH_chaos_sweep.json");
}
