//! Experiment EFLT — fleet throughput: devices x workers sweep.
//!
//! For a fixed fleet (devices, rounds, quantum, seed, workload) the same
//! run is repeated across worker counts. The harness asserts the
//! aggregate digest — every device's final architectural state plus the
//! merged telemetry — is bit-identical for every worker count, then
//! reports aggregate simulated MIPS per configuration. It also measures
//! what snapshot/fork buys at boot time (fork-boot vs. N full Secure
//! Loader boots) and verifies that a 1000-device fleet boots with
//! exactly one Secure Loader execution, visible in the merged metrics.
//!
//! Wall-clock scaling asserts are gated on the host actually having the
//! cores: on a box with fewer than 8 available CPUs the ≥4x figure is
//! physically impossible and the gate is skipped (with a loud note in
//! the JSON) rather than faked.
//!
//! Run: `cargo run -p trustlite-fleet --release --bin fleet_throughput`
//! (pass `-- --smoke` for a seconds-long CI-sized run).
//!
//! Writes `BENCH_fleet_throughput.json` into the current directory.

use std::fmt::Write as _;
use std::time::Instant;

use trustlite_bench::timing::process_cpu_ns;
use trustlite_chaos::ChaosConfig;
use trustlite_fleet::{Fleet, FleetConfig};

/// Worker counts swept (the acceptance gate compares the last to the
/// first).
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct SweepRun {
    workers: usize,
    wall_ms: f64,
    /// Process CPU time over the run, all worker threads summed (may
    /// legitimately exceed `wall_ms` by up to the worker count).
    cpu_ms: f64,
    mips: f64,
    digest_hex: String,
    total_instret: u64,
}

fn run_once(base: &FleetConfig, workers: usize) -> SweepRun {
    let cfg = FleetConfig {
        workers,
        ..base.clone()
    };
    let fleet = Fleet::boot(cfg).expect("fleet boots");
    let t0 = Instant::now();
    let c0 = process_cpu_ns();
    let report = fleet.run();
    let wall = t0.elapsed().as_secs_f64();
    let cpu_ms = (process_cpu_ns() - c0) as f64 / 1e6;
    SweepRun {
        workers,
        wall_ms: wall * 1e3,
        cpu_ms,
        mips: report.total_instret as f64 / wall / 1e6,
        digest_hex: report.digest_hex(),
        total_instret: report.total_instret,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // CI smoke runs pass --gate-fork to enforce the fork-vs-full >=10x
    // gate (always measured at 64 devices) even in smoke mode.
    let gate_fork = std::env::args().any(|a| a == "--gate-fork");
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let base = FleetConfig {
        devices: if smoke { 8 } else { 64 },
        rounds: if smoke { 2 } else { 8 },
        quantum: if smoke { 2_000 } else { 50_000 },
        attest_every: 4,
        ..FleetConfig::default()
    };

    println!(
        "Fleet throughput: {} devices, {} rounds x {} steps, workload {} \
         (smoke: {smoke}, host parallelism: {parallelism})",
        base.devices, base.rounds, base.quantum, base.workload
    );
    println!(
        "{:<9}{:>12}{:>16}{:>10}",
        "workers", "wall ms", "aggregate MIPS", "speedup"
    );

    let mut runs: Vec<SweepRun> = Vec::new();
    for &workers in &WORKER_SWEEP {
        let run = run_once(&base, workers);
        let speedup = run.mips / runs.first().map_or(run.mips, |r| r.mips);
        println!(
            "{:<9}{:>12.1}{:>16.1}{:>9.2}x",
            run.workers, run.wall_ms, run.mips, speedup
        );
        runs.push(run);
    }

    // Hard invariant, any host: sharding must not change the simulation.
    let reference = &runs[0];
    for run in &runs[1..] {
        assert_eq!(
            run.digest_hex, reference.digest_hex,
            "{} workers diverged from 1 worker — sharding changed the simulation",
            run.workers
        );
        assert_eq!(run.total_instret, reference.total_instret);
    }

    let speedup_8v1 = runs.last().unwrap().mips / runs[0].mips;
    // An 8-worker run slower than 1 worker is not a real engine
    // regression — it means the host could not actually run the workers
    // in parallel (oversubscription, cgroup throttling, noisy
    // neighbours). Flag the measurement instead of reporting a fake
    // slowdown.
    let noisy = speedup_8v1 < 1.0;
    if noisy {
        eprintln!(
            "note: speedup_8v1 = {speedup_8v1:.2}x < 1.0 — the host could not \
             parallelize (marked noisy, not an engine regression)"
        );
    }
    // On a single-CPU host any speedup_8v1 figure is thread-scheduling
    // noise either way: mark the row informational-only so downstream
    // readers don't treat it as a scaling measurement.
    let speedup_informational = parallelism == 1;
    if speedup_informational {
        eprintln!(
            "note: available_parallelism == 1 — speedup_8v1 is informational \
             only (in-process threading cannot demonstrate scaling here)"
        );
    }
    // The wall-clock gate needs the silicon: with < 8 usable cores the
    // target is unreachable no matter how good the engine is, so the
    // gate is recorded as skipped instead of asserted against physics.
    let gate_enforced = !smoke && parallelism >= 8;
    if gate_enforced {
        assert!(
            speedup_8v1 >= 4.0,
            "8 workers must deliver >= 4x aggregate MIPS over 1 (got {speedup_8v1:.2}x)"
        );
    } else if !smoke {
        eprintln!(
            "note: host exposes only {parallelism} CPU(s); the >=4x @ 8 workers \
             gate is recorded but not enforced here (CI runs it on multicore)"
        );
    }

    // Zero-cost-when-off: the chaos layer compiled in but with both
    // rates at zero must not perturb an honest run — byte-identical
    // digest, whatever the chaos seed says.
    let chaos_off_digest = run_once(
        &FleetConfig {
            chaos: ChaosConfig {
                seed: 0xdead_beef,
                fault_rate_pm: 0,
                malicious_pm: 0,
            },
            ..base.clone()
        },
        1,
    )
    .digest_hex;
    assert_eq!(
        chaos_off_digest, reference.digest_hex,
        "disabled fault injection must leave honest runs byte-identical"
    );
    println!("chaos off: digest identical to the honest baseline");

    // Fork-boot scaling sweep: with sparse COW memory a fork is
    // O(resident pages) Arc bumps, so ms-per-device should stay flat as
    // the fleet grows. Each row retains the whole fleet while measured
    // (real footprint), and records the host-side residency the sparse
    // store achieves. Single-threaded, so meaningful on any host.
    let sweep_sizes: &[usize] = if smoke {
        &[8, 16, 32]
    } else {
        &[64, 256, 1024]
    };
    println!(
        "{:<9}{:>14}{:>15}{:>15}{:>18}{:>15}",
        "devices", "fork-boot ms", "ms/device", "fork us/dev", "resident KiB/dev", "code B/dev"
    );
    let mut sweep_rows = String::new();
    let mut sweep_fork_us: Vec<f64> = Vec::new();
    for &devices in sweep_sizes {
        let t0 = Instant::now();
        let fleet = Fleet::boot(FleetConfig {
            devices,
            ..base.clone()
        })
        .expect("fork boot");
        let boot_ms = t0.elapsed().as_secs_f64() * 1e3;
        let fork_us = fleet.fork_us_per_device();
        let resident: u64 = fleet
            .devices
            .iter()
            .map(|d| d.platform.resident_bytes())
            .sum();
        let resident_kib_per_dev = resident as f64 / 1024.0 / devices as f64;
        // Arc-shared chunked code caches: retained-but-idle forks amortize
        // to near zero physical bytes per device.
        let code: u64 = fleet
            .devices
            .iter()
            .map(|d| d.platform.code_cache_bytes())
            .sum();
        let code_per_dev = code as f64 / devices as f64;
        drop(fleet);
        sweep_fork_us.push(fork_us);
        println!(
            "{devices:<9}{boot_ms:>14.1}{:>15.3}{fork_us:>15.1}{resident_kib_per_dev:>18.1}\
             {code_per_dev:>15.0}",
            boot_ms / devices as f64
        );
        if !sweep_rows.is_empty() {
            sweep_rows.push_str(",\n");
        }
        write!(
            sweep_rows,
            "    {{\"devices\": {devices}, \"fork_boot_ms\": {boot_ms:.2}, \
             \"ms_per_device\": {:.4}, \"fork_us_per_device\": {fork_us:.1}, \
             \"resident_bytes_per_device\": {:.0}, \
             \"code_cache_bytes_per_device\": {code_per_dev:.0}}}",
            boot_ms / devices as f64,
            resident as f64 / devices as f64
        )
        .unwrap();
    }

    // Flat-fork gate: a fork is O(resident chunks) Arc bumps, so the
    // per-device cost must not grow with the fleet — the largest sweep
    // size may cost at most 2x the smallest. Timing at smoke sizes
    // (tens of devices, microsecond totals) is dominated by scheduler
    // noise, so in smoke mode the ratio is recorded but not asserted.
    let fork_flat_ratio = sweep_fork_us.last().unwrap() / sweep_fork_us.first().unwrap().max(0.1);
    let flat_gate_enforced = !smoke;
    println!(
        "flat-fork: {:.1} us/dev at {} devices vs {:.1} at {} ({fork_flat_ratio:.2}x)",
        sweep_fork_us.last().unwrap(),
        sweep_sizes.last().unwrap(),
        sweep_fork_us.first().unwrap(),
        sweep_sizes.first().unwrap(),
    );
    if flat_gate_enforced {
        assert!(
            fork_flat_ratio <= 2.0,
            "fork cost must stay flat as the fleet grows: {:.1} us/dev at {} devices \
             vs {:.1} at {} ({fork_flat_ratio:.2}x > 2x)",
            sweep_fork_us.last().unwrap(),
            sweep_sizes.last().unwrap(),
            sweep_fork_us.first().unwrap(),
            sweep_sizes.first().unwrap(),
        );
    }

    // Snapshot/fork boot vs N full Secure Loader boots, always at 64
    // devices (the gated configuration). Both sides retain every booted
    // platform; sparse COW memory means the fork side no longer pays a
    // per-device megabyte memcpy, so the gap is the full loader run plus
    // dense cache clones vs an Arc-bump fork.
    let fork_devices = 64;
    let t0 = Instant::now();
    let fleet = Fleet::boot(FleetConfig {
        devices: fork_devices,
        ..base.clone()
    })
    .expect("fork boot");
    let fork_ms = t0.elapsed().as_secs_f64() * 1e3;
    let fork_us_per_device = fleet.fork_us_per_device();
    drop(fleet);
    let t0 = Instant::now();
    let mut full_boots = Vec::with_capacity(fork_devices);
    for _ in 0..fork_devices {
        full_boots.push(trustlite_bench::throughput::build_workload(
            &base.workload,
            base.level,
        ));
    }
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(full_boots);
    let fork_speedup = full_ms / fork_ms;
    println!(
        "boot {fork_devices} devices: fork {fork_ms:.1} ms vs full {full_ms:.1} ms \
         ({fork_speedup:.1}x, {fork_us_per_device:.1} us/fork)"
    );
    if !smoke || gate_fork {
        assert!(
            fork_speedup >= 10.0,
            "COW fork boot must be >= 10x over full boots at 64 devices \
             (got {fork_speedup:.2}x)"
        );
    }

    // 1000-device fleet boots with exactly one Secure Loader execution,
    // proven by the loader-phase counters in the merged report.
    let loader_devices = if smoke { 32 } else { 1000 };
    let fleet = Fleet::boot(FleetConfig {
        devices: loader_devices,
        workers: parallelism.min(4),
        rounds: 1,
        quantum: 500,
        ..base.clone()
    })
    .expect("1000-device boot");
    let report = fleet.run();
    let loader_runs = report
        .merged
        .counters
        .get("loader.runs")
        .copied()
        .unwrap_or(0);
    let reset_ops = report
        .merged
        .counters
        .get("loader.reset.ops")
        .copied()
        .unwrap_or(0);
    println!(
        "{loader_devices}-device fleet: loader.runs = {loader_runs} in merged metrics \
         ({} devices reporting)",
        report.devices
    );
    assert_eq!(
        loader_runs, 1,
        "fork boot must run the Secure Loader exactly once per image"
    );

    let mut rows = String::new();
    for run in &runs {
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        write!(
            rows,
            "    {{\"workers\": {}, \"wall_ms\": {:.2}, \"cpu_ms\": {:.2}, \
             \"aggregate_mips\": {:.2}, \
             \"total_instret\": {}, \"digest\": \"{}\"}}",
            run.workers, run.wall_ms, run.cpu_ms, run.mips, run.total_instret, run.digest_hex
        )
        .unwrap();
    }
    let json = format!(
        "{{\n  \"experiment\": \"fleet_throughput\",\n  \"smoke\": {smoke},\n  \
         \"devices\": {},\n  \"rounds\": {},\n  \"quantum\": {},\n  \
         \"workload\": \"{}\",\n  \"available_parallelism\": {parallelism},\n  \
         \"speedup_8v1\": {speedup_8v1:.3},\n  \"speedup_gate_enforced\": {gate_enforced},\n  \
         \"speedup_8v1_informational_only\": {speedup_informational},\n  \
         \"noisy\": {noisy},\n  \
         \"digests_identical\": true,\n  \"chaos_off_identical\": true,\n  \
         \"fork_boot\": {{\"devices\": {fork_devices}, \"fork_ms\": {fork_ms:.2}, \
         \"full_ms\": {full_ms:.2}, \"speedup\": {fork_speedup:.2}, \
         \"fork_us_per_device\": {fork_us_per_device:.1}}},\n  \
         \"fork_flat_ratio\": {fork_flat_ratio:.3},\n  \
         \"fork_flat_gate_enforced\": {flat_gate_enforced},\n  \
         \"fork_sweep\": [\n{sweep_rows}\n  ],\n  \
         \"loader_check\": {{\"devices\": {loader_devices}, \"loader_runs\": {loader_runs}, \
         \"loader_reset_ops\": {reset_ops}}},\n  \
         \"runs\": [\n{rows}\n  ]\n}}\n",
        base.devices, base.rounds, base.quantum, base.workload
    );
    std::fs::write("BENCH_fleet_throughput.json", &json)
        .expect("write BENCH_fleet_throughput.json");
    println!("wrote BENCH_fleet_throughput.json");
}
