//! `tlfleet` — boot and run a TrustLite device fleet from the command
//! line.
//!
//! ```text
//! tlfleet [--devices N] [--workers N] [--rounds N] [--quantum N]
//!         [--seed N] [--workload NAME] [--level off|metrics|events|full]
//!         [--attest-every N] [--digest] [--json]
//! ```
//!
//! `--digest` prints only the aggregate digest (CI compares this across
//! worker counts); `--json` prints the full merged report as JSON.

use trustlite_fleet::{Fleet, FleetConfig};
use trustlite_obs::ObsLevel;

fn usage() -> ! {
    eprintln!(
        "usage: tlfleet [--devices N] [--workers N] [--rounds N] [--quantum N]\n\
         \x20              [--seed N] [--workload NAME] [--level off|metrics|events|full]\n\
         \x20              [--attest-every N] [--digest] [--json]"
    );
    std::process::exit(2);
}

fn parse_level(s: &str) -> ObsLevel {
    match s {
        "off" => ObsLevel::Off,
        "metrics" => ObsLevel::Metrics,
        "events" => ObsLevel::Events,
        "full" => ObsLevel::Full,
        _ => usage(),
    }
}

fn main() {
    let mut cfg = FleetConfig {
        devices: 16,
        workers: 1,
        quantum: 10_000,
        rounds: 8,
        attest_every: 4,
        ..FleetConfig::default()
    };
    let mut digest_only = false;
    let mut json = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--devices" => cfg.devices = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--rounds" => cfg.rounds = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--quantum" => cfg.quantum = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--workload" => cfg.workload = value(&mut i),
            "--level" => cfg.level = parse_level(&value(&mut i)),
            "--attest-every" => {
                cfg.attest_every = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--digest" => digest_only = true,
            "--json" => json = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    let fleet = match Fleet::boot(cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tlfleet: boot failed: {e}");
            std::process::exit(1);
        }
    };
    let report = fleet.run();

    if digest_only {
        println!("{}", report.digest_hex());
    } else if json {
        print!("{}", report.to_json());
    } else {
        println!("{}", report.summary());
        println!(
            "loader runs (merged): {}",
            report
                .merged
                .counters
                .get("loader.runs")
                .copied()
                .unwrap_or(0)
        );
    }
}
