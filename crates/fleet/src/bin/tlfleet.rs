//! `tlfleet` — boot and run a TrustLite device fleet from the command
//! line.
//!
//! ```text
//! tlfleet [--devices N] [--workers N] [--rounds N] [--quantum N]
//!         [--seed N] [--workload NAME] [--level off|metrics|events|full]
//!         [--attest-every N] [--chaos SEED] [--fault-rate PM]
//!         [--malicious PM] [--max-retries N] [--timeout-rounds N]
//!         [--trace-level off|spans|full] [--trace-jsonl PATH]
//!         [--chrome-trace PATH] [--dense-mem] [--private-code]
//!         [--campaign] [--canary-pct N] [--failure-budget N]
//!         [--rollback-report] [--digest] [--expect HEX] [--json]
//! ```
//!
//! `--digest` prints only the aggregate digest (CI compares this across
//! worker counts); `--expect HEX` additionally compares it against a
//! reference and exits nonzero (printing both and the trace level, since
//! a level-dependent digest would be an observation-perturbs bug) on
//! mismatch. `--json` prints the full merged report. `--chaos SEED`
//! enables deterministic fault injection; `--fault-rate`/`--malicious`
//! tune the per-mille rates (defaults 150‰ each when `--chaos` is
//! given). `--trace-jsonl` writes the mixed span/histogram/flight-dump
//! trace (pipe into `tlstats`); `--chrome-trace` writes a Chrome
//! `trace_event` timeline with one lane per engine shard and per device.
//! Either trace sink implies `--trace-level spans` unless a level was
//! given explicitly. `--dense-mem` runs on dense (fully materialized,
//! deep-copy) memory instead of the default sparse COW backing;
//! `--private-code` forks private (deep-copied) predecode/superblock
//! tables instead of the default `Arc`-shared code caches — in either
//! case the digest must not change (CI's `fork-identity` job compares
//! the reference modes against the default).
//!
//! `--campaign` runs a firmware-update campaign over the fleet: A/B
//! slots, canary/ramp waves (`--canary-pct`, default 25), an attested
//! re-measurement commit gate and a rollback circuit breaker
//! (`--failure-budget`, default 8). `--rollback-report` additionally
//! prints each device's campaign outcome and the update counters.

use trustlite_chaos::ChaosConfig;
use trustlite_fleet::{chrome_trace, trace_jsonl, CampaignConfig, Fleet, FleetConfig, TraceLevel};
use trustlite_obs::ObsLevel;

fn usage() -> ! {
    eprintln!(
        "usage: tlfleet [--devices N] [--workers N] [--rounds N] [--quantum N]\n\
         \x20              [--seed N] [--workload NAME] [--level off|metrics|events|full]\n\
         \x20              [--attest-every N] [--chaos SEED] [--fault-rate PM]\n\
         \x20              [--malicious PM] [--max-retries N] [--timeout-rounds N]\n\
         \x20              [--trace-level off|spans|full] [--trace-jsonl PATH]\n\
         \x20              [--chrome-trace PATH] [--dense-mem] [--private-code]\n\
         \x20              [--campaign] [--canary-pct N] [--failure-budget N]\n\
         \x20              [--rollback-report] [--digest] [--expect HEX] [--json]"
    );
    std::process::exit(2);
}

fn parse_level(s: &str) -> ObsLevel {
    match s {
        "off" => ObsLevel::Off,
        "metrics" => ObsLevel::Metrics,
        "events" => ObsLevel::Events,
        "full" => ObsLevel::Full,
        _ => usage(),
    }
}

fn main() {
    let mut cfg = FleetConfig {
        devices: 16,
        workers: 1,
        quantum: 10_000,
        rounds: 8,
        attest_every: 4,
        ..FleetConfig::default()
    };
    let mut digest_only = false;
    let mut json = false;
    let mut expect: Option<String> = None;
    let mut fault_rate: Option<u64> = None;
    let mut malicious: Option<u64> = None;
    let mut trace_level: Option<TraceLevel> = None;
    let mut trace_path: Option<String> = None;
    let mut chrome_path: Option<String> = None;
    let mut campaign = false;
    let mut canary_pct: Option<u32> = None;
    let mut failure_budget: Option<u32> = None;
    let mut rollback_report = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--devices" => cfg.devices = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--rounds" => cfg.rounds = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--quantum" => cfg.quantum = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--workload" => cfg.workload = value(&mut i),
            "--level" => cfg.level = parse_level(&value(&mut i)),
            "--attest-every" => {
                cfg.attest_every = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--chaos" => {
                let seed = value(&mut i).parse().unwrap_or_else(|_| usage());
                cfg.chaos = ChaosConfig::with_seed(seed);
            }
            "--fault-rate" => fault_rate = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--malicious" => malicious = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--max-retries" => cfg.max_retries = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--timeout-rounds" => {
                cfg.timeout_rounds = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--trace-level" => {
                trace_level = Some(TraceLevel::parse(&value(&mut i)).unwrap_or_else(|| usage()))
            }
            "--trace-jsonl" => trace_path = Some(value(&mut i)),
            "--chrome-trace" => chrome_path = Some(value(&mut i)),
            "--dense-mem" => cfg.dense_mem = true,
            "--private-code" => cfg.private_code = true,
            "--campaign" => campaign = true,
            "--canary-pct" => canary_pct = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--failure-budget" => {
                failure_budget = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--rollback-report" => rollback_report = true,
            "--digest" => digest_only = true,
            "--expect" => expect = Some(value(&mut i)),
            "--json" => json = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    if let Some(pm) = fault_rate {
        cfg.chaos.fault_rate_pm = pm.min(trustlite_chaos::PER_MILLE);
    }
    if let Some(pm) = malicious {
        cfg.chaos.malicious_pm = pm.min(trustlite_chaos::PER_MILLE);
    }
    if campaign || canary_pct.is_some() || failure_budget.is_some() {
        let mut c = CampaignConfig::default();
        if let Some(pct) = canary_pct {
            c.canary_pct = pct.min(100);
        }
        if let Some(budget) = failure_budget {
            c.failure_budget = budget;
        }
        cfg.campaign = Some(c);
    }
    cfg.trace = match trace_level {
        Some(level) => level,
        // Asking for a trace sink implies collecting spans.
        None if trace_path.is_some() || chrome_path.is_some() => TraceLevel::Spans,
        None => TraceLevel::Off,
    };

    let chaos_on = cfg.chaos.enabled();
    let campaign_desc = cfg.campaign.as_ref().map(|c| {
        format!(
            "campaign(canary {}%, failure budget {}, {} confirm attempts, version {})",
            c.canary_pct, c.failure_budget, c.max_confirm_attempts, c.version
        )
    });
    let fleet = match Fleet::boot(cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tlfleet: boot failed: {e}");
            std::process::exit(1);
        }
    };
    let report = fleet.run();

    if let Some(path) = &trace_path {
        if let Err(e) = std::fs::write(path, trace_jsonl(&report)) {
            eprintln!("tlfleet: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &chrome_path {
        if let Err(e) = std::fs::write(path, chrome_trace(&report)) {
            eprintln!("tlfleet: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }

    if let Some(want) = &expect {
        let got = report.digest_hex();
        if &got != want {
            // Name the campaign config in the mismatch: campaign state
            // bytes enter the digest, so comparing a campaign digest
            // against a non-campaign reference (or different knobs) is
            // the first thing to rule out.
            eprintln!(
                "tlfleet: digest mismatch (trace level {}, {})\n  \
                 expected: {want}\n  actual:   {got}",
                report.trace_level.name(),
                campaign_desc.as_deref().unwrap_or("no campaign"),
            );
            std::process::exit(1);
        }
    }
    if digest_only {
        println!("{}", report.digest_hex());
    } else if json {
        print!("{}", report.to_json());
    } else {
        println!("{}", report.summary());
        println!("{}", report.health_line());
        if report.campaign {
            println!("{}", report.campaign_line());
        }
        println!("{}", report.memory_line());
        if !report.flight_dumps.is_empty() {
            println!("flight dumps captured: {}", report.flight_dumps.len());
        }
        println!(
            "loader runs (merged): {}",
            report
                .merged
                .counters
                .get("loader.runs")
                .copied()
                .unwrap_or(0)
        );
        if rollback_report && report.campaign {
            for (id, s) in report.campaign_states.iter().enumerate() {
                println!("device {id}: {}", s.label());
            }
            for counter in [
                "campaign.staged",
                "campaign.reboots",
                "campaign.confirmed",
                "campaign.rollbacks",
                "campaign.forced_rollbacks",
                "campaign.gate_retries",
                "chaos.update_bit_flips",
                "chaos.update_stale_replays",
                "chaos.update_crash_resets",
            ] {
                println!(
                    "{counter}: {}",
                    report.merged.counters.get(counter).copied().unwrap_or(0)
                );
            }
        }
        if chaos_on {
            println!(
                "chaos resets injected: {}",
                report
                    .merged
                    .counters
                    .get("chaos.crash_resets")
                    .copied()
                    .unwrap_or(0)
            );
            for reason in [
                "attest.reject.bad_measurement",
                "attest.reject.bad_tag",
                "attest.reject.timeout",
            ] {
                println!(
                    "{reason}: {}",
                    report.merged.counters.get(reason).copied().unwrap_or(0)
                );
            }
        }
    }
}
