//! Fleet-scale firmware-update campaigns.
//!
//! The orchestrator drives a staged A/B-slot rollout over the whole
//! fleet: a canary wave stages the new image on a configurable percent
//! of devices, the remaining devices ramp only once every canary has
//! resolved, and each device walks a small per-device state machine
//! (`Idle → Staged → Written → Rebooted → Confirmed | RolledBack`).
//! The commit gate is an *attested re-measurement*: after the update
//! reboot the verifier challenges the device and confirms the slot only
//! when the response proves the patched measurement under the device's
//! enrolment key. A circuit breaker stops staging new devices once the
//! rollback count exceeds the failure budget.
//!
//! Every campaign action runs in phase B on worker 0, in device order,
//! so campaign outcomes are bit-identical for any worker count — the
//! same argument that makes the attestation fabric deterministic.

use trustlite::attest;
use trustlite::update::SlotState;
use trustlite::TrustliteError;
use trustlite_chaos::UpdateFault;
use trustlite_crypto::sha256;
use trustlite_obs::MetricsRegistry;

use crate::engine::DeviceSim;

/// Tuning knobs of one rollout campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Percent of the fleet staged in the canary wave (at least one
    /// device; 100 stages everyone immediately).
    pub canary_pct: u32,
    /// Rollbacks tolerated before the circuit breaker stops staging
    /// *new* devices (in-flight devices still resolve).
    pub failure_budget: u32,
    /// Commit-gate attempts per device before the orchestrator forces a
    /// rollback (guarantees every staged device reaches a terminal
    /// state even when its attestations never verify).
    pub max_confirm_attempts: u32,
    /// Version word of the campaign image (must exceed the fleet's
    /// anti-rollback floor to boot).
    pub version: u32,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            canary_pct: 25,
            failure_budget: 8,
            max_confirm_attempts: 3,
            version: 2,
        }
    }
}

/// Where one device stands in the rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateState {
    /// Not yet part of an open wave.
    Idle,
    /// Selected by a wave; the image is written at the next boundary.
    Staged,
    /// Image staged in DRAM, retained block armed; the update-window
    /// faults land here. Reboots at the next boundary.
    Written,
    /// Rebooted into the update; awaiting the attested re-measurement
    /// commit gate.
    Rebooted,
    /// Commit gate passed; the slot is confirmed and the anti-rollback
    /// floor raised.
    Confirmed,
    /// The device fell back to slot A — the Secure Loader rejected the
    /// staged image, or the orchestrator abandoned the update.
    RolledBack,
}

impl UpdateState {
    /// Fixed digest encoding (campaign bytes are only hashed when a
    /// campaign is configured, preserving non-campaign digests).
    pub(crate) fn code(self) -> u8 {
        match self {
            UpdateState::Idle => 0,
            UpdateState::Staged => 1,
            UpdateState::Written => 2,
            UpdateState::Rebooted => 3,
            UpdateState::Confirmed => 4,
            UpdateState::RolledBack => 5,
        }
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            UpdateState::Idle => "idle",
            UpdateState::Staged => "staged",
            UpdateState::Written => "written",
            UpdateState::Rebooted => "rebooted",
            UpdateState::Confirmed => "confirmed",
            UpdateState::RolledBack => "rolled_back",
        }
    }

    /// True once the device can make no further campaign progress.
    pub fn is_terminal(self) -> bool {
        matches!(self, UpdateState::Confirmed | UpdateState::RolledBack)
    }
}

/// Derives the commit-gate nonce for device `id` in `round` (its own
/// domain, so gate challenges never collide with the attestation
/// fabric's nonces).
fn gate_nonce(fleet_seed: u64, id: u32, round: u64) -> [u8; 16] {
    let mut blob = Vec::with_capacity(40);
    blob.extend_from_slice(b"tl-fleet-campaign");
    blob.extend_from_slice(&fleet_seed.to_le_bytes());
    blob.extend_from_slice(&id.to_le_bytes());
    blob.extend_from_slice(&round.to_le_bytes());
    let h = sha256(&blob);
    let mut nonce = [0u8; 16];
    nonce.copy_from_slice(&h[..16]);
    nonce
}

/// The orchestrator's whole mutable state. Only worker 0 touches it, in
/// device order at round boundaries.
pub(crate) struct CampaignState {
    pub cfg: CampaignConfig,
    /// The trustlet being updated (first row of the trustlet table).
    pub target: String,
    /// The campaign image: the PROM image plus one appended, never
    /// executed marker word — behavior-identical, measurement-distinct.
    patched_image: Vec<u8>,
    /// Reference measurements while slot A is active.
    expected_primary: Vec<[u8; 32]>,
    /// Reference measurements once the staged slot is active (the
    /// target's entry replaced by the patched region measurement).
    expected_patched: Vec<[u8; 32]>,
    /// Per-device rollout position.
    pub states: Vec<UpdateState>,
    /// Per-device failed commit-gate attempts.
    gate_attempts: Vec<u32>,
    /// Which reference the device's *current boot* reports (updated at
    /// the end of each device's phase-B step, i.e. the state the next
    /// round's responses are produced under).
    patched_active: Vec<bool>,
    /// Devices the verifier quarantined: they stop stepping, so their
    /// campaign state is frozen and the ramp must not wait on them.
    stuck: Vec<bool>,
    /// Campaign counters (`campaign.*`, `chaos.update_*`), merged into
    /// the fleet report.
    pub metrics: MetricsRegistry,
}

impl CampaignState {
    /// Builds the campaign from the booted master: resolves the target
    /// trustlet, constructs the patched image and precomputes both
    /// reference measurement vectors.
    pub fn new(
        cfg: CampaignConfig,
        master: &mut trustlite::Platform,
        expected: &[[u8; 32]],
        devices: usize,
    ) -> Result<CampaignState, TrustliteError> {
        let mut ordered: Vec<(u32, String)> = master
            .plans
            .iter()
            .map(|(n, p)| (p.tt_index, n.clone()))
            .collect();
        ordered.sort();
        let (_, target) = ordered
            .first()
            .cloned()
            .ok_or(TrustliteError::Snapshot("campaign target"))?;
        let plan = master.plan(&target)?.clone();
        // The original image comes from the PROM firmware table — the
        // same bytes the Secure Loader copies at every slot-A boot.
        let prom = master
            .machine
            .sys
            .bus
            .read_bytes(
                trustlite_mem::map::PROM_BASE + trustlite::loader::FW_TABLE_OFF,
                trustlite_mem::map::PROM_SIZE - trustlite::loader::FW_TABLE_OFF,
            )
            .map_err(|e| TrustliteError::BadFirmware(e.to_string()))?;
        let entry = trustlite::prom::parse(&prom)?
            .into_iter()
            .find(|e| e.id == plan.id)
            .ok_or(TrustliteError::Snapshot("campaign PROM entry"))?;
        let mut patched_image = entry.code;
        patched_image.extend_from_slice(&0x5542_00ED_u32.to_le_bytes());
        if patched_image.len() as u32 > plan.code_size {
            return Err(TrustliteError::ImageTooLarge {
                name: target,
                reserved: plan.code_size,
                actual: patched_image.len() as u32,
            });
        }
        let mut expected_patched = expected.to_vec();
        let target_ix = ordered
            .iter()
            .position(|(_, n)| *n == target)
            .expect("target came from ordered");
        expected_patched[target_ix] = attest::measure_region(&patched_image, plan.code_size);
        Ok(CampaignState {
            cfg,
            target,
            patched_image,
            expected_primary: expected.to_vec(),
            expected_patched,
            states: vec![UpdateState::Idle; devices],
            gate_attempts: vec![0; devices],
            patched_active: vec![false; devices],
            stuck: vec![false; devices],
            metrics: MetricsRegistry::default(),
        })
    }

    /// The measurement reference the verifier must hold device `id` to
    /// for responses produced since the last round boundary.
    pub fn expected_for(&self, id: usize) -> &[[u8; 32]] {
        if self.patched_active[id] {
            &self.expected_patched
        } else {
            &self.expected_primary
        }
    }

    /// Devices in the canary wave (`ids < canary_count`).
    fn canary_count(&self) -> usize {
        let n = self.states.len();
        (n * self.cfg.canary_pct.min(100) as usize / 100).clamp(1, n)
    }

    /// Devices that rolled back so far.
    fn rollbacks(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s == UpdateState::RolledBack)
            .count()
    }

    /// Whether the circuit breaker forbids staging new devices.
    fn breaker_tripped(&self) -> bool {
        self.rollbacks() > self.cfg.failure_budget as usize
    }

    /// Whether device `id` may be pulled into an open wave: canaries
    /// are staged immediately; everyone else waits for every canary to
    /// resolve (terminal or quarantined — a quarantined canary must not
    /// wedge the rollout).
    fn wave_open(&self, id: usize) -> bool {
        let canaries = self.canary_count();
        if id < canaries {
            return true;
        }
        (0..canaries).all(|c| self.states[c].is_terminal() || self.stuck[c])
    }

    /// One device's campaign step at the `round` boundary (phase B,
    /// worker 0, device order). `fault` is this round's update-window
    /// fault, already gated on the chaos plan being enabled.
    pub fn step(
        &mut self,
        id: usize,
        dev: &mut DeviceSim,
        round: u64,
        fleet_seed: u64,
        fault: Option<UpdateFault>,
    ) {
        if dev.health.is_quarantined() {
            // Quarantined devices no longer step or answer challenges;
            // the campaign leaves them where they stand and the ramp
            // stops waiting on them.
            self.stuck[id] = true;
            return;
        }
        match self.states[id] {
            UpdateState::Idle => {
                if !self.breaker_tripped() && self.wave_open(id) {
                    self.states[id] = UpdateState::Staged;
                }
            }
            UpdateState::Staged => {
                dev.platform
                    .stage_update(&self.target, &self.patched_image, self.cfg.version)
                    .expect("staging a validated image cannot fail");
                self.metrics.inc("campaign.staged");
                self.states[id] = UpdateState::Written;
            }
            UpdateState::Written => {
                // The update window: the image sits in untrusted DRAM,
                // written but not committed. This is where staged-image
                // bit flips, stale-version replays and write/commit
                // crashes land.
                match fault {
                    Some(UpdateFault::StagedBitFlip { select, bit }) => {
                        let len = self.patched_image.len() as u64;
                        let offset = (select % len) as u32;
                        dev.platform
                            .corrupt_staged(&self.target, offset, bit)
                            .expect("staged image is mapped DRAM");
                        self.metrics.inc("chaos.update_bit_flips");
                    }
                    Some(UpdateFault::StaleVersionReplay) => {
                        dev.platform
                            .replay_stale_version(&self.target)
                            .expect("armed block exists");
                        self.metrics.inc("chaos.update_stale_replays");
                    }
                    Some(UpdateFault::CrashBeforeCommit) => {
                        // The crash *is* the reboot — the device comes
                        // back up before the orchestrator asked it to,
                        // and the Secure Loader consults the block
                        // exactly as it would on the planned reboot.
                        self.metrics.inc("chaos.update_crash_resets");
                    }
                    _ => {}
                }
                dev.warm_reset();
                self.metrics.inc("campaign.reboots");
                self.gate_attempts[id] = 0;
                self.states[id] = UpdateState::Rebooted;
            }
            UpdateState::Rebooted => {
                let block = dev
                    .platform
                    .update_block(&self.target)
                    .expect("target exists");
                let staged_alive = matches!(
                    block.as_ref().map(|b| b.state),
                    Some(SlotState::Written) | Some(SlotState::Confirmed)
                );
                if !staged_alive {
                    // The Secure Loader already fell back to slot A
                    // (CRC reject, stale version, attempts exhausted).
                    self.metrics.inc("campaign.rollbacks");
                    self.states[id] = UpdateState::RolledBack;
                } else if matches!(fault, Some(UpdateFault::CrashDuringRemeasure)) {
                    // The device dies mid-re-measurement; reboot it and
                    // try the gate again next round. The extra loader
                    // pass may exhaust the slot's boot attempts — the
                    // next step observes whatever the loader decided.
                    dev.warm_reset();
                    self.metrics.inc("campaign.reboots");
                    self.metrics.inc("chaos.update_crash_resets");
                } else {
                    // Commit gate: an attested re-measurement. The
                    // response is host-side (no device cycles), so the
                    // gate is synchronous and deterministic.
                    let ch = attest::Challenge {
                        nonce: gate_nonce(fleet_seed, dev.id, round),
                    };
                    let verdict = attest::respond(&mut dev.platform, &ch).ok().map(|resp| {
                        attest::verify_detailed(&dev.key, &ch, &resp, &self.expected_patched)
                    });
                    if let Some(Ok(())) = verdict {
                        dev.platform
                            .confirm_update(&self.target)
                            .expect("armed block exists");
                        self.metrics.inc("campaign.confirmed");
                        self.states[id] = UpdateState::Confirmed;
                    } else {
                        self.gate_attempts[id] += 1;
                        self.metrics.inc("campaign.gate_retries");
                        if self.gate_attempts[id] >= self.cfg.max_confirm_attempts {
                            // The device boots the new slot but can
                            // never prove it (wrong key, persistent
                            // tamper): force it back to the known-good
                            // slot rather than leave it unattestable.
                            dev.platform
                                .abandon_update(&self.target)
                                .expect("armed block exists");
                            dev.warm_reset();
                            self.metrics.inc("campaign.reboots");
                            self.metrics.inc("campaign.forced_rollbacks");
                            self.metrics.inc("campaign.rollbacks");
                            self.states[id] = UpdateState::RolledBack;
                        }
                    }
                }
            }
            UpdateState::Confirmed | UpdateState::RolledBack => {}
        }
        // Snapshot which reference this device's *next* round of
        // responses will be produced under: the staged slot is live iff
        // a boot actually consumed it — `Written` with a nonzero
        // attempt count (the Secure Loader bumps it on every staged
        // boot) or `Confirmed`. A freshly staged block (`Written`,
        // attempts 0) is armed but the device still runs slot A until
        // its reboot.
        let block = dev
            .platform
            .update_block(&self.target)
            .expect("target exists");
        self.patched_active[id] = match block {
            Some(b) => {
                b.state == SlotState::Confirmed || (b.state == SlotState::Written && b.attempts > 0)
            }
            None => false,
        };
    }

    /// Fixed-width digest bytes for device `id` (hashed only when a
    /// campaign is configured).
    pub fn digest_bytes(&self, id: usize) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[0] = self.states[id].code();
        out[1] = u8::from(self.patched_active[id]);
        out[2..6].copy_from_slice(&self.gate_attempts[id].to_le_bytes());
        out
    }
}
