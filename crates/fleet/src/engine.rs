//! Fleet boot (snapshot/fork) and sharded execution.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use trustlite::attest::{self, Challenge, Response};
use trustlite::{Platform, TrustliteError};
use trustlite_bench::throughput::build_workload;
use trustlite_crypto::sha256;
use trustlite_obs::ObsLevel;

use crate::report::{state_digest, FleetReport};

/// Everything a fleet run is reproducible from.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of simulated devices.
    pub devices: usize,
    /// Number of worker threads devices are sharded over.
    pub workers: usize,
    /// Instructions each device executes per scheduling round.
    pub quantum: u64,
    /// Number of rounds.
    pub rounds: u64,
    /// Fleet seed: all per-device identity (RNG seeds, platform keys)
    /// and all verifier nonces derive from it.
    pub seed: u64,
    /// Which macro workload every device runs (see
    /// [`trustlite_bench::throughput::WORKLOADS`]).
    pub workload: String,
    /// Telemetry capture level applied to every device.
    pub level: ObsLevel,
    /// The verifier challenges each device every `attest_every` rounds
    /// (staggered by device id); `0` disables the attestation fabric.
    pub attest_every: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            devices: 8,
            workers: 1,
            quantum: 10_000,
            rounds: 4,
            seed: 0x7457_117e,
            workload: "quickstart".to_string(),
            level: ObsLevel::Metrics,
            attest_every: 2,
        }
    }
}

/// One simulated device: a forked platform plus its fleet identity.
pub struct DeviceSim {
    /// Device index (also published to device software, see
    /// [`Platform::DEVICE_ID_ADDR`]).
    pub id: u32,
    /// The device's machine, forked from the booted master.
    pub platform: Platform,
    /// The device's provisioned platform key (the verifier keeps a copy,
    /// as a real enrolment database would).
    pub key: [u8; 32],
    /// Instruction count at fork time (so fleet throughput counts only
    /// post-fork work).
    pub instret_at_fork: u64,
    /// Attestation responses produced this round, delivered to the
    /// verifier at the round boundary.
    outbox: Vec<Response>,
}

/// Derives a device's RNG seed from the fleet seed (splitmix64 step —
/// adjacent device ids must not yield correlated xorshift streams).
fn device_rng_seed(fleet_seed: u64, id: u32) -> u64 {
    let mut z = fleet_seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(id) + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a device's platform key from the fleet seed.
fn device_key(fleet_seed: u64, id: u32) -> [u8; 32] {
    let mut blob = Vec::with_capacity(16);
    blob.extend_from_slice(b"tl-fleet-key");
    blob.extend_from_slice(&fleet_seed.to_le_bytes());
    blob.extend_from_slice(&id.to_le_bytes());
    sha256(&blob)
}

/// Derives the verifier's nonce for challenging device `id` in `round`.
fn challenge_nonce(fleet_seed: u64, id: u32, round: u64) -> [u8; 16] {
    let mut blob = Vec::with_capacity(32);
    blob.extend_from_slice(b"tl-fleet-nonce");
    blob.extend_from_slice(&fleet_seed.to_le_bytes());
    blob.extend_from_slice(&id.to_le_bytes());
    blob.extend_from_slice(&round.to_le_bytes());
    let h = sha256(&blob);
    let mut nonce = [0u8; 16];
    nonce.copy_from_slice(&h[..16]);
    nonce
}

/// A booted fleet, ready to run.
pub struct Fleet {
    /// The run configuration.
    pub cfg: FleetConfig,
    /// All devices, forked and diverged.
    pub devices: Vec<DeviceSim>,
    /// The master image's boot telemetry (contains the single Secure
    /// Loader execution: `loader.runs == 1`, one set of `loader.*.ops`
    /// phase counters). Forked devices start with cleared telemetry, so
    /// the merged fleet report proves the loader ran once per image.
    pub boot_report: trustlite_obs::MetricsReport,
    /// Reference measurements the verifier expects (trustlet-table
    /// order), read from the master after boot.
    pub expected: Vec<[u8; 32]>,
}

impl Fleet {
    /// Boots the fleet: builds the workload image and runs the Secure
    /// Loader **once**, then forks the booted platform `cfg.devices`
    /// times and diverges each clone (device id, RNG seed, platform
    /// key).
    pub fn boot(cfg: FleetConfig) -> Result<Fleet, TrustliteError> {
        let mut master = build_workload(&cfg.workload, cfg.level);
        let boot_report = master.machine.metrics_report();
        let expected = expected_measurements(&mut master)?;
        let mut devices = Vec::with_capacity(cfg.devices);
        for id in 0..cfg.devices as u32 {
            let mut p = master.fork()?;
            let key = device_key(cfg.seed, id);
            p.diverge(id, device_rng_seed(cfg.seed, id), key)?;
            devices.push(DeviceSim {
                id,
                platform: p,
                key,
                instret_at_fork: master.machine.instret,
                outbox: Vec::new(),
            });
        }
        Ok(Fleet {
            cfg,
            devices,
            boot_report,
            expected,
        })
    }

    /// Runs the fleet for `cfg.rounds` rounds of `cfg.quantum` steps per
    /// device, sharded over `cfg.workers` threads, and merges all
    /// telemetry into one [`FleetReport`].
    ///
    /// Determinism: within a round every device's trajectory depends
    /// only on its own state plus the messages delivered to it at the
    /// round boundary, so devices may step in any order on any worker.
    /// The verifier (phase B, one thread) processes responses and emits
    /// next-round challenges in device order. Aggregates are therefore
    /// bit-identical for any worker count.
    pub fn run(self) -> FleetReport {
        let Fleet {
            cfg,
            devices,
            boot_report,
            expected,
        } = self;
        let nw = cfg.workers.max(1).min(devices.len().max(1));
        let n = devices.len();

        // Contiguous shards; per-shard claim cursors form the
        // work-stealing run queue (a worker that drains its own shard
        // claims from the next one).
        let shards: Vec<(usize, usize)> = (0..nw)
            .map(|w| {
                let start = w * n / nw;
                let end = (w + 1) * n / nw;
                (start, end - start)
            })
            .collect();
        let cursors: Vec<AtomicUsize> = (0..nw).map(|_| AtomicUsize::new(0)).collect();
        let cells: Vec<Mutex<DeviceSim>> = devices.into_iter().map(Mutex::new).collect();
        // Round-boundary message fabric: the verifier's pending
        // challenge (if any) for each device.
        let inboxes: Vec<Mutex<Option<Challenge>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let barrier = Barrier::new(nw);
        let attest_ok = AtomicUsize::new(0);
        let attest_fail = AtomicUsize::new(0);

        // Seed round 0's challenges (the verifier "speaks first").
        if cfg.attest_every > 0 {
            for (id, inbox) in inboxes.iter().enumerate() {
                if (id as u64).is_multiple_of(cfg.attest_every) {
                    *inbox.lock().unwrap() = Some(Challenge {
                        nonce: challenge_nonce(cfg.seed, id as u32, 0),
                    });
                }
            }
        }

        let claim = |worker: usize| -> Option<usize> {
            for k in 0..nw {
                let s = (worker + k) % nw;
                let (start, len) = shards[s];
                let i = cursors[s].fetch_add(1, Ordering::Relaxed);
                if i < len {
                    return Some(start + i);
                }
            }
            None
        };

        std::thread::scope(|scope| {
            for worker in 0..nw {
                let cfg = &cfg;
                let cells = &cells;
                let inboxes = &inboxes;
                let cursors = &cursors;
                let barrier = &barrier;
                let expected = &expected;
                let attest_ok = &attest_ok;
                let attest_fail = &attest_fail;
                let claim = &claim;
                scope.spawn(move || {
                    for round in 0..cfg.rounds {
                        // Phase A: step every device one quantum,
                        // delivering round-boundary messages first.
                        while let Some(idx) = claim(worker) {
                            let mut dev = cells[idx].lock().unwrap();
                            if let Some(ch) = inboxes[idx].lock().unwrap().take() {
                                if let Ok(resp) = attest::respond(&mut dev.platform, &ch) {
                                    dev.outbox.push(resp);
                                }
                            }
                            dev.platform.run(cfg.quantum);
                        }
                        barrier.wait();
                        // Phase B: the verifier drains responses and
                        // enqueues next-round challenges, in device
                        // order; worker 0 also re-arms the run queue.
                        if worker == 0 {
                            for (id, cell) in cells.iter().enumerate() {
                                let mut guard = cell.lock().unwrap();
                                let dev = &mut *guard;
                                for resp in dev.outbox.drain(..) {
                                    // The response answers the challenge
                                    // delivered at this round's start.
                                    let ch = Challenge {
                                        nonce: challenge_nonce(cfg.seed, id as u32, round),
                                    };
                                    if attest::verify(&dev.key, &ch, &resp, expected) {
                                        attest_ok.fetch_add(1, Ordering::Relaxed);
                                    } else {
                                        attest_fail.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                let next = round + 1;
                                if next < cfg.rounds
                                    && cfg.attest_every > 0
                                    && (id as u64 + next).is_multiple_of(cfg.attest_every)
                                {
                                    *inboxes[id].lock().unwrap() = Some(Challenge {
                                        nonce: challenge_nonce(cfg.seed, id as u32, next),
                                    });
                                }
                            }
                            for c in cursors.iter() {
                                c.store(0, Ordering::Relaxed);
                            }
                        }
                        barrier.wait();
                    }
                });
            }
        });

        let mut devices: Vec<DeviceSim> =
            cells.into_iter().map(|c| c.into_inner().unwrap()).collect();

        // Merge: one boot registry per image + every device's registry.
        let mut merged = boot_report;
        let mut total_instret = 0u64;
        let mut total_cycles = 0u64;
        let mut digest_blob = Vec::new();
        for dev in devices.iter_mut() {
            let r = dev.platform.machine.metrics_report();
            merged.merge(&r);
            total_instret += dev.platform.machine.instret - dev.instret_at_fork;
            total_cycles += dev.platform.machine.cycles;
            digest_blob.extend_from_slice(&state_digest(&mut dev.platform));
        }
        let ok = attest_ok.load(Ordering::Relaxed) as u64;
        let fail = attest_fail.load(Ordering::Relaxed) as u64;
        digest_blob.extend_from_slice(&ok.to_le_bytes());
        digest_blob.extend_from_slice(&fail.to_le_bytes());
        for (k, v) in &merged.counters {
            digest_blob.extend_from_slice(k.as_bytes());
            digest_blob.extend_from_slice(&v.to_le_bytes());
        }
        for (name, cycles) in &merged.attribution {
            digest_blob.extend_from_slice(name.as_bytes());
            digest_blob.extend_from_slice(&cycles.to_le_bytes());
        }

        FleetReport {
            devices: n,
            workers: nw,
            rounds: cfg.rounds,
            quantum: cfg.quantum,
            seed: cfg.seed,
            workload: cfg.workload.clone(),
            total_instret,
            total_cycles,
            attest_ok: ok,
            attest_fail: fail,
            merged,
            digest: sha256(&digest_blob),
        }
    }
}

/// Reads the reference measurements (trustlet-table order) the verifier
/// expects every healthy device to report.
fn expected_measurements(master: &mut Platform) -> Result<Vec<[u8; 32]>, TrustliteError> {
    let mut ordered: Vec<(u32, String)> = master
        .plans
        .iter()
        .map(|(n, p)| (p.tt_index, n.clone()))
        .collect();
    ordered.sort();
    ordered
        .into_iter()
        .map(|(_, name)| master.measurement(&name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_identities_are_distinct_and_stable() {
        assert_eq!(device_key(1, 0), device_key(1, 0));
        assert_ne!(device_key(1, 0), device_key(1, 1));
        assert_ne!(device_key(1, 0), device_key(2, 0));
        assert_ne!(device_rng_seed(1, 0), device_rng_seed(1, 1));
        assert_ne!(challenge_nonce(1, 0, 0), challenge_nonce(1, 0, 1));
    }

    #[test]
    fn fork_boot_runs_loader_once() {
        let fleet = Fleet::boot(FleetConfig {
            devices: 5,
            ..FleetConfig::default()
        })
        .expect("boot");
        assert_eq!(fleet.devices.len(), 5);
        assert_eq!(fleet.boot_report.counters["loader.runs"], 1);
        let report = fleet.run();
        // Forked devices contribute no loader runs of their own.
        assert_eq!(report.merged.counters["loader.runs"], 1);
        assert!(report.total_instret > 0);
    }

    #[test]
    fn attestation_fabric_accepts_honest_devices() {
        let report = Fleet::boot(FleetConfig {
            devices: 4,
            rounds: 4,
            attest_every: 2,
            ..FleetConfig::default()
        })
        .expect("boot")
        .run();
        assert!(report.attest_ok > 0, "some challenges must round-trip");
        assert_eq!(report.attest_fail, 0, "honest devices never fail");
    }

    #[test]
    fn worker_count_does_not_change_aggregates() {
        let run = |workers| {
            Fleet::boot(FleetConfig {
                devices: 6,
                workers,
                rounds: 3,
                quantum: 2_000,
                ..FleetConfig::default()
            })
            .expect("boot")
            .run()
        };
        let a = run(1);
        let b = run(3);
        assert_eq!(
            a.digest, b.digest,
            "aggregate digest must not depend on sharding"
        );
        assert_eq!(a.total_instret, b.total_instret);
        assert_eq!(a.merged.counters, b.merged.counters);
    }
}
