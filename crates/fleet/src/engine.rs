//! Fleet boot (snapshot/fork), sharded execution, fault injection and
//! the resilient attestation fabric.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use trustlite::attest::{self, Challenge, Response};
use trustlite::{Platform, TrustliteError};
use trustlite_bench::throughput::build_workload;
use trustlite_chaos::{ChaosConfig, DeviceRole, FaultPlan, RoundFault};
use trustlite_crypto::sha256;
use trustlite_obs::{
    Event, FlightDump, FlightRecorder, MetricsRegistry, MetricsReport, ObsLevel, SpanKind,
    SpanRecord, DEFAULT_FLIGHT_CAP,
};
use trustlite_periph::KeyStore;

use crate::campaign::{CampaignConfig, CampaignState};
use crate::observatory::TraceLevel;
use crate::report::{state_digest, FleetReport};
use crate::resilience::{DeviceHealth, VerifierState};

/// How many trailing device events a flight dump carries (the tail of
/// the device's telemetry ring; empty below `ObsLevel::Events`).
const FLIGHT_EVENT_TAIL: usize = 32;

/// Everything a fleet run is reproducible from.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of simulated devices.
    pub devices: usize,
    /// Number of worker threads devices are sharded over.
    pub workers: usize,
    /// Instructions each device executes per scheduling round.
    pub quantum: u64,
    /// Number of rounds.
    pub rounds: u64,
    /// Fleet seed: all per-device identity (RNG seeds, platform keys)
    /// and all verifier nonces derive from it.
    pub seed: u64,
    /// Which macro workload every device runs (see
    /// [`trustlite_bench::throughput::WORKLOADS`]).
    pub workload: String,
    /// Telemetry capture level applied to every device.
    pub level: ObsLevel,
    /// The verifier challenges each device every `attest_every` rounds
    /// (staggered by device id); `0` disables the attestation fabric.
    pub attest_every: u64,
    /// Fault-injection plan (off by default; the honest path is
    /// byte-identical with chaos compiled in but disabled).
    pub chaos: ChaosConfig,
    /// Consecutive failures tolerated per device before quarantine.
    pub max_retries: u32,
    /// Rounds the verifier waits for a response before declaring a
    /// timeout.
    pub timeout_rounds: u64,
    /// Fleet span collection level. Gates only what lands in
    /// [`FleetReport::spans`]; digests and merged metrics are
    /// byte-identical at every level.
    pub trace: TraceLevel,
    /// Per-device flight-recorder depth (always on; `0` disables
    /// retention but still counts drops).
    pub flight_cap: usize,
    /// Run every device on dense (fully materialized, deep-copy
    /// snapshot) memory instead of the default sparse COW backing.
    /// Reference mode for differential runs: digests must be
    /// byte-identical either way (CI's `fork-identity` job).
    pub dense_mem: bool,
    /// Fork every device with private (deep-copied) predecode/superblock
    /// tables instead of the default chunked `Arc`-shared code caches.
    /// Reference mode for differential runs: digests must be
    /// byte-identical either way (CI's `fork-identity` job).
    pub private_code: bool,
    /// Firmware-update campaign (off by default; a configured campaign
    /// stages the patched image over the fleet in canary/ramp waves and
    /// commits each device behind an attested re-measurement gate).
    pub campaign: Option<CampaignConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            devices: 8,
            workers: 1,
            quantum: 10_000,
            rounds: 4,
            seed: 0x7457_117e,
            workload: "quickstart".to_string(),
            level: ObsLevel::Metrics,
            attest_every: 2,
            chaos: ChaosConfig::off(),
            max_retries: 3,
            timeout_rounds: 2,
            trace: TraceLevel::Off,
            flight_cap: DEFAULT_FLIGHT_CAP,
            dense_mem: false,
            private_code: false,
            campaign: None,
        }
    }
}

/// One simulated device: a forked platform plus its fleet identity.
pub struct DeviceSim {
    /// Device index (also published to device software, see
    /// [`Platform::DEVICE_ID_ADDR`]).
    pub id: u32,
    /// The device's machine, forked from the booted master.
    pub platform: Platform,
    /// The device's provisioned platform key (the verifier keeps a copy,
    /// as a real enrolment database would). For [`DeviceRole::WrongKey`]
    /// devices this is the *enrolment* key — the device itself holds a
    /// corrupted copy.
    pub key: [u8; 32],
    /// Instruction count at fork time (so fleet throughput counts only
    /// post-fork work); rebased to 0 after a mid-run warm reset.
    pub instret_at_fork: u64,
    /// The fault plan's run-long role for this device.
    pub role: DeviceRole,
    /// The verifier's view of this device.
    pub health: DeviceHealth,
    /// Home shard (assigned from the device index when the run is
    /// sharded). Work stealing may *execute* the device elsewhere; spans
    /// always carry the home shard so traces are deterministic.
    pub shard: u32,
    /// Always-on bounded black box of this device's recent fleet
    /// activity, dumped on quarantine or crash-reset.
    pub(crate) flight: FlightRecorder,
    /// Trace spans collected at [`TraceLevel::Spans`] and above.
    pub(crate) spans: Vec<SpanRecord>,
    /// Flight dumps captured during the run (quarantine, crash-reset).
    pub(crate) dumps: Vec<FlightDump>,
    /// Attestation responses produced this round (tagged with the round
    /// of the challenge they answer), delivered to the verifier at the
    /// round boundary.
    pub(crate) outbox: Vec<(u64, Response)>,
    /// In-transit responses held back by a delay fault:
    /// `(deliver_round, challenge_round, response)`.
    delayed: Vec<(u64, u64, Response)>,
    /// Telemetry retired by mid-run warm resets ([`Platform::reset`]
    /// clears the live registry; the pre-reset snapshot accumulates
    /// here so merged fleet counters still cover the whole run).
    accum: MetricsReport,
    /// Host-side fault-injection counters (`chaos.*`) for this device.
    local: MetricsRegistry,
    /// Instructions retired before the last warm reset.
    instret_done: u64,
    /// Cycles elapsed before the last warm reset.
    cycles_done: u64,
}

impl DeviceSim {
    /// Records one span into the always-on flight ring, and into the
    /// trace buffer when `collect` (the caller's trace-level gate) says
    /// the level wants it.
    pub(crate) fn note(&mut self, collect: bool, kind: SpanKind, round: u64, start: u64, end: u64) {
        let span = SpanRecord {
            shard: self.shard,
            device: Some(self.id),
            round,
            kind,
            start_cycle: start,
            end_cycle: end,
        };
        self.flight.record(span.clone());
        if collect {
            self.spans.push(span);
        }
    }

    /// Warm-resets this device mid-run, retiring its telemetry and
    /// cycle/instret counters first so fleet aggregates still cover the
    /// pre-reset work. [`Platform::reset`] clears registers and live
    /// telemetry and re-runs the Secure Loader from PROM; retained RAM
    /// (the update blocks and boot log) survives by construction.
    pub(crate) fn warm_reset(&mut self) {
        let pre = self.platform.machine.metrics_report();
        self.accum.merge(&pre);
        self.instret_done += self.platform.machine.instret - self.instret_at_fork;
        self.cycles_done += self.platform.machine.cycles;
        self.platform
            .reset()
            .expect("Secure Loader re-entry from PROM is deterministic");
        self.instret_at_fork = 0;
    }

    /// Snapshots this device's black box: flight-ring spans, the tail of
    /// its telemetry event ring and its merged counters (device registry
    /// plus host-side `chaos.*` fault counters). Reading the metrics is
    /// idempotent, so capturing mid-run perturbs nothing.
    pub(crate) fn capture_dump(&mut self, round: u64, trigger: &str) -> FlightDump {
        let mut counters = self.platform.machine.metrics_report().counters;
        counters.extend(self.local.snapshot().counters);
        let ring = &self.platform.machine.sys.obs.ring;
        let skip = ring.len().saturating_sub(FLIGHT_EVENT_TAIL);
        let events: Vec<Event> = ring.iter().skip(skip).cloned().collect();
        self.flight.dump(self.id, round, trigger, events, counters)
    }
}

/// Derives a device's RNG seed from the fleet seed (splitmix64 step —
/// adjacent device ids must not yield correlated xorshift streams).
fn device_rng_seed(fleet_seed: u64, id: u32) -> u64 {
    let mut z = fleet_seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(id) + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a device's platform key from the fleet seed.
fn device_key(fleet_seed: u64, id: u32) -> [u8; 32] {
    let mut blob = Vec::with_capacity(16);
    blob.extend_from_slice(b"tl-fleet-key");
    blob.extend_from_slice(&fleet_seed.to_le_bytes());
    blob.extend_from_slice(&id.to_le_bytes());
    sha256(&blob)
}

/// Derives the verifier's nonce for challenging device `id` in `round`.
pub(crate) fn challenge_nonce(fleet_seed: u64, id: u32, round: u64) -> [u8; 16] {
    let mut blob = Vec::with_capacity(32);
    blob.extend_from_slice(b"tl-fleet-nonce");
    blob.extend_from_slice(&fleet_seed.to_le_bytes());
    blob.extend_from_slice(&id.to_le_bytes());
    blob.extend_from_slice(&round.to_le_bytes());
    let h = sha256(&blob);
    let mut nonce = [0u8; 16];
    nonce.copy_from_slice(&h[..16]);
    nonce
}

/// XOR mask applied to the device-held key of [`DeviceRole::WrongKey`]
/// devices (any nonzero mask works; fixed so runs are reproducible).
const WRONG_KEY_MASK: u8 = 0x5a;

/// A booted fleet, ready to run.
pub struct Fleet {
    /// The run configuration.
    pub cfg: FleetConfig,
    /// All devices, forked and diverged.
    pub devices: Vec<DeviceSim>,
    /// The master image's boot telemetry (contains the single Secure
    /// Loader execution: `loader.runs == 1`, one set of `loader.*.ops`
    /// phase counters). Forked devices start with cleared telemetry, so
    /// the merged fleet report proves the loader ran once per image.
    pub boot_report: trustlite_obs::MetricsReport,
    /// Reference measurements the verifier expects (trustlet-table
    /// order), read from the master after boot.
    pub expected: Vec<[u8; 32]>,
    /// Trustlet code/data regions bit-flip faults are aimed at
    /// (`(base, size)` in trustlet-table order).
    fault_regions: Vec<(u32, u32)>,
    /// Host wall time the boot-and-fork phase took, in nanoseconds
    /// (trace-only: surfaces as the `fork` shard-phase span, never
    /// digested).
    fork_ns: u64,
    /// Host wall time of the fork+diverge loop alone (excludes the
    /// master boot), in nanoseconds. Never digested.
    fork_loop_ns: u64,
    /// The update-campaign orchestrator, when one is configured (built
    /// against the master's PROM image and reference measurements).
    campaign: Option<CampaignState>,
}

impl Fleet {
    /// Boots the fleet: builds the workload image and runs the Secure
    /// Loader **once**, then forks the booted platform `cfg.devices`
    /// times and diverges each clone (device id, RNG seed, platform
    /// key). When a fault plan is enabled, malicious roles are applied
    /// here — at "deployment time" — by tampering the clone's
    /// measurement table or corrupting its key-store copy of the
    /// platform key.
    pub fn boot(cfg: FleetConfig) -> Result<Fleet, TrustliteError> {
        let t_boot = Instant::now();
        if cfg.devices == 0 {
            return Err(TrustliteError::DegenerateFleet { what: "devices" });
        }
        if cfg.rounds == 0 {
            return Err(TrustliteError::DegenerateFleet { what: "rounds" });
        }
        let mut master = build_workload(&cfg.workload, cfg.level);
        if cfg.dense_mem {
            master.set_dense_memory(true)?;
        }
        if cfg.private_code {
            master.set_private_code_caches(true);
        }
        let boot_report = master.machine.metrics_report();
        let expected = expected_measurements(&mut master)?;
        let mut ordered: Vec<(u32, String)> = master
            .plans
            .iter()
            .map(|(n, p)| (p.tt_index, n.clone()))
            .collect();
        ordered.sort();
        let fault_regions: Vec<(u32, u32)> = ordered
            .iter()
            .flat_map(|(_, name)| {
                let p = &master.plans[name];
                [(p.code_base, p.code_size), (p.data_base, p.data_size)]
            })
            .filter(|&(_, size)| size > 0)
            .collect();
        let campaign = match &cfg.campaign {
            Some(c) => Some(CampaignState::new(
                c.clone(),
                &mut master,
                &expected,
                cfg.devices,
            )?),
            None => None,
        };
        let plan = FaultPlan::new(cfg.chaos);
        let mut devices = Vec::with_capacity(cfg.devices);
        let t_fork = Instant::now();
        for id in 0..cfg.devices as u32 {
            let mut p = master.fork()?;
            let key = device_key(cfg.seed, id);
            p.diverge(id, device_rng_seed(cfg.seed, id), key)?;
            let role = plan.role(cfg.seed, id);
            match role {
                DeviceRole::Honest => {}
                DeviceRole::TamperedMeasurement => {
                    // Tamper the first trustlet's recorded measurement.
                    let name = &ordered
                        .first()
                        .ok_or(TrustliteError::Snapshot("measurement table"))?
                        .1;
                    p.tamper_measurement(name)?;
                }
                DeviceRole::WrongKey => {
                    p.machine
                        .sys
                        .bus
                        .device_mut::<KeyStore>("keystore")
                        .ok_or(TrustliteError::Snapshot("keystore"))?
                        .corrupt(0, WRONG_KEY_MASK)
                        .map_err(|_| TrustliteError::Snapshot("keystore"))?;
                }
            }
            devices.push(DeviceSim {
                id,
                platform: p,
                key,
                instret_at_fork: master.machine.instret,
                role,
                health: DeviceHealth::Healthy,
                shard: 0,
                flight: FlightRecorder::new(cfg.flight_cap),
                spans: Vec::new(),
                dumps: Vec::new(),
                outbox: Vec::new(),
                delayed: Vec::new(),
                accum: MetricsReport::default(),
                local: MetricsRegistry::default(),
                instret_done: 0,
                cycles_done: 0,
            });
        }
        let fork_loop_ns = t_fork.elapsed().as_nanos() as u64;
        Ok(Fleet {
            cfg,
            devices,
            boot_report,
            expected,
            fault_regions,
            fork_ns: t_boot.elapsed().as_nanos() as u64,
            fork_loop_ns,
            campaign,
        })
    }

    /// Host wall time of the fork+diverge loop alone (excludes the
    /// master boot), in nanoseconds. Diagnostic; never digested.
    pub fn fork_loop_ns(&self) -> u64 {
        self.fork_loop_ns
    }

    /// Mean host microseconds spent forking+diverging one device.
    pub fn fork_us_per_device(&self) -> f64 {
        self.fork_loop_ns as f64 / 1_000.0 / self.devices.len().max(1) as f64
    }

    /// Runs the fleet for `cfg.rounds` rounds of `cfg.quantum` steps per
    /// device, sharded over `cfg.workers` threads, and merges all
    /// telemetry into one [`FleetReport`].
    ///
    /// Determinism: within a round every device's trajectory depends
    /// only on its own state plus the messages delivered to it at the
    /// round boundary, and every injected fault is a pure function of
    /// `(fleet_seed, device_id, round)`, so devices may step in any
    /// order on any worker. The verifier (phase B, one thread)
    /// processes responses, applies retry/quarantine decisions and
    /// emits next-round challenges in device order. Aggregates are
    /// therefore bit-identical for any worker count, fault plan or not.
    pub fn run(self) -> FleetReport {
        let fork_us_per_device = self.fork_us_per_device();
        let Fleet {
            cfg,
            mut devices,
            boot_report,
            expected,
            fault_regions,
            fork_ns,
            fork_loop_ns: _,
            campaign,
        } = self;
        let nw = cfg.workers.max(1).min(devices.len().max(1));
        let n = devices.len();
        let plan = FaultPlan::new(cfg.chaos);
        let chaos_on = plan.enabled();
        let campaign_on = campaign.is_some();
        let campaign = Mutex::new(campaign);
        let trace = cfg.trace;

        // Contiguous shards; per-shard claim cursors form the
        // work-stealing run queue (a worker that drains its own shard
        // claims from the next one).
        let shards: Vec<(usize, usize)> = (0..nw)
            .map(|w| {
                let start = w * n / nw;
                let end = (w + 1) * n / nw;
                (start, end - start)
            })
            .collect();
        for (s, &(start, len)) in shards.iter().enumerate() {
            for dev in &mut devices[start..start + len] {
                dev.shard = s as u32;
            }
        }
        let cursors: Vec<AtomicUsize> = (0..nw).map(|_| AtomicUsize::new(0)).collect();
        let cells: Vec<Mutex<DeviceSim>> = devices.into_iter().map(Mutex::new).collect();
        // Round-boundary message fabric: the verifier's pending
        // challenge (if any) for each device, tagged with its round.
        let inboxes: Vec<Mutex<Option<(u64, Challenge)>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let barrier = Barrier::new(nw);
        let verifier = Mutex::new(VerifierState::new(
            n,
            cfg.max_retries,
            cfg.timeout_rounds,
            trace,
        ));
        // Host-clock shard-phase spans (trace-only, never digested): each
        // worker buffers its own and appends once at thread exit.
        let t0 = Instant::now();
        let host_spans: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

        // Seed round 0's challenges (the verifier "speaks first").
        if cfg.attest_every > 0 {
            let mut ver = verifier.lock().unwrap();
            for (id, inbox) in inboxes.iter().enumerate() {
                if (id as u64).is_multiple_of(cfg.attest_every) {
                    ver.note_challenge(id, 0);
                    *inbox.lock().unwrap() = Some((
                        0,
                        Challenge {
                            nonce: challenge_nonce(cfg.seed, id as u32, 0),
                        },
                    ));
                }
            }
        }

        let claim = |worker: usize| -> Option<usize> {
            for k in 0..nw {
                let s = (worker + k) % nw;
                let (start, len) = shards[s];
                let i = cursors[s].fetch_add(1, Ordering::Relaxed);
                if i < len {
                    return Some(start + i);
                }
            }
            None
        };

        std::thread::scope(|scope| {
            for worker in 0..nw {
                let cfg = &cfg;
                let cells = &cells;
                let inboxes = &inboxes;
                let cursors = &cursors;
                let barrier = &barrier;
                let expected = &expected;
                let verifier = &verifier;
                let claim = &claim;
                let plan = &plan;
                let fault_regions = &fault_regions;
                let campaign = &campaign;
                let t0 = &t0;
                let host_spans = &host_spans;
                scope.spawn(move || {
                    let mut phase_spans: Vec<SpanRecord> = Vec::new();
                    let phase = |spans: &mut Vec<SpanRecord>, kind, round, start: u64| {
                        spans.push(SpanRecord {
                            shard: worker as u32,
                            device: None,
                            round,
                            kind,
                            start_cycle: start,
                            end_cycle: t0.elapsed().as_nanos() as u64,
                        });
                    };
                    for round in 0..cfg.rounds {
                        let a0 = if trace.spans_on() {
                            t0.elapsed().as_nanos() as u64
                        } else {
                            0
                        };
                        // Phase A: step every device one quantum,
                        // delivering round-boundary messages and
                        // applying this round's scheduled faults.
                        // Quarantined devices are skipped entirely —
                        // the run queue just moves on, so they never
                        // stall the barrier.
                        while let Some(idx) = claim(worker) {
                            let mut dev = cells[idx].lock().unwrap();
                            if dev.health.is_quarantined() {
                                continue;
                            }
                            let fault = if chaos_on {
                                plan.round_fault(cfg.seed, dev.id, round)
                            } else {
                                None
                            };
                            step_device(
                                &mut dev,
                                round,
                                fault,
                                cfg.quantum,
                                fault_regions,
                                &inboxes[idx],
                                trace,
                            );
                        }
                        if trace.spans_on() {
                            phase(&mut phase_spans, SpanKind::Execute, round, a0);
                        }
                        barrier.wait();
                        // Phase B: the verifier drains responses,
                        // applies retry/quarantine decisions and
                        // enqueues next-round challenges, in device
                        // order; worker 0 also re-arms the run queue.
                        if worker == 0 {
                            let v0 = if trace.spans_on() {
                                t0.elapsed().as_nanos() as u64
                            } else {
                                0
                            };
                            let mut ver = verifier.lock().unwrap();
                            let mut camp = campaign.lock().unwrap();
                            for (id, cell) in cells.iter().enumerate() {
                                let mut guard = cell.lock().unwrap();
                                let dev = &mut *guard;
                                // A campaign run verifies each device
                                // against the slot its responses were
                                // produced under (patched once the
                                // staged slot is live).
                                let exp: &[[u8; 32]] = match camp.as_ref() {
                                    Some(c) => c.expected_for(id),
                                    None => expected.as_slice(),
                                };
                                ver.round_boundary(id, dev, round, cfg.seed, exp);
                                if let Some(c) = camp.as_mut() {
                                    let uf = if chaos_on {
                                        plan.update_fault(cfg.seed, dev.id, round)
                                    } else {
                                        None
                                    };
                                    c.step(id, dev, round, cfg.seed, uf);
                                }
                                let next = round + 1;
                                if ver.should_challenge(id, dev, next, cfg.attest_every, cfg.rounds)
                                {
                                    ver.note_challenge(id, next);
                                    *inboxes[id].lock().unwrap() = Some((
                                        next,
                                        Challenge {
                                            nonce: challenge_nonce(cfg.seed, id as u32, next),
                                        },
                                    ));
                                }
                            }
                            for c in cursors.iter() {
                                c.store(0, Ordering::Relaxed);
                            }
                            if trace.spans_on() {
                                phase(&mut phase_spans, SpanKind::Verify, round, v0);
                            }
                        }
                        barrier.wait();
                    }
                    if !phase_spans.is_empty() {
                        host_spans.lock().unwrap().extend(phase_spans);
                    }
                });
            }
        });

        let mut devices: Vec<DeviceSim> =
            cells.into_iter().map(|c| c.into_inner().unwrap()).collect();
        let m0 = t0.elapsed().as_nanos() as u64;

        // Assemble the trace: fork span, host-clock phase spans (sorted
        // by (round, kind, shard) — worker arrival order is racy, the
        // sorted order is not), then per-device and verifier spans in
        // deterministic phase-B order.
        let mut spans: Vec<SpanRecord> = Vec::new();
        if trace.spans_on() {
            spans.push(SpanRecord {
                shard: 0,
                device: None,
                round: 0,
                kind: SpanKind::Fork,
                start_cycle: 0,
                end_cycle: fork_ns,
            });
            let mut host = host_spans.into_inner().unwrap();
            host.sort_by_key(|s| (s.round, s.kind, s.shard));
            spans.extend(host);
        }

        // Merge: one boot registry per image + every device's registry
        // (including telemetry retired by mid-run resets and host-side
        // fault counters) + the verifier's reason counters and latency
        // histograms. Histograms never enter the digest blob below.
        let mut ver = verifier.into_inner().unwrap();
        for id in 0..n {
            ver.metrics
                .observe("fleet.retries_per_device", u64::from(ver.retries_total[id]));
        }
        let campaign = campaign.into_inner().unwrap();
        let mut merged = boot_report;
        merged.merge(&ver.metrics.snapshot());
        if let Some(c) = &campaign {
            merged.merge(&c.metrics.snapshot());
        }
        let mut total_instret = 0u64;
        let mut total_cycles = 0u64;
        let mut digest_blob = Vec::new();
        let mut health = Vec::with_capacity(n);
        let mut flight_dumps: Vec<FlightDump> = Vec::new();
        // Host-side memory footprint: summed here at merge, kept OUT of
        // the digest blob (dense and sparse backing must digest alike).
        let mut resident_bytes = 0u64;
        let mut addressable_bytes = 0u64;
        let mut code_cache_bytes = 0u64;
        for dev in devices.iter_mut() {
            resident_bytes += dev.platform.resident_bytes();
            addressable_bytes += dev.platform.addressable_bytes();
            code_cache_bytes += dev.platform.code_cache_bytes();
            let r = dev.platform.machine.metrics_report();
            merged.merge(&r);
            merged.merge(&dev.accum);
            merged.merge(&dev.local.snapshot());
            total_instret += dev.instret_done + dev.platform.machine.instret - dev.instret_at_fork;
            total_cycles += dev.cycles_done + dev.platform.machine.cycles;
            digest_blob.extend_from_slice(&state_digest(&mut dev.platform));
            health.push(dev.health);
            spans.append(&mut dev.spans);
            flight_dumps.append(&mut dev.dumps);
        }
        spans.append(&mut ver.spans);
        let ok = ver.ok;
        let fail = ver.fail;
        digest_blob.extend_from_slice(&ok.to_le_bytes());
        digest_blob.extend_from_slice(&fail.to_le_bytes());
        for (k, v) in &merged.counters {
            digest_blob.extend_from_slice(k.as_bytes());
            digest_blob.extend_from_slice(&v.to_le_bytes());
        }
        for (name, cycles) in &merged.attribution {
            digest_blob.extend_from_slice(name.as_bytes());
            digest_blob.extend_from_slice(&cycles.to_le_bytes());
        }
        // Health only enters the digest under an active fault plan, so
        // honest runs stay byte-identical to the pre-chaos engine.
        if chaos_on {
            for h in &health {
                digest_blob.extend_from_slice(&h.digest_bytes());
            }
        }
        // Campaign state likewise only enters the digest when a
        // campaign is configured, so non-campaign runs keep their
        // pre-campaign digests.
        if let Some(c) = &campaign {
            for id in 0..n {
                digest_blob.extend_from_slice(&c.digest_bytes(id));
            }
        }

        if trace.spans_on() {
            spans.push(SpanRecord {
                shard: 0,
                device: None,
                round: cfg.rounds,
                kind: SpanKind::Merge,
                start_cycle: m0,
                end_cycle: t0.elapsed().as_nanos() as u64,
            });
        }

        FleetReport {
            devices: n,
            workers: nw,
            rounds: cfg.rounds,
            quantum: cfg.quantum,
            seed: cfg.seed,
            workload: cfg.workload.clone(),
            trace_level: trace,
            chaos: chaos_on,
            campaign: campaign_on,
            campaign_states: campaign.map(|c| c.states).unwrap_or_default(),
            total_instret,
            total_cycles,
            attest_ok: ok,
            attest_fail: fail,
            health,
            spans,
            flight_dumps,
            merged,
            fork_us_per_device,
            resident_bytes,
            addressable_bytes,
            code_cache_bytes,
            dense_mem: cfg.dense_mem,
            private_code: cfg.private_code,
            digest: sha256(&digest_blob),
        }
    }
}

/// Phase-A work for one device in one round: release matured delayed
/// responses, answer the pending challenge (subject to message faults),
/// then execute the quantum (subject to state faults).
fn step_device(
    dev: &mut DeviceSim,
    round: u64,
    fault: Option<RoundFault>,
    quantum: u64,
    fault_regions: &[(u32, u32)],
    inbox: &Mutex<Option<(u64, Challenge)>>,
    trace: TraceLevel,
) {
    let collect = trace.spans_on();
    // Delayed traffic matures at this round's boundary; it precedes any
    // response produced this round (it is older).
    if !dev.delayed.is_empty() {
        let mut kept = Vec::with_capacity(dev.delayed.len());
        for (deliver, ch_round, resp) in dev.delayed.drain(..) {
            if deliver <= round {
                dev.outbox.push((ch_round, resp));
            } else {
                kept.push((deliver, ch_round, resp));
            }
        }
        dev.delayed = kept;
    }

    if let Some((ch_round, ch)) = inbox.lock().unwrap().take() {
        dev.note(collect, SpanKind::Challenge, round, ch_round, ch_round);
        match fault {
            Some(RoundFault::DropResponse) => {
                dev.local.inc("chaos.response_dropped");
                dev.note(collect, SpanKind::RespDrop, round, round, round);
            }
            Some(RoundFault::CorruptResponse { bit }) => {
                if let Ok(mut resp) = attest::respond(&mut dev.platform, &ch) {
                    resp.tag[usize::from(bit >> 3)] ^= 1 << (bit & 7);
                    dev.outbox.push((ch_round, resp));
                    dev.local.inc("chaos.response_corrupted");
                    dev.note(collect, SpanKind::RespCorrupt, round, round, round);
                }
            }
            Some(RoundFault::DelayResponse { rounds }) => {
                if let Ok(resp) = attest::respond(&mut dev.platform, &ch) {
                    dev.delayed.push((round + rounds, ch_round, resp));
                    dev.local.inc("chaos.response_delayed");
                    dev.note(collect, SpanKind::RespDelay, round, round, round + rounds);
                }
            }
            _ => {
                if let Ok(resp) = attest::respond(&mut dev.platform, &ch) {
                    dev.outbox.push((ch_round, resp));
                    dev.note(collect, SpanKind::Respond, round, round, round);
                }
            }
        }
    }

    match fault {
        Some(RoundFault::BitFlip { select, bit }) if !fault_regions.is_empty() => {
            let (base, size) = fault_regions[(select % fault_regions.len() as u64) as usize];
            let addr = base + ((select >> 16) % u64::from(size)) as u32;
            dev.platform
                .machine
                .sys
                .bus
                .inject_bit_flip(addr, bit)
                .expect("fault regions are mapped RAM");
            dev.local.inc("chaos.bit_flips");
            dev.note(collect, SpanKind::BitFlip, round, round, round);
            run_quantum_with_spans(dev, trace, round, quantum);
        }
        Some(RoundFault::CrashReset { at }) => {
            let crash_step = if quantum == 0 { 0 } else { at % quantum };
            let c0 = dev.platform.machine.cycles;
            dev.platform.run(crash_step);
            // The crash-reset span covers the pre-crash partial quantum;
            // the black box is captured *before* the warm reset clears
            // the telemetry it snapshots.
            dev.note(
                collect,
                SpanKind::CrashReset,
                round,
                c0,
                dev.platform.machine.cycles,
            );
            let dump = dev.capture_dump(round, "crash_reset");
            dev.dumps.push(dump);
            // A warm reset drops captured telemetry and restarts the
            // cycle/instret counters; `warm_reset` retires both first so
            // fleet aggregates still cover the pre-crash work.
            dev.warm_reset();
            dev.local.inc("chaos.crash_resets");
            run_quantum_with_spans(dev, trace, round, quantum - crash_step);
        }
        _ => {
            run_quantum_with_spans(dev, trace, round, quantum);
        }
    }
}

/// Runs one execution quantum on a device and records its `Quantum`
/// span — plus a `BlockExec` span over the same cycle window when any
/// instructions retired through the superblock engine, so traces show
/// which quanta ran block-compiled.
fn run_quantum_with_spans(dev: &mut DeviceSim, trace: TraceLevel, round: u64, steps: u64) {
    let c0 = dev.platform.machine.cycles;
    let b0 = dev.platform.machine.sys.block_stats().instret;
    dev.platform.run(steps);
    let c1 = dev.platform.machine.cycles;
    dev.note(trace.full_on(), SpanKind::Quantum, round, c0, c1);
    let b1 = dev.platform.machine.sys.block_stats().instret;
    if b1 > b0 {
        dev.note(trace.full_on(), SpanKind::BlockExec, round, c0, c1);
    }
}

/// Reads the reference measurements (trustlet-table order) the verifier
/// expects every healthy device to report.
fn expected_measurements(master: &mut Platform) -> Result<Vec<[u8; 32]>, TrustliteError> {
    let mut ordered: Vec<(u32, String)> = master
        .plans
        .iter()
        .map(|(n, p)| (p.tt_index, n.clone()))
        .collect();
    ordered.sort();
    ordered
        .into_iter()
        .map(|(_, name)| master.measurement(&name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::FailReason;

    #[test]
    fn derived_identities_are_distinct_and_stable() {
        assert_eq!(device_key(1, 0), device_key(1, 0));
        assert_ne!(device_key(1, 0), device_key(1, 1));
        assert_ne!(device_key(1, 0), device_key(2, 0));
        assert_ne!(device_rng_seed(1, 0), device_rng_seed(1, 1));
        assert_ne!(challenge_nonce(1, 0, 0), challenge_nonce(1, 0, 1));
    }

    #[test]
    fn fork_boot_runs_loader_once() {
        let fleet = Fleet::boot(FleetConfig {
            devices: 5,
            ..FleetConfig::default()
        })
        .expect("boot");
        assert_eq!(fleet.devices.len(), 5);
        assert_eq!(fleet.boot_report.counters["loader.runs"], 1);
        let report = fleet.run();
        // Forked devices contribute no loader runs of their own.
        assert_eq!(report.merged.counters["loader.runs"], 1);
        assert!(report.total_instret > 0);
    }

    #[test]
    fn attestation_fabric_accepts_honest_devices() {
        let report = Fleet::boot(FleetConfig {
            devices: 4,
            rounds: 4,
            attest_every: 2,
            ..FleetConfig::default()
        })
        .expect("boot")
        .run();
        assert!(report.attest_ok > 0, "some challenges must round-trip");
        assert_eq!(report.attest_fail, 0, "honest devices never fail");
        assert!(report.health.iter().all(|h| *h == DeviceHealth::Healthy));
    }

    #[test]
    fn worker_count_does_not_change_aggregates() {
        let run = |workers| {
            Fleet::boot(FleetConfig {
                devices: 6,
                workers,
                rounds: 3,
                quantum: 2_000,
                ..FleetConfig::default()
            })
            .expect("boot")
            .run()
        };
        let a = run(1);
        let b = run(3);
        assert_eq!(
            a.digest, b.digest,
            "aggregate digest must not depend on sharding"
        );
        assert_eq!(a.total_instret, b.total_instret);
        assert_eq!(a.merged.counters, b.merged.counters);
    }

    #[test]
    fn degenerate_configs_are_named_errors() {
        let err = Fleet::boot(FleetConfig {
            devices: 0,
            ..FleetConfig::default()
        })
        .err()
        .expect("devices == 0 must not boot");
        assert_eq!(err, TrustliteError::DegenerateFleet { what: "devices" });
        assert!(err.to_string().contains("`devices` must be nonzero"));
        let err = Fleet::boot(FleetConfig {
            rounds: 0,
            ..FleetConfig::default()
        })
        .err()
        .expect("rounds == 0 must not boot");
        assert_eq!(err, TrustliteError::DegenerateFleet { what: "rounds" });
    }

    /// ROADMAP "Malicious-device round": a device with a tampered
    /// measurement is rejected on the measurement, a device with a
    /// wrong key on the tag, and each rejection lands in its own
    /// reason counter.
    #[test]
    fn malicious_devices_are_rejected_with_the_right_reason() {
        let boot = |role_seed: u64| {
            // Find a chaos seed assignment by brute force is fragile;
            // instead build an honest fleet and tamper by hand.
            let mut fleet = Fleet::boot(FleetConfig {
                devices: 3,
                rounds: 4,
                quantum: 1_000,
                attest_every: 1,
                // One retry (at a 1-round backoff), then quarantine:
                // malicious devices are written off by round 1.
                max_retries: 1,
                seed: role_seed,
                ..FleetConfig::default()
            })
            .expect("boot");
            // Device 1: tampered measurement. Device 2: wrong key.
            let name = fleet.devices[1]
                .platform
                .plans
                .keys()
                .next()
                .expect("workload has trustlets")
                .clone();
            fleet.devices[1]
                .platform
                .tamper_measurement(&name)
                .expect("tamper");
            fleet.devices[2]
                .platform
                .machine
                .sys
                .bus
                .device_mut::<KeyStore>("keystore")
                .unwrap()
                .corrupt(0, 0xff)
                .unwrap();
            fleet
        };
        let report = boot(77).run();
        let c = &report.merged;
        assert!(report.attest_ok > 0, "the honest device still passes");
        assert!(c.counters["attest.reject.bad_measurement"] > 0);
        assert!(c.counters["attest.reject.bad_tag"] > 0);
        assert_eq!(
            c.sum_prefix("attest.reject."),
            report.attest_fail,
            "reason counters must sum to attest_fail"
        );
        assert_eq!(report.health[0], DeviceHealth::Healthy);
        assert!(matches!(
            report.health[1],
            DeviceHealth::Quarantined {
                reason: FailReason::BadMeasurement,
                ..
            }
        ));
        assert!(matches!(
            report.health[2],
            DeviceHealth::Quarantined {
                reason: FailReason::BadTag,
                ..
            }
        ));
    }

    #[test]
    fn disabled_chaos_is_byte_identical_to_no_chaos() {
        let base = FleetConfig {
            devices: 5,
            rounds: 3,
            quantum: 1_500,
            ..FleetConfig::default()
        };
        let off = Fleet::boot(base.clone()).expect("boot").run();
        // A nonzero chaos *seed* with zero rates must not perturb
        // anything either: rates gate every draw.
        let zeroed = Fleet::boot(FleetConfig {
            chaos: ChaosConfig {
                seed: 0xdead_beef,
                fault_rate_pm: 0,
                malicious_pm: 0,
            },
            ..base
        })
        .expect("boot")
        .run();
        assert_eq!(off.digest, zeroed.digest);
        assert_eq!(off.merged.counters, zeroed.merged.counters);
    }

    #[test]
    fn chaos_run_is_reproducible_and_worker_invariant() {
        let cfg = |workers| FleetConfig {
            devices: 6,
            workers,
            rounds: 5,
            quantum: 1_200,
            attest_every: 1,
            chaos: ChaosConfig {
                seed: 9,
                fault_rate_pm: 700,
                malicious_pm: 300,
            },
            ..FleetConfig::default()
        };
        let a = Fleet::boot(cfg(1)).expect("boot").run();
        let b = Fleet::boot(cfg(4)).expect("boot").run();
        let c = Fleet::boot(cfg(1)).expect("boot").run();
        assert_eq!(a.digest, b.digest, "fault plan must be worker-invariant");
        assert_eq!(a.digest, c.digest, "fault plan must be repeatable");
        assert_eq!(a.merged.counters, b.merged.counters);
        assert_eq!(a.health, b.health);
        assert!(
            a.merged.sum_prefix("chaos.") > 0,
            "a 700‰ plan must actually inject"
        );
        assert_eq!(
            a.merged.sum_prefix("attest.reject."),
            a.attest_fail,
            "reason counters must sum to attest_fail"
        );
    }

    /// ISSUE PR 10: an honest fleet converges — every device completes
    /// the campaign behind the attested re-measurement gate, and every
    /// campaign reboot is attributed in `loader.runs`.
    #[test]
    fn campaign_converges_on_an_honest_fleet() {
        let report = Fleet::boot(FleetConfig {
            devices: 8,
            rounds: 12,
            quantum: 1_000,
            attest_every: 2,
            campaign: Some(CampaignConfig::default()),
            ..FleetConfig::default()
        })
        .expect("boot")
        .run();
        assert_eq!(
            report.campaign_completed(),
            8,
            "{:?}",
            report.campaign_states
        );
        assert_eq!(report.campaign_rolled_back(), 0);
        assert_eq!(report.campaign_skipped(), 0);
        let c = |n: &str| report.merged.counters.get(n).copied().unwrap_or(0);
        assert_eq!(c("campaign.staged"), 8);
        assert_eq!(c("campaign.confirmed"), 8);
        assert_eq!(
            c("loader.runs"),
            1 + c("campaign.reboots") + c("chaos.crash_resets"),
            "every campaign reboot re-runs the Secure Loader exactly once"
        );
        // The attestation fabric keeps accepting across the slot
        // switch: devices end the run healthy.
        assert!(report.health.iter().all(|h| *h == DeviceHealth::Healthy));
        assert!(report.attest_ok > 0);
    }

    /// A campaign under chaos still yields worker-invariant,
    /// reproducible aggregates, and every device is accounted for.
    #[test]
    fn campaign_under_chaos_is_worker_invariant_and_total() {
        let cfg = |workers| FleetConfig {
            devices: 8,
            workers,
            rounds: 14,
            quantum: 1_000,
            attest_every: 2,
            max_retries: u32::MAX,
            chaos: ChaosConfig {
                seed: 11,
                fault_rate_pm: 500,
                malicious_pm: 0,
            },
            campaign: Some(CampaignConfig {
                failure_budget: 8,
                ..CampaignConfig::default()
            }),
            ..FleetConfig::default()
        };
        let a = Fleet::boot(cfg(1)).expect("boot").run();
        let b = Fleet::boot(cfg(4)).expect("boot").run();
        assert_eq!(a.digest, b.digest, "campaign must be worker-invariant");
        assert_eq!(a.campaign_states, b.campaign_states);
        assert_eq!(a.merged.counters, b.merged.counters);
        assert_eq!(
            a.campaign_completed()
                + a.campaign_rolled_back()
                + a.campaign_quarantined()
                + a.campaign_skipped(),
            a.devices,
            "every device lands in exactly one campaign bucket"
        );
        let c = |n: &str| a.merged.counters.get(n).copied().unwrap_or(0);
        assert_eq!(
            c("loader.runs"),
            1 + c("campaign.reboots") + c("chaos.crash_resets"),
            "loader runs must attribute exactly under campaign + chaos"
        );
    }

    /// A campaign config must not perturb a run's totals relative to
    /// its own reruns, and a run *without* a campaign keeps the digest
    /// it had before campaigns existed (conditional digest inclusion).
    #[test]
    fn campaign_off_digests_match_and_on_is_repeatable() {
        let base = FleetConfig {
            devices: 4,
            rounds: 10,
            quantum: 800,
            ..FleetConfig::default()
        };
        let off1 = Fleet::boot(base.clone()).expect("boot").run();
        let off2 = Fleet::boot(base.clone()).expect("boot").run();
        assert_eq!(off1.digest, off2.digest);
        assert!(off1.campaign_states.is_empty());
        let on = |_| {
            Fleet::boot(FleetConfig {
                campaign: Some(CampaignConfig::default()),
                ..base.clone()
            })
            .expect("boot")
            .run()
        };
        let a = on(());
        let b = on(());
        assert_eq!(a.digest, b.digest, "campaign runs are reproducible");
        assert_ne!(
            a.digest, off1.digest,
            "the campaign visibly changes device trajectories"
        );
    }

    #[test]
    fn crash_reset_reruns_the_loader_and_keeps_totals() {
        // Full-rate faults over enough cells guarantees crash resets.
        let report = Fleet::boot(FleetConfig {
            devices: 4,
            rounds: 6,
            quantum: 1_000,
            attest_every: 0,
            max_retries: u32::MAX, // nobody quarantines: every cell faults
            chaos: ChaosConfig {
                seed: 3,
                fault_rate_pm: 1000,
                malicious_pm: 0,
            },
            ..FleetConfig::default()
        })
        .expect("boot")
        .run();
        let resets = report.merged.counters["chaos.crash_resets"];
        assert!(resets > 0, "a 1000‰ plan over 24 cells must crash someone");
        assert_eq!(
            report.merged.counters["loader.runs"],
            1 + resets,
            "each injected reset re-runs the Secure Loader exactly once"
        );
    }
}
