//! The parallel fleet engine.
//!
//! TrustLite targets *fleets* of tiny embedded devices; the protocols
//! built on it (remote attestation, trustlet provisioning) are only
//! interesting when a verifier talks to many devices at once — and only
//! trustworthy when parts of that fleet misbehave. This crate scales the
//! single-`Platform` simulator out and stress-tests it:
//!
//! * **snapshot/fork boot** — the Secure Loader and trustlet staging run
//!   *once per image*; every device is an O(memcpy) fork of the booted
//!   master with per-device divergence (device id, RNG seed, platform
//!   key) applied afterwards ([`Fleet::boot`]);
//! * **sharded execution** — devices are partitioned over `std::thread`
//!   workers with a work-stealing run queue and quantum-based stepping;
//!   a cross-device message fabric carries verifier↔device attestation
//!   traffic with delivery pinned to quantum boundaries, so any run is
//!   reproducible from `(image, seed, nworkers)` and aggregates are
//!   bit-identical at 1 or 16 workers ([`Fleet::run`]);
//! * **deterministic fault injection** — a `trustlite-chaos`
//!   [`FaultPlan`](trustlite_chaos::FaultPlan), pure in
//!   `(fleet_seed, device, round)`, injects RAM bit-flips, tampered
//!   measurements, wrong keys, dropped/corrupted/delayed responses and
//!   mid-round crash/warm-reset (Secure Loader re-entry) without
//!   breaking run reproducibility;
//! * **resilient attestation fabric** — the verifier retries failing
//!   devices with round-counted exponential backoff, quarantines
//!   devices that exhaust their retry budget (excluding them from
//!   stepping without stalling the barrier) and reports per-device
//!   [`DeviceHealth`] plus `attest.reject.*` reason counters;
//! * **merged observability** — per-device `trustlite-obs` registries
//!   merge into one fleet report in which counters and cycle attribution
//!   still sum exactly, warm resets included ([`FleetReport`]);
//! * **observation without perturbation** — a [`TraceLevel`]-gated span
//!   trace (attestation round trips, shard phases on the host clock),
//!   always-on deterministic latency histograms (`fleet.*`) and a
//!   per-device flight recorder dumped on quarantine or crash-reset;
//!   state digests and merged metrics are byte-identical at every trace
//!   level and worker count ([`observatory`]);
//! * **firmware-update campaigns** — staged rollout of an A/B-slot
//!   update across the fleet: canary wave then ramp
//!   ([`CampaignConfig::canary_pct`]), per-device reboot into the
//!   staged slot, an *attested re-measurement* commit gate, forced
//!   rollback to the always-bootable PROM slot when the gate keeps
//!   failing, and a rollback circuit breaker
//!   ([`CampaignConfig::failure_budget`]); orchestration runs in the
//!   deterministic phase-B path, so campaign outcomes are bit-identical
//!   at any worker count ([`campaign`]).

pub mod campaign;
pub mod engine;
pub mod observatory;
pub mod report;
pub mod resilience;

pub use campaign::{CampaignConfig, UpdateState};
pub use engine::{DeviceSim, Fleet, FleetConfig};
pub use observatory::{chrome_trace, trace_jsonl, TraceLevel};
pub use report::{state_digest, FleetReport};
pub use resilience::{DeviceHealth, FailReason};
