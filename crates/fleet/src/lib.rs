//! The parallel fleet engine.
//!
//! TrustLite targets *fleets* of tiny embedded devices; the protocols
//! built on it (remote attestation, trustlet provisioning) are only
//! interesting when a verifier talks to many devices at once. This crate
//! scales the single-`Platform` simulator out:
//!
//! * **snapshot/fork boot** — the Secure Loader and trustlet staging run
//!   *once per image*; every device is an O(memcpy) fork of the booted
//!   master with per-device divergence (device id, RNG seed, platform
//!   key) applied afterwards ([`Fleet::boot`]);
//! * **sharded execution** — devices are partitioned over `std::thread`
//!   workers with a work-stealing run queue and quantum-based stepping;
//!   a cross-device message fabric carries verifier↔device attestation
//!   traffic with delivery pinned to quantum boundaries, so any run is
//!   reproducible from `(image, seed, nworkers)` and aggregates are
//!   bit-identical at 1 or 16 workers ([`Fleet::run`]);
//! * **merged observability** — per-device `trustlite-obs` registries
//!   merge into one fleet report in which counters and cycle attribution
//!   still sum exactly ([`FleetReport`]).

pub mod engine;
pub mod report;

pub use engine::{DeviceSim, Fleet, FleetConfig};
pub use report::{state_digest, FleetReport};
