//! The fleet observatory: trace levels and trace writers.
//!
//! Observation must not perturb: state digests and merged metrics are
//! byte-identical at every [`TraceLevel`] and worker count. The engine
//! achieves that by construction —
//!
//! * everything that feeds the digest (counters, attribution, health) is
//!   recorded unconditionally, exactly as before;
//! * everything the trace level gates (span buffers, host-clock phase
//!   timings) lives in side buffers the digest never reads;
//! * everything deterministic but new (latency histograms, the flight
//!   recorder) is always on, fed only by `(seed, device, round)`-pure
//!   inputs, and excluded from the digest blob.
//!
//! The writers here render a finished [`FleetReport`] into the mixed
//! JSONL trace format of [`trustlite_obs::trace`] (`tlfleet
//! --trace-jsonl`, consumed by `tlstats`) and into the Chrome
//! `trace_event` JSON array (`tlfleet --chrome-trace`, one lane per
//! engine shard plus one lane per device grouped by home shard).

use std::fmt::Write as _;

use trustlite_obs::trace::{HistLine, TraceMeta};
use trustlite_obs::SpanRecord;

use crate::report::FleetReport;

/// How much of the fleet's activity is collected into the trace buffers.
/// Orthogonal to the per-device [`trustlite_obs::ObsLevel`]: this gates
/// *fleet* spans, that gates *device* events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// No span collection (the flight recorder and latency histograms
    /// stay on — they are deterministic and cheap by design).
    Off,
    /// Attestation-fabric and fault spans plus host-clock shard phases.
    Spans,
    /// Everything, including one `quantum` span per device per round.
    Full,
}

impl TraceLevel {
    /// Stable CLI/wire name.
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Spans => "spans",
            TraceLevel::Full => "full",
        }
    }

    /// Parses a CLI/wire name.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        Some(match s {
            "off" => TraceLevel::Off,
            "spans" => TraceLevel::Spans,
            "full" => TraceLevel::Full,
            _ => return None,
        })
    }

    /// True if fleet spans are collected.
    #[inline]
    pub fn spans_on(self) -> bool {
        self >= TraceLevel::Spans
    }

    /// True if per-round quantum spans are collected too.
    #[inline]
    pub fn full_on(self) -> bool {
        self >= TraceLevel::Full
    }
}

/// Renders a fleet report as a mixed JSONL trace: one `meta` line, every
/// collected span, one `hist` line per merged histogram, one `flight`
/// line per captured dump. Parseable line-by-line with
/// [`trustlite_obs::trace::parse_trace_line`].
pub fn trace_jsonl(report: &FleetReport) -> String {
    let mut out = String::new();
    let meta = TraceMeta {
        devices: report.devices as u64,
        workers: report.workers as u64,
        rounds: report.rounds,
        quantum: report.quantum,
        seed: report.seed,
        workload: report.workload.clone(),
        trace_level: report.trace_level.name().to_string(),
        chaos: report.chaos,
    };
    out.push_str(&meta.to_json());
    out.push('\n');
    for span in &report.spans {
        out.push_str(&span.to_json());
        out.push('\n');
    }
    for (name, summary) in &report.merged.histograms {
        let line = HistLine {
            name: name.clone(),
            summary: summary.clone(),
        };
        out.push_str(&line.to_json());
        out.push('\n');
    }
    for dump in &report.flight_dumps {
        out.push_str(&dump.to_json());
        out.push('\n');
    }
    out
}

/// Timeline placement of one span in the Chrome trace, in microseconds.
/// Host-clock spans map 1 ns → 0.001 µs on the engine lanes; device
/// spans map their own deterministic clocks (rounds scaled by the
/// quantum, or simulated cycles) onto the device lanes, so lanes are
/// internally consistent even though clocks differ across lanes.
fn chrome_ts(span: &SpanRecord, quantum: u64) -> (f64, f64) {
    if span.kind.is_host_clock() {
        (
            span.start_cycle as f64 / 1_000.0,
            span.duration() as f64 / 1_000.0,
        )
    } else if matches!(
        span.kind,
        trustlite_obs::SpanKind::Quantum
            | trustlite_obs::SpanKind::CrashReset
            | trustlite_obs::SpanKind::BlockExec
    ) {
        (span.start_cycle as f64, span.duration() as f64)
    } else {
        // Round-unit spans and marks: one round spans one quantum.
        (
            (span.start_cycle * quantum) as f64,
            (span.duration() * quantum) as f64,
        )
    }
}

fn push_json_escaped(out: &mut String, s: &str) {
    trustlite_obs::json::write_str(out, s);
}

/// Renders the collected spans as a Chrome `trace_event` JSON array:
/// `pid 0` holds one lane per engine shard (fork/execute/verify/merge,
/// host wall time); `pid shard+1` holds one lane per device, grouped by
/// home shard. Load the file at `chrome://tracing` or in Perfetto.
pub fn chrome_trace(report: &FleetReport) -> String {
    let mut out = String::from("[");
    let mut first = true;
    let mut emit = |line: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    emit(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"fleet engine\"}}"
            .to_string(),
    );
    let mut shards_seen: Vec<u32> = report
        .spans
        .iter()
        .filter(|s| !s.kind.is_host_clock())
        .map(|s| s.shard)
        .collect();
    shards_seen.sort_unstable();
    shards_seen.dedup();
    for shard in shards_seen {
        let mut line = String::from("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
        let _ = write!(line, "{},\"args\":{{\"name\":", shard + 1);
        push_json_escaped(&mut line, &format!("shard {shard} devices"));
        line.push_str("}}");
        emit(line);
    }
    for span in &report.spans {
        let (ts, dur) = chrome_ts(span, report.quantum.max(1));
        let (pid, tid) = if span.kind.is_host_clock() {
            (0, span.shard)
        } else {
            (span.shard + 1, span.device.unwrap_or(span.shard))
        };
        let mut line = String::from("{\"name\":");
        push_json_escaped(&mut line, span.kind.name());
        line.push_str(",\"cat\":\"fleet\"");
        if dur == 0.0 && !span.kind.is_host_clock() {
            let _ = write!(line, ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts:.3}");
        } else {
            let _ = write!(line, ",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3}");
        }
        let _ = write!(line, ",\"pid\":{pid},\"tid\":{tid}");
        let _ = write!(line, ",\"args\":{{\"round\":{}", span.round);
        if let Some(d) = span.device {
            let _ = write!(line, ",\"device\":{d}");
        }
        line.push_str("}}");
        emit(line);
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_levels_parse_and_order() {
        for level in [TraceLevel::Off, TraceLevel::Spans, TraceLevel::Full] {
            assert_eq!(TraceLevel::parse(level.name()), Some(level));
        }
        assert_eq!(TraceLevel::parse("verbose"), None);
        assert!(!TraceLevel::Off.spans_on());
        assert!(TraceLevel::Spans.spans_on() && !TraceLevel::Spans.full_on());
        assert!(TraceLevel::Full.full_on());
    }

    #[test]
    fn chrome_ts_maps_each_clock() {
        let host = SpanRecord {
            shard: 0,
            device: None,
            round: 0,
            kind: trustlite_obs::SpanKind::Execute,
            start_cycle: 2_000,
            end_cycle: 5_000,
        };
        assert_eq!(chrome_ts(&host, 100), (2.0, 3.0));
        let rtt = SpanRecord {
            shard: 0,
            device: Some(1),
            round: 1,
            kind: trustlite_obs::SpanKind::AttestRtt,
            start_cycle: 1,
            end_cycle: 3,
        };
        assert_eq!(chrome_ts(&rtt, 100), (100.0, 200.0));
        let q = SpanRecord {
            kind: trustlite_obs::SpanKind::Quantum,
            start_cycle: 40,
            end_cycle: 90,
            ..rtt
        };
        assert_eq!(chrome_ts(&q, 100), (40.0, 50.0));
    }
}
