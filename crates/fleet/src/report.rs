//! The merged fleet report and state digesting.

use trustlite::Platform;
use trustlite_crypto::sha256;
use trustlite_obs::{FlightDump, MetricsReport, SpanRecord};

use crate::campaign::UpdateState;
use crate::observatory::TraceLevel;
use crate::resilience::DeviceHealth;

/// Digest of one device's architectural state: counters, register file
/// and the first pages of SRAM (the same footprint the workspace
/// determinism tests use). Fleet-level digests concatenate these in
/// device order, so two runs agree iff every device's trajectory agrees.
pub fn state_digest(p: &mut Platform) -> [u8; 32] {
    let mut blob = Vec::new();
    blob.extend_from_slice(&p.machine.cycles.to_le_bytes());
    blob.extend_from_slice(&p.machine.instret.to_le_bytes());
    for g in p.machine.regs.gprs {
        blob.extend_from_slice(&g.to_le_bytes());
    }
    blob.extend_from_slice(&p.machine.regs.sp.to_le_bytes());
    blob.extend_from_slice(&p.machine.regs.ip.to_le_bytes());
    let sram = p
        .machine
        .sys
        .bus
        .read_bytes(trustlite_mem::map::SRAM_BASE, 0x4000)
        .expect("sram readable");
    blob.extend_from_slice(&sram);
    sha256(&blob)
}

/// What a fleet run produced, merged across all devices.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Device count.
    pub devices: usize,
    /// Worker-thread count actually used.
    pub workers: usize,
    /// Rounds executed.
    pub rounds: u64,
    /// Steps per device per round.
    pub quantum: u64,
    /// The fleet seed.
    pub seed: u64,
    /// The workload every device ran.
    pub workload: String,
    /// The span-collection level the run used. Observation never
    /// perturbs: `digest` and `merged` are byte-identical at every
    /// level.
    pub trace_level: TraceLevel,
    /// Whether a fault plan was active.
    pub chaos: bool,
    /// Whether an update campaign was configured.
    pub campaign: bool,
    /// Per-device campaign outcome (empty when no campaign ran).
    pub campaign_states: Vec<UpdateState>,
    /// Post-fork instructions retired, summed over devices.
    pub total_instret: u64,
    /// Simulated cycles, summed over devices.
    pub total_cycles: u64,
    /// Attestation responses the verifier accepted.
    pub attest_ok: u64,
    /// Attestation responses the verifier rejected (timeouts included);
    /// always equals the sum of the `attest.reject.*` counters in
    /// `merged`.
    pub attest_fail: u64,
    /// Per-device health at the end of the run (the verifier's view:
    /// healthy, retrying with a backoff, or quarantined with a reason
    /// and the round the decision was made in).
    pub health: Vec<DeviceHealth>,
    /// Collected trace spans (empty at [`TraceLevel::Off`]): fork/
    /// execute/verify/merge shard phases on the host clock, then device
    /// and verifier spans in deterministic phase-B order.
    pub spans: Vec<SpanRecord>,
    /// Flight-recorder dumps captured during the run — one per
    /// crash-reset and one per quarantine, at *every* trace level (the
    /// black box is always on).
    pub flight_dumps: Vec<FlightDump>,
    /// All telemetry registries merged: one boot registry per image plus
    /// every device's post-fork registry. Counters and cycle attribution
    /// sum exactly; `loader.runs` counts Secure Loader executions (one
    /// per image, however many devices were forked from it).
    pub merged: MetricsReport,
    /// Mean host microseconds spent forking+diverging one device
    /// (host-side timing; never part of `digest`).
    pub fork_us_per_device: f64,
    /// Host-side materialized bytes summed over all devices at the end
    /// of the run (sparse COW backing makes this a small fraction of
    /// `addressable_bytes`; dense backing makes them equal). Host-side
    /// diagnostics; never part of `digest`.
    pub resident_bytes: u64,
    /// Addressable bytes summed over all devices.
    pub addressable_bytes: u64,
    /// Host-side bytes backing the predecode/superblock code caches,
    /// summed over all devices with each `Arc`-shared chunk amortized
    /// over its sharers (so the sum reflects physical allocation, not
    /// per-device table size). Host-side diagnostics; never part of
    /// `digest`.
    pub code_cache_bytes: u64,
    /// Whether the run used dense (reference) memory backing.
    pub dense_mem: bool,
    /// Whether the run used private (reference, deep-copied) code
    /// caches instead of the default `Arc`-shared chunked tables.
    pub private_code: bool,
    /// Order-independent digest over every device's final architectural
    /// state plus the merged aggregates; bit-identical across worker
    /// counts.
    pub digest: [u8; 32],
}

impl FleetReport {
    /// The digest as lowercase hex.
    pub fn digest_hex(&self) -> String {
        self.digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Devices still healthy at the end of the run.
    pub fn healthy(&self) -> usize {
        self.health
            .iter()
            .filter(|h| **h == DeviceHealth::Healthy)
            .count()
    }

    /// Devices in a retry/backoff cycle at the end of the run.
    pub fn retrying(&self) -> usize {
        self.health
            .iter()
            .filter(|h| matches!(h, DeviceHealth::Retrying(_)))
            .count()
    }

    /// Devices quarantined during the run.
    pub fn quarantined(&self) -> usize {
        self.health.iter().filter(|h| h.is_quarantined()).count()
    }

    /// Devices whose update was confirmed behind the attested
    /// re-measurement gate.
    pub fn campaign_completed(&self) -> usize {
        self.campaign_states
            .iter()
            .filter(|s| **s == UpdateState::Confirmed)
            .count()
    }

    /// Devices that fell back to slot A (loader rejection or forced
    /// rollback).
    pub fn campaign_rolled_back(&self) -> usize {
        self.campaign_states
            .iter()
            .filter(|s| **s == UpdateState::RolledBack)
            .count()
    }

    /// Devices quarantined before reaching a terminal campaign state
    /// (disjoint from completed/rolled-back: a device that confirmed
    /// and *then* quarantined counts as completed).
    pub fn campaign_quarantined(&self) -> usize {
        self.campaign_states
            .iter()
            .zip(&self.health)
            .filter(|(s, h)| !s.is_terminal() && h.is_quarantined())
            .count()
    }

    /// Devices the campaign never resolved: not terminal, not
    /// quarantined — the rollout ran out of rounds or the circuit
    /// breaker stopped staging them.
    pub fn campaign_skipped(&self) -> usize {
        self.campaign_states
            .iter()
            .zip(&self.health)
            .filter(|(s, h)| !s.is_terminal() && !h.is_quarantined())
            .count()
    }

    /// The rounds quarantine decisions were made in (one entry per
    /// quarantined device; "rounds to detect" in the chaos sweep).
    pub fn quarantine_rounds(&self) -> Vec<u64> {
        self.health
            .iter()
            .filter_map(|h| match h {
                DeviceHealth::Quarantined { round, .. } => Some(*round),
                _ => None,
            })
            .collect()
    }

    /// Renders the report as JSON (selected merged counters only: the
    /// full registry has per-slot MPU detail that would swamp the file).
    pub fn to_json(&self) -> String {
        let mut counters = String::new();
        for (k, v) in &self.merged.counters {
            if !counters.is_empty() {
                counters.push_str(", ");
            }
            counters.push_str(&format!("\"{k}\": {v}"));
        }
        let mut attribution = String::new();
        for (name, cycles) in &self.merged.attribution {
            if !attribution.is_empty() {
                attribution.push_str(", ");
            }
            attribution.push_str(&format!("\"{name}\": {cycles}"));
        }
        let mut health = String::new();
        for h in &self.health {
            if !health.is_empty() {
                health.push_str(", ");
            }
            health.push_str(&format!("\"{}\"", h.label()));
        }
        let mut campaign_states = String::new();
        for s in &self.campaign_states {
            if !campaign_states.is_empty() {
                campaign_states.push_str(", ");
            }
            campaign_states.push_str(&format!("\"{}\"", s.label()));
        }
        format!(
            "{{\n  \"devices\": {}, \"workers\": {}, \"rounds\": {}, \"quantum\": {},\n  \
             \"seed\": {}, \"workload\": \"{}\",\n  \
             \"trace_level\": \"{}\", \"chaos\": {}, \"spans\": {}, \"flight_dumps\": {},\n  \
             \"campaign\": {}, \"campaign_completed\": {}, \"campaign_rolled_back\": {},\n  \
             \"campaign_quarantined\": {}, \"campaign_skipped\": {},\n  \
             \"campaign_states\": [{}],\n  \
             \"dense_mem\": {}, \"private_code\": {}, \"fork_us_per_device\": {:.3},\n  \
             \"resident_bytes\": {}, \"addressable_bytes\": {}, \"code_cache_bytes\": {},\n  \
             \"total_instret\": {}, \"total_cycles\": {},\n  \
             \"attest_ok\": {}, \"attest_fail\": {},\n  \
             \"healthy\": {}, \"retrying\": {}, \"quarantined\": {},\n  \
             \"health\": [{}],\n  \
             \"digest\": \"{}\",\n  \
             \"counters\": {{{}}},\n  \
             \"attribution\": {{{}}}\n}}\n",
            self.devices,
            self.workers,
            self.rounds,
            self.quantum,
            self.seed,
            self.workload,
            self.trace_level.name(),
            self.chaos,
            self.spans.len(),
            self.flight_dumps.len(),
            self.campaign,
            self.campaign_completed(),
            self.campaign_rolled_back(),
            self.campaign_quarantined(),
            self.campaign_skipped(),
            campaign_states,
            self.dense_mem,
            self.private_code,
            self.fork_us_per_device,
            self.resident_bytes,
            self.addressable_bytes,
            self.code_cache_bytes,
            self.total_instret,
            self.total_cycles,
            self.attest_ok,
            self.attest_fail,
            self.healthy(),
            self.retrying(),
            self.quarantined(),
            health,
            self.digest_hex(),
            counters,
            attribution,
        )
    }

    /// One human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "{} devices x {} rounds x {} steps on {} workers: \
             {} instret, {} cycles, attest {}/{} ok, digest {}",
            self.devices,
            self.rounds,
            self.quantum,
            self.workers,
            self.total_instret,
            self.total_cycles,
            self.attest_ok,
            self.attest_ok + self.attest_fail,
            &self.digest_hex()[..16],
        )
    }

    /// One machine-greppable memory-footprint line (`memory: R resident
    /// / A addressable bytes (P%, sparse|dense), code cache C bytes
    /// (shared|private), fork F us/device`), used by the CLI and CI.
    /// Host-side only; never digested.
    pub fn memory_line(&self) -> String {
        let pct = if self.addressable_bytes > 0 {
            100.0 * self.resident_bytes as f64 / self.addressable_bytes as f64
        } else {
            0.0
        };
        format!(
            "memory: {} resident / {} addressable bytes ({:.1}%, {}), \
             code cache {} bytes ({}), fork {:.1} us/device",
            self.resident_bytes,
            self.addressable_bytes,
            pct,
            if self.dense_mem { "dense" } else { "sparse" },
            self.code_cache_bytes,
            if self.private_code {
                "private"
            } else {
                "shared"
            },
            self.fork_us_per_device,
        )
    }

    /// One machine-greppable campaign outcome line (`campaign: C
    /// completed, R rolled back, Q quarantined, S skipped of N`), used
    /// by the CLI, the campaign sweep and CI. Every device lands in
    /// exactly one of the four buckets.
    pub fn campaign_line(&self) -> String {
        format!(
            "campaign: {} completed, {} rolled back, {} quarantined, {} skipped of {}",
            self.campaign_completed(),
            self.campaign_rolled_back(),
            self.campaign_quarantined(),
            self.campaign_skipped(),
            self.campaign_states.len(),
        )
    }

    /// One machine-greppable line of fleet health (`health: H healthy,
    /// R retrying, Q quarantined`), used by the CLI and CI.
    pub fn health_line(&self) -> String {
        format!(
            "health: {} healthy, {} retrying, {} quarantined",
            self.healthy(),
            self.retrying(),
            self.quarantined()
        )
    }
}
