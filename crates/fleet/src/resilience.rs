//! Verifier-side resilience: bounded retry with exponential backoff,
//! timeouts, and quarantine.
//!
//! The fabric must degrade gracefully when devices misbehave: a failing
//! device is retried a bounded number of times (backoff counted in
//! *rounds*, never wall time, so the schedule is deterministic), then
//! quarantined — excluded from stepping and challenges — without ever
//! stalling the round barrier for healthy devices. Every rejection
//! increments exactly one `attest.reject.*` reason counter, so the
//! reason counters always sum to the fleet's `attest_fail`.

use trustlite::attest::{self, RejectReason};
use trustlite_obs::{MetricsRegistry, SpanKind, SpanRecord};

use crate::engine::{challenge_nonce, DeviceSim};
use crate::observatory::TraceLevel;

/// Why a response was rejected (or a device was given up on). Extends
/// [`RejectReason`] with the verifier-local timeout outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailReason {
    /// Reported measurements differ from the enrolment reference.
    BadMeasurement,
    /// Measurements match but the HMAC tag does not verify.
    BadTag,
    /// No response arrived within the timeout window.
    Timeout,
}

impl FailReason {
    /// The `attest.reject.*` counter this reason increments.
    pub fn counter_name(&self) -> &'static str {
        match self {
            FailReason::BadMeasurement => RejectReason::BadMeasurement.counter_name(),
            FailReason::BadTag => RejectReason::BadTag.counter_name(),
            FailReason::Timeout => "attest.reject.timeout",
        }
    }

    /// Short human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            FailReason::BadMeasurement => "bad_measurement",
            FailReason::BadTag => "bad_tag",
            FailReason::Timeout => "timeout",
        }
    }

    fn digest_code(&self) -> u8 {
        match self {
            FailReason::BadMeasurement => 1,
            FailReason::BadTag => 2,
            FailReason::Timeout => 3,
        }
    }

    /// The span mark a rejection for this reason emits.
    pub fn reject_kind(&self) -> SpanKind {
        match self {
            FailReason::BadMeasurement => SpanKind::RejectBadMeasurement,
            FailReason::BadTag => SpanKind::RejectBadTag,
            FailReason::Timeout => SpanKind::RejectTimeout,
        }
    }
}

impl From<RejectReason> for FailReason {
    fn from(r: RejectReason) -> FailReason {
        match r {
            RejectReason::BadMeasurement => FailReason::BadMeasurement,
            RejectReason::BadTag => FailReason::BadTag,
        }
    }
}

/// Per-device attestation health, as the verifier sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceHealth {
    /// Last attestation (if any) succeeded.
    Healthy,
    /// `n` consecutive failures; the verifier is backing off and will
    /// retry.
    Retrying(u32),
    /// Retries exhausted in `round`; the device no longer steps and is
    /// never challenged again.
    Quarantined {
        /// The failure that exhausted the retry budget.
        reason: FailReason,
        /// The round the quarantine decision was made in.
        round: u64,
    },
}

impl DeviceHealth {
    /// True once the device has been written off.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, DeviceHealth::Quarantined { .. })
    }

    /// Short human-readable label.
    pub fn label(&self) -> String {
        match self {
            DeviceHealth::Healthy => "healthy".to_string(),
            DeviceHealth::Retrying(n) => format!("retrying({n})"),
            DeviceHealth::Quarantined { reason, round } => {
                format!("quarantined({}, round {round})", reason.label())
            }
        }
    }

    /// Fixed-width digest encoding (only hashed when a fault plan is
    /// enabled, preserving byte-identical honest-run digests).
    pub(crate) fn digest_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        match self {
            DeviceHealth::Healthy => {}
            DeviceHealth::Retrying(n) => {
                out[0] = 1;
                out[2..6].copy_from_slice(&n.to_le_bytes());
            }
            DeviceHealth::Quarantined { reason, round } => {
                out[0] = 2;
                out[1] = reason.digest_code();
                out[8..16].copy_from_slice(&round.to_le_bytes());
            }
        }
        out
    }
}

/// Exponential-backoff cap: retries wait 1, 2, 4, then 8 rounds.
const MAX_BACKOFF_SHIFT: u32 = 3;

/// The verifier's per-run mutable state. Only worker 0 touches it, in
/// device order at round boundaries, so its evolution is independent of
/// the worker count.
pub(crate) struct VerifierState {
    max_retries: u32,
    timeout_rounds: u64,
    /// Fleet trace level: gates span *collection* only — histograms and
    /// the flight recorder are always on (deterministic by design).
    trace: TraceLevel,
    /// The round of the one in-flight challenge per device, if any.
    pending: Vec<Option<u64>>,
    /// Consecutive failures per device.
    retries: Vec<u32>,
    /// Earliest round a retry challenge may be issued per device.
    next_eligible: Vec<u64>,
    /// Cumulative failures per device over the whole run (the
    /// `fleet.retries_per_device` histogram source; unlike `retries`,
    /// never reset by a recovery).
    pub retries_total: Vec<u32>,
    /// Accepted responses.
    pub ok: u64,
    /// Rejected responses and timeouts (always equals the sum of the
    /// `attest.reject.*` counters in `metrics`).
    pub fail: u64,
    /// Verifier-side counters (`attest.reject.*`, `attest.retry`, ...)
    /// and the fleet latency histograms (`fleet.*`). Phase-B-only, so
    /// worker-count-invariant; histograms are excluded from the digest.
    pub metrics: MetricsRegistry,
    /// Verifier-scope trace spans (attestation round trips, rejections,
    /// backoff windows, quarantines). Empty at [`TraceLevel::Off`].
    pub spans: Vec<SpanRecord>,
}

impl VerifierState {
    pub fn new(
        devices: usize,
        max_retries: u32,
        timeout_rounds: u64,
        trace: TraceLevel,
    ) -> VerifierState {
        VerifierState {
            max_retries,
            timeout_rounds,
            trace,
            pending: vec![None; devices],
            retries: vec![0; devices],
            next_eligible: vec![0; devices],
            retries_total: vec![0; devices],
            ok: 0,
            fail: 0,
            metrics: MetricsRegistry::default(),
            spans: Vec::new(),
        }
    }

    /// Records one verifier-scope span into the device's always-on
    /// flight ring, and into the trace buffer when spans are collected.
    fn note_span(&mut self, dev: &mut DeviceSim, kind: SpanKind, round: u64, start: u64, end: u64) {
        let span = SpanRecord {
            shard: dev.shard,
            device: Some(dev.id),
            round,
            kind,
            start_cycle: start,
            end_cycle: end,
        };
        dev.flight.record(span.clone());
        if self.trace.spans_on() {
            self.spans.push(span);
        }
    }

    /// Records that a challenge for `round` was put in `id`'s inbox.
    pub fn note_challenge(&mut self, id: usize, round: u64) {
        self.pending[id] = Some(round);
    }

    /// Phase-B processing for one device at the `round` boundary: drain
    /// its responses (verifying each against the nonce of the round it
    /// answers), then check the in-flight challenge for timeout.
    pub fn round_boundary(
        &mut self,
        id: usize,
        dev: &mut DeviceSim,
        round: u64,
        fleet_seed: u64,
        expected: &[[u8; 32]],
    ) {
        let responses: Vec<_> = dev.outbox.drain(..).collect();
        for (ch_round, resp) in responses {
            let ch = attest::Challenge {
                nonce: challenge_nonce(fleet_seed, dev.id, ch_round),
            };
            let answers_pending = self.pending[id] == Some(ch_round);
            match attest::verify_detailed(&dev.key, &ch, &resp, expected) {
                Ok(()) => {
                    self.ok += 1;
                    if answers_pending {
                        self.pending[id] = None;
                        if self.retries[id] > 0 {
                            self.metrics.inc("attest.recovered");
                        }
                        self.retries[id] = 0;
                        dev.health = DeviceHealth::Healthy;
                        // Challenge-to-acceptance round trip: issued for
                        // `ch_round`, accepted at the `round` boundary.
                        self.metrics
                            .observe("fleet.response_latency_rounds", round - ch_round + 1);
                        self.note_span(dev, SpanKind::AttestRtt, ch_round, ch_round, round + 1);
                    } else {
                        // Valid but answering an abandoned (timed-out)
                        // challenge; it proves nothing fresh.
                        self.metrics.inc("attest.late_ok");
                    }
                }
                Err(reason) => {
                    self.record_failure(id, dev, FailReason::from(reason), round);
                    if answers_pending {
                        self.pending[id] = None;
                    }
                }
            }
        }
        if let Some(ch_round) = self.pending[id] {
            if round >= ch_round + self.timeout_rounds {
                self.pending[id] = None;
                self.record_failure(id, dev, FailReason::Timeout, round);
            }
        }
    }

    /// One failure: count the reason, bump the retry counter and either
    /// schedule a backed-off retry or quarantine.
    fn record_failure(&mut self, id: usize, dev: &mut DeviceSim, reason: FailReason, round: u64) {
        self.fail += 1;
        self.metrics.inc(reason.counter_name());
        self.note_span(dev, reason.reject_kind(), round, round, round);
        if dev.health.is_quarantined() {
            return; // late traffic from an already-written-off device
        }
        self.retries[id] += 1;
        self.retries_total[id] += 1;
        if self.retries[id] > self.max_retries {
            dev.health = DeviceHealth::Quarantined { reason, round };
            self.metrics.inc("attest.quarantined");
            // Rounds-to-detect: the write-off landed at the end of
            // `round`, i.e. after `round + 1` rounds of fleet time.
            self.metrics.observe("fleet.rounds_to_detect", round + 1);
            self.note_span(dev, SpanKind::Quarantine, round, round, round);
            let trigger = format!("quarantine({})", reason.label());
            let dump = dev.capture_dump(round, &trigger);
            dev.dumps.push(dump);
        } else {
            dev.health = DeviceHealth::Retrying(self.retries[id]);
            let backoff = 1u64 << (self.retries[id] - 1).min(MAX_BACKOFF_SHIFT);
            self.next_eligible[id] = round + backoff;
            self.metrics.inc("attest.retry");
            self.note_span(dev, SpanKind::Backoff, round, round, round + backoff);
        }
    }

    /// Whether the verifier should challenge `id` in round `next`.
    /// Healthy devices follow the id-staggered cadence; failing devices
    /// follow their backoff schedule; quarantined devices and devices
    /// with a challenge already in flight are never challenged.
    pub fn should_challenge(
        &self,
        id: usize,
        dev: &DeviceSim,
        next: u64,
        attest_every: u64,
        rounds: u64,
    ) -> bool {
        if next >= rounds || attest_every == 0 {
            return false;
        }
        if dev.health.is_quarantined() || self.pending[id].is_some() {
            return false;
        }
        if self.retries[id] > 0 {
            next >= self.next_eligible[id]
        } else {
            (id as u64 + next).is_multiple_of(attest_every)
        }
    }
}
