//! Fault-plan determinism properties: a chaos run — bit-flips, dropped
//! and corrupted responses, mid-round crash/warm-resets, malicious
//! device roles included — is a pure function of its configuration.
//! Sharding, repetition and host scheduling must not move a single bit
//! of the aggregate.

use proptest::prelude::*;
use trustlite_chaos::ChaosConfig;
use trustlite_fleet::{Fleet, FleetConfig};

fn run(cfg: &FleetConfig, workers: usize) -> trustlite_fleet::FleetReport {
    Fleet::boot(FleetConfig {
        workers,
        ..cfg.clone()
    })
    .expect("boot")
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn chaos_runs_are_pure_in_their_config(
        seed in 1u64..1_000_000,
        chaos_seed in 1u64..1_000_000,
        devices in 3usize..6,
        rounds in 2u64..5,
    ) {
        // Rates high enough that every fault kind — crash/reset
        // included, at 1000‰ roughly one fault per device-round, one in
        // five of them a mid-round reset — shows up in small fleets.
        let cfg = FleetConfig {
            devices,
            rounds,
            quantum: 1_500,
            seed,
            attest_every: 1,
            chaos: ChaosConfig {
                seed: chaos_seed,
                fault_rate_pm: 1_000,
                malicious_pm: 300,
            },
            ..FleetConfig::default()
        };
        let a = run(&cfg, 1);
        let b = run(&cfg, 3);
        let c = run(&cfg, 1);
        prop_assert_eq!(&a.digest, &b.digest, "1 vs 3 workers diverged");
        prop_assert_eq!(&a.digest, &c.digest, "repeat run diverged");
        prop_assert_eq!(&a.merged.counters, &b.merged.counters);
        prop_assert_eq!(&a.health, &b.health);
        prop_assert_eq!(a.total_instret, b.total_instret);
        prop_assert_eq!(a.total_cycles, b.total_cycles);
        // Every rejection lands in exactly one reason counter.
        prop_assert_eq!(
            a.merged.sum_prefix("attest.reject."),
            a.attest_fail
        );
        // Every injected crash re-ran the Secure Loader on that device.
        let resets = a.merged.counters.get("chaos.crash_resets").copied().unwrap_or(0);
        let loader_runs = a.merged.counters.get("loader.runs").copied().unwrap_or(0);
        prop_assert_eq!(loader_runs, 1 + resets);
    }
}
