//! CLI-level behavior of `tlfleet`: degenerate configurations must exit
//! nonzero with a named error, `--expect` must turn a digest mismatch
//! into a nonzero exit that prints both digests and the trace level,
//! and the trace sinks must write schema-valid streams without moving
//! the digest.

use std::process::Command;

fn tlfleet() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tlfleet"))
}

/// Small-but-real fleet arguments shared by the digest tests (debug
/// profile: keep the work tiny).
const SMALL: [&str; 8] = [
    "--devices",
    "4",
    "--rounds",
    "2",
    "--quantum",
    "1000",
    "--workers",
    "2",
];

#[test]
fn zero_devices_is_a_named_boot_failure() {
    let out = tlfleet()
        .args(["--devices", "0"])
        .output()
        .expect("spawn tlfleet");
    assert!(!out.status.success(), "devices=0 must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("boot failed"), "stderr: {stderr}");
    assert!(
        stderr.contains("`devices` must be nonzero"),
        "the failing knob must be named: {stderr}"
    );
}

#[test]
fn zero_rounds_is_a_named_boot_failure() {
    let out = tlfleet()
        .args(["--rounds", "0"])
        .output()
        .expect("spawn tlfleet");
    assert!(!out.status.success(), "rounds=0 must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("`rounds` must be nonzero"),
        "the failing knob must be named: {stderr}"
    );
}

#[test]
fn expect_matching_digest_succeeds() {
    let out = tlfleet()
        .args(SMALL)
        .arg("--digest")
        .output()
        .expect("spawn tlfleet");
    assert!(out.status.success());
    let digest = String::from_utf8_lossy(&out.stdout).trim().to_string();
    assert_eq!(digest.len(), 64, "digest is 32 hex bytes: {digest}");

    let out = tlfleet()
        .args(SMALL)
        .args(["--digest", "--expect", &digest])
        .output()
        .expect("spawn tlfleet");
    assert!(
        out.status.success(),
        "matching --expect must succeed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn expect_mismatch_prints_both_digests_and_fails() {
    let bogus = "0".repeat(64);
    let out = tlfleet()
        .args(SMALL)
        .args(["--digest", "--expect", &bogus])
        .output()
        .expect("spawn tlfleet");
    assert!(!out.status.success(), "digest mismatch must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("digest mismatch"), "stderr: {stderr}");
    assert!(stderr.contains(&bogus), "expected digest printed: {stderr}");
    assert!(
        stderr.contains("actual:"),
        "actual digest printed: {stderr}"
    );
    // An observation-perturbs bug is diagnosed from this line alone, so
    // the mismatch names the trace level the run was captured at, and
    // whether campaign bytes entered the digest.
    assert!(
        stderr.contains("(trace level off, no campaign)"),
        "trace level printed on mismatch: {stderr}"
    );
}

#[test]
fn expect_mismatch_names_the_active_trace_level() {
    let bogus = "0".repeat(64);
    let out = tlfleet()
        .args(SMALL)
        .args(["--trace-level", "full", "--digest", "--expect", &bogus])
        .output()
        .expect("spawn tlfleet");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("(trace level full,"),
        "mismatch at full must say so: {stderr}"
    );
}

#[test]
fn expect_mismatch_names_the_campaign_config() {
    let bogus = "0".repeat(64);
    let out = tlfleet()
        .args(SMALL)
        .args(["--campaign", "--digest", "--expect", &bogus])
        .output()
        .expect("spawn tlfleet");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Campaign state bytes enter the digest, so a mismatch against a
    // non-campaign reference must be diagnosable from this line alone.
    assert!(
        stderr.contains("campaign(canary 25%, failure budget 8"),
        "campaign config printed on mismatch: {stderr}"
    );
}

#[test]
fn trace_level_never_moves_the_digest() {
    let digest_at = |extra: &[&str]| {
        let out = tlfleet()
            .args(SMALL)
            .args(["--chaos", "9", "--fault-rate", "700", "--malicious", "300"])
            .args(extra)
            .arg("--digest")
            .output()
            .expect("spawn tlfleet");
        assert!(out.status.success(), "{:?}", extra);
        String::from_utf8_lossy(&out.stdout).trim().to_string()
    };
    let off = digest_at(&[]);
    assert_eq!(off, digest_at(&["--trace-level", "spans"]));
    assert_eq!(off, digest_at(&["--trace-level", "full"]));
}

#[test]
fn trace_jsonl_is_schema_valid_and_chrome_trace_is_json() {
    let dir = std::env::temp_dir();
    let jsonl = dir.join(format!("tlfleet-cli-{}.jsonl", std::process::id()));
    let chrome = dir.join(format!("tlfleet-cli-{}.chrome.json", std::process::id()));
    let out = tlfleet()
        .args(SMALL)
        .args(["--chaos", "9", "--fault-rate", "700", "--malicious", "300"])
        .args(["--trace-level", "full"])
        .args(["--trace-jsonl", jsonl.to_str().unwrap()])
        .args(["--chrome-trace", chrome.to_str().unwrap()])
        .output()
        .expect("spawn tlfleet");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let doc = std::fs::read_to_string(&jsonl).expect("trace written");
    let records = trustlite_obs::parse_trace(&doc).expect("stream satisfies the schema");
    assert!(
        records
            .iter()
            .any(|r| matches!(r, trustlite_obs::TraceRecord::Meta(_))),
        "meta line present"
    );
    assert!(
        records
            .iter()
            .any(|r| matches!(r, trustlite_obs::TraceRecord::Span(_))),
        "span lines present"
    );
    assert!(
        records
            .iter()
            .any(|r| matches!(r, trustlite_obs::TraceRecord::Hist(_))),
        "histogram lines present"
    );

    // The Chrome timeline is one JSON array of objects with the
    // trace_event phase field.
    let chrome_doc = std::fs::read_to_string(&chrome).expect("chrome trace written");
    match trustlite_obs::json::parse(&chrome_doc).expect("chrome trace is valid JSON") {
        trustlite_obs::json::Json::Arr(events) => {
            assert!(!events.is_empty());
            for e in &events {
                assert!(e.get("ph").is_some(), "every event carries a phase");
            }
        }
        other => panic!("chrome trace must be an array, got {other:?}"),
    }

    let _ = std::fs::remove_file(&jsonl);
    let _ = std::fs::remove_file(&chrome);
}

#[test]
fn chaos_run_reports_health_and_reject_counters() {
    let out = tlfleet()
        .args(SMALL)
        .args(["--chaos", "9", "--fault-rate", "800", "--malicious", "400"])
        .output()
        .expect("spawn tlfleet");
    assert!(out.status.success(), "chaos run itself must succeed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("health: "), "health line present: {stdout}");
    assert!(
        stdout.contains("loader runs (merged): "),
        "loader line present: {stdout}"
    );
    assert!(
        stdout.contains("chaos resets injected: "),
        "reset line present: {stdout}"
    );
    assert!(
        stdout.contains("attest.reject.bad_tag: "),
        "reject counters present: {stdout}"
    );
}

#[test]
fn dense_mem_flag_does_not_move_the_digest() {
    let sparse = tlfleet()
        .args(SMALL)
        .arg("--digest")
        .output()
        .expect("spawn tlfleet");
    assert!(sparse.status.success());
    let dense = tlfleet()
        .args(SMALL)
        .args(["--dense-mem", "--digest"])
        .output()
        .expect("spawn tlfleet");
    assert!(dense.status.success());
    assert_eq!(
        String::from_utf8_lossy(&sparse.stdout),
        String::from_utf8_lossy(&dense.stdout),
        "memory backing must be invisible to the fleet digest"
    );
}

#[test]
fn default_output_reports_the_memory_footprint() {
    let out = tlfleet().args(SMALL).output().expect("spawn tlfleet");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mem = stdout
        .lines()
        .find(|l| l.starts_with("memory: "))
        .unwrap_or_else(|| panic!("no memory line in: {stdout}"));
    assert!(mem.contains("sparse"), "default backing is sparse: {mem}");
    assert!(mem.contains("us/device"), "fork timing missing: {mem}");
    let dense = tlfleet()
        .args(SMALL)
        .arg("--dense-mem")
        .output()
        .expect("spawn tlfleet");
    let stdout = String::from_utf8_lossy(&dense.stdout);
    assert!(
        stdout
            .lines()
            .any(|l| l.starts_with("memory: ") && l.contains("dense")),
        "dense run must say so: {stdout}"
    );
}
