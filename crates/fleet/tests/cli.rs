//! CLI-level behavior of `tlfleet`: degenerate configurations must exit
//! nonzero with a named error, and `--expect` must turn a digest
//! mismatch into a nonzero exit that prints both digests.

use std::process::Command;

fn tlfleet() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tlfleet"))
}

/// Small-but-real fleet arguments shared by the digest tests (debug
/// profile: keep the work tiny).
const SMALL: [&str; 8] = [
    "--devices",
    "4",
    "--rounds",
    "2",
    "--quantum",
    "1000",
    "--workers",
    "2",
];

#[test]
fn zero_devices_is_a_named_boot_failure() {
    let out = tlfleet()
        .args(["--devices", "0"])
        .output()
        .expect("spawn tlfleet");
    assert!(!out.status.success(), "devices=0 must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("boot failed"), "stderr: {stderr}");
    assert!(
        stderr.contains("`devices` must be nonzero"),
        "the failing knob must be named: {stderr}"
    );
}

#[test]
fn zero_rounds_is_a_named_boot_failure() {
    let out = tlfleet()
        .args(["--rounds", "0"])
        .output()
        .expect("spawn tlfleet");
    assert!(!out.status.success(), "rounds=0 must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("`rounds` must be nonzero"),
        "the failing knob must be named: {stderr}"
    );
}

#[test]
fn expect_matching_digest_succeeds() {
    let out = tlfleet()
        .args(SMALL)
        .arg("--digest")
        .output()
        .expect("spawn tlfleet");
    assert!(out.status.success());
    let digest = String::from_utf8_lossy(&out.stdout).trim().to_string();
    assert_eq!(digest.len(), 64, "digest is 32 hex bytes: {digest}");

    let out = tlfleet()
        .args(SMALL)
        .args(["--digest", "--expect", &digest])
        .output()
        .expect("spawn tlfleet");
    assert!(
        out.status.success(),
        "matching --expect must succeed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn expect_mismatch_prints_both_digests_and_fails() {
    let bogus = "0".repeat(64);
    let out = tlfleet()
        .args(SMALL)
        .args(["--digest", "--expect", &bogus])
        .output()
        .expect("spawn tlfleet");
    assert!(!out.status.success(), "digest mismatch must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("digest mismatch"), "stderr: {stderr}");
    assert!(stderr.contains(&bogus), "expected digest printed: {stderr}");
    assert!(
        stderr.contains("actual:"),
        "actual digest printed: {stderr}"
    );
}

#[test]
fn chaos_run_reports_health_and_reject_counters() {
    let out = tlfleet()
        .args(SMALL)
        .args(["--chaos", "9", "--fault-rate", "800", "--malicious", "400"])
        .output()
        .expect("spawn tlfleet");
    assert!(out.status.success(), "chaos run itself must succeed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("health: "), "health line present: {stdout}");
    assert!(
        stdout.contains("loader runs (merged): "),
        "loader line present: {stdout}"
    );
    assert!(
        stdout.contains("chaos resets injected: "),
        "reset line present: {stdout}"
    );
    assert!(
        stdout.contains("attest.reject.bad_tag: "),
        "reject counters present: {stdout}"
    );
}
