//! Dense-vs-sparse backing identity: the page-granular COW store behind
//! `Ram`/`Rom` is a host-side artifact, so fleets running on sparse and
//! dense memory must produce byte-identical digests, counters and health
//! at every capture level, worker count, and chaos on/off — while the
//! host-side footprint fields (the only place backing is allowed to
//! show) differ exactly as designed. The same contract holds for the
//! `Arc`-shared code caches against their private (deep-copied)
//! reference mode.

use proptest::prelude::*;
use trustlite_chaos::ChaosConfig;
use trustlite_fleet::{CampaignConfig, Fleet, FleetConfig, FleetReport};
use trustlite_obs::ObsLevel;

fn run(cfg: &FleetConfig, dense_mem: bool, workers: usize) -> FleetReport {
    Fleet::boot(FleetConfig {
        dense_mem,
        workers,
        ..cfg.clone()
    })
    .expect("boot")
    .run()
}

fn run_code(cfg: &FleetConfig, private_code: bool, workers: usize) -> FleetReport {
    Fleet::boot(FleetConfig {
        private_code,
        workers,
        ..cfg.clone()
    })
    .expect("boot")
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]
    #[test]
    fn dense_and_sparse_backing_digest_identically(
        seed in 1u64..1_000_000,
        devices in 3usize..6,
        rounds in 2u64..5,
        level_ix in 0usize..4,
        chaos_on in any::<bool>(),
    ) {
        let level = [ObsLevel::Off, ObsLevel::Metrics, ObsLevel::Events, ObsLevel::Full]
            [level_ix];
        let cfg = FleetConfig {
            devices,
            rounds,
            quantum: 1_500,
            seed,
            level,
            attest_every: 1,
            chaos: if chaos_on {
                ChaosConfig { seed: seed ^ 0xc0c0, fault_rate_pm: 700, malicious_pm: 300 }
            } else {
                ChaosConfig::off()
            },
            ..FleetConfig::default()
        };
        let sparse = run(&cfg, false, 1);
        for workers in [1usize, 4] {
            let dense = run(&cfg, true, workers);
            prop_assert_eq!(
                &dense.digest, &sparse.digest,
                "backing leaked into the digest at level {:?}, {} workers, chaos {}",
                level, workers, chaos_on
            );
            prop_assert_eq!(&dense.merged.counters, &sparse.merged.counters);
            prop_assert_eq!(&dense.merged.attribution, &sparse.merged.attribution);
            prop_assert_eq!(&dense.health, &sparse.health);
            prop_assert_eq!(dense.total_instret, sparse.total_instret);
            // The footprint is where the backing IS allowed to differ:
            // dense materializes the whole address space, sparse only
            // what the devices actually touched.
            prop_assert_eq!(dense.resident_bytes, dense.addressable_bytes);
            prop_assert!(
                sparse.resident_bytes < sparse.addressable_bytes / 2,
                "sparse fleets must not materialize most of the address space: {} of {}",
                sparse.resident_bytes, sparse.addressable_bytes
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]
    #[test]
    fn shared_and_private_code_caches_digest_identically(
        seed in 1u64..1_000_000,
        devices in 3usize..6,
        rounds in 2u64..5,
        level_ix in 0usize..4,
        chaos_on in any::<bool>(),
    ) {
        let level = [ObsLevel::Off, ObsLevel::Metrics, ObsLevel::Events, ObsLevel::Full]
            [level_ix];
        let cfg = FleetConfig {
            devices,
            rounds,
            quantum: 1_500,
            seed,
            level,
            attest_every: 1,
            chaos: if chaos_on {
                ChaosConfig { seed: seed ^ 0xc0c0, fault_rate_pm: 700, malicious_pm: 300 }
            } else {
                ChaosConfig::off()
            },
            ..FleetConfig::default()
        };
        let shared = run_code(&cfg, false, 1);
        for workers in [1usize, 4] {
            let private = run_code(&cfg, true, workers);
            prop_assert_eq!(
                &private.digest, &shared.digest,
                "code-cache sharing leaked into the digest at level {:?}, {} workers, chaos {}",
                level, workers, chaos_on
            );
            prop_assert_eq!(&private.merged.counters, &shared.merged.counters);
            prop_assert_eq!(&private.merged.attribution, &shared.merged.attribution);
            prop_assert_eq!(&private.health, &shared.health);
            prop_assert_eq!(private.total_instret, shared.total_instret);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]
    /// Campaign outcomes (per-device states, counters, digest) are a
    /// pure function of the config: the memory backing, the code-cache
    /// sharing mode and the worker count must not change which devices
    /// complete, roll back, or how many reboots it took.
    #[test]
    fn campaign_outcome_is_backing_and_worker_invariant(
        seed in 1u64..1_000_000,
        devices in 3usize..6,
        canary_pct in 1u32..100,
        chaos_on in any::<bool>(),
    ) {
        let cfg = FleetConfig {
            devices,
            rounds: 10,
            quantum: 1_000,
            seed,
            attest_every: 2,
            max_retries: u32::MAX,
            campaign: Some(CampaignConfig {
                canary_pct,
                failure_budget: devices as u32,
                ..CampaignConfig::default()
            }),
            chaos: if chaos_on {
                ChaosConfig { seed: seed ^ 0xc0c0, fault_rate_pm: 500, malicious_pm: 0 }
            } else {
                ChaosConfig::off()
            },
            ..FleetConfig::default()
        };
        let reference = run(&cfg, false, 1);
        prop_assert_eq!(
            reference.campaign_completed()
                + reference.campaign_rolled_back()
                + reference.campaign_quarantined()
                + reference.campaign_skipped(),
            devices,
            "every device lands in exactly one campaign bucket"
        );
        for (dense_mem, workers) in [(false, 4), (true, 1), (true, 4)] {
            let other = run(&cfg, dense_mem, workers);
            prop_assert_eq!(
                &other.digest, &reference.digest,
                "campaign digest diverged: dense_mem {}, {} workers, chaos {}",
                dense_mem, workers, chaos_on
            );
            prop_assert_eq!(&other.campaign_states, &reference.campaign_states);
            prop_assert_eq!(&other.merged.counters, &reference.merged.counters);
            prop_assert_eq!(&other.health, &reference.health);
        }
        let private = run_code(&cfg, true, 4);
        prop_assert_eq!(&private.digest, &reference.digest);
        prop_assert_eq!(&private.campaign_states, &reference.campaign_states);
    }
}

/// The footprint fields themselves must never enter the digest: two runs
/// differing only in backing agree on the digest even though
/// resident_bytes differ by an order of magnitude.
#[test]
fn footprint_fields_stay_out_of_the_digest() {
    let cfg = FleetConfig {
        devices: 4,
        rounds: 3,
        quantum: 2_000,
        ..FleetConfig::default()
    };
    let sparse = run(&cfg, false, 1);
    let dense = run(&cfg, true, 1);
    assert_eq!(sparse.digest, dense.digest);
    assert!(sparse.resident_bytes * 2 < dense.resident_bytes);
    assert_eq!(sparse.addressable_bytes, dense.addressable_bytes);
    assert!(!sparse.dense_mem);
    assert!(dense.dense_mem);
    assert!(sparse.fork_us_per_device > 0.0);
    // Code-cache footprint follows the same rules: reported, positive,
    // never digested, and the shared mode must be cheaper than running
    // every device on its own private tables.
    let private = run_code(&cfg, true, 1);
    assert_eq!(private.digest, sparse.digest);
    assert!(!sparse.private_code);
    assert!(private.private_code);
    assert!(sparse.code_cache_bytes > 0);
    assert!(private.code_cache_bytes > 0);
}
