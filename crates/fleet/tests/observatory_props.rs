//! Observation-without-perturbation properties: the trace level must
//! never move a bit of the simulation, the always-on telemetry (latency
//! histograms, flight recorders) must itself be deterministic across
//! worker counts, and every quarantined device must leave a non-empty
//! black box behind.

use proptest::prelude::*;
use trustlite_chaos::ChaosConfig;
use trustlite_fleet::{Fleet, FleetConfig, FleetReport, TraceLevel};

fn run(cfg: &FleetConfig, workers: usize, trace: TraceLevel) -> FleetReport {
    Fleet::boot(FleetConfig {
        workers,
        trace,
        ..cfg.clone()
    })
    .expect("boot")
    .run()
}

/// A chaos-heavy config small enough for the debug profile.
fn chaos_cfg(seed: u64, chaos_seed: u64, devices: usize, rounds: u64) -> FleetConfig {
    FleetConfig {
        devices,
        rounds,
        quantum: 1_500,
        seed,
        attest_every: 1,
        chaos: ChaosConfig {
            seed: chaos_seed,
            fault_rate_pm: 1_000,
            malicious_pm: 300,
        },
        ..FleetConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn trace_level_and_workers_never_perturb_the_run(
        seed in 1u64..1_000_000,
        chaos_seed in 1u64..1_000_000,
        devices in 3usize..6,
        rounds in 2u64..5,
    ) {
        let cfg = chaos_cfg(seed, chaos_seed, devices, rounds);
        let baseline = run(&cfg, 1, TraceLevel::Off);
        for workers in [1usize, 4] {
            // Per-worker-count reference: flight dumps embed the home
            // shard (a layout fact), so only the trace level is required
            // to leave them byte-identical.
            let shard_ref = run(&cfg, workers, TraceLevel::Off);
            for trace in [TraceLevel::Off, TraceLevel::Spans, TraceLevel::Full] {
                let r = run(&cfg, workers, trace);
                prop_assert_eq!(
                    &r.digest, &baseline.digest,
                    "digest moved at {} workers, trace {}", workers, trace.name()
                );
                prop_assert_eq!(&r.merged.counters, &baseline.merged.counters);
                // The latency histograms are always-on telemetry: they
                // must come out identical whatever the level or shard
                // layout, buckets included.
                prop_assert_eq!(&r.merged.histograms, &baseline.merged.histograms);
                prop_assert_eq!(&r.health, &baseline.health);
                // The flight dumps are deterministic evidence, not
                // wall-clock samples: byte-identical across trace levels,
                // and identical up to the shard label across layouts.
                prop_assert_eq!(&r.flight_dumps, &shard_ref.flight_dumps);
                prop_assert_eq!(r.flight_dumps.len(), baseline.flight_dumps.len());
                for (a, b) in r.flight_dumps.iter().zip(&baseline.flight_dumps) {
                    let mut a = a.clone();
                    let mut b = b.clone();
                    for s in a.spans.iter_mut().chain(b.spans.iter_mut()) {
                        s.shard = 0;
                    }
                    prop_assert_eq!(a, b, "flight dump diverged beyond the shard label");
                }
            }
        }
        // Span collection is what the level gates: off collects nothing,
        // spans/full collect at least the per-round engine phases.
        prop_assert!(baseline.spans.is_empty(), "trace off must collect no spans");
        let spans = run(&cfg, 1, TraceLevel::Spans);
        prop_assert!(!spans.spans.is_empty(), "trace spans must collect spans");
        let full = run(&cfg, 1, TraceLevel::Full);
        prop_assert!(
            full.spans.len() > spans.spans.len(),
            "trace full must add per-quantum spans ({} vs {})",
            full.spans.len(),
            spans.spans.len()
        );
    }
}

#[test]
fn every_quarantined_device_leaves_a_nonempty_black_box() {
    // max_retries 1 + heavy malice: several devices must be written off.
    let cfg = FleetConfig {
        devices: 8,
        rounds: 6,
        quantum: 1_500,
        attest_every: 1,
        max_retries: 1,
        chaos: ChaosConfig {
            seed: 9,
            fault_rate_pm: 700,
            malicious_pm: 600,
        },
        ..FleetConfig::default()
    };
    let report = Fleet::boot(cfg).expect("boot").run();
    let quarantined: Vec<u32> = report
        .health
        .iter()
        .enumerate()
        .filter(|(_, h)| h.is_quarantined())
        .map(|(id, _)| id as u32)
        .collect();
    assert!(
        !quarantined.is_empty(),
        "this config must quarantine devices (got none): {:?}",
        report.health
    );
    for id in &quarantined {
        let dump = report
            .flight_dumps
            .iter()
            .find(|d| d.device == *id && d.trigger.starts_with("quarantine("))
            .unwrap_or_else(|| panic!("device {id} quarantined without a flight dump"));
        assert!(
            !dump.spans.is_empty(),
            "device {id}: quarantine dump must carry flight spans"
        );
        assert!(
            !dump.counters.is_empty(),
            "device {id}: quarantine dump must carry counters"
        );
    }
    // Detection latency is recorded for every write-off.
    let detect = &report.merged.histograms["fleet.rounds_to_detect"];
    assert_eq!(detect.count, quarantined.len() as u64);
}

#[test]
fn trace_stream_round_trips_and_quantiles_match_merged_histograms() {
    let cfg = FleetConfig {
        devices: 6,
        rounds: 4,
        quantum: 1_500,
        attest_every: 1,
        trace: TraceLevel::Full,
        chaos: ChaosConfig {
            seed: 5,
            fault_rate_pm: 800,
            malicious_pm: 300,
        },
        ..FleetConfig::default()
    };
    let report = Fleet::boot(cfg).expect("boot").run();
    let doc = trustlite_fleet::trace_jsonl(&report);
    let records = trustlite_obs::parse_trace(&doc).expect("emitted stream must satisfy the schema");
    let mut hists = 0;
    for r in &records {
        if let trustlite_obs::TraceRecord::Hist(h) = r {
            hists += 1;
            let merged = &report.merged.histograms[&h.name];
            assert_eq!(&h.summary, merged, "{} drifted through the stream", h.name);
        }
    }
    assert_eq!(hists, report.merged.histograms.len());
    assert!(records
        .iter()
        .any(|r| matches!(r, trustlite_obs::TraceRecord::Meta(_))));
}
