//! Snapshot/fork correctness properties: a forked platform must be
//! architecturally indistinguishable from the original. For every macro
//! workload, `fork → step k` is bit-identical to `step k` on the
//! original — including snapshots taken with an interrupt pending and
//! snapshots taken mid-exception (inside a handler).

use proptest::prelude::*;
use trustlite_bench::throughput::{build_workload, WORKLOADS};
use trustlite_fleet::state_digest;
use trustlite_mem::IrqRequest;
use trustlite_obs::ObsLevel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn fork_then_step_matches_original(
        widx in 0usize..3,
        pre in 0u64..600,
        k in 1u64..400,
        irq in any::<bool>(),
    ) {
        let mut p = build_workload(WORKLOADS[widx], ObsLevel::Metrics);
        p.run(pre);
        if irq {
            // Snapshot with an undelivered interrupt in flight: the
            // pending queue must survive the fork.
            p.machine.raise_irq(IrqRequest { line: 0, handler: None });
        }
        let mut f = p.fork().expect("fork");
        p.run(k);
        f.run(k);
        prop_assert_eq!(state_digest(&mut p), state_digest(&mut f));
        prop_assert_eq!(p.machine.cycles, f.machine.cycles);
        prop_assert_eq!(p.machine.exc_log, f.machine.exc_log);
    }
}

/// Deterministic mid-exception case: snapshot at the exact step where
/// the first exception entry is logged — the machine is inside the
/// handler, with banked state live — and check the continuation.
#[test]
fn fork_mid_exception_matches_original() {
    for workload in WORKLOADS {
        let mut p = build_workload(workload, ObsLevel::Metrics);
        let mut entered = false;
        for _ in 0..200_000 {
            p.run(1);
            if !p.machine.exc_log.is_empty() {
                entered = true;
                break;
            }
        }
        if !entered {
            // Workloads without exception traffic (straight-line loops)
            // are covered by the property test above.
            continue;
        }
        let mut f = p.fork().expect("fork mid-exception");
        p.run(5_000);
        f.run(5_000);
        assert_eq!(
            state_digest(&mut p),
            state_digest(&mut f),
            "{workload}: mid-exception fork diverged"
        );
        assert_eq!(p.machine.exc_log, f.machine.exc_log);
    }
}

/// Divergence is contained: forked siblings with different identities
/// do not share RNG streams or keys, but their parent is untouched.
#[test]
fn diverged_forks_do_not_alias_parent_state() {
    let mut p = build_workload("quickstart", ObsLevel::Metrics);
    p.run(100);
    let before = state_digest(&mut p);
    let mut a = p.fork().expect("fork a");
    let mut b = p.fork().expect("fork b");
    a.diverge(1, 111, [1u8; 32]).expect("diverge a");
    b.diverge(2, 222, [2u8; 32]).expect("diverge b");
    a.run(1_000);
    b.run(1_000);
    assert_eq!(state_digest(&mut p), before, "parent unchanged by forks");
}
