//! Snapshot/fork correctness properties: a forked platform must be
//! architecturally indistinguishable from the original. For every macro
//! workload, `fork → step k` is bit-identical to `step k` on the
//! original — including snapshots taken with an interrupt pending and
//! snapshots taken mid-exception (inside a handler).

use proptest::prelude::*;
use trustlite::TrustliteError;
use trustlite_bench::throughput::{build_workload, WORKLOADS};
use trustlite_fleet::state_digest;
use trustlite_mem::IrqRequest;
use trustlite_obs::ObsLevel;
use trustlite_periph::Uart;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn fork_then_step_matches_original(
        widx in 0usize..3,
        pre in 0u64..600,
        k in 1u64..400,
        irq in any::<bool>(),
    ) {
        let mut p = build_workload(WORKLOADS[widx], ObsLevel::Metrics);
        p.run(pre);
        if irq {
            // Snapshot with an undelivered interrupt in flight: the
            // pending queue must survive the fork.
            p.machine.raise_irq(IrqRequest { line: 0, handler: None });
        }
        let mut f = p.fork().expect("fork");
        p.run(k);
        f.run(k);
        prop_assert_eq!(state_digest(&mut p), state_digest(&mut f));
        prop_assert_eq!(p.machine.cycles, f.machine.cycles);
        prop_assert_eq!(p.machine.exc_log, f.machine.exc_log);
    }
}

/// Deterministic mid-exception case: snapshot at the exact step where
/// the first exception entry is logged — the machine is inside the
/// handler, with banked state live — and check the continuation.
#[test]
fn fork_mid_exception_matches_original() {
    for workload in WORKLOADS {
        let mut p = build_workload(workload, ObsLevel::Metrics);
        let mut entered = false;
        for _ in 0..200_000 {
            p.run(1);
            if !p.machine.exc_log.is_empty() {
                entered = true;
                break;
            }
        }
        if !entered {
            // Workloads without exception traffic (straight-line loops)
            // are covered by the property test above.
            continue;
        }
        let mut f = p.fork().expect("fork mid-exception");
        p.run(5_000);
        f.run(5_000);
        assert_eq!(
            state_digest(&mut p),
            state_digest(&mut f),
            "{workload}: mid-exception fork diverged"
        );
        assert_eq!(p.machine.exc_log, f.machine.exc_log);
    }
}

/// A platform whose UART carries a host tap (an opaque `FnMut`) must
/// refuse to fork — and the refusal must name the component so a fleet
/// operator can tell *which* device blocked the snapshot.
#[test]
fn fork_refusal_names_the_tapped_uart() {
    let mut p = build_workload("quickstart", ObsLevel::Metrics);
    p.machine
        .sys
        .bus
        .device_mut::<Uart>("uart")
        .expect("uart present")
        .set_tap(Box::new(|_byte| {}));
    let err = p.fork().err().expect("tapped uart must block fork");
    assert_eq!(err, TrustliteError::Snapshot("uart"));
    assert!(err
        .to_string()
        .contains("snapshot unsupported by component `uart`"));

    // Clearing the tap restores forkability on the same platform.
    p.machine
        .sys
        .bus
        .device_mut::<Uart>("uart")
        .expect("uart present")
        .clear_tap();
    p.fork().expect("untapped uart forks fine");
}

/// An installed extension unit holds opaque host state; fork must refuse
/// and name it too.
#[test]
fn fork_refusal_names_the_extension_unit() {
    struct NopExt;
    impl trustlite_cpu::ExtUnit for NopExt {
        fn exec(
            &mut self,
            _regs: &mut trustlite_cpu::RegFile,
            _sys: &mut trustlite_cpu::SystemBus,
            _ip: u32,
            _op: u8,
            _rd: trustlite_isa::Reg,
            _rs1: trustlite_isa::Reg,
            _imm: u16,
        ) -> Result<u64, trustlite_cpu::Fault> {
            Ok(1)
        }
    }
    let mut p = build_workload("quickstart", ObsLevel::Metrics);
    p.machine.ext = Some(Box::new(NopExt));
    let err = p.fork().err().expect("ext unit must block fork");
    assert_eq!(err, TrustliteError::Snapshot("ext"));
    assert!(err
        .to_string()
        .contains("snapshot unsupported by component `ext`"));
}

/// Divergence is contained: forked siblings with different identities
/// do not share RNG streams or keys, but their parent is untouched.
#[test]
fn diverged_forks_do_not_alias_parent_state() {
    let mut p = build_workload("quickstart", ObsLevel::Metrics);
    p.run(100);
    let before = state_digest(&mut p);
    let mut a = p.fork().expect("fork a");
    let mut b = p.fork().expect("fork b");
    a.diverge(1, 111, [1u8; 32]).expect("diverge a");
    b.diverge(2, 222, [2u8; 32]).expect("diverge b");
    a.run(1_000);
    b.run(1_000);
    assert_eq!(state_digest(&mut p), before, "parent unchanged by forks");
}
