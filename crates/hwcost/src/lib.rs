//! Analytic FPGA resource model for the TrustLite evaluation.
//!
//! The paper's hardware results (Table 1, Figure 7) are synthesis numbers
//! from a Xilinx Virtex-6 (TrustLite on the 32-bit Siskiyou Peak core)
//! and a Spartan-6 (Sancus on the 16-bit openMSP430). We cannot run the
//! vendor toolchain, so this crate rebuilds the costs *structurally*:
//! registers are counted from the architectural storage an instantiation
//! needs (region-descriptor fields, secure stack pointers, key caches),
//! LUTs from the comparator/mux logic, and the remaining glue is
//! calibrated once against the paper's published totals. The interesting
//! quantities — how cost *scales* with the number of protected modules,
//! where the TrustLite/Sancus crossovers fall, what a 16-bit datapath
//! saves — then follow from the model rather than being transcribed.
//!
//! Paper anchor points (Table 1):
//!
//! | quantity                   | regs | LUTs |
//! |----------------------------|------|------|
//! | TrustLite base core (+UART)| 5528 | 14361|
//! | TrustLite extension base   | 278  | 417  |
//! | TrustLite per module       | 116  | 182  |
//! | TrustLite exceptions base  | 34   | 22   |
//! | Sancus base core           | 998  | 2322 |
//! | Sancus extension base      | 586  | 1138 |
//! | Sancus per module          | 213  | 307  |

pub mod model;
pub mod tables;
pub mod timing;

pub use model::{
    fault_tree_depth, gate_equivalents, sancus_cost, smart_like_cost, trustlite_ext_cost,
    CostPoint, EaMpuModel, SancusModel, MSP430_BASE, SPONGENT_SLICES, TRUSTLITE_CORE,
};
pub use tables::{figure7, modules_at_budget, table1, Fig7Row, Table1};
pub use timing::{fault_path_ns, fmax_mhz, meets_timing};
