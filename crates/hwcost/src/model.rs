//! The resource model proper.

use core::ops::Add;

/// An FPGA resource count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostPoint {
    /// Slice registers (flip-flops).
    pub regs: u32,
    /// Look-up tables.
    pub luts: u32,
}

impl CostPoint {
    /// Creates a point.
    pub const fn new(regs: u32, luts: u32) -> Self {
        CostPoint { regs, luts }
    }

    /// The paper's Figure 7 plots "FPGA slices (Regs+LUTs)" — a combined
    /// resource proxy (both target families pack 4 LUTs + 8 registers per
    /// slice, making the sum comparable across them).
    pub fn slices(&self) -> u32 {
        self.regs + self.luts
    }

    /// Scales both components by an integer factor.
    pub fn scale(&self, k: u32) -> CostPoint {
        CostPoint {
            regs: self.regs * k,
            luts: self.luts * k,
        }
    }
}

impl Add for CostPoint {
    type Output = CostPoint;
    fn add(self, rhs: CostPoint) -> CostPoint {
        CostPoint {
            regs: self.regs + rhs.regs,
            luts: self.luts + rhs.luts,
        }
    }
}

/// The TrustLite base core (Siskiyou Peak, 32-bit, incl. a 16550 UART) on
/// Virtex-6, from Table 1.
pub const TRUSTLITE_CORE: CostPoint = CostPoint::new(5528, 14361);

/// The unmodified openMSP430 core on Spartan-6, from Table 1 / Section 5.2.
pub const MSP430_BASE: CostPoint = CostPoint::new(998, 2322);

/// A representative Spongent hash core is ~22 Spartan-6 slices
/// (Section 5.2); the paper notes the TrustLite base-cost margin absorbs
/// it.
pub const SPONGENT_SLICES: u32 = 22;

/// Structural model of the EA-MPU.
///
/// A *security module* is the paper's costing unit: one code + one data
/// protection region. Each region stores `start` and `end` at the MPU's
/// region granularity plus a flags word, and contributes range
/// comparators on the significant address bits.
#[derive(Debug, Clone, Copy)]
pub struct EaMpuModel {
    /// Address/datapath width in bits (32 for TrustLite, 16 for the
    /// MSP430-class comparison).
    pub addr_width: u32,
    /// log2 of the region granularity in bytes (32-byte granularity = 5;
    /// low address bits need neither storage nor comparison).
    pub granularity_bits: u32,
    /// Whether the secure exception engine is instantiated.
    pub secure_exceptions: bool,
}

/// Per-module pipeline/synchronization registers (calibrated).
const MODULE_OVERHEAD_REGS: u32 = 8;
/// Per-module permission/match glue LUTs (calibrated).
const MODULE_GLUE_LUTS: u32 = 20;
/// Range comparisons per module: lower+upper bound for the code region's
/// subject match, the data-object match and the execute-object match.
const COMPARATORS_PER_MODULE: u32 = 6;

/// Extension base cost (Table 1): control FSM, MMIO register interface,
/// fault-aggregation and synchronization — independent of the module
/// count. Decomposition (calibrated against the published total):
/// ~96 interface regs + ~64 FSM regs + ~32 fault-sync regs + ~86
/// configuration/status regs; ~120 decode LUTs + ~97 fault-tree LUTs +
/// ~200 control LUTs.
const EXT_BASE: CostPoint = CostPoint::new(278, 417);

/// Secure exception engine base cost (Table 1): the state-save
/// micro-sequencer. Within FPGA-synthesis noise per the paper.
const EXC_BASE: CostPoint = CostPoint::new(34, 22);

impl EaMpuModel {
    /// The TrustLite prototype configuration (32-bit, 32-byte granules).
    pub const fn trustlite() -> Self {
        EaMpuModel {
            addr_width: 32,
            granularity_bits: 5,
            secure_exceptions: false,
        }
    }

    /// Same with the secure exception engine instantiated.
    pub const fn trustlite_with_exceptions() -> Self {
        EaMpuModel {
            addr_width: 32,
            granularity_bits: 5,
            secure_exceptions: true,
        }
    }

    /// A 16-bit datapath variant (the Section 5.2 MSP430-class scaling
    /// argument).
    pub const fn narrow16() -> Self {
        EaMpuModel {
            addr_width: 16,
            granularity_bits: 5,
            secure_exceptions: false,
        }
    }

    /// Significant (stored and compared) bits per address field.
    pub fn field_bits(&self) -> u32 {
        self.addr_width - self.granularity_bits
    }

    /// Fixed cost, independent of the number of modules.
    pub fn base_cost(&self) -> CostPoint {
        let mut c = EXT_BASE;
        if self.secure_exceptions {
            c = c + EXC_BASE;
        }
        c
    }

    /// Cost of one security module (two protection regions).
    ///
    /// Registers: four stored bounds (code start/end, data start/end) at
    /// `field_bits` each, plus flags/pipeline overhead. LUTs: six range
    /// comparators at ~1 LUT per compared bit plus match glue. For the
    /// prototype configuration this yields exactly the published
    /// 116 regs / 182 LUTs.
    pub fn per_module(&self) -> CostPoint {
        let fb = self.field_bits();
        let mut regs = 4 * fb + MODULE_OVERHEAD_REGS;
        let mut luts = COMPARATORS_PER_MODULE * fb + MODULE_GLUE_LUTS;
        if self.secure_exceptions {
            // One secure-stack-pointer register per module plus its mux
            // path into the Trustlet Table write port.
            regs += self.addr_width;
            luts += self.addr_width / 2;
        }
        CostPoint { regs, luts }
    }

    /// Total extension cost for `modules` security modules.
    pub fn total(&self, modules: u32) -> CostPoint {
        self.base_cost() + self.per_module().scale(modules)
    }
}

/// Structural model of the Sancus protection unit.
#[derive(Debug, Clone, Copy)]
pub struct SancusModel {
    /// MSP430 address width.
    pub addr_width: u32,
    /// Cached MAC-key bits per module (the paper: a 128-bit key cache
    /// "accounts for a significant portion of the register cost").
    pub key_bits: u32,
}

/// Sancus extension base (Table 1): ISA extension decode, the hardware
/// hash (Spongent-class) datapath and control.
const SANCUS_BASE: CostPoint = CostPoint::new(586, 1138);
/// Sancus per-module control registers besides keys and bounds
/// (calibrated remainder of the published 213).
const SANCUS_MODULE_CTRL_REGS: u32 = 21;
/// Sancus per-module LUTs besides the bound comparators (key-path muxing
/// into the MAC datapath; calibrated remainder of the published 307).
const SANCUS_MODULE_GLUE_LUTS: u32 = 211;

impl SancusModel {
    /// The published openMSP430 configuration.
    pub const fn published() -> Self {
        SancusModel {
            addr_width: 16,
            key_bits: 128,
        }
    }

    /// Fixed cost.
    pub fn base_cost(&self) -> CostPoint {
        SANCUS_BASE
    }

    /// Cost of one protected module: the cached key, four stored section
    /// bounds at full address width (byte granularity), six bound
    /// comparators, and control.
    pub fn per_module(&self) -> CostPoint {
        let regs = self.key_bits + 4 * self.addr_width + SANCUS_MODULE_CTRL_REGS;
        let luts = 6 * self.addr_width + SANCUS_MODULE_GLUE_LUTS;
        CostPoint { regs, luts }
    }

    /// Total extension cost for `modules` protected modules.
    pub fn total(&self, modules: u32) -> CostPoint {
        self.base_cost() + self.per_module().scale(modules)
    }

    /// The paper's note: on-the-fly key derivation instead of caching
    /// saves the 128 key registers per module (at a performance cost).
    pub fn with_on_the_fly_keys(mut self) -> Self {
        self.key_bits = 0;
        self
    }
}

/// Convenience: TrustLite extension cost for `modules` modules.
pub fn trustlite_ext_cost(modules: u32, with_exceptions: bool) -> CostPoint {
    let model = if with_exceptions {
        EaMpuModel::trustlite_with_exceptions()
    } else {
        EaMpuModel::trustlite()
    };
    model.total(modules)
}

/// Convenience: Sancus extension cost for `modules` modules.
pub fn sancus_cost(modules: u32) -> CostPoint {
    SancusModel::published().total(modules)
}

/// The SMART-like instantiation of Section 5.2: the Secure Loader merged
/// with the attestation service — extension base plus a single module, no
/// exception engine. The paper reports 394 slice registers and 599 LUTs.
pub fn smart_like_cost() -> CostPoint {
    EaMpuModel::trustlite().total(1)
}

/// Depth of the fault-aggregation tree combining `regions` region-match
/// signals (Section 5.3: "logarithmically increases in depth with the
/// number of checked memory regions"). Modelled as a tree of 4-input OR
/// LUT levels.
pub fn fault_tree_depth(regions: u32) -> u32 {
    if regions <= 1 {
        return if regions == 0 { 0 } else { 1 };
    }
    let mut depth = 0;
    let mut n = regions;
    while n > 1 {
        n = n.div_ceil(4);
        depth += 1;
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_module_matches_table1() {
        assert_eq!(
            EaMpuModel::trustlite().per_module(),
            CostPoint::new(116, 182)
        );
    }

    #[test]
    fn base_costs_match_table1() {
        assert_eq!(
            EaMpuModel::trustlite().base_cost(),
            CostPoint::new(278, 417)
        );
        assert_eq!(
            EaMpuModel::trustlite_with_exceptions().base_cost(),
            CostPoint::new(278 + 34, 417 + 22)
        );
    }

    #[test]
    fn sancus_matches_table1() {
        let m = SancusModel::published();
        assert_eq!(m.per_module(), CostPoint::new(213, 307));
        assert_eq!(m.base_cost(), CostPoint::new(586, 1138));
    }

    #[test]
    fn smart_like_matches_section_5_2() {
        assert_eq!(smart_like_cost(), CostPoint::new(394, 599));
    }

    #[test]
    fn fixed_cost_ratio_matches_paper_claim() {
        // "TrustLite's fixed costs are 50% of Sancus while the per module
        // cost is roughly 40% less."
        let tl_base = EaMpuModel::trustlite().base_cost().slices() as f64;
        let sc_base = SancusModel::published().base_cost().slices() as f64;
        let ratio = tl_base / sc_base;
        assert!((0.38..=0.52).contains(&ratio), "base ratio {ratio}");

        let tl_mod = EaMpuModel::trustlite().per_module().slices() as f64;
        let sc_mod = SancusModel::published().per_module().slices() as f64;
        let saving = 1.0 - tl_mod / sc_mod;
        assert!(
            (0.35..=0.48).contains(&saving),
            "per-module saving {saving}"
        );
    }

    #[test]
    fn narrow_datapath_saves_about_half() {
        // Section 5.2: scaling to a 16-bit datapath roughly halves the
        // EA-MPU resources.
        let wide = EaMpuModel::trustlite().per_module();
        let narrow = EaMpuModel::narrow16().per_module();
        let reg_saving = 1.0 - narrow.regs as f64 / wide.regs as f64;
        let lut_saving = 1.0 - narrow.luts as f64 / wide.luts as f64;
        assert!(
            (0.40..=0.60).contains(&reg_saving),
            "reg saving {reg_saving}"
        );
        assert!(
            (0.40..=0.60).contains(&lut_saving),
            "lut saving {lut_saving}"
        );
    }

    #[test]
    fn exception_engine_cost_is_minor() {
        // Figure 7 shows only a slight increase for secure exceptions.
        let n = 12;
        let without = trustlite_ext_cost(n, false).slices() as f64;
        let with = trustlite_ext_cost(n, true).slices() as f64;
        assert!(with > without);
        assert!(with / without < 1.25, "ratio {}", with / without);
    }

    #[test]
    fn on_the_fly_keys_save_128_regs_per_module() {
        let cached = SancusModel::published().per_module().regs;
        let otf = SancusModel::published()
            .with_on_the_fly_keys()
            .per_module()
            .regs;
        assert_eq!(cached - otf, 128);
    }

    #[test]
    fn spongent_fits_in_base_margin() {
        // "there is ample base cost margin to absorb a hardware hash".
        let margin = SancusModel::published().base_cost().slices()
            - EaMpuModel::trustlite().base_cost().slices();
        assert!(
            SPONGENT_SLICES * 8 < margin,
            "22 slices ≈ 176 regs+luts < {margin}"
        );
    }

    #[test]
    fn fault_tree_depth_is_logarithmic() {
        assert_eq!(fault_tree_depth(0), 0);
        assert_eq!(fault_tree_depth(1), 1);
        assert_eq!(fault_tree_depth(4), 1);
        assert_eq!(fault_tree_depth(16), 2);
        assert_eq!(fault_tree_depth(32), 3);
        assert_eq!(fault_tree_depth(64), 3);
        assert_eq!(fault_tree_depth(65), 4);
        // Timing closure up to 32 regions (Section 5.3): depth stays tiny.
        assert!(fault_tree_depth(32) <= 3);
    }

    #[test]
    fn totals_are_affine_in_module_count() {
        let m = EaMpuModel::trustlite();
        for n in 0..20 {
            assert_eq!(m.total(n + 1).regs - m.total(n).regs, m.per_module().regs);
            assert_eq!(m.total(n + 1).luts - m.total(n).luts, m.per_module().luts);
        }
    }
}

/// Rough gate-equivalent conversion for FPGA resources (standard-cell
/// mapping: a 6-input LUT ≈ 7 GE of random logic, a flip-flop ≈ 6 GE).
/// Used to sanity-check the paper's premise of a ~100k-GE SoC budget
/// (Section 2).
pub fn gate_equivalents(c: CostPoint) -> u32 {
    c.regs * 6 + c.luts * 7
}

#[cfg(test)]
mod ge_tests {
    use super::*;

    #[test]
    fn extension_fits_a_100k_ge_budget() {
        // The paper targets SoCs "in the range of 100,000 gate
        // equivalents". The full TrustLite extension with 12 modules and
        // secure exceptions must be a modest fraction of that budget.
        let ext = EaMpuModel::trustlite_with_exceptions().total(12);
        let ge = gate_equivalents(ext);
        assert!(ge < 65_000, "extension is {ge} GE");
        // And the SMART-like minimal instantiation is almost free.
        let minimal = gate_equivalents(smart_like_cost());
        assert!(minimal < 8_000, "minimal instantiation is {minimal} GE");
    }

    #[test]
    fn ge_scales_with_resources() {
        assert!(
            gate_equivalents(CostPoint::new(100, 100)) > gate_equivalents(CostPoint::new(10, 10))
        );
        assert_eq!(gate_equivalents(CostPoint::new(0, 0)), 0);
    }
}
