//! Printable reproductions of Table 1 and Figure 7.

use crate::model::{
    sancus_cost, trustlite_ext_cost, CostPoint, EaMpuModel, SancusModel, MSP430_BASE,
    TRUSTLITE_CORE,
};

/// The rows of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1 {
    /// Base core size (TrustLite / Sancus).
    pub base_core: (CostPoint, CostPoint),
    /// Extension base cost.
    pub ext_base: (CostPoint, CostPoint),
    /// Cost per security module.
    pub per_module: (CostPoint, CostPoint),
    /// Secure exception engine base cost (TrustLite only).
    pub exceptions_base: CostPoint,
    /// Secure exception engine cost per module (TrustLite only).
    pub exceptions_per_module: CostPoint,
}

/// Computes Table 1 from the models.
pub fn table1() -> Table1 {
    let tl = EaMpuModel::trustlite();
    let tl_exc = EaMpuModel::trustlite_with_exceptions();
    let sc = SancusModel::published();
    let exc_base = CostPoint::new(
        tl_exc.base_cost().regs - tl.base_cost().regs,
        tl_exc.base_cost().luts - tl.base_cost().luts,
    );
    let exc_mod = CostPoint::new(
        tl_exc.per_module().regs - tl.per_module().regs,
        tl_exc.per_module().luts - tl.per_module().luts,
    );
    Table1 {
        base_core: (TRUSTLITE_CORE, MSP430_BASE),
        ext_base: (tl.base_cost(), sc.base_cost()),
        per_module: (tl.per_module(), sc.per_module()),
        exceptions_base: exc_base,
        exceptions_per_module: exc_mod,
    }
}

impl Table1 {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<26}{:>10}{:>8}  |{:>8}{:>8}\n",
            "", "TrustLite", "", "Sancus", ""
        ));
        out.push_str(&format!(
            "{:<26}{:>10}{:>8}  |{:>8}{:>8}\n",
            "", "Regs", "LUTs", "Regs", "LUTs"
        ));
        let mut row = |label: &str, a: Option<CostPoint>, b: Option<CostPoint>| {
            let fmt = |c: Option<CostPoint>, f: fn(CostPoint) -> u32| {
                c.map(|c| f(c).to_string()).unwrap_or_else(|| "-".into())
            };
            out.push_str(&format!(
                "{:<26}{:>10}{:>8}  |{:>8}{:>8}\n",
                label,
                fmt(a, |c| c.regs),
                fmt(a, |c| c.luts),
                fmt(b, |c| c.regs),
                fmt(b, |c| c.luts),
            ));
        };
        row(
            "Base Core Size",
            Some(self.base_core.0),
            Some(self.base_core.1),
        );
        row(
            "Extension Base Cost",
            Some(self.ext_base.0),
            Some(self.ext_base.1),
        );
        row(
            "Cost per Module",
            Some(self.per_module.0),
            Some(self.per_module.1),
        );
        row("Exceptions Base Cost", Some(self.exceptions_base), None);
        row("Except. per Module", Some(self.exceptions_per_module), None);
        out
    }
}

/// One x-position of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig7Row {
    /// Number of protected modules (2 MPU regions each).
    pub modules: u32,
    /// TrustLite extensions (slices proxy: regs + LUTs).
    pub trustlite: u32,
    /// TrustLite with the secure exception engine.
    pub trustlite_exc: u32,
    /// Sancus extensions.
    pub sancus: u32,
    /// openMSP430 base core reference line.
    pub msp430_base: u32,
    /// 200% of the openMSP430 core.
    pub msp430_200: u32,
    /// 400% of the openMSP430 core.
    pub msp430_400: u32,
}

/// Computes the Figure 7 series for 0..=`max_modules` modules.
pub fn figure7(max_modules: u32) -> Vec<Fig7Row> {
    (0..=max_modules)
        .map(|n| Fig7Row {
            modules: n,
            trustlite: trustlite_ext_cost(n, false).slices(),
            trustlite_exc: trustlite_ext_cost(n, true).slices(),
            sancus: sancus_cost(n).slices(),
            msp430_base: MSP430_BASE.slices(),
            msp430_200: MSP430_BASE.slices() * 2,
            msp430_400: MSP430_BASE.slices() * 4,
        })
        .collect()
}

/// The largest module count whose cost stays within `budget` slices
/// (used for the paper's "Sancus fits 9 modules at 200% of the core where
/// TrustLite supports 20" crossover).
pub fn modules_at_budget(cost: impl Fn(u32) -> u32, budget: u32) -> u32 {
    let mut n = 0;
    while cost(n + 1) <= budget {
        n += 1;
        if n > 10_000 {
            break;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_published_numbers() {
        let t = table1();
        assert_eq!(t.base_core.0, CostPoint::new(5528, 14361));
        assert_eq!(t.base_core.1, CostPoint::new(998, 2322));
        assert_eq!(t.ext_base.0, CostPoint::new(278, 417));
        assert_eq!(t.ext_base.1, CostPoint::new(586, 1138));
        assert_eq!(t.per_module.0, CostPoint::new(116, 182));
        assert_eq!(t.per_module.1, CostPoint::new(213, 307));
        assert_eq!(t.exceptions_base, CostPoint::new(34, 22));
    }

    #[test]
    fn table_renders_all_rows() {
        let s = table1().render();
        for needle in [
            "Base Core Size",
            "5528",
            "14361",
            "Except. per Module",
            "213",
        ] {
            assert!(s.contains(needle), "missing {needle} in\n{s}");
        }
    }

    #[test]
    fn figure7_crossover_sancus_9_trustlite_20() {
        // Paper: Sancus protected modules reach twice the openMSP430 core
        // cost at 9 modules, a design point where TrustLite supports 20.
        let budget = MSP430_BASE.slices() * 2;
        let sancus_fit = modules_at_budget(|n| sancus_cost(n).slices(), budget);
        assert_eq!(sancus_fit, 9, "Sancus fits 9 modules at 200% core cost");
        // The paper reads "20 modules" for TrustLite off the plot; the
        // model puts 20 modules at 6655 slices against the 6640 budget —
        // within 0.3% of the 200% line (and 19 strictly below it).
        let trustlite_fit = modules_at_budget(|n| trustlite_ext_cost(n, false).slices(), budget);
        assert!(trustlite_fit >= 19, "TrustLite fits {trustlite_fit}");
        let at_20 = trustlite_ext_cost(20, false).slices() as f64;
        let over = (at_20 - budget as f64) / (budget as f64);
        assert!(over < 0.01, "20 modules ≈ the 200% line (over by {over})");
    }

    #[test]
    fn figure7_orderings_hold_everywhere() {
        for row in figure7(32) {
            assert!(row.trustlite <= row.trustlite_exc, "exceptions add cost");
            if row.modules >= 1 {
                assert!(
                    row.trustlite_exc < row.sancus,
                    "TrustLite cheaper at n={}",
                    row.modules
                );
            }
            // "about half the hardware overhead of Sancus" for the
            // interesting range.
            if row.modules >= 4 {
                let ratio = row.trustlite as f64 / row.sancus as f64;
                assert!(
                    (0.35..=0.62).contains(&ratio),
                    "ratio {ratio} at n={}",
                    row.modules
                );
            }
        }
    }

    #[test]
    fn figure7_row_count_and_reference_lines() {
        let rows = figure7(32);
        assert_eq!(rows.len(), 33);
        assert_eq!(rows[0].msp430_200, 2 * rows[0].msp430_base);
        assert_eq!(rows[0].msp430_400, 4 * rows[0].msp430_base);
        // Reference lines are flat.
        assert!(rows.iter().all(|r| r.msp430_base == rows[0].msp430_base));
    }

    #[test]
    fn sancus_exceeds_400_percent_inside_plot_range() {
        // In the paper's plot Sancus crosses the 400% line well before 32
        // modules.
        let budget = MSP430_BASE.slices() * 4;
        let n = modules_at_budget(|n| sancus_cost(n).slices(), budget);
        assert!(n < 32, "Sancus crosses 400% at {n} modules");
        // TrustLite stays below 400% across the entire plotted range.
        assert!(trustlite_ext_cost(32, true).slices() < budget);
    }
}
