//! Timing-closure model (Section 5.3).
//!
//! The paper: "memory region range checks can be parallelized such that
//! they do not increase memory access time which is in the processor
//! critical path. However, the logic which generates the collective
//! memory access exception logarithmically increases in depth with the
//! number of checked memory regions. We experienced no timing closure
//! problems with up to 32 memory protection regions."
//!
//! The model: the fault-aggregation path = one comparator stage (constant
//! depth — all comparators evaluate in parallel) plus an OR-tree of
//! [`crate::fault_tree_depth`] 4-input LUT levels. Each LUT level costs a
//! nominal `LUT_DELAY_NS`, the comparator stage `COMPARATOR_DELAY_NS`,
//! and routing adds a per-level overhead. The fault signal must settle
//! within the target clock period for timing closure.

use crate::model::fault_tree_depth;

/// Nominal delay of one 6-input LUT level on a Virtex-6-class device.
pub const LUT_DELAY_NS: f64 = 0.3;
/// Routing overhead per logic level.
pub const ROUTING_DELAY_NS: f64 = 0.4;
/// Delay of the parallel range-comparator stage (27-bit compare as a
/// short carry chain).
pub const COMPARATOR_DELAY_NS: f64 = 1.6;
/// Clock-to-out plus setup margin of the fault flop.
pub const FLOP_MARGIN_NS: f64 = 0.8;

/// Settled delay of the collective fault signal for `regions` region
/// registers, in nanoseconds.
pub fn fault_path_ns(regions: u32) -> f64 {
    let levels = fault_tree_depth(regions) as f64;
    COMPARATOR_DELAY_NS + levels * (LUT_DELAY_NS + ROUTING_DELAY_NS) + FLOP_MARGIN_NS
}

/// Maximum clock frequency (MHz) the fault path allows.
pub fn fmax_mhz(regions: u32) -> f64 {
    1000.0 / fault_path_ns(regions)
}

/// Returns true if `regions` region registers meet timing at `clock_mhz`.
pub fn meets_timing(regions: u32, clock_mhz: f64) -> bool {
    fmax_mhz(regions) >= clock_mhz
}

/// A typical clock target for this platform class (the Siskiyou Peak
/// research core runs in the low hundreds of MHz on Virtex-6).
pub const TARGET_CLOCK_MHZ: f64 = 200.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_point_closes_timing() {
        // "no timing closure problems with up to 32 memory protection
        // regions".
        for regions in [4u32, 8, 12, 16, 24, 32] {
            assert!(
                meets_timing(regions, TARGET_CLOCK_MHZ),
                "regions={regions}: fmax {:.0} MHz",
                fmax_mhz(regions)
            );
        }
    }

    #[test]
    fn delay_grows_logarithmically() {
        // Doubling the region count adds at most one LUT level.
        for regions in [4u32, 8, 16, 32, 64, 128] {
            let d1 = fault_path_ns(regions);
            let d2 = fault_path_ns(regions * 2);
            assert!(d2 >= d1);
            assert!(d2 - d1 <= LUT_DELAY_NS + ROUTING_DELAY_NS + 1e-9);
        }
    }

    #[test]
    fn fmax_monotonically_decreases() {
        let mut prev = f64::INFINITY;
        for regions in [1u32, 4, 16, 64, 256, 1024] {
            let f = fmax_mhz(regions);
            assert!(f <= prev);
            prev = f;
        }
    }

    #[test]
    fn closure_eventually_fails_far_beyond_the_paper_range() {
        // The model is falsifiable: at some (large) region count the
        // aggregation tree no longer fits a fast clock period, which is
        // why region counts are a hardware instantiation decision.
        let huge = 1 << 20;
        assert!(fmax_mhz(huge) < fmax_mhz(32));
        assert!(!meets_timing(huge, 400.0));
    }
}
