//! Text-syntax assembler front-end.
//!
//! A small, line-oriented syntax over the [`crate::Asm`] backend:
//!
//! ```text
//! ; comment
//! start:
//!     li   r0, 0x1000
//!     lw   r1, [r0+4]
//!     sw   [r0-4], r1
//!     beq  r0, r1, start
//!     .word 0xdeadbeef, start
//!     .ascii "hello"
//!     .space 16
//!     .align
//! ```

use core::fmt;

use crate::builder::{Asm, AsmError};
use crate::image::Image;
use crate::instr::Cond;
use crate::reg::Reg;

/// An error with the source line number where it occurred (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextAsmError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for TextAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TextAsmError {}

impl From<AsmError> for TextAsmError {
    fn from(e: AsmError) -> Self {
        TextAsmError {
            line: 0,
            msg: e.to_string(),
        }
    }
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b") {
        i64::from_str_radix(bin, 2).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

/// A parsed `[reg+disp]` memory operand.
struct MemOperand {
    base: Reg,
    disp: i16,
}

fn parse_mem(s: &str) -> Option<MemOperand> {
    let inner = s.trim().strip_prefix('[')?.strip_suffix(']')?;
    let (reg_str, disp) = if let Some(pos) = inner.find(['+', '-']) {
        let (r, d) = inner.split_at(pos);
        (r.trim(), parse_int(d)?)
    } else {
        (inner.trim(), 0)
    };
    let base = Reg::parse(reg_str)?;
    if !(-0x8000..0x8000).contains(&disp) {
        return None;
    }
    Some(MemOperand {
        base,
        disp: disp as i16,
    })
}

fn split_operands(s: &str) -> Vec<String> {
    // No operand can contain a comma (strings are handled separately by the
    // .ascii directive), so a plain split suffices.
    if s.trim().is_empty() {
        return Vec::new();
    }
    s.split(',').map(|p| p.trim().to_string()).collect()
}

struct LineCtx<'a> {
    line: usize,
    asm: &'a mut Asm,
}

impl LineCtx<'_> {
    fn err(&self, msg: impl Into<String>) -> TextAsmError {
        TextAsmError {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn reg(&self, s: &str) -> Result<Reg, TextAsmError> {
        Reg::parse(s).ok_or_else(|| self.err(format!("invalid register `{s}`")))
    }

    fn imm_i16(&self, s: &str) -> Result<i16, TextAsmError> {
        let v = parse_int(s).ok_or_else(|| self.err(format!("invalid immediate `{s}`")))?;
        // Accept the full 16-bit pattern range, signed or unsigned spelling.
        if !(-0x8000..0x10000).contains(&v) {
            return Err(self.err(format!("immediate `{s}` out of 16-bit range")));
        }
        Ok(v as u16 as i16)
    }

    fn imm_u16(&self, s: &str) -> Result<u16, TextAsmError> {
        Ok(self.imm_i16(s)? as u16)
    }

    fn imm_u32(&self, s: &str) -> Result<u32, TextAsmError> {
        let v = parse_int(s).ok_or_else(|| self.err(format!("invalid immediate `{s}`")))?;
        if !(-0x8000_0000..0x1_0000_0000).contains(&v) {
            return Err(self.err(format!("immediate `{s}` out of 32-bit range")));
        }
        Ok(v as u32)
    }

    fn mem(&self, s: &str) -> Result<MemOperand, TextAsmError> {
        parse_mem(s).ok_or_else(|| self.err(format!("invalid memory operand `{s}`")))
    }

    fn expect_n(&self, ops: &[String], n: usize) -> Result<(), TextAsmError> {
        if ops.len() != n {
            return Err(self.err(format!("expected {n} operand(s), found {}", ops.len())));
        }
        Ok(())
    }
}

fn dispatch(ctx: &mut LineCtx<'_>, mnemonic: &str, ops: &[String]) -> Result<(), TextAsmError> {
    use crate::instr::AluOp::*;
    match mnemonic {
        "nop" => ctx.asm.nop(),
        "halt" => ctx.asm.halt(),
        "iret" => ctx.asm.iret(),
        "di" => ctx.asm.di(),
        "ei" => ctx.asm.ei(),
        "ret" => ctx.asm.ret(),
        "pushf" => ctx.asm.pushf(),
        "popf" => ctx.asm.popf(),
        "swi" => {
            ctx.expect_n(ops, 1)?;
            let v = ctx.imm_u16(&ops[0])?;
            if v > 255 {
                return Err(ctx.err("swi vector out of range"));
            }
            ctx.asm.swi(v as u8);
        }
        "add" | "sub" | "and" | "or" | "xor" | "shl" | "shr" | "sra" | "mul" | "divu" | "remu" => {
            ctx.expect_n(ops, 3)?;
            let op = match mnemonic {
                "add" => Add,
                "sub" => Sub,
                "and" => And,
                "or" => Or,
                "xor" => Xor,
                "shl" => Shl,
                "shr" => Shr,
                "sra" => Sra,
                "mul" => Mul,
                "divu" => Divu,
                _ => Remu,
            };
            let (rd, rs1, rs2) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?, ctx.reg(&ops[2])?);
            ctx.asm.alu(op, rd, rs1, rs2);
        }
        "mov" => {
            ctx.expect_n(ops, 2)?;
            let (rd, rs1) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
            ctx.asm.mov(rd, rs1);
        }
        "not" => {
            ctx.expect_n(ops, 2)?;
            let (rd, rs1) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
            ctx.asm.not(rd, rs1);
        }
        "addi" | "andi" | "ori" | "xori" => {
            ctx.expect_n(ops, 3)?;
            let (rd, rs1) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
            match mnemonic {
                "addi" => {
                    let imm = ctx.imm_i16(&ops[2])?;
                    ctx.asm.addi(rd, rs1, imm);
                }
                "andi" => {
                    let imm = ctx.imm_u16(&ops[2])?;
                    ctx.asm.andi(rd, rs1, imm);
                }
                "ori" => {
                    let imm = ctx.imm_u16(&ops[2])?;
                    ctx.asm.ori(rd, rs1, imm);
                }
                _ => {
                    let imm = ctx.imm_u16(&ops[2])?;
                    ctx.asm.xori(rd, rs1, imm);
                }
            }
        }
        "shli" | "shri" | "srai" => {
            ctx.expect_n(ops, 3)?;
            let (rd, rs1) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
            let imm = ctx.imm_u16(&ops[2])?;
            if imm > 31 {
                return Err(ctx.err("shift amount out of range"));
            }
            match mnemonic {
                "shli" => ctx.asm.shli(rd, rs1, imm as u8),
                "shri" => ctx.asm.shri(rd, rs1, imm as u8),
                _ => ctx.asm.emit(crate::instr::Instr::Srai {
                    rd,
                    rs1,
                    imm: imm as u8,
                }),
            }
        }
        "movi" => {
            ctx.expect_n(ops, 2)?;
            let rd = ctx.reg(&ops[0])?;
            let imm = ctx.imm_i16(&ops[1])?;
            ctx.asm.movi(rd, imm);
        }
        "lui" => {
            ctx.expect_n(ops, 2)?;
            let rd = ctx.reg(&ops[0])?;
            let imm = ctx.imm_u16(&ops[1])?;
            ctx.asm.lui(rd, imm);
        }
        "li" => {
            ctx.expect_n(ops, 2)?;
            let rd = ctx.reg(&ops[0])?;
            let v = ctx.imm_u32(&ops[1])?;
            ctx.asm.li(rd, v);
        }
        "la" => {
            ctx.expect_n(ops, 2)?;
            let rd = ctx.reg(&ops[0])?;
            ctx.asm.la(rd, &ops[1]);
        }
        "lw" | "lb" | "lbs" | "lh" | "lhs" => {
            ctx.expect_n(ops, 2)?;
            let rd = ctx.reg(&ops[0])?;
            let m = ctx.mem(&ops[1])?;
            match mnemonic {
                "lw" => ctx.asm.lw(rd, m.base, m.disp),
                "lb" => ctx.asm.lb(rd, m.base, m.disp),
                "lbs" => ctx.asm.lbs(rd, m.base, m.disp),
                "lh" => ctx.asm.lh(rd, m.base, m.disp),
                _ => ctx.asm.lhs(rd, m.base, m.disp),
            }
        }
        "sw" | "sb" | "sh" => {
            ctx.expect_n(ops, 2)?;
            let m = ctx.mem(&ops[0])?;
            let rs = ctx.reg(&ops[1])?;
            match mnemonic {
                "sw" => ctx.asm.sw(m.base, m.disp, rs),
                "sb" => ctx.asm.sb(m.base, m.disp, rs),
                _ => ctx.asm.sh(m.base, m.disp, rs),
            }
        }
        "push" => {
            ctx.expect_n(ops, 1)?;
            let rs = ctx.reg(&ops[0])?;
            ctx.asm.push(rs);
        }
        "pop" => {
            ctx.expect_n(ops, 1)?;
            let rd = ctx.reg(&ops[0])?;
            ctx.asm.pop(rd);
        }
        "jmp" | "call" => {
            ctx.expect_n(ops, 1)?;
            if mnemonic == "jmp" {
                ctx.asm.jmp(&ops[0]);
            } else {
                ctx.asm.call(&ops[0]);
            }
        }
        "jr" | "callr" => {
            ctx.expect_n(ops, 1)?;
            let rs1 = ctx.reg(&ops[0])?;
            if mnemonic == "jr" {
                ctx.asm.jr(rs1);
            } else {
                ctx.asm.callr(rs1);
            }
        }
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            ctx.expect_n(ops, 3)?;
            let cond = match mnemonic {
                "beq" => Cond::Eq,
                "bne" => Cond::Ne,
                "blt" => Cond::Lt,
                "bge" => Cond::Ge,
                "bltu" => Cond::Ltu,
                _ => Cond::Geu,
            };
            let (rs1, rs2) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
            ctx.asm.branch(cond, rs1, rs2, &ops[2]);
        }
        other => return Err(ctx.err(format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

fn directive(ctx: &mut LineCtx<'_>, name: &str, rest: &str) -> Result<(), TextAsmError> {
    match name {
        ".word" => {
            for op in split_operands(rest) {
                if let Some(v) = parse_int(&op) {
                    if !(-0x8000_0000..0x1_0000_0000).contains(&v) {
                        return Err(ctx.err(format!("word `{op}` out of range")));
                    }
                    ctx.asm.word(v as u32);
                } else {
                    ctx.asm.word_label(&op);
                }
            }
        }
        ".space" => {
            let n = parse_int(rest)
                .filter(|&n| (0..=0x100_0000).contains(&n))
                .ok_or_else(|| ctx.err("invalid .space size"))?;
            ctx.asm.space(n as u32);
        }
        ".ascii" => {
            let s = rest.trim();
            let inner = s
                .strip_prefix('"')
                .and_then(|t| t.strip_suffix('"'))
                .ok_or_else(|| ctx.err(".ascii requires a double-quoted string"))?;
            // Process the common escapes.
            let mut bytes = Vec::with_capacity(inner.len());
            let mut chars = inner.chars();
            while let Some(c) = chars.next() {
                if c != '\\' {
                    let mut buf = [0u8; 4];
                    bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    continue;
                }
                match chars.next() {
                    Some('n') => bytes.push(b'\n'),
                    Some('t') => bytes.push(b'\t'),
                    Some('r') => bytes.push(b'\r'),
                    Some('0') => bytes.push(0),
                    Some('\\') => bytes.push(b'\\'),
                    Some('"') => bytes.push(b'"'),
                    other => {
                        return Err(ctx.err(format!("unknown escape `\\{}`", other.unwrap_or(' '))))
                    }
                }
            }
            ctx.asm.raw_bytes(&bytes);
        }
        ".align" => ctx.asm.align4(),
        other => return Err(ctx.err(format!("unknown directive `{other}`"))),
    }
    Ok(())
}

/// Assembles text `source` into an image based at `base`.
pub fn assemble_text(base: u32, source: &str) -> Result<Image, TextAsmError> {
    let mut asm = Asm::new(base);
    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = raw_line;
        // Strip comments, but not inside an .ascii string.
        if !line.trim_start().starts_with(".ascii") {
            if let Some(pos) = line.find([';', '#']) {
                line = &line[..pos];
            }
            if let Some(pos) = line.find("//") {
                line = &line[..pos];
            }
        }
        let mut rest = line.trim();
        // Leading labels.
        while let Some(colon) = rest.find(':') {
            let (lbl, tail) = rest.split_at(colon);
            let lbl = lbl.trim();
            if lbl.is_empty()
                || !lbl
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            asm.label(lbl);
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let mut ctx = LineCtx {
            line: line_no,
            asm: &mut asm,
        };
        let (head, tail) = match rest.find(char::is_whitespace) {
            Some(pos) => (&rest[..pos], rest[pos..].trim()),
            None => (rest, ""),
        };
        let head_lc = head.to_ascii_lowercase();
        if head_lc.starts_with('.') {
            directive(&mut ctx, &head_lc, tail)?;
        } else {
            let ops = split_operands(tail);
            dispatch(&mut ctx, &head_lc, &ops)?;
        }
    }
    asm.assemble().map_err(TextAsmError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::instr::Instr;

    #[test]
    fn assembles_basic_program() {
        let src = r#"
            ; count to ten
            start:
                li   r0, 0
                li   r1, 10
            loop:
                addi r0, r0, 1
                blt  r0, r1, loop
                halt
        "#;
        let img = assemble_text(0x1000, src).unwrap();
        assert_eq!(img.symbol("start"), Some(0x1000));
        assert!(img.symbol("loop").is_some());
        let last = img.word_at(img.end() - 4).unwrap();
        assert_eq!(decode(last).unwrap(), Instr::Halt);
    }

    #[test]
    fn memory_operands() {
        let img = assemble_text(0, "lw r1, [sp+8]\nsw [r2-4], r3\nlw r0, [r1]").unwrap();
        let w: Vec<Instr> = img.words().map(|w| decode(w).unwrap()).collect();
        assert_eq!(
            w[0],
            Instr::Lw {
                rd: Reg::R1,
                rs1: Reg::Sp,
                disp: 8
            }
        );
        assert_eq!(
            w[1],
            Instr::Sw {
                rs1: Reg::R2,
                rs2: Reg::R3,
                disp: -4
            }
        );
        assert_eq!(
            w[2],
            Instr::Lw {
                rd: Reg::R0,
                rs1: Reg::R1,
                disp: 0
            }
        );
    }

    #[test]
    fn directives() {
        let src = "
            data: .word 0x11, 0x22, end
            .space 4
            .align
            end: halt
        ";
        let img = assemble_text(0x100, src).unwrap();
        assert_eq!(img.word_at(0x100), Some(0x11));
        assert_eq!(img.word_at(0x104), Some(0x22));
        assert_eq!(img.word_at(0x108), Some(img.expect_symbol("end")));
    }

    #[test]
    fn ascii_directive_keeps_semicolons() {
        let img = assemble_text(0, ".ascii \"a;b\"").unwrap();
        assert_eq!(img.bytes, b"a;b");
    }

    #[test]
    fn ascii_escapes_processed() {
        let img = assemble_text(0, r#".ascii "a\n\t\0\\\"z""#).unwrap();
        assert_eq!(img.bytes, b"a\n\t\0\\\"z");
        let err = assemble_text(0, r#".ascii "\q""#).unwrap_err();
        assert!(err.msg.contains("unknown escape"));
    }

    #[test]
    fn error_reports_line_number() {
        let err = assemble_text(0, "nop\nbogus r1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("bogus"));
    }

    #[test]
    fn bad_register_reported() {
        let err = assemble_text(0, "mov r9, r0").unwrap_err();
        assert!(err.msg.contains("invalid register"));
    }

    #[test]
    fn undefined_label_reported() {
        let err = assemble_text(0, "jmp nowhere").unwrap_err();
        assert!(err.msg.contains("undefined label"));
    }

    #[test]
    fn hex_binary_and_negative_immediates() {
        let img = assemble_text(0, "movi r0, -1\nmovi r1, 0x7f\nmovi r2, 0b101").unwrap();
        let w: Vec<Instr> = img.words().map(|w| decode(w).unwrap()).collect();
        assert_eq!(
            w[0],
            Instr::Movi {
                rd: Reg::R0,
                imm: -1
            }
        );
        assert_eq!(
            w[1],
            Instr::Movi {
                rd: Reg::R1,
                imm: 0x7f
            }
        );
        assert_eq!(
            w[2],
            Instr::Movi {
                rd: Reg::R2,
                imm: 5
            }
        );
    }

    #[test]
    fn label_and_instruction_on_one_line() {
        let img = assemble_text(0, "entry: halt").unwrap();
        assert_eq!(img.symbol("entry"), Some(0));
        assert_eq!(decode(img.word_at(0).unwrap()).unwrap(), Instr::Halt);
    }
}
