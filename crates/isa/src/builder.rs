//! Programmatic two-pass assembler.
//!
//! [`Asm`] is the backend used both by host Rust code that generates
//! simulator programs (the embedded OS, trustlets, attack harnesses) and by
//! the text assembler front-end in [`crate::asm`].

use core::fmt;
use std::collections::BTreeMap;

use crate::encode::encode;
use crate::image::Image;
use crate::instr::{AluOp, Cond, Instr};
use crate::reg::Reg;

/// An error raised while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A relative branch/call target is out of the ±32 KiB range.
    RelativeOutOfRange { label: String, from: u32, to: u32 },
    /// An instruction would be emitted at a non-word-aligned position.
    MisalignedCode { at: u32 },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::RelativeOutOfRange { label, from, to } => write!(
                f,
                "relative target `{label}` out of range (from {from:#010x} to {to:#010x})"
            ),
            AsmError::MisalignedCode { at } => {
                write!(f, "instruction emitted at unaligned address {at:#010x}")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Fixup {
    /// Patch the low 16 bits with `target - (site + 4)`.
    Rel16 { site: u32, label: String },
    /// Patch a `lui`/`ori` pair at `site` with the target's high/low half.
    AbsHiLo { site: u32, label: String },
    /// Patch a data word with the target's absolute address.
    WordAbs { site: u32, label: String },
}

/// A two-pass assembler that builds an [`Image`].
///
/// Emission methods append instructions or data at the current position;
/// label-taking methods record fixups resolved by [`Asm::assemble`].
///
/// # Examples
///
/// ```
/// use trustlite_isa::{Asm, Reg};
///
/// let mut a = Asm::new(0x0);
/// a.li(Reg::R0, 0);
/// a.label("loop");
/// a.addi(Reg::R0, Reg::R0, 1);
/// a.li(Reg::R1, 10);
/// a.blt(Reg::R0, Reg::R1, "loop");
/// a.halt();
/// let img = a.assemble().unwrap();
/// assert!(img.len() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Asm {
    base: u32,
    bytes: Vec<u8>,
    labels: BTreeMap<String, u32>,
    fixups: Vec<Fixup>,
    error: Option<AsmError>,
}

impl Asm {
    /// Creates an assembler whose image will be positioned at `base`.
    pub fn new(base: u32) -> Self {
        Asm {
            base,
            bytes: Vec::new(),
            labels: BTreeMap::new(),
            fixups: Vec::new(),
            error: None,
        }
    }

    /// The absolute address of the next emitted byte.
    pub fn here(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }

    /// Returns true if `name` has been defined.
    pub fn label_defined(&self, name: &str) -> bool {
        self.labels.contains_key(name)
    }

    /// Defines `name` at the current position.
    pub fn label(&mut self, name: &str) {
        if self.labels.insert(name.to_string(), self.here()).is_some() {
            self.set_error(AsmError::DuplicateLabel(name.to_string()));
        }
    }

    fn set_error(&mut self, e: AsmError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instr) {
        if !self.bytes.len().is_multiple_of(4) {
            self.set_error(AsmError::MisalignedCode { at: self.here() });
            // Realign so later fixup sites stay word-aligned.
            self.align4();
        }
        self.bytes.extend_from_slice(&encode(i).to_le_bytes());
    }

    // --- System ---

    /// Emits `nop`.
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }

    /// Emits `halt`.
    pub fn halt(&mut self) {
        self.emit(Instr::Halt);
    }

    /// Emits `swi vector`.
    pub fn swi(&mut self, vector: u8) {
        self.emit(Instr::Swi(vector));
    }

    /// Emits `iret`.
    pub fn iret(&mut self) {
        self.emit(Instr::Iret);
    }

    /// Emits `di`.
    pub fn di(&mut self) {
        self.emit(Instr::Di);
    }

    /// Emits `ei`.
    pub fn ei(&mut self) {
        self.emit(Instr::Ei);
    }

    // --- ALU ---

    /// Emits a register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op, rd, rs1, rs2 });
    }

    /// Emits `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Add, rd, rs1, rs2);
    }

    /// Emits `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sub, rd, rs1, rs2);
    }

    /// Emits `and rd, rs1, rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::And, rd, rs1, rs2);
    }

    /// Emits `or rd, rs1, rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Or, rd, rs1, rs2);
    }

    /// Emits `xor rd, rs1, rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Xor, rd, rs1, rs2);
    }

    /// Emits `shl rd, rs1, rs2`.
    pub fn shl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Shl, rd, rs1, rs2);
    }

    /// Emits `shr rd, rs1, rs2`.
    pub fn shr(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Shr, rd, rs1, rs2);
    }

    /// Emits `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Mul, rd, rs1, rs2);
    }

    /// Emits `mov rd, rs1`.
    pub fn mov(&mut self, rd: Reg, rs1: Reg) {
        self.emit(Instr::Mov { rd, rs1 });
    }

    /// Emits `not rd, rs1`.
    pub fn not(&mut self, rd: Reg, rs1: Reg) {
        self.emit(Instr::Not { rd, rs1 });
    }

    /// Emits `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i16) {
        self.emit(Instr::Addi { rd, rs1, imm });
    }

    /// Emits `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: u16) {
        self.emit(Instr::Andi { rd, rs1, imm });
    }

    /// Emits `ori rd, rs1, imm`.
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: u16) {
        self.emit(Instr::Ori { rd, rs1, imm });
    }

    /// Emits `xori rd, rs1, imm`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: u16) {
        self.emit(Instr::Xori { rd, rs1, imm });
    }

    /// Emits `shli rd, rs1, imm`.
    pub fn shli(&mut self, rd: Reg, rs1: Reg, imm: u8) {
        self.emit(Instr::Shli { rd, rs1, imm });
    }

    /// Emits `shri rd, rs1, imm`.
    pub fn shri(&mut self, rd: Reg, rs1: Reg, imm: u8) {
        self.emit(Instr::Shri { rd, rs1, imm });
    }

    /// Emits `movi rd, imm`.
    pub fn movi(&mut self, rd: Reg, imm: i16) {
        self.emit(Instr::Movi { rd, imm });
    }

    /// Emits `lui rd, imm`.
    pub fn lui(&mut self, rd: Reg, imm: u16) {
        self.emit(Instr::Lui { rd, imm });
    }

    /// Loads an arbitrary 32-bit constant, using one instruction when the
    /// value fits a sign-extended 16-bit immediate and `lui`(+`ori`)
    /// otherwise.
    pub fn li(&mut self, rd: Reg, value: u32) {
        let sext = value as i32;
        if (-0x8000..0x8000).contains(&sext) {
            self.movi(rd, sext as i16);
            return;
        }
        self.lui(rd, (value >> 16) as u16);
        if value & 0xffff != 0 {
            self.ori(rd, rd, (value & 0xffff) as u16);
        }
    }

    /// Loads the absolute address of `label` into `rd`.
    ///
    /// Always occupies two instruction words (`lui` + `ori`) so that code
    /// size is position-independent of the final symbol value.
    pub fn la(&mut self, rd: Reg, label: &str) {
        let site = self.here();
        self.fixups.push(Fixup::AbsHiLo {
            site,
            label: label.to_string(),
        });
        self.lui(rd, 0);
        self.ori(rd, rd, 0);
    }

    // --- Memory ---

    /// Emits `lw rd, [rs1 + disp]`.
    pub fn lw(&mut self, rd: Reg, rs1: Reg, disp: i16) {
        self.emit(Instr::Lw { rd, rs1, disp });
    }

    /// Emits `sw [rs1 + disp], rs2`.
    pub fn sw(&mut self, rs1: Reg, disp: i16, rs2: Reg) {
        self.emit(Instr::Sw { rs1, rs2, disp });
    }

    /// Emits `lb rd, [rs1 + disp]`.
    pub fn lb(&mut self, rd: Reg, rs1: Reg, disp: i16) {
        self.emit(Instr::Lb { rd, rs1, disp });
    }

    /// Emits `lbs rd, [rs1 + disp]` (sign-extending byte load).
    pub fn lbs(&mut self, rd: Reg, rs1: Reg, disp: i16) {
        self.emit(Instr::Lbs { rd, rs1, disp });
    }

    /// Emits `lh rd, [rs1 + disp]`.
    pub fn lh(&mut self, rd: Reg, rs1: Reg, disp: i16) {
        self.emit(Instr::Lh { rd, rs1, disp });
    }

    /// Emits `lhs rd, [rs1 + disp]` (sign-extending halfword load).
    pub fn lhs(&mut self, rd: Reg, rs1: Reg, disp: i16) {
        self.emit(Instr::Lhs { rd, rs1, disp });
    }

    /// Emits `sh [rs1 + disp], rs2`.
    pub fn sh(&mut self, rs1: Reg, disp: i16, rs2: Reg) {
        self.emit(Instr::Sh { rs1, rs2, disp });
    }

    /// Emits `divu rd, rs1, rs2`.
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Divu, rd, rs1, rs2);
    }

    /// Emits `remu rd, rs1, rs2`.
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Remu, rd, rs1, rs2);
    }

    /// Emits `sb [rs1 + disp], rs2`.
    pub fn sb(&mut self, rs1: Reg, disp: i16, rs2: Reg) {
        self.emit(Instr::Sb { rs1, rs2, disp });
    }

    /// Emits `push rs`.
    pub fn push(&mut self, rs: Reg) {
        self.emit(Instr::Push { rs });
    }

    /// Emits `pop rd`.
    pub fn pop(&mut self, rd: Reg) {
        self.emit(Instr::Pop { rd });
    }

    /// Emits `pushf`.
    pub fn pushf(&mut self) {
        self.emit(Instr::Pushf);
    }

    /// Emits `popf`.
    pub fn popf(&mut self) {
        self.emit(Instr::Popf);
    }

    // --- Control flow ---

    /// Emits a relative jump to `label`.
    pub fn jmp(&mut self, label: &str) {
        let site = self.here();
        self.fixups.push(Fixup::Rel16 {
            site,
            label: label.to_string(),
        });
        self.emit(Instr::Jmp { off: 0 });
    }

    /// Emits `jr rs1`.
    pub fn jr(&mut self, rs1: Reg) {
        self.emit(Instr::Jr { rs1 });
    }

    /// Emits a relative call to `label`.
    pub fn call(&mut self, label: &str) {
        let site = self.here();
        self.fixups.push(Fixup::Rel16 {
            site,
            label: label.to_string(),
        });
        self.emit(Instr::Call { off: 0 });
    }

    /// Emits `callr rs1`.
    pub fn callr(&mut self, rs1: Reg) {
        self.emit(Instr::Callr { rs1 });
    }

    /// Loads the absolute address `addr` into `scratch` and calls through
    /// it. This is how tasks call entry points of other protection domains.
    pub fn call_abs(&mut self, addr: u32, scratch: Reg) {
        self.li(scratch, addr);
        self.callr(scratch);
    }

    /// Emits `ret`.
    pub fn ret(&mut self) {
        self.emit(Instr::Ret);
    }

    /// Emits a compare-and-branch to `label`.
    pub fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, label: &str) {
        let site = self.here();
        self.fixups.push(Fixup::Rel16 {
            site,
            label: label.to_string(),
        });
        self.emit(Instr::Branch {
            cond,
            rs1,
            rs2,
            off: 0,
        });
    }

    /// Emits `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Eq, rs1, rs2, label);
    }

    /// Emits `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Ne, rs1, rs2, label);
    }

    /// Emits `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Lt, rs1, rs2, label);
    }

    /// Emits `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Ge, rs1, rs2, label);
    }

    /// Emits `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Ltu, rs1, rs2, label);
    }

    /// Emits `bgeu rs1, rs2, label`.
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Geu, rs1, rs2, label);
    }

    /// Emits a platform-extension instruction.
    pub fn ext(&mut self, op: u8, rd: Reg, rs1: Reg, imm: u16) {
        self.emit(Instr::Ext { op, rd, rs1, imm });
    }

    // --- Data directives ---

    /// Emits one literal 32-bit word.
    pub fn word(&mut self, w: u32) {
        self.bytes.extend_from_slice(&w.to_le_bytes());
    }

    /// Emits several literal words.
    pub fn words(&mut self, ws: &[u32]) {
        for &w in ws {
            self.word(w);
        }
    }

    /// Emits a word that will hold the absolute address of `label`.
    pub fn word_label(&mut self, label: &str) {
        let site = self.here();
        self.fixups.push(Fixup::WordAbs {
            site,
            label: label.to_string(),
        });
        self.word(0);
    }

    /// Reserves `n` zero bytes.
    pub fn space(&mut self, n: u32) {
        self.bytes.extend(std::iter::repeat_n(0u8, n as usize));
    }

    /// Emits raw bytes.
    pub fn raw_bytes(&mut self, b: &[u8]) {
        self.bytes.extend_from_slice(b);
    }

    /// Emits a string's UTF-8 bytes (no terminator).
    pub fn ascii(&mut self, s: &str) {
        self.bytes.extend_from_slice(s.as_bytes());
    }

    /// Pads with zero bytes to the next 4-byte boundary.
    pub fn align4(&mut self) {
        while !self.bytes.len().is_multiple_of(4) {
            self.bytes.push(0);
        }
    }

    /// Resolves all fixups and produces the final image.
    pub fn assemble(self) -> Result<Image, AsmError> {
        let Asm {
            base,
            mut bytes,
            labels,
            fixups,
            error,
        } = self;
        if let Some(e) = error {
            return Err(e);
        }
        let lookup = |label: &str| -> Result<u32, AsmError> {
            labels
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel(label.to_string()))
        };
        let patch_low16 = |bytes: &mut [u8], off: usize, v: u16| {
            bytes[off] = v as u8;
            bytes[off + 1] = (v >> 8) as u8;
        };
        for f in &fixups {
            match f {
                Fixup::Rel16 { site, label } => {
                    let target = lookup(label)?;
                    let delta = (target as i64) - ((site + 4) as i64);
                    if !(-0x8000..0x8000).contains(&delta) || delta % 4 != 0 {
                        return Err(AsmError::RelativeOutOfRange {
                            label: label.clone(),
                            from: *site,
                            to: target,
                        });
                    }
                    let off = (*site - base) as usize;
                    patch_low16(&mut bytes, off, delta as u16);
                }
                Fixup::AbsHiLo { site, label } => {
                    let target = lookup(label)?;
                    let off = (*site - base) as usize;
                    patch_low16(&mut bytes, off, (target >> 16) as u16);
                    patch_low16(&mut bytes, off + 4, (target & 0xffff) as u16);
                }
                Fixup::WordAbs { site, label } => {
                    let target = lookup(label)?;
                    let off = (*site - base) as usize;
                    bytes[off..off + 4].copy_from_slice(&target.to_le_bytes());
                }
            }
        }
        Ok(Image {
            base,
            bytes,
            symbols: labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new(0x100);
        a.label("top");
        a.nop(); // 0x100
        a.jmp("end"); // 0x104, target 0x110 -> off 8
        a.nop(); // 0x108
        a.jmp("top"); // 0x10c, target 0x100 -> off -16
        a.label("end");
        a.halt(); // 0x110
        let img = a.assemble().unwrap();
        assert_eq!(
            decode(img.word_at(0x104).unwrap()).unwrap(),
            Instr::Jmp { off: 8 }
        );
        assert_eq!(
            decode(img.word_at(0x10c).unwrap()).unwrap(),
            Instr::Jmp { off: -16 }
        );
    }

    #[test]
    fn la_patches_hi_lo() {
        let mut a = Asm::new(0x2000_0000);
        a.la(Reg::R1, "data");
        a.halt();
        a.label("data");
        a.word(0xdead_beef);
        let img = a.assemble().unwrap();
        let lui = decode(img.word_at(0x2000_0000).unwrap()).unwrap();
        let ori = decode(img.word_at(0x2000_0004).unwrap()).unwrap();
        assert_eq!(
            lui,
            Instr::Lui {
                rd: Reg::R1,
                imm: 0x2000
            }
        );
        assert_eq!(
            ori,
            Instr::Ori {
                rd: Reg::R1,
                rs1: Reg::R1,
                imm: 0x000c
            }
        );
    }

    #[test]
    fn li_picks_shortest_form() {
        let mut a = Asm::new(0);
        a.li(Reg::R0, 5); // movi
        a.li(Reg::R1, 0xffff_fffe); // movi -2
        a.li(Reg::R2, 0x0001_0000); // lui only
        a.li(Reg::R3, 0x1234_5678); // lui + ori
        let img = a.assemble().unwrap();
        let instrs: Vec<Instr> = img.words().map(|w| decode(w).unwrap()).collect();
        assert_eq!(instrs.len(), 5);
        assert_eq!(
            instrs[0],
            Instr::Movi {
                rd: Reg::R0,
                imm: 5
            }
        );
        assert_eq!(
            instrs[1],
            Instr::Movi {
                rd: Reg::R1,
                imm: -2
            }
        );
        assert_eq!(
            instrs[2],
            Instr::Lui {
                rd: Reg::R2,
                imm: 1
            }
        );
        assert_eq!(
            instrs[3],
            Instr::Lui {
                rd: Reg::R3,
                imm: 0x1234
            }
        );
        assert_eq!(
            instrs[4],
            Instr::Ori {
                rd: Reg::R3,
                rs1: Reg::R3,
                imm: 0x5678
            }
        );
    }

    #[test]
    fn word_label_stores_absolute_address() {
        let mut a = Asm::new(0x400);
        a.word_label("tgt");
        a.label("tgt");
        a.halt();
        let img = a.assemble().unwrap();
        assert_eq!(img.word_at(0x400), Some(0x404));
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut a = Asm::new(0);
        a.label("x");
        a.label("x");
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn undefined_label_rejected() {
        let mut a = Asm::new(0);
        a.jmp("nowhere");
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn relative_out_of_range_rejected() {
        let mut a = Asm::new(0);
        a.jmp("far");
        a.space(0x10000);
        a.label("far");
        a.halt();
        assert!(matches!(
            a.assemble(),
            Err(AsmError::RelativeOutOfRange { .. })
        ));
    }

    #[test]
    fn misaligned_instruction_rejected() {
        let mut a = Asm::new(0);
        a.ascii("ab");
        a.nop();
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::MisalignedCode { at: 2 }
        );
    }

    #[test]
    fn align4_pads() {
        let mut a = Asm::new(0);
        a.ascii("abc");
        a.align4();
        a.nop();
        let img = a.assemble().unwrap();
        assert_eq!(img.len(), 8);
    }

    #[test]
    fn symbols_are_absolute() {
        let mut a = Asm::new(0x1000_0000);
        a.nop();
        a.label("after");
        let img = a.assemble().unwrap();
        assert_eq!(img.symbol("after"), Some(0x1000_0004));
    }
}
