//! Binary decoding of SP32 instructions.

use core::fmt;

use crate::encode::opcodes as op;
use crate::instr::{AluOp, Cond, Instr};
use crate::reg::Reg;

/// An error produced when decoding a 32-bit word that is not a valid SP32
/// instruction. On the simulated core this surfaces as an
/// illegal-instruction exception.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte is not assigned.
    UnknownOpcode(u8),
    /// A register field holds an invalid encoding (9..=15).
    BadRegister { field: &'static str, code: u32 },
    /// A constant shift amount exceeds 31.
    BadShiftAmount(u16),
    /// A relative control-flow offset is not a multiple of four.
    MisalignedOffset(i16),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(o) => write!(f, "unknown opcode {o:#04x}"),
            DecodeError::BadRegister { field, code } => {
                write!(f, "invalid register encoding {code} in field {field}")
            }
            DecodeError::BadShiftAmount(n) => write!(f, "shift amount {n} out of range"),
            DecodeError::MisalignedOffset(o) => {
                write!(f, "relative offset {o} is not word-aligned")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

fn rd(w: u32) -> Result<Reg, DecodeError> {
    let code = (w >> 20) & 0xf;
    Reg::from_code(code).ok_or(DecodeError::BadRegister { field: "rd", code })
}

fn rs1(w: u32) -> Result<Reg, DecodeError> {
    let code = (w >> 16) & 0xf;
    Reg::from_code(code).ok_or(DecodeError::BadRegister { field: "rs1", code })
}

fn rs2(w: u32) -> Result<Reg, DecodeError> {
    let code = (w >> 12) & 0xf;
    Reg::from_code(code).ok_or(DecodeError::BadRegister { field: "rs2", code })
}

fn imm16(w: u32) -> u16 {
    (w & 0xffff) as u16
}

fn shift_amount(w: u32) -> Result<u8, DecodeError> {
    let imm = imm16(w);
    if imm > 31 {
        return Err(DecodeError::BadShiftAmount(imm));
    }
    Ok(imm as u8)
}

fn rel_off(w: u32) -> Result<i16, DecodeError> {
    let off = imm16(w) as i16;
    if off % 4 != 0 {
        return Err(DecodeError::MisalignedOffset(off));
    }
    Ok(off)
}

/// Decodes one 32-bit word into an instruction.
pub fn decode(w: u32) -> Result<Instr, DecodeError> {
    let opcode = (w >> 24) as u8;
    let alu = |a: AluOp| -> Result<Instr, DecodeError> {
        Ok(Instr::Alu {
            op: a,
            rd: rd(w)?,
            rs1: rs1(w)?,
            rs2: rs2(w)?,
        })
    };
    let branch = |c: Cond| -> Result<Instr, DecodeError> {
        Ok(Instr::Branch {
            cond: c,
            rs1: rd(w)?,
            rs2: rs1(w)?,
            off: rel_off(w)?,
        })
    };
    match opcode {
        op::NOP => Ok(Instr::Nop),
        op::HALT => Ok(Instr::Halt),
        op::SWI => Ok(Instr::Swi((w & 0xff) as u8)),
        op::IRET => Ok(Instr::Iret),
        op::DI => Ok(Instr::Di),
        op::EI => Ok(Instr::Ei),

        op::ADD => alu(AluOp::Add),
        op::SUB => alu(AluOp::Sub),
        op::AND => alu(AluOp::And),
        op::OR => alu(AluOp::Or),
        op::XOR => alu(AluOp::Xor),
        op::SHL => alu(AluOp::Shl),
        op::SHR => alu(AluOp::Shr),
        op::SRA => alu(AluOp::Sra),
        op::MUL => alu(AluOp::Mul),
        op::DIVU => alu(AluOp::Divu),
        op::REMU => alu(AluOp::Remu),
        op::MOV => Ok(Instr::Mov {
            rd: rd(w)?,
            rs1: rs1(w)?,
        }),
        op::NOT => Ok(Instr::Not {
            rd: rd(w)?,
            rs1: rs1(w)?,
        }),

        op::ADDI => Ok(Instr::Addi {
            rd: rd(w)?,
            rs1: rs1(w)?,
            imm: imm16(w) as i16,
        }),
        op::ANDI => Ok(Instr::Andi {
            rd: rd(w)?,
            rs1: rs1(w)?,
            imm: imm16(w),
        }),
        op::ORI => Ok(Instr::Ori {
            rd: rd(w)?,
            rs1: rs1(w)?,
            imm: imm16(w),
        }),
        op::XORI => Ok(Instr::Xori {
            rd: rd(w)?,
            rs1: rs1(w)?,
            imm: imm16(w),
        }),
        op::SHLI => Ok(Instr::Shli {
            rd: rd(w)?,
            rs1: rs1(w)?,
            imm: shift_amount(w)?,
        }),
        op::SHRI => Ok(Instr::Shri {
            rd: rd(w)?,
            rs1: rs1(w)?,
            imm: shift_amount(w)?,
        }),
        op::SRAI => Ok(Instr::Srai {
            rd: rd(w)?,
            rs1: rs1(w)?,
            imm: shift_amount(w)?,
        }),
        op::MOVI => Ok(Instr::Movi {
            rd: rd(w)?,
            imm: imm16(w) as i16,
        }),
        op::LUI => Ok(Instr::Lui {
            rd: rd(w)?,
            imm: imm16(w),
        }),

        op::LW => Ok(Instr::Lw {
            rd: rd(w)?,
            rs1: rs1(w)?,
            disp: imm16(w) as i16,
        }),
        op::SW => Ok(Instr::Sw {
            rs1: rs1(w)?,
            rs2: rd(w)?,
            disp: imm16(w) as i16,
        }),
        op::LB => Ok(Instr::Lb {
            rd: rd(w)?,
            rs1: rs1(w)?,
            disp: imm16(w) as i16,
        }),
        op::LBS => Ok(Instr::Lbs {
            rd: rd(w)?,
            rs1: rs1(w)?,
            disp: imm16(w) as i16,
        }),
        op::SB => Ok(Instr::Sb {
            rs1: rs1(w)?,
            rs2: rd(w)?,
            disp: imm16(w) as i16,
        }),
        op::LH => Ok(Instr::Lh {
            rd: rd(w)?,
            rs1: rs1(w)?,
            disp: imm16(w) as i16,
        }),
        op::LHS => Ok(Instr::Lhs {
            rd: rd(w)?,
            rs1: rs1(w)?,
            disp: imm16(w) as i16,
        }),
        op::SH => Ok(Instr::Sh {
            rs1: rs1(w)?,
            rs2: rd(w)?,
            disp: imm16(w) as i16,
        }),

        op::PUSH => Ok(Instr::Push { rs: rd(w)? }),
        op::POP => Ok(Instr::Pop { rd: rd(w)? }),
        op::PUSHF => Ok(Instr::Pushf),
        op::POPF => Ok(Instr::Popf),

        op::JMP => Ok(Instr::Jmp { off: rel_off(w)? }),
        op::JR => Ok(Instr::Jr { rs1: rs1(w)? }),
        op::CALL => Ok(Instr::Call { off: rel_off(w)? }),
        op::CALLR => Ok(Instr::Callr { rs1: rs1(w)? }),
        op::RET => Ok(Instr::Ret),
        op::BEQ => branch(Cond::Eq),
        op::BNE => branch(Cond::Ne),
        op::BLT => branch(Cond::Lt),
        op::BGE => branch(Cond::Ge),
        op::BLTU => branch(Cond::Ltu),
        op::BGEU => branch(Cond::Geu),

        op::EXT_BASE..=op::EXT_LAST => Ok(Instr::Ext {
            op: opcode & 0x0f,
            rd: rd(w)?,
            rs1: rs1(w)?,
            imm: imm16(w),
        }),

        other => Err(DecodeError::UnknownOpcode(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn roundtrip(i: Instr) {
        assert_eq!(decode(encode(i)), Ok(i), "instruction {i}");
    }

    #[test]
    fn roundtrip_system() {
        for i in [
            Instr::Nop,
            Instr::Halt,
            Instr::Iret,
            Instr::Di,
            Instr::Ei,
            Instr::Ret,
        ] {
            roundtrip(i);
        }
        roundtrip(Instr::Swi(0));
        roundtrip(Instr::Swi(255));
    }

    #[test]
    fn roundtrip_alu_all_ops() {
        for a in AluOp::ALL {
            roundtrip(Instr::Alu {
                op: a,
                rd: Reg::R3,
                rs1: Reg::Sp,
                rs2: Reg::R7,
            });
        }
    }

    #[test]
    fn roundtrip_immediates() {
        roundtrip(Instr::Addi {
            rd: Reg::R1,
            rs1: Reg::R2,
            imm: -32768,
        });
        roundtrip(Instr::Addi {
            rd: Reg::R1,
            rs1: Reg::R2,
            imm: 32767,
        });
        roundtrip(Instr::Andi {
            rd: Reg::R0,
            rs1: Reg::R0,
            imm: 0xffff,
        });
        roundtrip(Instr::Movi {
            rd: Reg::Sp,
            imm: -1,
        });
        roundtrip(Instr::Lui {
            rd: Reg::R4,
            imm: 0x2000,
        });
        roundtrip(Instr::Shli {
            rd: Reg::R4,
            rs1: Reg::R4,
            imm: 31,
        });
    }

    #[test]
    fn roundtrip_memory() {
        roundtrip(Instr::Lw {
            rd: Reg::R0,
            rs1: Reg::Sp,
            disp: -4,
        });
        roundtrip(Instr::Sw {
            rs1: Reg::R6,
            rs2: Reg::R7,
            disp: 1024,
        });
        roundtrip(Instr::Lb {
            rd: Reg::R2,
            rs1: Reg::R1,
            disp: 3,
        });
        roundtrip(Instr::Sb {
            rs1: Reg::R2,
            rs2: Reg::R3,
            disp: -3,
        });
        roundtrip(Instr::Push { rs: Reg::Sp });
        roundtrip(Instr::Pop { rd: Reg::R7 });
        roundtrip(Instr::Pushf);
        roundtrip(Instr::Popf);
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(Instr::Jmp { off: -32768 });
        roundtrip(Instr::Call { off: 32764 });
        roundtrip(Instr::Jr { rs1: Reg::R5 });
        roundtrip(Instr::Callr { rs1: Reg::R0 });
        for c in Cond::ALL {
            roundtrip(Instr::Branch {
                cond: c,
                rs1: Reg::R1,
                rs2: Reg::R2,
                off: -8,
            });
        }
    }

    #[test]
    fn roundtrip_ext() {
        roundtrip(Instr::Ext {
            op: 0,
            rd: Reg::R0,
            rs1: Reg::R1,
            imm: 7,
        });
        roundtrip(Instr::Ext {
            op: 15,
            rd: Reg::Sp,
            rs1: Reg::R7,
            imm: 0xffff,
        });
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(decode(0xff00_0000), Err(DecodeError::UnknownOpcode(0xff)));
        assert_eq!(decode(0x0600_0000), Err(DecodeError::UnknownOpcode(0x06)));
    }

    #[test]
    fn bad_register_rejected() {
        // ADD with rd field = 9 (only 0..=8 valid).
        let w = (op::ADD as u32) << 24 | 9 << 20;
        assert!(matches!(
            decode(w),
            Err(DecodeError::BadRegister { field: "rd", .. })
        ));
    }

    #[test]
    fn bad_shift_rejected() {
        let w = (op::SHLI as u32) << 24 | 32;
        assert_eq!(decode(w), Err(DecodeError::BadShiftAmount(32)));
    }

    #[test]
    fn misaligned_offset_rejected() {
        let w = (op::JMP as u32) << 24 | 2;
        assert_eq!(decode(w), Err(DecodeError::MisalignedOffset(2)));
    }
}
