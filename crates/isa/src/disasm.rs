//! Disassembler for tracing and debugging.

use crate::decode::decode;
use crate::image::Image;

/// Disassembles one word, yielding `??? <word>` for invalid encodings.
pub fn disassemble(word: u32) -> String {
    match decode(word) {
        Ok(i) => i.to_string(),
        Err(e) => format!("??? {word:#010x} ({e})"),
    }
}

/// Disassembles an entire image into `(address, text)` lines.
///
/// Data regions will decode as garbage or `???`; this is a debugging aid,
/// not a round-trip tool.
pub fn disassemble_image(img: &Image) -> Vec<(u32, String)> {
    img.words()
        .enumerate()
        .map(|(i, w)| (img.base + 4 * i as u32, disassemble(w)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Asm;
    use crate::encode::encode;
    use crate::instr::Instr;
    use crate::reg::Reg;

    #[test]
    fn valid_instruction_formats() {
        assert_eq!(disassemble(encode(Instr::Halt)), "halt");
        assert_eq!(
            disassemble(encode(Instr::Lw {
                rd: Reg::R0,
                rs1: Reg::Sp,
                disp: -4
            })),
            "lw r0, [sp-4]"
        );
    }

    #[test]
    fn invalid_word_marked() {
        assert!(disassemble(0xff00_0000).starts_with("???"));
    }

    #[test]
    fn image_listing_addresses() {
        let mut a = Asm::new(0x100);
        a.nop();
        a.halt();
        let img = a.assemble().unwrap();
        let lines = disassemble_image(&img);
        assert_eq!(lines[0], (0x100, "nop".to_string()));
        assert_eq!(lines[1], (0x104, "halt".to_string()));
    }
}
