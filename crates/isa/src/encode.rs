//! Binary encoding of SP32 instructions.
//!
//! Every instruction is one 32-bit little-endian word:
//!
//! ```text
//! [31:24] opcode
//! [23:20] rd    (or rs2 for stores, rs1 for branches, rs for push)
//! [19:16] rs1   (or rs2 for branches)
//! [15:12] rs2   (R-format only)
//! [15:0]  imm16 (I-format, displacements, relative offsets)
//! ```

use crate::instr::{AluOp, Cond, Instr};
use crate::reg::Reg;

/// Opcode constants. Grouped by instruction class; gaps are reserved.
pub mod opcodes {
    pub const NOP: u8 = 0x00;
    pub const HALT: u8 = 0x01;
    pub const SWI: u8 = 0x02;
    pub const IRET: u8 = 0x03;
    pub const DI: u8 = 0x04;
    pub const EI: u8 = 0x05;

    pub const ADD: u8 = 0x10;
    pub const SUB: u8 = 0x11;
    pub const AND: u8 = 0x12;
    pub const OR: u8 = 0x13;
    pub const XOR: u8 = 0x14;
    pub const SHL: u8 = 0x15;
    pub const SHR: u8 = 0x16;
    pub const SRA: u8 = 0x17;
    pub const MUL: u8 = 0x18;
    pub const MOV: u8 = 0x19;
    pub const NOT: u8 = 0x1A;
    pub const DIVU: u8 = 0x1B;
    pub const REMU: u8 = 0x1C;

    pub const ADDI: u8 = 0x20;
    pub const ANDI: u8 = 0x21;
    pub const ORI: u8 = 0x22;
    pub const XORI: u8 = 0x23;
    pub const SHLI: u8 = 0x24;
    pub const SHRI: u8 = 0x25;
    pub const SRAI: u8 = 0x26;
    pub const MOVI: u8 = 0x27;
    pub const LUI: u8 = 0x28;

    pub const LW: u8 = 0x30;
    pub const SW: u8 = 0x31;
    pub const LB: u8 = 0x32;
    pub const SB: u8 = 0x33;
    pub const LBS: u8 = 0x34;
    pub const LH: u8 = 0x35;
    pub const LHS: u8 = 0x36;
    pub const SH: u8 = 0x37;
    pub const PUSH: u8 = 0x38;
    pub const POP: u8 = 0x39;
    pub const PUSHF: u8 = 0x3A;
    pub const POPF: u8 = 0x3B;

    pub const JMP: u8 = 0x40;
    pub const JR: u8 = 0x41;
    pub const CALL: u8 = 0x42;
    pub const CALLR: u8 = 0x43;
    pub const RET: u8 = 0x44;
    pub const BEQ: u8 = 0x48;
    pub const BNE: u8 = 0x49;
    pub const BLT: u8 = 0x4A;
    pub const BGE: u8 = 0x4B;
    pub const BLTU: u8 = 0x4C;
    pub const BGEU: u8 = 0x4D;

    /// First platform-extension opcode (inclusive).
    pub const EXT_BASE: u8 = 0xE0;
    /// Last platform-extension opcode (inclusive).
    pub const EXT_LAST: u8 = 0xEF;
}

use opcodes as op;

fn word(opcode: u8, rd: u32, rs1: u32, low16: u32) -> u32 {
    debug_assert!(rd < 16 && rs1 < 16 && low16 <= 0xffff);
    (opcode as u32) << 24 | rd << 20 | rs1 << 16 | low16
}

fn r_format(opcode: u8, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    word(opcode, rd.code(), rs1.code(), rs2.code() << 12)
}

fn i_format(opcode: u8, rd: Reg, rs1: Reg, imm: u16) -> u32 {
    word(opcode, rd.code(), rs1.code(), imm as u32)
}

fn alu_opcode(a: AluOp) -> u8 {
    match a {
        AluOp::Add => op::ADD,
        AluOp::Sub => op::SUB,
        AluOp::And => op::AND,
        AluOp::Or => op::OR,
        AluOp::Xor => op::XOR,
        AluOp::Shl => op::SHL,
        AluOp::Shr => op::SHR,
        AluOp::Sra => op::SRA,
        AluOp::Mul => op::MUL,
        AluOp::Divu => op::DIVU,
        AluOp::Remu => op::REMU,
    }
}

fn cond_opcode(c: Cond) -> u8 {
    match c {
        Cond::Eq => op::BEQ,
        Cond::Ne => op::BNE,
        Cond::Lt => op::BLT,
        Cond::Ge => op::BGE,
        Cond::Ltu => op::BLTU,
        Cond::Geu => op::BGEU,
    }
}

/// Encodes an instruction into its 32-bit word.
///
/// Relative offsets must be multiples of four and shift amounts at most 31;
/// the public constructors ([`crate::Asm`]) maintain these invariants, and
/// they are `debug_assert`ed here.
pub fn encode(i: Instr) -> u32 {
    match i {
        Instr::Nop => word(op::NOP, 0, 0, 0),
        Instr::Halt => word(op::HALT, 0, 0, 0),
        Instr::Swi(v) => word(op::SWI, 0, 0, v as u32),
        Instr::Iret => word(op::IRET, 0, 0, 0),
        Instr::Di => word(op::DI, 0, 0, 0),
        Instr::Ei => word(op::EI, 0, 0, 0),

        Instr::Alu {
            op: a,
            rd,
            rs1,
            rs2,
        } => r_format(alu_opcode(a), rd, rs1, rs2),
        Instr::Mov { rd, rs1 } => i_format(op::MOV, rd, rs1, 0),
        Instr::Not { rd, rs1 } => i_format(op::NOT, rd, rs1, 0),

        Instr::Addi { rd, rs1, imm } => i_format(op::ADDI, rd, rs1, imm as u16),
        Instr::Andi { rd, rs1, imm } => i_format(op::ANDI, rd, rs1, imm),
        Instr::Ori { rd, rs1, imm } => i_format(op::ORI, rd, rs1, imm),
        Instr::Xori { rd, rs1, imm } => i_format(op::XORI, rd, rs1, imm),
        Instr::Shli { rd, rs1, imm } => {
            debug_assert!(imm <= 31);
            i_format(op::SHLI, rd, rs1, (imm & 31) as u16)
        }
        Instr::Shri { rd, rs1, imm } => {
            debug_assert!(imm <= 31);
            i_format(op::SHRI, rd, rs1, (imm & 31) as u16)
        }
        Instr::Srai { rd, rs1, imm } => {
            debug_assert!(imm <= 31);
            i_format(op::SRAI, rd, rs1, (imm & 31) as u16)
        }
        Instr::Movi { rd, imm } => i_format(op::MOVI, rd, Reg::R0, imm as u16),
        Instr::Lui { rd, imm } => i_format(op::LUI, rd, Reg::R0, imm),

        Instr::Lw { rd, rs1, disp } => i_format(op::LW, rd, rs1, disp as u16),
        Instr::Sw { rs1, rs2, disp } => i_format(op::SW, rs2, rs1, disp as u16),
        Instr::Lb { rd, rs1, disp } => i_format(op::LB, rd, rs1, disp as u16),
        Instr::Lbs { rd, rs1, disp } => i_format(op::LBS, rd, rs1, disp as u16),
        Instr::Sb { rs1, rs2, disp } => i_format(op::SB, rs2, rs1, disp as u16),
        Instr::Lh { rd, rs1, disp } => i_format(op::LH, rd, rs1, disp as u16),
        Instr::Lhs { rd, rs1, disp } => i_format(op::LHS, rd, rs1, disp as u16),
        Instr::Sh { rs1, rs2, disp } => i_format(op::SH, rs2, rs1, disp as u16),

        Instr::Push { rs } => word(op::PUSH, rs.code(), 0, 0),
        Instr::Pop { rd } => word(op::POP, rd.code(), 0, 0),
        Instr::Pushf => word(op::PUSHF, 0, 0, 0),
        Instr::Popf => word(op::POPF, 0, 0, 0),

        Instr::Jmp { off } => {
            debug_assert!(off % 4 == 0);
            word(op::JMP, 0, 0, off as u16 as u32)
        }
        Instr::Jr { rs1 } => word(op::JR, 0, rs1.code(), 0),
        Instr::Call { off } => {
            debug_assert!(off % 4 == 0);
            word(op::CALL, 0, 0, off as u16 as u32)
        }
        Instr::Callr { rs1 } => word(op::CALLR, 0, rs1.code(), 0),
        Instr::Ret => word(op::RET, 0, 0, 0),
        Instr::Branch {
            cond,
            rs1,
            rs2,
            off,
        } => {
            debug_assert!(off % 4 == 0);
            word(cond_opcode(cond), rs1.code(), rs2.code(), off as u16 as u32)
        }

        Instr::Ext {
            op: ext,
            rd,
            rs1,
            imm,
        } => {
            debug_assert!(ext <= 0x0f);
            i_format(op::EXT_BASE | (ext & 0x0f), rd, rs1, imm)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_in_high_byte() {
        assert_eq!(encode(Instr::Halt) >> 24, op::HALT as u32);
        assert_eq!(encode(Instr::Ret) >> 24, op::RET as u32);
    }

    #[test]
    fn store_fields_swapped_into_rd_slot() {
        let w = encode(Instr::Sw {
            rs1: Reg::R1,
            rs2: Reg::R2,
            disp: 8,
        });
        assert_eq!((w >> 20) & 0xf, Reg::R2.code());
        assert_eq!((w >> 16) & 0xf, Reg::R1.code());
        assert_eq!(w & 0xffff, 8);
    }

    #[test]
    fn negative_displacement_wraps_into_imm16() {
        let w = encode(Instr::Lw {
            rd: Reg::R0,
            rs1: Reg::Sp,
            disp: -4,
        });
        assert_eq!(w & 0xffff, 0xfffc);
    }

    #[test]
    fn ext_opcode_range() {
        let w = encode(Instr::Ext {
            op: 0x5,
            rd: Reg::R1,
            rs1: Reg::R2,
            imm: 0xabcd,
        });
        assert_eq!(w >> 24, 0xe5);
    }
}
