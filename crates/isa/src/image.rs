//! Positioned program images with symbol tables.

use std::collections::BTreeMap;

/// A fully assembled program image, positioned at an absolute base address.
///
/// Images are what the Secure Loader copies from PROM into SRAM and what
/// the simulator executes. The symbol table maps assembler labels to
/// absolute addresses so host-side code (loaders, tests, benches) can refer
/// to entry points by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Absolute load address of the first byte.
    pub base: u32,
    /// Raw little-endian contents.
    pub bytes: Vec<u8>,
    /// Label name to absolute address.
    pub symbols: BTreeMap<String, u32>,
}

impl Image {
    /// Creates an empty image at `base`.
    pub fn new(base: u32) -> Self {
        Image {
            base,
            bytes: Vec::new(),
            symbols: BTreeMap::new(),
        }
    }

    /// Length of the image in bytes.
    pub fn len(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Returns true if the image holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// One past the last occupied address.
    pub fn end(&self) -> u32 {
        self.base + self.len()
    }

    /// Looks up a symbol's absolute address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Looks up a symbol, panicking with a clear message if missing.
    ///
    /// # Panics
    ///
    /// Panics if the symbol is not defined. Intended for tests and examples
    /// where a missing symbol is a programming error.
    pub fn expect_symbol(&self, name: &str) -> u32 {
        match self.symbol(name) {
            Some(a) => a,
            None => panic!(
                "symbol `{name}` not defined in image at {:#010x}",
                self.base
            ),
        }
    }

    /// Reads the 32-bit word at absolute address `addr`, if in range and
    /// aligned.
    pub fn word_at(&self, addr: u32) -> Option<u32> {
        if !addr.is_multiple_of(4) || addr < self.base {
            return None;
        }
        let off = (addr - self.base) as usize;
        let slice = self.bytes.get(off..off + 4)?;
        Some(u32::from_le_bytes([slice[0], slice[1], slice[2], slice[3]]))
    }

    /// Iterates the image as 32-bit words (the trailing partial word, if
    /// any, is zero-padded).
    pub fn words(&self) -> impl Iterator<Item = u32> + '_ {
        self.bytes.chunks(4).map(|c| {
            let mut w = [0u8; 4];
            w[..c.len()].copy_from_slice(c);
            u32::from_le_bytes(w)
        })
    }

    /// Returns true if `addr` lies within the image.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && addr < self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Image {
        let mut img = Image::new(0x1000);
        img.bytes = vec![0x78, 0x56, 0x34, 0x12, 0xaa, 0xbb];
        img.symbols.insert("start".into(), 0x1000);
        img
    }

    #[test]
    fn word_access() {
        let img = sample();
        assert_eq!(img.word_at(0x1000), Some(0x1234_5678));
        assert_eq!(img.word_at(0x1002), None, "unaligned");
        assert_eq!(img.word_at(0x1004), None, "partial word out of range");
        assert_eq!(img.word_at(0x0ffc), None, "below base");
    }

    #[test]
    fn words_pad_tail() {
        let img = sample();
        let w: Vec<u32> = img.words().collect();
        assert_eq!(w, vec![0x1234_5678, 0x0000_bbaa]);
    }

    #[test]
    fn ranges() {
        let img = sample();
        assert_eq!(img.len(), 6);
        assert_eq!(img.end(), 0x1006);
        assert!(img.contains(0x1005));
        assert!(!img.contains(0x1006));
        assert!(!img.is_empty());
    }

    #[test]
    #[should_panic(expected = "symbol `missing` not defined")]
    fn expect_symbol_panics_with_context() {
        sample().expect_symbol("missing");
    }
}
