//! The SP32 instruction enumeration.

use core::fmt;

use crate::reg::Reg;

/// Branch condition for the compare-and-branch instructions.
///
/// SP32 branches compare two registers directly (MIPS-style); there are no
/// architectural condition codes beyond the interrupt-enable flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl Cond {
    /// All conditions in encoding order.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];

    /// Evaluates the condition on two register values.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }

    /// Returns the inverse condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }

    /// Assembler mnemonic suffix (`beq`, `bne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Ltu => "bltu",
            Cond::Geu => "bgeu",
        }
    }
}

/// Binary register-register ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sra,
    Mul,
    /// Unsigned division; division by zero yields `u32::MAX` (no trap),
    /// following the RISC-V convention.
    Divu,
    /// Unsigned remainder; remainder by zero yields the dividend.
    Remu,
}

impl AluOp {
    /// All operations in encoding order.
    pub const ALL: [AluOp; 11] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sra,
        AluOp::Mul,
        AluOp::Divu,
        AluOp::Remu,
    ];

    /// Applies the operation. Shifts use the low five bits of `b`.
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b & 31),
            AluOp::Shr => a.wrapping_shr(b & 31),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
            AluOp::Remu => a.checked_rem(b).unwrap_or(a),
        }
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sra => "sra",
            AluOp::Mul => "mul",
            AluOp::Divu => "divu",
            AluOp::Remu => "remu",
        }
    }
}

/// A decoded SP32 instruction.
///
/// Relative control-flow offsets (`Jmp`, `Call`, `Branch`) are byte offsets
/// relative to the address of the *next* instruction and must be multiples
/// of four.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Stop the core; the simulator run loop returns.
    Halt,
    /// Software interrupt with an 8-bit vector argument.
    Swi(u8),
    /// Return from an interrupt handled on the current stack (OS use).
    Iret,
    /// Disable maskable interrupts (clear FLAGS.IE).
    Di,
    /// Enable maskable interrupts (set FLAGS.IE).
    Ei,

    /// Register-register ALU operation: `rd = rs1 op rs2`.
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Register move: `rd = rs1`.
    Mov { rd: Reg, rs1: Reg },
    /// Bitwise complement: `rd = !rs1`.
    Not { rd: Reg, rs1: Reg },

    /// Add signed 16-bit immediate: `rd = rs1 + imm`.
    Addi { rd: Reg, rs1: Reg, imm: i16 },
    /// AND with zero-extended immediate.
    Andi { rd: Reg, rs1: Reg, imm: u16 },
    /// OR with zero-extended immediate.
    Ori { rd: Reg, rs1: Reg, imm: u16 },
    /// XOR with zero-extended immediate.
    Xori { rd: Reg, rs1: Reg, imm: u16 },
    /// Shift left by a constant (0..=31).
    Shli { rd: Reg, rs1: Reg, imm: u8 },
    /// Logical shift right by a constant (0..=31).
    Shri { rd: Reg, rs1: Reg, imm: u8 },
    /// Arithmetic shift right by a constant (0..=31).
    Srai { rd: Reg, rs1: Reg, imm: u8 },
    /// Load sign-extended 16-bit immediate: `rd = imm`.
    Movi { rd: Reg, imm: i16 },
    /// Load upper immediate: `rd = imm << 16`.
    Lui { rd: Reg, imm: u16 },

    /// Load word: `rd = mem32[rs1 + disp]`.
    Lw { rd: Reg, rs1: Reg, disp: i16 },
    /// Store word: `mem32[rs1 + disp] = rs2`.
    Sw { rs1: Reg, rs2: Reg, disp: i16 },
    /// Load byte, zero-extended.
    Lb { rd: Reg, rs1: Reg, disp: i16 },
    /// Load byte, sign-extended.
    Lbs { rd: Reg, rs1: Reg, disp: i16 },
    /// Store low byte of `rs2`.
    Sb { rs1: Reg, rs2: Reg, disp: i16 },
    /// Load halfword, zero-extended (address must be 2-aligned).
    Lh { rd: Reg, rs1: Reg, disp: i16 },
    /// Load halfword, sign-extended (address must be 2-aligned).
    Lhs { rd: Reg, rs1: Reg, disp: i16 },
    /// Store low halfword of `rs2` (address must be 2-aligned).
    Sh { rs1: Reg, rs2: Reg, disp: i16 },

    /// Push a register onto the stack (`sp -= 4; mem32[sp] = rs`).
    Push { rs: Reg },
    /// Pop a register from the stack (`rd = mem32[sp]; sp += 4`).
    Pop { rd: Reg },
    /// Push the flags word.
    Pushf,
    /// Pop the flags word.
    Popf,

    /// Relative jump.
    Jmp { off: i16 },
    /// Indirect jump to the address in `rs1`.
    Jr { rs1: Reg },
    /// Relative call: pushes the return address, then jumps.
    Call { off: i16 },
    /// Indirect call through `rs1`.
    Callr { rs1: Reg },
    /// Return: pops the instruction pointer.
    Ret,
    /// Compare-and-branch: if `rs1 cond rs2`, jump by `off`.
    Branch {
        cond: Cond,
        rs1: Reg,
        rs2: Reg,
        off: i16,
    },

    /// Platform-defined extension instruction (opcodes `0xE0..=0xEF`).
    ///
    /// The base architecture treats these as illegal; platform models (the
    /// Sancus baseline in particular) give them meaning. `op` is the low
    /// nibble of the opcode.
    Ext { op: u8, rd: Reg, rs1: Reg, imm: u16 },
}

impl Instr {
    /// Returns true if the instruction transfers control (other than
    /// falling through).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Jmp { .. }
                | Instr::Jr { .. }
                | Instr::Call { .. }
                | Instr::Callr { .. }
                | Instr::Ret
                | Instr::Branch { .. }
                | Instr::Iret
                | Instr::Swi(_)
        )
    }

    /// Returns true if the instruction accesses data memory.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Lw { .. }
                | Instr::Sw { .. }
                | Instr::Lb { .. }
                | Instr::Lbs { .. }
                | Instr::Sb { .. }
                | Instr::Lh { .. }
                | Instr::Lhs { .. }
                | Instr::Sh { .. }
                | Instr::Push { .. }
                | Instr::Pop { .. }
                | Instr::Pushf
                | Instr::Popf
                | Instr::Call { .. }
                | Instr::Callr { .. }
                | Instr::Ret
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::Swi(v) => write!(f, "swi {v}"),
            Instr::Iret => write!(f, "iret"),
            Instr::Di => write!(f, "di"),
            Instr::Ei => write!(f, "ei"),
            Instr::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::Mov { rd, rs1 } => write!(f, "mov {rd}, {rs1}"),
            Instr::Not { rd, rs1 } => write!(f, "not {rd}, {rs1}"),
            Instr::Addi { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Instr::Andi { rd, rs1, imm } => write!(f, "andi {rd}, {rs1}, {imm:#x}"),
            Instr::Ori { rd, rs1, imm } => write!(f, "ori {rd}, {rs1}, {imm:#x}"),
            Instr::Xori { rd, rs1, imm } => write!(f, "xori {rd}, {rs1}, {imm:#x}"),
            Instr::Shli { rd, rs1, imm } => write!(f, "shli {rd}, {rs1}, {imm}"),
            Instr::Shri { rd, rs1, imm } => write!(f, "shri {rd}, {rs1}, {imm}"),
            Instr::Srai { rd, rs1, imm } => write!(f, "srai {rd}, {rs1}, {imm}"),
            Instr::Movi { rd, imm } => write!(f, "movi {rd}, {imm}"),
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Instr::Lw { rd, rs1, disp } => write!(f, "lw {rd}, [{rs1}{disp:+}]"),
            Instr::Sw { rs1, rs2, disp } => write!(f, "sw [{rs1}{disp:+}], {rs2}"),
            Instr::Lb { rd, rs1, disp } => write!(f, "lb {rd}, [{rs1}{disp:+}]"),
            Instr::Lbs { rd, rs1, disp } => write!(f, "lbs {rd}, [{rs1}{disp:+}]"),
            Instr::Sb { rs1, rs2, disp } => write!(f, "sb [{rs1}{disp:+}], {rs2}"),
            Instr::Lh { rd, rs1, disp } => write!(f, "lh {rd}, [{rs1}{disp:+}]"),
            Instr::Lhs { rd, rs1, disp } => write!(f, "lhs {rd}, [{rs1}{disp:+}]"),
            Instr::Sh { rs1, rs2, disp } => write!(f, "sh [{rs1}{disp:+}], {rs2}"),
            Instr::Push { rs } => write!(f, "push {rs}"),
            Instr::Pop { rd } => write!(f, "pop {rd}"),
            Instr::Pushf => write!(f, "pushf"),
            Instr::Popf => write!(f, "popf"),
            Instr::Jmp { off } => write!(f, "jmp {off:+}"),
            Instr::Jr { rs1 } => write!(f, "jr {rs1}"),
            Instr::Call { off } => write!(f, "call {off:+}"),
            Instr::Callr { rs1 } => write!(f, "callr {rs1}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                off,
            } => {
                write!(f, "{} {rs1}, {rs2}, {off:+}", cond.mnemonic())
            }
            Instr::Ext { op, rd, rs1, imm } => {
                write!(f, "ext{op:x} {rd}, {rs1}, {imm:#x}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_signed_vs_unsigned() {
        // -1 < 1 signed, but 0xffff_ffff > 1 unsigned.
        assert!(Cond::Lt.eval(0xffff_ffff, 1));
        assert!(!Cond::Ltu.eval(0xffff_ffff, 1));
        assert!(Cond::Geu.eval(0xffff_ffff, 1));
        assert!(!Cond::Ge.eval(0xffff_ffff, 1));
    }

    #[test]
    fn cond_negation_is_involution() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            // A condition and its negation partition every input pair.
            for (a, b) in [(0u32, 0u32), (1, 2), (u32::MAX, 0), (5, 5)] {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn alu_shift_masks_amount() {
        assert_eq!(AluOp::Shl.apply(1, 33), 2);
        assert_eq!(AluOp::Shr.apply(4, 33), 2);
    }

    #[test]
    fn alu_wrapping() {
        assert_eq!(AluOp::Add.apply(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u32::MAX);
        assert_eq!(AluOp::Mul.apply(0x8000_0000, 2), 0);
    }

    #[test]
    fn sra_sign_extends() {
        assert_eq!(AluOp::Sra.apply(0x8000_0000, 31), 0xffff_ffff);
        assert_eq!(AluOp::Shr.apply(0x8000_0000, 31), 1);
    }

    #[test]
    fn control_flow_classification() {
        assert!(Instr::Ret.is_control_flow());
        assert!(Instr::Jmp { off: 0 }.is_control_flow());
        assert!(!Instr::Nop.is_control_flow());
        assert!(!Instr::Push { rs: Reg::R0 }.is_control_flow());
    }

    #[test]
    fn memory_classification() {
        assert!(Instr::Push { rs: Reg::R0 }.is_memory());
        assert!(Instr::Ret.is_memory());
        assert!(!Instr::Jmp { off: 0 }.is_memory());
    }
}
