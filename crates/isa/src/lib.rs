//! SP32: the instruction set of the TrustLite reference simulator.
//!
//! SP32 is a from-scratch 32-bit, fixed-width RISC instruction set modelled
//! after the class of cores the TrustLite paper targets (the Intel Siskiyou
//! Peak research core: 32-bit, single-issue, Harvard-style). It is the
//! machine language in which the embedded OS, the trustlets and the attack
//! harnesses of this reproduction are written.
//!
//! The crate provides:
//!
//! * [`Instr`] — the instruction enumeration with precise operand types,
//! * [`encode`](fn@encode)/[`decode`](fn@decode) — lossless binary
//!   encoding into 32-bit words,
//! * [`Asm`] — a programmatic two-pass assembler with labels and fixups,
//! * [`asm::assemble_text`] — a text-syntax front-end over the same backend,
//! * [`disasm`] — a disassembler used by tracing and debugging aids,
//! * [`Image`] — a positioned program image with a symbol table.
//!
//! # Examples
//!
//! ```
//! use trustlite_isa::{Asm, Reg};
//!
//! let mut a = Asm::new(0x1000);
//! a.label("start");
//! a.li(Reg::R0, 41);
//! a.addi(Reg::R0, Reg::R0, 1);
//! a.halt();
//! let img = a.assemble().unwrap();
//! assert_eq!(img.base, 0x1000);
//! assert_eq!(img.symbol("start"), Some(0x1000));
//! ```

pub mod asm;
pub mod builder;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod image;
pub mod instr;
pub mod reg;

pub use asm::assemble_text;
pub use builder::Asm;
pub use decode::{decode, DecodeError};
pub use disasm::disassemble;
pub use encode::encode;
pub use image::Image;
pub use instr::{Cond, Instr};
pub use reg::Reg;

/// Size of one SP32 instruction in bytes. All instructions are fixed-width.
pub const INSTR_BYTES: u32 = 4;
