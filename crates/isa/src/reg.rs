//! Register file naming for SP32.

use core::fmt;

/// An architectural register of the SP32 core.
///
/// The core has eight general-purpose registers `r0..r7` plus the dedicated
/// stack pointer `sp`. The instruction pointer and the flags word are not
/// directly addressable; they are manipulated through control-flow
/// instructions, `pushf`/`popf` and the exception engine.
///
/// The split between eight GPRs and a dedicated `sp` is deliberate: it makes
/// the paper's secure-exception cycle budget (Section 5.4) structural —
/// "10 cycles to store all but the ESP registers" saves `flags`, the return
/// instruction pointer and `r0..r7` (ten words), and "9 cycles to clear all
/// general purpose registers and store the ESP into the Trustlet Table"
/// clears eight GPRs and performs one table write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    /// The dedicated stack pointer.
    Sp,
}

impl Reg {
    /// All registers in encoding order.
    pub const ALL: [Reg; 9] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::Sp,
    ];

    /// The general-purpose registers only (everything except `sp`).
    pub const GPRS: [Reg; 8] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
    ];

    /// Returns the 4-bit encoding of this register.
    pub fn code(self) -> u32 {
        match self {
            Reg::R0 => 0,
            Reg::R1 => 1,
            Reg::R2 => 2,
            Reg::R3 => 3,
            Reg::R4 => 4,
            Reg::R5 => 5,
            Reg::R6 => 6,
            Reg::R7 => 7,
            Reg::Sp => 8,
        }
    }

    /// Decodes a 4-bit register field, if valid.
    pub fn from_code(code: u32) -> Option<Reg> {
        Reg::ALL.get(code as usize).copied()
    }

    /// Parses an assembler register name (`r0`..`r7`, `sp`).
    pub fn parse(name: &str) -> Option<Reg> {
        match name.to_ascii_lowercase().as_str() {
            "r0" => Some(Reg::R0),
            "r1" => Some(Reg::R1),
            "r2" => Some(Reg::R2),
            "r3" => Some(Reg::R3),
            "r4" => Some(Reg::R4),
            "r5" => Some(Reg::R5),
            "r6" => Some(Reg::R6),
            "r7" => Some(Reg::R7),
            "sp" => Some(Reg::Sp),
            _ => None,
        }
    }

    /// Returns true for the general-purpose registers `r0..r7`.
    pub fn is_gpr(self) -> bool {
        self != Reg::Sp
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Sp => write!(f, "sp"),
            other => write!(f, "r{}", other.code()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_code(r.code()), Some(r));
        }
    }

    #[test]
    fn invalid_codes_rejected() {
        for code in 9..16 {
            assert_eq!(Reg::from_code(code), None);
        }
    }

    #[test]
    fn parse_names() {
        assert_eq!(Reg::parse("r0"), Some(Reg::R0));
        assert_eq!(Reg::parse("R5"), Some(Reg::R5));
        assert_eq!(Reg::parse("sp"), Some(Reg::Sp));
        assert_eq!(Reg::parse("SP"), Some(Reg::Sp));
        assert_eq!(Reg::parse("r8"), None);
        assert_eq!(Reg::parse("ip"), None);
    }

    #[test]
    fn display_matches_parse() {
        for r in Reg::ALL {
            assert_eq!(Reg::parse(&r.to_string()), Some(r));
        }
    }

    #[test]
    fn gpr_classification() {
        for r in Reg::GPRS {
            assert!(r.is_gpr());
        }
        assert!(!Reg::Sp.is_gpr());
    }
}
