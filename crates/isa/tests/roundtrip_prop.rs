//! Property tests: encode/decode is a lossless round trip for every valid
//! instruction, and the disassembler never panics on arbitrary words.

use proptest::prelude::*;
use trustlite_isa::instr::AluOp;
use trustlite_isa::{decode, disassemble, encode, Cond, Instr, Reg};

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u32..9).prop_map(|c| Reg::from_code(c).expect("valid register code"))
}

fn any_cond() -> impl Strategy<Value = Cond> {
    (0usize..Cond::ALL.len()).prop_map(|i| Cond::ALL[i])
}

fn any_alu() -> impl Strategy<Value = AluOp> {
    (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

fn aligned_off() -> impl Strategy<Value = i16> {
    (-8192i16..8192).prop_map(|w| w * 4)
}

fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::Iret),
        Just(Instr::Di),
        Just(Instr::Ei),
        Just(Instr::Ret),
        Just(Instr::Pushf),
        Just(Instr::Popf),
        any::<u8>().prop_map(Instr::Swi),
        (any_alu(), any_reg(), any_reg(), any_reg()).prop_map(|(op, rd, rs1, rs2)| Instr::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (any_reg(), any_reg()).prop_map(|(rd, rs1)| Instr::Mov { rd, rs1 }),
        (any_reg(), any_reg()).prop_map(|(rd, rs1)| Instr::Not { rd, rs1 }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rd, rs1, imm)| Instr::Addi {
            rd,
            rs1,
            imm
        }),
        (any_reg(), any_reg(), any::<u16>()).prop_map(|(rd, rs1, imm)| Instr::Andi {
            rd,
            rs1,
            imm
        }),
        (any_reg(), any_reg(), any::<u16>()).prop_map(|(rd, rs1, imm)| Instr::Ori { rd, rs1, imm }),
        (any_reg(), any_reg(), any::<u16>()).prop_map(|(rd, rs1, imm)| Instr::Xori {
            rd,
            rs1,
            imm
        }),
        (any_reg(), any_reg(), 0u8..32).prop_map(|(rd, rs1, imm)| Instr::Shli { rd, rs1, imm }),
        (any_reg(), any_reg(), 0u8..32).prop_map(|(rd, rs1, imm)| Instr::Shri { rd, rs1, imm }),
        (any_reg(), any_reg(), 0u8..32).prop_map(|(rd, rs1, imm)| Instr::Srai { rd, rs1, imm }),
        (any_reg(), any::<i16>()).prop_map(|(rd, imm)| Instr::Movi { rd, imm }),
        (any_reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rd, rs1, disp)| Instr::Lw {
            rd,
            rs1,
            disp
        }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rs1, rs2, disp)| Instr::Sw {
            rs1,
            rs2,
            disp
        }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rd, rs1, disp)| Instr::Lb {
            rd,
            rs1,
            disp
        }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rd, rs1, disp)| Instr::Lbs {
            rd,
            rs1,
            disp
        }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rs1, rs2, disp)| Instr::Sb {
            rs1,
            rs2,
            disp
        }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rd, rs1, disp)| Instr::Lh {
            rd,
            rs1,
            disp
        }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rd, rs1, disp)| Instr::Lhs {
            rd,
            rs1,
            disp
        }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rs1, rs2, disp)| Instr::Sh {
            rs1,
            rs2,
            disp
        }),
        any_reg().prop_map(|rs| Instr::Push { rs }),
        any_reg().prop_map(|rd| Instr::Pop { rd }),
        aligned_off().prop_map(|off| Instr::Jmp { off }),
        any_reg().prop_map(|rs1| Instr::Jr { rs1 }),
        aligned_off().prop_map(|off| Instr::Call { off }),
        any_reg().prop_map(|rs1| Instr::Callr { rs1 }),
        (any_cond(), any_reg(), any_reg(), aligned_off()).prop_map(|(cond, rs1, rs2, off)| {
            Instr::Branch {
                cond,
                rs1,
                rs2,
                off,
            }
        }),
        (0u8..16, any_reg(), any_reg(), any::<u16>()).prop_map(|(op, rd, rs1, imm)| Instr::Ext {
            op,
            rd,
            rs1,
            imm
        }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(i in any_instr()) {
        let w = encode(i);
        prop_assert_eq!(decode(w), Ok(i));
    }

    #[test]
    fn decode_never_panics(w in any::<u32>()) {
        let _ = decode(w);
    }

    #[test]
    fn disassemble_never_panics(w in any::<u32>()) {
        let text = disassemble(w);
        prop_assert!(!text.is_empty());
    }

    #[test]
    fn decoded_reencodes_identically(w in any::<u32>()) {
        // Any word that decodes must re-encode to a word that decodes to the
        // same instruction (encoding is canonical modulo reserved bits).
        if let Ok(i) = decode(w) {
            let w2 = encode(i);
            prop_assert_eq!(decode(w2), Ok(i));
        }
    }
}
