//! Property test: the disassembler's output for data-path instructions is
//! valid text-assembler input that round-trips to the same encoding.

use proptest::prelude::*;
use trustlite_isa::instr::AluOp;
use trustlite_isa::{assemble_text, decode, encode, Instr, Reg};

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u32..9).prop_map(|c| Reg::from_code(c).expect("valid code"))
}

fn any_alu() -> impl Strategy<Value = AluOp> {
    (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

/// Data-path instructions whose `Display` form is also assembler syntax.
fn textable_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::Iret),
        Just(Instr::Di),
        Just(Instr::Ei),
        Just(Instr::Ret),
        Just(Instr::Pushf),
        Just(Instr::Popf),
        any::<u8>().prop_map(Instr::Swi),
        (any_alu(), any_reg(), any_reg(), any_reg()).prop_map(|(op, rd, rs1, rs2)| Instr::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (any_reg(), any_reg()).prop_map(|(rd, rs1)| Instr::Mov { rd, rs1 }),
        (any_reg(), any_reg()).prop_map(|(rd, rs1)| Instr::Not { rd, rs1 }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rd, rs1, imm)| Instr::Addi {
            rd,
            rs1,
            imm
        }),
        (any_reg(), any::<i16>()).prop_map(|(rd, imm)| Instr::Movi { rd, imm }),
        (any_reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rd, rs1, disp)| Instr::Lw {
            rd,
            rs1,
            disp
        }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rs1, rs2, disp)| Instr::Sw {
            rs1,
            rs2,
            disp
        }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rd, rs1, disp)| Instr::Lb {
            rd,
            rs1,
            disp
        }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rs1, rs2, disp)| Instr::Sb {
            rs1,
            rs2,
            disp
        }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rd, rs1, disp)| Instr::Lbs {
            rd,
            rs1,
            disp
        }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rd, rs1, disp)| Instr::Lh {
            rd,
            rs1,
            disp
        }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rd, rs1, disp)| Instr::Lhs {
            rd,
            rs1,
            disp
        }),
        (any_reg(), any_reg(), any::<i16>()).prop_map(|(rs1, rs2, disp)| Instr::Sh {
            rs1,
            rs2,
            disp
        }),
        any_reg().prop_map(|rs| Instr::Push { rs }),
        any_reg().prop_map(|rd| Instr::Pop { rd }),
        any_reg().prop_map(|rs1| Instr::Jr { rs1 }),
        any_reg().prop_map(|rs1| Instr::Callr { rs1 }),
    ]
}

proptest! {
    #[test]
    fn display_is_valid_assembler_syntax(i in textable_instr()) {
        let text = i.to_string();
        let img = assemble_text(0, &text)
            .unwrap_or_else(|e| panic!("`{text}` did not assemble: {e}"));
        let word = img.word_at(0).expect("one instruction emitted");
        prop_assert_eq!(decode(word), Ok(i), "source text: `{}`", text);
        prop_assert_eq!(word, encode(i));
    }

    #[test]
    fn programs_of_many_instructions_roundtrip(
        instrs in proptest::collection::vec(textable_instr(), 1..40)
    ) {
        let source: String =
            instrs.iter().map(|i| format!("    {i}\n")).collect();
        let img = assemble_text(0x1000, &source).expect("assembles");
        prop_assert_eq!(img.len() as usize, instrs.len() * 4);
        for (k, i) in instrs.iter().enumerate() {
            let w = img.word_at(0x1000 + 4 * k as u32).expect("in range");
            prop_assert_eq!(decode(w), Ok(*i));
        }
    }
}
