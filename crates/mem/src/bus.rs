//! The system bus: routes physical accesses to mapped devices.

use core::fmt;

use crate::device::{BusError, Device, IrqRequest};

/// An error raised when constructing the memory map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The new window overlaps an existing mapping.
    Overlap { base: u32, size: u32 },
    /// The window wraps past the end of the address space.
    Wraps { base: u32, size: u32 },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Overlap { base, size } => {
                write!(
                    f,
                    "mapping {base:#010x}+{size:#x} overlaps an existing device"
                )
            }
            MapError::Wraps { base, size } => {
                write!(f, "mapping {base:#010x}+{size:#x} wraps the address space")
            }
        }
    }
}

impl std::error::Error for MapError {}

struct Mapping {
    base: u32,
    size: u32,
    device: Box<dyn Device>,
}

/// The physical system bus.
///
/// Mappings are non-overlapping windows; lookup is by binary search over
/// the sorted window list. Alignment is checked here once so devices can
/// assume aligned word offsets.
#[derive(Default)]
pub struct Bus {
    mappings: Vec<Mapping>,
}

impl fmt::Debug for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Bus");
        for m in &self.mappings {
            d.field(
                m.device.name(),
                &format_args!("{:#010x}+{:#x}", m.base, m.size),
            );
        }
        d.finish()
    }
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Maps `device` at `base`. The window size is taken from the device.
    pub fn map(&mut self, base: u32, device: Box<dyn Device>) -> Result<(), MapError> {
        let size = device.size();
        let end = base
            .checked_add(size)
            .ok_or(MapError::Wraps { base, size })?;
        for m in &self.mappings {
            if base < m.base + m.size && m.base < end {
                return Err(MapError::Overlap { base, size });
            }
        }
        let pos = self.mappings.partition_point(|m| m.base < base);
        self.mappings.insert(pos, Mapping { base, size, device });
        Ok(())
    }

    fn lookup(&mut self, addr: u32) -> Result<(&mut Mapping, u32), BusError> {
        let idx = self.mappings.partition_point(|m| m.base <= addr);
        if idx == 0 {
            return Err(BusError::Unmapped { addr });
        }
        let m = &mut self.mappings[idx - 1];
        if addr - m.base >= m.size {
            return Err(BusError::Unmapped { addr });
        }
        let off = addr - m.base;
        Ok((m, off))
    }

    /// Reads an aligned 32-bit word at `addr`.
    pub fn read32(&mut self, addr: u32) -> Result<u32, BusError> {
        if !addr.is_multiple_of(4) {
            return Err(BusError::Misaligned { addr });
        }
        let (m, off) = self.lookup(addr)?;
        if off + 4 > m.size {
            return Err(BusError::Unmapped { addr });
        }
        m.device.read32(off).map_err(|e| rebase(e, m.base))
    }

    /// Writes an aligned 32-bit word at `addr`.
    pub fn write32(&mut self, addr: u32, value: u32) -> Result<(), BusError> {
        if !addr.is_multiple_of(4) {
            return Err(BusError::Misaligned { addr });
        }
        let (m, off) = self.lookup(addr)?;
        if off + 4 > m.size {
            return Err(BusError::Unmapped { addr });
        }
        m.device.write32(off, value).map_err(|e| rebase(e, m.base))
    }

    /// Reads one byte at `addr`.
    pub fn read8(&mut self, addr: u32) -> Result<u8, BusError> {
        let (m, off) = self.lookup(addr)?;
        m.device.read8(off).map_err(|e| rebase(e, m.base))
    }

    /// Writes one byte at `addr`.
    pub fn write8(&mut self, addr: u32, value: u8) -> Result<(), BusError> {
        let (m, off) = self.lookup(addr)?;
        m.device.write8(off, value).map_err(|e| rebase(e, m.base))
    }

    /// Advances all devices by `cycles` and collects raised interrupts.
    pub fn tick(&mut self, cycles: u64) -> Vec<IrqRequest> {
        self.mappings
            .iter_mut()
            .filter_map(|m| m.device.tick(cycles))
            .collect()
    }

    /// Host-side image load (bypasses read-only protections; models factory
    /// programming and loader copies observed externally).
    pub fn host_load(&mut self, addr: u32, bytes: &[u8]) -> bool {
        match self.lookup(addr) {
            Ok((m, off)) => m.device.host_load(off, bytes),
            Err(_) => false,
        }
    }

    /// Looks up a device by name and concrete type for host inspection.
    pub fn device_mut<T: 'static>(&mut self, name: &str) -> Option<&mut T> {
        self.mappings
            .iter_mut()
            .find(|m| m.device.name() == name)
            .and_then(|m| m.device.as_any().downcast_mut::<T>())
    }

    /// Returns the `(base, size, name)` of every mapping, sorted by base.
    pub fn mappings(&self) -> Vec<(u32, u32, &'static str)> {
        self.mappings
            .iter()
            .map(|m| (m.base, m.size, m.device.name()))
            .collect()
    }

    /// Convenience: reads `len` bytes starting at `addr` (diagnostics).
    pub fn read_bytes(&mut self, addr: u32, len: u32) -> Result<Vec<u8>, BusError> {
        (0..len).map(|i| self.read8(addr + i)).collect()
    }
}

fn rebase(e: BusError, base: u32) -> BusError {
    // Devices report offsets; convert to absolute addresses for callers.
    match e {
        BusError::Unmapped { addr } => BusError::Unmapped { addr: base + addr },
        BusError::Misaligned { addr } => BusError::Misaligned { addr: base + addr },
        BusError::ReadOnly { addr } => BusError::ReadOnly { addr: base + addr },
        BusError::BadWidth { addr } => BusError::BadWidth { addr: base + addr },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ram::{Ram, Rom};

    fn bus_with_ram() -> Bus {
        let mut bus = Bus::new();
        bus.map(0x1000, Box::new(Ram::new("sram", 0x100))).unwrap();
        bus.map(0x0, Box::new(Rom::new(0x100))).unwrap();
        bus
    }

    #[test]
    fn routes_to_correct_device() {
        let mut bus = bus_with_ram();
        bus.write32(0x1010, 42).unwrap();
        assert_eq!(bus.read32(0x1010), Ok(42));
        assert_eq!(bus.write32(0x10, 1), Err(BusError::ReadOnly { addr: 0x10 }));
    }

    #[test]
    fn unmapped_and_misaligned() {
        let mut bus = bus_with_ram();
        assert_eq!(bus.read32(0x5000), Err(BusError::Unmapped { addr: 0x5000 }));
        assert_eq!(
            bus.read32(0x1002),
            Err(BusError::Misaligned { addr: 0x1002 })
        );
        // Last word of the window is fine; one past is not.
        assert!(bus.read32(0x10fc).is_ok());
        assert_eq!(bus.read32(0x1100), Err(BusError::Unmapped { addr: 0x1100 }));
    }

    #[test]
    fn overlap_rejected() {
        let mut bus = bus_with_ram();
        let e = bus.map(0x10f0, Box::new(Ram::new("x", 0x100))).unwrap_err();
        assert_eq!(
            e,
            MapError::Overlap {
                base: 0x10f0,
                size: 0x100
            }
        );
        // Adjacent is fine.
        bus.map(0x1100, Box::new(Ram::new("y", 0x100))).unwrap();
    }

    #[test]
    fn wrap_rejected() {
        let mut bus = Bus::new();
        let e = bus
            .map(0xffff_ff00, Box::new(Ram::new("z", 0x200)))
            .unwrap_err();
        assert!(matches!(e, MapError::Wraps { .. }));
    }

    #[test]
    fn byte_access_straddles_words() {
        let mut bus = bus_with_ram();
        bus.write8(0x1001, 0xbe).unwrap();
        assert_eq!(bus.read32(0x1000), Ok(0x0000_be00));
    }

    #[test]
    fn host_load_bypasses_rom_protection() {
        let mut bus = bus_with_ram();
        assert!(bus.host_load(0x4, &[0xaa, 0xbb, 0xcc, 0xdd]));
        assert_eq!(bus.read32(0x4), Ok(0xddcc_bbaa));
    }

    #[test]
    fn device_mut_downcast() {
        let mut bus = bus_with_ram();
        bus.write32(0x1000, 7).unwrap();
        let ram: &mut Ram = bus.device_mut("sram").unwrap();
        assert_eq!(ram.bytes()[0], 7);
        assert!(
            bus.device_mut::<Rom>("sram").is_none(),
            "wrong type must not downcast"
        );
        assert!(bus.device_mut::<Ram>("nope").is_none());
    }

    #[test]
    fn mappings_sorted() {
        let bus = bus_with_ram();
        let maps = bus.mappings();
        assert_eq!(maps[0].0, 0x0);
        assert_eq!(maps[1].0, 0x1000);
    }

    #[test]
    fn read_bytes_spans_devices_only_within_one() {
        let mut bus = bus_with_ram();
        bus.write32(0x1000, 0x0403_0201).unwrap();
        assert_eq!(bus.read_bytes(0x1000, 4).unwrap(), vec![1, 2, 3, 4]);
        assert!(
            bus.read_bytes(0xfe, 4).is_err(),
            "crosses into unmapped gap"
        );
    }
}
