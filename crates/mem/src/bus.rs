//! The system bus: routes physical accesses to mapped devices.

use core::fmt;

use crate::device::{BusError, Device, IrqRequest};

/// An error raised when constructing the memory map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The new window overlaps an existing mapping.
    Overlap { base: u32, size: u32 },
    /// The window wraps past the end of the address space.
    Wraps { base: u32, size: u32 },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Overlap { base, size } => {
                write!(
                    f,
                    "mapping {base:#010x}+{size:#x} overlaps an existing device"
                )
            }
            MapError::Wraps { base, size } => {
                write!(f, "mapping {base:#010x}+{size:#x} wraps the address space")
            }
        }
    }
}

impl std::error::Error for MapError {}

struct Mapping {
    base: u32,
    size: u32,
    device: Box<dyn Device>,
}

/// The physical system bus.
///
/// Mappings are non-overlapping windows; lookup is by binary search over
/// the sorted window list. Alignment is checked here once so devices can
/// assume aligned word offsets.
///
/// # Batched device ticking
///
/// With batching on (the default), [`Bus::tick`] accumulates cycles
/// instead of polling every device each instruction. Devices are caught
/// up in two situations only: when the accumulated cycles reach the
/// earliest [`Device::tick_hint`] deadline (so interrupts fire at
/// exactly the instruction boundary they would have per-step), and
/// before any access that reaches a tickable device (so MMIO reads see
/// exact countdown state and writes reprogram devices that are fully up
/// to date). The observable cycle-by-cycle behaviour is bit-identical
/// to unbatched ticking; [`Bus::set_batched_ticks`] switches back to
/// the per-instruction poll for differential testing.
pub struct Bus {
    mappings: Vec<Mapping>,
    /// `(base, size, mapping index)` of tickable devices, in base order.
    tickable: Vec<(u32, u32, usize)>,
    /// Lowest base and covering span of all tickable windows: a one-compare
    /// quick reject in front of the per-window scan (RAM traffic never
    /// pays the scan).
    tick_lo: u32,
    tick_span: u32,
    /// Index of the mapping the previous access resolved to; validated
    /// before use, so it is only ever a shortcut past the binary search.
    last_idx: usize,
    /// Whether [`Bus::lookup`] may use `last_idx`; off reproduces the
    /// plain binary search for differential runs.
    lookup_cache: bool,
    /// Cycles accumulated since devices were last ticked.
    pending: u64,
    /// Batch ticks (true) or poll devices every call (false).
    batched: bool,
    /// Accumulated-cycle threshold at which devices must be ticked;
    /// `None` = no device needs proactive ticking. Only meaningful when
    /// `deadline_valid`.
    deadline: Option<u64>,
    deadline_valid: bool,
    /// Pending-cycle threshold below which [`Bus::tick`] can return
    /// without touching any device state: `u64::MAX` = nothing will ever
    /// come due, `0` = the slow path must run (deadline stale, or
    /// unbatched). Derived from `deadline`/`deadline_valid`/`batched`.
    armed: u64,
    /// Interrupts surfaced by an access-triggered catch-up, delivered at
    /// the next [`Bus::tick`] (the same instruction boundary).
    stray_irqs: Vec<IrqRequest>,
    /// Bumped whenever memory contents may change outside the bus write
    /// path (host loads, host device access, remapping); caches built
    /// over memory contents must revalidate when this moves.
    host_gen: u64,
}

impl fmt::Debug for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Bus");
        for m in &self.mappings {
            d.field(
                m.device.name(),
                &format_args!("{:#010x}+{:#x}", m.base, m.size),
            );
        }
        d.finish()
    }
}

impl Default for Bus {
    fn default() -> Self {
        Bus {
            mappings: Vec::new(),
            tickable: Vec::new(),
            tick_lo: 0,
            tick_span: 0,
            last_idx: 0,
            lookup_cache: true,
            pending: 0,
            batched: true,
            deadline: None,
            deadline_valid: false,
            armed: 0,
            stray_irqs: Vec::new(),
            host_gen: 0,
        }
    }
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Maps `device` at `base`. The window size is taken from the device.
    pub fn map(&mut self, base: u32, device: Box<dyn Device>) -> Result<(), MapError> {
        let size = device.size();
        let end = base
            .checked_add(size)
            .ok_or(MapError::Wraps { base, size })?;
        for m in &self.mappings {
            if base < m.base + m.size && m.base < end {
                return Err(MapError::Overlap { base, size });
            }
        }
        // Flush first so a newly mapped device never receives cycles that
        // elapsed before it existed.
        self.catch_up();
        let pos = self.mappings.partition_point(|m| m.base < base);
        self.mappings.insert(pos, Mapping { base, size, device });
        self.rebuild_tickable();
        self.invalidate_deadline();
        self.host_gen += 1;
        Ok(())
    }

    fn rebuild_tickable(&mut self) {
        self.tickable = self
            .mappings
            .iter()
            .enumerate()
            .filter(|(_, m)| m.device.is_tickable())
            .map(|(i, m)| (m.base, m.size, i))
            .collect();
        self.tick_lo = self.tickable.first().map_or(0, |&(base, _, _)| base);
        self.tick_span = self
            .tickable
            .last()
            .map_or(0, |&(base, size, _)| base + size - self.tick_lo);
    }

    #[inline]
    fn touches_tickable(&self, addr: u32) -> bool {
        addr.wrapping_sub(self.tick_lo) < self.tick_span
            && self
                .tickable
                .iter()
                .any(|&(base, size, _)| addr.wrapping_sub(base) < size)
    }

    /// Delivers all accumulated cycles to the tickable devices now, so
    /// that an access observes exactly the state it would have seen under
    /// per-instruction ticking. Interrupts raised during catch-up are
    /// stashed and returned by the next [`Bus::tick`], i.e. at the same
    /// instruction boundary where per-step ticking would have raised them.
    fn catch_up(&mut self) {
        if self.pending == 0 {
            return;
        }
        let delivered = std::mem::take(&mut self.pending);
        for &(_, _, idx) in &self.tickable {
            if let Some(irq) = self.mappings[idx].device.tick(delivered) {
                self.stray_irqs.push(irq);
            }
        }
        self.invalidate_deadline();
    }

    fn refresh_deadline(&mut self) {
        let mut d: Option<u64> = None;
        for &(_, _, idx) in &self.tickable {
            if let Some(h) = self.mappings[idx].device.tick_hint() {
                d = Some(d.map_or(h, |cur| cur.min(h)));
            }
        }
        self.deadline = d;
        self.deadline_valid = true;
        self.armed = if self.batched {
            d.unwrap_or(u64::MAX)
        } else {
            0
        };
    }

    /// Marks the cached deadline (and the fast-exit threshold) stale.
    fn invalidate_deadline(&mut self) {
        self.deadline_valid = false;
        self.armed = 0;
    }

    /// Enables or disables batched ticking (enabled by default). Disabling
    /// flushes accumulated cycles so subsequent per-call ticks resume from
    /// an exact device state.
    /// Enables or disables the last-mapping lookup cache (a pure
    /// shortcut; results are identical either way).
    pub fn set_lookup_cache(&mut self, on: bool) {
        self.lookup_cache = on;
    }

    pub fn set_batched_ticks(&mut self, on: bool) {
        if !on {
            self.catch_up();
        }
        self.batched = on;
        self.invalidate_deadline();
    }

    /// Generation counter for host-side (out-of-band) memory mutation.
    ///
    /// Any path that can change memory contents without going through
    /// [`Bus::write32`]/[`Bus::write8`] — [`Bus::host_load`],
    /// [`Bus::device_mut`], [`Bus::map`] — bumps this counter. Callers
    /// that cache derived views of memory (e.g. predecoded instructions)
    /// compare it to detect staleness.
    pub fn host_gen(&self) -> u64 {
        self.host_gen
    }

    /// True if `addr` is backed by plain storage (see
    /// [`Device::stable_storage`]): safe to cache derived views of, with
    /// invalidation driven by bus writes and [`Bus::host_gen`].
    pub fn is_stable_memory(&self, addr: u32) -> bool {
        let idx = self.mappings.partition_point(|m| m.base <= addr);
        if idx == 0 {
            return false;
        }
        let m = &self.mappings[idx - 1];
        addr - m.base < m.size && m.device.stable_storage()
    }

    #[inline(always)]
    fn lookup(&mut self, addr: u32) -> Result<(&mut Mapping, u32), BusError> {
        // Accesses cluster heavily (straight-line code, stack traffic), so
        // retry the previous mapping before the binary search. The index
        // is range-validated, so a stale value after remapping only costs
        // the fallback.
        if self.lookup_cache {
            if let Some(m) = self.mappings.get(self.last_idx) {
                let off = addr.wrapping_sub(m.base);
                if off < m.size {
                    return Ok((&mut self.mappings[self.last_idx], off));
                }
            }
        }
        let idx = self.mappings.partition_point(|m| m.base <= addr);
        if idx == 0 {
            return Err(BusError::Unmapped { addr });
        }
        let m = &self.mappings[idx - 1];
        if addr - m.base >= m.size {
            return Err(BusError::Unmapped { addr });
        }
        let off = addr - m.base;
        self.last_idx = idx - 1;
        Ok((&mut self.mappings[idx - 1], off))
    }

    /// Reads an aligned 32-bit word at `addr`.
    #[inline(always)]
    pub fn read32(&mut self, addr: u32) -> Result<u32, BusError> {
        if !addr.is_multiple_of(4) {
            return Err(BusError::Misaligned { addr });
        }
        let t = self.touches_tickable(addr);
        if t {
            self.catch_up();
        }
        let res = {
            let (m, off) = self.lookup(addr)?;
            if off + 4 > m.size {
                return Err(BusError::Unmapped { addr });
            }
            m.device.read32(off).map_err(|e| rebase(e, m.base))
        };
        if t {
            self.invalidate_deadline();
        }
        res
    }

    /// Writes an aligned 32-bit word at `addr`.
    #[inline(always)]
    pub fn write32(&mut self, addr: u32, value: u32) -> Result<(), BusError> {
        if !addr.is_multiple_of(4) {
            return Err(BusError::Misaligned { addr });
        }
        let t = self.touches_tickable(addr);
        if t {
            self.catch_up();
        }
        let res = {
            let (m, off) = self.lookup(addr)?;
            if off + 4 > m.size {
                return Err(BusError::Unmapped { addr });
            }
            m.device.write32(off, value).map_err(|e| rebase(e, m.base))
        };
        if t {
            self.invalidate_deadline();
        }
        res
    }

    /// Reads one byte at `addr`.
    #[inline]
    pub fn read8(&mut self, addr: u32) -> Result<u8, BusError> {
        let t = self.touches_tickable(addr);
        if t {
            self.catch_up();
        }
        let res = {
            let (m, off) = self.lookup(addr)?;
            m.device.read8(off).map_err(|e| rebase(e, m.base))
        };
        if t {
            self.invalidate_deadline();
        }
        res
    }

    /// Writes one byte at `addr`.
    #[inline]
    pub fn write8(&mut self, addr: u32, value: u8) -> Result<(), BusError> {
        let t = self.touches_tickable(addr);
        if t {
            self.catch_up();
        }
        let res = {
            let (m, off) = self.lookup(addr)?;
            m.device.write8(off, value).map_err(|e| rebase(e, m.base))
        };
        if t {
            self.invalidate_deadline();
        }
        res
    }

    /// Advances device time by `cycles` and collects raised interrupts.
    ///
    /// With batching enabled, cycles accumulate until the earliest
    /// [`Device::tick_hint`] deadline is reached; devices then receive the
    /// whole accumulated span in one call, at exactly the instruction
    /// boundary where per-step ticking would first have made them fire.
    #[inline]
    pub fn tick(&mut self, cycles: u64) -> Vec<IrqRequest> {
        if self.tick_quick(cycles) {
            return Vec::new();
        }
        self.tick_slow()
    }

    /// Accounts `cycles` and returns true when nothing can be due and
    /// nothing is stashed — the common case, one compare against the
    /// precomputed threshold. On `false` the caller must run
    /// [`Bus::tick_slow`] to collect interrupts.
    ///
    /// A nonzero `armed` implies no stashed stray interrupts: strays are
    /// pushed only by [`Bus::catch_up`], which zeroes `armed`, and
    /// [`Bus::tick_slow`] drains them before re-arming.
    #[inline]
    pub fn tick_quick(&mut self, cycles: u64) -> bool {
        self.pending += cycles;
        self.pending < self.armed
    }

    /// Headroom before the next [`Bus::tick_quick`] could return false:
    /// cycles the core may account in a local register without crossing
    /// into the bus. Stale the moment anything on the bus is touched —
    /// device access, [`Bus::tick_slow`], catch-up — so callers must
    /// re-read it after any such operation and must flush their local
    /// balance into [`Bus::tick_quick`] *before* any access that can
    /// reach a tickable device.
    #[inline]
    pub fn tick_slack(&self) -> u64 {
        self.armed.saturating_sub(self.pending)
    }

    /// The full tick: refreshes the deadline, delivers accumulated
    /// cycles when due and drains stashed interrupts.
    pub fn tick_slow(&mut self) -> Vec<IrqRequest> {
        if !self.deadline_valid {
            self.refresh_deadline();
        }
        let due = !self.batched || self.deadline.is_some_and(|d| self.pending >= d);
        if due {
            let delivered = std::mem::take(&mut self.pending);
            let mut irqs = std::mem::take(&mut self.stray_irqs);
            for &(_, _, idx) in &self.tickable {
                if let Some(irq) = self.mappings[idx].device.tick(delivered) {
                    irqs.push(irq);
                }
            }
            self.refresh_deadline();
            irqs
        } else if self.stray_irqs.is_empty() {
            Vec::new()
        } else {
            std::mem::take(&mut self.stray_irqs)
        }
    }

    /// Host-side image load (bypasses read-only protections; models factory
    /// programming and loader copies observed externally).
    pub fn host_load(&mut self, addr: u32, bytes: &[u8]) -> bool {
        self.host_gen += 1;
        let t = self.touches_tickable(addr);
        if t {
            self.catch_up();
        }
        let ok = match self.lookup(addr) {
            Ok((m, off)) => m.device.host_load(off, bytes),
            Err(_) => false,
        };
        if t {
            self.invalidate_deadline();
        }
        ok
    }

    /// Fault-injection hook: flips bit `bit & 7` of the byte at `addr`
    /// and returns the new byte value. The write goes through the
    /// host-load path, so it bypasses read-only protections (modeling a
    /// physical upset, not a bus transaction) and bumps [`Bus::host_gen`]
    /// — any predecoded-instruction or grant caches built over the old
    /// contents invalidate before the next fetch.
    pub fn inject_bit_flip(&mut self, addr: u32, bit: u8) -> Result<u8, BusError> {
        let byte = self.read8(addr)?;
        let flipped = byte ^ (1 << (bit & 7));
        if !self.host_load(addr, &[flipped]) {
            return Err(BusError::Unmapped { addr });
        }
        Ok(flipped)
    }

    /// Looks up a device by name and concrete type for host inspection.
    ///
    /// The device is caught up with any accumulated cycles first, and the
    /// bus conservatively assumes the host mutates it (ticking deadlines
    /// and memory-content caches are invalidated).
    pub fn device_mut<T: 'static>(&mut self, name: &str) -> Option<&mut T> {
        self.catch_up();
        self.invalidate_deadline();
        self.host_gen += 1;
        self.mappings
            .iter_mut()
            .find(|m| m.device.name() == name)
            .and_then(|m| m.device.as_any().downcast_mut::<T>())
    }

    /// Deep-copies the bus — every mapped device plus the batching and
    /// cache bookkeeping — for snapshot/fork. Returns the name of the
    /// first non-snapshottable device on failure.
    ///
    /// The copy is observably identical to the original: accumulated
    /// (undelivered) tick cycles, stashed stray interrupts and the
    /// host-mutation generation all carry over, so a forked machine
    /// replays bit-identically to the original from the snapshot point.
    pub fn snapshot(&self) -> Result<Bus, &'static str> {
        let mut mappings = Vec::with_capacity(self.mappings.len());
        for m in &self.mappings {
            let device = m.device.snapshot().ok_or_else(|| m.device.name())?;
            mappings.push(Mapping {
                base: m.base,
                size: m.size,
                device,
            });
        }
        let mut bus = Bus {
            mappings,
            tickable: Vec::new(),
            tick_lo: 0,
            tick_span: 0,
            last_idx: self.last_idx,
            lookup_cache: self.lookup_cache,
            pending: self.pending,
            batched: self.batched,
            deadline: self.deadline,
            deadline_valid: self.deadline_valid,
            armed: self.armed,
            stray_irqs: self.stray_irqs.clone(),
            host_gen: self.host_gen,
        };
        bus.rebuild_tickable();
        Ok(bus)
    }

    /// Returns the `(base, size, name)` of every mapping, sorted by base.
    pub fn mappings(&self) -> Vec<(u32, u32, &'static str)> {
        self.mappings
            .iter()
            .map(|m| (m.base, m.size, m.device.name()))
            .collect()
    }

    /// Convenience: reads `len` bytes starting at `addr` (diagnostics).
    pub fn read_bytes(&mut self, addr: u32, len: u32) -> Result<Vec<u8>, BusError> {
        (0..len).map(|i| self.read8(addr + i)).collect()
    }

    /// Host-side bytes actually materialized across all mapped devices
    /// (see [`Device::resident_bytes`]). Diagnostic only — never part of
    /// any digest.
    pub fn resident_bytes(&self) -> u64 {
        self.mappings
            .iter()
            .map(|m| m.device.resident_bytes())
            .sum()
    }

    /// Total addressable bytes across all mapped devices.
    pub fn addressable_bytes(&self) -> u64 {
        self.mappings.iter().map(|m| u64::from(m.size)).sum()
    }
}

fn rebase(e: BusError, base: u32) -> BusError {
    // Devices report offsets; convert to absolute addresses for callers.
    match e {
        BusError::Unmapped { addr } => BusError::Unmapped { addr: base + addr },
        BusError::Misaligned { addr } => BusError::Misaligned { addr: base + addr },
        BusError::ReadOnly { addr } => BusError::ReadOnly { addr: base + addr },
        BusError::BadWidth { addr } => BusError::BadWidth { addr: base + addr },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ram::{Ram, Rom};

    fn bus_with_ram() -> Bus {
        let mut bus = Bus::new();
        bus.map(0x1000, Box::new(Ram::new("sram", 0x100))).unwrap();
        bus.map(0x0, Box::new(Rom::new(0x100))).unwrap();
        bus
    }

    #[test]
    fn routes_to_correct_device() {
        let mut bus = bus_with_ram();
        bus.write32(0x1010, 42).unwrap();
        assert_eq!(bus.read32(0x1010), Ok(42));
        assert_eq!(bus.write32(0x10, 1), Err(BusError::ReadOnly { addr: 0x10 }));
    }

    #[test]
    fn unmapped_and_misaligned() {
        let mut bus = bus_with_ram();
        assert_eq!(bus.read32(0x5000), Err(BusError::Unmapped { addr: 0x5000 }));
        assert_eq!(
            bus.read32(0x1002),
            Err(BusError::Misaligned { addr: 0x1002 })
        );
        // Last word of the window is fine; one past is not.
        assert!(bus.read32(0x10fc).is_ok());
        assert_eq!(bus.read32(0x1100), Err(BusError::Unmapped { addr: 0x1100 }));
    }

    #[test]
    fn overlap_rejected() {
        let mut bus = bus_with_ram();
        let e = bus.map(0x10f0, Box::new(Ram::new("x", 0x100))).unwrap_err();
        assert_eq!(
            e,
            MapError::Overlap {
                base: 0x10f0,
                size: 0x100
            }
        );
        // Adjacent is fine.
        bus.map(0x1100, Box::new(Ram::new("y", 0x100))).unwrap();
    }

    #[test]
    fn wrap_rejected() {
        let mut bus = Bus::new();
        let e = bus
            .map(0xffff_ff00, Box::new(Ram::new("z", 0x200)))
            .unwrap_err();
        assert!(matches!(e, MapError::Wraps { .. }));
    }

    #[test]
    fn byte_access_straddles_words() {
        let mut bus = bus_with_ram();
        bus.write8(0x1001, 0xbe).unwrap();
        assert_eq!(bus.read32(0x1000), Ok(0x0000_be00));
    }

    #[test]
    fn host_load_bypasses_rom_protection() {
        let mut bus = bus_with_ram();
        assert!(bus.host_load(0x4, &[0xaa, 0xbb, 0xcc, 0xdd]));
        assert_eq!(bus.read32(0x4), Ok(0xddcc_bbaa));
    }

    #[test]
    fn device_mut_downcast() {
        let mut bus = bus_with_ram();
        bus.write32(0x1000, 7).unwrap();
        let ram: &mut Ram = bus.device_mut("sram").unwrap();
        assert_eq!(ram.bytes()[0], 7);
        assert!(
            bus.device_mut::<Rom>("sram").is_none(),
            "wrong type must not downcast"
        );
        assert!(bus.device_mut::<Ram>("nope").is_none());
    }

    #[test]
    fn mappings_sorted() {
        let bus = bus_with_ram();
        let maps = bus.mappings();
        assert_eq!(maps[0].0, 0x0);
        assert_eq!(maps[1].0, 0x1000);
    }

    /// A minimal periodic device for batching tests: fires IRQ `line` 7
    /// every `period` cycles, exposes its countdown at offset 0, and
    /// counts how many times `tick` was actually invoked.
    #[derive(Clone)]
    struct TestTimer {
        period: u64,
        count: u64,
        tick_calls: u64,
    }

    impl TestTimer {
        fn new(period: u64) -> Self {
            TestTimer {
                period,
                count: period,
                tick_calls: 0,
            }
        }
    }

    impl Device for TestTimer {
        fn name(&self) -> &'static str {
            "ttimer"
        }
        fn size(&self) -> u32 {
            4
        }
        fn read32(&mut self, _off: u32) -> Result<u32, BusError> {
            Ok(self.count as u32)
        }
        fn write32(&mut self, _off: u32, value: u32) -> Result<(), BusError> {
            self.count = value as u64;
            Ok(())
        }
        fn tick(&mut self, cycles: u64) -> Option<IrqRequest> {
            self.tick_calls += 1;
            if self.count > cycles {
                self.count -= cycles;
                return None;
            }
            let overshoot = cycles - self.count;
            self.count = self.period - (overshoot % self.period);
            Some(IrqRequest {
                line: 7,
                handler: None,
            })
        }
        fn is_tickable(&self) -> bool {
            true
        }
        fn tick_hint(&self) -> Option<u64> {
            Some(self.count)
        }
        fn snapshot(&self) -> Option<Box<dyn Device>> {
            Some(Box::new(self.clone()))
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    use std::any::Any;

    fn timer_bus(batched: bool) -> Bus {
        let mut bus = Bus::new();
        bus.map(0x2000, Box::new(TestTimer::new(10))).unwrap();
        bus.set_batched_ticks(batched);
        bus
    }

    #[test]
    fn batched_irqs_fire_at_identical_boundaries() {
        let mut batched = timer_bus(true);
        let mut unbatched = timer_bus(false);
        for step in 0..100u32 {
            let a = batched.tick(3);
            let b = unbatched.tick(3);
            assert_eq!(a, b, "IRQ divergence at step {step}");
        }
        let calls_batched = batched
            .device_mut::<TestTimer>("ttimer")
            .unwrap()
            .tick_calls;
        let calls_unbatched = unbatched
            .device_mut::<TestTimer>("ttimer")
            .unwrap()
            .tick_calls;
        assert!(
            calls_batched < calls_unbatched,
            "batching must reduce tick calls ({calls_batched} vs {calls_unbatched})"
        );
    }

    #[test]
    fn access_catches_device_up_mid_interval() {
        let mut bus = timer_bus(true);
        assert!(bus.tick(3).is_empty());
        assert!(bus.tick(4).is_empty());
        // 7 cycles elapsed but below the period-10 deadline: the device
        // has not been polled yet, so the read must trigger catch-up.
        assert_eq!(bus.read32(0x2000), Ok(3));
    }

    #[test]
    fn reprogramming_after_catch_up_moves_deadline() {
        let mut bus = timer_bus(true);
        assert!(bus.tick(4).is_empty());
        // Reprogram the countdown mid-interval; the 4 already-elapsed
        // cycles were delivered before the write, so the new deadline is
        // 100 cycles from now, not from the last flush.
        bus.write32(0x2000, 100).unwrap();
        for _ in 0..99 {
            assert!(bus.tick(1).is_empty());
        }
        assert_eq!(bus.tick(1).len(), 1, "fires exactly 100 cycles later");
    }

    #[test]
    fn host_gen_tracks_out_of_band_mutation() {
        let mut bus = bus_with_ram();
        let g0 = bus.host_gen();
        bus.read32(0x1000).unwrap();
        bus.write32(0x1000, 1).unwrap();
        assert_eq!(bus.host_gen(), g0, "bus accesses are in-band");
        bus.host_load(0x4, &[1, 2, 3, 4]);
        assert!(bus.host_gen() > g0, "host_load is out-of-band");
        let g1 = bus.host_gen();
        let _: Option<&mut Ram> = bus.device_mut("sram");
        assert!(bus.host_gen() > g1, "device_mut is out-of-band");
        let g2 = bus.host_gen();
        bus.map(0x9000, Box::new(Ram::new("x", 0x100))).unwrap();
        assert!(bus.host_gen() > g2, "mapping is out-of-band");
    }

    #[test]
    fn bit_flip_is_out_of_band_and_involutive() {
        let mut bus = bus_with_ram();
        bus.write32(0x1000, 0).unwrap();
        let g0 = bus.host_gen();
        assert_eq!(bus.inject_bit_flip(0x1000, 3).unwrap(), 0b1000);
        assert!(bus.host_gen() > g0, "a flip must invalidate host caches");
        assert_eq!(bus.read8(0x1000).unwrap(), 0b1000);
        // Bit index wraps modulo 8; flipping the same bit restores.
        assert_eq!(bus.inject_bit_flip(0x1000, 3 + 8).unwrap(), 0);
        assert!(matches!(
            bus.inject_bit_flip(0xdead_0000, 0),
            Err(BusError::Unmapped { .. })
        ));
    }

    #[test]
    fn stable_memory_classification() {
        let mut bus = bus_with_ram();
        bus.map(0x2000, Box::new(TestTimer::new(10))).unwrap();
        assert!(bus.is_stable_memory(0x1000), "RAM is stable storage");
        assert!(bus.is_stable_memory(0x0), "ROM is stable storage");
        assert!(!bus.is_stable_memory(0x2000), "devices are not");
        assert!(!bus.is_stable_memory(0x5000), "unmapped is not");
    }

    #[test]
    fn snapshot_copies_contents_and_tick_state() {
        let mut bus = bus_with_ram();
        bus.write32(0x1010, 0xfeed).unwrap();
        let mut snap = bus.snapshot().expect("ram/rom snapshot");
        assert_eq!(snap.read32(0x1010), Ok(0xfeed));
        assert_eq!(snap.host_gen(), bus.host_gen());
        // Divergence after the fork is invisible to the original.
        snap.write32(0x1010, 1).unwrap();
        assert_eq!(bus.read32(0x1010), Ok(0xfeed));
    }

    #[test]
    fn snapshot_carries_pending_cycles_exactly() {
        let mut bus = timer_bus(true);
        assert!(bus.tick(7).is_empty()); // 3 cycles short of the period
        let mut snap = bus.snapshot().expect("test timer snapshots");
        let irqs_snap: Vec<_> = (0..5).map(|_| snap.tick(1).len()).collect();
        let irqs_orig: Vec<_> = (0..5).map(|_| bus.tick(1).len()).collect();
        assert_eq!(irqs_snap, irqs_orig, "pending cycles must carry over");
    }

    #[test]
    fn snapshot_refuses_unsupported_devices() {
        struct NoSnap;
        impl Device for NoSnap {
            fn name(&self) -> &'static str {
                "nosnap"
            }
            fn size(&self) -> u32 {
                4
            }
            fn read32(&mut self, _off: u32) -> Result<u32, BusError> {
                Ok(0)
            }
            fn write32(&mut self, _off: u32, _value: u32) -> Result<(), BusError> {
                Ok(())
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut bus = Bus::new();
        bus.map(0x0, Box::new(NoSnap)).unwrap();
        assert_eq!(bus.snapshot().unwrap_err(), "nosnap");
    }

    #[test]
    fn read_bytes_spans_devices_only_within_one() {
        let mut bus = bus_with_ram();
        bus.write32(0x1000, 0x0403_0201).unwrap();
        assert_eq!(bus.read_bytes(0x1000, 4).unwrap(), vec![1, 2, 3, 4]);
        assert!(
            bus.read_bytes(0xfe, 4).is_err(),
            "crosses into unmapped gap"
        );
    }
}
