//! The bus-device interface.

use core::fmt;
use std::any::Any;

/// An error produced by a physical memory access.
///
/// The CPU turns these into memory-fault exceptions (distinct from MPU
/// protection faults, which are raised before the access reaches the bus).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusError {
    /// No device is mapped at the address.
    Unmapped { addr: u32 },
    /// The access is not naturally aligned.
    Misaligned { addr: u32 },
    /// The target is read-only at runtime (e.g. PROM).
    ReadOnly { addr: u32 },
    /// The device rejects the access width (e.g. byte access to MMIO).
    BadWidth { addr: u32 },
}

impl BusError {
    /// The faulting physical address.
    pub fn addr(&self) -> u32 {
        match *self {
            BusError::Unmapped { addr }
            | BusError::Misaligned { addr }
            | BusError::ReadOnly { addr }
            | BusError::BadWidth { addr } => addr,
        }
    }
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::Unmapped { addr } => write!(f, "unmapped address {addr:#010x}"),
            BusError::Misaligned { addr } => write!(f, "misaligned access at {addr:#010x}"),
            BusError::ReadOnly { addr } => write!(f, "write to read-only memory at {addr:#010x}"),
            BusError::BadWidth { addr } => {
                write!(f, "unsupported access width at {addr:#010x}")
            }
        }
    }
}

impl std::error::Error for BusError {}

/// An interrupt request raised by a device.
///
/// Per the paper's Figure 3, peripherals such as the timer carry a
/// programmable `handler(ISR)` register; when that register is set the
/// request is *vectored by the peripheral* and the exception engine jumps
/// to the given handler. Otherwise the request is resolved through the
/// interrupt descriptor table by line number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrqRequest {
    /// Interrupt line number (IDT index when `handler` is `None`).
    pub line: u8,
    /// Peripheral-programmed handler address, if any.
    pub handler: Option<u32>,
}

/// A component attached to the system bus.
///
/// Offsets passed to the access methods are relative to the device's
/// mapping base and are guaranteed in-range by the bus. Word accesses are
/// guaranteed aligned.
///
/// Devices are `Send` so a whole machine (bus included) can be moved to a
/// fleet worker thread; device state is owned data, never shared.
pub trait Device: Any + Send {
    /// Short stable name (used for host-side lookup and diagnostics).
    fn name(&self) -> &'static str;

    /// Size of the device's address window in bytes.
    fn size(&self) -> u32;

    /// Reads an aligned 32-bit word.
    fn read32(&mut self, off: u32) -> Result<u32, BusError>;

    /// Writes an aligned 32-bit word.
    fn write32(&mut self, off: u32, value: u32) -> Result<(), BusError>;

    /// Reads one byte. The default extracts from the containing word;
    /// register-bank devices typically override this to reject byte access.
    fn read8(&mut self, off: u32) -> Result<u8, BusError> {
        let word = self.read32(off & !3)?;
        Ok((word >> (8 * (off & 3))) as u8)
    }

    /// Writes one byte via read-modify-write of the containing word.
    fn write8(&mut self, off: u32, value: u8) -> Result<(), BusError> {
        let word = self.read32(off & !3)?;
        let shift = 8 * (off & 3);
        let merged = (word & !(0xff << shift)) | ((value as u32) << shift);
        self.write32(off & !3, merged)
    }

    /// Advances device time by `cycles` CPU cycles and returns a pending
    /// interrupt request, if the device raises one.
    fn tick(&mut self, _cycles: u64) -> Option<IrqRequest> {
        None
    }

    /// True if [`Device::tick`] does anything at all for this device.
    ///
    /// The bus batches per-instruction ticking: tickable devices are
    /// caught up with the accumulated cycles before any bus access
    /// reaches them, and [`Device::tick_hint`] bounds how long ticking
    /// may be deferred between accesses. A device that overrides `tick`
    /// MUST override this to return true, or its ticks will be skipped.
    fn is_tickable(&self) -> bool {
        false
    }

    /// An exactness bound for batched ticking: `Some(n)` means `tick`
    /// is a pure countdown (no interrupt, no observable state change at
    /// an instruction boundary) until `n` more cycles have elapsed, so
    /// the bus must deliver accumulated cycles once they reach `n`.
    /// `Some(0)` demands a tick at the very next instruction boundary.
    /// `None` means time alone never changes the device's observable
    /// behaviour — it only needs catching up when it is next accessed.
    ///
    /// Only consulted when [`Device::is_tickable`] is true.
    fn tick_hint(&self) -> Option<u64> {
        None
    }

    /// True if the device is plain storage: its contents change only
    /// through bus writes and [`Device::host_load`], never spontaneously,
    /// and reads are side-effect free. The CPU's predecode cache only
    /// caches instruction words fetched from stable storage.
    fn stable_storage(&self) -> bool {
        false
    }

    /// Host-side (out-of-band) image load used by reset logic to program
    /// PROM and preload RAM. Returns false if the device is not loadable.
    fn host_load(&mut self, _off: u32, _bytes: &[u8]) -> bool {
        false
    }

    /// Host-side bytes actually materialized for this device, for
    /// footprint reporting. Sparse devices ([`crate::Ram`]/[`crate::Rom`])
    /// override this with their resident-page total; the default assumes
    /// dense backing (resident == addressable). Purely diagnostic: never
    /// guest-visible and never part of any digest.
    fn resident_bytes(&self) -> u64 {
        u64::from(self.size())
    }

    /// Deep-copies the device for snapshot/fork, or `None` if the device
    /// cannot be snapshotted. Every in-tree device supports this (their
    /// state is plain owned data); the default conservatively refuses so
    /// exotic host-backed devices opt in explicitly.
    fn snapshot(&self) -> Option<Box<dyn Device>> {
        None
    }

    /// Upcast for host-side inspection.
    fn as_any(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct WordDev {
        word: u32,
    }

    impl Device for WordDev {
        fn name(&self) -> &'static str {
            "word"
        }
        fn size(&self) -> u32 {
            4
        }
        fn read32(&mut self, _off: u32) -> Result<u32, BusError> {
            Ok(self.word)
        }
        fn write32(&mut self, _off: u32, value: u32) -> Result<(), BusError> {
            self.word = value;
            Ok(())
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn default_byte_access_little_endian() {
        let mut d = WordDev { word: 0x4433_2211 };
        assert_eq!(d.read8(0), Ok(0x11));
        assert_eq!(d.read8(3), Ok(0x44));
        d.write8(1, 0xaa).unwrap();
        assert_eq!(d.word, 0x4433_aa11);
    }

    #[test]
    fn bus_error_addr_accessor() {
        assert_eq!(BusError::Unmapped { addr: 5 }.addr(), 5);
        assert_eq!(BusError::ReadOnly { addr: 9 }.addr(), 9);
    }
}
