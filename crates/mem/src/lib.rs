//! Physical address space of the TrustLite platform.
//!
//! The paper's target platform (Figure 1) is a small SoC with on-chip PROM
//! and SRAM, memory-mapped peripherals and optional external DRAM, all in a
//! single physical address space (Figure 3 shows PROM/Flash, SRAM/DRAM and
//! peripheral MMIO regions side by side). This crate models that address
//! space:
//!
//! * [`Device`] — the trait every bus-attached component implements,
//! * [`Ram`] / [`Rom`] — volatile and programmable read-only memories,
//! * [`Bus`] — the system bus that routes physical accesses to devices,
//! * [`map`] — the reference memory map used throughout the reproduction.
//!
//! Access control is deliberately *not* here: the MPU sits between the CPU
//! and the bus (see `trustlite-mpu` and the `trustlite-cpu` system-bus
//! wiring), exactly as in the paper's Figure 2.

pub mod bus;
pub mod device;
pub mod map;
pub mod pages;
pub mod ram;

pub use bus::{Bus, MapError};
pub use device::{BusError, Device, IrqRequest};
pub use pages::{Page, PageStore, PAGE_SHIFT, PAGE_SIZE};
pub use ram::{Ram, Rom};
