//! The reference memory map of the simulated TrustLite platform.
//!
//! Mirrors the flavour of the paper's Figure 3: PROM/Flash low, SRAM and
//! external DRAM in the middle, peripheral MMIO high. All values are
//! conventions shared by the loader, the OS generator and the tests; the
//! bus itself accepts any non-overlapping layout.

/// Base address of the on-chip PROM (boot memory).
pub const PROM_BASE: u32 = 0x0000_0000;
/// Default PROM size (256 KiB).
pub const PROM_SIZE: u32 = 0x0004_0000;

/// Base address of the on-chip SRAM.
pub const SRAM_BASE: u32 = 0x1000_0000;
/// Default SRAM size (256 KiB).
pub const SRAM_SIZE: u32 = 0x0004_0000;

/// Base address of the retained RAM (`ret_ram`): a tiny always-on
/// region that survives warm resets and is cleared only on cold boot.
/// It sits outside the MMIO window and carries no MPU rule, so software
/// never reaches it — only the Secure Loader and the host touch it via
/// the hardware access paths. Holds the per-trustlet update/boot-log
/// blocks.
pub const RETRAM_BASE: u32 = 0x3000_0000;
/// Retained-RAM size (4 KiB).
pub const RETRAM_SIZE: u32 = 0x0000_1000;

/// Base address of the (untrusted) external DRAM.
pub const DRAM_BASE: u32 = 0x4000_0000;
/// Default DRAM size (1 MiB).
pub const DRAM_SIZE: u32 = 0x0010_0000;

/// Base of the memory-mapped I/O window.
pub const MMIO_BASE: u32 = 0x2000_0000;

/// MMIO address of the MPU register bank.
pub const MPU_MMIO_BASE: u32 = 0x2000_0000;
/// Size reserved for the MPU register bank.
pub const MPU_MMIO_SIZE: u32 = 0x0000_1000;

/// MMIO address of the platform timer.
pub const TIMER_MMIO_BASE: u32 = 0x2000_1000;
/// MMIO address of the UART.
pub const UART_MMIO_BASE: u32 = 0x2000_2000;
/// MMIO address of the crypto accelerator.
pub const CRYPTO_MMIO_BASE: u32 = 0x2000_3000;
/// MMIO address of the key-storage peripheral.
pub const KEYSTORE_MMIO_BASE: u32 = 0x2000_4000;
/// MMIO address of the random-number generator.
pub const RNG_MMIO_BASE: u32 = 0x2000_5000;

/// Conventional size for small peripheral register banks.
pub const PERIPH_MMIO_SIZE: u32 = 0x0000_1000;

/// Returns true if `addr` falls inside the MMIO window by convention.
pub fn is_mmio(addr: u32) -> bool {
    (MMIO_BASE..MMIO_BASE + 0x1000_0000).contains(&addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let regions = [
            (PROM_BASE, PROM_SIZE),
            (SRAM_BASE, SRAM_SIZE),
            (RETRAM_BASE, RETRAM_SIZE),
            (DRAM_BASE, DRAM_SIZE),
            (MPU_MMIO_BASE, MPU_MMIO_SIZE),
            (TIMER_MMIO_BASE, PERIPH_MMIO_SIZE),
            (UART_MMIO_BASE, PERIPH_MMIO_SIZE),
            (CRYPTO_MMIO_BASE, PERIPH_MMIO_SIZE),
            (KEYSTORE_MMIO_BASE, PERIPH_MMIO_SIZE),
            (RNG_MMIO_BASE, PERIPH_MMIO_SIZE),
        ];
        for (i, &(b1, s1)) in regions.iter().enumerate() {
            for &(b2, s2) in regions.iter().skip(i + 1) {
                let disjoint = b1 + s1 <= b2 || b2 + s2 <= b1;
                assert!(disjoint, "{b1:#x}+{s1:#x} overlaps {b2:#x}+{s2:#x}");
            }
        }
    }

    #[test]
    fn mmio_predicate() {
        assert!(is_mmio(MPU_MMIO_BASE));
        assert!(is_mmio(TIMER_MMIO_BASE));
        assert!(!is_mmio(PROM_BASE));
        assert!(!is_mmio(SRAM_BASE));
        assert!(!is_mmio(DRAM_BASE));
        assert!(!is_mmio(RETRAM_BASE));
        assert!(!is_mmio(RETRAM_BASE + RETRAM_SIZE - 4));
    }
}
